(** Shared constructors for int-typed histories used across the test suite.

    Operations are over quantitative objects with integer update arguments,
    integer query arguments, and integer return values — the shape of both
    the batched counter (query argument ignored) and CountMin (argument =
    element). *)

type iop = (int, int, int) Hist.Op.t
type ievent = (int, int, int) Hist.History.event
type ihistory = (int, int, int) Hist.History.t

let upd ?(proc = 0) ?(obj = 0) ~id u : iop =
  { Hist.Op.id; proc; obj; kind = Hist.Op.Update u; ret = None }

let qry ?(proc = 0) ?(obj = 0) ?ret ~id q : iop =
  { Hist.Op.id; proc; obj; kind = Hist.Op.Query q; ret }

let inv op : ievent = Hist.History.inv op

let rsp ?ret op : ievent = Hist.History.rsp ?ret op

let hist evs : ihistory = Hist.History.of_events evs

(* A sequential history from (op, optional return) pairs. *)
let seq ops : ihistory = Hist.History.of_sequential_ops ops

let pp_int = Format.pp_print_int

let show_history h =
  Format.asprintf "%a" (Hist.History.pp ~pp_u:pp_int ~pp_q:pp_int ~pp_v:pp_int) h

(* Random well-formed concurrent history generator: interleaves per-process
   sequential operation streams under a seeded scheduler. [mk_op ~proc ~id]
   supplies the operations, so each test controls the op/return mix. *)
let gen_history ~seed ~procs ~per_proc ~mk_op =
  let g = Rng.Splitmix.create seed in
  let next_id = ref 0 in
  let queues =
    Array.init procs (fun p ->
        ref
          (List.init per_proc (fun _ ->
               incr next_id;
               mk_op g ~proc:p ~id:!next_id)))
  in
  let in_flight = Array.make procs None in
  let events = ref [] in
  let rec drain () =
    let busy = ref [] in
    for p = procs - 1 downto 0 do
      if in_flight.(p) <> None || !(queues.(p)) <> [] then busy := p :: !busy
    done;
    match !busy with
    | [] -> ()
    | ps ->
        let p = List.nth ps (Rng.Splitmix.next_int g (List.length ps)) in
        (match in_flight.(p) with
        | Some op ->
            events := Hist.History.rsp ?ret:op.Hist.Op.ret op :: !events;
            in_flight.(p) <- None
        | None -> (
            match !(queues.(p)) with
            | [] -> ()
            | op :: rest ->
                queues.(p) := rest;
                events := Hist.History.inv op :: !events;
                in_flight.(p) <- Some op));
        drain ()
  in
  drain ();
  Hist.History.of_events (List.rev !events)

(* The standard counter-history mix used by several suites: random batches,
   random (sometimes impossible) query returns. *)
let gen_counter_history seed =
  let g0 = Rng.Splitmix.create seed in
  let procs = 1 + Rng.Splitmix.next_int g0 3 in
  let per_proc = 1 + Rng.Splitmix.next_int g0 3 in
  gen_history ~seed:(Rng.Splitmix.next_int64 g0) ~procs ~per_proc
    ~mk_op:(fun g ~proc ~id ->
      if Rng.Splitmix.next_bool g then upd ~proc ~id (Rng.Splitmix.next_int g 4)
      else qry ~proc ~ret:(Rng.Splitmix.next_int g 8) ~id 0)
