(* Cross-layer integration tests: the paper's end-to-end claims exercised
   through several libraries at once — Corollary 8's error preservation on
   real concurrent runs, Definition 3 across simulated coin worlds, the
   heavy-hitters pipeline, and simulator/multicore agreement. *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

(* ---------------------------------------------------------------- *)
(* Corollary 8, empirically: writers ingest a Zipf stream into PCM while a
   reader queries a probe element. Writers bump a [pre] oracle before and a
   [post] oracle after each probe update, so at any instant
   post ≤ f_applied ≤ pre. Deterministically f̂ ≥ post(query start); and
   f̂ ≤ pre(query end) + αn with probability ≥ 1 − δ. *)

let test_corollary8_probe_bracketing () =
  let alpha = 0.02 and delta = 0.05 in
  let pcm = Conc.Pcm.create_for_error ~seed:2024L ~alpha ~delta in
  let probe = 0 in
  let pre = Atomic.make 0 and post = Atomic.make 0 in
  let stream =
    Workload.Stream.generate ~seed:7L (Workload.Stream.Zipf (200, 1.2)) ~length:60_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:3 in
  let lower_violations = Atomic.make 0 in
  let upper_violations = Atomic.make 0 in
  let samples = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        if i < 3 then
          Array.iter
            (fun a ->
              if a = probe then ignore (Atomic.fetch_and_add pre 1);
              Conc.Pcm.update pcm a;
              if a = probe then ignore (Atomic.fetch_and_add post 1))
            chunks.(i)
        else
          for _ = 1 to 2_000 do
            let f_start_lb = Atomic.get post in
            let est = Conc.Pcm.query pcm probe in
            let f_end_ub = Atomic.get pre in
            let n = Conc.Pcm.updates pcm in
            ignore (Atomic.fetch_and_add samples 1);
            if est < f_start_lb then ignore (Atomic.fetch_and_add lower_violations 1);
            if float_of_int est
               > float_of_int f_end_ub +. (alpha *. float_of_int n) +. 0.5
            then ignore (Atomic.fetch_and_add upper_violations 1)
          done)
  in
  Alcotest.(check int) "lower bound never violated" 0 (Atomic.get lower_violations);
  let rate =
    float_of_int (Atomic.get upper_violations) /. float_of_int (Atomic.get samples)
  in
  (* Allow 3x slack over δ for sampling noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "upper violation rate %.4f ≤ 3δ" rate)
    true
    (rate <= 3.0 *. delta)

(* ---------------------------------------------------------------- *)
(* Definition 3 across coin worlds, via the simulator: run PCM under one
   fixed schedule with several hash families; the skeletons coincide and the
   randomized checker must find a common witness pair. *)

let test_randomized_ivl_across_simulated_worlds () =
  let families =
    [
      Hashing.Family.of_mapping ~width:2 [| (fun x -> x mod 2); (fun x -> (x / 2) mod 2) |];
      Hashing.Family.of_mapping ~width:2 [| (fun x -> (x + 1) mod 2); (fun _ -> 0) |];
      Hashing.Family.of_mapping ~width:2 [| (fun _ -> 1); (fun x -> x mod 2) |];
    ]
  in
  let run family =
    let hash row x = Hashing.Family.hash family ~row x in
    let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash () in
    let scripts =
      [|
        [ A.Pcm_sim.update_op pcm ~a:0 (); A.Pcm_sim.update_op pcm ~a:1 () ];
        [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:1 () ];
      |]
    in
    M.run
      ~registers:(A.Pcm_sim.zero_registers pcm)
      ~scripts ~sched:(S.Random 55L) ()
  in
  let runs = List.map (fun f -> (f, run f)) families in
  (* All runs share a skeleton: same ids, kinds, event order. *)
  let skeletons =
    List.map
      (fun (_, r) -> Test_helpers.show_history (Hist.History.skeleton r.M.history))
      runs
  in
  List.iter
    (fun s -> Alcotest.(check string) "identical skeletons" (List.hd skeletons) s)
    skeletons;
  let module R = Ivl.Randomized.Make (Spec.Countmin_spec) in
  let worlds =
    List.map
      (fun (family, r) ->
        let returns =
          List.filter_map
            (fun (op : Test_helpers.iop) ->
              match op.Hist.Op.ret with Some v -> Some (op.Hist.Op.id, v) | None -> None)
            (Hist.History.completed r.M.history)
        in
        { R.coin = family; returns })
      runs
  in
  let skeleton_history = Hist.History.skeleton (snd (List.hd runs)).M.history in
  let v = R.check ~worlds skeleton_history in
  Alcotest.(check bool) "common witnesses exist (Definition 3)" true v.R.ivl

(* ---------------------------------------------------------------- *)
(* The paper's motivating pipeline: concurrent heavy-hitter detection. *)

let test_heavy_hitters_pipeline () =
  let family = Hashing.Family.seeded ~seed:31L ~rows:4 ~width:256 in
  let pcm = Conc.Pcm.create ~family in
  let stream =
    Workload.Stream.generate ~seed:32L (Workload.Stream.Zipf (2_000, 1.4)) ~length:80_000
  in
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i -> Array.iter (Conc.Pcm.update pcm) chunks.(i))
  in
  (* Every true heavy hitter (≥ 1% of the stream) must be reported by a CM
     scan with the same threshold (CM never under-estimates). *)
  let n = Sketches.Exact.total exact in
  let cut = n / 100 in
  let true_heavy = List.map fst (Sketches.Exact.heavy_hitters exact ~threshold:0.01) in
  let reported =
    List.init 2_000 Fun.id |> List.filter (fun a -> Conc.Pcm.query pcm a >= cut)
  in
  List.iter
    (fun a ->
      Alcotest.(check bool) (Printf.sprintf "heavy %d reported" a) true
        (List.mem a reported))
    true_heavy;
  (* And the false-positive overhang is bounded: reported set is not absurdly
     larger than the true set. *)
  Alcotest.(check bool)
    (Printf.sprintf "reported %d ≤ 5x true %d + 5" (List.length reported)
       (List.length true_heavy))
    true
    (List.length reported <= (5 * List.length true_heavy) + 5)

(* ---------------------------------------------------------------- *)
(* Simulator and multicore agree on final states for the same program. *)

let test_simulator_and_multicore_agree () =
  let n = 4 in
  (* Simulator run. *)
  let scripts =
    Array.init n (fun p ->
        [
          A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) ();
          A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) ();
        ])
  in
  let r = M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:(S.Random 3L) () in
  ignore r;
  (* Multicore run of the same workload. *)
  let c = Conc.Ivl_counter.create ~procs:n in
  let _ =
    Conc.Runner.parallel ~domains:n (fun i ->
        Conc.Ivl_counter.update c ~proc:i (i + 1);
        Conc.Ivl_counter.update c ~proc:i (i + 1))
  in
  let expected = 2 * (1 + 2 + 3 + 4) in
  Alcotest.(check int) "multicore final sum" expected (Conc.Ivl_counter.read c);
  (* Simulator final sum via a trailing read. *)
  let scripts2 =
    Array.init (n + 1) (fun p ->
        if p < n then
          [
            A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) ();
            A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) ();
          ]
        else [])
  in
  scripts2.(n) <- [ A.Ivl_counter.read_op ~n:(n + 1) () ];
  let registers = A.Ivl_counter.registers ~n:(n + 1) in
  let r2 =
    M.run ~registers ~scripts:scripts2 ~sched:(S.Explicit (List.concat_map (fun p -> [ p; p; p; p ]) [ 0; 1; 2; 3 ])) ()
  in
  let read =
    List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o)
      (Hist.History.completed r2.M.history)
  in
  Alcotest.(check (option int)) "simulator final sum" (Some expected) read.Hist.Op.ret

(* ---------------------------------------------------------------- *)
(* Morris transfer (E10 shape): the concurrent Morris counter's accuracy is
   comparable to the sequential sketch's on the same event count. *)

let test_morris_concurrent_vs_sequential_accuracy () =
  let n = 40_000 and trials = 30 in
  let seq_err = Stats.Moments.create () and conc_err = Stats.Moments.create () in
  for t = 1 to trials do
    let m = Sketches.Morris.create ~base:1.2 ~seed:(Int64.of_int t) () in
    for _ = 1 to n do
      Sketches.Morris.update m
    done;
    Stats.Moments.add seq_err
      (abs_float (Sketches.Morris.estimate m -. float_of_int n) /. float_of_int n);
    let mc = Conc.Morris_conc.create ~base:1.2 ~seed:(Int64.of_int (100 + t)) ~domains:4 () in
    let _ =
      Conc.Runner.parallel ~domains:4 (fun i ->
          for _ = 1 to n / 4 do
            Conc.Morris_conc.update mc ~domain:i
          done)
    in
    Stats.Moments.add conc_err
      (abs_float (Conc.Morris_conc.estimate mc -. float_of_int n) /. float_of_int n)
  done;
  (* The concurrent mean relative error should be within a small constant
     factor of sequential (drops under contention bias it low, not wild). *)
  let s = Stats.Moments.mean seq_err and c = Stats.Moments.mean conc_err in
  Alcotest.(check bool)
    (Printf.sprintf "concurrent err %.3f ≤ max(4x sequential %.3f, 0.5)" c s)
    true
    (c <= Float.max (4.0 *. s) 0.5)


(* ---------------------------------------------------------------- *)
(* Heterogeneous end-to-end: a counter (object 0) and a max register
   (object 1) updated from multiple domains, recorded as one multi-object
   history, validated per object via locality (Theorem 1) with the exact
   checkers — the full pipeline across recorder, composition and checking. *)

module Hetero = Spec.Compose.Make (Spec.Counter_spec) (Spec.Max_spec)
module Hetero_local = Ivl.Locality.Make (Hetero)

let test_heterogeneous_recorded_run () =
  for round = 1 to 15 do
    ignore round;
    let rec_ = Conc.Recorder.create ~domains:3 in
    let counter = Conc.Ivl_counter.create ~procs:2 in
    let maxreg = Atomic.make 0 in
    let atomic_max v =
      let rec go () =
        let cur = Atomic.get maxreg in
        if v > cur && not (Atomic.compare_and_set maxreg cur v) then go ()
      in
      go ()
    in
    let _ =
      Conc.Runner.parallel ~domains:3 (fun i ->
          if i < 2 then
            for k = 1 to 2 do
              Conc.Recorder.record_update rec_ ~domain:i ~obj:0 (`A k) (fun () ->
                  Conc.Ivl_counter.update counter ~proc:i k);
              Conc.Recorder.record_update rec_ ~domain:i ~obj:1
                (`B ((10 * i) + k))
                (fun () -> atomic_max ((10 * i) + k))
            done
          else begin
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 (`A 0) (fun () ->
                   `A (Conc.Ivl_counter.read counter)));
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:1 (`B 0) (fun () ->
                   `B (Atomic.get maxreg)))
          end)
    in
    let h = Conc.Recorder.history rec_ in
    (match Hist.History.well_formed h with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    let v = Hetero_local.check_per_object h in
    Alcotest.(check bool) "both objects IVL" true v.Hetero_local.ivl;
    Alcotest.(check bool) "theorem holds on the recorded run" true
      (Hetero_local.theorem_holds h)
  done

let () =
  Alcotest.run "integration"
    [
      ( "corollary 8",
        [ Alcotest.test_case "probe bracketing" `Quick test_corollary8_probe_bracketing ] );
      ( "definition 3",
        [
          Alcotest.test_case "across simulated worlds" `Quick
            test_randomized_ivl_across_simulated_worlds;
        ] );
      ( "pipelines",
        [ Alcotest.test_case "heavy hitters" `Quick test_heavy_hitters_pipeline ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "recorded multi-object run" `Quick
            test_heterogeneous_recorded_run;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "simulator vs multicore" `Quick
            test_simulator_and_multicore_agree;
          Alcotest.test_case "morris accuracy transfer" `Quick
            test_morris_concurrent_vs_sequential_accuracy;
        ] );
    ]
