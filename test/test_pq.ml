(* Tests for the priority-queue substrate: the exact binary heap and the
   relaxed MultiQueue (the paper's §7 "semi-quantitative" direction). *)

let test_heap_basic () =
  let h = Pq.Heap.create () in
  Alcotest.(check bool) "empty" true (Pq.Heap.is_empty h);
  Pq.Heap.insert h ~priority:5 "e";
  Pq.Heap.insert h ~priority:1 "a";
  Pq.Heap.insert h ~priority:3 "c";
  Alcotest.(check int) "size" 3 (Pq.Heap.size h);
  (match Pq.Heap.peek h with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "peek should be the minimum");
  Alcotest.(check (option (pair int string))) "pop 1" (Some (1, "a")) (Pq.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop 3" (Some (3, "c")) (Pq.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop 5" (Some (5, "e")) (Pq.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop empty" None (Pq.Heap.pop h)

let test_heap_sorted_drain () =
  let g = Rng.Splitmix.create 1L in
  let entries = List.init 500 (fun i -> (Rng.Splitmix.next_int g 1000, i)) in
  let h = Pq.Heap.of_list entries in
  let drained = Pq.Heap.to_sorted_list h in
  Alcotest.(check int) "drain preserves count" 500 (List.length drained);
  Alcotest.(check int) "to_sorted_list does not mutate" 500 (Pq.Heap.size h);
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "priority order" true (sorted drained)

let test_heap_duplicates () =
  let h = Pq.Heap.of_list [ (2, "x"); (2, "y"); (2, "z") ] in
  let ps = List.map fst (Pq.Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "all duplicates kept" [ 2; 2; 2 ] ps

let test_multiqueue_sequential_rank_error () =
  (* Insert 0..999, pop everything from one domain: every pop's rank error
     (priority position among remaining) must stay small relative to c×d. *)
  let mq = Pq.Multiqueue.create ~c:4 ~seed:7L ~domains:2 () in
  for p = 0 to 999 do
    Pq.Multiqueue.insert mq ~domain:0 ~priority:p p
  done;
  Alcotest.(check int) "size" 1000 (Pq.Multiqueue.size mq);
  (* Track the minimum not yet popped; rank error = popped - true_min rank. *)
  let remaining = Array.make 1000 true in
  let true_min () =
    let rec go i = if i >= 1000 then 1000 else if remaining.(i) then i else go (i + 1) in
    go 0
  in
  let worst = ref 0 and total = ref 0 and count = ref 0 in
  let rec drain () =
    match Pq.Multiqueue.delete_min mq ~domain:0 with
    | None -> ()
    | Some (p, _) ->
        let rank_err =
          let m = true_min () in
          (* Count survivors below p. *)
          let rec cnt i acc = if i >= p then acc else cnt (i + 1) (if remaining.(i) then acc + 1 else acc) in
          ignore m;
          cnt 0 0
        in
        remaining.(p) <- false;
        worst := max !worst rank_err;
        total := !total + rank_err;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 1000 !count;
  let mean = float_of_int !total /. float_of_int !count in
  (* Theory: expected rank error O(c*d) = O(8); generous bounds. *)
  Alcotest.(check bool) (Printf.sprintf "mean rank error %.1f < 16" mean) true (mean < 16.0);
  Alcotest.(check bool) (Printf.sprintf "worst rank error %d < 200" !worst) true (!worst < 200)

let test_multiqueue_never_loses_elements () =
  let mq = Pq.Multiqueue.create ~c:2 ~seed:8L ~domains:4 () in
  let per_domain = 5_000 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        for k = 1 to per_domain do
          Pq.Multiqueue.insert mq ~domain:i ~priority:((i * per_domain) + k) k
        done)
  in
  Alcotest.(check int) "all inserted" (4 * per_domain) (Pq.Multiqueue.size mq);
  (* Concurrent consumers drain everything exactly once. *)
  let popped = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        let rec go () =
          match Pq.Multiqueue.delete_min mq ~domain:i with
          | Some _ ->
              ignore (Atomic.fetch_and_add popped 1);
              go ()
          | None -> ()
        in
        go ())
  in
  Alcotest.(check int) "all popped exactly once" (4 * per_domain) (Atomic.get popped);
  Alcotest.(check int) "empty" 0 (Pq.Multiqueue.size mq)

let test_multiqueue_nonempty_never_reports_empty () =
  let mq = Pq.Multiqueue.create ~c:8 ~seed:9L ~domains:1 () in
  Pq.Multiqueue.insert mq ~domain:0 ~priority:1 "only";
  (* Even with 8 heaps and one element, delete_min must find it. *)
  match Pq.Multiqueue.delete_min mq ~domain:0 with
  | Some (1, "only") -> ()
  | _ -> Alcotest.fail "lost the lone element"

let test_multiqueue_validation () =
  Alcotest.check_raises "bad c" (Invalid_argument "Multiqueue.create: c must be positive")
    (fun () -> ignore (Pq.Multiqueue.create ~c:0 ~seed:1L ~domains:1 () : unit Pq.Multiqueue.t));
  let mq : unit Pq.Multiqueue.t = Pq.Multiqueue.create ~seed:1L ~domains:1 () in
  Alcotest.check_raises "bad domain" (Invalid_argument "Multiqueue: no such domain")
    (fun () -> ignore (Pq.Multiqueue.delete_min mq ~domain:3))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
         QCheck.(list (pair small_int unit))
         (fun entries ->
           let h = Pq.Heap.of_list entries in
           let ps = List.map fst (Pq.Heap.to_sorted_list h) in
           List.sort Int.compare ps = ps
           && List.length ps = List.length entries));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap preserves multiset of priorities" ~count:200
         QCheck.(list (pair small_int unit))
         (fun entries ->
           let h = Pq.Heap.of_list entries in
           let ps = List.map fst (Pq.Heap.to_sorted_list h) in
           List.sort Int.compare (List.map fst entries) = ps));
  ]

let () =
  Alcotest.run "pq"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        ] );
      ( "multiqueue",
        [
          Alcotest.test_case "rank error" `Quick test_multiqueue_sequential_rank_error;
          Alcotest.test_case "never loses elements" `Quick
            test_multiqueue_never_loses_elements;
          Alcotest.test_case "non-empty never empty" `Quick
            test_multiqueue_nonempty_never_reports_empty;
          Alcotest.test_case "validation" `Quick test_multiqueue_validation;
        ] );
      ("properties", qcheck_tests);
    ]
