(* Tests for the observability layer: the IVL semantics of each instrument
   (counter scans, histogram buckets, timer sketches), the lossy-by-design
   trace rings, registry identity rules, the pure exposition formats, and —
   the Theorem-6-style headline — that the live envelope-width gauge is a
   sound bound on the staleness of every concurrent [read_total]. *)

module Mono = Ivl.Monotone.Make (Spec.Counter_spec)
module PC = Pipeline.Engine.Make (Pipeline.Targets.Counter)

let fcheck msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* ------------------------- counter ------------------------- *)

let test_counter_concurrent_adds () =
  let c = Obs.Counter.create () in
  let domains = 4 and per = 50_000 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per do
          Obs.Counter.add c (i + 1)
        done)
  in
  Alcotest.(check int) "sum of striped adds" (per * (1 + 2 + 3 + 4))
    (Obs.Counter.read c);
  Obs.Counter.incr c;
  Alcotest.(check int) "incr" (per * 10 + 1) (Obs.Counter.read c)

let test_counter_reads_are_ivl () =
  (* A scraping domain racing the writers: every read must lie in
     [0, final] and successive reads from the one scraper are monotone —
     the Lemma-10 shape of a striped-sum read. *)
  let c = Obs.Counter.create () in
  let domains = 3 and per = 40_000 in
  let stop = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let rec loop acc =
          let v = Obs.Counter.read c in
          if Atomic.get stop then List.rev (v :: acc) else loop (v :: acc)
        in
        loop [])
  in
  let _ =
    Conc.Runner.parallel ~domains (fun _ ->
        for _ = 1 to per do
          Obs.Counter.incr c
        done)
  in
  Atomic.set stop true;
  let reads = Domain.join scraper in
  let final = Obs.Counter.read c in
  Alcotest.(check int) "final exact" (domains * per) final;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "scrapes monotone" true (monotone reads);
  Alcotest.(check bool) "scrapes within [0, final]" true
    (List.for_all (fun v -> v >= 0 && v <= final) reads)

(* ------------------------- gauge ------------------------- *)

let test_gauge_set_read () =
  let g = Obs.Gauge.create ~initial:2.5 () in
  fcheck "initial" 2.5 (Obs.Gauge.read g);
  Obs.Gauge.set g (-7.25);
  fcheck "set" (-7.25) (Obs.Gauge.read g);
  (* Racing setters: the read is one of the stored values, never a tear. *)
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        for _ = 1 to 10_000 do
          Obs.Gauge.set g (float_of_int i)
        done)
  in
  let v = Obs.Gauge.read g in
  Alcotest.(check bool) "one of the racing values" true
    (List.mem v [ 0.; 1.; 2.; 3. ])

(* ------------------------- histogram ------------------------- *)

let test_histogram_buckets () =
  let h = Obs.Histogram.create ~buckets:[| 0.01; 0.1; 1.0 |] () in
  List.iter (Obs.Histogram.observe h) [ 0.005; 0.05; 0.05; 0.5; 50.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  fcheck "sum" 50.605 (Obs.Histogram.sum h);
  let cum = Obs.Histogram.cumulative h in
  Alcotest.(check int) "bucket array length" 4 (Array.length cum);
  let counts = Array.map snd cum in
  Alcotest.(check (array int)) "cumulative counts" [| 1; 3; 4; 5 |] counts;
  fcheck "le 0.01" 0.01 (fst cum.(0));
  Alcotest.(check bool) "+inf last" true (fst cum.(3) = infinity);
  (* Quantiles resolve to within the enclosing bucket. *)
  let p50 = Obs.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 inside its bucket" true (p50 > 0.01 && p50 <= 0.1);
  Alcotest.(check bool) "p100 clamps to largest finite bound" true
    (Obs.Histogram.quantile h 1.0 <= 1.0);
  Alcotest.check_raises "phi out of range"
    (Invalid_argument "Histogram.quantile: phi outside [0,1]") (fun () ->
      ignore (Obs.Histogram.quantile h 1.5))

let test_histogram_rejects_bad_buckets () =
  Alcotest.(check bool) "non-increasing rejected" true
    (try
       ignore (Obs.Histogram.create ~buckets:[| 1.0; 1.0 |] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Obs.Histogram.create ~buckets:[||] ());
       false
     with Invalid_argument _ -> true)

let test_histogram_concurrent_observes () =
  let h = Obs.Histogram.create () in
  let domains = 4 and per = 25_000 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per do
          Obs.Histogram.observe h (0.0001 *. float_of_int (i + 1))
        done)
  in
  Alcotest.(check int) "no observation lost" (domains * per)
    (Obs.Histogram.count h);
  let cum = Obs.Histogram.cumulative h in
  Alcotest.(check int) "cumulative total = count" (domains * per)
    (snd cum.(Array.length cum - 1))

(* ------------------------- timer ------------------------- *)

let test_timer_quantiles () =
  let t = Obs.Timer.create ~seed:42L () in
  (* 1..1000 milliseconds, observed from several domains. *)
  let domains = 4 and per = 250 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for k = 1 to per do
          Obs.Timer.observe t (0.001 *. float_of_int ((i * per) + k))
        done)
  in
  Alcotest.(check int) "count" (domains * per) (Obs.Timer.count t);
  fcheck "sum" (0.001 *. 1000. *. 1001. /. 2.) (Obs.Timer.sum t);
  let p50 = Obs.Timer.quantile t 0.5 in
  Alcotest.(check bool) "p50 near median (KLL rank error)" true
    (p50 > 0.40 && p50 < 0.60);
  let qs = Obs.Timer.quantiles t [ 0.5; 0.99; 1.0 ] in
  Alcotest.(check int) "probe count" 3 (List.length qs);
  let p100 = List.assoc 1.0 qs in
  Alcotest.(check bool) "p100 near the max (KLL rank error)" true
    (p100 > 0.95 && p100 <= 1.0 +. 1e-9);
  Alcotest.(check bool) "probes nondecreasing" true
    (List.assoc 0.5 qs <= List.assoc 0.99 qs && List.assoc 0.99 qs <= p100)

let test_timer_time_and_empty () =
  let t = Obs.Timer.create ~seed:1L () in
  fcheck "empty quantile" 0.0 (Obs.Timer.quantile t 0.9);
  let x = Obs.Timer.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 x;
  Alcotest.(check int) "duration observed" 1 (Obs.Timer.count t);
  Alcotest.(check bool) "duration nonnegative" true (Obs.Timer.sum t >= 0.0)

(* ------------------------- trace ------------------------- *)

let test_trace_wrap_and_dropped () =
  let tr = Obs.Trace.create ~lanes:2 ~capacity:4 () in
  Alcotest.(check int) "lanes" 2 (Obs.Trace.lanes tr);
  Alcotest.(check int) "capacity" 4 (Obs.Trace.capacity tr);
  for k = 1 to 6 do
    Obs.Trace.emit tr ~lane:0 ~tag:"tick" ~a:k ~b:0
  done;
  Obs.Trace.emit tr ~lane:1 ~tag:"other" ~a:99 ~b:1;
  Alcotest.(check int) "written lane 0" 6 (Obs.Trace.written tr ~lane:0);
  Alcotest.(check int) "written lane 1" 1 (Obs.Trace.written tr ~lane:1);
  Alcotest.(check int) "dropped = overwritten only" 2 (Obs.Trace.dropped tr);
  let events = Obs.Trace.dump tr in
  Alcotest.(check int) "survivors" 5 (List.length events);
  (* The two oldest lane-0 events (a = 1, 2) were overwritten. *)
  let lane0 = List.filter (fun (e : Obs.Trace.entry) -> e.lane = 0) events in
  Alcotest.(check (list int)) "ring keeps the newest" [ 3; 4; 5; 6 ]
    (List.map (fun (e : Obs.Trace.entry) -> e.a) lane0);
  let stamps = List.map (fun (e : Obs.Trace.entry) -> e.stamp) events in
  Alcotest.(check bool) "dump ascending by stamp" true
    (stamps = List.sort compare stamps);
  let tail = Obs.Trace.dump_tail tr 2 in
  Alcotest.(check (list string)) "tail is the most recent events"
    [ "tick"; "other" ]
    (List.map (fun (e : Obs.Trace.entry) -> e.tag) tail)

let test_trace_stamps_respect_real_time () =
  (* Two lanes written by two domains in strict alternation: the global
     stamp clock must order them exactly like Recorder tickets do —
     happens-before implies a smaller stamp. *)
  let tr = Obs.Trace.create ~lanes:2 ~capacity:128 () in
  let rounds = 50 in
  let turn = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun i ->
        for k = 0 to rounds - 1 do
          let my_turn = (2 * k) + i in
          while Atomic.get turn <> my_turn do
            Domain.cpu_relax ()
          done;
          Obs.Trace.emit tr ~lane:i ~tag:"turn" ~a:my_turn ~b:0;
          Atomic.set turn (my_turn + 1)
        done)
  in
  let events = Obs.Trace.dump tr in
  Alcotest.(check int) "all events survive" (2 * rounds) (List.length events);
  Alcotest.(check (list int)) "merged order = real-time order"
    (List.init (2 * rounds) Fun.id)
    (List.map (fun (e : Obs.Trace.entry) -> e.a) events)

let test_trace_rejects_bad_shape () =
  Alcotest.(check bool) "zero lanes rejected" true
    (try
       ignore (Obs.Trace.create ~lanes:0 ~capacity:8 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero capacity rejected" true
    (try
       ignore (Obs.Trace.create ~lanes:1 ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------- registry ------------------------- *)

let test_registry_get_or_create () =
  let reg = Obs.Registry.create ~now:(fun () -> 123.0) () in
  let c1 = Obs.Registry.counter reg ~help:"h" "requests_total" in
  let c2 = Obs.Registry.counter reg "requests_total" in
  Obs.Counter.add c1 5;
  Alcotest.(check int) "same identity, same instrument" 5 (Obs.Counter.read c2);
  (* Labels distinguish; label order does not. *)
  let a = Obs.Registry.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "lbl" in
  let b = Obs.Registry.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "lbl" in
  let c = Obs.Registry.counter reg ~labels:[ ("x", "1") ] "lbl" in
  Obs.Counter.incr a;
  Alcotest.(check int) "label order irrelevant" 1 (Obs.Counter.read b);
  Alcotest.(check int) "different label set, different series" 0
    (Obs.Counter.read c);
  (* Same identity as a different kind must raise, not alias. *)
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Obs.Registry.gauge reg "requests_total");
       false
     with Invalid_argument _ -> true)

let test_registry_snapshot_and_fns () =
  let reg = Obs.Registry.create ~now:(fun () -> 9.0) () in
  let c = Obs.Registry.counter reg ~help:"c" "alpha_total" in
  Obs.Counter.add c 7;
  let g = Obs.Registry.gauge reg ~labels:[ ("shard", "0") ] "beta" in
  Obs.Gauge.set g 1.5;
  let cell = Atomic.make 10 in
  Obs.Registry.counter_fn reg "gamma_total" (fun () -> Atomic.get cell);
  let snap = Obs.Registry.snapshot reg in
  fcheck "snapshot stamped by injected clock" 9.0 snap.Obs.Snapshot.at;
  Alcotest.(check int) "owned counter" 7
    (Obs.Snapshot.counter_value snap "alpha_total");
  fcheck "labelled gauge" 1.5
    (Obs.Snapshot.gauge_value snap ~labels:[ ("shard", "0") ] "beta");
  Alcotest.(check int) "callback counter" 10
    (Obs.Snapshot.counter_value snap "gamma_total");
  (* A scrape-time callback reads live state; re-registering replaces it —
     how a restarted component re-points its series. *)
  Atomic.set cell 11;
  Obs.Registry.gauge_fn reg "delta" (fun () -> 0.25);
  Obs.Registry.gauge_fn reg "delta" (fun () -> 0.75);
  let snap2 = Obs.Registry.snapshot reg in
  Alcotest.(check int) "callback is live" 11
    (Obs.Snapshot.counter_value snap2 "gamma_total");
  fcheck "re-registration replaces" 0.75 (Obs.Snapshot.gauge_value snap2 "delta");
  (* Samples sorted by (name, labels); absent lookups take defaults. *)
  let names = List.map (fun s -> s.Obs.Snapshot.name) snap2.Obs.Snapshot.samples in
  Alcotest.(check (list string)) "sorted by name"
    [ "alpha_total"; "beta"; "delta"; "gamma_total" ]
    names;
  Alcotest.(check int) "missing counter defaults to 0" 0
    (Obs.Snapshot.counter_value snap2 "nope");
  Alcotest.(check bool) "find misses on wrong labels" true
    (Obs.Snapshot.find snap2 ~labels:[ ("shard", "9") ] "beta" = None)

(* ------------------------- expose ------------------------- *)

let expose_fixture () =
  let reg = Obs.Registry.create ~now:(fun () -> 100.5) () in
  let c = Obs.Registry.counter reg ~help:"a counter" "req_total" in
  Obs.Counter.add c 3;
  let g = Obs.Registry.gauge reg ~labels:[ ("shard", "1") ] "depth" in
  Obs.Gauge.set g 4.0;
  let h =
    Obs.Registry.histogram reg ~buckets:[| 0.1; 1.0 |] "lat_seconds"
  in
  Obs.Histogram.observe h 0.05;
  Obs.Histogram.observe h 5.0;
  let t = Obs.Registry.timer reg ~quantiles:[ 0.5; 1.0 ] ~seed:7L "lag_seconds" in
  Obs.Timer.observe t 0.25;
  Obs.Registry.snapshot reg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_expose_prometheus () =
  let text = Obs.Expose.to_prometheus (expose_fixture ()) in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" line) true
        (contains text line))
    [
      "# HELP req_total a counter";
      "# TYPE req_total counter";
      "req_total 3";
      "# TYPE depth gauge";
      "depth{shard=\"1\"} 4.0";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
      "# TYPE lag_seconds summary";
      "lag_seconds{quantile=\"0.5\"} 0.25";
      "lag_seconds_count 1";
    ];
  Alcotest.(check bool) "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

let test_expose_json_and_table () =
  let snap = expose_fixture () in
  let json = Obs.Expose.to_json snap in
  List.iter
    (fun piece ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" piece) true
        (contains json piece))
    [
      "{\"at\":100.500000,\"metrics\":[";
      "\"name\":\"req_total\"";
      "\"type\":\"counter\"";
      "\"value\":3";
      "\"labels\":{\"shard\":\"1\"}";
      "\"buckets\":[{\"le\":0.1,\"count\":1}";
      "{\"le\":null,\"count\":2}";
      "\"quantiles\":[{\"phi\":0.5,";
    ];
  (* NaN/inf must not leak into JSON: the +inf bucket bound is encoded as
     null, keeping every parser happy. *)
  Alcotest.(check bool) "no bare inf" false (contains json "inf");
  Alcotest.(check bool) "no NaN" false (contains json "nan");
  let table = Obs.Expose.to_table snap in
  List.iter
    (fun piece ->
      Alcotest.(check bool) (Printf.sprintf "table has %S" piece) true
        (contains table piece))
    [ "req_total"; "depth{shard=1}"; "p50=" ]

(* ------------------- envelope-width gauge soundness ------------------- *)

let test_envelope_gauge_bounds_read_error () =
  (* The Theorem-6-style property behind docs/OBSERVABILITY.md: at any
     scrape, [pipeline_envelope_width] must bound how stale the published
     total is. Protocol: feeders ingest and join (accepted weight frozen),
     then — before drain, while queued items and unflushed worker deltas
     are still invisible to queries — one domain repeatedly scrapes the
     gauge and then reads the total. For each (g_i, v_i) pair, every item
     the final total has and v_i lacked was inside the reported gap:
     final - v_i <= g_i. The recorded history must also stay a clean
     monotone IVL envelope with the scraper racing the merger. *)
  let n = 30_000 and shards = 3 and feeders = 3 in
  let stream =
    Workload.Stream.generate ~seed:11L (Workload.Stream.Uniform 500) ~length:n
  in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let reg = Obs.Registry.create () in
  (* batch > items per shard: deltas only flush at drain, so the scraper
     is guaranteed to observe a nonzero gap. *)
  let p = PC.create ~queue_capacity:n ~batch:(n * 2) ~metrics:reg ~shards () in
  let accepted =
    Conc.Runner.parallel ~domains:feeders (fun i ->
        let ok = ref 0 in
        Array.iter (fun x -> if PC.ingest p x then incr ok) chunks.(i);
        !ok)
  in
  Alcotest.(check int) "all accepted" n (Array.fold_left ( + ) 0 accepted);
  let stop = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let rec loop acc =
          if Atomic.get stop then List.rev acc
          else begin
            let snap = Obs.Registry.snapshot reg in
            let g = Obs.Snapshot.gauge_value snap "pipeline_envelope_width" in
            (* Gauge first, then the read: anything missing from [v] was
               enqueued-but-unpublished no later than the scrape. *)
            let v = PC.read_total p in
            loop ((g, v) :: acc)
          end
        in
        loop [])
  in
  (* Let the scraper race the (idle-but-live) merger for a moment, then
     drain while it is still sampling — restarts of the merge activity
     must not open a window where the gauge under-reports. *)
  Unix.sleepf 0.02;
  PC.drain p;
  Atomic.set stop true;
  let samples = Domain.join scraper in
  let final = PC.read_total p in
  Alcotest.(check int) "nothing lost" n final;
  Alcotest.(check bool) "scraper collected samples" true (samples <> []);
  List.iteri
    (fun i (g, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %d: gap bounds staleness (g=%g v=%d final=%d)"
           i g v final)
        true
        (final - v <= int_of_float g);
      Alcotest.(check bool) (Printf.sprintf "sample %d: gap nonnegative" i) true
        (g >= 0.0);
      Alcotest.(check bool) (Printf.sprintf "sample %d: read within total" i)
        true
        (v >= 0 && v <= final))
    samples;
  Alcotest.(check bool) "pre-drain scrape saw a nonzero gap" true
    (List.exists (fun (g, _) -> g > 0.0) samples);
  Alcotest.(check int) "history is a clean IVL envelope" 0
    (List.length (Mono.violations (PC.history p)));
  (* After drain the gap must close exactly. *)
  let snap = Obs.Registry.snapshot reg in
  fcheck "gap closes at drain" 0.0
    (Obs.Snapshot.gauge_value snap "pipeline_envelope_width");
  Alcotest.(check int) "published series = final" final
    (Obs.Snapshot.counter_value snap "pipeline_published_total")

let test_pipeline_metrics_registration () =
  (* The engine's registered series reconcile with its own stats block. *)
  let n = 8_000 and shards = 2 in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Zipf (200, 1.1)) ~length:n
  in
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create ~lanes:(shards + 2) ~capacity:256 () in
  let p = PC.create ~batch:64 ~combine:true ~metrics:reg ~trace:tr ~shards () in
  Array.iter (fun x -> ignore (PC.ingest p x)) stream;
  PC.drain p;
  let st = PC.stats p in
  let snap = Obs.Registry.snapshot reg in
  let counter = Obs.Snapshot.counter_value snap in
  Alcotest.(check int) "ingested" n (counter "pipeline_ingested_total");
  Alcotest.(check int) "published" st.PC.published
    (counter "pipeline_published_total");
  Alcotest.(check int) "merges" st.PC.merges (counter "pipeline_merges_total");
  Alcotest.(check int) "epoch gauge" st.PC.epoch
    (int_of_float (Obs.Snapshot.gauge_value snap "pipeline_epoch"));
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      let labels = [ ("shard", string_of_int i) ] in
      Alcotest.(check int)
        (Printf.sprintf "shard %d enqueued" i)
        s.enqueued
        (Obs.Snapshot.counter_value snap ~labels "pipeline_shard_enqueued_total");
      fcheck
        (Printf.sprintf "shard %d alive" i)
        (if s.alive then 1.0 else 0.0)
        (Obs.Snapshot.gauge_value snap ~labels "pipeline_shard_alive"))
    st.PC.shards;
  (* Merge-lag summary scraped with one observation per merge. *)
  (match Obs.Snapshot.find snap "pipeline_merge_lag_seconds" with
  | Some (Obs.Snapshot.Summary s) ->
      Alcotest.(check int) "lag observations = merges" st.PC.merges
        s.Obs.Snapshot.s_count
  | _ -> Alcotest.fail "merge-lag summary missing");
  (* Trace lanes: every worker flushed at least once, the merger merged,
     and nothing used the watchdog lane (no supervisor configured). *)
  let events = Obs.Trace.dump tr in
  Alcotest.(check bool) "flush events traced" true
    (List.exists (fun (e : Obs.Trace.entry) -> e.tag = "flush") events);
  Alcotest.(check bool) "merge events traced" true
    (List.exists
       (fun (e : Obs.Trace.entry) -> e.tag = "merge" && e.lane = shards)
       events);
  Alcotest.(check bool) "watchdog lane silent" true
    (Obs.Trace.written tr ~lane:(shards + 1) = 0);
  Alcotest.(check bool) "trace lanes validated" true
    (try
       ignore
         (PC.create ~metrics:reg
            ~trace:(Obs.Trace.create ~lanes:2 ~capacity:8 ())
            ~shards:4 ());
       false
     with Invalid_argument _ -> true)

(* ------------------- Prometheus label-value escaping ------------------- *)

let test_expose_prometheus_escaping () =
  (* text-0.0.4: label values escape exactly backslash, double-quote and
     newline; everything else (a tab here) travels raw. HELP text escapes
     backslash and newline only — quotes are legal there. *)
  let reg = Obs.Registry.create () in
  let c =
    Obs.Registry.counter reg ~help:"back\\slash and\nnewline \"quoted\""
      ~labels:[ ("path", "a\\b\"c\nd\te") ]
      "esc_total"
  in
  Obs.Counter.add c 1;
  let text = Obs.Expose.to_prometheus (Obs.Registry.snapshot reg) in
  Alcotest.(check bool) "label value escaped" true
    (contains text "esc_total{path=\"a\\\\b\\\"c\\nd\te\"} 1");
  Alcotest.(check bool) "help escaped, quotes raw" true
    (contains text "# HELP esc_total back\\\\slash and\\nnewline \"quoted\"");
  (* The exposition stays line-oriented: the raw newline inside the label
     value must not have split the sample across two lines. *)
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "sample is one line" true
    (List.exists
       (fun l ->
         contains l "esc_total{" && contains l "} 1" && contains l "\\n")
       lines)

(* ------------------------------ span/tracer ---------------------------- *)

let test_span_context () =
  Alcotest.(check bool) "zero is zero" true (Obs.Span.is_zero Obs.Span.zero);
  let ctx = { Obs.Span.trace_id = 7L; parent = 0L } in
  Alcotest.(check bool) "nonzero trace id" false (Obs.Span.is_zero ctx);
  let ctx' = Obs.Span.with_parent ctx 42L in
  Alcotest.(check bool) "trace id preserved" true
    (Int64.equal ctx'.Obs.Span.trace_id 7L);
  Alcotest.(check bool) "parent replaced" true
    (Int64.equal ctx'.Obs.Span.parent 42L);
  let r =
    {
      Obs.Span.trace_id = 0xABCL;
      span_id = 1L;
      parent = 0L;
      stage = "decode";
      start_ns = 5;
      dur_ns = 3;
      stamp = 9;
    }
  in
  let j = Obs.Span.record_to_json r in
  Alcotest.(check bool) "json has stage" true (contains j "\"stage\":\"decode\"");
  Alcotest.(check bool) "json has dur" true (contains j "\"dur_ns\":3")

let test_tracer_sampling_deterministic () =
  let decisions t n = List.init n (fun _ -> Obs.Tracer.sample t <> None) in
  let t1 = Obs.Tracer.create ~sample_every:8 ~seed:99L () in
  let t2 = Obs.Tracer.create ~sample_every:8 ~seed:99L () in
  let d1 = decisions t1 2000 and d2 = decisions t2 2000 in
  Alcotest.(check bool) "same seed, same decision sequence" true (d1 = d2);
  let hits = List.length (List.filter Fun.id d1) in
  Alcotest.(check int) "sampled counter agrees" hits (Obs.Tracer.sampled t1);
  (* roughly 1/8: a 4x band keeps the check seed-robust *)
  Alcotest.(check bool)
    (Printf.sprintf "rate in ballpark (%d/2000)" hits)
    true
    (hits > 2000 / 32 && hits < 2000 / 2);
  let t3 = Obs.Tracer.create ~sample_every:8 ~seed:100L () in
  Alcotest.(check bool) "different seed diverges" false (decisions t3 2000 = d1);
  let every = Obs.Tracer.create ~sample_every:1 ~seed:1L () in
  Alcotest.(check bool) "sample_every 1 traces all" true
    (List.for_all Fun.id (decisions every 100));
  let off = Obs.Tracer.create ~sample_every:0 ~seed:1L () in
  Alcotest.(check bool) "sample_every 0 disables" true
    (List.for_all not (decisions off 100));
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore (Obs.Tracer.create ~sample_every:(-1) ());
       false
     with Invalid_argument _ -> true)

let test_tracer_ring_overflow_and_chain () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Tracer.create ~sample_every:1 ~seed:3L ~keep:16 ~metrics:reg () in
  (* Zero context: no span minted, nothing recorded. *)
  let sid =
    Obs.Tracer.record tr ~ctx:Obs.Span.zero ~stage:"decode" ~start_ns:0
      ~end_ns:1
  in
  Alcotest.(check bool) "zero ctx returns 0L" true (Int64.equal sid 0L);
  Alcotest.(check int) "zero ctx not recorded" 0 (Obs.Tracer.spans tr);
  (* A two-stage parent chain. *)
  let ctx = Option.get (Obs.Tracer.sample tr) in
  Alcotest.(check bool) "root parent is 0" true
    (Int64.equal ctx.Obs.Span.parent 0L);
  let t0 = Obs.Tracer.now_ns () in
  let sid1 = Obs.Tracer.record tr ~ctx ~stage:"enqueue" ~start_ns:t0 ~end_ns:t0 in
  let ctx2 = Obs.Span.with_parent ctx sid1 in
  let sid2 =
    Obs.Tracer.record tr ~ctx:ctx2 ~stage:"flush" ~start_ns:t0
      ~end_ns:(Obs.Tracer.now_ns ())
  in
  Alcotest.(check bool) "distinct span ids" false (Int64.equal sid1 sid2);
  (match Obs.Tracer.recent tr 2 with
  | [ a; b ] ->
      Alcotest.(check bool) "one trace" true
        (Int64.equal a.Obs.Span.trace_id b.Obs.Span.trace_id);
      Alcotest.(check string) "oldest first" "enqueue" a.Obs.Span.stage;
      Alcotest.(check bool) "flush parented on enqueue" true
        (Int64.equal b.Obs.Span.parent sid1);
      Alcotest.(check bool) "stamps ordered" true
        (a.Obs.Span.stamp < b.Obs.Span.stamp)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* Overflow the keep=16 ring: only the most recent 16 survive and the
     overwritten ones are counted as dropped. *)
  for _ = 1 to 98 do
    let ctx = Option.get (Obs.Tracer.sample tr) in
    ignore (Obs.Tracer.record tr ~ctx ~stage:"decode" ~start_ns:0 ~end_ns:1)
  done;
  Alcotest.(check int) "spans ever" 100 (Obs.Tracer.spans tr);
  let recent = Obs.Tracer.recent tr 1000 in
  Alcotest.(check int) "ring keeps 16" 16 (List.length recent);
  let stamps = List.map (fun (r : Obs.Span.record) -> r.Obs.Span.stamp) recent in
  Alcotest.(check bool) "stamps strictly increasing" true
    (List.for_all2 ( < )
       (List.filteri (fun i _ -> i < 15) stamps)
       (List.tl stamps));
  let snap = Obs.Registry.snapshot reg in
  Alcotest.(check int) "dropped accounting" 84
    (Obs.Snapshot.counter_value snap "trace_spans_dropped_total");
  Alcotest.(check int) "spans total" 100
    (Obs.Snapshot.counter_value snap "trace_spans_total")

(* --------------------------------- slo --------------------------------- *)

let slo_fixture ?(warn_ratio = 0.5) ?(breach_after = 3) ?(clear_after = 2)
    ?metrics width =
  Obs.Slo.create ?metrics
    ~budget:{ Obs.Slo.envelope_width = 100.0; staleness = 10.0; merge_lag = 1.0 }
    ~warn_ratio ~breach_after ~clear_after
    ~envelope:(fun () -> !width)
    ~staleness:(fun () -> -1.0) (* unknown: must score in-budget *)
    ~merge_lag:(fun () -> 0.0)
    ()

let test_slo_burn_machine () =
  let width = ref 0.0 in
  let reg = Obs.Registry.create () in
  let slo = slo_fixture ~metrics:reg width in
  let eval () = (Obs.Slo.eval slo).Obs.Slo.state in
  Alcotest.(check bool) "starts ok" true (eval () = Obs.Slo.Ok);
  (* Warning arms immediately at warn_ratio, without hysteresis. *)
  width := 60.0;
  Alcotest.(check bool) "warn at 0.6x" true (eval () = Obs.Slo.Warning);
  (* Breach needs breach_after consecutive over-budget evals. *)
  width := 150.0;
  Alcotest.(check bool) "over 1" true (eval () = Obs.Slo.Warning);
  Alcotest.(check bool) "over 2" true (eval () = Obs.Slo.Warning);
  Alcotest.(check bool) "over 3 breaches" true (eval () = Obs.Slo.Breach);
  Alcotest.(check int) "one breach counted" 1 (Obs.Slo.breaches slo);
  (* A single clean eval must not clear it (hysteresis)... *)
  width := 10.0;
  Alcotest.(check bool) "clean 1 still breach" true (eval () = Obs.Slo.Breach);
  (* ...but clear_after consecutive clean evals step it down one level. *)
  Alcotest.(check bool) "clean 2 downgrades" true (eval () = Obs.Slo.Warning);
  Alcotest.(check bool) "clean 3 clears" true (eval () = Obs.Slo.Ok);
  Alcotest.(check int) "breach count sticky" 1 (Obs.Slo.breaches slo);
  let v = Obs.Slo.current slo in
  Alcotest.(check string) "worst dim" "envelope_width" v.Obs.Slo.worst_dim;
  (* An interrupted over-streak never reaches breach. *)
  width := 150.0;
  ignore (eval ());
  ignore (eval ());
  width := 10.0;
  ignore (eval ());
  width := 150.0;
  ignore (eval ());
  ignore (eval ());
  Alcotest.(check int) "streak reset prevented breach" 1
    (Obs.Slo.breaches slo);
  let snap = Obs.Registry.snapshot reg in
  fcheck "slo_status gauge" 1.0 (Obs.Snapshot.gauge_value snap "slo_status");
  Alcotest.(check int) "slo_breaches_total" 1
    (Obs.Snapshot.counter_value snap "slo_breaches_total");
  fcheck "per-dim ratio" 1.5
    (Obs.Snapshot.gauge_value snap
       ~labels:[ ("dim", "envelope_width") ]
       "slo_ratio")

let test_slo_theorem6_budget () =
  let b =
    Obs.Slo.theorem6_budget ~slack:2.0 ~shards:4 ~batch:512 ~queue_capacity:1024
      ()
  in
  fcheck "envelope bound" (float_of_int (4 * (512 + 1024) * 2))
    b.Obs.Slo.envelope_width;
  fcheck "staleness mirrors envelope" b.Obs.Slo.envelope_width
    b.Obs.Slo.staleness;
  fcheck "merge lag floored" 8.0 b.Obs.Slo.merge_lag;
  let tiny = Obs.Slo.theorem6_budget ~shards:1 ~batch:1 ~queue_capacity:1 () in
  fcheck "merge lag floor is 1s" 1.0 tiny.Obs.Slo.merge_lag;
  Alcotest.(check bool) "rejects bad slack" true
    (try
       ignore (Obs.Slo.theorem6_budget ~slack:0.0 ~shards:1 ~batch:1
                 ~queue_capacity:1 ());
       false
     with Invalid_argument _ -> true)

(* --------------------------------- http -------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  Unix.close fd;
  let raw = Buffer.contents buf in
  let status =
    match String.split_on_char ' ' raw with
    | _ :: code :: _ -> int_of_string code
    | _ -> -1
  in
  let body =
    match String.index_opt raw '\r' with
    | None -> ""
    | Some _ -> (
        let rec find i =
          if i + 4 > String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let i = find 0 in
        String.sub raw i (String.length raw - i))
  in
  (status, body)

let test_http_telemetry_plane () =
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "requests_total") 3;
  let tr = Obs.Tracer.create ~sample_every:1 ~seed:2L () in
  let ctx = Option.get (Obs.Tracer.sample tr) in
  ignore (Obs.Tracer.record tr ~ctx ~stage:"decode" ~start_ns:10 ~end_ns:20);
  let width = ref 150.0 in
  let slo = slo_fixture ~warn_ratio:1.0 ~breach_after:1 width in
  let h =
    Obs.Http.create ~port:0
      ~handler:
        (Obs.Http.telemetry_handler ~registry:reg ~tracer:tr ~slo
           ~health:(fun () -> [ ("role", "test") ])
           ())
      ()
  in
  let port = Obs.Http.port h in
  let status, body = http_get port "/metrics" in
  Alcotest.(check int) "metrics 200" 200 status;
  Alcotest.(check bool) "prometheus body" true
    (contains body "requests_total 3");
  let status, body = http_get port "/metrics.json" in
  Alcotest.(check int) "json 200" 200 status;
  Alcotest.(check bool) "json body" true
    (contains body "\"name\":\"requests_total\"");
  let status, body = http_get port "/trace?n=8" in
  Alcotest.(check int) "trace 200" 200 status;
  Alcotest.(check bool) "trace body" true
    (contains body "\"stage\":\"decode\"");
  (* First /healthz scrape drives Ok -> Warning (still 200); the second
     completes the breach_after:1 streak -> Breach and must turn 503 so
     curl -f and load balancers see it. *)
  let status, body = http_get port "/healthz" in
  Alcotest.(check int) "healthz warning is 200" 200 status;
  Alcotest.(check bool) "health kv present" true
    (contains body "\"role\":\"test\"");
  let status, body = http_get port "/healthz" in
  Alcotest.(check int) "healthz breach is 503" 503 status;
  Alcotest.(check bool) "breach visible" true (contains body "breach");
  let status, _ = http_get port "/nope" in
  Alcotest.(check int) "unknown path 404" 404 status;
  Alcotest.(check bool) "requests counted" true (Obs.Http.requests h >= 6);
  Obs.Http.stop h;
  Obs.Http.stop h (* idempotent *)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "concurrent adds" `Quick test_counter_concurrent_adds;
          Alcotest.test_case "reads are IVL" `Quick test_counter_reads_are_ivl;
        ] );
      ("gauge", [ Alcotest.test_case "set/read" `Quick test_gauge_set_read ]);
      ( "histogram",
        [
          Alcotest.test_case "buckets and quantiles" `Quick test_histogram_buckets;
          Alcotest.test_case "rejects bad buckets" `Quick
            test_histogram_rejects_bad_buckets;
          Alcotest.test_case "concurrent observes" `Quick
            test_histogram_concurrent_observes;
        ] );
      ( "timer",
        [
          Alcotest.test_case "quantiles" `Quick test_timer_quantiles;
          Alcotest.test_case "time and empty" `Quick test_timer_time_and_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "wrap and dropped" `Quick test_trace_wrap_and_dropped;
          Alcotest.test_case "stamps respect real time" `Quick
            test_trace_stamps_respect_real_time;
          Alcotest.test_case "rejects bad shape" `Quick test_trace_rejects_bad_shape;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create identity" `Quick
            test_registry_get_or_create;
          Alcotest.test_case "snapshot and callbacks" `Quick
            test_registry_snapshot_and_fns;
        ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus text" `Quick test_expose_prometheus;
          Alcotest.test_case "json and table" `Quick test_expose_json_and_table;
          Alcotest.test_case "prometheus escaping" `Quick
            test_expose_prometheus_escaping;
        ] );
      ( "span",
        [
          Alcotest.test_case "context and json" `Quick test_span_context;
          Alcotest.test_case "sampling determinism" `Quick
            test_tracer_sampling_deterministic;
          Alcotest.test_case "ring overflow and parent chain" `Quick
            test_tracer_ring_overflow_and_chain;
        ] );
      ( "slo",
        [
          Alcotest.test_case "burn-rate machine" `Quick test_slo_burn_machine;
          Alcotest.test_case "theorem-6 budget" `Quick test_slo_theorem6_budget;
        ] );
      ( "http",
        [
          Alcotest.test_case "telemetry plane" `Quick test_http_telemetry_plane;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "envelope gauge bounds read error" `Quick
            test_envelope_gauge_bounds_read_error;
          Alcotest.test_case "metrics registration" `Quick
            test_pipeline_metrics_registration;
        ] );
    ]
