(* Tests for the observability layer: the IVL semantics of each instrument
   (counter scans, histogram buckets, timer sketches), the lossy-by-design
   trace rings, registry identity rules, the pure exposition formats, and —
   the Theorem-6-style headline — that the live envelope-width gauge is a
   sound bound on the staleness of every concurrent [read_total]. *)

module Mono = Ivl.Monotone.Make (Spec.Counter_spec)
module PC = Pipeline.Engine.Make (Pipeline.Targets.Counter)

let fcheck msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* ------------------------- counter ------------------------- *)

let test_counter_concurrent_adds () =
  let c = Obs.Counter.create () in
  let domains = 4 and per = 50_000 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per do
          Obs.Counter.add c (i + 1)
        done)
  in
  Alcotest.(check int) "sum of striped adds" (per * (1 + 2 + 3 + 4))
    (Obs.Counter.read c);
  Obs.Counter.incr c;
  Alcotest.(check int) "incr" (per * 10 + 1) (Obs.Counter.read c)

let test_counter_reads_are_ivl () =
  (* A scraping domain racing the writers: every read must lie in
     [0, final] and successive reads from the one scraper are monotone —
     the Lemma-10 shape of a striped-sum read. *)
  let c = Obs.Counter.create () in
  let domains = 3 and per = 40_000 in
  let stop = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let rec loop acc =
          let v = Obs.Counter.read c in
          if Atomic.get stop then List.rev (v :: acc) else loop (v :: acc)
        in
        loop [])
  in
  let _ =
    Conc.Runner.parallel ~domains (fun _ ->
        for _ = 1 to per do
          Obs.Counter.incr c
        done)
  in
  Atomic.set stop true;
  let reads = Domain.join scraper in
  let final = Obs.Counter.read c in
  Alcotest.(check int) "final exact" (domains * per) final;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "scrapes monotone" true (monotone reads);
  Alcotest.(check bool) "scrapes within [0, final]" true
    (List.for_all (fun v -> v >= 0 && v <= final) reads)

(* ------------------------- gauge ------------------------- *)

let test_gauge_set_read () =
  let g = Obs.Gauge.create ~initial:2.5 () in
  fcheck "initial" 2.5 (Obs.Gauge.read g);
  Obs.Gauge.set g (-7.25);
  fcheck "set" (-7.25) (Obs.Gauge.read g);
  (* Racing setters: the read is one of the stored values, never a tear. *)
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        for _ = 1 to 10_000 do
          Obs.Gauge.set g (float_of_int i)
        done)
  in
  let v = Obs.Gauge.read g in
  Alcotest.(check bool) "one of the racing values" true
    (List.mem v [ 0.; 1.; 2.; 3. ])

(* ------------------------- histogram ------------------------- *)

let test_histogram_buckets () =
  let h = Obs.Histogram.create ~buckets:[| 0.01; 0.1; 1.0 |] () in
  List.iter (Obs.Histogram.observe h) [ 0.005; 0.05; 0.05; 0.5; 50.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  fcheck "sum" 50.605 (Obs.Histogram.sum h);
  let cum = Obs.Histogram.cumulative h in
  Alcotest.(check int) "bucket array length" 4 (Array.length cum);
  let counts = Array.map snd cum in
  Alcotest.(check (array int)) "cumulative counts" [| 1; 3; 4; 5 |] counts;
  fcheck "le 0.01" 0.01 (fst cum.(0));
  Alcotest.(check bool) "+inf last" true (fst cum.(3) = infinity);
  (* Quantiles resolve to within the enclosing bucket. *)
  let p50 = Obs.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 inside its bucket" true (p50 > 0.01 && p50 <= 0.1);
  Alcotest.(check bool) "p100 clamps to largest finite bound" true
    (Obs.Histogram.quantile h 1.0 <= 1.0);
  Alcotest.check_raises "phi out of range"
    (Invalid_argument "Histogram.quantile: phi outside [0,1]") (fun () ->
      ignore (Obs.Histogram.quantile h 1.5))

let test_histogram_rejects_bad_buckets () =
  Alcotest.(check bool) "non-increasing rejected" true
    (try
       ignore (Obs.Histogram.create ~buckets:[| 1.0; 1.0 |] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Obs.Histogram.create ~buckets:[||] ());
       false
     with Invalid_argument _ -> true)

let test_histogram_concurrent_observes () =
  let h = Obs.Histogram.create () in
  let domains = 4 and per = 25_000 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per do
          Obs.Histogram.observe h (0.0001 *. float_of_int (i + 1))
        done)
  in
  Alcotest.(check int) "no observation lost" (domains * per)
    (Obs.Histogram.count h);
  let cum = Obs.Histogram.cumulative h in
  Alcotest.(check int) "cumulative total = count" (domains * per)
    (snd cum.(Array.length cum - 1))

(* ------------------------- timer ------------------------- *)

let test_timer_quantiles () =
  let t = Obs.Timer.create ~seed:42L () in
  (* 1..1000 milliseconds, observed from several domains. *)
  let domains = 4 and per = 250 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for k = 1 to per do
          Obs.Timer.observe t (0.001 *. float_of_int ((i * per) + k))
        done)
  in
  Alcotest.(check int) "count" (domains * per) (Obs.Timer.count t);
  fcheck "sum" (0.001 *. 1000. *. 1001. /. 2.) (Obs.Timer.sum t);
  let p50 = Obs.Timer.quantile t 0.5 in
  Alcotest.(check bool) "p50 near median (KLL rank error)" true
    (p50 > 0.40 && p50 < 0.60);
  let qs = Obs.Timer.quantiles t [ 0.5; 0.99; 1.0 ] in
  Alcotest.(check int) "probe count" 3 (List.length qs);
  let p100 = List.assoc 1.0 qs in
  Alcotest.(check bool) "p100 near the max (KLL rank error)" true
    (p100 > 0.95 && p100 <= 1.0 +. 1e-9);
  Alcotest.(check bool) "probes nondecreasing" true
    (List.assoc 0.5 qs <= List.assoc 0.99 qs && List.assoc 0.99 qs <= p100)

let test_timer_time_and_empty () =
  let t = Obs.Timer.create ~seed:1L () in
  fcheck "empty quantile" 0.0 (Obs.Timer.quantile t 0.9);
  let x = Obs.Timer.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 x;
  Alcotest.(check int) "duration observed" 1 (Obs.Timer.count t);
  Alcotest.(check bool) "duration nonnegative" true (Obs.Timer.sum t >= 0.0)

(* ------------------------- trace ------------------------- *)

let test_trace_wrap_and_dropped () =
  let tr = Obs.Trace.create ~lanes:2 ~capacity:4 () in
  Alcotest.(check int) "lanes" 2 (Obs.Trace.lanes tr);
  Alcotest.(check int) "capacity" 4 (Obs.Trace.capacity tr);
  for k = 1 to 6 do
    Obs.Trace.emit tr ~lane:0 ~tag:"tick" ~a:k ~b:0
  done;
  Obs.Trace.emit tr ~lane:1 ~tag:"other" ~a:99 ~b:1;
  Alcotest.(check int) "written lane 0" 6 (Obs.Trace.written tr ~lane:0);
  Alcotest.(check int) "written lane 1" 1 (Obs.Trace.written tr ~lane:1);
  Alcotest.(check int) "dropped = overwritten only" 2 (Obs.Trace.dropped tr);
  let events = Obs.Trace.dump tr in
  Alcotest.(check int) "survivors" 5 (List.length events);
  (* The two oldest lane-0 events (a = 1, 2) were overwritten. *)
  let lane0 = List.filter (fun (e : Obs.Trace.entry) -> e.lane = 0) events in
  Alcotest.(check (list int)) "ring keeps the newest" [ 3; 4; 5; 6 ]
    (List.map (fun (e : Obs.Trace.entry) -> e.a) lane0);
  let stamps = List.map (fun (e : Obs.Trace.entry) -> e.stamp) events in
  Alcotest.(check bool) "dump ascending by stamp" true
    (stamps = List.sort compare stamps);
  let tail = Obs.Trace.dump_tail tr 2 in
  Alcotest.(check (list string)) "tail is the most recent events"
    [ "tick"; "other" ]
    (List.map (fun (e : Obs.Trace.entry) -> e.tag) tail)

let test_trace_stamps_respect_real_time () =
  (* Two lanes written by two domains in strict alternation: the global
     stamp clock must order them exactly like Recorder tickets do —
     happens-before implies a smaller stamp. *)
  let tr = Obs.Trace.create ~lanes:2 ~capacity:128 () in
  let rounds = 50 in
  let turn = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun i ->
        for k = 0 to rounds - 1 do
          let my_turn = (2 * k) + i in
          while Atomic.get turn <> my_turn do
            Domain.cpu_relax ()
          done;
          Obs.Trace.emit tr ~lane:i ~tag:"turn" ~a:my_turn ~b:0;
          Atomic.set turn (my_turn + 1)
        done)
  in
  let events = Obs.Trace.dump tr in
  Alcotest.(check int) "all events survive" (2 * rounds) (List.length events);
  Alcotest.(check (list int)) "merged order = real-time order"
    (List.init (2 * rounds) Fun.id)
    (List.map (fun (e : Obs.Trace.entry) -> e.a) events)

let test_trace_rejects_bad_shape () =
  Alcotest.(check bool) "zero lanes rejected" true
    (try
       ignore (Obs.Trace.create ~lanes:0 ~capacity:8 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero capacity rejected" true
    (try
       ignore (Obs.Trace.create ~lanes:1 ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------- registry ------------------------- *)

let test_registry_get_or_create () =
  let reg = Obs.Registry.create ~now:(fun () -> 123.0) () in
  let c1 = Obs.Registry.counter reg ~help:"h" "requests_total" in
  let c2 = Obs.Registry.counter reg "requests_total" in
  Obs.Counter.add c1 5;
  Alcotest.(check int) "same identity, same instrument" 5 (Obs.Counter.read c2);
  (* Labels distinguish; label order does not. *)
  let a = Obs.Registry.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "lbl" in
  let b = Obs.Registry.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "lbl" in
  let c = Obs.Registry.counter reg ~labels:[ ("x", "1") ] "lbl" in
  Obs.Counter.incr a;
  Alcotest.(check int) "label order irrelevant" 1 (Obs.Counter.read b);
  Alcotest.(check int) "different label set, different series" 0
    (Obs.Counter.read c);
  (* Same identity as a different kind must raise, not alias. *)
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Obs.Registry.gauge reg "requests_total");
       false
     with Invalid_argument _ -> true)

let test_registry_snapshot_and_fns () =
  let reg = Obs.Registry.create ~now:(fun () -> 9.0) () in
  let c = Obs.Registry.counter reg ~help:"c" "alpha_total" in
  Obs.Counter.add c 7;
  let g = Obs.Registry.gauge reg ~labels:[ ("shard", "0") ] "beta" in
  Obs.Gauge.set g 1.5;
  let cell = Atomic.make 10 in
  Obs.Registry.counter_fn reg "gamma_total" (fun () -> Atomic.get cell);
  let snap = Obs.Registry.snapshot reg in
  fcheck "snapshot stamped by injected clock" 9.0 snap.Obs.Snapshot.at;
  Alcotest.(check int) "owned counter" 7
    (Obs.Snapshot.counter_value snap "alpha_total");
  fcheck "labelled gauge" 1.5
    (Obs.Snapshot.gauge_value snap ~labels:[ ("shard", "0") ] "beta");
  Alcotest.(check int) "callback counter" 10
    (Obs.Snapshot.counter_value snap "gamma_total");
  (* A scrape-time callback reads live state; re-registering replaces it —
     how a restarted component re-points its series. *)
  Atomic.set cell 11;
  Obs.Registry.gauge_fn reg "delta" (fun () -> 0.25);
  Obs.Registry.gauge_fn reg "delta" (fun () -> 0.75);
  let snap2 = Obs.Registry.snapshot reg in
  Alcotest.(check int) "callback is live" 11
    (Obs.Snapshot.counter_value snap2 "gamma_total");
  fcheck "re-registration replaces" 0.75 (Obs.Snapshot.gauge_value snap2 "delta");
  (* Samples sorted by (name, labels); absent lookups take defaults. *)
  let names = List.map (fun s -> s.Obs.Snapshot.name) snap2.Obs.Snapshot.samples in
  Alcotest.(check (list string)) "sorted by name"
    [ "alpha_total"; "beta"; "delta"; "gamma_total" ]
    names;
  Alcotest.(check int) "missing counter defaults to 0" 0
    (Obs.Snapshot.counter_value snap2 "nope");
  Alcotest.(check bool) "find misses on wrong labels" true
    (Obs.Snapshot.find snap2 ~labels:[ ("shard", "9") ] "beta" = None)

(* ------------------------- expose ------------------------- *)

let expose_fixture () =
  let reg = Obs.Registry.create ~now:(fun () -> 100.5) () in
  let c = Obs.Registry.counter reg ~help:"a counter" "req_total" in
  Obs.Counter.add c 3;
  let g = Obs.Registry.gauge reg ~labels:[ ("shard", "1") ] "depth" in
  Obs.Gauge.set g 4.0;
  let h =
    Obs.Registry.histogram reg ~buckets:[| 0.1; 1.0 |] "lat_seconds"
  in
  Obs.Histogram.observe h 0.05;
  Obs.Histogram.observe h 5.0;
  let t = Obs.Registry.timer reg ~quantiles:[ 0.5; 1.0 ] ~seed:7L "lag_seconds" in
  Obs.Timer.observe t 0.25;
  Obs.Registry.snapshot reg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_expose_prometheus () =
  let text = Obs.Expose.to_prometheus (expose_fixture ()) in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" line) true
        (contains text line))
    [
      "# HELP req_total a counter";
      "# TYPE req_total counter";
      "req_total 3";
      "# TYPE depth gauge";
      "depth{shard=\"1\"} 4.0";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
      "# TYPE lag_seconds summary";
      "lag_seconds{quantile=\"0.5\"} 0.25";
      "lag_seconds_count 1";
    ];
  Alcotest.(check bool) "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

let test_expose_json_and_table () =
  let snap = expose_fixture () in
  let json = Obs.Expose.to_json snap in
  List.iter
    (fun piece ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" piece) true
        (contains json piece))
    [
      "{\"at\":100.500000,\"metrics\":[";
      "\"name\":\"req_total\"";
      "\"type\":\"counter\"";
      "\"value\":3";
      "\"labels\":{\"shard\":\"1\"}";
      "\"buckets\":[{\"le\":0.1,\"count\":1}";
      "{\"le\":null,\"count\":2}";
      "\"quantiles\":[{\"phi\":0.5,";
    ];
  (* NaN/inf must not leak into JSON: the +inf bucket bound is encoded as
     null, keeping every parser happy. *)
  Alcotest.(check bool) "no bare inf" false (contains json "inf");
  Alcotest.(check bool) "no NaN" false (contains json "nan");
  let table = Obs.Expose.to_table snap in
  List.iter
    (fun piece ->
      Alcotest.(check bool) (Printf.sprintf "table has %S" piece) true
        (contains table piece))
    [ "req_total"; "depth{shard=1}"; "p50=" ]

(* ------------------- envelope-width gauge soundness ------------------- *)

let test_envelope_gauge_bounds_read_error () =
  (* The Theorem-6-style property behind docs/OBSERVABILITY.md: at any
     scrape, [pipeline_envelope_width] must bound how stale the published
     total is. Protocol: feeders ingest and join (accepted weight frozen),
     then — before drain, while queued items and unflushed worker deltas
     are still invisible to queries — one domain repeatedly scrapes the
     gauge and then reads the total. For each (g_i, v_i) pair, every item
     the final total has and v_i lacked was inside the reported gap:
     final - v_i <= g_i. The recorded history must also stay a clean
     monotone IVL envelope with the scraper racing the merger. *)
  let n = 30_000 and shards = 3 and feeders = 3 in
  let stream =
    Workload.Stream.generate ~seed:11L (Workload.Stream.Uniform 500) ~length:n
  in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let reg = Obs.Registry.create () in
  (* batch > items per shard: deltas only flush at drain, so the scraper
     is guaranteed to observe a nonzero gap. *)
  let p = PC.create ~queue_capacity:n ~batch:(n * 2) ~metrics:reg ~shards () in
  let accepted =
    Conc.Runner.parallel ~domains:feeders (fun i ->
        let ok = ref 0 in
        Array.iter (fun x -> if PC.ingest p x then incr ok) chunks.(i);
        !ok)
  in
  Alcotest.(check int) "all accepted" n (Array.fold_left ( + ) 0 accepted);
  let stop = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let rec loop acc =
          if Atomic.get stop then List.rev acc
          else begin
            let snap = Obs.Registry.snapshot reg in
            let g = Obs.Snapshot.gauge_value snap "pipeline_envelope_width" in
            (* Gauge first, then the read: anything missing from [v] was
               enqueued-but-unpublished no later than the scrape. *)
            let v = PC.read_total p in
            loop ((g, v) :: acc)
          end
        in
        loop [])
  in
  (* Let the scraper race the (idle-but-live) merger for a moment, then
     drain while it is still sampling — restarts of the merge activity
     must not open a window where the gauge under-reports. *)
  Unix.sleepf 0.02;
  PC.drain p;
  Atomic.set stop true;
  let samples = Domain.join scraper in
  let final = PC.read_total p in
  Alcotest.(check int) "nothing lost" n final;
  Alcotest.(check bool) "scraper collected samples" true (samples <> []);
  List.iteri
    (fun i (g, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %d: gap bounds staleness (g=%g v=%d final=%d)"
           i g v final)
        true
        (final - v <= int_of_float g);
      Alcotest.(check bool) (Printf.sprintf "sample %d: gap nonnegative" i) true
        (g >= 0.0);
      Alcotest.(check bool) (Printf.sprintf "sample %d: read within total" i)
        true
        (v >= 0 && v <= final))
    samples;
  Alcotest.(check bool) "pre-drain scrape saw a nonzero gap" true
    (List.exists (fun (g, _) -> g > 0.0) samples);
  Alcotest.(check int) "history is a clean IVL envelope" 0
    (List.length (Mono.violations (PC.history p)));
  (* After drain the gap must close exactly. *)
  let snap = Obs.Registry.snapshot reg in
  fcheck "gap closes at drain" 0.0
    (Obs.Snapshot.gauge_value snap "pipeline_envelope_width");
  Alcotest.(check int) "published series = final" final
    (Obs.Snapshot.counter_value snap "pipeline_published_total")

let test_pipeline_metrics_registration () =
  (* The engine's registered series reconcile with its own stats block. *)
  let n = 8_000 and shards = 2 in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Zipf (200, 1.1)) ~length:n
  in
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create ~lanes:(shards + 2) ~capacity:256 () in
  let p = PC.create ~batch:64 ~combine:true ~metrics:reg ~trace:tr ~shards () in
  Array.iter (fun x -> ignore (PC.ingest p x)) stream;
  PC.drain p;
  let st = PC.stats p in
  let snap = Obs.Registry.snapshot reg in
  let counter = Obs.Snapshot.counter_value snap in
  Alcotest.(check int) "ingested" n (counter "pipeline_ingested_total");
  Alcotest.(check int) "published" st.PC.published
    (counter "pipeline_published_total");
  Alcotest.(check int) "merges" st.PC.merges (counter "pipeline_merges_total");
  Alcotest.(check int) "epoch gauge" st.PC.epoch
    (int_of_float (Obs.Snapshot.gauge_value snap "pipeline_epoch"));
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      let labels = [ ("shard", string_of_int i) ] in
      Alcotest.(check int)
        (Printf.sprintf "shard %d enqueued" i)
        s.enqueued
        (Obs.Snapshot.counter_value snap ~labels "pipeline_shard_enqueued_total");
      fcheck
        (Printf.sprintf "shard %d alive" i)
        (if s.alive then 1.0 else 0.0)
        (Obs.Snapshot.gauge_value snap ~labels "pipeline_shard_alive"))
    st.PC.shards;
  (* Merge-lag summary scraped with one observation per merge. *)
  (match Obs.Snapshot.find snap "pipeline_merge_lag_seconds" with
  | Some (Obs.Snapshot.Summary s) ->
      Alcotest.(check int) "lag observations = merges" st.PC.merges
        s.Obs.Snapshot.s_count
  | _ -> Alcotest.fail "merge-lag summary missing");
  (* Trace lanes: every worker flushed at least once, the merger merged,
     and nothing used the watchdog lane (no supervisor configured). *)
  let events = Obs.Trace.dump tr in
  Alcotest.(check bool) "flush events traced" true
    (List.exists (fun (e : Obs.Trace.entry) -> e.tag = "flush") events);
  Alcotest.(check bool) "merge events traced" true
    (List.exists
       (fun (e : Obs.Trace.entry) -> e.tag = "merge" && e.lane = shards)
       events);
  Alcotest.(check bool) "watchdog lane silent" true
    (Obs.Trace.written tr ~lane:(shards + 1) = 0);
  Alcotest.(check bool) "trace lanes validated" true
    (try
       ignore
         (PC.create ~metrics:reg
            ~trace:(Obs.Trace.create ~lanes:2 ~capacity:8 ())
            ~shards:4 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "concurrent adds" `Quick test_counter_concurrent_adds;
          Alcotest.test_case "reads are IVL" `Quick test_counter_reads_are_ivl;
        ] );
      ("gauge", [ Alcotest.test_case "set/read" `Quick test_gauge_set_read ]);
      ( "histogram",
        [
          Alcotest.test_case "buckets and quantiles" `Quick test_histogram_buckets;
          Alcotest.test_case "rejects bad buckets" `Quick
            test_histogram_rejects_bad_buckets;
          Alcotest.test_case "concurrent observes" `Quick
            test_histogram_concurrent_observes;
        ] );
      ( "timer",
        [
          Alcotest.test_case "quantiles" `Quick test_timer_quantiles;
          Alcotest.test_case "time and empty" `Quick test_timer_time_and_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "wrap and dropped" `Quick test_trace_wrap_and_dropped;
          Alcotest.test_case "stamps respect real time" `Quick
            test_trace_stamps_respect_real_time;
          Alcotest.test_case "rejects bad shape" `Quick test_trace_rejects_bad_shape;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create identity" `Quick
            test_registry_get_or_create;
          Alcotest.test_case "snapshot and callbacks" `Quick
            test_registry_snapshot_and_fns;
        ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus text" `Quick test_expose_prometheus;
          Alcotest.test_case "json and table" `Quick test_expose_json_and_table;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "envelope gauge bounds read error" `Quick
            test_envelope_gauge_bounds_read_error;
          Alcotest.test_case "metrics registration" `Quick
            test_pipeline_metrics_registration;
        ] );
    ]
