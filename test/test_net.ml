(* The served tier, tested at three depths:

   - the frame vocabulary in isolation (roundtrips, schema validation, and
     the Unknown_kind regression — a foreign kind tag must surface as its
     own error, not a parse failure);
   - the raw protocol against a live server (acks, queries, and the
     adversarial-peer suite: truncated frames, flipped checksums, oversized
     declared lengths, slow-loris headers, abrupt disconnects — every one
     must end in a clean error/reset with the server still serving);
   - the full system (batching client + follower replica): the follower
     never leads the leader (the IVL envelope), and after the leader's
     drain the two are bit-for-bit equal. *)

module Codec = Wire.Codec
module Frame = Net.Frame
module Conn = Net.Conn
module MC = Pipeline.Targets.Counter
module Srv = Net.Server.Make (MC)
module Rep = Net.Replica.Make (MC)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Frame vocabulary                                                    *)
(* ------------------------------------------------------------------ *)

let roundtrip_request r =
  match Frame.decode_request (Frame.encode_request r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "request decode: %s" (Codec.error_to_string e)

let roundtrip_response r =
  match Frame.decode_response (Frame.encode_response r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "response decode: %s" (Codec.error_to_string e)

let roundtrip_push p =
  match Frame.decode_push (Frame.encode_push p) with
  | Ok p' -> p'
  | Error e -> Alcotest.failf "push decode: %s" (Codec.error_to_string e)

let test_request_roundtrip () =
  (match roundtrip_request (Frame.Batch [| 1; 2; 3; 1000000; 0 |]) with
  | Frame.Batch ks ->
      check_int "batch len" 5 (Array.length ks);
      check_int "batch last" 0 ks.(4);
      check_int "batch big" 1000000 ks.(3)
  | _ -> Alcotest.fail "not a batch");
  (match roundtrip_request (Frame.Batch [||]) with
  | Frame.Batch ks -> check_int "empty batch" 0 (Array.length ks)
  | _ -> Alcotest.fail "not a batch");
  (match roundtrip_request (Frame.Query Frame.Total) with
  | Frame.Query Frame.Total -> ()
  | _ -> Alcotest.fail "not Total");
  (match roundtrip_request (Frame.Query (Frame.Point 42)) with
  | Frame.Query (Frame.Point 42) -> ()
  | _ -> Alcotest.fail "not Point 42");
  (match roundtrip_request (Frame.Query (Frame.Quantile 0.99)) with
  | Frame.Query (Frame.Quantile phi) ->
      Alcotest.(check (float 1e-9)) "phi" 0.99 phi
  | _ -> Alcotest.fail "not Quantile");
  (match roundtrip_request (Frame.Query (Frame.Top 10)) with
  | Frame.Query (Frame.Top 10) -> ()
  | _ -> Alcotest.fail "not Top 10");
  match roundtrip_request (Frame.Subscribe { from_epoch = 0 }) with
  | Frame.Subscribe { from_epoch = 0 } -> ()
  | _ -> Alcotest.fail "not Subscribe"

let test_response_roundtrip () =
  (match roundtrip_response (Frame.Ack { epoch = 7; accepted = 123 }) with
  | Frame.Ack { epoch = 7; accepted = 123 } -> ()
  | _ -> Alcotest.fail "not the ack");
  (match
     roundtrip_response
       (Frame.Result { epoch = 3; pairs = [ (1, 10); (2, 20); (3, 30) ] })
   with
  | Frame.Result { epoch = 3; pairs = [ (1, 10); (2, 20); (3, 30) ] } -> ()
  | _ -> Alcotest.fail "not the result");
  (match roundtrip_response (Frame.Result { epoch = 0; pairs = [] }) with
  | Frame.Result { epoch = 0; pairs = [] } -> ()
  | _ -> Alcotest.fail "not the empty result");
  List.iter
    (fun code ->
      match roundtrip_response (Frame.Err { code; msg = "boom" }) with
      | Frame.Err { code = c; msg = "boom" } when c = code -> ()
      | _ -> Alcotest.fail "err code mangled")
    [ Frame.Unsupported; Frame.Malformed; Frame.Overloaded; Frame.Internal ]

let test_push_roundtrip () =
  let blob = Bytes.of_string "\x00\x01\xff sketch bytes \x7f" in
  (match roundtrip_push (Frame.Snapshot { epoch = 12; published = 999; blob })
   with
  | Frame.Snapshot { epoch = 12; published = 999; blob = b } ->
      check_bool "snapshot blob" true (Bytes.equal blob b)
  | _ -> Alcotest.fail "not the snapshot");
  match roundtrip_push (Frame.Delta { epoch = 13; weight = 8; blob }) with
  | Frame.Delta { epoch = 13; weight = 8; blob = b } ->
      check_bool "delta blob" true (Bytes.equal blob b)
  | _ -> Alcotest.fail "not the delta"

let test_frame_schema_validation () =
  (* A response frame fed to the request decoder is a *known* foreign
     kind: Wrong_kind, not Unknown_kind. *)
  (match
     Frame.decode_request
       (Frame.encode_response (Frame.Ack { epoch = 0; accepted = 0 }))
   with
  | Error (Codec.Wrong_kind _) -> ()
  | Ok _ -> Alcotest.fail "response decoded as request"
  | Error e -> Alcotest.failf "expected Wrong_kind: %s" (Codec.error_to_string e));
  (* Out-of-range quantile: header and checksum fine, schema corrupt. *)
  let bad_phi =
    Codec.encode ~kind:Codec.net_query_kind (fun w ->
        Codec.u8 w 2;
        Codec.float_ w 1.5)
  in
  (match Frame.decode_request bad_phi with
  | Error (Codec.Corrupt _) -> ()
  | _ -> Alcotest.fail "phi=1.5 accepted");
  (* Unknown query tag. *)
  let bad_tag = Codec.encode ~kind:Codec.net_query_kind (fun w -> Codec.u8 w 9) in
  (match Frame.decode_request bad_tag with
  | Error (Codec.Corrupt _) -> ()
  | _ -> Alcotest.fail "tag 9 accepted");
  (* Negative batch count cannot be encoded, but a truncated batch can. *)
  let good = Frame.encode_request (Frame.Batch [| 1; 2; 3 |]) in
  let cut = Bytes.sub good 0 (Bytes.length good - 1) in
  match Frame.decode_request cut with
  | Error (Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "truncated batch accepted"

(* Satellite regression: a kind tag this build does not know at all. *)
let test_unknown_kind () =
  check_bool "known net_batch" true (Codec.known_kind Codec.net_batch_kind);
  check_bool "known net_delta" true (Codec.known_kind Codec.net_delta_kind);
  check_bool "99 unknown" false (Codec.known_kind 99);
  let foreign = Codec.encode ~kind:99 (fun w -> Codec.u8 w 0) in
  (match Codec.frame_kind foreign with
  | Error (Codec.Unknown_kind 99) -> ()
  | Error e -> Alcotest.failf "expected Unknown_kind 99: %s" (Codec.error_to_string e)
  | Ok k -> Alcotest.failf "kind 99 accepted as %d" k);
  (match Frame.decode_request foreign with
  | Error (Codec.Unknown_kind 99) -> ()
  | _ -> Alcotest.fail "decode_request must surface Unknown_kind");
  (* The checksum is validated even for unknown kinds? No: frame_kind
     dispatches before checksum, and the distinct error is the point. *)
  check_bool "message names the tag" true
    (String.length (Codec.error_to_string (Codec.Unknown_kind 99)) > 0
    &&
    match String.index_opt (Codec.error_to_string (Codec.Unknown_kind 99)) '9'
    with
    | Some _ -> true
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Live-server helpers                                                 *)
(* ------------------------------------------------------------------ *)

let start_server ?metrics ?(shards = 2) ?(batch = 8) ?(read_timeout = 5.0)
    ?max_frame ?max_conns () =
  Srv.create ?metrics ?max_frame ?max_conns ~read_timeout
    ~eval:(fun _ _ -> None)
    ~make_engine:(fun ~on_merge -> Srv.P.create ~shards ~batch ~on_merge ())
    ()

let dial srv =
  let c = Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
  Conn.set_read_timeout c 5.0;
  c

let request c req =
  if not (Conn.send c (Frame.encode_request req)) then
    Alcotest.fail "send failed";
  match Conn.recv c with
  | Error e -> Alcotest.failf "recv: %s" (Conn.recv_error_to_string e)
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok r -> r
      | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e))

let expect_ack c req =
  match request c req with
  | Frame.Ack { accepted; _ } -> accepted
  | Frame.Err { msg; _ } -> Alcotest.failf "err instead of ack: %s" msg
  | _ -> Alcotest.fail "not an ack"

(* ------------------------------------------------------------------ *)
(* Raw protocol against a live server                                  *)
(* ------------------------------------------------------------------ *)

let test_server_batch_ack () =
  let srv = start_server () in
  let c = dial srv in
  let keys = Array.init 100 (fun i -> i land 15) in
  check_int "all accepted" 100 (expect_ack c (Frame.Batch keys));
  check_int "empty batch acked" 0 (expect_ack c (Frame.Batch [||]));
  (* Total is served from the replication mirror: it can lag the acked
     count (partial shard batches), but never exceed it — the envelope. *)
  (match request c (Frame.Query Frame.Total) with
  | Frame.Result { pairs = [ (0, w) ]; _ } ->
      check_bool "0 <= total <= acked" true (w >= 0 && w <= 100)
  | _ -> Alcotest.fail "total did not answer");
  (* The counter sketch cannot answer Point: a typed refusal, not a hang. *)
  (match request c (Frame.Query (Frame.Point 3)) with
  | Frame.Err { code = Frame.Unsupported; _ } -> ()
  | _ -> Alcotest.fail "Point on counter must be Unsupported");
  Conn.close c;
  let stats = Srv.stop srv in
  check_int "ingested" 100 stats.Srv.ingested;
  check_int "shed" 0 stats.Srv.shed;
  (* Conservation after drain: everything acked is published. *)
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "published = ingested" 100 est.Srv.P.published

let test_server_unknown_kind_over_wire () =
  let srv = start_server () in
  let c = dial srv in
  check_int "warmup" 4 (expect_ack c (Frame.Batch [| 1; 2; 3; 4 |]));
  let foreign = Codec.encode ~kind:77 (fun w -> Codec.u8 w 1) in
  check_bool "send foreign" true (Conn.send c foreign);
  (match Conn.recv c with
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok (Frame.Err { code = Frame.Unsupported; _ }) -> ()
      | Ok _ -> Alcotest.fail "foreign kind must be Err Unsupported"
      | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e))
  | Error e -> Alcotest.failf "no error response: %s" (Conn.recv_error_to_string e));
  (* After a framing error the stream is reset. *)
  (match Conn.recv c with
  | Error `Eof -> ()
  | Error `Timeout -> Alcotest.fail "connection not reset"
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unexpected frame after reset");
  Conn.close c;
  let stats = Srv.stop srv in
  check_bool "decode error counted" true (stats.Srv.decode_errors >= 1);
  check_int "warmup batch survived" 4
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

(* ------------------------------------------------------------------ *)
(* Adversarial peers                                                   *)
(* ------------------------------------------------------------------ *)

(* Every hostile move ends in a clean reset; the proof that no handler
   domain leaked or deadlocked is that a well-behaved client still gets
   served afterwards and [Srv.stop] (which joins every domain) returns. *)

let raw_dial srv =
  let c = Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
  Conn.set_read_timeout c 2.0;
  c

let send_raw c bytes = ignore (Conn.send c bytes)

let expect_err_malformed c what =
  match Conn.recv c with
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok (Frame.Err { code = Frame.Malformed; _ }) -> ()
      | Ok r ->
          Alcotest.failf "%s: expected Err Malformed, got %s" what
            (match r with
            | Frame.Ack _ -> "Ack"
            | Frame.Result _ -> "Result"
            | Frame.Err { code; _ } -> Frame.err_code_to_string code)
      | Error e -> Alcotest.failf "%s: decode: %s" what (Codec.error_to_string e))
  | Error e ->
      Alcotest.failf "%s: expected a response, got %s" what
        (Conn.recv_error_to_string e)

let expect_reset c what =
  match Conn.recv c with
  | Error (`Eof | `Bad_header) -> ()
  | Error `Timeout -> Alcotest.failf "%s: connection not reset" what
  | Error (`Oversized _) -> ()
  | Ok _ -> Alcotest.failf "%s: unexpected frame after reset" what

let test_adversarial_peers () =
  (* Short server-side read timeout so the slow-loris case resolves fast;
     small max_frame so the oversized case is cheap to build. *)
  let srv = start_server ~read_timeout:0.4 ~max_frame:4096 () in
  let good = Frame.encode_request (Frame.Batch [| 1; 2; 3; 4; 5 |]) in

  (* 1. Truncated frame then FIN: server sees EOF mid-frame, resets. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 10);
  Conn.close c;

  (* 2. Bit-flipped payload: checksum mismatch, answered Err Malformed,
     then reset. *)
  let c = raw_dial srv in
  let flipped = Bytes.copy good in
  let off = Codec.header_size + 1 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0x40));
  send_raw c flipped;
  expect_err_malformed c "bit flip";
  expect_reset c "bit flip";
  Conn.close c;

  (* 3. Oversized declared length: a real frame bigger than the server's
     cap is refused before its payload is slurped. *)
  let c = raw_dial srv in
  let big = Frame.encode_request (Frame.Batch (Array.init 5000 (fun i -> i))) in
  check_bool "big frame exceeds cap" true
    (Bytes.length big - Codec.header_size > 4096);
  send_raw c big;
  expect_err_malformed c "oversized";
  expect_reset c "oversized";
  Conn.close c;

  (* 3b. A forged header declaring 64 MiB with no payload behind it: the
     cap must trip on the declared length alone. *)
  let c = raw_dial srv in
  let forged = Bytes.copy (Bytes.sub good 0 Codec.header_size) in
  Bytes.set_int32_be forged 6 (Int32.of_int (64 * 1024 * 1024));
  send_raw c forged;
  expect_err_malformed c "forged length";
  Conn.close c;

  (* 4. Slow loris: a few header bytes, then silence. The server's read
     timeout fires and the connection is reset without a response. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 5);
  expect_reset c "slow loris";
  Conn.close c;

  (* 5. Abrupt disconnect mid-batch: half a frame, then hard close. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 (Bytes.length good / 2));
  Unix.close (Conn.fd c);

  (* 6. Stream desync: bytes that are not an IVLW header at all. *)
  let c = raw_dial srv in
  send_raw c (Bytes.of_string "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  expect_err_malformed c "desync";
  expect_reset c "desync";
  Conn.close c;

  (* The server survived all of it: a good client still gets served and
     ingestion still conserves. *)
  let c = dial srv in
  check_int "post-adversarial ack" 5 (expect_ack c (Frame.Batch [| 9; 9; 9; 9; 9 |]));
  Conn.close c;
  let stats = Srv.stop srv in
  check_bool "decode errors counted" true (stats.Srv.decode_errors >= 3);
  check_int "only the good batch ingested" 5 stats.Srv.ingested;
  check_int "published = ingested" 5
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

(* ------------------------------------------------------------------ *)
(* Batching client                                                     *)
(* ------------------------------------------------------------------ *)

let test_client_roundtrip () =
  let srv = start_server () in
  let cli =
    Net.Client.create ~conns:2 ~batch:16 ~flush_age:0.01 ~host:"127.0.0.1"
      ~port:(Srv.port srv) ()
  in
  for i = 1 to 1000 do
    check_bool "push accepted" true (Net.Client.push cli (i land 31))
  done;
  Net.Client.flush cli;
  let cs = Net.Client.stats cli in
  check_int "pushed" 1000 cs.Net.Client.pushed;
  check_int "acked" 1000 cs.Net.Client.acked;
  check_int "client shed" 0 cs.Net.Client.shed;
  check_int "client errors" 0 cs.Net.Client.errors;
  (* The query path shares the protocol but not the sender conns. *)
  (match Net.Client.query cli Frame.Total with
  | Ok (Frame.Result { pairs = [ (0, w) ]; _ }) ->
      check_bool "total within envelope" true (w >= 0 && w <= 1000)
  | Ok _ -> Alcotest.fail "total did not answer"
  | Error e -> Alcotest.failf "query: %s" e);
  Net.Client.close cli;
  ignore (Srv.stop srv);
  check_int "published = acked after drain" 1000
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

let test_client_dead_server () =
  (* A client aimed at a dead port must shed, not hang: every delivery
     fails, retries run out, flush/close still return. *)
  let dead_port =
    (* Grab an ephemeral port and release it so nothing listens there. *)
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close s;
    p
  in
  let cli =
    Net.Client.create ~conns:1 ~batch:8 ~flush_age:0.005 ~retries:1
      ~overflow:Net.Client.Shed ~host:"127.0.0.1" ~port:dead_port ()
  in
  for i = 1 to 50 do
    ignore (Net.Client.push cli i)
  done;
  Net.Client.close cli;
  let cs = Net.Client.stats cli in
  check_int "nothing acked" 0 cs.Net.Client.acked;
  check_bool "sheds counted" true (cs.Net.Client.shed > 0);
  check_bool "errors counted" true (cs.Net.Client.errors > 0);
  check_bool "push after close is refused" true (not (Net.Client.push cli 1))

(* Satellite: the driver's sink seam. The default engine sink and the
   client sink implement the same signature; a bare Sink.make fills the
   optional operations with safe defaults. *)
let test_sink_seam () =
  let got = ref 0 and flushed = ref 0 in
  let sink =
    Workload.Sink.make
      ~flush:(fun () -> incr flushed)
      ~ingest:(fun _ -> incr got; true)
      ()
  in
  check_bool "ingest" true (sink.Workload.Sink.ingest 1);
  (* try_ingest defaults to the blocking path... *)
  check_bool "try_ingest default" true (sink.Workload.Sink.try_ingest 2);
  (* ...and query/close default to no-ops. *)
  sink.Workload.Sink.query 3;
  sink.Workload.Sink.close ();
  sink.Workload.Sink.flush ();
  check_int "both ingests landed" 2 !got;
  check_int "flush ran" 1 !flushed

(* ------------------------------------------------------------------ *)
(* Follower replica                                                    *)
(* ------------------------------------------------------------------ *)

let test_replica_convergence () =
  let srv = start_server ~shards:2 ~batch:4 () in
  let c = dial srv in
  (* Some history before the follower exists, so its seed snapshot is
     non-trivial and the handshake race (delta <= seed epoch) is live. *)
  check_int "pre-subscribe batch" 40
    (expect_ack c (Frame.Batch (Array.init 40 (fun i -> i land 7))));
  let rep =
    Rep.connect ~read_timeout:0.5 ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  (* Stream more while the follower is live, sampling the envelope: the
     follower's published weight must never exceed the leader's (leader
     sampled second — it can only have grown in between). *)
  let violations = ref 0 in
  for round = 1 to 25 do
    check_int "mid-stream batch" 8
      (expect_ack c (Frame.Batch (Array.init 8 (fun i -> (round + i) land 7))));
    let f = Rep.published rep in
    let l = (Srv.P.stats (Srv.engine srv)).Srv.P.published in
    if f > l then incr violations
  done;
  check_int "follower never leads leader" 0 !violations;
  Conn.close c;
  (* stop = drain + final fan-out + subscriber close + joins: after it the
     follower must converge exactly. *)
  ignore (Srv.stop srv);
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "leader conserved" 240 est.Srv.P.published;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let rs = Rep.stats rep in
    if rs.Rep.published = est.Srv.P.published && rs.Rep.epoch = est.Srv.P.epoch
    then rs
    else if Unix.gettimeofday () > deadline then rs
    else (
      Unix.sleepf 0.01;
      settle ())
  in
  let rs = settle () in
  check_int "exact published convergence" est.Srv.P.published rs.Rep.published;
  check_int "exact epoch convergence" est.Srv.P.epoch rs.Rep.epoch;
  check_bool "follower applied deltas" true (rs.Rep.deltas > 0);
  (* Bit-for-bit: the follower's folded state encodes to the same blob as
     the leader's global sketch. *)
  let leader_blob, _, _ = Srv.P.snapshot (Srv.engine srv) in
  (match Rep.query rep MC.encode with
  | Some (follower_blob, _) ->
      check_bool "encoded states identical" true
        (Bytes.equal leader_blob follower_blob)
  | None -> Alcotest.fail "follower never seeded");
  Rep.close rep

(* ------------------------------------------------------------------ *)
(* Acceptance: the served soak                                         *)
(* ------------------------------------------------------------------ *)

(* ISSUE 7's end-to-end bar: Workload.Driver over a real socket, >= 1M ops
   total, >= 4 concurrent client connections, a live follower inside the
   envelope throughout, exact leader/follower equality after drain, and
   the per-connection obs series visible in a scrape. *)
let test_served_soak () =
  let reg = Obs.Registry.create () in
  let srv =
    Srv.create ~metrics:reg ~read_timeout:10.0
      ~eval:(fun _ _ -> None)
      ~make_engine:(fun ~on_merge ->
        Srv.P.create ~shards:4 ~batch:512 ~on_merge ())
      ()
  in
  let cli =
    Net.Client.create ~metrics:reg ~conns:4 ~batch:256 ~flush_age:0.05
      ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  let rep =
    Rep.connect ~read_timeout:0.5 ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  (* An envelope sampler races the whole run. *)
  let stop_sampling = Atomic.make false in
  let violations = Atomic.make 0 in
  let samples = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_sampling) do
          let f = Rep.published rep in
          let l = (Srv.P.stats (Srv.engine srv)).Srv.P.published in
          if f > l then Atomic.incr violations;
          Atomic.incr samples;
          Unix.sleepf 0.002
        done)
  in
  let spec =
    Workload.Trace.default_spec ~seed:0x1517L ~ops:1_000_000 ~universe:8192 ()
  in
  let ops = Workload.Trace.materialize spec in
  let report =
    Workload.Driver.run ~feeders:2 ~metrics:reg
      ~make_sink:(fun ~feeder:_ -> Net.Client.sink cli)
      ~spec ~ops ()
  in
  Net.Client.flush cli;
  Atomic.set stop_sampling true;
  Domain.join sampler;
  let cs = Net.Client.stats cli in
  check_bool "soak pushed >= 900k updates" true
    (cs.Net.Client.pushed >= 900_000);
  check_int "driver accepted = client pushed" report.Workload.Driver.accepted
    cs.Net.Client.pushed;
  check_int "no transport errors on loopback" 0 cs.Net.Client.errors;
  check_int "exact ack count" cs.Net.Client.pushed cs.Net.Client.acked;
  check_bool "envelope sampled" true (Atomic.get samples > 10);
  check_int "follower never led leader" 0 (Atomic.get violations);
  Net.Client.close cli;
  let stats = Srv.stop srv in
  check_bool ">= 4 concurrent connections" true (stats.Srv.conns >= 4);
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "conservation: published = acked" cs.Net.Client.acked
    est.Srv.P.published;
  (* Exact convergence after the drain. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let rs = Rep.stats rep in
    if rs.Rep.published = est.Srv.P.published then rs
    else if Unix.gettimeofday () > deadline then rs
    else (
      Unix.sleepf 0.01;
      settle ())
  in
  let rs = settle () in
  check_int "follower converged exactly" est.Srv.P.published rs.Rep.published;
  Rep.close rep;
  (* The scrape shows the per-connection series: at least the 4 sender
     connections plus the subscriber, each labelled conn="<id>". *)
  let snap = Obs.Registry.snapshot reg in
  let conn_labels =
    List.filter_map
      (fun s ->
        if s.Obs.Snapshot.name = "net_frames_in_total" then
          List.assoc_opt "conn" s.Obs.Snapshot.labels
        else None)
      snap.Obs.Snapshot.samples
    |> List.sort_uniq compare
  in
  check_bool ">= 5 per-connection series" true (List.length conn_labels >= 5);
  check_int "aggregate ingest series" cs.Net.Client.acked
    (Obs.Snapshot.counter_value snap "net_ingested_total");
  check_int "client series" cs.Net.Client.acked
    (Obs.Snapshot.counter_value snap "client_acked_total");
  check_bool "driver series" true
    (Obs.Snapshot.counter_value snap "driver_issued_total" >= 1_000_000)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "push roundtrip" `Quick test_push_roundtrip;
          Alcotest.test_case "schema validation" `Quick
            test_frame_schema_validation;
          Alcotest.test_case "unknown kind" `Quick test_unknown_kind;
        ] );
      ( "server",
        [
          Alcotest.test_case "batch/ack/query" `Quick test_server_batch_ack;
          Alcotest.test_case "unknown kind over wire" `Quick
            test_server_unknown_kind_over_wire;
          Alcotest.test_case "adversarial peers" `Quick test_adversarial_peers;
        ] );
      ( "client",
        [
          Alcotest.test_case "batched roundtrip" `Quick test_client_roundtrip;
          Alcotest.test_case "dead server sheds" `Quick test_client_dead_server;
          Alcotest.test_case "sink seam" `Quick test_sink_seam;
        ] );
      ( "replica",
        [
          Alcotest.test_case "envelope and exact convergence" `Quick
            test_replica_convergence;
        ] );
      ( "soak",
        [ Alcotest.test_case "served soak 1M ops" `Quick test_served_soak ] );
    ]
