(* The served tier, tested at three depths:

   - the frame vocabulary in isolation (roundtrips, schema validation, and
     the Unknown_kind regression — a foreign kind tag must surface as its
     own error, not a parse failure);
   - the raw protocol against a live server (acks, queries, and the
     adversarial-peer suite: truncated frames, flipped checksums, oversized
     declared lengths, slow-loris headers, abrupt disconnects — every one
     must end in a clean error/reset with the server still serving);
   - the full system (batching client + follower replica): the follower
     never leads the leader (the IVL envelope), and after the leader's
     drain the two are bit-for-bit equal;
   - the hostile system: the effectively-once dedup window (regression
     first: the sessionless double-count it kills), the fault-injecting
     chaos proxy, the replica's self-healing resync, and the served chaos
     soak — kills, partitions and wire faults, with the four IVL verdicts
     (conservation, ack envelope, replica envelope, convergence) still
     exact. *)

module Codec = Wire.Codec
module Frame = Net.Frame
module Conn = Net.Conn
module MC = Pipeline.Targets.Counter
module Srv = Net.Server.Make (MC)
module Rep = Net.Replica.Make (MC)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Session 0L opts out of dedup — the legacy wire shape most protocol
   tests want; effectively-once tests pass a real session explicitly. *)
let batch ?(session = 0L) ?(seq = 0) ?(ctx = Obs.Span.zero) keys =
  Frame.Batch { session; seq; ctx; keys }

(* ------------------------------------------------------------------ *)
(* Frame vocabulary                                                    *)
(* ------------------------------------------------------------------ *)

let roundtrip_request r =
  match Frame.decode_request (Frame.encode_request r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "request decode: %s" (Codec.error_to_string e)

let roundtrip_response r =
  match Frame.decode_response (Frame.encode_response r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "response decode: %s" (Codec.error_to_string e)

let roundtrip_push p =
  match Frame.decode_push (Frame.encode_push p) with
  | Ok p' -> p'
  | Error e -> Alcotest.failf "push decode: %s" (Codec.error_to_string e)

let test_request_roundtrip () =
  (match roundtrip_request (batch [| 1; 2; 3; 1000000; 0 |]) with
  | Frame.Batch { keys = ks; session; seq; ctx } ->
      check_int "batch len" 5 (Array.length ks);
      check_int "batch last" 0 ks.(4);
      check_int "batch big" 1000000 ks.(3);
      check_bool "legacy session" true (Int64.equal session 0L);
      check_int "legacy seq" 0 seq;
      check_bool "legacy ctx" true (Obs.Span.is_zero ctx)
  | _ -> Alcotest.fail "not a batch");
  (match roundtrip_request (batch [||]) with
  | Frame.Batch { keys = ks; _ } -> check_int "empty batch" 0 (Array.length ks)
  | _ -> Alcotest.fail "not a batch");
  (* The effectively-once fields survive the wire, extremes included. *)
  (match
     roundtrip_request (batch ~session:Int64.max_int ~seq:max_int [| 7 |])
   with
  | Frame.Batch { session; seq; keys; _ } ->
      check_bool "session" true (Int64.equal session Int64.max_int);
      check_int "seq" max_int seq;
      check_int "keys" 7 keys.(0)
  | _ -> Alcotest.fail "not a sessioned batch");
  (match roundtrip_request (Frame.Hello { session = 0xDEADBEEFL }) with
  | Frame.Hello { session } ->
      check_bool "hello session" true (Int64.equal session 0xDEADBEEFL)
  | _ -> Alcotest.fail "not a hello");
  (match roundtrip_request (Frame.Query Frame.Total) with
  | Frame.Query Frame.Total -> ()
  | _ -> Alcotest.fail "not Total");
  (match roundtrip_request (Frame.Query (Frame.Point 42)) with
  | Frame.Query (Frame.Point 42) -> ()
  | _ -> Alcotest.fail "not Point 42");
  (match roundtrip_request (Frame.Query (Frame.Quantile 0.99)) with
  | Frame.Query (Frame.Quantile phi) ->
      Alcotest.(check (float 1e-9)) "phi" 0.99 phi
  | _ -> Alcotest.fail "not Quantile");
  (match roundtrip_request (Frame.Query (Frame.Top 10)) with
  | Frame.Query (Frame.Top 10) -> ()
  | _ -> Alcotest.fail "not Top 10");
  match roundtrip_request (Frame.Subscribe { from_epoch = 0 }) with
  | Frame.Subscribe { from_epoch = 0 } -> ()
  | _ -> Alcotest.fail "not Subscribe"

let test_response_roundtrip () =
  (match
     roundtrip_response (Frame.Ack { epoch = 7; accepted = 123; dup = false })
   with
  | Frame.Ack { epoch = 7; accepted = 123; dup = false } -> ()
  | _ -> Alcotest.fail "not the ack");
  (* The dup marker — a retried batch's ack — survives the wire. *)
  (match
     roundtrip_response (Frame.Ack { epoch = 2; accepted = 64; dup = true })
   with
  | Frame.Ack { epoch = 2; accepted = 64; dup = true } -> ()
  | _ -> Alcotest.fail "not the dup ack");
  (match
     roundtrip_response
       (Frame.Result { epoch = 3; pairs = [ (1, 10); (2, 20); (3, 30) ] })
   with
  | Frame.Result { epoch = 3; pairs = [ (1, 10); (2, 20); (3, 30) ] } -> ()
  | _ -> Alcotest.fail "not the result");
  (match roundtrip_response (Frame.Result { epoch = 0; pairs = [] }) with
  | Frame.Result { epoch = 0; pairs = [] } -> ()
  | _ -> Alcotest.fail "not the empty result");
  List.iter
    (fun code ->
      match roundtrip_response (Frame.Err { code; msg = "boom" }) with
      | Frame.Err { code = c; msg = "boom" } when c = code -> ()
      | _ -> Alcotest.fail "err code mangled")
    [ Frame.Unsupported; Frame.Malformed; Frame.Overloaded; Frame.Internal ]

let test_push_roundtrip () =
  let blob = Bytes.of_string "\x00\x01\xff sketch bytes \x7f" in
  (match roundtrip_push (Frame.Snapshot { epoch = 12; published = 999; blob })
   with
  | Frame.Snapshot { epoch = 12; published = 999; blob = b } ->
      check_bool "snapshot blob" true (Bytes.equal blob b)
  | _ -> Alcotest.fail "not the snapshot");
  match roundtrip_push (Frame.Delta { epoch = 13; weight = 8; blob }) with
  | Frame.Delta { epoch = 13; weight = 8; blob = b } ->
      check_bool "delta blob" true (Bytes.equal blob b)
  | _ -> Alcotest.fail "not the delta"

let test_frame_schema_validation () =
  (* A response frame fed to the request decoder is a *known* foreign
     kind: Wrong_kind, not Unknown_kind. *)
  (match
     Frame.decode_request
       (Frame.encode_response (Frame.Ack { epoch = 0; accepted = 0; dup = false }))
   with
  | Error (Codec.Wrong_kind _) -> ()
  | Ok _ -> Alcotest.fail "response decoded as request"
  | Error e -> Alcotest.failf "expected Wrong_kind: %s" (Codec.error_to_string e));
  (* Out-of-range quantile: header and checksum fine, schema corrupt. *)
  let bad_phi =
    Codec.encode ~kind:Codec.net_query_kind (fun w ->
        Codec.u8 w 2;
        Codec.float_ w 1.5)
  in
  (match Frame.decode_request bad_phi with
  | Error (Codec.Corrupt _) -> ()
  | _ -> Alcotest.fail "phi=1.5 accepted");
  (* Unknown query tag. *)
  let bad_tag = Codec.encode ~kind:Codec.net_query_kind (fun w -> Codec.u8 w 9) in
  (match Frame.decode_request bad_tag with
  | Error (Codec.Corrupt _) -> ()
  | _ -> Alcotest.fail "tag 9 accepted");
  (* Negative batch count cannot be encoded, but a truncated batch can. *)
  let good = Frame.encode_request (batch [| 1; 2; 3 |]) in
  let cut = Bytes.sub good 0 (Bytes.length good - 1) in
  match Frame.decode_request cut with
  | Error (Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "truncated batch accepted"

let test_span_ctx_wire () =
  (* A sampled batch rides the net-batch2 frame and the context survives
     the wire exactly, alongside the effectively-once fields. *)
  let ctx =
    { Obs.Span.trace_id = 0x1122334455667788L; parent = 0x0102030405060708L }
  in
  let traced = Frame.encode_request (batch ~session:9L ~seq:4 ~ctx [| 1; 2; 3 |]) in
  (match Codec.peek traced with
  | Ok (name, _) -> Alcotest.(check string) "traced kind" "net-batch2" name
  | Error e -> Alcotest.failf "peek: %s" (Codec.error_to_string e));
  (match Frame.decode_request traced with
  | Ok (Frame.Batch { session; seq; ctx = ctx'; keys }) ->
      check_bool "session" true (Int64.equal session 9L);
      check_int "seq" 4 seq;
      check_bool "trace id" true
        (Int64.equal ctx'.Obs.Span.trace_id 0x1122334455667788L);
      check_bool "parent" true
        (Int64.equal ctx'.Obs.Span.parent 0x0102030405060708L);
      check_int "keys" 3 (Array.length keys)
  | Ok _ -> Alcotest.fail "not a batch"
  | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e));
  (* The opt-out: a zero context encodes byte-identical to the legacy
     net-batch frame, so untraced senders are indistinguishable from
     pre-tracing builds on the wire. *)
  let plain =
    Frame.encode_request (batch ~session:9L ~seq:4 [| 1; 2; 3 |])
  in
  let explicit_zero =
    Frame.encode_request
      (batch ~session:9L ~seq:4 ~ctx:Obs.Span.zero [| 1; 2; 3 |])
  in
  check_bool "zero ctx = legacy bytes" true (Bytes.equal plain explicit_zero);
  (match Codec.peek plain with
  | Ok (name, _) -> Alcotest.(check string) "legacy kind" "net-batch" name
  | Error e -> Alcotest.failf "peek: %s" (Codec.error_to_string e));
  (* A half-zero context is still sampled: only the all-zero pair opts out. *)
  let half = { Obs.Span.trace_id = 1L; parent = 0L } in
  match Codec.peek (Frame.encode_request (batch ~ctx:half [| 7 |])) with
  | Ok (name, _) -> Alcotest.(check string) "root ctx still traced" "net-batch2" name
  | Error e -> Alcotest.failf "peek: %s" (Codec.error_to_string e)

(* Satellite regression: a kind tag this build does not know at all. *)
let test_unknown_kind () =
  check_bool "known net_batch" true (Codec.known_kind Codec.net_batch_kind);
  check_bool "known net_delta" true (Codec.known_kind Codec.net_delta_kind);
  check_bool "99 unknown" false (Codec.known_kind 99);
  let foreign = Codec.encode ~kind:99 (fun w -> Codec.u8 w 0) in
  (match Codec.frame_kind foreign with
  | Error (Codec.Unknown_kind 99) -> ()
  | Error e -> Alcotest.failf "expected Unknown_kind 99: %s" (Codec.error_to_string e)
  | Ok k -> Alcotest.failf "kind 99 accepted as %d" k);
  (match Frame.decode_request foreign with
  | Error (Codec.Unknown_kind 99) -> ()
  | _ -> Alcotest.fail "decode_request must surface Unknown_kind");
  (* The checksum is validated even for unknown kinds? No: frame_kind
     dispatches before checksum, and the distinct error is the point. *)
  check_bool "message names the tag" true
    (String.length (Codec.error_to_string (Codec.Unknown_kind 99)) > 0
    &&
    match String.index_opt (Codec.error_to_string (Codec.Unknown_kind 99)) '9'
    with
    | Some _ -> true
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Live-server helpers                                                 *)
(* ------------------------------------------------------------------ *)

let start_server ?metrics ?(shards = 2) ?(batch = 8) ?(read_timeout = 5.0)
    ?max_frame ?max_conns () =
  Srv.create ?metrics ?max_frame ?max_conns ~read_timeout
    ~eval:(fun _ _ -> None)
    ~make_engine:(fun ~on_merge -> Srv.P.create ~shards ~batch ~on_merge ())
    ()

let dial srv =
  let c = Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
  Conn.set_read_timeout c 5.0;
  c

let request c req =
  if not (Conn.send c (Frame.encode_request req)) then
    Alcotest.fail "send failed";
  match Conn.recv c with
  | Error e -> Alcotest.failf "recv: %s" (Conn.recv_error_to_string e)
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok r -> r
      | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e))

let expect_ack c req =
  match request c req with
  | Frame.Ack { accepted; _ } -> accepted
  | Frame.Err { msg; _ } -> Alcotest.failf "err instead of ack: %s" msg
  | _ -> Alcotest.fail "not an ack"

(* ------------------------------------------------------------------ *)
(* Raw protocol against a live server                                  *)
(* ------------------------------------------------------------------ *)

let test_server_batch_ack () =
  let srv = start_server () in
  let c = dial srv in
  let keys = Array.init 100 (fun i -> i land 15) in
  check_int "all accepted" 100 (expect_ack c (batch keys));
  check_int "empty batch acked" 0 (expect_ack c (batch [||]));
  (* Total is served from the replication mirror: it can lag the acked
     count (partial shard batches), but never exceed it — the envelope. *)
  (match request c (Frame.Query Frame.Total) with
  | Frame.Result { pairs = [ (0, w) ]; _ } ->
      check_bool "0 <= total <= acked" true (w >= 0 && w <= 100)
  | _ -> Alcotest.fail "total did not answer");
  (* The counter sketch cannot answer Point: a typed refusal, not a hang. *)
  (match request c (Frame.Query (Frame.Point 3)) with
  | Frame.Err { code = Frame.Unsupported; _ } -> ()
  | _ -> Alcotest.fail "Point on counter must be Unsupported");
  Conn.close c;
  let stats = Srv.stop srv in
  check_int "ingested" 100 stats.Srv.ingested;
  check_int "shed" 0 stats.Srv.shed;
  (* Conservation after drain: everything acked is published. *)
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "published = ingested" 100 est.Srv.P.published

let test_server_unknown_kind_over_wire () =
  let srv = start_server () in
  let c = dial srv in
  check_int "warmup" 4 (expect_ack c (batch [| 1; 2; 3; 4 |]));
  let foreign = Codec.encode ~kind:77 (fun w -> Codec.u8 w 1) in
  check_bool "send foreign" true (Conn.send c foreign);
  (match Conn.recv c with
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok (Frame.Err { code = Frame.Unsupported; _ }) -> ()
      | Ok _ -> Alcotest.fail "foreign kind must be Err Unsupported"
      | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e))
  | Error e -> Alcotest.failf "no error response: %s" (Conn.recv_error_to_string e));
  (* After a framing error the stream is reset. *)
  (match Conn.recv c with
  | Error `Eof -> ()
  | Error `Timeout -> Alcotest.fail "connection not reset"
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unexpected frame after reset");
  Conn.close c;
  let stats = Srv.stop srv in
  check_bool "decode error counted" true (stats.Srv.decode_errors >= 1);
  check_int "warmup batch survived" 4
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

(* ------------------------------------------------------------------ *)
(* Adversarial peers                                                   *)
(* ------------------------------------------------------------------ *)

(* Every hostile move ends in a clean reset; the proof that no handler
   domain leaked or deadlocked is that a well-behaved client still gets
   served afterwards and [Srv.stop] (which joins every domain) returns. *)

let raw_dial srv =
  let c = Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
  Conn.set_read_timeout c 2.0;
  c

let send_raw c bytes = ignore (Conn.send c bytes)

let expect_err_malformed c what =
  match Conn.recv c with
  | Ok frame -> (
      match Frame.decode_response frame with
      | Ok (Frame.Err { code = Frame.Malformed; _ }) -> ()
      | Ok r ->
          Alcotest.failf "%s: expected Err Malformed, got %s" what
            (match r with
            | Frame.Ack _ -> "Ack"
            | Frame.Result _ -> "Result"
            | Frame.Err { code; _ } -> Frame.err_code_to_string code)
      | Error e -> Alcotest.failf "%s: decode: %s" what (Codec.error_to_string e))
  | Error e ->
      Alcotest.failf "%s: expected a response, got %s" what
        (Conn.recv_error_to_string e)

let expect_reset c what =
  match Conn.recv c with
  | Error (`Eof | `Bad_header) -> ()
  | Error `Timeout -> Alcotest.failf "%s: connection not reset" what
  | Error (`Oversized _) -> ()
  | Ok _ -> Alcotest.failf "%s: unexpected frame after reset" what

let test_adversarial_peers () =
  (* Short server-side read timeout so the slow-loris case resolves fast;
     small max_frame so the oversized case is cheap to build. *)
  let srv = start_server ~read_timeout:0.4 ~max_frame:4096 () in
  let good = Frame.encode_request (batch [| 1; 2; 3; 4; 5 |]) in

  (* 1. Truncated frame then FIN: server sees EOF mid-frame, resets. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 10);
  Conn.close c;

  (* 2. Bit-flipped payload: checksum mismatch, answered Err Malformed,
     then reset. *)
  let c = raw_dial srv in
  let flipped = Bytes.copy good in
  let off = Codec.header_size + 1 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0x40));
  send_raw c flipped;
  expect_err_malformed c "bit flip";
  expect_reset c "bit flip";
  Conn.close c;

  (* 3. Oversized declared length: a real frame bigger than the server's
     cap is refused before its payload is slurped. *)
  let c = raw_dial srv in
  let big = Frame.encode_request (batch (Array.init 5000 (fun i -> i))) in
  check_bool "big frame exceeds cap" true
    (Bytes.length big - Codec.header_size > 4096);
  send_raw c big;
  expect_err_malformed c "oversized";
  expect_reset c "oversized";
  Conn.close c;

  (* 3b. A forged header declaring 64 MiB with no payload behind it: the
     cap must trip on the declared length alone. *)
  let c = raw_dial srv in
  let forged = Bytes.copy (Bytes.sub good 0 Codec.header_size) in
  Bytes.set_int32_be forged 6 (Int32.of_int (64 * 1024 * 1024));
  send_raw c forged;
  expect_err_malformed c "forged length";
  Conn.close c;

  (* 4. Slow loris: a few header bytes, then silence. The server's read
     timeout fires and the connection is reset without a response. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 5);
  expect_reset c "slow loris";
  Conn.close c;

  (* 5. Abrupt disconnect mid-batch: half a frame, then hard close. *)
  let c = raw_dial srv in
  ignore (Unix.write (Conn.fd c) good 0 (Bytes.length good / 2));
  Unix.close (Conn.fd c);

  (* 6. Stream desync: bytes that are not an IVLW header at all. *)
  let c = raw_dial srv in
  send_raw c (Bytes.of_string "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  expect_err_malformed c "desync";
  expect_reset c "desync";
  Conn.close c;

  (* The server survived all of it: a good client still gets served and
     ingestion still conserves. *)
  let c = dial srv in
  check_int "post-adversarial ack" 5 (expect_ack c (batch [| 9; 9; 9; 9; 9 |]));
  Conn.close c;
  let stats = Srv.stop srv in
  check_bool "decode errors counted" true (stats.Srv.decode_errors >= 3);
  check_int "only the good batch ingested" 5 stats.Srv.ingested;
  check_int "published = ingested" 5
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

(* ------------------------------------------------------------------ *)
(* Batching client                                                     *)
(* ------------------------------------------------------------------ *)

let test_client_roundtrip () =
  let srv = start_server () in
  let cli =
    Net.Client.create ~conns:2 ~batch:16 ~flush_age:0.01 ~host:"127.0.0.1"
      ~port:(Srv.port srv) ()
  in
  for i = 1 to 1000 do
    check_bool "push accepted" true (Net.Client.push cli (i land 31))
  done;
  Net.Client.flush cli;
  let cs = Net.Client.stats cli in
  check_int "pushed" 1000 cs.Net.Client.pushed;
  check_int "acked" 1000 cs.Net.Client.acked;
  check_int "client shed" 0 cs.Net.Client.shed;
  check_int "client errors" 0 cs.Net.Client.errors;
  (* The query path shares the protocol but not the sender conns. *)
  (match Net.Client.query cli Frame.Total with
  | Ok (Frame.Result { pairs = [ (0, w) ]; _ }) ->
      check_bool "total within envelope" true (w >= 0 && w <= 1000)
  | Ok _ -> Alcotest.fail "total did not answer"
  | Error e -> Alcotest.failf "query: %s" e);
  Net.Client.close cli;
  ignore (Srv.stop srv);
  check_int "published = acked after drain" 1000
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

let test_client_dead_server () =
  (* A client aimed at a dead port must shed, not hang: every delivery
     fails, retries run out, flush/close still return. *)
  let dead_port =
    (* Grab an ephemeral port and release it so nothing listens there. *)
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close s;
    p
  in
  let cli =
    Net.Client.create ~conns:1 ~batch:8 ~flush_age:0.005 ~retries:1
      ~overflow:Net.Client.Shed ~host:"127.0.0.1" ~port:dead_port ()
  in
  for i = 1 to 50 do
    ignore (Net.Client.push cli i)
  done;
  Net.Client.close cli;
  let cs = Net.Client.stats cli in
  check_int "nothing acked" 0 cs.Net.Client.acked;
  check_bool "sheds counted" true (cs.Net.Client.shed > 0);
  check_bool "errors counted" true (cs.Net.Client.errors > 0);
  check_bool "push after close is refused" true (not (Net.Client.push cli 1))

(* Satellite: the driver's sink seam. The default engine sink and the
   client sink implement the same signature; a bare Sink.make fills the
   optional operations with safe defaults. *)
let test_sink_seam () =
  let got = ref 0 and flushed = ref 0 in
  let sink =
    Workload.Sink.make
      ~flush:(fun () -> incr flushed)
      ~ingest:(fun _ -> incr got; true)
      ()
  in
  check_bool "ingest" true (sink.Workload.Sink.ingest 1);
  (* try_ingest defaults to the blocking path... *)
  check_bool "try_ingest default" true (sink.Workload.Sink.try_ingest 2);
  (* ...and query/close default to no-ops. *)
  sink.Workload.Sink.query 3;
  sink.Workload.Sink.close ();
  sink.Workload.Sink.flush ();
  check_int "both ingests landed" 2 !got;
  check_int "flush ran" 1 !flushed

(* ------------------------------------------------------------------ *)
(* Cross-tier tracing waterfall                                        *)
(* ------------------------------------------------------------------ *)

let test_trace_waterfall () =
  (* One tracer shared by client, server and engine over live loopback
     (in one process the tiers can share a span sink): a sampled batch
     must leave a waterfall whose stages are recorded in pipeline order —
     enqueue -> flush -> decode -> ingest -> queue -> merge — all under
     one trace id, each stage parented on an earlier span. *)
  let reg = Obs.Registry.create () in
  let tracer =
    Obs.Tracer.create ~sample_every:1 ~seed:5L ~keep:4096 ~metrics:reg ()
  in
  let srv =
    Srv.create ~read_timeout:5.0 ~metrics:reg ~tracer
      ~eval:(fun _ _ -> None)
      ~make_engine:(fun ~on_merge ->
        Srv.P.create ~shards:2 ~batch:8 ~tracer ~on_merge ())
      ()
  in
  let cli =
    Net.Client.create ~conns:1 ~batch:16 ~flush_age:0.01 ~tracer
      ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  for i = 1 to 400 do
    check_bool "push accepted" true (Net.Client.push cli (i land 63))
  done;
  Net.Client.flush cli;
  Net.Client.close cli;
  ignore (Srv.stop srv);
  let spans = Obs.Tracer.recent tracer 4096 in
  check_bool "spans recorded" true (spans <> []);
  (* Group by trace id, keep the first span per stage. *)
  let traces = Hashtbl.create 64 in
  List.iter
    (fun (r : Obs.Span.record) ->
      let l =
        match Hashtbl.find_opt traces r.Obs.Span.trace_id with
        | Some l -> l
        | None -> []
      in
      if not (List.mem_assoc r.Obs.Span.stage l) then
        Hashtbl.replace traces r.Obs.Span.trace_id ((r.Obs.Span.stage, r) :: l))
    spans;
  let order = [ "enqueue"; "decode"; "ingest"; "queue"; "merge"; "flush" ] in
  let complete =
    Hashtbl.fold
      (fun _ l acc ->
        if List.for_all (fun s -> List.mem_assoc s l) order then l :: acc
        else acc)
      traces []
  in
  (* The engine's per-shard trace mailbox is one slot, so not every batch
     completes the chain — but with every batch sampled at least one must. *)
  check_bool
    (Printf.sprintf "at least one complete waterfall (%d traces, %d spans)"
       (Hashtbl.length traces) (List.length spans))
    true (complete <> []);
  List.iter
    (fun l ->
      let stamp s = (List.assoc s l).Obs.Span.stamp in
      let rec check_chain = function
        | a :: (b :: _ as rest) ->
            check_bool
              (Printf.sprintf "stage %s recorded before %s" a b)
              true
              (stamp a < stamp b);
            check_chain rest
        | _ -> ()
      in
      (* Recording order is only total along each causal chain: the client
         closes its "flush" span after the server's ack, and the shard
         worker's queue/merge spans race that ack — so check the ingest
         path and the merge path separately. *)
      check_chain [ "enqueue"; "decode"; "ingest"; "flush" ];
      check_chain [ "enqueue"; "decode"; "queue"; "merge" ];
      (* Every non-root stage is parented on another span of this trace. *)
      let ids =
        List.map (fun (_, (r : Obs.Span.record)) -> r.Obs.Span.span_id) l
      in
      List.iter
        (fun (s, (r : Obs.Span.record)) ->
          if s <> "enqueue" then
            check_bool
              (Printf.sprintf "stage %s parented in-trace" s)
              true
              (List.exists (Int64.equal r.Obs.Span.parent) ids))
        l)
    complete;
  (* The per-stage latency series exist for every pipeline stage. *)
  let snap = Obs.Registry.snapshot reg in
  List.iter
    (fun s ->
      match
        Obs.Snapshot.find snap ~labels:[ ("stage", s) ] "trace_stage_seconds"
      with
      | Some (Obs.Snapshot.Summary sum) ->
          check_bool
            (Printf.sprintf "stage %s timer populated" s)
            true
            (sum.Obs.Snapshot.s_count > 0)
      | _ -> Alcotest.failf "missing trace_stage_seconds{stage=%S}" s)
    order

(* ------------------------------------------------------------------ *)
(* Follower replica                                                    *)
(* ------------------------------------------------------------------ *)

let test_replica_convergence () =
  let srv = start_server ~shards:2 ~batch:4 () in
  let c = dial srv in
  (* Some history before the follower exists, so its seed snapshot is
     non-trivial and the handshake race (delta <= seed epoch) is live. *)
  check_int "pre-subscribe batch" 40
    (expect_ack c (batch (Array.init 40 (fun i -> i land 7))));
  let rep =
    Rep.connect ~read_timeout:0.5 ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  (* Stream more while the follower is live, sampling the envelope: the
     follower's published weight must never exceed the leader's (leader
     sampled second — it can only have grown in between). *)
  let violations = ref 0 in
  for round = 1 to 25 do
    check_int "mid-stream batch" 8
      (expect_ack c (batch (Array.init 8 (fun i -> (round + i) land 7))));
    let f = Rep.published rep in
    let l = (Srv.P.stats (Srv.engine srv)).Srv.P.published in
    if f > l then incr violations
  done;
  check_int "follower never leads leader" 0 !violations;
  Conn.close c;
  (* stop = drain + final fan-out + subscriber close + joins: after it the
     follower must converge exactly. *)
  ignore (Srv.stop srv);
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "leader conserved" 240 est.Srv.P.published;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let rs = Rep.stats rep in
    if rs.Rep.published = est.Srv.P.published && rs.Rep.epoch = est.Srv.P.epoch
    then rs
    else if Unix.gettimeofday () > deadline then rs
    else (
      Unix.sleepf 0.01;
      settle ())
  in
  let rs = settle () in
  check_int "exact published convergence" est.Srv.P.published rs.Rep.published;
  check_int "exact epoch convergence" est.Srv.P.epoch rs.Rep.epoch;
  check_bool "follower applied deltas" true (rs.Rep.deltas > 0);
  (* Bit-for-bit: the follower's folded state encodes to the same blob as
     the leader's global sketch. *)
  let leader_blob, _, _ = Srv.P.snapshot (Srv.engine srv) in
  (match Rep.query rep MC.encode with
  | Some (follower_blob, _) ->
      check_bool "encoded states identical" true
        (Bytes.equal leader_blob follower_blob)
  | None -> Alcotest.fail "follower never seeded");
  Rep.close rep

(* ------------------------------------------------------------------ *)
(* Effectively-once ingestion                                          *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivl-test-net-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

let expect_ack_dup c req =
  match request c req with
  | Frame.Ack { accepted; dup; _ } -> (accepted, dup)
  | Frame.Err { msg; _ } -> Alcotest.failf "err instead of ack: %s" msg
  | _ -> Alcotest.fail "not an ack"

(* Satellite (regression first): the at-least-once double-count. A sender
   whose ack is lost after the server applied the batch must retry — and a
   server with no dedup window cannot tell the retry from new data, so the
   retried batch is applied twice and conservation (published = Σ acked,
   counting each logical batch once) breaks. Session 0L is exactly that
   pre-fix server; the same exchange under a real session is the fix. *)
let test_at_least_once_double_count () =
  (* The break, demonstrated: sessionless retry doubles published. *)
  let srv = start_server () in
  let c = dial srv in
  let keys = Array.init 32 (fun i -> i land 7) in
  check_int "applied" 32 (expect_ack c (batch keys));
  (* the ack was "lost": the producer retries the identical batch *)
  check_int "retry re-applied" 32 (expect_ack c (batch keys));
  Conn.close c;
  ignore (Srv.stop srv);
  check_int "double-counted: published = 2x the logical batch" 64
    (Srv.P.stats (Srv.engine srv)).Srv.P.published;
  (* The fix: the same lost-ack retry under a session is acked with the
     original count, dup = true, and never re-applied. *)
  let srv = start_server () in
  let c = dial srv in
  check_int "hello acked" 0 (expect_ack c (Frame.Hello { session = 42L }));
  let sb = batch ~session:42L ~seq:0 keys in
  (match expect_ack_dup c sb with
  | 32, false -> ()
  | k, d -> Alcotest.failf "first send: accepted %d dup %b" k d);
  (match expect_ack_dup c sb with
  | 32, true -> ()
  | k, d -> Alcotest.failf "retry: accepted %d dup %b (must be 32, true)" k d);
  (* a fresh seq from the same session still flows *)
  (match expect_ack_dup c (batch ~session:42L ~seq:1 keys) with
  | 32, false -> ()
  | k, d -> Alcotest.failf "next seq: accepted %d dup %b" k d);
  Conn.close c;
  let stats = Srv.stop srv in
  check_int "one batch suppressed" 1 stats.Srv.duplicates;
  check_bool "session tracked" true (stats.Srv.sessions >= 1);
  check_int "published counts each logical batch once" 64
    (Srv.P.stats (Srv.engine srv)).Srv.P.published

let test_dedup_window () =
  let d = Net.Dedup.create ~window:4 () in
  Net.Dedup.register d ~session:7L;
  (match Net.Dedup.begin_batch d ~session:7L ~seq:0 ~count:10 with
  | Net.Dedup.Fresh -> ()
  | Net.Dedup.Duplicate _ -> Alcotest.fail "seq 0 must be fresh");
  (* record overwrites the provisional claimed count with the engine's
     actual accepted count, so an in-window duplicate ack is exact *)
  Net.Dedup.record d ~session:7L ~seq:0 ~accepted:9;
  (match Net.Dedup.begin_batch d ~session:7L ~seq:0 ~count:10 with
  | Net.Dedup.Duplicate 9 -> ()
  | Net.Dedup.Duplicate k -> Alcotest.failf "exact dup count: got %d" k
  | Net.Dedup.Fresh -> Alcotest.fail "seq 0 retried must be duplicate");
  for s = 1 to 6 do
    match Net.Dedup.begin_batch d ~session:7L ~seq:s ~count:1 with
    | Net.Dedup.Fresh -> Net.Dedup.record d ~session:7L ~seq:s ~accepted:1
    | Net.Dedup.Duplicate _ -> Alcotest.failf "seq %d must be fresh" s
  done;
  (* seq 0 has left the 4-slot ring but sits under the high-water mark:
     still a duplicate (seqs are emitted in order), answered with the
     retry's claimed count *)
  (match Net.Dedup.begin_batch d ~session:7L ~seq:0 ~count:10 with
  | Net.Dedup.Duplicate 10 -> ()
  | Net.Dedup.Duplicate k -> Alcotest.failf "below-ring dup: got %d" k
  | Net.Dedup.Fresh -> Alcotest.fail "evicted seq must stay duplicate");
  (* session 0L opts out entirely: the same (seq) is always fresh *)
  (match Net.Dedup.begin_batch d ~session:0L ~seq:0 ~count:5 with
  | Net.Dedup.Fresh -> ()
  | _ -> Alcotest.fail "session 0 must bypass dedup");
  (match Net.Dedup.begin_batch d ~session:0L ~seq:0 ~count:5 with
  | Net.Dedup.Fresh -> ()
  | _ -> Alcotest.fail "session 0 retry must bypass dedup");
  let st = Net.Dedup.stats d in
  check_int "one live session (0L untracked)" 1 st.Net.Dedup.sessions;
  check_int "duplicates counted" 2 st.Net.Dedup.duplicates;
  Net.Dedup.close d

let test_dedup_journal_survives_restart () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let d = Net.Dedup.create ~dir () in
      (match Net.Dedup.begin_batch d ~session:9L ~seq:0 ~count:16 with
      | Net.Dedup.Fresh -> Net.Dedup.record d ~session:9L ~seq:0 ~accepted:16
      | _ -> Alcotest.fail "fresh expected");
      (match Net.Dedup.begin_batch d ~session:9L ~seq:1 ~count:8 with
      | Net.Dedup.Fresh -> Net.Dedup.record d ~session:9L ~seq:1 ~accepted:8
      | _ -> Alcotest.fail "fresh expected");
      check_int "journaled" 2 (Net.Dedup.stats d).Net.Dedup.journal_records;
      Net.Dedup.close d;
      (* a new incarnation replays the journal: the retry that spans the
         restart stays suppressed, answered with the claimed count *)
      let d2 = Net.Dedup.create ~dir () in
      check_int "recovered" 2 (Net.Dedup.stats d2).Net.Dedup.recovered_records;
      (match Net.Dedup.begin_batch d2 ~session:9L ~seq:1 ~count:8 with
      | Net.Dedup.Duplicate 8 -> ()
      | Net.Dedup.Duplicate k -> Alcotest.failf "recovered dup: got %d" k
      | Net.Dedup.Fresh -> Alcotest.fail "journaled seq must be duplicate");
      (match Net.Dedup.begin_batch d2 ~session:9L ~seq:2 ~count:4 with
      | Net.Dedup.Fresh -> ()
      | _ -> Alcotest.fail "new seq must be fresh");
      Net.Dedup.close d2;
      (* torn tail: a crash mid-append leaves a partial frame; the next
         incarnation recovers the longest valid prefix and truncates *)
      let path = Filename.concat dir "sessions.log" in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 3);
      Unix.close fd;
      let d3 = Net.Dedup.create ~dir () in
      check_int "prefix recovered, torn record dropped" 2
        (Net.Dedup.stats d3).Net.Dedup.recovered_records;
      (match Net.Dedup.begin_batch d3 ~session:9L ~seq:1 ~count:8 with
      | Net.Dedup.Duplicate _ -> ()
      | Net.Dedup.Fresh -> Alcotest.fail "prefix seq must stay duplicate");
      Net.Dedup.close d3;
      check_bool "torn tail truncated on a frame boundary" true
        ((Unix.stat path).Unix.st_size < len))

let test_dedup_journal_compaction () =
  (* The journal appends one frame per fresh batch forever, but the state it
     rebuilds is bounded (window ring + high-water mark per session), so
     compaction must keep the file bounded too: after thousands of appends a
     restart may replay at most [window] frames per live session — and the
     suppression answers must be unchanged. *)
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let window = 4 in
      let d = Net.Dedup.create ~window ~compact_every:8 ~dir () in
      let fresh_seq session seq =
        match Net.Dedup.begin_batch d ~session ~seq ~count:(seq + 1) with
        | Net.Dedup.Fresh ->
            Net.Dedup.record d ~session ~seq ~accepted:(seq + 1)
        | Net.Dedup.Duplicate _ -> Alcotest.failf "seq %d must be fresh" seq
      in
      for s = 0 to 99 do
        fresh_seq 5L s
      done;
      for s = 0 to 49 do
        fresh_seq 6L s
      done;
      let st = Net.Dedup.stats d in
      check_int "every fresh batch journaled" 150 st.Net.Dedup.journal_records;
      check_bool "appends triggered compactions" true
        (st.Net.Dedup.compactions >= 150 / 8);
      Net.Dedup.close d;
      (* Restart: the replay is bounded by the snapshot, not by history. *)
      let d2 = Net.Dedup.create ~window ~dir () in
      let st2 = Net.Dedup.stats d2 in
      (* Bound from the mli: window frames per live session in the snapshot
         plus at most compact_every frames appended since the last rewrite
         (here 8 + 150 mod 8 = 14) — against 150 total appends. *)
      check_bool
        (Printf.sprintf "bounded replay (%d <= window*sessions + tail)"
           st2.Net.Dedup.recovered_records)
        true
        (st2.Net.Dedup.recovered_records <= (window * 2) + 8);
      check_bool "recovery itself compacted" true
        (st2.Net.Dedup.compactions >= 1);
      (* Suppression semantics survive the rewrite: a windowed seq answers
         its recorded count, an ancient seq dedups via the high-water mark. *)
      (match Net.Dedup.begin_batch d2 ~session:5L ~seq:99 ~count:100 with
      | Net.Dedup.Duplicate 100 -> ()
      | Net.Dedup.Duplicate k -> Alcotest.failf "windowed dup: got %d" k
      | Net.Dedup.Fresh -> Alcotest.fail "windowed seq must stay duplicate");
      (match Net.Dedup.begin_batch d2 ~session:5L ~seq:3 ~count:7 with
      | Net.Dedup.Duplicate _ -> ()
      | Net.Dedup.Fresh -> Alcotest.fail "below-ring seq must stay duplicate");
      (match Net.Dedup.begin_batch d2 ~session:6L ~seq:50 ~count:1 with
      | Net.Dedup.Fresh -> ()
      | _ -> Alcotest.fail "next seq must be fresh");
      Net.Dedup.close d2;
      (* A crash mid-append after compaction: torn tail on the compacted
         file truncates to a frame boundary and keeps the snapshot. *)
      let path = Filename.concat dir "sessions.log" in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 2);
      Unix.close fd;
      let d3 = Net.Dedup.create ~window ~dir () in
      check_bool "torn compacted journal still replays" true
        ((Net.Dedup.stats d3).Net.Dedup.recovered_records > 0);
      (match Net.Dedup.begin_batch d3 ~session:5L ~seq:99 ~count:100 with
      | Net.Dedup.Duplicate _ -> ()
      | Net.Dedup.Fresh -> Alcotest.fail "dup must survive the torn tail");
      Net.Dedup.close d3)

(* ------------------------------------------------------------------ *)
(* Chaos proxy                                                         *)
(* ------------------------------------------------------------------ *)

let proxy_for srv ?faults ~seed () =
  Net.Chaos_proxy.create ?faults ~seed
    ~upstream:(fun () -> ("127.0.0.1", Srv.port srv))
    ()

let test_proxy_forwarding_and_partition () =
  let srv = start_server () in
  let px = proxy_for srv ~seed:0x9L () in
  let dial_px () =
    let c = Conn.connect ~host:"127.0.0.1" ~port:(Net.Chaos_proxy.port px) in
    Conn.set_read_timeout c 2.0;
    c
  in
  (* transparent when fault-free: the full request/ack exchange works *)
  let c = dial_px () in
  check_int "ack through proxy" 10
    (expect_ack c (batch (Array.init 10 (fun i -> i))));
  (* a partition severs the live flow... *)
  Net.Chaos_proxy.set_partition px true;
  check_bool "send into partition eventually fails" true
    (let b = Frame.encode_request (batch [| 1 |]) in
     not (Conn.send c b && Result.is_ok (Conn.recv c)));
  Conn.close c;
  (* ...and refuses new dials (accepted, then immediately closed) *)
  let c2 = dial_px () in
  check_bool "no service while partitioned" true
    (let b = Frame.encode_request (batch [| 1 |]) in
     not (Conn.send c2 b && Result.is_ok (Conn.recv c2)));
  Conn.close c2;
  (* healing the partition restores service through the same proxy port *)
  Net.Chaos_proxy.set_partition px false;
  let c3 = dial_px () in
  check_int "ack after heal" 5 (expect_ack c3 (batch (Array.init 5 (fun i -> i))));
  Conn.close c3;
  let ps = Net.Chaos_proxy.stop px in
  check_bool "conns forwarded" true (ps.Net.Chaos_proxy.conns >= 2);
  check_bool "refusals counted" true (ps.Net.Chaos_proxy.refused >= 1);
  check_bool "bytes counted" true (ps.Net.Chaos_proxy.bytes > 0);
  ignore (Srv.stop srv)

(* Satellite: the client's effectively-once contract observed end to end —
   a partition mid-stream forces reconnects and retries, yet acked stays
   exact and the engine's published weight equals it after drain. *)
let test_client_effectively_once_through_chaos () =
  let srv = start_server ~shards:2 ~batch:64 () in
  let px = proxy_for srv ~seed:0x51L () in
  let cli =
    Net.Client.create ~conns:2 ~batch:128 ~flush_age:0.01 ~retries:64
      ~read_timeout:2.0 ~host:"127.0.0.1" ~port:(Net.Chaos_proxy.port px) ()
  in
  for i = 1 to 10_000 do
    ignore (Net.Client.push cli (i land 1023))
  done;
  (* sever everything mid-stream; senders retry through the outage *)
  Net.Chaos_proxy.set_partition px true;
  Unix.sleepf 0.15;
  Net.Chaos_proxy.set_partition px false;
  for i = 1 to 10_000 do
    ignore (Net.Client.push cli (i land 1023))
  done;
  Net.Client.flush cli;
  let cs = Net.Client.stats cli in
  Net.Client.close cli;
  ignore (Net.Chaos_proxy.stop px);
  let stats = Srv.stop srv in
  check_int "all pushed" 20_000 cs.Net.Client.pushed;
  check_int "no retry exhaustion" 0 cs.Net.Client.exhausted;
  check_int "acked exactly, despite the partition" 20_000 cs.Net.Client.acked;
  check_bool "the partition was felt" true (cs.Net.Client.errors >= 1);
  (* conservation: retried batches were acked, not re-applied *)
  check_int "published = acked" 20_000
    (Srv.P.stats (Srv.engine srv)).Srv.P.published;
  (* every dup ack the client saw was a batch the server suppressed (the
     reverse can differ: a dup ack can itself be lost) *)
  check_bool "dup acks reported to client" true
    (cs.Net.Client.duplicates_suppressed <= stats.Srv.duplicates)

(* ------------------------------------------------------------------ *)
(* Replica self-healing                                                *)
(* ------------------------------------------------------------------ *)

let test_replica_resync () =
  let reg = Obs.Registry.create () in
  let srv = start_server ~shards:2 ~batch:4 () in
  let px = proxy_for srv ~seed:0x7EL () in
  let c = dial srv in
  check_int "seed history" 16
    (expect_ack c (batch (Array.init 16 (fun i -> i land 3))));
  let rep =
    Rep.connect ~read_timeout:0.2 ~resync_backoff:0.02 ~metrics:reg
      ~host:"127.0.0.1" ~port:(Net.Chaos_proxy.port px) ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Rep.status rep <> `Live && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check_bool "live after subscribe" true (Rep.status rep = `Live);
  (* break the stream: the partition kills the subscriber's flow *)
  Net.Chaos_proxy.set_partition px true;
  let saw_resyncing = ref false in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not !saw_resyncing && Unix.gettimeofday () < deadline do
    (match Rep.status rep with `Resyncing _ -> saw_resyncing := true | _ -> ());
    Unix.sleepf 0.005
  done;
  check_bool "status transitioned to Resyncing" true !saw_resyncing;
  (* while resyncing, the last applied state still serves — stale, never
     ahead of the leader *)
  check_bool "stale state still queryable" true
    (Rep.published rep <= (Srv.P.stats (Srv.engine srv)).Srv.P.published);
  (* heal: the replica redials through the same proxy port, takes a fresh
     snapshot, and goes Live again *)
  Net.Chaos_proxy.set_partition px false;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Rep.status rep <> `Live && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check_bool "self-healed to Live" true (Rep.status rep = `Live);
  let rs = Rep.stats rep in
  check_bool "resync counted" true (rs.Rep.resyncs >= 1);
  check_bool "break reason recorded" true (rs.Rep.last_break <> None);
  (* the healed stream still converges exactly *)
  check_int "post-heal batch" 16
    (expect_ack c (batch (Array.init 16 (fun i -> i land 3))));
  Conn.close c;
  (* converge while the leader still serves: drain flushes the partial
     shard deltas, and the live subscriber receives them (stopping the
     server first would leave the healed replica redialing a dead port) *)
  let eng = Srv.engine srv in
  Srv.P.drain eng;
  let leader_blob, final_epoch, final_pub = Srv.P.snapshot eng in
  check_bool "converged after drain" true
    (Rep.wait_epoch ~timeout:5.0 rep final_epoch);
  check_int "exact convergence through a resync" final_pub (Rep.published rep);
  (match Rep.query rep MC.encode with
  | Some (follower_blob, _) ->
      check_bool "bit-for-bit after resync" true
        (Bytes.equal leader_blob follower_blob)
  | None -> Alcotest.fail "follower lost its state");
  (* satellite: the transitions are visible as obs series *)
  let snap = Obs.Registry.snapshot reg in
  check_bool "replica_resyncs_total scraped" true
    (Obs.Snapshot.counter_value snap "replica_resyncs_total" >= 1);
  Rep.close rep;
  check_bool "closed status exported" true (Rep.status rep = `Closed);
  ignore (Srv.stop srv);
  ignore (Net.Chaos_proxy.stop px)

(* ------------------------------------------------------------------ *)
(* Served chaos soak (Net.Soak) and the committed incident trace       *)
(* ------------------------------------------------------------------ *)

module NS = Net.Soak.Make (MC)

let test_served_chaos_soak () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec =
        let s =
          Workload.Trace.default_spec ~seed:0xC4A05L ~ops:60_000 ~universe:2048
            ()
        in
        {
          s with
          Workload.Trace.phases =
            List.map
              (fun (p : Workload.Trace.phase) ->
                { p with Workload.Trace.rate = Workload.Trace.Unlimited })
              s.Workload.Trace.phases;
        }
      in
      let ops = Workload.Trace.materialize spec in
      let base = Net.Soak.default_config ~dir in
      let cfg =
        {
          base with
          Net.Soak.restarts = 1;
          partitions = 1;
          down_time = 0.15;
          partition_time = 0.15;
        }
      in
      let reg = Obs.Registry.create () in
      let v = NS.run ~metrics:reg cfg ~spec ~ops () in
      if not v.Net.Soak.pass then
        Alcotest.failf "served soak failed:\n%s" (NS.verdict_to_string v);
      check_int "restart happened" 1 v.Net.Soak.restarts_done;
      check_int "partition happened" 1 v.Net.Soak.partitions_done;
      check_bool "replica resynced" true (v.Net.Soak.resyncs >= 1);
      check_int "no retry exhaustion" 0 v.Net.Soak.exhausted;
      check_int "follower never ahead" 0 v.Net.Soak.follower_ahead;
      let snap = Obs.Registry.snapshot reg in
      check_bool "resyncs scraped" true
        (Obs.Snapshot.counter_value snap "replica_resyncs_total" >= 1))

(* Satellite: a small served incident, recorded once via
   `ivl-cli soak --served --record-trace` and committed — replayed here so
   the exact op stream that drove a real kill/partition round stays a
   regression. The replay is clean-network (the trace pins the workload,
   not the faults) and must conserve exactly. *)
let test_incident_trace_replay () =
  let path = "data/served_incident.trace" in
  match Workload.Trace.read ~path with
  | Error msg -> Alcotest.failf "committed trace unreadable: %s" msg
  | Ok (spec, ops) ->
      check_bool "recorded phases" true
        (List.for_all
           (fun (p : Workload.Trace.phase) ->
             match p.Workload.Trace.shape with
             | Workload.Trace.Recorded _ -> true
             | _ -> false)
           spec.Workload.Trace.phases);
      let dir = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let base = Net.Soak.default_config ~dir in
          let cfg =
            {
              base with
              Net.Soak.restarts = 0;
              partitions = 0;
              faults = Net.Chaos_proxy.no_faults;
            }
          in
          let v = NS.run cfg ~spec ~ops () in
          if not v.Net.Soak.pass then
            Alcotest.failf "incident replay failed:\n%s"
              (NS.verdict_to_string v);
          check_int "replay conserves exactly" v.Net.Soak.acked
            v.Net.Soak.published)

(* ------------------------------------------------------------------ *)
(* Acceptance: the served soak                                         *)
(* ------------------------------------------------------------------ *)

(* ISSUE 7's end-to-end bar: Workload.Driver over a real socket, >= 1M ops
   total, >= 4 concurrent client connections, a live follower inside the
   envelope throughout, exact leader/follower equality after drain, and
   the per-connection obs series visible in a scrape. *)
let test_served_soak () =
  let reg = Obs.Registry.create () in
  let srv =
    Srv.create ~metrics:reg ~read_timeout:10.0
      ~eval:(fun _ _ -> None)
      ~make_engine:(fun ~on_merge ->
        Srv.P.create ~shards:4 ~batch:512 ~on_merge ())
      ()
  in
  let cli =
    Net.Client.create ~metrics:reg ~conns:4 ~batch:256 ~flush_age:0.05
      ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  let rep =
    Rep.connect ~read_timeout:0.5 ~host:"127.0.0.1" ~port:(Srv.port srv) ()
  in
  (* An envelope sampler races the whole run. *)
  let stop_sampling = Atomic.make false in
  let violations = Atomic.make 0 in
  let samples = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_sampling) do
          let f = Rep.published rep in
          let l = (Srv.P.stats (Srv.engine srv)).Srv.P.published in
          if f > l then Atomic.incr violations;
          Atomic.incr samples;
          Unix.sleepf 0.002
        done)
  in
  let spec =
    Workload.Trace.default_spec ~seed:0x1517L ~ops:1_000_000 ~universe:8192 ()
  in
  let ops = Workload.Trace.materialize spec in
  let report =
    Workload.Driver.run ~feeders:2 ~metrics:reg
      ~make_sink:(fun ~feeder:_ -> Net.Client.sink cli)
      ~spec ~ops ()
  in
  Net.Client.flush cli;
  Atomic.set stop_sampling true;
  Domain.join sampler;
  let cs = Net.Client.stats cli in
  check_bool "soak pushed >= 900k updates" true
    (cs.Net.Client.pushed >= 900_000);
  check_int "driver accepted = client pushed" report.Workload.Driver.accepted
    cs.Net.Client.pushed;
  check_int "no transport errors on loopback" 0 cs.Net.Client.errors;
  check_int "exact ack count" cs.Net.Client.pushed cs.Net.Client.acked;
  check_bool "envelope sampled" true (Atomic.get samples > 10);
  check_int "follower never led leader" 0 (Atomic.get violations);
  Net.Client.close cli;
  let stats = Srv.stop srv in
  check_bool ">= 4 concurrent connections" true (stats.Srv.conns >= 4);
  let est = Srv.P.stats (Srv.engine srv) in
  check_int "conservation: published = acked" cs.Net.Client.acked
    est.Srv.P.published;
  (* Exact convergence after the drain. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let rs = Rep.stats rep in
    if rs.Rep.published = est.Srv.P.published then rs
    else if Unix.gettimeofday () > deadline then rs
    else (
      Unix.sleepf 0.01;
      settle ())
  in
  let rs = settle () in
  check_int "follower converged exactly" est.Srv.P.published rs.Rep.published;
  Rep.close rep;
  (* The scrape shows the per-connection series: at least the 4 sender
     connections plus the subscriber, each labelled conn="<id>". *)
  let snap = Obs.Registry.snapshot reg in
  let conn_labels =
    List.filter_map
      (fun s ->
        if s.Obs.Snapshot.name = "net_frames_in_total" then
          List.assoc_opt "conn" s.Obs.Snapshot.labels
        else None)
      snap.Obs.Snapshot.samples
    |> List.sort_uniq compare
  in
  check_bool ">= 5 per-connection series" true (List.length conn_labels >= 5);
  check_int "aggregate ingest series" cs.Net.Client.acked
    (Obs.Snapshot.counter_value snap "net_ingested_total");
  check_int "client series" cs.Net.Client.acked
    (Obs.Snapshot.counter_value snap "client_acked_total");
  check_bool "driver series" true
    (Obs.Snapshot.counter_value snap "driver_issued_total" >= 1_000_000)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "push roundtrip" `Quick test_push_roundtrip;
          Alcotest.test_case "schema validation" `Quick
            test_frame_schema_validation;
          Alcotest.test_case "unknown kind" `Quick test_unknown_kind;
          Alcotest.test_case "span context on the wire" `Quick
            test_span_ctx_wire;
        ] );
      ( "server",
        [
          Alcotest.test_case "batch/ack/query" `Quick test_server_batch_ack;
          Alcotest.test_case "unknown kind over wire" `Quick
            test_server_unknown_kind_over_wire;
          Alcotest.test_case "adversarial peers" `Quick test_adversarial_peers;
        ] );
      ( "client",
        [
          Alcotest.test_case "batched roundtrip" `Quick test_client_roundtrip;
          Alcotest.test_case "dead server sheds" `Quick test_client_dead_server;
          Alcotest.test_case "sink seam" `Quick test_sink_seam;
          Alcotest.test_case "tracing waterfall over loopback" `Quick
            test_trace_waterfall;
        ] );
      ( "effectively-once",
        [
          Alcotest.test_case "at-least-once double-count regression" `Quick
            test_at_least_once_double_count;
          Alcotest.test_case "dedup window" `Quick test_dedup_window;
          Alcotest.test_case "dedup journal compaction" `Quick
            test_dedup_journal_compaction;
          Alcotest.test_case "dedup journal survives restart" `Quick
            test_dedup_journal_survives_restart;
          Alcotest.test_case "exact acks through chaos" `Quick
            test_client_effectively_once_through_chaos;
        ] );
      ( "chaos-proxy",
        [
          Alcotest.test_case "forwarding and partition" `Quick
            test_proxy_forwarding_and_partition;
        ] );
      ( "replica",
        [
          Alcotest.test_case "envelope and exact convergence" `Quick
            test_replica_convergence;
          Alcotest.test_case "self-healing resync" `Quick test_replica_resync;
        ] );
      ( "soak",
        [
          Alcotest.test_case "served soak 1M ops" `Quick test_served_soak;
          Alcotest.test_case "served chaos soak" `Quick test_served_chaos_soak;
          Alcotest.test_case "incident trace replay" `Quick
            test_incident_trace_replay;
        ] );
    ]
