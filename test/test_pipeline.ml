(* End-to-end tests of the sharded ingestion pipeline: the MPSC transport,
   exact conservation through drain, the Theorem-6-style envelope of the
   merged CountMin, the recorded history's IVL envelope, and crash-stop
   drains under chaos kills. *)

module Mono = Ivl.Monotone.Make (Spec.Counter_spec)
module PC = Pipeline.Engine.Make (Pipeline.Targets.Counter)

(* ------------------------- mpsc ------------------------- *)

let test_mpsc_fifo () =
  let q = Pipeline.Mpsc.create ~capacity:4 in
  List.iter (fun x -> Alcotest.(check bool) "push" true (Pipeline.Mpsc.push q x)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Pipeline.Mpsc.length q);
  Alcotest.(check (list int)) "batch pops FIFO" [ 1; 2 ]
    (Pipeline.Mpsc.pop_batch q ~max:2);
  Alcotest.(check (option int)) "pop" (Some 3) (Pipeline.Mpsc.pop q);
  Alcotest.(check bool) "try_push ok" true (Pipeline.Mpsc.try_push q 9 = `Ok)

let test_mpsc_full_and_close () =
  let q = Pipeline.Mpsc.create ~capacity:2 in
  ignore (Pipeline.Mpsc.push q 1);
  ignore (Pipeline.Mpsc.push q 2);
  Alcotest.(check bool) "try_push full" true (Pipeline.Mpsc.try_push q 3 = `Full);
  Pipeline.Mpsc.close q;
  Alcotest.(check bool) "closed" true (Pipeline.Mpsc.is_closed q);
  Alcotest.(check bool) "push after close" false (Pipeline.Mpsc.push q 4);
  Alcotest.(check bool) "try_push closed" true
    (Pipeline.Mpsc.try_push q 4 = `Closed);
  (* Consumer still drains the queued elements, then sees the end mark. *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Pipeline.Mpsc.pop q);
  Alcotest.(check (list int)) "drain 2" [ 2 ] (Pipeline.Mpsc.pop_batch q ~max:8);
  Alcotest.(check (option int)) "end" None (Pipeline.Mpsc.pop q);
  Alcotest.(check (list int)) "end batch" [] (Pipeline.Mpsc.pop_batch q ~max:8)

let test_mpsc_blocking_producer () =
  (* A full queue blocks the producer until the consumer pops: real
     backpressure, not spinning or dropping. *)
  let q = Pipeline.Mpsc.create ~capacity:1 in
  ignore (Pipeline.Mpsc.push q 0);
  let d =
    Domain.spawn (fun () ->
        let ok = ref true in
        for x = 1 to 100 do
          ok := !ok && Pipeline.Mpsc.push q x
        done;
        !ok)
  in
  let seen = ref 0 in
  for _ = 0 to 100 do
    match Pipeline.Mpsc.pop q with Some _ -> incr seen | None -> ()
  done;
  Alcotest.(check bool) "all pushes accepted" true (Domain.join d);
  Alcotest.(check int) "all elements popped" 101 !seen

(* ------------------------- conservation ------------------------- *)

let feed p stream ~feeders =
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let accepted =
    Conc.Runner.parallel ~domains:feeders (fun i ->
        let ok = ref 0 in
        Array.iter (fun x -> if PC.ingest p x then incr ok) chunks.(i);
        !ok)
  in
  Array.fold_left ( + ) 0 accepted

let test_counter_conservation () =
  let n = 10_000 in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Uniform 1000) ~length:n
  in
  let p = PC.create ~queue_capacity:64 ~batch:37 ~shards:3 () in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check int) "all accepted" n accepted;
  Alcotest.(check int) "published = ingested" n (PC.read_total p);
  let (total, epoch) = PC.query p Sketches.Batched_counter.read in
  Alcotest.(check int) "merged sketch total" n total;
  let st = PC.stats p in
  Alcotest.(check int) "epoch = merges" st.PC.merges epoch;
  Alcotest.(check int) "flushed sums to n" n
    (Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards);
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      Alcotest.(check bool) (Printf.sprintf "shard %d alive" i) true s.alive;
      Alcotest.(check int) (Printf.sprintf "shard %d no loss" i) s.enqueued
        s.flushed_items)
    st.PC.shards;
  Alcotest.(check int) "no decode failures" 0 st.PC.decode_failures;
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  Alcotest.(check bool) "ingest after drain" false (PC.ingest p 7);
  (* Idempotent. *)
  PC.drain p;
  Alcotest.(check int) "published stable" n (PC.read_total p)

let test_history_envelope () =
  (* Concurrent reader sampling the published total mid-run: the recorded
     merge/read history must pass the monotone envelope check, and the
     single reader must see a nondecreasing sequence. *)
  let n = 20_000 in
  let stream =
    Workload.Stream.generate ~seed:5L (Workload.Stream.Zipf (500, 1.1)) ~length:n
  in
  let p = PC.create ~queue_capacity:128 ~batch:64 ~shards:2 () in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let rec loop acc =
          let v = PC.read_total p in
          if Atomic.get stop then List.rev (v :: acc)
          else begin
            (* Throttle so the recorded history stays small. *)
            for _ = 1 to 10_000 do
              Domain.cpu_relax ()
            done;
            loop (v :: acc)
          end
        in
        loop [])
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check int) "all accepted" n accepted;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "reads nondecreasing" true (monotone reads);
  Alcotest.(check bool) "final read complete" true
    (List.length reads > 0 && List.nth reads (List.length reads - 1) = n);
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)))

(* ------------------------- Theorem 6 envelope ------------------------- *)

let test_countmin_theorem6 () =
  (* Theorem 6: the r-relaxed PCM is (r/w·d)-bounded per row; after a full
     drain the pipeline's merged CountMin equals a sequential CountMin over
     the same multiset (merges are exact by linearity), so every estimate
     must sit in [f(a), f(a) + error_bound]. Deterministic: fixed seeds fix
     the coins, and merge order cannot change the sums. *)
  let module Cm = Pipeline.Targets.Countmin (struct
    let seed = 21L
    let rows = 4
    let width = 256
  end) in
  let module P = Pipeline.Engine.Make (Cm) in
  let n = 20_000 in
  let universe = 400 in
  let stream =
    Workload.Stream.generate ~seed:9L (Workload.Stream.Zipf (universe, 1.2))
      ~length:n
  in
  let p = P.create ~queue_capacity:256 ~batch:100 ~shards:4 () in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  ignore
    (Conc.Runner.parallel ~domains:2 (fun i ->
         Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
  P.drain p;
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let g, _ = P.query p (fun g -> g) in
  Alcotest.(check int) "sketch saw every update" n (Sketches.Countmin.updates g);
  let bound = int_of_float (ceil (Sketches.Countmin.error_bound g)) in
  for a = 0 to universe - 1 do
    let f = Sketches.Exact.frequency exact a
    and est = Sketches.Countmin.query g a in
    if est < f || est > f + bound then
      Alcotest.failf "element %d: estimate %d outside [%d, %d + %d]" a est f f
        bound
  done;
  (* And the merged sketch is exactly the sequential one: same coins, same
     multiset, merge is cell-wise addition. *)
  let seq = Sketches.Countmin.create ~family:(Sketches.Countmin.family g) in
  Array.iter (Sketches.Countmin.update seq) stream;
  for a = 0 to universe - 1 do
    Alcotest.(check int)
      (Printf.sprintf "element %d matches sequential" a)
      (Sketches.Countmin.query seq a)
      (Sketches.Countmin.query g a)
  done

(* ------------------------- chaos ------------------------- *)

let test_chaos_kill_drain () =
  (* Kill a shard worker mid-run: drain must still complete (no hangs, all
     domains joined), conservation must hold on what was actually merged
     (published = Σ flushed), the envelope must still pass, and the dead
     shard must shed subsequent ingests as drops. *)
  let n = 30_000 in
  let stream =
    Workload.Stream.generate ~seed:13L (Workload.Stream.Uniform 5000) ~length:n
  in
  let shards = 3 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan
         ~kills:(Conc.Chaos.random_kills ~seed:17L ~domains:shards ~victims:1 ~max_point:20)
         ~seed:17L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue_capacity:64 ~batch:50
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  let killed = Conc.Chaos.killed ch in
  Alcotest.(check int) "exactly one kill" 1 (List.length killed);
  Alcotest.(check (list int)) "dead shards = killed domains" killed (PC.dead p);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  Alcotest.(check int) "published = flushed" st.PC.published
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  Alcotest.(check int) "published = read_total" st.PC.published (PC.read_total p);
  Alcotest.(check int) "accepted = enqueued" accepted
    (sum (fun (s : PC.shard_stats) -> s.enqueued));
  Alcotest.(check bool) "some loss on the dead shard" true
    (st.PC.published < n);
  (* Survivors lose nothing. *)
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      if s.alive then
        Alcotest.(check int)
          (Printf.sprintf "surviving shard %d intact" i)
          s.enqueued s.flushed_items)
    st.PC.shards;
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)));
  Alcotest.(check bool) "ingest after drain sheds" false (PC.ingest p 1)

let test_chaos_kill_all_shards () =
  (* Even with every worker dead, feeders must not hang: pushes fail fast,
     and drain still joins everything. *)
  let shards = 2 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan ~kills:[ (0, 1); (1, 1) ] ~seed:23L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue_capacity:16 ~batch:8
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let stream =
    Workload.Stream.generate ~seed:29L (Workload.Stream.Uniform 100) ~length:5_000
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check (list int)) "both dead" [ 0; 1 ] (PC.dead p);
  Alcotest.(check bool) "little accepted" true (accepted <= 5_000);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  Alcotest.(check int) "published consistent" (PC.read_total p)
    (let st = PC.stats p in
     Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards)

let () =
  Alcotest.run "pipeline"
    [
      ( "mpsc",
        [
          Alcotest.test_case "fifo" `Quick test_mpsc_fifo;
          Alcotest.test_case "full and close" `Quick test_mpsc_full_and_close;
          Alcotest.test_case "blocking producer" `Quick test_mpsc_blocking_producer;
        ] );
      ( "engine",
        [
          Alcotest.test_case "conservation through drain" `Quick
            test_counter_conservation;
          Alcotest.test_case "history envelope" `Quick test_history_envelope;
          Alcotest.test_case "Theorem 6 CountMin envelope" `Quick
            test_countmin_theorem6;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill one shard, drain completes" `Quick
            test_chaos_kill_drain;
          Alcotest.test_case "kill every shard, no hang" `Quick
            test_chaos_kill_all_shards;
        ] );
    ]
