(* End-to-end tests of the sharded ingestion pipeline: the MPSC transport,
   exact conservation through drain, the Theorem-6-style envelope of the
   merged CountMin, the recorded history's IVL envelope, and crash-stop
   drains under chaos kills. *)

module Mono = Ivl.Monotone.Make (Spec.Counter_spec)
module PC = Pipeline.Engine.Make (Pipeline.Targets.Counter)

(* ------------------------- mpsc ------------------------- *)

let test_mpsc_fifo () =
  let q = Pipeline.Mpsc.create ~capacity:4 in
  List.iter (fun x -> Alcotest.(check bool) "push" true (Pipeline.Mpsc.push q x)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Pipeline.Mpsc.length q);
  Alcotest.(check (list int)) "batch pops FIFO" [ 1; 2 ]
    (Pipeline.Mpsc.pop_batch q ~max:2);
  Alcotest.(check (option int)) "pop" (Some 3) (Pipeline.Mpsc.pop q);
  Alcotest.(check bool) "try_push ok" true (Pipeline.Mpsc.try_push q 9 = `Ok)

let test_mpsc_full_and_close () =
  let q = Pipeline.Mpsc.create ~capacity:2 in
  ignore (Pipeline.Mpsc.push q 1);
  ignore (Pipeline.Mpsc.push q 2);
  Alcotest.(check bool) "try_push full" true (Pipeline.Mpsc.try_push q 3 = `Full);
  Pipeline.Mpsc.close q;
  Alcotest.(check bool) "closed" true (Pipeline.Mpsc.is_closed q);
  Alcotest.(check bool) "push after close" false (Pipeline.Mpsc.push q 4);
  Alcotest.(check bool) "try_push closed" true
    (Pipeline.Mpsc.try_push q 4 = `Closed);
  (* Consumer still drains the queued elements, then sees the end mark. *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Pipeline.Mpsc.pop q);
  Alcotest.(check (list int)) "drain 2" [ 2 ] (Pipeline.Mpsc.pop_batch q ~max:8);
  Alcotest.(check (option int)) "end" None (Pipeline.Mpsc.pop q);
  Alcotest.(check (list int)) "end batch" [] (Pipeline.Mpsc.pop_batch q ~max:8)

let test_mpsc_blocking_producer () =
  (* A full queue blocks the producer until the consumer pops: real
     backpressure, not spinning or dropping. *)
  let q = Pipeline.Mpsc.create ~capacity:1 in
  ignore (Pipeline.Mpsc.push q 0);
  let d =
    Domain.spawn (fun () ->
        let ok = ref true in
        for x = 1 to 100 do
          ok := !ok && Pipeline.Mpsc.push q x
        done;
        !ok)
  in
  let seen = ref 0 in
  for _ = 0 to 100 do
    match Pipeline.Mpsc.pop q with Some _ -> incr seen | None -> ()
  done;
  Alcotest.(check bool) "all pushes accepted" true (Domain.join d);
  Alcotest.(check int) "all elements popped" 101 !seen

(* ------------------------- conservation ------------------------- *)

let feed p stream ~feeders =
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let accepted =
    Conc.Runner.parallel ~domains:feeders (fun i ->
        let ok = ref 0 in
        Array.iter (fun x -> if PC.ingest p x then incr ok) chunks.(i);
        !ok)
  in
  Array.fold_left ( + ) 0 accepted

let test_counter_conservation () =
  let n = 10_000 in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Uniform 1000) ~length:n
  in
  let p = PC.create ~queue_capacity:64 ~batch:37 ~shards:3 () in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check int) "all accepted" n accepted;
  Alcotest.(check int) "published = ingested" n (PC.read_total p);
  let (total, epoch) = PC.query p Sketches.Batched_counter.read in
  Alcotest.(check int) "merged sketch total" n total;
  let st = PC.stats p in
  Alcotest.(check int) "epoch = merges" st.PC.merges epoch;
  Alcotest.(check int) "flushed sums to n" n
    (Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards);
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      Alcotest.(check bool) (Printf.sprintf "shard %d alive" i) true s.alive;
      Alcotest.(check int) (Printf.sprintf "shard %d no loss" i) s.enqueued
        s.flushed_items)
    st.PC.shards;
  Alcotest.(check int) "no decode failures" 0 st.PC.decode_failures;
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  Alcotest.(check bool) "ingest after drain" false (PC.ingest p 7);
  (* Idempotent. *)
  PC.drain p;
  Alcotest.(check int) "published stable" n (PC.read_total p)

let test_history_envelope () =
  (* Concurrent reader sampling the published total mid-run: the recorded
     merge/read history must pass the monotone envelope check, and the
     single reader must see a nondecreasing sequence. *)
  let n = 20_000 in
  let stream =
    Workload.Stream.generate ~seed:5L (Workload.Stream.Zipf (500, 1.1)) ~length:n
  in
  let p = PC.create ~queue_capacity:128 ~batch:64 ~shards:2 () in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let rec loop acc =
          let v = PC.read_total p in
          if Atomic.get stop then List.rev (v :: acc)
          else begin
            (* Throttle so the recorded history stays small. *)
            for _ = 1 to 10_000 do
              Domain.cpu_relax ()
            done;
            loop (v :: acc)
          end
        in
        loop [])
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check int) "all accepted" n accepted;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "reads nondecreasing" true (monotone reads);
  Alcotest.(check bool) "final read complete" true
    (List.length reads > 0 && List.nth reads (List.length reads - 1) = n);
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)))

(* ------------------------- Theorem 6 envelope ------------------------- *)

let test_countmin_theorem6 () =
  (* Theorem 6: the r-relaxed PCM is (r/w·d)-bounded per row; after a full
     drain the pipeline's merged CountMin equals a sequential CountMin over
     the same multiset (merges are exact by linearity), so every estimate
     must sit in [f(a), f(a) + error_bound]. Deterministic: fixed seeds fix
     the coins, and merge order cannot change the sums. *)
  let module Cm = Pipeline.Targets.Countmin (struct
    let seed = 21L
    let rows = 4
    let width = 256
  end) in
  let module P = Pipeline.Engine.Make (Cm) in
  let n = 20_000 in
  let universe = 400 in
  let stream =
    Workload.Stream.generate ~seed:9L (Workload.Stream.Zipf (universe, 1.2))
      ~length:n
  in
  let p = P.create ~queue_capacity:256 ~batch:100 ~shards:4 () in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  ignore
    (Conc.Runner.parallel ~domains:2 (fun i ->
         Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
  P.drain p;
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let g, _ = P.query p (fun g -> g) in
  Alcotest.(check int) "sketch saw every update" n (Sketches.Countmin.updates g);
  let bound = int_of_float (ceil (Sketches.Countmin.error_bound g)) in
  for a = 0 to universe - 1 do
    let f = Sketches.Exact.frequency exact a
    and est = Sketches.Countmin.query g a in
    if est < f || est > f + bound then
      Alcotest.failf "element %d: estimate %d outside [%d, %d + %d]" a est f f
        bound
  done;
  (* And the merged sketch is exactly the sequential one: same coins, same
     multiset, merge is cell-wise addition. *)
  let seq = Sketches.Countmin.create ~family:(Sketches.Countmin.family g) in
  Array.iter (Sketches.Countmin.update seq) stream;
  for a = 0 to universe - 1 do
    Alcotest.(check int)
      (Printf.sprintf "element %d matches sequential" a)
      (Sketches.Countmin.query seq a)
      (Sketches.Countmin.query g a)
  done

(* ------------------------- combining buffer ------------------------- *)

let test_combine_preserves_countmin () =
  (* CM is linear, so aggregating a batch's duplicate keys before updating
     must leave the merged global sketch exactly equal to the sequential
     sketch over the same multiset — and a skewed stream must actually
     exercise the buffer (coalesced > 0). *)
  let module Cm = Pipeline.Targets.Countmin (struct
    let seed = 31L
    let rows = 4
    let width = 128
  end) in
  let module P = Pipeline.Engine.Make (Cm) in
  let n = 20_000 in
  let universe = 200 in
  let stream =
    Workload.Stream.generate ~seed:12L (Workload.Stream.Zipf (universe, 1.4))
      ~length:n
  in
  let p = P.create ~queue_capacity:256 ~batch:100 ~combine:true ~shards:4 () in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  ignore
    (Conc.Runner.parallel ~domains:2 (fun i ->
         Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
  P.drain p;
  let stats = P.stats p in
  Alcotest.(check int) "published weight counts every item" n stats.published;
  let coalesced =
    Array.fold_left
      (fun a (s : P.shard_stats) -> a + s.coalesced)
      0 stats.shards
  in
  Alcotest.(check bool)
    (Printf.sprintf "skewed batches coalesced something (%d)" coalesced)
    true (coalesced > 0);
  let g, _ = P.query p (fun g -> g) in
  Alcotest.(check int) "sketch saw every update" n (Sketches.Countmin.updates g);
  let seq = Sketches.Countmin.create ~family:(Sketches.Countmin.family g) in
  Array.iter (Sketches.Countmin.update seq) stream;
  for a = 0 to universe - 1 do
    Alcotest.(check int)
      (Printf.sprintf "element %d matches sequential" a)
      (Sketches.Countmin.query seq a)
      (Sketches.Countmin.query g a)
  done

let test_combine_counter_weight_exact () =
  (* The Counter target folds multiplicity straight into the batched
     counter: total published weight must still be exact. *)
  let module P = Pipeline.Engine.Make (Pipeline.Targets.Counter) in
  let n = 10_000 in
  let stream =
    Workload.Stream.generate ~seed:13L (Workload.Stream.Uniform 8) ~length:n
  in
  let p = P.create ~queue_capacity:128 ~batch:64 ~combine:true ~shards:2 () in
  Array.iter (fun x -> ignore (P.ingest p x)) stream;
  P.drain p;
  let g, _ = P.query p (fun g -> g) in
  Alcotest.(check int) "counter exact" n (Sketches.Batched_counter.read g);
  Alcotest.(check int) "published exact" n (P.read_total p)

(* ------------------------- chaos ------------------------- *)

let test_chaos_kill_drain () =
  (* Kill a shard worker mid-run: drain must still complete (no hangs, all
     domains joined), conservation must hold on what was actually merged
     (published = Σ flushed), the envelope must still pass, and the dead
     shard must shed subsequent ingests as drops. *)
  let n = 30_000 in
  let stream =
    Workload.Stream.generate ~seed:13L (Workload.Stream.Uniform 5000) ~length:n
  in
  let shards = 3 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan
         ~kills:(Conc.Chaos.random_kills ~seed:17L ~domains:shards ~victims:1 ~max_point:20)
         ~seed:17L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue_capacity:64 ~batch:50
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  let killed = Conc.Chaos.killed ch in
  Alcotest.(check int) "exactly one kill" 1 (List.length killed);
  Alcotest.(check (list int)) "dead shards = killed domains" killed (PC.dead p);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  Alcotest.(check int) "published = flushed" st.PC.published
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  Alcotest.(check int) "published = read_total" st.PC.published (PC.read_total p);
  Alcotest.(check int) "accepted = enqueued" accepted
    (sum (fun (s : PC.shard_stats) -> s.enqueued));
  Alcotest.(check bool) "some loss on the dead shard" true
    (st.PC.published < n);
  (* Survivors lose nothing. *)
  Array.iteri
    (fun i (s : PC.shard_stats) ->
      if s.alive then
        Alcotest.(check int)
          (Printf.sprintf "surviving shard %d intact" i)
          s.enqueued s.flushed_items)
    st.PC.shards;
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)));
  Alcotest.(check bool) "ingest after drain sheds" false (PC.ingest p 1)

let test_chaos_kill_all_shards () =
  (* Even with every worker dead, feeders must not hang: pushes fail fast,
     and drain still joins everything. *)
  let shards = 2 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan ~kills:[ (0, 1); (1, 1) ] ~seed:23L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue_capacity:16 ~batch:8
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let stream =
    Workload.Stream.generate ~seed:29L (Workload.Stream.Uniform 100) ~length:5_000
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check (list int)) "both dead" [ 0; 1 ] (PC.dead p);
  Alcotest.(check bool) "little accepted" true (accepted <= 5_000);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  Alcotest.(check int) "published consistent" (PC.read_total p)
    (let st = PC.stats p in
     Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards)

(* ------------------------- mpsc close/reopen races ------------------------- *)

(* Poll [f] until it returns true or [timeout] seconds elapse. The tests
   below must fail with a diagnosis, not hang CI, when a wakeup is lost. *)
let wait_until ?(timeout = 5.0) f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

let test_mpsc_close_wakes_all_producers () =
  (* Regression: [close] must broadcast, not signal — every producer blocked
     in [push] on a full queue has to wake and return [false]. A lost wakeup
     here is a producer parked forever on a dead shard. *)
  let producers = 4 in
  let q = Pipeline.Mpsc.create ~capacity:1 in
  ignore (Pipeline.Mpsc.push q 0);
  let returned = Array.init producers (fun _ -> Atomic.make None) in
  let doms =
    Array.init producers (fun i ->
        Domain.spawn (fun () ->
            let ok = Pipeline.Mpsc.push q (i + 1) in
            Atomic.set returned.(i) (Some ok)))
  in
  (* Give everyone time to park on the full queue, then close. *)
  let blocked () =
    Array.for_all (fun r -> Atomic.get r = None) returned
    && Pipeline.Mpsc.length q = 1
  in
  ignore (wait_until ~timeout:0.5 (fun () -> blocked ()));
  Pipeline.Mpsc.close q;
  Alcotest.(check bool) "every blocked producer woke" true
    (wait_until (fun () ->
         Array.for_all (fun r -> Atomic.get r <> None) returned));
  Array.iter Domain.join doms;
  Array.iteri
    (fun i r ->
      Alcotest.(check (option bool))
        (Printf.sprintf "producer %d rejected" i)
        (Some false) (Atomic.get r))
    returned;
  (* The element that was queued before the close is still there. *)
  Alcotest.(check (option int)) "backlog intact" (Some 0) (Pipeline.Mpsc.pop q)

let test_mpsc_pop_batch_bound_under_close_race () =
  (* [pop_batch ~max] must never return more than [max] elements, including
     in the window where producers are racing a close. *)
  let q = Pipeline.Mpsc.create ~capacity:64 in
  let max_batch = 5 in
  let stop = Atomic.make false in
  let producers =
    Array.init 3 (fun d ->
        Domain.spawn (fun () ->
            let n = ref 0 in
            while not (Atomic.get stop) do
              if Pipeline.Mpsc.push q ((d * 100_000) + !n) then incr n
            done;
            !n))
  in
  let closer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        Pipeline.Mpsc.close q;
        Atomic.set stop true)
  in
  let popped = ref 0 in
  let rec consume () =
    match Pipeline.Mpsc.pop_batch q ~max:max_batch with
    | [] -> ()
    | items ->
        if List.length items > max_batch then
          Alcotest.failf "pop_batch returned %d > max %d" (List.length items)
            max_batch;
        popped := !popped + List.length items;
        consume ()
  in
  consume ();
  Domain.join closer;
  let pushed = Array.fold_left (fun a d -> a + Domain.join d) 0 producers in
  (* Every successful push was popped exactly once (close loses nothing that
     was accepted; the final drain above ran to the end mark). *)
  Alcotest.(check int) "popped = pushed" pushed !popped

let test_mpsc_reopen_preserves_backlog () =
  let q = Pipeline.Mpsc.create ~capacity:8 in
  List.iter (fun x -> ignore (Pipeline.Mpsc.push q x)) [ 1; 2; 3 ];
  Pipeline.Mpsc.close q;
  Alcotest.(check bool) "push rejected while closed" false (Pipeline.Mpsc.push q 9);
  Pipeline.Mpsc.reopen q;
  Alcotest.(check bool) "reopened" false (Pipeline.Mpsc.is_closed q);
  Alcotest.(check bool) "push accepted again" true (Pipeline.Mpsc.push q 4);
  Alcotest.(check (list int)) "backlog first, in order" [ 1; 2; 3; 4 ]
    (Pipeline.Mpsc.pop_batch q ~max:8)

(* ------------------------- concurrent drain ------------------------- *)

let test_concurrent_drain_exactly_once () =
  (* Two domains race [drain] on a pipeline whose workers were all chaos
     killed (so there IS leftover work in the queues to account for). Both
     calls must return, and the drop accounting must happen exactly once:
     Σ enqueued = Σ consumed + leftover-drops, where leftover-drops is what
     drain swept out of the dead workers' queues. A double drain would
     count the sweep twice. *)
  let shards = 2 in
  let n = 8_000 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan ~kills:[ (0, 1); (1, 1) ] ~seed:31L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue_capacity:32 ~batch:16
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let stream =
    Workload.Stream.generate ~seed:37L (Workload.Stream.Uniform 700) ~length:n
  in
  let accepted = feed p stream ~feeders:2 in
  let drainers =
    Conc.Runner.parallel ~domains:2 (fun _ ->
        PC.drain p;
        true)
  in
  Alcotest.(check bool) "both drain calls returned" true
    (Array.for_all Fun.id drainers);
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  let enqueued = sum (fun (s : PC.shard_stats) -> s.enqueued) in
  let consumed = sum (fun (s : PC.shard_stats) -> s.consumed) in
  let dropped = sum (fun (s : PC.shard_stats) -> s.dropped) in
  Alcotest.(check int) "accepted = enqueued" accepted enqueued;
  (* Ingest-time drops are the pushes that failed (n - accepted); the rest
     of [dropped] is drain's sweep of dead workers' queues — exactly once. *)
  Alcotest.(check int) "exactly-once drop accounting" enqueued
    (consumed + (dropped - (n - accepted)));
  Alcotest.(check int) "published = flushed" st.PC.published
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  (* A third drain changes nothing. *)
  PC.drain p;
  let st2 = PC.stats p in
  Alcotest.(check int) "drop accounting stable" dropped
    (Array.fold_left (fun a (s : PC.shard_stats) -> a + s.dropped) 0 st2.PC.shards)

(* ------------------------- supervisor ------------------------- *)

(* A fast supervisor config so restart soaks finish in milliseconds. *)
let fast_supervisor max_restarts =
  {
    Pipeline.Engine.max_restarts;
    backoff_base = 0.001;
    backoff_cap = 0.004;
    poll_interval = 0.0002;
    seed = 77L;
  }

let test_supervisor_restarts_shard () =
  (* Kill shard 0's worker once; the watchdog must restart it, the restarted
     incarnation must resume consuming its (reopened) queue, and the final
     history must still satisfy the envelope. *)
  let shards = 2 in
  let die_at = 5 in
  let ticks = Atomic.make 0 in
  let pipeline =
    PC.create ~queue_capacity:256 ~batch:32
      ~on_tick:(fun ~shard ->
        (* The counter spans incarnations, so exactly the [die_at]-th tick
           kills — the restarted worker sees larger values and lives. *)
        if shard = 0 && Atomic.fetch_and_add ticks 1 = die_at then
          raise (Conc.Chaos.Killed { domain = 0; point = die_at }))
      ~supervisor:(fast_supervisor 5) ~shards ()
  in
  let n = 30_000 in
  let stream =
    Workload.Stream.generate ~seed:41L (Workload.Stream.Uniform 4000) ~length:n
  in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  (* First half: drive until the kill + restart have happened. *)
  Array.iter (fun x -> ignore (PC.ingest pipeline x)) chunks.(0);
  Alcotest.(check bool) "watchdog restarted the shard" true
    (wait_until (fun () ->
         let s = (PC.stats pipeline).PC.shards.(0) in
         s.restarts = 1 && s.alive));
  let enq_before = (PC.stats pipeline).PC.shards.(0).enqueued in
  (* Second half: the restarted shard must accept and consume new work. *)
  Array.iter (fun x -> ignore (PC.ingest pipeline x)) chunks.(1);
  PC.drain pipeline;
  let st = PC.stats pipeline in
  let s0 = st.PC.shards.(0) in
  Alcotest.(check bool) "post-restart ingestion grew" true
    (s0.enqueued > enq_before);
  Alcotest.(check int) "restarted exactly once" 1 s0.restarts;
  Alcotest.(check bool) "not shed" false s0.shed;
  Alcotest.(check bool) "death reason recorded" true (s0.last_error <> None);
  (* The lost delta is bounded by one batch: consumed - flushed < 2*batch. *)
  Alcotest.(check bool) "bounded loss" true
    (s0.consumed - s0.flushed_items < 64);
  Alcotest.(check int) "published = flushed" st.PC.published
    (Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures pipeline = []);
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history pipeline)))

let test_supervisor_restart_cap_sheds () =
  (* A worker that dies on every incarnation must not crash-loop forever:
     after [max_restarts] the watchdog sheds the shard permanently and
     records why. *)
  let max_restarts = 2 in
  let p =
    PC.create ~queue_capacity:16 ~batch:8
      ~on_tick:(fun ~shard ->
        if shard = 0 then raise (Conc.Chaos.Killed { domain = 0; point = 1 }))
      ~supervisor:(fast_supervisor max_restarts) ~shards:2 ()
  in
  Alcotest.(check bool) "shard 0 eventually shed" true
    (wait_until (fun () -> (PC.stats p).PC.shards.(0).shed));
  (* Shed shard drops, surviving shard still ingests. *)
  let stream =
    Workload.Stream.generate ~seed:43L (Workload.Stream.Uniform 900) ~length:4_000
  in
  let accepted = feed p stream ~feeders:1 in
  PC.drain p;
  let st = PC.stats p in
  let s0 = st.PC.shards.(0) in
  Alcotest.(check int) "used the whole restart budget" max_restarts s0.restarts;
  Alcotest.(check bool) "still marked dead" false s0.alive;
  (match s0.last_error with
  | Some msg ->
      Alcotest.(check bool) "shed reason recorded" true
        (String.length msg >= 4 && String.sub msg 0 4 = "shed")
  | None -> Alcotest.fail "expected a shed reason");
  Alcotest.(check bool) "survivor made progress" true
    (st.PC.shards.(1).flushed_items > 0);
  Alcotest.(check bool) "shed shard dropped traffic" true (accepted < 4_000);
  Alcotest.(check int) "published = flushed" st.PC.published
    (Array.fold_left (fun a (s : PC.shard_stats) -> a + s.flushed_items) 0
       st.PC.shards);
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = [])

(* ------------------- queue contract (both implementations) ------------------- *)

(* Every test below runs against the mutex queue AND the lock-free ring
   through the {!Pipeline.Squeue} seam: the implementations must stay
   behaviourally interchangeable or the engine's `queue knob silently
   changes pipeline semantics. *)

module Sq = Pipeline.Squeue

let test_q_fifo impl () =
  let q = Sq.create ~impl ~capacity:4 in
  List.iter (fun x -> Alcotest.(check bool) "push" true (Sq.push q x)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Sq.length q);
  Alcotest.(check (list int)) "batch pops FIFO" [ 1; 2 ] (Sq.pop_batch q ~max:2);
  Alcotest.(check (option int)) "pop" (Some 3) (Sq.pop q);
  Alcotest.(check bool) "try_push ok" true (Sq.try_push q 9 = `Ok)

let test_q_exact_capacity impl () =
  (* The ring rounds its slot array up to a power of two, but the logical
     capacity must be enforced exactly — backpressure semantics are part of
     the contract, not an implementation detail. *)
  let cap = 5 in
  let q = Sq.create ~impl ~capacity:cap in
  for x = 1 to cap do
    Alcotest.(check bool) (Printf.sprintf "push %d fits" x) true
      (Sq.try_push q x = `Ok)
  done;
  Alcotest.(check bool) "push past capacity is Full" true
    (Sq.try_push q 99 = `Full);
  Alcotest.(check int) "length = capacity" cap (Sq.length q);
  (* One pop frees exactly one slot. *)
  Alcotest.(check (option int)) "fifo head" (Some 1) (Sq.pop q);
  Alcotest.(check bool) "slot freed" true (Sq.try_push q 6 = `Ok);
  Alcotest.(check bool) "full again" true (Sq.try_push q 7 = `Full)

let test_q_close_semantics impl () =
  let q = Sq.create ~impl ~capacity:2 in
  ignore (Sq.push q 1);
  ignore (Sq.push q 2);
  Alcotest.(check bool) "try_push full" true (Sq.try_push q 3 = `Full);
  Sq.close q;
  Alcotest.(check bool) "closed" true (Sq.is_closed q);
  Alcotest.(check bool) "push after close" false (Sq.push q 4);
  Alcotest.(check bool) "try_push closed" true (Sq.try_push q 4 = `Closed);
  Alcotest.(check (option int)) "drain 1" (Some 1) (Sq.pop q);
  Alcotest.(check (list int)) "drain 2" [ 2 ] (Sq.pop_batch q ~max:8);
  Alcotest.(check (option int)) "end" None (Sq.pop q);
  Alcotest.(check (list int)) "end batch" [] (Sq.pop_batch q ~max:8)

let test_q_reopen_backlog impl () =
  let q = Sq.create ~impl ~capacity:8 in
  List.iter (fun x -> ignore (Sq.push q x)) [ 1; 2; 3 ];
  Sq.close q;
  Alcotest.(check bool) "push rejected while closed" false (Sq.push q 9);
  Sq.reopen q;
  Alcotest.(check bool) "reopened" false (Sq.is_closed q);
  Alcotest.(check bool) "push accepted again" true (Sq.push q 4);
  Alcotest.(check (list int)) "backlog first, in order" [ 1; 2; 3; 4 ]
    (Sq.pop_batch q ~max:8)

let test_q_pop_into_conventions impl () =
  let q = Sq.create ~impl ~capacity:8 in
  let buf = Array.make 8 0 in
  Alcotest.(check int) "empty open = 0" 0 (Sq.try_pop_into q buf ~max:8);
  List.iter (fun x -> ignore (Sq.push q x)) [ 10; 20; 30 ];
  Alcotest.(check int) "bounded by max" 2 (Sq.try_pop_into q buf ~max:2);
  Alcotest.(check (list int)) "fifo into buf" [ 10; 20 ]
    [ buf.(0); buf.(1) ];
  Alcotest.(check int) "blocking pop_into returns count" 1
    (Sq.pop_into q buf ~max:8);
  Alcotest.(check int) "last element" 30 buf.(0);
  Sq.close q;
  Alcotest.(check int) "closed and drained = -1" (-1)
    (Sq.try_pop_into q buf ~max:8);
  Alcotest.(check int) "blocking sees end mark too" (-1)
    (Sq.pop_into q buf ~max:8)

let test_q_drain_remaining impl () =
  let q = Sq.create ~impl ~capacity:8 in
  List.iter (fun x -> ignore (Sq.push q x)) [ 1; 2; 3; 4; 5 ];
  Sq.close q;
  Alcotest.(check int) "drain counts leftovers" 5 (Sq.drain_remaining q);
  Alcotest.(check int) "empty after drain" 0 (Sq.length q)

let test_q_blocked_producer_wakeup impl () =
  (* A producer parked on a full queue must wake when the consumer frees a
     slot — for the ring this exercises the eventcount park/wake path. *)
  let q = Sq.create ~impl ~capacity:1 in
  ignore (Sq.push q 0);
  let d =
    Domain.spawn (fun () ->
        let ok = ref true in
        for x = 1 to 200 do
          ok := !ok && Sq.push q x
        done;
        !ok)
  in
  let seen = ref 0 in
  for _ = 0 to 200 do
    match Sq.pop q with Some _ -> incr seen | None -> ()
  done;
  Alcotest.(check bool) "all pushes accepted" true (Domain.join d);
  Alcotest.(check int) "all elements popped" 201 !seen

let test_q_close_wakes_all_producers impl () =
  let producers = 4 in
  let q = Sq.create ~impl ~capacity:1 in
  ignore (Sq.push q 0);
  let returned = Array.init producers (fun _ -> Atomic.make None) in
  let doms =
    Array.init producers (fun i ->
        Domain.spawn (fun () ->
            let ok = Sq.push q (i + 1) in
            Atomic.set returned.(i) (Some ok)))
  in
  ignore
    (wait_until ~timeout:0.5 (fun () ->
         Array.for_all (fun r -> Atomic.get r = None) returned));
  Sq.close q;
  Alcotest.(check bool) "every blocked producer woke" true
    (wait_until (fun () ->
         Array.for_all (fun r -> Atomic.get r <> None) returned));
  Array.iter Domain.join doms;
  Array.iteri
    (fun i r ->
      Alcotest.(check (option bool))
        (Printf.sprintf "producer %d rejected" i)
        (Some false) (Atomic.get r))
    returned;
  Alcotest.(check (option int)) "backlog intact" (Some 0) (Sq.pop q)

let test_q_mpsc_stress impl () =
  (* Multi-producer stress through a small queue: every accepted element is
     popped exactly once, and each producer's elements arrive in its push
     order (per-source FIFO — the property hash-routed ingest relies on). *)
  let producers = 3 in
  let per = 20_000 in
  let q = Sq.create ~impl ~capacity:64 in
  let doms =
    Array.init producers (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Sq.push q ((d * per) + i))
            done))
  in
  let closer =
    Domain.spawn (fun () ->
        Array.iter Domain.join doms;
        Sq.close q)
  in
  let last = Array.make producers (-1) in
  let count = ref 0 in
  let buf = Array.make 32 0 in
  let rec consume () =
    match Sq.pop_into q buf ~max:32 with
    | -1 -> ()
    | n ->
        for j = 0 to n - 1 do
          let x = buf.(j) in
          let d = x / per in
          if x mod per <= last.(d) then
            Alcotest.failf "producer %d reordered: %d after %d" d (x mod per)
              last.(d);
          last.(d) <- x mod per;
          incr count
        done;
        consume ()
  in
  consume ();
  Domain.join closer;
  Alcotest.(check int) "popped everything exactly once" (producers * per) !count

let contract_suite impl =
  let n = Sq.impl_to_string impl in
  [
    Alcotest.test_case (n ^ ": fifo") `Quick (test_q_fifo impl);
    Alcotest.test_case (n ^ ": exact capacity") `Quick (test_q_exact_capacity impl);
    Alcotest.test_case (n ^ ": close semantics") `Quick (test_q_close_semantics impl);
    Alcotest.test_case (n ^ ": reopen backlog") `Quick (test_q_reopen_backlog impl);
    Alcotest.test_case (n ^ ": pop_into conventions") `Quick
      (test_q_pop_into_conventions impl);
    Alcotest.test_case (n ^ ": drain_remaining") `Quick (test_q_drain_remaining impl);
    Alcotest.test_case (n ^ ": blocked producer wakeup") `Quick
      (test_q_blocked_producer_wakeup impl);
    Alcotest.test_case (n ^ ": close wakes all producers") `Quick
      (test_q_close_wakes_all_producers impl);
    Alcotest.test_case (n ^ ": mpsc stress exact + per-source fifo") `Slow
      (test_q_mpsc_stress impl);
  ]

(* ------------------------- stealing ------------------------- *)

let test_ring_concurrent_steal_exact () =
  (* Two consumers (owner + thief) pop the same ring concurrently while two
     producers push: every element must be claimed by exactly one consumer,
     and within each consumer's claim sequence any single producer's
     elements must appear in push order (head-CAS claims are monotone). *)
  let module R = Pipeline.Ring in
  let producers = 2 and per = 25_000 in
  let q = R.create ~capacity:128 in
  let prods =
    Array.init producers (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (R.push q ((d * per) + i))
            done))
  in
  let closer =
    Domain.spawn (fun () ->
        Array.iter Domain.join prods;
        R.close q)
  in
  let consume () =
    let buf = Array.make 17 0 in
    let mine = ref [] in
    let rec go () =
      match R.try_pop_into q buf ~max:17 with
      | -1 -> List.rev !mine
      | 0 ->
          Unix.sleepf 0.0;
          go ()
      | n ->
          for j = 0 to n - 1 do
            mine := buf.(j) :: !mine
          done;
          go ()
    in
    go ()
  in
  let thief = Domain.spawn consume in
  let owner = consume () in
  let stolen = Domain.join thief in
  Domain.join closer;
  let seen = Array.make (producers * per) 0 in
  let check_consumer items =
    let last = Array.make producers (-1) in
    List.iter
      (fun x ->
        seen.(x) <- seen.(x) + 1;
        let d = x / per in
        if x mod per <= last.(d) then
          Alcotest.failf "consumer saw producer %d out of order" d;
        last.(d) <- x mod per)
      items
  in
  check_consumer owner;
  check_consumer stolen;
  Array.iteri
    (fun x c ->
      if c <> 1 then Alcotest.failf "element %d popped %d times" x c)
    seen;
  Alcotest.(check int) "both consumers split the stream" (producers * per)
    (List.length owner + List.length stolen)

(* The engine's shard router (SplitMix64 finalizer) — replicated here so a
   test can aim every key at one shard and then watch the others steal. *)
let shard_of_key ~shards x =
  let h = x * 0x1E3779B97F4A7C15 in
  let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
  (h lxor (h lsr 27)) land max_int mod shards

let test_engine_steal_exact () =
  (* Worst-case skew: every item is the same key, so hash routing pins the
     whole stream to one shard. With the lock-free queue + stealing, the
     idle shards must rebalance (stolen > 0) and every delta must still be
     merged exactly once: published = n with zero drops. The hot shard's
     worker is slowed via on_tick so a backlog actually builds. *)
  let shards = 3 in
  let key = 42 in
  let hot = shard_of_key ~shards key in
  let n = 30_000 in
  let p =
    PC.create ~queue:`Lockfree ~queue_capacity:256 ~batch:64
      ~on_tick:(fun ~shard -> if shard = hot then Unix.sleepf 0.0003)
      ~shards ()
  in
  let accepted = ref 0 in
  for _ = 1 to n do
    if PC.ingest p key then incr accepted
  done;
  PC.drain p;
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  Alcotest.(check int) "all accepted" n !accepted;
  Alcotest.(check int) "everything routed to the hot shard" n
    st.PC.shards.(hot).enqueued;
  Alcotest.(check int) "published exactly once" n st.PC.published;
  Alcotest.(check int) "flushed = enqueued as a cross-shard sum" n
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  Alcotest.(check int) "no drops" 0 (sum (fun (s : PC.shard_stats) -> s.dropped));
  let stolen = sum (fun (s : PC.shard_stats) -> s.steals) in
  let batches = sum (fun (s : PC.shard_stats) -> s.stolen_batches) in
  Alcotest.(check bool)
    (Printf.sprintf "idle shards stole work (%d items / %d batches)" stolen
       batches)
    true
    (stolen > 0 && batches > 0);
  Alcotest.(check int) "hot shard never steals from itself" 0
    st.PC.shards.(hot).steals;
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)));
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = [])

let test_lockfree_conservation () =
  (* The clean-run conservation test, replayed over the lock-free queue:
     per-shard exactness is replaced by the cross-shard sum (stealing moves
     flushes between shards) but the global ledger must stay exact. *)
  let n = 10_000 in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Uniform 1000) ~length:n
  in
  let p = PC.create ~queue:`Lockfree ~queue_capacity:64 ~batch:37 ~shards:3 () in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check int) "all accepted" n accepted;
  Alcotest.(check int) "published = ingested" n (PC.read_total p);
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  Alcotest.(check int) "flushed sums to n" n
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  Alcotest.(check int) "enqueued sums to n" n
    (sum (fun (s : PC.shard_stats) -> s.enqueued));
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)));
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = [])

let test_lockfree_chaos_kill_drain () =
  (* Chaos kill under the lock-free queue: drain must complete, the global
     ledger must balance (published = Σ flushed, accepted = Σ enqueued +
     nothing lost beyond the dead shard's unflushed delta and queue), and
     the envelope must hold. Per-shard loss accounting is skipped: a thief
     may legitimately rescue part of the dead shard's backlog. *)
  let n = 30_000 in
  let stream =
    Workload.Stream.generate ~seed:13L (Workload.Stream.Uniform 5000) ~length:n
  in
  let shards = 3 in
  let ch =
    Conc.Chaos.instantiate
      (Conc.Chaos.plan
         ~kills:
           (Conc.Chaos.random_kills ~seed:17L ~domains:shards ~victims:1
              ~max_point:20)
         ~seed:17L ())
      ~domains:shards
  in
  let p =
    PC.create ~queue:`Lockfree ~queue_capacity:64 ~batch:50
      ~on_tick:(fun ~shard -> Conc.Chaos.point ch ~domain:shard)
      ~shards ()
  in
  let accepted = feed p stream ~feeders:2 in
  PC.drain p;
  Alcotest.(check int) "exactly one kill" 1 (List.length (Conc.Chaos.killed ch));
  Alcotest.(check bool) "no unexpected failures" true (PC.failures p = []);
  let st = PC.stats p in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 st.PC.shards in
  Alcotest.(check int) "published = flushed" st.PC.published
    (sum (fun (s : PC.shard_stats) -> s.flushed_items));
  Alcotest.(check int) "published = read_total" st.PC.published
    (PC.read_total p);
  Alcotest.(check int) "accepted = enqueued" accepted
    (sum (fun (s : PC.shard_stats) -> s.enqueued));
  Alcotest.(check bool) "ledger balances" true
    (sum (fun (s : PC.shard_stats) -> s.flushed_items)
     + sum (fun (s : PC.shard_stats) -> s.dropped)
     + (sum (fun (s : PC.shard_stats) -> s.consumed)
       - sum (fun (s : PC.shard_stats) -> s.flushed_items))
    <= accepted + (n - accepted));
  Alcotest.(check int) "no envelope violations" 0
    (List.length (Mono.violations (PC.history p)));
  Alcotest.(check bool) "ingest after drain sheds" false (PC.ingest p 1)

let () =
  Alcotest.run "pipeline"
    [
      ( "mpsc",
        [
          Alcotest.test_case "fifo" `Quick test_mpsc_fifo;
          Alcotest.test_case "full and close" `Quick test_mpsc_full_and_close;
          Alcotest.test_case "blocking producer" `Quick test_mpsc_blocking_producer;
          Alcotest.test_case "close wakes all blocked producers" `Quick
            test_mpsc_close_wakes_all_producers;
          Alcotest.test_case "pop_batch bound under close race" `Quick
            test_mpsc_pop_batch_bound_under_close_race;
          Alcotest.test_case "reopen preserves backlog" `Quick
            test_mpsc_reopen_preserves_backlog;
        ] );
      ( "engine",
        [
          Alcotest.test_case "conservation through drain" `Quick
            test_counter_conservation;
          Alcotest.test_case "history envelope" `Quick test_history_envelope;
          Alcotest.test_case "Theorem 6 CountMin envelope" `Quick
            test_countmin_theorem6;
          Alcotest.test_case "combining buffer preserves CountMin" `Quick
            test_combine_preserves_countmin;
          Alcotest.test_case "combining buffer exact counter weight" `Quick
            test_combine_counter_weight_exact;
          Alcotest.test_case "concurrent drain is exactly-once" `Quick
            test_concurrent_drain_exactly_once;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill one shard, drain completes" `Quick
            test_chaos_kill_drain;
          Alcotest.test_case "kill every shard, no hang" `Quick
            test_chaos_kill_all_shards;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "watchdog restarts a killed shard" `Quick
            test_supervisor_restarts_shard;
          Alcotest.test_case "restart cap degrades to shedding" `Quick
            test_supervisor_restart_cap_sheds;
        ] );
      ("queue-contract", contract_suite `Mutex @ contract_suite `Lockfree);
      ( "stealing",
        [
          Alcotest.test_case "ring concurrent steal is exact" `Slow
            test_ring_concurrent_steal_exact;
          Alcotest.test_case "engine steals under worst-case skew" `Quick
            test_engine_steal_exact;
          Alcotest.test_case "lock-free conservation through drain" `Quick
            test_lockfree_conservation;
          Alcotest.test_case "lock-free chaos kill drain" `Quick
            test_lockfree_chaos_kill_drain;
        ] );
    ]
