(* Tests for workload generation: Zipf sampling, stream shapes, chunking. *)

let test_zipf_probabilities_sum_to_one () =
  let z = Workload.Zipf.create ~n:100 ~s:1.2 in
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Workload.Zipf.probability z i
  done;
  Alcotest.(check (float 1e-9)) "probabilities normalized" 1.0 !total

let test_zipf_monotone_probabilities () =
  let z = Workload.Zipf.create ~n:50 ~s:1.0 in
  for i = 1 to 49 do
    Alcotest.(check bool) "rank i more likely than i+1" true
      (Workload.Zipf.probability z (i - 1) >= Workload.Zipf.probability z i)
  done

let test_zipf_empirical_frequencies () =
  let z = Workload.Zipf.create ~n:10 ~s:1.0 in
  let g = Rng.Splitmix.create 7L in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Workload.Zipf.sample z g in
    counts.(x) <- counts.(x) + 1
  done;
  for i = 0 to 9 do
    let expected = Workload.Zipf.probability z i *. float_of_int n in
    let got = float_of_int counts.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "element %d: %.0f vs expected %.0f" i got expected)
      true
      (abs_float (got -. expected) < (4.0 *. sqrt expected) +. 10.0)
  done

let test_zipf_s_zero_is_uniform () =
  let z = Workload.Zipf.create ~n:10 ~s:0.0 in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform probability" 0.1 (Workload.Zipf.probability z i)
  done

let test_zipf_rejects_bad_params () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Workload.Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "s<0" (Invalid_argument "Zipf.create: s must be non-negative")
    (fun () -> ignore (Workload.Zipf.create ~n:10 ~s:(-1.0)))

let test_stream_lengths_and_ranges () =
  List.iter
    (fun shape ->
      let s = Workload.Stream.generate ~seed:3L shape ~length:1000 in
      Alcotest.(check int) "length" 1000 (Array.length s);
      Array.iter
        (fun x -> Alcotest.(check bool) "element in universe" true (x >= 0 && x < 50))
        s)
    [
      Workload.Stream.Uniform 50;
      Workload.Stream.Zipf (50, 1.1);
      Workload.Stream.Bursty (50, 10);
      Workload.Stream.Ascending 50;
    ]

let test_stream_deterministic () =
  let a = Workload.Stream.generate ~seed:9L (Workload.Stream.Zipf (100, 1.0)) ~length:500 in
  let b = Workload.Stream.generate ~seed:9L (Workload.Stream.Zipf (100, 1.0)) ~length:500 in
  Alcotest.(check (array int)) "same seed, same stream" a b

let test_bursty_runs () =
  let s = Workload.Stream.generate ~seed:5L (Workload.Stream.Bursty (100, 8)) ~length:80 in
  (* Within each burst of 8, all elements equal. *)
  for burst = 0 to 9 do
    for i = 1 to 7 do
      Alcotest.(check int) "burst constant" s.((burst * 8)) s.((burst * 8) + i)
    done
  done

let test_ascending_cycles () =
  let s = Workload.Stream.generate ~seed:0L (Workload.Stream.Ascending 5) ~length:12 in
  Alcotest.(check (array int)) "cycle" [| 0; 1; 2; 3; 4; 0; 1; 2; 3; 4; 0; 1 |] s

let test_chunks_partition () =
  let a = Array.init 103 Fun.id in
  let cs = Workload.Stream.chunks a ~pieces:4 in
  Alcotest.(check int) "4 pieces" 4 (Array.length cs);
  let rejoined = Array.concat (Array.to_list cs) in
  Alcotest.(check (array int)) "concatenation restores" a rejoined;
  (* Sizes differ by at most one. *)
  let sizes = Array.map Array.length cs in
  Alcotest.(check bool) "balanced" true
    (Array.for_all (fun s -> abs (s - sizes.(0)) <= 1) sizes)

let test_chunks_more_pieces_than_elements () =
  let a = [| 1; 2 |] in
  let cs = Workload.Stream.chunks a ~pieces:5 in
  Alcotest.(check int) "5 pieces" 5 (Array.length cs);
  Alcotest.(check (array int)) "restores" a (Array.concat (Array.to_list cs))

let test_describe () =
  Alcotest.(check string) "zipf" "zipf(10, s=1.10)"
    (Workload.Stream.describe (Workload.Stream.Zipf (10, 1.1)))


let test_scenario_mix_ratio () =
  let ops =
    Workload.Scenario.mixed ~seed:9L ~shape:(Workload.Stream.Uniform 100)
      ~query_ratio:0.3 ~length:10_000
  in
  Alcotest.(check int) "length" 10_000 (Array.length ops);
  let q = Workload.Scenario.count_queries ops in
  Alcotest.(check bool)
    (Printf.sprintf "query count %d near 3000" q)
    true
    (q > 2700 && q < 3300)

let test_scenario_deterministic () =
  let mk () =
    Workload.Scenario.mixed ~seed:10L ~shape:(Workload.Stream.Zipf (50, 1.0))
      ~query_ratio:0.5 ~length:200
  in
  Alcotest.(check bool) "same seed, same scenario" true (mk () = mk ())

let test_scenario_split_partitions () =
  let ops =
    Workload.Scenario.mixed ~seed:11L ~shape:(Workload.Stream.Uniform 10)
      ~query_ratio:0.2 ~length:103
  in
  let parts = Workload.Scenario.split ops ~pieces:4 in
  Alcotest.(check int) "4 parts" 4 (Array.length parts);
  Alcotest.(check bool) "concatenation restores" true
    (Array.concat (Array.to_list parts) = ops)

let test_scenario_ratio_bounds () =
  Alcotest.check_raises "ratio out of range"
    (Invalid_argument "Scenario.mixed: query_ratio must lie in [0,1]") (fun () ->
      ignore
        (Workload.Scenario.mixed ~seed:1L ~shape:(Workload.Stream.Uniform 10)
           ~query_ratio:1.5 ~length:10))

(* ----- traces: phased specs, determinism, the frozen file format ----- *)

let small_spec = Workload.Trace.default_spec ~seed:42L ~ops:5_000 ~universe:512 ()

let with_trace_file f =
  let path = Filename.temp_file "ivl-trace" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_trace_deterministic_across_runs () =
  let a = Workload.Trace.materialize small_spec in
  let b = Workload.Trace.materialize small_spec in
  Alcotest.(check bool) "same spec, same ops" true (a = b)

let test_trace_deterministic_across_domains () =
  (* Materialization must not depend on which domain runs it: samplers draw
     only from phase-local generators, never shared or domain-local state. *)
  let here = Workload.Trace.materialize small_spec in
  let there =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () -> Workload.Trace.materialize small_spec))
    |> Array.map Domain.join
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "domain %d agrees" i) true (r = here))
    there

let test_trace_drift_sampler_deterministic () =
  let spec =
    {
      Workload.Trace.seed = 7L;
      phases =
        [
          {
            Workload.Trace.name = "drift";
            ops = 4_000;
            query_ratio = 0.1;
            rate = Workload.Trace.Unlimited;
            shape = Workload.Trace.Drift { universe = 256; s0 = 0.1; s1 = 1.8; steps = 5 };
          };
        ];
    }
  in
  let a = Workload.Trace.materialize spec in
  let b = Domain.join (Domain.spawn (fun () -> Workload.Trace.materialize spec)) in
  Alcotest.(check bool) "drift replays bit-for-bit" true (a = b);
  let other = Workload.Trace.materialize { spec with seed = 8L } in
  Alcotest.(check bool) "different seed differs" true (a <> other)

let test_trace_phase_seeds_decorrelated () =
  let s = 42L in
  for i = 0 to 4 do
    for j = i + 1 to 5 do
      Alcotest.(check bool) "phase seeds distinct" true
        (Workload.Trace.phase_seed s i <> Workload.Trace.phase_seed s j)
    done
  done

let test_trace_counts_and_ranges () =
  let ops = Workload.Trace.materialize small_spec in
  List.iteri
    (fun i (p : Workload.Trace.phase) ->
      Alcotest.(check int) (p.name ^ " count") p.ops (Array.length ops.(i));
      Array.iter
        (fun op ->
          let k = match op with Workload.Scenario.Update k | Workload.Scenario.Query k -> k in
          Alcotest.(check bool) "key in universe" true (k >= 0 && k < 512))
        ops.(i))
    small_spec.Workload.Trace.phases;
  Alcotest.(check int) "total" 5_000
    (Array.fold_left (fun a arr -> a + Array.length arr) 0 ops)

let test_trace_file_roundtrip () =
  with_trace_file @@ fun path ->
  let ops = Workload.Trace.materialize small_spec in
  (match Workload.Trace.write ~path small_spec ops with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" e);
  match Workload.Trace.read ~path with
  | Error e -> Alcotest.failf "read: %s" e
  | Ok (spec', ops') ->
      Alcotest.(check bool) "spec survives" true (spec' = small_spec);
      Alcotest.(check bool) "ops survive" true (ops' = ops)

let test_trace_torn_file_rejected () =
  with_trace_file @@ fun path ->
  let ops = Workload.Trace.materialize small_spec in
  (match Workload.Trace.write ~path small_spec ops with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" e);
  let b = read_file path in
  write_file path (Bytes.sub b 0 (Bytes.length b - 3));
  match Workload.Trace.read ~path with
  | Ok _ -> Alcotest.fail "torn trace accepted"
  | Error _ -> ()

let test_trace_bitflip_rejected () =
  with_trace_file @@ fun path ->
  let ops = Workload.Trace.materialize small_spec in
  (match Workload.Trace.write ~path small_spec ops with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" e);
  let b = read_file path in
  let off = Bytes.length b / 2 in
  Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0xFF);
  write_file path b;
  match Workload.Trace.read ~path with
  | Ok _ -> Alcotest.fail "bit-flipped trace accepted"
  | Error _ -> ()

let test_trace_validate_rejects_nonsense () =
  let phase shape =
    { Workload.Trace.name = "p"; ops = 10; query_ratio = 0.0;
      rate = Workload.Trace.Unlimited; shape }
  in
  let bad spec = match Workload.Trace.validate spec with
    | Error _ -> () | Ok () -> Alcotest.fail "bad spec accepted"
  in
  bad { Workload.Trace.seed = 1L; phases = [] };
  bad { Workload.Trace.seed = 1L; phases = [ phase (Workload.Trace.Uniform { universe = 0 }) ] };
  bad
    {
      Workload.Trace.seed = 1L;
      phases = [ { (phase (Workload.Trace.Uniform { universe = 4 })) with query_ratio = 1.5 } ];
    }

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"chunks always partition" ~count:200
         QCheck.(pair (array small_int) (int_range 1 10))
         (fun (a, pieces) ->
           let cs = Workload.Stream.chunks a ~pieces in
           Array.concat (Array.to_list cs) = a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"zipf samples in range" ~count:200
         QCheck.(pair int64 (int_range 1 100))
         (fun (seed, n) ->
           let z = Workload.Zipf.create ~n ~s:1.0 in
           let g = Rng.Splitmix.create seed in
           let x = Workload.Zipf.sample z g in
           x >= 0 && x < n));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"trace materialization is a pure function of the seed"
         ~count:30
         QCheck.(triple int64 (int_range 1 2_000) (int_range 1 256))
         (fun (seed, ops, universe) ->
           let spec = Workload.Trace.default_spec ~seed ~ops ~universe () in
           Workload.Trace.materialize spec = Workload.Trace.materialize spec));
  ]

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "probabilities sum" `Quick test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone_probabilities;
          Alcotest.test_case "empirical" `Quick test_zipf_empirical_frequencies;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_s_zero_is_uniform;
          Alcotest.test_case "bad params" `Quick test_zipf_rejects_bad_params;
        ] );
      ( "streams",
        [
          Alcotest.test_case "lengths and ranges" `Quick test_stream_lengths_and_ranges;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "bursty runs" `Quick test_bursty_runs;
          Alcotest.test_case "ascending cycles" `Quick test_ascending_cycles;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "mix ratio" `Quick test_scenario_mix_ratio;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "split partitions" `Quick test_scenario_split_partitions;
          Alcotest.test_case "ratio bounds" `Quick test_scenario_ratio_bounds;
        ] );
      ( "chunks",
        [
          Alcotest.test_case "partition" `Quick test_chunks_partition;
          Alcotest.test_case "more pieces than elements" `Quick
            test_chunks_more_pieces_than_elements;
        ] );
      ( "traces",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_trace_deterministic_across_runs;
          Alcotest.test_case "deterministic across domains" `Quick
            test_trace_deterministic_across_domains;
          Alcotest.test_case "drift sampler deterministic" `Quick
            test_trace_drift_sampler_deterministic;
          Alcotest.test_case "phase seeds decorrelated" `Quick
            test_trace_phase_seeds_decorrelated;
          Alcotest.test_case "counts and ranges" `Quick test_trace_counts_and_ranges;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "torn file rejected" `Quick test_trace_torn_file_rejected;
          Alcotest.test_case "bit flip rejected" `Quick test_trace_bitflip_rejected;
          Alcotest.test_case "validate rejects nonsense" `Quick
            test_trace_validate_rejects_nonsense;
        ] );
      ("properties", qcheck_tests);
    ]
