(* Wire codec tests: every codec round-trips losslessly (encode ∘ decode =
   identity on the sketch state), and every corrupted frame — truncated,
   bit-flipped, wrong magic, wrong kind, future version, random garbage —
   decodes to [Error], never an exception. *)

let seed = 99L

(* ------------------------- builders ------------------------- *)

let cm_family = Hashing.Family.seeded ~seed ~rows:3 ~width:32

let cm_of xs =
  let t = Sketches.Countmin.create ~family:cm_family in
  List.iter (Sketches.Countmin.update t) xs;
  t

let hll_of xs =
  let t = Sketches.Hyperloglog.create ~p:6 ~seed () in
  List.iter (Sketches.Hyperloglog.update t) xs;
  t

let kmv_of xs =
  let t = Sketches.Kmv.create ~k:16 ~seed () in
  List.iter (Sketches.Kmv.update t) xs;
  t

let quantiles_of xs =
  let t = Sketches.Quantiles.create ~k:32 ~seed () in
  List.iter (Sketches.Quantiles.update t) xs;
  t

let space_saving_of xs =
  let t = Sketches.Space_saving.create ~capacity:8 in
  List.iter (Sketches.Space_saving.update t) xs;
  t

let counter_of xs =
  let t = Sketches.Batched_counter.create () in
  List.iter (fun x -> Sketches.Batched_counter.update t (abs x)) xs;
  t

let sample = [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7; 9; 3; 2; 3; 8; 4 ]

(* ------------------------- equality ------------------------- *)

let cm_equal a b =
  Sketches.Countmin.updates a = Sketches.Countmin.updates b
  && Hashing.Family.compatible (Sketches.Countmin.family a)
       (Sketches.Countmin.family b)
  &&
  let rows = Sketches.Countmin.rows a and width = Sketches.Countmin.width a in
  rows = Sketches.Countmin.rows b
  && width = Sketches.Countmin.width b
  &&
  let ok = ref true in
  for r = 0 to rows - 1 do
    for c = 0 to width - 1 do
      if
        Sketches.Countmin.cell a ~row:r ~col:c
        <> Sketches.Countmin.cell b ~row:r ~col:c
      then ok := false
    done
  done;
  !ok

let hll_equal a b =
  Sketches.Hyperloglog.p a = Sketches.Hyperloglog.p b
  && Sketches.Hyperloglog.seed a = Sketches.Hyperloglog.seed b
  && Sketches.Hyperloglog.registers a = Sketches.Hyperloglog.registers b

let kmv_equal a b =
  Sketches.Kmv.k a = Sketches.Kmv.k b
  && Sketches.Kmv.seed a = Sketches.Kmv.seed b
  && Sketches.Kmv.hashes a = Sketches.Kmv.hashes b

let quantiles_equal a b =
  Sketches.Quantiles.k a = Sketches.Quantiles.k b
  && Sketches.Quantiles.seed a = Sketches.Quantiles.seed b
  && Sketches.Quantiles.total a = Sketches.Quantiles.total b
  && Sketches.Quantiles.levels a = Sketches.Quantiles.levels b

let space_saving_equal a b =
  Sketches.Space_saving.capacity a = Sketches.Space_saving.capacity b
  && Sketches.Space_saving.total a = Sketches.Space_saving.total b
  && Sketches.Space_saving.entries a = Sketches.Space_saving.entries b

let counter_equal a b =
  Sketches.Batched_counter.read a = Sketches.Batched_counter.read b

(* One row per codec: build from an int list, encode, decode, compare. The
   [decode_any] column drives the corruption sweeps below. *)
type codec = {
  label : string;
  kind : string; (* the wire kind name, as [Wire.Codec.kind_name] spells it *)
  blob_of : int list -> Bytes.t;
  roundtrips : int list -> bool;
  decode_any : Bytes.t -> (unit, Wire.Codec.error) result;
}

let check_rt eq dec blob v =
  match dec blob with Ok v' -> eq v v' | Error _ -> false

let codecs =
  [
    {
      label = "countmin";
      kind = "countmin";
      blob_of = (fun xs -> Wire.Countmin.encode (cm_of xs));
      roundtrips =
        (fun xs ->
          let v = cm_of xs in
          check_rt cm_equal Wire.Countmin.decode (Wire.Countmin.encode v) v);
      decode_any =
        (fun b -> Result.map (fun _ -> ()) (Wire.Countmin.decode b));
    };
    {
      label = "hll";
      kind = "hyperloglog";
      blob_of = (fun xs -> Wire.Hll.encode (hll_of xs));
      roundtrips =
        (fun xs ->
          let v = hll_of xs in
          check_rt hll_equal Wire.Hll.decode (Wire.Hll.encode v) v);
      decode_any = (fun b -> Result.map (fun _ -> ()) (Wire.Hll.decode b));
    };
    {
      label = "kmv";
      kind = "kmv";
      blob_of = (fun xs -> Wire.Kmv.encode (kmv_of xs));
      roundtrips =
        (fun xs ->
          let v = kmv_of xs in
          check_rt kmv_equal Wire.Kmv.decode (Wire.Kmv.encode v) v);
      decode_any = (fun b -> Result.map (fun _ -> ()) (Wire.Kmv.decode b));
    };
    {
      label = "quantiles";
      kind = "quantiles";
      blob_of = (fun xs -> Wire.Quantiles.encode (quantiles_of xs));
      roundtrips =
        (fun xs ->
          let v = quantiles_of xs in
          check_rt quantiles_equal Wire.Quantiles.decode
            (Wire.Quantiles.encode v) v);
      decode_any =
        (fun b -> Result.map (fun _ -> ()) (Wire.Quantiles.decode b));
    };
    {
      label = "space-saving";
      kind = "space-saving";
      blob_of = (fun xs -> Wire.Space_saving.encode (space_saving_of xs));
      roundtrips =
        (fun xs ->
          let v = space_saving_of xs in
          check_rt space_saving_equal Wire.Space_saving.decode
            (Wire.Space_saving.encode v) v);
      decode_any =
        (fun b -> Result.map (fun _ -> ()) (Wire.Space_saving.decode b));
    };
    {
      label = "counter";
      kind = "counter";
      blob_of = (fun xs -> Wire.Counter.encode (counter_of xs));
      roundtrips =
        (fun xs ->
          let v = counter_of xs in
          check_rt counter_equal Wire.Counter.decode (Wire.Counter.encode v) v);
      decode_any = (fun b -> Result.map (fun _ -> ()) (Wire.Counter.decode b));
    };
  ]

(* ------------------------- round trips ------------------------- *)

let test_roundtrip_sample () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (c.label ^ " round-trips") true (c.roundtrips sample))
    codecs

let test_roundtrip_empty () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (c.label ^ " empty round-trips") true (c.roundtrips []))
    codecs

let test_peek () =
  List.iter
    (fun c ->
      match Wire.Codec.peek (c.blob_of sample) with
      | Ok (kind, v) ->
          Alcotest.(check string) (c.label ^ " peek kind") c.kind kind;
          Alcotest.(check int) (c.label ^ " peek version") Wire.Codec.version v
      | Error e -> Alcotest.failf "peek %s: %s" c.label (Wire.Codec.error_to_string e))
    codecs

(* ------------------------- corruption ------------------------- *)

(* Never raises, and (for the sweeps below) never silently succeeds. *)
let expect_error ~what c blob =
  match c.decode_any blob with
  | Ok () -> Alcotest.failf "%s %s: decoded successfully" c.label what
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s %s: raised %s" c.label what (Printexc.to_string e)

let test_truncation () =
  List.iter
    (fun c ->
      let blob = c.blob_of sample in
      for len = 0 to Bytes.length blob - 1 do
        expect_error ~what:(Printf.sprintf "truncated to %d" len) c
          (Bytes.sub blob 0 len)
      done)
    codecs

let test_bit_flips () =
  (* Every single-bit corruption of a valid frame must be rejected: header
     flips hit the magic/version/kind/length validation, payload flips hit
     the checksum, checksum flips mismatch the payload. *)
  List.iter
    (fun c ->
      let blob = c.blob_of sample in
      for byte = 0 to Bytes.length blob - 1 do
        for bit = 0 to 7 do
          let b = Bytes.copy blob in
          Bytes.set b byte
            (Char.chr (Char.code (Bytes.get blob byte) lxor (1 lsl bit)));
          expect_error ~what:(Printf.sprintf "bit %d of byte %d flipped" bit byte)
            c b
        done
      done)
    codecs

let test_wrong_magic () =
  List.iter
    (fun c ->
      let blob = c.blob_of sample in
      Bytes.blit_string "XXXX" 0 blob 0 4;
      match c.decode_any blob with
      | Error Wire.Codec.Bad_magic -> ()
      | Error e ->
          Alcotest.failf "%s wrong magic: expected Bad_magic, got %s" c.label
            (Wire.Codec.error_to_string e)
      | Ok () -> Alcotest.failf "%s wrong magic decoded" c.label)
    codecs

let test_future_version () =
  List.iter
    (fun c ->
      let blob = c.blob_of sample in
      Bytes.set blob 4 (Char.chr 99);
      match c.decode_any blob with
      | Error (Wire.Codec.Unsupported_version 99) -> ()
      | Error e ->
          Alcotest.failf "%s version 99: expected Unsupported_version, got %s"
            c.label
            (Wire.Codec.error_to_string e)
      | Ok () -> Alcotest.failf "%s version 99 decoded" c.label)
    codecs

let test_wrong_kind () =
  (* A valid counter blob offered to every other codec: precise Wrong_kind. *)
  let counter_blob = Wire.Counter.encode (counter_of sample) in
  List.iter
    (fun c ->
      if c.label <> "counter" then
        match c.decode_any counter_blob with
        | Error (Wire.Codec.Wrong_kind { expected; got }) ->
            Alcotest.(check string) (c.label ^ " expected kind") c.kind expected;
            Alcotest.(check string) (c.label ^ " got kind") "counter" got
        | Error e ->
            Alcotest.failf "%s on counter blob: expected Wrong_kind, got %s"
              c.label
              (Wire.Codec.error_to_string e)
        | Ok () -> Alcotest.failf "%s decoded a counter blob" c.label)
    codecs

let test_trailing_garbage () =
  List.iter
    (fun c ->
      let blob = c.blob_of sample in
      let b = Bytes.extend blob 0 3 in
      expect_error ~what:"3 trailing bytes" c b)
    codecs

(* ------------------------- properties ------------------------- *)

let qcheck_tests =
  let elems = QCheck.(list_of_size (Gen.int_range 0 300) (int_bound 50)) in
  let never_raises c blob =
    match c.decode_any blob with Ok () | Error _ -> true
  in
  List.map QCheck_alcotest.to_alcotest
    (List.map
       (fun c ->
         QCheck.Test.make
           ~name:(c.label ^ " round-trips any stream")
           ~count:60 elems c.roundtrips)
       codecs
    @ [
        QCheck.Test.make ~name:"random bytes never raise" ~count:200
          QCheck.(string_of_size (Gen.int_range 0 64))
          (fun s ->
            let blob = Bytes.of_string s in
            List.for_all (fun c -> never_raises c blob) codecs);
        QCheck.Test.make ~name:"random prefix damage never raises" ~count:100
          QCheck.(pair elems (int_bound 1000))
          (fun (xs, cut) ->
            List.for_all
              (fun c ->
                let blob = c.blob_of xs in
                let len = min cut (Bytes.length blob) in
                never_raises c (Bytes.sub blob 0 len))
              codecs);
      ])

(* ------------------------- segment scanning ------------------------- *)

(* A segment buffer is a concatenation of frames; [Wire.Segment.scan] must
   return exactly the valid prefix, whatever the damage shape. *)

let frame_of_int i =
  Wire.Codec.encode ~kind:Wire.Codec.wal_record_kind (fun b ->
      Wire.Codec.int_ b i)

let concat_frames frames = Bytes.concat Bytes.empty frames

let test_segment_scan_clean () =
  let frames = List.init 5 frame_of_int in
  let s = Wire.Segment.scan (concat_frames frames) in
  Alcotest.(check int) "all frames" 5 (Wire.Segment.frame_count s);
  Alcotest.(check bool) "clean tail" true (s.Wire.Segment.tail = Wire.Segment.Clean);
  List.iteri
    (fun i f ->
      Alcotest.(check bytes) (Printf.sprintf "frame %d intact" i)
        (frame_of_int i) f)
    s.Wire.Segment.frames;
  let empty = Wire.Segment.scan Bytes.empty in
  Alcotest.(check int) "empty buffer, no frames" 0
    (Wire.Segment.frame_count empty);
  Alcotest.(check bool) "empty buffer clean" true
    (empty.Wire.Segment.tail = Wire.Segment.Clean)

let test_segment_scan_torn_tail_every_cut () =
  (* Truncate a 3-frame buffer at every byte offset: the scan must always
     yield the frames wholly before the cut and report the exact remainder
     as dropped. *)
  let frames = List.init 3 frame_of_int in
  let buf = concat_frames frames in
  let ends =
    (* cumulative end offsets of each frame *)
    List.rev
      (List.fold_left
         (fun acc f ->
           let prev = match acc with [] -> 0 | e :: _ -> e in
           (prev + Bytes.length f) :: acc)
         [] frames)
  in
  for cut = 0 to Bytes.length buf - 1 do
    let s = Wire.Segment.scan (Bytes.sub buf 0 cut) in
    let expect = List.length (List.filter (fun e -> e <= cut) ends) in
    if Wire.Segment.frame_count s <> expect then
      Alcotest.failf "cut %d: %d frames, want %d" cut
        (Wire.Segment.frame_count s) expect;
    match s.Wire.Segment.tail with
    | Wire.Segment.Clean ->
        if not (List.mem cut (0 :: ends)) then
          Alcotest.failf "cut %d: clean tail mid-frame" cut
    | Wire.Segment.Torn { valid_prefix; dropped_bytes; _ } ->
        Alcotest.(check int)
          (Printf.sprintf "cut %d: prefix + dropped = cut" cut)
          cut (valid_prefix + dropped_bytes)
  done

let test_segment_scan_corruption_stops () =
  let frames = List.init 4 frame_of_int in
  let buf = concat_frames frames in
  let f0 = Bytes.length (frame_of_int 0) in
  (* Flip a payload byte of frame 1: frames 2..3 are after the hole and must
     not be yielded even though they are themselves intact. *)
  let dam = Bytes.copy buf in
  let off = f0 + Wire.Codec.header_size in
  Bytes.set_uint8 dam off (Bytes.get_uint8 dam off lxor 0x01);
  let s = Wire.Segment.scan dam in
  Alcotest.(check int) "only the prefix" 1 (Wire.Segment.frame_count s);
  (match s.Wire.Segment.tail with
  | Wire.Segment.Torn { valid_prefix; reason; _ } ->
      Alcotest.(check int) "cut at frame 1" f0 valid_prefix;
      Alcotest.(check bool) "checksum named" true
        (String.length reason > 0)
  | Wire.Segment.Clean -> Alcotest.fail "expected a torn tail");
  (* Garbage between frames: same rule. *)
  let gar =
    Bytes.concat Bytes.empty [ frame_of_int 0; Bytes.of_string "JUNK"; frame_of_int 1 ]
  in
  let s = Wire.Segment.scan gar in
  Alcotest.(check int) "prefix before garbage" 1 (Wire.Segment.frame_count s)

let () =
  Alcotest.run "wire"
    [
      ( "round-trip",
        [
          Alcotest.test_case "pinned sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "empty sketches" `Quick test_roundtrip_empty;
          Alcotest.test_case "peek" `Quick test_peek;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "every truncation rejected" `Quick test_truncation;
          Alcotest.test_case "every bit flip rejected" `Quick test_bit_flips;
          Alcotest.test_case "wrong magic" `Quick test_wrong_magic;
          Alcotest.test_case "future version" `Quick test_future_version;
          Alcotest.test_case "wrong kind" `Quick test_wrong_kind;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_garbage;
        ] );
      ( "segment",
        [
          Alcotest.test_case "clean scan" `Quick test_segment_scan_clean;
          Alcotest.test_case "torn tail at every cut" `Quick
            test_segment_scan_torn_tail_every_cut;
          Alcotest.test_case "corruption ends the scan" `Quick
            test_segment_scan_corruption_stops;
        ] );
      ("properties", qcheck_tests);
    ]
