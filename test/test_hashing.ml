(* Tests for field arithmetic, universal hashing, families, tabulation. *)

let p = Hashing.Prime_field.p

let test_field_constants () =
  Alcotest.(check int) "p is 2^61-1" ((1 lsl 61) - 1) p

let test_reduce () =
  Alcotest.(check int) "reduce 0" 0 (Hashing.Prime_field.reduce 0);
  Alcotest.(check int) "reduce p" 0 (Hashing.Prime_field.reduce p);
  Alcotest.(check int) "reduce p+1" 1 (Hashing.Prime_field.reduce (p + 1));
  Alcotest.(check int) "reduce p-1" (p - 1) (Hashing.Prime_field.reduce (p - 1))

let test_add () =
  Alcotest.(check int) "add wraps" 0 (Hashing.Prime_field.add (p - 1) 1);
  Alcotest.(check int) "add small" 7 (Hashing.Prime_field.add 3 4)

(* Reference multiplication through Zarith-free 128-bit-ish splitting using
   Int64 pairs is overkill; instead check against slow modular exponentiation
   identities and small cases. *)
let test_mul_small () =
  Alcotest.(check int) "3*4" 12 (Hashing.Prime_field.mul 3 4);
  Alcotest.(check int) "0*x" 0 (Hashing.Prime_field.mul 0 123456);
  Alcotest.(check int) "1*x" 123456 (Hashing.Prime_field.mul 1 123456)

let test_mul_wraps () =
  (* (p-1)² mod p = 1 since p-1 ≡ -1. *)
  Alcotest.(check int) "(-1)²=1" 1 (Hashing.Prime_field.mul (p - 1) (p - 1));
  (* (p-1)·2 mod p = p-2. *)
  Alcotest.(check int) "(-1)·2=-2" (p - 2) (Hashing.Prime_field.mul (p - 1) 2)

let test_mul_fermat () =
  (* Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for a ≠ 0. Exponentiate by
     squaring with our [mul]; any error in [mul] is extremely unlikely to
     still satisfy the identity for several bases. *)
  let pow_mod a e =
    let rec go acc a e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then Hashing.Prime_field.mul acc a else acc in
        go acc (Hashing.Prime_field.mul a a) (e lsr 1)
    in
    go 1 a e
  in
  List.iter
    (fun a -> Alcotest.(check int) (Printf.sprintf "fermat a=%d" a) 1 (pow_mod a (p - 1)))
    [ 2; 3; 12345; 987654321; p - 2 ]

let test_mul_distributes () =
  let g = Rng.Splitmix.create 5L in
  for _ = 1 to 200 do
    let a = Hashing.Prime_field.random_element g in
    let b = Hashing.Prime_field.random_element g in
    let c = Hashing.Prime_field.random_element g in
    let left = Hashing.Prime_field.mul a (Hashing.Prime_field.add b c) in
    let right =
      Hashing.Prime_field.add (Hashing.Prime_field.mul a b) (Hashing.Prime_field.mul a c)
    in
    Alcotest.(check int) "a(b+c) = ab+ac" left right
  done

let test_random_element_range () =
  let g = Rng.Splitmix.create 9L in
  for _ = 1 to 1000 do
    let v = Hashing.Prime_field.random_element g in
    Alcotest.(check bool) "in field" true (v >= 0 && v < p)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "nonzero" true (Hashing.Prime_field.random_nonzero g <> 0)
  done

let test_universal_range () =
  let g = Rng.Splitmix.create 17L in
  let h = Hashing.Universal.create g ~width:37 in
  for x = 0 to 1000 do
    let v = Hashing.Universal.apply h x in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 37)
  done

let test_universal_deterministic () =
  let h = Hashing.Universal.of_coefficients ~a:12345 ~b:678 ~width:100 in
  let v1 = Hashing.Universal.apply h 4242 in
  let v2 = Hashing.Universal.apply h 4242 in
  Alcotest.(check int) "same input, same output" v1 v2

let test_universal_formula () =
  (* Small coefficients: check ((a·x + b) mod p) mod w directly. *)
  let h = Hashing.Universal.of_coefficients ~a:3 ~b:5 ~width:7 in
  Alcotest.(check int) "h(10) = (35 mod p) mod 7" ((3 * 10 + 5) mod 7)
    (Hashing.Universal.apply h 10)

let test_universal_rejects_bad_width () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Universal.of_coefficients: width must be positive") (fun () ->
      ignore (Hashing.Universal.of_coefficients ~a:1 ~b:0 ~width:0))

let test_universal_collision_rate () =
  (* Pairwise independence is a statement over the random draw of the hash
     function: for any fixed pair x ≠ y, Pr_h[h(x) = h(y)] ≈ 1/w. Draw 2000
     independent functions with w = 64 and count collisions on a fixed pair;
     expect ≈ 31, accept a broad band. *)
  let g = Rng.Splitmix.create 23L in
  let collisions = ref 0 in
  for _ = 1 to 2000 do
    let h = Hashing.Universal.create g ~width:64 in
    if Hashing.Universal.apply h 1_000_003 = Hashing.Universal.apply h 9_000_041 then
      incr collisions
  done;
  Alcotest.(check bool)
    (Printf.sprintf "collisions=%d in [10,70]" !collisions)
    true
    (!collisions >= 10 && !collisions <= 70)

let test_family_basics () =
  let f = Hashing.Family.seeded ~seed:7L ~rows:4 ~width:32 in
  Alcotest.(check int) "rows" 4 (Hashing.Family.rows f);
  Alcotest.(check int) "width" 32 (Hashing.Family.width f);
  for row = 0 to 3 do
    for x = 0 to 100 do
      let v = Hashing.Family.hash f ~row x in
      Alcotest.(check bool) "in range" true (v >= 0 && v < 32)
    done
  done

let test_family_rows_independent () =
  let f = Hashing.Family.seeded ~seed:7L ~rows:4 ~width:1024 in
  (* Different rows should disagree on most inputs. *)
  let agree = ref 0 in
  for x = 0 to 499 do
    if Hashing.Family.hash f ~row:0 x = Hashing.Family.hash f ~row:1 x then incr agree
  done;
  Alcotest.(check bool) "rows decorrelated" true (!agree < 20)

let test_family_of_mapping () =
  let f =
    Hashing.Family.of_mapping ~width:2 [| (fun x -> x mod 2); (fun _ -> 0) |]
  in
  Alcotest.(check int) "row0 odd" 1 (Hashing.Family.hash f ~row:0 3);
  Alcotest.(check int) "row0 even" 0 (Hashing.Family.hash f ~row:0 4);
  Alcotest.(check int) "row1 const" 0 (Hashing.Family.hash f ~row:1 999)

let test_family_seeded_reproducible () =
  let f1 = Hashing.Family.seeded ~seed:100L ~rows:3 ~width:50 in
  let f2 = Hashing.Family.seeded ~seed:100L ~rows:3 ~width:50 in
  for row = 0 to 2 do
    for x = 0 to 200 do
      Alcotest.(check int) "same coins, same hash"
        (Hashing.Family.hash f1 ~row x)
        (Hashing.Family.hash f2 ~row x)
    done
  done

(* --- Kirsch–Mitzenmacher double hashing --- *)

let test_km_probe_hash_consistency () =
  (* The one-pass contract: probe_col over a packed probe must agree with
     hash, for pow2 widths (mask fast path), non-pow2 widths (division
     path), and the width-1 degenerate case. *)
  List.iter
    (fun (rows, width) ->
      let f = Hashing.Family.seeded_km ~seed:11L ~rows ~width in
      Alcotest.(check bool) "flagged as double-hashed" true
        (Hashing.Family.double_hashed f);
      for x = 0 to 500 do
        let p = Hashing.Family.probe f x in
        for row = 0 to rows - 1 do
          let via_probe = Hashing.Family.probe_col f p ~row in
          let direct = Hashing.Family.hash f ~row x in
          Alcotest.(check int)
            (Printf.sprintf "rows=%d width=%d x=%d row=%d" rows width x row)
            direct via_probe;
          Alcotest.(check bool) "in range" true (direct >= 0 && direct < width)
        done
      done)
    [ (4, 1024); (3, 1000); (2, 1); (5, 7); (1, 2) ]

let test_km_seeded_equivalence () =
  (* Same seed, same derived rows — the property the bench ablation leans
     on to compare families apples-to-apples. *)
  let f1 = Hashing.Family.seeded_km ~seed:42L ~rows:4 ~width:512 in
  let f2 = Hashing.Family.seeded_km ~seed:42L ~rows:4 ~width:512 in
  for row = 0 to 3 do
    for x = 0 to 300 do
      Alcotest.(check int) "same coins, same hash"
        (Hashing.Family.hash f1 ~row x)
        (Hashing.Family.hash f2 ~row x)
    done
  done;
  Alcotest.(check bool) "compatible with its twin" true
    (Hashing.Family.compatible f1 f2);
  let f3 = Hashing.Family.seeded_km ~seed:43L ~rows:4 ~width:512 in
  let differs = ref false in
  for x = 0 to 300 do
    if Hashing.Family.hash f1 ~row:0 x <> Hashing.Family.hash f3 ~row:0 x then
      differs := true
  done;
  Alcotest.(check bool) "different coins differ" true !differs;
  let rows_family = Hashing.Family.seeded ~seed:42L ~rows:4 ~width:512 in
  Alcotest.(check bool) "never compatible with an independent-rows family"
    false
    (Hashing.Family.compatible f1 rows_family);
  Alcotest.(check bool) "KM coefficients are not serializable" true
    (Hashing.Family.coefficients f1 = None)

let test_km_adjacent_rows_disagree () =
  (* step(x) >= 1, so consecutive derived rows never collide on the same
     column (the stride is nonzero mod w). *)
  let f = Hashing.Family.seeded_km ~seed:5L ~rows:4 ~width:64 in
  for x = 0 to 999 do
    for row = 0 to 2 do
      if Hashing.Family.hash f ~row x = Hashing.Family.hash f ~row:(row + 1) x
      then
        Alcotest.failf "x=%d rows %d and %d collide on column %d" x row
          (row + 1)
          (Hashing.Family.hash f ~row x)
    done
  done

let test_km_validation () =
  Alcotest.check_raises "rows must be positive"
    (Invalid_argument "Family.seeded_km: rows must be positive") (fun () ->
      ignore (Hashing.Family.seeded_km ~seed:1L ~rows:0 ~width:8));
  Alcotest.check_raises "width must be positive"
    (Invalid_argument "Family.seeded_km: width must be positive") (fun () ->
      ignore (Hashing.Family.seeded_km ~seed:1L ~rows:2 ~width:0));
  Alcotest.check_raises "width must fit the packed probe"
    (Invalid_argument "Family.seeded_km: width must fit the packed probe (<= 2^30)")
    (fun () ->
      ignore (Hashing.Family.seeded_km ~seed:1L ~rows:2 ~width:(1 lsl 31)))

let test_rows_probe_hash_consistency () =
  (* The same one-pass contract holds for independent-rows families (where
     the probe is the identity), including explicit mappings that may
     return negative values. *)
  let seeded = Hashing.Family.seeded ~seed:9L ~rows:3 ~width:48 in
  let mapped =
    Hashing.Family.of_mapping ~width:5 [| (fun x -> -x); (fun x -> x * 3) |]
  in
  List.iter
    (fun f ->
      for x = 0 to 200 do
        let p = Hashing.Family.probe f x in
        for row = 0 to Hashing.Family.rows f - 1 do
          Alcotest.(check int) "probe_col agrees with hash"
            (Hashing.Family.hash f ~row x)
            (Hashing.Family.probe_col f p ~row)
        done
      done)
    [ seeded; mapped ]

let test_tabulation_range_and_determinism () =
  let g = Rng.Splitmix.create 55L in
  let t = Hashing.Tabulation.create g in
  for x = 0 to 500 do
    let v = Hashing.Tabulation.hash t x in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    Alcotest.(check int) "deterministic" v (Hashing.Tabulation.hash t x)
  done

let test_tabulation_mixes () =
  (* Nearby keys should differ in roughly half their output bits. *)
  let g = Rng.Splitmix.create 56L in
  let t = Hashing.Tabulation.create g in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  let total = ref 0 in
  for x = 0 to 99 do
    total :=
      !total + popcount (Hashing.Tabulation.hash t x lxor Hashing.Tabulation.hash t (x + 1))
  done;
  let avg = float_of_int !total /. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "avalanche avg=%.1f bits" avg)
    true
    (avg > 20.0 && avg < 44.0)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mul commutes" ~count:500
         QCheck.(pair (int_bound 1000000000) (int_bound 1000000000))
         (fun (a, b) -> Hashing.Prime_field.mul a b = Hashing.Prime_field.mul b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mul associates" ~count:200
         QCheck.(triple (int_bound 1000000000) (int_bound 1000000000) (int_bound 1000000000))
         (fun (a, b, c) ->
           Hashing.Prime_field.mul a (Hashing.Prime_field.mul b c)
           = Hashing.Prime_field.mul (Hashing.Prime_field.mul a b) c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"universal hash stays in range" ~count:500
         QCheck.(triple int64 (int_range 1 1000) (int_bound 1_000_000))
         (fun (seed, width, x) ->
           let g = Rng.Splitmix.create seed in
           let h = Hashing.Universal.create g ~width in
           let v = Hashing.Universal.apply h x in
           v >= 0 && v < width));
  ]

let () =
  Alcotest.run "hashing"
    [
      ( "prime_field",
        [
          Alcotest.test_case "constants" `Quick test_field_constants;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "mul small" `Quick test_mul_small;
          Alcotest.test_case "mul wraps" `Quick test_mul_wraps;
          Alcotest.test_case "mul fermat" `Quick test_mul_fermat;
          Alcotest.test_case "mul distributes" `Quick test_mul_distributes;
          Alcotest.test_case "random element range" `Quick test_random_element_range;
        ] );
      ( "universal",
        [
          Alcotest.test_case "range" `Quick test_universal_range;
          Alcotest.test_case "deterministic" `Quick test_universal_deterministic;
          Alcotest.test_case "formula" `Quick test_universal_formula;
          Alcotest.test_case "bad width" `Quick test_universal_rejects_bad_width;
          Alcotest.test_case "collision rate" `Quick test_universal_collision_rate;
        ] );
      ( "family",
        [
          Alcotest.test_case "basics" `Quick test_family_basics;
          Alcotest.test_case "rows independent" `Quick test_family_rows_independent;
          Alcotest.test_case "of_mapping" `Quick test_family_of_mapping;
          Alcotest.test_case "seeded reproducible" `Quick test_family_seeded_reproducible;
          Alcotest.test_case "probe/hash consistency (rows)" `Quick
            test_rows_probe_hash_consistency;
        ] );
      ( "double-hashing",
        [
          Alcotest.test_case "probe/hash consistency" `Quick
            test_km_probe_hash_consistency;
          Alcotest.test_case "seeded equivalence" `Quick test_km_seeded_equivalence;
          Alcotest.test_case "adjacent rows disagree" `Quick
            test_km_adjacent_rows_disagree;
          Alcotest.test_case "validation" `Quick test_km_validation;
        ] );
      ( "tabulation",
        [
          Alcotest.test_case "range and determinism" `Quick
            test_tabulation_range_and_determinism;
          Alcotest.test_case "avalanche" `Quick test_tabulation_mixes;
        ] );
      ("properties", qcheck_tests);
    ]
