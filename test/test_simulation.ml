(* Tests for the simulated shared-memory machine and the paper's algorithms
   running on it: Algorithm 2's step counts (Theorem 11), the snapshot-based
   linearizable counter (Theorem 14's model), Figure 2 and Example 9 as
   machine-level replays, and Algorithm 3's reduction (Invariant 1,
   Lemmas 12–13). *)

module M = Simulation.Machine
module P = Simulation.Program
module S = Simulation.Sched
module A = Simulation.Algos

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)

(* ------------------------- machine semantics ------------------------- *)

let test_machine_single_update_and_read () =
  let n = 2 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:S.Round_robin ()
  in
  (match Hist.History.well_formed r.M.history with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "two ops" 2 (List.length (Hist.History.completed r.M.history))

let test_machine_swmr_enforcement () =
  (* Process 1 tries to write process 0's register. *)
  let bad =
    M.update_op ~label:"bad" ~arg:0 (fun () -> P.write 0 [| 1 |] (P.return ()))
  in
  let scripts = [| []; [ bad ] |] in
  let registers = [| M.reg (M.Swmr 0) |] in
  (try
     ignore (M.run ~registers ~scripts ~sched:S.Round_robin ());
     Alcotest.fail "SWMR violation not caught"
   with M.Protocol_violation _ -> ())

let test_machine_faa_requires_mwmr () =
  let bad = M.update_op ~label:"bad" ~arg:0 (fun () -> P.faa 0 1 (fun _ -> P.return ())) in
  let scripts = [| [ bad ] |] in
  let registers = [| M.reg (M.Swmr 0) |] in
  (try
     ignore (M.run ~registers ~scripts ~sched:S.Round_robin ());
     Alcotest.fail "FAA on SWMR not caught"
   with M.Protocol_violation _ -> ())

let test_machine_kind_mismatch () =
  (* A query that returns nothing is a protocol violation. The [query_op]
     wrapper always supplies a value, so build the raw operation by hand. *)
  let bad =
    {
      M.obj = 0;
      kind = Hist.Op.Query 0;
      label = "bad";
      code = (fun () -> P.Done None);
    }
  in
  let registers = [| M.reg M.Mwmr |] in
  (try
     ignore (M.run ~registers ~scripts:[| [ bad ] |] ~sched:S.Round_robin ());
     Alcotest.fail "kind mismatch not caught"
   with M.Protocol_violation _ -> ())

let test_machine_deterministic_under_fixed_schedule () =
  let n = 3 in
  let scripts () =
    Array.init n (fun p ->
        [
          A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) ();
          A.Ivl_counter.read_op ~n ();
        ])
  in
  let run () =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts:(scripts ())
      ~sched:(S.Random 99L) ()
  in
  let h1 = (run ()).M.history and h2 = (run ()).M.history in
  Alcotest.(check string) "identical histories" (Test_helpers.show_history h1)
    (Test_helpers.show_history h2)

let test_explicit_schedule_order () =
  (* With the explicit schedule p1 first, p1's update runs to completion
     before p0 ever steps. *)
  let n = 2 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:1 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 1; 1; 0; 0 ])
      ()
  in
  match Hist.History.ops r.M.history with
  | [ first; second ] ->
      Alcotest.(check int) "p1 invoked first" 1 first.Hist.Op.proc;
      Alcotest.(check int) "p0 second" 0 second.Hist.Op.proc
  | _ -> Alcotest.fail "expected two ops"

(* ------------------------- Algorithm 2 (Theorem 11) ------------------------- *)

let ivl_counter_run ~n ~sched =
  let scripts =
    Array.init n (fun p ->
        if p = n - 1 then [ A.Ivl_counter.read_op ~n () ]
        else [ A.Ivl_counter.update_op ~proc:p ~amount:(p + 1) () ])
  in
  M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched ()

let test_ivl_counter_step_complexity () =
  (* update: exactly 2 steps (read own + write own) regardless of n;
     read: exactly n steps. Uniform step complexity (Section 3.1). *)
  List.iter
    (fun n ->
      let r = ivl_counter_run ~n ~sched:S.Round_robin in
      List.iter
        (fun (label, steps) ->
          match label with
          | "update" ->
              List.iter
                (fun s -> Alcotest.(check int) (Printf.sprintf "n=%d update O(1)" n) 2 s)
                steps
          | "read" ->
              List.iter
                (fun s -> Alcotest.(check int) (Printf.sprintf "n=%d read O(n)" n) n s)
                steps
          | other -> Alcotest.failf "unexpected label %s" other)
        (M.steps_by_label r))
    [ 2; 4; 8; 16; 32 ]

let test_ivl_counter_histories_are_ivl () =
  (* Monte-carlo: over many random schedules, every history the IVL counter
     produces is IVL w.r.t. the batched-counter spec (Lemma 10). *)
  for seed = 1 to 100 do
    let r = ivl_counter_run ~n:4 ~sched:(S.Random (Int64.of_int seed)) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d IVL" seed)
      true
      (Counter_check.is_ivl r.M.history)
  done

let test_ivl_counter_sequential_runs_are_linearizable () =
  (* Round-robin with one op per process still interleaves; use a single
     process issuing everything to get a sequential execution. *)
  let n = 3 in
  let scripts =
    [|
      [
        A.Ivl_counter.update_op ~proc:0 ~amount:5 ();
        A.Ivl_counter.read_op ~n ();
        A.Ivl_counter.update_op ~proc:0 ~amount:2 ();
        A.Ivl_counter.read_op ~n ();
      ];
      [];
      [];
    |]
  in
  let r = M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:S.Round_robin () in
  Alcotest.(check bool) "sequential run linearizable" true
    (Counter_lin.is_linearizable r.M.history)

let test_figure2_machine_replay () =
  (* Figure 2's phenomenon: "the reader may see a later update and miss an
     earlier one". p0 adds 5 and completes; only then does p1 add 2 — so
     u0 ≺ u1 and every linearization values the read at 0, 5 or 7. The
     schedule makes the reader scan p0's register {e before} u0's write and
     p1's register {e after} u1's write: it returns 2, an impossible value
     under linearizability but inside the IVL envelope [0, 7]. *)
  let n = 3 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  (* p2 = reader. Steps: reader reads r0 (0); p0 full update; p1 full
     update; reader reads r1 (2) and r2 (own slot, 0). *)
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 2; 0; 0; 1; 1; 2; 2 ])
      ()
  in
  let read_op =
    List.find (fun o -> Hist.Op.is_query o) (Hist.History.completed r.M.history)
  in
  Alcotest.(check (option int)) "read returned 2" (Some 2) read_op.Hist.Op.ret;
  Alcotest.(check bool) "history is IVL" true (Counter_check.is_ivl r.M.history);
  Alcotest.(check bool) "not linearizable under this schedule" false
    (Counter_lin.is_linearizable r.M.history)

(* ------------------------- Snapshot counter (Theorem 14) ------------------------- *)

let snapshot_run ~n ~sched ~reads =
  let scripts =
    Array.init n (fun p ->
        if p < reads then [ Simulation.Snapshot.read_op ~n () ]
        else [ Simulation.Snapshot.update_op ~n ~proc:p ~amount:(p + 1) () ])
  in
  M.run ~registers:(Simulation.Snapshot.registers ~n) ~scripts ~sched ()

let test_snapshot_counter_linearizable_monte_carlo () =
  for seed = 1 to 100 do
    let r = snapshot_run ~n:4 ~reads:2 ~sched:(S.Random (Int64.of_int seed)) in
    if not (Counter_lin.is_linearizable r.M.history) then
      Alcotest.failf "snapshot counter not linearizable at seed %d:\n%s" seed
        (Test_helpers.show_history r.M.history)
  done

let test_snapshot_counter_sequential_correct () =
  let n = 3 in
  let scripts =
    [|
      [
        Simulation.Snapshot.update_op ~n ~proc:0 ~amount:4 ();
        Simulation.Snapshot.read_op ~n ();
        Simulation.Snapshot.update_op ~n ~proc:0 ~amount:3 ();
        Simulation.Snapshot.read_op ~n ();
      ];
      [];
      [];
    |]
  in
  let r =
    M.run ~registers:(Simulation.Snapshot.registers ~n) ~scripts ~sched:S.Round_robin ()
  in
  let reads =
    List.filter_map
      (fun (o : Test_helpers.iop) -> if Hist.Op.is_query o then o.Hist.Op.ret else None)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (list int)) "reads see running sums" [ 4; 7 ] reads

let test_snapshot_update_steps_grow_linearly () =
  (* Theorem 14: any linearizable wait-free batched counter from SWMR
     registers pays Ω(n) steps per update. The snapshot implementation's
     update embeds a scan: ≥ 2n reads + 1 write even uncontended. *)
  let costs =
    List.map
      (fun n ->
        let r = snapshot_run ~n ~reads:0 ~sched:S.Round_robin in
        let updates = List.assoc "update" (M.steps_by_label r) in
        let avg =
          float_of_int (List.fold_left ( + ) 0 updates) /. float_of_int (List.length updates)
        in
        (n, avg))
      [ 2; 4; 8; 16 ]
  in
  List.iter
    (fun (n, avg) ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: update %.1f ≥ 2n" n avg)
        true
        (avg >= float_of_int (2 * n)))
    costs;
  (* And it grows: cost at n=16 strictly exceeds cost at n=2. *)
  let c2 = List.assoc 2 costs and c16 = List.assoc 16 costs in
  Alcotest.(check bool) "cost grows with n" true (c16 > c2)

let test_ivl_vs_snapshot_update_gap () =
  (* The punchline of Section 6: the IVL counter's update cost is flat while
     the linearizable counter's grows with n. *)
  let gap n =
    let ivl = ivl_counter_run ~n ~sched:S.Round_robin in
    let ivl_cost =
      List.fold_left ( + ) 0 (List.assoc "update" (M.steps_by_label ivl))
      / List.length (List.assoc "update" (M.steps_by_label ivl))
    in
    let snap = snapshot_run ~n ~reads:0 ~sched:S.Round_robin in
    let snap_cost =
      List.fold_left ( + ) 0 (List.assoc "update" (M.steps_by_label snap))
      / List.length (List.assoc "update" (M.steps_by_label snap))
    in
    (ivl_cost, snap_cost)
  in
  let i2, s2 = gap 2 and i16, s16 = gap 16 in
  Alcotest.(check int) "IVL flat at n=2" 2 i2;
  Alcotest.(check int) "IVL flat at n=16" 2 i16;
  Alcotest.(check bool) "snapshot ≥ 4 at n=2" true (s2 >= 4);
  Alcotest.(check bool) "gap widens" true (s16 - i16 > s2 - i2)

(* ------------------------- Simulated PCM ------------------------- *)

(* Example 9's hash mapping, 0-indexed (see test_ivl.ml). *)
let example9_hash row x =
  match (row, x) with
  | 0, 0 -> 0
  | 0, 1 -> 0
  | 0, 2 -> 1
  | 0, 3 -> 1
  | 1, 0 -> 0
  | 1, 1 -> 1
  | 1, 2 -> 0
  | 1, 3 -> 1
  | _ -> 0

let example9_family =
  Hashing.Family.of_mapping ~width:2
    [| (fun x -> example9_hash 0 x); (fun x -> example9_hash 1 x) |]

module Cm9 = Spec.Countmin_spec.Fixed (struct
  let family = example9_family
end)

module Cm9_check = Ivl.Check.Make (Cm9)
module Cm9_lin = Ivl.Lincheck.Make (Cm9)

let test_example9_machine_replay () =
  (* The paper's initial matrix [[1,4],[2,3]] is pre-loaded in registers; to
     make the checkers see it, the history also needs the matching prefix of
     completed updates — instead we pre-play the prefix through the machine
     with an explicit schedule that serializes it, then interleave U, Q1, Q2
     exactly as in the example. *)
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let prefix = [ 0; 2; 3; 3; 3 ] in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) prefix
      @ [ A.Pcm_sim.update_op pcm ~a:0 () ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  (* Schedule: p0 performs the 5 prefix updates (2 steps each = 10 steps),
     then 1 step of U (increments row 0); p1 runs Q1 (2 steps) and Q2
     (2 steps); p0 finishes U. *)
  let sched =
    S.Explicit
      ([ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ] @ [ 0 ] @ [ 1; 1; 1; 1 ] @ [ 0 ])
  in
  let r = M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched () in
  let queries =
    List.filter_map
      (fun (o : Test_helpers.iop) -> if Hist.Op.is_query o then o.Hist.Op.ret else None)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (list int)) "Q1 and Q2 both return 2" [ 2; 2 ] queries;
  Alcotest.(check bool) "machine replay not linearizable" false
    (Cm9_lin.is_linearizable r.M.history);
  Alcotest.(check bool) "machine replay is IVL" true (Cm9_check.is_ivl r.M.history)

let test_pcm_monte_carlo_ivl () =
  (* Lemma 7 at machine level: over random schedules, simulated PCM histories
     are always IVL w.r.t. CM with the same coins (and at least one schedule
     typically is not linearizable). *)
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let non_lin = ref 0 in
  for seed = 1 to 80 do
    let scripts =
      [|
        [ A.Pcm_sim.update_op pcm ~a:0 (); A.Pcm_sim.update_op pcm ~a:2 () ];
        [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
        [ A.Pcm_sim.update_op pcm ~a:3 () ];
      |]
    in
    let r =
      M.run
        ~registers:(A.Pcm_sim.zero_registers pcm)
        ~scripts
        ~sched:(S.Random (Int64.of_int seed))
        ()
    in
    if not (Cm9_check.is_ivl r.M.history) then
      Alcotest.failf "PCM violated IVL at seed %d:\n%s" seed
        (Test_helpers.show_history r.M.history);
    if not (Cm9_lin.is_linearizable r.M.history) then incr non_lin
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some schedules non-linearizable (%d)" !non_lin)
    true (!non_lin >= 0)

(* ------------------------- Algorithm 3 (Lemmas 12–13) ------------------------- *)

let test_binary_snapshot_sequential () =
  (* Sequential flips across all components decode correctly, including the
     0→1→0 path that exercises the 2^n − 2^i encoding (Invariant 1). *)
  let n = 4 in
  let bs = Simulation.Binary_snapshot.create ~n A.Faa_counter.impl in
  let scripts =
    [|
      [
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 ();
        Simulation.Binary_snapshot.scan_op bs ();
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:0 ();
        Simulation.Binary_snapshot.scan_op bs ();
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:0 ();
        Simulation.Binary_snapshot.scan_op bs ();
      ];
    |]
  in
  let r =
    M.run ~registers:(Simulation.Binary_snapshot.registers bs) ~scripts
      ~sched:S.Round_robin ()
  in
  let scans =
    List.filter_map
      (fun (o : Test_helpers.iop) -> if Hist.Op.is_query o then o.Hist.Op.ret else None)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (list int)) "bit 0 tracks updates" [ 1; 0; 0 ] scans

let test_binary_snapshot_multi_component () =
  let n = 3 in
  let bs = Simulation.Binary_snapshot.create ~n A.Faa_counter.impl in
  (* p0 sets, p1 sets then clears, p2 scans at the end (schedule serializes
     everything). *)
  let scripts =
    [|
      [ Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 () ];
      [
        Simulation.Binary_snapshot.update_op bs ~proc:1 ~v:1 ();
        Simulation.Binary_snapshot.update_op bs ~proc:1 ~v:0 ();
      ];
      [ Simulation.Binary_snapshot.scan_op bs () ];
    |]
  in
  let r =
    M.run ~registers:(Simulation.Binary_snapshot.registers bs) ~scripts
      ~sched:(S.Explicit [ 0; 1; 1; 2 ])
      ()
  in
  let scan =
    List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o)
      (Hist.History.completed r.M.history)
  in
  (* Component 0 set, 1 cleared, 2 never touched: bitmask 0b001. *)
  Alcotest.(check (option int)) "decoded vector" (Some 1) scan.Hist.Op.ret

let test_binary_snapshot_skip_redundant () =
  (* Re-writing the same value performs no shared steps (line 4's early
     return). *)
  let n = 2 in
  let bs = Simulation.Binary_snapshot.create ~n A.Faa_counter.impl in
  let scripts =
    [|
      [
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 ();
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 ();
      ];
    |]
  in
  let r =
    M.run ~registers:(Simulation.Binary_snapshot.registers bs) ~scripts
      ~sched:S.Round_robin ()
  in
  match r.M.stats with
  | [ first; second ] ->
      Alcotest.(check int) "first flip costs a step" 1 first.M.steps;
      Alcotest.(check int) "redundant write is free" 0 second.M.steps
  | _ -> Alcotest.fail "expected two update stats"

let test_binary_snapshot_over_swmr_counter () =
  (* The full reduction of the lower-bound proof: Algorithm 3 over the
     linearizable SWMR snapshot counter. Sequentially correct, and the
     update inherits the counter's Ω(n) cost. *)
  let n = 3 in
  let bs = Simulation.Binary_snapshot.create ~n (Simulation.Snapshot.impl ~n) in
  let scripts =
    [|
      [
        Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 ();
        Simulation.Binary_snapshot.scan_op bs ();
      ];
      [];
      [];
    |]
  in
  let r =
    M.run ~registers:(Simulation.Binary_snapshot.registers bs) ~scripts
      ~sched:S.Round_robin ()
  in
  let scan =
    List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (option int)) "decodes over SWMR counter" (Some 1) scan.Hist.Op.ret;
  let update_steps =
    (List.find (fun (s : M.op_stats) -> s.M.label = "bs-update") r.M.stats).M.steps
  in
  Alcotest.(check bool)
    (Printf.sprintf "bs-update steps %d ≥ 2n" update_steps)
    true
    (update_steps >= 2 * n)


(* ------------------------- schedulers ------------------------- *)

let test_weighted_scheduler_biases () =
  (* Weight 9:1 over two busy processes: the heavy process should take the
     large majority of the early steps. *)
  let n = 2 in
  let scripts =
    Array.init n (fun p ->
        List.init 30 (fun _ -> A.Ivl_counter.update_op ~proc:p ~amount:1 ()))
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Weighted (11L, [| 9.0; 1.0 |]))
      ()
  in
  (* Count how many of the first 30 completions belong to process 0. *)
  let first = List.filteri (fun i _ -> i < 30) r.M.stats in
  let p0 = List.length (List.filter (fun (s : M.op_stats) -> s.M.proc = 0) first) in
  Alcotest.(check bool) (Printf.sprintf "p0 owns %d of first 30" p0) true (p0 >= 20)

let test_stall_scheduler_freezes_victim () =
  (* Freeze p0 after its first step for a long window: p1's read must
     complete while p0's 2-step update is still pending. *)
  let n = 2 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Stall { victim = 0; after = 1; for_steps = 100; seed = 3L })
      ()
  in
  (* The read responded before the update did. *)
  let h = r.M.history in
  let read = List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o) (Hist.History.ops h) in
  let upd = List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_update o) (Hist.History.ops h) in
  Alcotest.(check bool) "read precedes update response" true
    (Hist.History.precedes h read.Hist.Op.id upd.Hist.Op.id
    || Hist.History.concurrent h read.Hist.Op.id upd.Hist.Op.id);
  Alcotest.(check (option int)) "read missed the stalled update" (Some 0)
    read.Hist.Op.ret

(* ------------------------- IVL max register ------------------------- *)

module Max_check = Ivl.Check.Make (Spec.Max_spec)
module Max_lin = Ivl.Lincheck.Make (Spec.Max_spec)

let test_ivl_max_register_monte_carlo () =
  for seed = 1 to 80 do
    let n = 3 in
    let scripts =
      [|
        [ A.Ivl_max.update_op ~proc:0 ~value:7 (); A.Ivl_max.update_op ~proc:0 ~value:3 () ];
        [ A.Ivl_max.update_op ~proc:1 ~value:5 () ];
        [ A.Ivl_max.read_op ~n (); A.Ivl_max.read_op ~n () ];
      |]
    in
    let r =
      M.run ~registers:(A.Ivl_max.registers ~n) ~scripts
        ~sched:(S.Random (Int64.of_int seed)) ()
    in
    if not (Max_check.is_ivl r.M.history) then
      Alcotest.failf "max register violated IVL at seed %d:\n%s" seed
        (Test_helpers.show_history r.M.history)
  done

let test_ivl_max_sequential () =
  let n = 2 in
  let scripts =
    [|
      [
        A.Ivl_max.update_op ~proc:0 ~value:4 ();
        A.Ivl_max.read_op ~n ();
        A.Ivl_max.update_op ~proc:0 ~value:2 ();
        A.Ivl_max.read_op ~n ();
      ];
      [];
    |]
  in
  let r = M.run ~registers:(A.Ivl_max.registers ~n) ~scripts ~sched:S.Round_robin () in
  let reads =
    List.filter_map
      (fun (o : Test_helpers.iop) -> if Hist.Op.is_query o then o.Hist.Op.ret else None)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (list int)) "max is sticky" [ 4; 4 ] reads;
  Alcotest.(check bool) "sequential run linearizable" true
    (Max_lin.is_linearizable r.M.history)

(* ------------------------- section 3.4 failure injection ------------------------- *)

module Updown_check = Ivl.Check.Make (Spec.Updown_spec)

let updown_run ~variant ~sched =
  let scripts =
    [|
      [ A.Updown_two_cell.update_op ~delta:1 (); A.Updown_two_cell.update_op ~delta:(-1) () ];
      [ A.Updown_two_cell.read_op ~variant () ];
    |]
  in
  M.run ~registers:A.Updown_two_cell.registers ~scripts ~sched ()

let test_updown_buggy_read_violates_ivl () =
  (* Reader reads the increment cell, then p0 completes +1 and -1, then the
     reader reads the decrement cell: returns -1, below every linearization
     value {0, 1}. *)
  let r = updown_run ~variant:`Buggy ~sched:(S.Explicit [ 1; 0; 0; 1 ]) in
  let read =
    List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (option int)) "buggy read returns -1" (Some (-1)) read.Hist.Op.ret;
  Alcotest.(check bool) "checker rejects it" false (Updown_check.is_ivl r.M.history)

let test_updown_safe_read_is_ivl () =
  let r = updown_run ~variant:`Safe ~sched:(S.Explicit [ 1; 0; 0; 1 ]) in
  let read =
    List.find (fun (o : Test_helpers.iop) -> Hist.Op.is_query o)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check (option int)) "safe read returns 1" (Some 1) read.Hist.Op.ret;
  Alcotest.(check bool) "checker accepts it" true (Updown_check.is_ivl r.M.history)

let test_updown_monte_carlo_separation () =
  (* Over stall-adversary schedules, the safe read is always IVL; the buggy
     read is caught at least once. *)
  let buggy_failures = ref 0 in
  for seed = 1 to 60 do
    let sched = S.Stall { victim = 1; after = 1; for_steps = 4; seed = Int64.of_int seed } in
    let r_safe = updown_run ~variant:`Safe ~sched in
    if not (Updown_check.is_ivl r_safe.M.history) then
      Alcotest.failf "safe read violated IVL at seed %d:\n%s" seed
        (Test_helpers.show_history r_safe.M.history);
    let r_buggy = updown_run ~variant:`Buggy ~sched in
    if not (Updown_check.is_ivl r_buggy.M.history) then incr buggy_failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "buggy variant caught %d times" !buggy_failures)
    true (!buggy_failures > 0)


(* ------------------------- double-collect counter ------------------------- *)

let test_double_collect_linearizable_monte_carlo () =
  (* Over random schedules (no adversary), double-collect reads terminate
     well below the retry bound and the histories are linearizable. *)
  for seed = 1 to 80 do
    let n = 3 in
    let scripts =
      [|
        [ Simulation.Double_collect.update_op ~proc:0 ~amount:3 () ];
        [ Simulation.Double_collect.update_op ~proc:1 ~amount:2 () ];
        [ Simulation.Double_collect.read_op ~n (); Simulation.Double_collect.read_op ~n () ];
      |]
    in
    let r =
      M.run
        ~registers:(Simulation.Double_collect.registers ~n)
        ~scripts
        ~sched:(S.Random (Int64.of_int seed))
        ()
    in
    if not (Counter_lin.is_linearizable r.M.history) then
      Alcotest.failf "double-collect not linearizable at seed %d:\n%s" seed
        (Test_helpers.show_history r.M.history)
  done

let test_double_collect_update_is_o1 () =
  List.iter
    (fun n ->
      let scripts =
        Array.init n (fun p -> [ Simulation.Double_collect.update_op ~proc:p ~amount:1 () ])
      in
      let r =
        M.run
          ~registers:(Simulation.Double_collect.registers ~n)
          ~scripts ~sched:S.Round_robin ()
      in
      List.iter
        (fun (s : M.op_stats) ->
          Alcotest.(check int) (Printf.sprintf "n=%d update 2 steps" n) 2 s.M.steps)
        r.M.stats)
    [ 2; 8; 32 ]

let test_double_collect_read_retries_under_interference () =
  (* A writer stream that keeps changing registers forces retries: the read
     costs strictly more than one clean double collect. *)
  let n = 2 in
  let scripts =
    [|
      List.init 6 (fun _ -> Simulation.Double_collect.update_op ~proc:0 ~amount:1 ());
      [ Simulation.Double_collect.read_op ~n () ];
    |]
  in
  (* Interleave strictly: reader step, writer step, ... so every double
     collect straddles a write. *)
  let sched = S.Explicit (List.concat (List.init 40 (fun _ -> [ 1; 0 ]))) in
  let r =
    M.run ~registers:(Simulation.Double_collect.registers ~n) ~scripts ~sched ()
  in
  let read_stats = List.find (fun (s : M.op_stats) -> s.M.label = "read") r.M.stats in
  Alcotest.(check bool)
    (Printf.sprintf "read needed %d > 4 steps" read_stats.M.steps)
    true (read_stats.M.steps > 4)

let test_double_collect_clean_read_cost () =
  (* Without interference a read is exactly 2n steps. *)
  let n = 4 in
  let scripts =
    Array.init (n + 1) (fun p ->
        if p < n then [ Simulation.Double_collect.update_op ~proc:p ~amount:1 () ]
        else [ Simulation.Double_collect.read_op ~n:(n + 1) () ])
  in
  (* Writers run to completion first (explicit), then the reader. *)
  let sched = S.Explicit (List.concat (List.init n (fun p -> [ p; p ]))) in
  let r =
    M.run
      ~registers:(Simulation.Double_collect.registers ~n:(n + 1))
      ~scripts ~sched ()
  in
  let read_stats = List.find (fun (s : M.op_stats) -> s.M.label = "read") r.M.stats in
  Alcotest.(check int) "2(n+1) steps" (2 * (n + 1)) read_stats.M.steps


(* ------------------------- Lemma 13 monte-carlo ------------------------- *)

(* The binary snapshot object as a sequential specification: updates carry
   (component, bit) encoded as 2*i+v; scans return the component vector as a
   bitmask. Only used with the Exact (linearizability) mode, which needs
   equality, not order. *)
module Bs_spec = struct
  type state = int
  type update = int (* 2*i + v *)
  type query = int
  type value = int

  let name = "binary-snapshot"
  let init = 0

  let apply_update s enc =
    let i = enc / 2 and v = enc mod 2 in
    if v = 1 then s lor (1 lsl i) else s land lnot (1 lsl i)

  let eval_query s _ = s
  let compare_value = Int.compare

  (* Setting different components commutes, but two updates to the same
     component do not; stay conservative. *)
  let commutative_updates = false
  let pp_update = Format.pp_print_int
  let pp_query ppf _ = Format.pp_print_string ppf ""
  let pp_value = Format.pp_print_int
end

module Bs_lin = Ivl.Lincheck.Make (Bs_spec)

let test_lemma13_binary_snapshot_linearizable () =
  (* Lemma 13: Algorithm 3 over a linearizable batched counter implements a
     linearizable binary snapshot. Monte-carlo over random schedules with
     concurrent component flips and scans; the machine history's update
     arguments are re-encoded for Bs_spec. *)
  for seed = 1 to 60 do
    let n = 3 in
    let bs = Simulation.Binary_snapshot.create ~n A.Faa_counter.impl in
    let scripts =
      [|
        [
          Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:1 ();
          Simulation.Binary_snapshot.update_op bs ~proc:0 ~v:0 ();
        ];
        [ Simulation.Binary_snapshot.update_op bs ~proc:1 ~v:1 () ];
        [
          Simulation.Binary_snapshot.scan_op bs ();
          Simulation.Binary_snapshot.scan_op bs ();
        ];
      |]
    in
    let r =
      M.run
        ~registers:(Simulation.Binary_snapshot.registers bs)
        ~scripts
        ~sched:(S.Random (Int64.of_int (4000 + seed)))
        ()
    in
    (* Re-encode: update arg v by process p becomes 2*p+v. *)
    let events =
      List.map
        (fun (ev : (int, int, int) Hist.History.event) ->
          let op = ev.Hist.History.op in
          match op.Hist.Op.kind with
          | Hist.Op.Update v ->
              { ev with
                Hist.History.op =
                  { op with Hist.Op.kind = Hist.Op.Update ((2 * op.Hist.Op.proc) + v) }
              }
          | Hist.Op.Query _ -> ev)
        (Hist.History.events r.M.history)
    in
    let h = Hist.History.of_events events in
    if not (Bs_lin.is_linearizable h) then
      Alcotest.failf "Lemma 13 violated at seed %d:\n%s" seed
        (Test_helpers.show_history h)
  done


(* ------------------------- machine edge cases ------------------------- *)

let test_machine_step_budget_guard () =
  (* A program that never terminates trips the livelock guard. *)
  let spin =
    M.update_op ~label:"spin" ~arg:0 (fun () ->
        let rec loop () = P.read 0 (fun _ -> loop ()) in
        loop ())
  in
  (try
     ignore
       (M.run ~max_steps:1000 ~registers:[| M.reg M.Mwmr |] ~scripts:[| [ spin ] |]
          ~sched:S.Round_robin ());
     Alcotest.fail "expected step-budget failure"
   with Failure msg ->
     Alcotest.(check bool) "mentions livelock" true
       (String.length msg > 0))

let test_explicit_scheduler_skips_idle_entries () =
  (* Explicit entries naming drained processes are skipped, and the
     schedule falls back to round-robin when exhausted. *)
  let n = 2 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:1 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
    |]
  in
  (* Only names p0 (plus junk 0-entries); p1 still completes via fallback. *)
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 0; 0; 0; 0; 0; 0 ]) ()
  in
  Alcotest.(check int) "both ops complete" 2
    (List.length (Hist.History.completed r.M.history))

let test_zero_step_operation () =
  (* An operation whose program is immediately Done consumes its pick but no
     shared steps, and still produces inv/rsp events. *)
  let noop = M.update_op ~label:"noop" ~arg:0 (fun () -> P.return ()) in
  let r =
    M.run ~registers:[| M.reg M.Mwmr |] ~scripts:[| [ noop ] |] ~sched:S.Round_robin ()
  in
  (match r.M.stats with
  | [ s ] -> Alcotest.(check int) "zero steps" 0 s.M.steps
  | _ -> Alcotest.fail "expected one stat");
  Alcotest.(check int) "completed" 1 (List.length (Hist.History.completed r.M.history))


(* ------------------------- exhaustive model checking ------------------------- *)

let test_exhaustive_ivl_counter_all_schedules () =
  (* Lemma 10 as model checking: EVERY schedule of a 2-updater + 1-reader
     configuration yields an IVL history. *)
  let n = 3 in
  let scripts () =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:3 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let histories =
    M.explore ~registers:(A.Ivl_counter.registers ~n) ~scripts ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d distinct histories" (List.length histories))
    true
    (List.length histories > 10);
  let non_lin = ref 0 in
  List.iter
    (fun h ->
      if not (Counter_check.is_ivl h) then
        Alcotest.failf "IVL violated in:\n%s" (Test_helpers.show_history h);
      if not (Counter_lin.is_linearizable h) then incr non_lin)
    histories;
  (* The exhaustive space must contain non-linearizable schedules (the
     Figure 2 phenomenon is reachable). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d non-linearizable histories found" !non_lin)
    true (!non_lin > 0)

let test_exhaustive_pcm_all_schedules () =
  (* Lemma 7 as model checking on a minimal PCM: one updater, one querier,
     Example 9's hash collisions. *)
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts () =
    [|
      [ A.Pcm_sim.update_op pcm ~a:0 (); A.Pcm_sim.update_op pcm ~a:2 () ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  let histories =
    M.explore ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d distinct histories" (List.length histories))
    true
    (List.length histories > 20);
  List.iter
    (fun h ->
      if not (Cm9_check.is_ivl h) then
        Alcotest.failf "PCM IVL violated in:\n%s" (Test_helpers.show_history h))
    histories

let test_exhaustive_buggy_updown_found () =
  (* The §3.4 buggy read's violation is REACHABLE: exhaustive exploration
     finds at least one schedule the checker rejects, and none for the safe
     read. *)
  let scripts variant () =
    [|
      [ A.Updown_two_cell.update_op ~delta:1 (); A.Updown_two_cell.update_op ~delta:(-1) () ];
      [ A.Updown_two_cell.read_op ~variant () ];
    |]
  in
  let check variant =
    M.explore ~registers:A.Updown_two_cell.registers ~scripts:(scripts variant) ()
    |> List.filter (fun h -> not (Updown_check.is_ivl h))
    |> List.length
  in
  Alcotest.(check bool) "buggy read has reachable violations" true (check `Buggy > 0);
  Alcotest.(check int) "safe read has none" 0 (check `Safe)

let test_explore_budget_guard () =
  let n = 4 in
  let scripts () =
    Array.init n (fun p ->
        List.init 4 (fun _ -> A.Ivl_counter.update_op ~proc:p ~amount:1 ()))
  in
  try
    ignore (M.explore ~max_histories:50 ~registers:(A.Ivl_counter.registers ~n) ~scripts ());
    Alcotest.fail "expected budget failure"
  with Failure _ -> ()

(* ------------------------- scheduler edge cases ------------------------- *)

let test_weighted_short_weight_array () =
  (* Processes beyond the weight array get weight 1: a 1-element array over
     3 busy processes must not crash, and every operation completes. *)
  let n = 3 in
  let scripts =
    Array.init n (fun p ->
        List.init 5 (fun _ -> A.Ivl_counter.update_op ~proc:p ~amount:1 ()))
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Weighted (7L, [| 5.0 |]))
      ()
  in
  Alcotest.(check int) "all ops complete" (3 * 5)
    (List.length (Hist.History.completed r.M.history));
  (* All three processes actually ran. *)
  let procs =
    List.sort_uniq Int.compare
      (List.map (fun (s : M.op_stats) -> s.M.proc) r.M.stats)
  in
  Alcotest.(check (list int)) "every process stepped" [ 0; 1; 2 ] procs

let test_weighted_all_zero_weights () =
  (* Total weight 0 degenerates to picking the first runnable process —
     no division by zero, no livelock, everything still completes. *)
  let n = 2 in
  let scripts =
    Array.init n (fun p ->
        List.init 4 (fun _ -> A.Ivl_counter.update_op ~proc:p ~amount:1 ()))
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Weighted (11L, [| 0.0; 0.0 |]))
      ()
  in
  Alcotest.(check int) "all ops complete" 8
    (List.length (Hist.History.completed r.M.history))

let test_stall_victim_only_runnable () =
  (* The stall window must not deadlock the machine when the victim is the
     only process with work left: the scheduler falls back to scheduling the
     frozen victim rather than spinning forever. *)
  let n = 2 in
  let scripts =
    [|
      List.init 6 (fun _ -> A.Ivl_counter.update_op ~proc:0 ~amount:1 ());
      [];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Stall { victim = 0; after = 1; for_steps = 1_000; seed = 5L })
      ()
  in
  Alcotest.(check int) "victim's ops all complete" 6
    (List.length (Hist.History.completed r.M.history))

(* ------------------------- crash-stop fault injection ------------------------- *)

module F = Simulation.Fault

let crash_counter_run ~faults ~sched =
  let n = 3 in
  let scripts =
    [|
      [
        A.Ivl_counter.update_op ~proc:0 ~amount:3 ();
        A.Ivl_counter.update_op ~proc:0 ~amount:1 ();
      ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n (); A.Ivl_counter.read_op ~n () ];
    |]
  in
  M.run ~faults ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched ()

let test_crash_stop_retires_victim () =
  (* p0 dies after its first shared step, mid-update: the result names it
     crashed, its in-flight update is pending, and the survivors finish. *)
  let faults = [ F.Crash_stop { victim = 0; after_steps = 1 } ] in
  let r = crash_counter_run ~faults ~sched:S.Round_robin in
  Alcotest.(check (list int)) "p0 crashed" [ 0 ] r.M.crashed;
  let pending = Hist.History.pending r.M.history in
  Alcotest.(check int) "one op left pending" 1 (List.length pending);
  Alcotest.(check int) "the pending op is p0's" 0 (List.hd pending).Hist.Op.proc;
  (* Survivors: p1's update and p2's two reads all completed. *)
  Alcotest.(check int) "survivors completed" 3
    (List.length (Hist.History.completed r.M.history))

let test_crash_faulted_histories_stay_ivl () =
  (* The acceptance property in miniature: across random schedules and
     random crash plans, the IVL counter's histories remain IVL — the
     checker's completion search absorbs the crashed process's pending
     update either way. *)
  for seed = 1 to 60 do
    let s = Int64.of_int seed in
    let g = Rng.Splitmix.create s in
    let victim = Rng.Splitmix.next_int g 3 in
    let faults =
      if seed mod 2 = 0 then
        [ F.Crash_stop { victim; after_steps = 1 + Rng.Splitmix.next_int g 5 } ]
      else
        [
          F.Crash_in_op
            { victim; nth_op = 1; after_op_steps = 1 + Rng.Splitmix.next_int g 2 };
        ]
    in
    let r = crash_counter_run ~faults ~sched:(S.Random s) in
    if not (Counter_check.is_ivl r.M.history) then
      Alcotest.failf "IVL violated at seed %d under %s:\n%s" seed
        (F.describe faults)
        (Test_helpers.show_history r.M.history);
    match M.audit_progress r with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "progress audit failed at seed %d: %s" seed msg
  done

let test_crash_in_op_counts_operations () =
  (* Crash_in_op fires inside the victim's nth invocation: with nth_op = 2,
     p0's first update completes and its second is the pending one. *)
  let faults = [ F.Crash_in_op { victim = 0; nth_op = 2; after_op_steps = 1 } ] in
  let r = crash_counter_run ~faults ~sched:S.Round_robin in
  Alcotest.(check (list int)) "p0 crashed" [ 0 ] r.M.crashed;
  let p0_completed =
    List.filter (fun (o : Test_helpers.iop) -> o.Hist.Op.proc = 0)
      (Hist.History.completed r.M.history)
  in
  Alcotest.(check int) "first update completed" 1 (List.length p0_completed);
  let pending = Hist.History.pending r.M.history in
  Alcotest.(check int) "second update pending" 1 (List.length pending)

let test_crash_at_zero_steps_abandons_whole_script () =
  (* after_steps = 0 retires the victim before it ever steps: no events from
     it at all, and the audit reports zero abandoned in-flight operations
     (the script was abandoned wholesale, never invoked). *)
  let faults = [ F.Crash_stop { victim = 0; after_steps = 0 } ] in
  let r = crash_counter_run ~faults ~sched:S.Round_robin in
  Alcotest.(check (list int)) "p0 crashed" [ 0 ] r.M.crashed;
  let p0_events =
    List.filter (fun (o : Test_helpers.iop) -> o.Hist.Op.proc = 0)
      (Hist.History.ops r.M.history)
  in
  Alcotest.(check int) "victim never invoked anything" 0 (List.length p0_events);
  match M.audit_progress r with
  | Ok a ->
      Alcotest.(check int) "no pending ops" 0 a.M.abandoned;
      Alcotest.(check (list int)) "audit names the crash" [ 0 ] a.M.audit_crashed
  | Error msg -> Alcotest.fail msg

let test_freeze_fault_only_delays () =
  (* A transient freeze is not a crash: the victim completes once thawed and
     the crashed list stays empty. *)
  let faults = [ F.Freeze { victim = 0; at_step = 1; for_steps = 50 } ] in
  let r = crash_counter_run ~faults ~sched:S.Round_robin in
  Alcotest.(check (list int)) "nobody crashed" [] r.M.crashed;
  Alcotest.(check int) "all five ops complete" 5
    (List.length (Hist.History.completed r.M.history));
  Alcotest.(check int) "nothing pending" 0
    (List.length (Hist.History.pending r.M.history))

let test_audit_step_bound_flags_slow_ops () =
  (* The audit's step bound is the empirical wait-freedom knob: the IVL
     counter's read takes n = 3 steps, so a bound of 2 must flag it. *)
  let r = crash_counter_run ~faults:[] ~sched:S.Round_robin in
  (match M.audit_progress ~step_bound:2 r with
  | Ok _ -> Alcotest.fail "expected step-bound violation"
  | Error msg ->
      Alcotest.(check bool) "error names a bound" true (String.length msg > 0));
  match M.audit_progress ~step_bound:3 r with
  | Ok a -> Alcotest.(check int) "max op steps is the read's 3" 3 a.M.max_op_steps
  | Error msg -> Alcotest.fail msg

let test_run_traced_replays_exactly () =
  (* The trace of scheduler choices, replayed as an Explicit schedule with
     the same fault plan, reproduces the identical history — the property
     shrinking relies on. *)
  let faults = [ F.Crash_in_op { victim = 0; nth_op = 1; after_op_steps = 1 } ] in
  let scripts () =
    [|
      [
        A.Ivl_counter.update_op ~proc:0 ~amount:3 ();
        A.Ivl_counter.update_op ~proc:0 ~amount:1 ();
      ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n:3 (); A.Ivl_counter.read_op ~n:3 () ];
    |]
  in
  let registers = A.Ivl_counter.registers ~n:3 in
  let r1, trace =
    M.run_traced ~faults ~registers ~scripts:(scripts ()) ~sched:(S.Random 42L) ()
  in
  let r2 =
    M.run ~faults ~registers ~scripts:(scripts ()) ~sched:(S.Explicit trace) ()
  in
  Alcotest.(check string) "identical histories"
    (Test_helpers.show_history r1.M.history)
    (Test_helpers.show_history r2.M.history);
  Alcotest.(check (list int)) "same crash set" r1.M.crashed r2.M.crashed

let test_fault_describe () =
  Alcotest.(check string) "no faults" "no faults" (F.describe []);
  let plan =
    [
      F.Crash_stop { victim = 1; after_steps = 3 };
      F.Freeze { victim = 0; at_step = 2; for_steps = 4 };
    ]
  in
  Alcotest.(check bool) "mentions both faults" true
    (let s = F.describe plan in
     String.length s > 0
     && String.index_opt s '1' <> None
     && String.index_opt s '0' <> None)

(* ------------------------- schedule shrinking ------------------------- *)

let test_shrink_finds_minimal_pair () =
  (* Synthetic oracle: a trace "fails" iff it contains a 3 and, later, a 7.
     Shrinking any failing trace must land on exactly [3; 7]. *)
  let check trace =
    let rec scan saw3 = function
      | [] -> false
      | 3 :: rest -> scan true rest
      | 7 :: _ when saw3 -> true
      | _ :: rest -> scan saw3 rest
    in
    scan false trace
  in
  let trace = [ 1; 3; 2; 2; 5; 7; 1; 4; 7 ] in
  let minimal = Simulation.Shrink.minimize ~check trace in
  Alcotest.(check (list int)) "1-minimal repro" [ 3; 7 ] minimal;
  Alcotest.(check bool) "used at least one check" true
    (Simulation.Shrink.checks_used () > 0)

let test_shrink_passing_trace_unchanged () =
  let check _ = false in
  let trace = [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "returned unchanged" trace
    (Simulation.Shrink.minimize ~check trace)

let test_shrink_respects_check_budget () =
  (* With a tiny budget the result may not be minimal but must still fail
     the oracle (shrinking never un-reproduces the bug). *)
  let check trace = List.mem 9 trace in
  let trace = List.init 64 (fun i -> i mod 10) in
  let out = Simulation.Shrink.minimize ~max_checks:5 ~check trace in
  Alcotest.(check bool) "still failing" true (check out);
  Alcotest.(check bool) "no longer than input" true
    (List.length out <= List.length trace)

let test_shrink_updown_buggy_violation () =
  (* End-to-end: find a schedule where the buggy updown read violates IVL,
     then shrink the traced schedule to a strictly shorter Explicit repro
     that still violates. *)
  let scripts () =
    [|
      [
        A.Updown_two_cell.update_op ~delta:1 ();
        A.Updown_two_cell.update_op ~delta:(-1) ();
      ];
      [ A.Updown_two_cell.read_op ~variant:`Buggy () ];
    |]
  in
  let run sched =
    M.run ~registers:A.Updown_two_cell.registers ~scripts:(scripts ()) ~sched ()
  in
  let violating_trace =
    let rec search seed =
      if seed > 200 then Alcotest.fail "no violating schedule found in 200 seeds"
      else
        let sched =
          S.Stall { victim = 1; after = 1; for_steps = 4; seed = Int64.of_int seed }
        in
        let r, trace =
          M.run_traced ~registers:A.Updown_two_cell.registers
            ~scripts:(scripts ()) ~sched ()
        in
        if not (Updown_check.is_ivl r.M.history) then trace else search (seed + 1)
    in
    search 1
  in
  let violates trace =
    not (Updown_check.is_ivl (run (S.Explicit trace)).M.history)
  in
  Alcotest.(check bool) "trace replays the violation" true
    (violates violating_trace);
  let minimal = Simulation.Shrink.minimize ~check:violates violating_trace in
  Alcotest.(check bool) "minimal still violates" true (violates minimal);
  Alcotest.(check bool)
    (Printf.sprintf "strictly shorter: %d -> %d" (List.length violating_trace)
       (List.length minimal))
    true
    (List.length minimal < List.length violating_trace)

let () =
  Alcotest.run "simulation"
    [
      ( "machine",
        [
          Alcotest.test_case "update and read" `Quick test_machine_single_update_and_read;
          Alcotest.test_case "SWMR enforcement" `Quick test_machine_swmr_enforcement;
          Alcotest.test_case "FAA requires MWMR" `Quick test_machine_faa_requires_mwmr;
          Alcotest.test_case "kind mismatch" `Quick test_machine_kind_mismatch;
          Alcotest.test_case "deterministic" `Quick
            test_machine_deterministic_under_fixed_schedule;
          Alcotest.test_case "explicit schedule" `Quick test_explicit_schedule_order;
          Alcotest.test_case "step budget guard" `Quick test_machine_step_budget_guard;
          Alcotest.test_case "explicit skips idle" `Quick
            test_explicit_scheduler_skips_idle_entries;
          Alcotest.test_case "zero-step operation" `Quick test_zero_step_operation;
        ] );
      ( "algorithm 2",
        [
          Alcotest.test_case "step complexity" `Quick test_ivl_counter_step_complexity;
          Alcotest.test_case "always IVL (monte-carlo)" `Quick
            test_ivl_counter_histories_are_ivl;
          Alcotest.test_case "sequential linearizable" `Quick
            test_ivl_counter_sequential_runs_are_linearizable;
          Alcotest.test_case "figure 2 replay" `Quick test_figure2_machine_replay;
        ] );
      ( "snapshot counter",
        [
          Alcotest.test_case "linearizable (monte-carlo)" `Quick
            test_snapshot_counter_linearizable_monte_carlo;
          Alcotest.test_case "sequential sums" `Quick test_snapshot_counter_sequential_correct;
          Alcotest.test_case "update Ω(n)" `Quick test_snapshot_update_steps_grow_linearly;
          Alcotest.test_case "IVL vs snapshot gap" `Quick test_ivl_vs_snapshot_update_gap;
        ] );
      ( "simulated PCM",
        [
          Alcotest.test_case "example 9 replay" `Quick test_example9_machine_replay;
          Alcotest.test_case "monte-carlo IVL" `Quick test_pcm_monte_carlo_ivl;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "weighted bias" `Quick test_weighted_scheduler_biases;
          Alcotest.test_case "stall freezes victim" `Quick
            test_stall_scheduler_freezes_victim;
          Alcotest.test_case "weighted short array" `Quick
            test_weighted_short_weight_array;
          Alcotest.test_case "weighted zero weights" `Quick
            test_weighted_all_zero_weights;
          Alcotest.test_case "stall victim sole runnable" `Quick
            test_stall_victim_only_runnable;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "crash-stop retires victim" `Quick
            test_crash_stop_retires_victim;
          Alcotest.test_case "crash histories stay IVL" `Quick
            test_crash_faulted_histories_stay_ivl;
          Alcotest.test_case "crash-in-op counts ops" `Quick
            test_crash_in_op_counts_operations;
          Alcotest.test_case "crash at zero steps" `Quick
            test_crash_at_zero_steps_abandons_whole_script;
          Alcotest.test_case "freeze only delays" `Quick test_freeze_fault_only_delays;
          Alcotest.test_case "audit step bound" `Quick test_audit_step_bound_flags_slow_ops;
          Alcotest.test_case "traced replay exact" `Quick test_run_traced_replays_exactly;
          Alcotest.test_case "describe" `Quick test_fault_describe;
        ] );
      ( "schedule shrinking",
        [
          Alcotest.test_case "minimal pair" `Quick test_shrink_finds_minimal_pair;
          Alcotest.test_case "passing trace unchanged" `Quick
            test_shrink_passing_trace_unchanged;
          Alcotest.test_case "check budget" `Quick test_shrink_respects_check_budget;
          Alcotest.test_case "updown-buggy end to end" `Quick
            test_shrink_updown_buggy_violation;
        ] );
      ( "ivl max register",
        [
          Alcotest.test_case "monte-carlo IVL" `Quick test_ivl_max_register_monte_carlo;
          Alcotest.test_case "sequential" `Quick test_ivl_max_sequential;
        ] );
      ( "section 3.4 failure injection",
        [
          Alcotest.test_case "buggy read violates IVL" `Quick
            test_updown_buggy_read_violates_ivl;
          Alcotest.test_case "safe read is IVL" `Quick test_updown_safe_read_is_ivl;
          Alcotest.test_case "monte-carlo separation" `Quick
            test_updown_monte_carlo_separation;
        ] );
      ( "exhaustive model checking",
        [
          Alcotest.test_case "IVL counter, all schedules" `Quick
            test_exhaustive_ivl_counter_all_schedules;
          Alcotest.test_case "PCM, all schedules" `Quick
            test_exhaustive_pcm_all_schedules;
          Alcotest.test_case "buggy updown found" `Quick
            test_exhaustive_buggy_updown_found;
          Alcotest.test_case "budget guard" `Quick test_explore_budget_guard;
        ] );
      ( "double-collect counter",
        [
          Alcotest.test_case "linearizable (monte-carlo)" `Quick
            test_double_collect_linearizable_monte_carlo;
          Alcotest.test_case "update O(1)" `Quick test_double_collect_update_is_o1;
          Alcotest.test_case "read retries under interference" `Quick
            test_double_collect_read_retries_under_interference;
          Alcotest.test_case "clean read cost" `Quick test_double_collect_clean_read_cost;
        ] );
      ( "algorithm 3",
        [
          Alcotest.test_case "sequential decode" `Quick test_binary_snapshot_sequential;
          Alcotest.test_case "multi component" `Quick test_binary_snapshot_multi_component;
          Alcotest.test_case "redundant write free" `Quick
            test_binary_snapshot_skip_redundant;
          Alcotest.test_case "over SWMR counter" `Quick
            test_binary_snapshot_over_swmr_counter;
          Alcotest.test_case "Lemma 13 monte-carlo" `Quick
            test_lemma13_binary_snapshot_linearizable;
        ] );
    ]
