(* Durability tests: WAL append/scan/rotation, the longest-valid-prefix
   crash rule (swept over EVERY byte offset of a final frame), atomic
   checkpoints with corrupt-newest fallback, and the end-to-end recovery
   envelope — a recovered pipeline's published weight must land in
   [checkpoint total, pre-crash published total] for randomized crash
   points, which is the IVL framing of crash recovery. *)

module M = Pipeline.Targets.Counter
module R = Durable.Recovery.Make (M)
module P = Pipeline.Engine.Make (M)

(* ------------------------- scratch dirs & file surgery ------------------- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivl-test-durable-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let truncate_file path n = write_file path (Bytes.sub (read_file path) 0 n)

let flip_byte path off =
  let b = read_file path in
  Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0xFF);
  write_file path b

let copy_dir src dst =
  Array.iter
    (fun f ->
      write_file (Filename.concat dst f) (read_file (Filename.concat src f)))
    (Sys.readdir src)

let sole_segment dir =
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
  in
  match segs with
  | [ s ] -> Filename.concat dir s
  | l -> Alcotest.failf "expected one segment, found %d" (List.length l)

(* A counter delta carrying [w] stream items, as the engine would ship it. *)
let delta_blob w =
  let d = M.create () in
  for _ = 1 to w do
    M.update d 1
  done;
  M.encode d

(* The exact frame Wal.append writes — rebuilt here so the torn-tail sweep
   knows the final frame's byte length without groping in the file. *)
let wal_frame ~epoch ~weight ~blob =
  Wire.Codec.encode ~kind:Wire.Codec.wal_record_kind (fun b ->
      Wire.Codec.int_ b epoch;
      Wire.Codec.int_ b weight;
      Wire.Codec.bytes_ b blob)

let weight_of_blob blob =
  match M.decode blob with
  | Ok c -> Sketches.Batched_counter.read c
  | Error e -> Alcotest.failf "blob decode: %s" (Wire.Codec.error_to_string e)

(* ------------------------- WAL ------------------------- *)

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  let w = Durable.Wal.create ~dir ~fsync:Durable.Wal.Always () in
  for e = 1 to 50 do
    Durable.Wal.append w ~epoch:e ~weight:e ~blob:(delta_blob e)
  done;
  Alcotest.(check int) "appended" 50 (Durable.Wal.appended w);
  Alcotest.(check int) "no rotation" 0 (Durable.Wal.rotations w);
  Durable.Wal.close w;
  (* close is idempotent; append after close is a caller bug *)
  Durable.Wal.close w;
  Alcotest.check_raises "append after close"
    (Invalid_argument "Wal.append: writer is closed") (fun () ->
      Durable.Wal.append w ~epoch:99 ~weight:0 ~blob:Bytes.empty);
  let r = Durable.Wal.read ~dir in
  Alcotest.(check int) "records" 50 (List.length r.Durable.Wal.records);
  Alcotest.(check int) "one segment" 1 r.Durable.Wal.segments;
  Alcotest.(check int) "nothing truncated" 0 r.Durable.Wal.bytes_truncated;
  Alcotest.(check bool) "clean" true (r.Durable.Wal.truncated_reason = None);
  List.iteri
    (fun i (rec_ : Durable.Wal.record) ->
      let e = i + 1 in
      Alcotest.(check int) (Printf.sprintf "epoch %d" e) e rec_.epoch;
      Alcotest.(check int) (Printf.sprintf "weight %d" e) e rec_.weight;
      Alcotest.(check int)
        (Printf.sprintf "blob %d decodes" e)
        e
        (weight_of_blob rec_.blob))
    r.Durable.Wal.records

let test_wal_epoch_monotonicity_enforced () =
  with_dir @@ fun dir ->
  let w = Durable.Wal.create ~dir () in
  Durable.Wal.append w ~epoch:5 ~weight:1 ~blob:(delta_blob 1);
  Alcotest.check_raises "stale epoch"
    (Invalid_argument "Wal.append: epoch 5 not greater than last 5") (fun () ->
      Durable.Wal.append w ~epoch:5 ~weight:1 ~blob:(delta_blob 1));
  Durable.Wal.close w

let test_wal_rotation () =
  with_dir @@ fun dir ->
  let w = Durable.Wal.create ~segment_bytes:256 ~dir () in
  for e = 1 to 40 do
    Durable.Wal.append w ~epoch:e ~weight:1 ~blob:(delta_blob 1)
  done;
  Durable.Wal.close w;
  Alcotest.(check bool) "rotated" true (Durable.Wal.rotations w > 0);
  let r = Durable.Wal.read ~dir in
  Alcotest.(check int) "segments on disk" (Durable.Wal.rotations w + 1)
    r.Durable.Wal.segments;
  Alcotest.(check int) "all records across segments" 40
    (List.length r.Durable.Wal.records);
  Alcotest.(check bool) "clean" true (r.Durable.Wal.truncated_reason = None)

let test_wal_reopen_starts_fresh_segment () =
  (* A recovering writer never appends into a possibly-torn file. *)
  with_dir @@ fun dir ->
  let w1 = Durable.Wal.create ~dir () in
  for e = 1 to 5 do
    Durable.Wal.append w1 ~epoch:e ~weight:1 ~blob:(delta_blob 1)
  done;
  Durable.Wal.close w1;
  let w2 = Durable.Wal.create ~dir () in
  Alcotest.(check bool) "new segment index" true
    (Durable.Wal.segment_index w2 > Durable.Wal.segment_index w1);
  for e = 6 to 9 do
    Durable.Wal.append w2 ~epoch:e ~weight:1 ~blob:(delta_blob 1)
  done;
  Durable.Wal.close w2;
  let r = Durable.Wal.read ~dir in
  Alcotest.(check int) "two segments" 2 r.Durable.Wal.segments;
  Alcotest.(check (list int)) "continuous epochs"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.map (fun (x : Durable.Wal.record) -> x.epoch) r.Durable.Wal.records)

let test_wal_missing_dir_is_empty () =
  let r = Durable.Wal.read ~dir:"/tmp/ivl-definitely-not-there" in
  Alcotest.(check int) "no records" 0 (List.length r.Durable.Wal.records);
  Alcotest.(check int) "no segments" 0 r.Durable.Wal.segments

(* The acceptance sweep: truncate the log at EVERY byte offset of the final
   frame. Each cut must yield exactly the first n-1 records (the longest
   valid prefix), report the torn tail, and keep recovery inside the
   envelope. *)
let test_wal_torn_tail_every_offset () =
  let n = 6 in
  let build dir =
    let w = Durable.Wal.create ~dir ~fsync:Durable.Wal.Never () in
    for e = 1 to n do
      Durable.Wal.append w ~epoch:e ~weight:e ~blob:(delta_blob e)
    done;
    Durable.Wal.close w;
    (* Checkpoint at epoch 3 so the sweep also exercises replay-from-ckpt:
       published after epochs 1..3 is 6. *)
    Durable.Checkpoint.write ~dir ~epoch:3 ~published:6 ~blob:(delta_blob 6) ()
  in
  with_dir @@ fun proto ->
  build proto;
  let last_frame =
    wal_frame ~epoch:n ~weight:n ~blob:(delta_blob n)
  in
  let last_len = Bytes.length last_frame in
  let full_len = Bytes.length (read_file (sole_segment proto)) in
  let prefix = full_len - last_len in
  let total = n * (n + 1) / 2 in
  (* Every byte offset of the final frame, 0 (frame entirely gone) through
     last_len - 1 (one byte short). *)
  for cut = 0 to last_len - 1 do
    with_dir @@ fun dir ->
    copy_dir proto dir;
    truncate_file (sole_segment dir) (prefix + cut);
    let r = Durable.Wal.read ~dir in
    if List.length r.Durable.Wal.records <> n - 1 then
      Alcotest.failf "cut %d: %d records, want %d" cut
        (List.length r.Durable.Wal.records)
        (n - 1);
    if cut > 0 then begin
      if r.Durable.Wal.truncated_reason = None then
        Alcotest.failf "cut %d: torn tail not reported" cut;
      if r.Durable.Wal.bytes_truncated <> cut then
        Alcotest.failf "cut %d: %d bytes truncated reported" cut
          r.Durable.Wal.bytes_truncated
    end;
    match R.recover ~dir () with
    | Error e -> Alcotest.failf "cut %d: recover failed: %s" cut e
    | Ok (g, rep) ->
        (* Exact: checkpoint(6) + replay of epochs 4..5 = 15. *)
        Alcotest.(check int)
          (Printf.sprintf "cut %d recovered weight" cut)
          15 rep.R.recovered_published;
        Alcotest.(check int)
          (Printf.sprintf "cut %d sketch agrees" cut)
          rep.R.recovered_published
          (Sketches.Batched_counter.read g);
        (* Envelope: checkpoint <= recovered <= pre-crash published. *)
        if rep.R.recovered_published < rep.R.checkpoint_published then
          Alcotest.failf "cut %d: recovered below checkpoint" cut;
        if rep.R.recovered_published > total then
          Alcotest.failf "cut %d: recovered above pre-crash published" cut
  done;
  (* And the uncut log recovers everything. *)
  match R.recover ~dir:proto () with
  | Error e -> Alcotest.failf "full recover failed: %s" e
  | Ok (_, rep) ->
      Alcotest.(check int) "full recovery" total rep.R.recovered_published;
      Alcotest.(check int) "replayed past checkpoint" 3 rep.R.replayed;
      Alcotest.(check int) "skipped up to checkpoint" 3 rep.R.skipped

let test_wal_mid_log_corruption_truncates_rest () =
  (* Bit rot in segment 0 must cut the log there — including dropping the
     entirety of segment 1, because replay order past a hole is untrusted. *)
  with_dir @@ fun dir ->
  let w = Durable.Wal.create ~segment_bytes:200 ~dir () in
  for e = 1 to 30 do
    Durable.Wal.append w ~epoch:e ~weight:1 ~blob:(delta_blob 1)
  done;
  Durable.Wal.close w;
  assert (Durable.Wal.rotations w > 0);
  let seg0 =
    Filename.concat dir
      (Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".seg")
      |> List.sort compare |> List.hd)
  in
  (* Corrupt a payload byte of the second frame in segment 0. *)
  let frame_len =
    Bytes.length (wal_frame ~epoch:1 ~weight:1 ~blob:(delta_blob 1))
  in
  flip_byte seg0 (frame_len + Wire.Codec.header_size + 2);
  let r = Durable.Wal.read ~dir in
  Alcotest.(check int) "only the first record survives" 1
    (List.length r.Durable.Wal.records);
  Alcotest.(check bool) "corruption reported" true
    (r.Durable.Wal.truncated_reason <> None);
  Alcotest.(check bool) "later segments counted as truncated" true
    (r.Durable.Wal.bytes_truncated > frame_len)

let test_wal_non_monotone_epoch_truncates () =
  with_dir @@ fun dir ->
  let w1 = Durable.Wal.create ~dir () in
  List.iter
    (fun e -> Durable.Wal.append w1 ~epoch:e ~weight:1 ~blob:(delta_blob 1))
    [ 1; 2; 3 ];
  Durable.Wal.close w1;
  (* A second writer starts from scratch and replays an old epoch — e.g. a
     restart that recovered from a stale checkpoint. The reader must refuse
     the regression. *)
  let w2 = Durable.Wal.create ~dir () in
  Durable.Wal.append w2 ~epoch:2 ~weight:1 ~blob:(delta_blob 1);
  Durable.Wal.close w2;
  let r = Durable.Wal.read ~dir in
  Alcotest.(check (list int)) "prefix before the regression" [ 1; 2; 3 ]
    (List.map (fun (x : Durable.Wal.record) -> x.epoch) r.Durable.Wal.records);
  Alcotest.(check bool) "regression reported" true
    (r.Durable.Wal.truncated_reason <> None)

(* ------------------------- checkpoints ------------------------- *)

let test_checkpoint_roundtrip_and_prune () =
  with_dir @@ fun dir ->
  List.iter
    (fun e ->
      Durable.Checkpoint.write ~keep:2 ~dir ~epoch:e ~published:(10 * e)
        ~blob:(delta_blob e) ())
    [ 1; 2; 3 ];
  let snaps, corrupt = Durable.Checkpoint.candidates ~dir in
  Alcotest.(check int) "no corruption" 0 corrupt;
  Alcotest.(check (list int)) "newest first, pruned to keep" [ 3; 2 ]
    (List.map (fun (s : Durable.Checkpoint.snapshot) -> s.epoch) snaps);
  match Durable.Checkpoint.latest ~dir with
  | None -> Alcotest.fail "expected a checkpoint"
  | Some s ->
      Alcotest.(check int) "latest epoch" 3 s.epoch;
      Alcotest.(check int) "latest published" 30 s.published;
      Alcotest.(check int) "blob intact" 3 (weight_of_blob s.blob)

let test_checkpoint_corrupt_newest_falls_back () =
  with_dir @@ fun dir ->
  Durable.Checkpoint.write ~dir ~epoch:1 ~published:10 ~blob:(delta_blob 10) ();
  Durable.Checkpoint.write ~dir ~epoch:2 ~published:20 ~blob:(delta_blob 20) ();
  let newest =
    Filename.concat dir
      (Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
      |> List.sort compare |> List.rev |> List.hd)
  in
  flip_byte newest (Wire.Codec.header_size + 1);
  let snaps, corrupt = Durable.Checkpoint.candidates ~dir in
  Alcotest.(check int) "one corrupt file seen" 1 corrupt;
  Alcotest.(check (list int)) "older survives"
    [ 1 ]
    (List.map (fun (s : Durable.Checkpoint.snapshot) -> s.epoch) snaps);
  (* Recovery degrades to the older checkpoint instead of failing. *)
  match R.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok (_, rep) ->
      Alcotest.(check int) "recovered from epoch 1" 1 rep.R.checkpoint_epoch;
      Alcotest.(check int) "its published total" 10 rep.R.checkpoint_published

let test_recovery_skips_undecodable_checkpoint () =
  (* Frame-valid checkpoint whose sketch payload M.decode rejects: recovery
     must walk past it (counting it) to an older good snapshot. *)
  with_dir @@ fun dir ->
  Durable.Checkpoint.write ~dir ~epoch:1 ~published:7 ~blob:(delta_blob 7) ();
  Durable.Checkpoint.write ~dir ~epoch:2 ~published:9
    ~blob:(Bytes.of_string "not a sketch") ();
  match R.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok (g, rep) ->
      Alcotest.(check int) "skipped the bad one" 1 rep.R.checkpoints_skipped;
      Alcotest.(check int) "used epoch 1" 1 rep.R.checkpoint_epoch;
      Alcotest.(check int) "weight" 7 (Sketches.Batched_counter.read g)

let test_recovery_empty_dir_is_empty_sketch () =
  with_dir @@ fun dir ->
  match R.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok (g, rep) ->
      Alcotest.(check int) "zero weight" 0 (Sketches.Batched_counter.read g);
      Alcotest.(check int) "epoch 0" 0 rep.R.recovered_epoch;
      Alcotest.(check int) "nothing replayed" 0 rep.R.replayed

let test_recovery_missing_dir_is_error () =
  match R.recover ~dir:"/tmp/ivl-definitely-not-there" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing directory"

(* ------------------------- end-to-end envelope ------------------------- *)

let test_engine_recovery_envelope_random_crashes () =
  (* Run the real pipeline with WAL + checkpoints, then simulate crashes by
     truncating the log at random byte offsets. Every recovery must land in
     the IVL envelope [checkpoint published, pre-crash published] — the
     durable analogue of the paper's intermediate-value guarantee. *)
  with_dir @@ fun proto ->
  let wal = Durable.Wal.create ~dir:proto ~fsync:Durable.Wal.Never () in
  let p =
    P.create ~queue_capacity:256 ~batch:64
      ~on_merge:(fun ~ctx:_ ~epoch ~weight ~blob ->
        Durable.Wal.append wal ~epoch ~weight ~blob)
      ~checkpoint_every:8
      ~on_checkpoint:(fun ~epoch ~published ~blob ->
        Durable.Checkpoint.write ~dir:proto ~epoch ~published ~blob ())
      ~shards:2 ()
  in
  let n = 20_000 in
  let stream =
    Workload.Stream.generate ~seed:51L (Workload.Stream.Uniform 3000) ~length:n
  in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  ignore
    (Conc.Runner.parallel ~domains:2 (fun i ->
         Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
  P.drain p;
  Durable.Wal.close wal;
  let published = (P.stats p).P.published in
  Alcotest.(check int) "clean run published everything" n published;
  let seg = sole_segment proto in
  let size = Bytes.length (read_file seg) in
  (* Full recovery first: must reproduce the pre-crash state exactly. *)
  (match R.recover ~dir:proto () with
  | Error e -> Alcotest.failf "full recover: %s" e
  | Ok (g, rep) ->
      Alcotest.(check int) "full recovery equals published" published
        rep.R.recovered_published;
      Alcotest.(check int) "sketch agrees" published
        (Sketches.Batched_counter.read g));
  let rng = Rng.Splitmix.create 91L in
  for trial = 1 to 25 do
    let cut = int_of_float (Rng.Splitmix.next_float rng *. float_of_int size) in
    with_dir @@ fun dir ->
    copy_dir proto dir;
    truncate_file (sole_segment dir) cut;
    match R.recover ~dir () with
    | Error e -> Alcotest.failf "trial %d (cut %d): recover failed: %s" trial cut e
    | Ok (g, rep) ->
        let v = rep.R.recovered_published in
        if v < rep.R.checkpoint_published then
          Alcotest.failf "trial %d (cut %d): %d below checkpoint %d" trial cut v
            rep.R.checkpoint_published;
        if v > published then
          Alcotest.failf "trial %d (cut %d): %d above pre-crash %d" trial cut v
            published;
        Alcotest.(check int)
          (Printf.sprintf "trial %d sketch agrees" trial)
          v
          (Sketches.Batched_counter.read g);
        (* Restartability: a writer opened on the recovered dir appends past
           the recovered epoch without tripping the monotonicity rule. *)
        let w = Durable.Wal.create ~dir () in
        Durable.Wal.append w ~epoch:(rep.R.recovered_epoch + 1) ~weight:1
          ~blob:(delta_blob 1);
        Durable.Wal.close w
  done

(* ------------------ directory validation (CLI exit-2 surface) ---------- *)

let test_validate_dir () =
  (* Reader mode: a missing directory is an error, not an empty log. *)
  (match Durable.Wal.validate_dir ~dir:"/tmp/ivl-definitely-not-there" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing dir accepted");
  with_dir @@ fun dir ->
  (* A plain file where the directory should be. *)
  let f = Filename.concat dir "plain" in
  write_file f (Bytes.of_string "x");
  (match Durable.Wal.validate_dir ~dir:f () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "plain file accepted as directory");
  (* A real directory passes in both modes. *)
  (match Durable.Wal.validate_dir ~dir () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good dir rejected: %s" e);
  (match Durable.Wal.validate_dir ~must_exist:false ~dir () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good dir rejected as writer: %s" e);
  (* Writer mode: a creatable path (parent exists) passes, a path whose
     parent is a plain file does not. *)
  (match Durable.Wal.validate_dir ~must_exist:false ~dir:(Filename.concat dir "fresh") () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "creatable dir rejected: %s" e);
  match Durable.Wal.validate_dir ~must_exist:false ~dir:(Filename.concat f "sub") () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "path under a plain file accepted"

let test_recover_compact () =
  with_dir @@ fun dir ->
  let w = Durable.Wal.create ~dir ~fsync:Durable.Wal.Never () in
  for e = 1 to 10 do
    Durable.Wal.append w ~epoch:e ~weight:e ~blob:(delta_blob e)
  done;
  Durable.Wal.close w;
  (match R.recover_compact ~dir () with
  | Error e -> Alcotest.failf "recover_compact: %s" e
  | Ok (g, rep) ->
      Alcotest.(check int) "recovered weight" 55 rep.R.recovered_published;
      Alcotest.(check int) "sketch agrees" 55 (Sketches.Batched_counter.read g));
  (* The replayed segments are gone; the state now lives in a checkpoint. *)
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
  in
  Alcotest.(check int) "segments compacted away" 0 (List.length segs);
  (match Durable.Checkpoint.latest ~dir with
  | None -> Alcotest.fail "no checkpoint after compaction"
  | Some s ->
      Alcotest.(check int) "checkpoint epoch" 10 s.Durable.Checkpoint.epoch;
      Alcotest.(check int) "checkpoint published" 55 s.Durable.Checkpoint.published);
  (* Recovering again (checkpoint only) reproduces the same state: the
     compaction is crash-safe because the checkpoint lands before the
     delete. *)
  match R.recover ~dir () with
  | Error e -> Alcotest.failf "second recover: %s" e
  | Ok (_, rep) ->
      Alcotest.(check int) "idempotent" 55 rep.R.recovered_published;
      Alcotest.(check int) "nothing left to replay" 0 rep.R.replayed

(* ------------------ fault window: crash, recover, restart --------------- *)

(* The S-level sweep: crash during the final WAL append at EVERY byte
   offset, recover (longest valid prefix + replay), then bring up a
   supervised engine seeded with the recovered state, kill one of its
   workers mid-run and let the supervisor restart it. The end state must
   stay inside the envelope: published = recovered + flushed (conservation),
   bounded above by recovered + accepted, and the recorded history passes
   the monotone check. *)
let test_fault_window_restart_in_envelope () =
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let n = 5 in
  with_dir @@ fun proto ->
  (let w = Durable.Wal.create ~dir:proto ~fsync:Durable.Wal.Never () in
   for e = 1 to n do
     Durable.Wal.append w ~epoch:e ~weight:e ~blob:(delta_blob e)
   done;
   Durable.Wal.close w);
  (* Checkpoint at epoch 2 so every cut also exercises replay-from-ckpt. *)
  Durable.Checkpoint.write ~dir:proto ~epoch:2 ~published:3 ~blob:(delta_blob 3) ();
  let last_len = Bytes.length (wal_frame ~epoch:n ~weight:n ~blob:(delta_blob n)) in
  let prefix = Bytes.length (read_file (sole_segment proto)) - last_len in
  let pre_crash = n * (n + 1) / 2 in
  for cut = 0 to last_len - 1 do
    with_dir @@ fun dir ->
    copy_dir proto dir;
    truncate_file (sole_segment dir) (prefix + cut);
    match R.recover_compact ~dir () with
    | Error e -> Alcotest.failf "cut %d: recover: %s" cut e
    | Ok (g, rep) ->
        let rec_pub = rep.R.recovered_published in
        (* Longest valid prefix: exactly epochs 1..n-1 survive any cut. *)
        Alcotest.(check int)
          (Printf.sprintf "cut %d longest valid prefix" cut)
          (pre_crash - n) rec_pub;
        if rec_pub < rep.R.checkpoint_published then
          Alcotest.failf "cut %d: recovered below checkpoint" cut;
        if rec_pub > pre_crash then
          Alcotest.failf "cut %d: recovered above pre-crash published" cut;
        (* Supervised restart on the recovered state. *)
        let chaos =
          Conc.Chaos.instantiate
            (Conc.Chaos.plan ~yield_prob:0.0 ~stall_prob:0.0
               ~kills:[ (0, 3) ]
               ~seed:(Int64.of_int cut) ())
            ~domains:2
        in
        let p =
          P.create ~shards:2 ~batch:8 ~queue_capacity:64
            ~on_tick:(fun ~shard -> Conc.Chaos.point_once chaos ~domain:shard)
            ~supervisor:Pipeline.Engine.default_supervisor
            ~initial:(g, rep.R.recovered_epoch, rec_pub)
            ()
        in
        let accepted = ref 0 in
        for _ = 1 to 64 do
          if P.ingest p 1 then incr accepted
        done;
        P.drain p;
        let st = P.stats p in
        let flushed =
          Array.fold_left
            (fun a (s : P.shard_stats) -> a + s.flushed_items)
            0 st.P.shards
        in
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: kill delivered" cut)
          true
          (List.length (Conc.Chaos.killed chaos) = 1);
        Alcotest.(check int)
          (Printf.sprintf "cut %d: conservation" cut)
          (rec_pub + flushed) st.P.published;
        if st.P.published > rec_pub + !accepted then
          Alcotest.failf "cut %d: published above recovered + accepted" cut;
        Alcotest.(check int)
          (Printf.sprintf "cut %d: monotone envelope" cut)
          0
          (List.length (Mono.violations (P.history p)))
  done

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "epoch monotonicity enforced" `Quick
            test_wal_epoch_monotonicity_enforced;
          Alcotest.test_case "segment rotation" `Quick test_wal_rotation;
          Alcotest.test_case "reopen starts a fresh segment" `Quick
            test_wal_reopen_starts_fresh_segment;
          Alcotest.test_case "missing dir reads empty" `Quick
            test_wal_missing_dir_is_empty;
          Alcotest.test_case "torn tail at every byte offset" `Quick
            test_wal_torn_tail_every_offset;
          Alcotest.test_case "mid-log corruption truncates the rest" `Quick
            test_wal_mid_log_corruption_truncates_rest;
          Alcotest.test_case "non-monotone epoch truncates" `Quick
            test_wal_non_monotone_epoch_truncates;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip and prune" `Quick
            test_checkpoint_roundtrip_and_prune;
          Alcotest.test_case "corrupt newest falls back" `Quick
            test_checkpoint_corrupt_newest_falls_back;
          Alcotest.test_case "undecodable checkpoint skipped" `Quick
            test_recovery_skips_undecodable_checkpoint;
          Alcotest.test_case "empty dir recovers empty sketch" `Quick
            test_recovery_empty_dir_is_empty_sketch;
          Alcotest.test_case "missing dir is an error" `Quick
            test_recovery_missing_dir_is_error;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "envelope under random crash points" `Quick
            test_engine_recovery_envelope_random_crashes;
          Alcotest.test_case "validate_dir (CLI exit-2 surface)" `Quick
            test_validate_dir;
          Alcotest.test_case "recover_compact checkpoints then clears" `Quick
            test_recover_compact;
          Alcotest.test_case "fault window: crash at every append offset, \
                              supervised restart in envelope"
            `Quick test_fault_window_restart_in_envelope;
        ] );
    ]
