(* Tests for the history model: well-formedness, precedence, skeletons,
   projection, completion — the vocabulary of Section 2. *)

open Test_helpers

(* Example 1 of the paper: inc(3) by p concurrent with a query by q that
   returns 0. *)
let example1 =
  let u = upd ~proc:0 ~id:1 3 in
  let q = qry ~proc:1 ~id:2 0 in
  hist [ inv u; inv q; rsp u; rsp ~ret:0 q ]

let test_length_and_ops () =
  Alcotest.(check int) "4 events" 4 (Hist.History.length example1);
  let ops = Hist.History.ops example1 in
  Alcotest.(check int) "2 ops" 2 (List.length ops);
  match ops with
  | [ o1; o2 ] ->
      Alcotest.(check int) "first invoked is the update" 1 o1.Hist.Op.id;
      Alcotest.(check int) "second invoked is the query" 2 o2.Hist.Op.id;
      Alcotest.(check (option int)) "query return merged from rsp" (Some 0) o2.Hist.Op.ret
  | _ -> Alcotest.fail "expected two ops"

let test_well_formed_ok () =
  match Hist.History.well_formed example1 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_well_formed_duplicate_inv () =
  let u = upd ~proc:0 ~id:1 3 in
  let h = hist [ inv u; inv u ] in
  match Hist.History.well_formed h with
  | Ok () -> Alcotest.fail "duplicate invocation accepted"
  | Error _ -> ()

let test_well_formed_rsp_before_inv () =
  let u = upd ~proc:0 ~id:1 3 in
  let h = hist [ rsp u; inv u ] in
  match Hist.History.well_formed h with
  | Ok () -> Alcotest.fail "response before invocation accepted"
  | Error _ -> ()

let test_well_formed_overlapping_same_proc () =
  let u1 = upd ~proc:0 ~id:1 3 in
  let u2 = upd ~proc:0 ~id:2 4 in
  let h = hist [ inv u1; inv u2; rsp u1; rsp u2 ] in
  match Hist.History.well_formed h with
  | Ok () -> Alcotest.fail "same-process overlap accepted"
  | Error _ -> ()

let test_precedence () =
  (* u1 completes before q is invoked; u2 overlaps q. *)
  let u1 = upd ~proc:0 ~id:1 1 in
  let u2 = upd ~proc:0 ~id:2 2 in
  let q = qry ~proc:1 ~id:3 0 in
  let h = hist [ inv u1; rsp u1; inv q; inv u2; rsp u2; rsp ~ret:1 q ] in
  Alcotest.(check bool) "u1 ≺ q" true (Hist.History.precedes h 1 3);
  Alcotest.(check bool) "¬(q ≺ u1)" false (Hist.History.precedes h 3 1);
  Alcotest.(check bool) "u1 ≺ u2" true (Hist.History.precedes h 1 2);
  Alcotest.(check bool) "u2 and q concurrent" true (Hist.History.concurrent h 2 3);
  Alcotest.(check bool) "q not concurrent with u1" false (Hist.History.concurrent h 1 3)

let test_pending_ops () =
  let u = upd ~proc:0 ~id:1 5 in
  let q = qry ~proc:1 ~id:2 0 in
  let h = hist [ inv u; inv q ] in
  Alcotest.(check int) "two pending" 2 (List.length (Hist.History.pending h));
  Alcotest.(check int) "none completed" 0 (List.length (Hist.History.completed h));
  (* Pending ops precede nothing. *)
  Alcotest.(check bool) "pending precedes nothing" false (Hist.History.precedes h 1 2)

let test_skeleton_erases_returns () =
  let sk = Hist.History.skeleton example1 in
  let q = List.find (fun o -> Hist.Op.is_query o) (Hist.History.ops sk) in
  Alcotest.(check (option int)) "return erased" None q.Hist.Op.ret;
  (* Skeleton preserves event count and order. *)
  Alcotest.(check int) "same length" (Hist.History.length example1)
    (Hist.History.length sk)

let test_sequential_detection () =
  let u = upd ~id:1 3 in
  let q = qry ~ret:3 ~id:2 0 in
  let s = seq [ u; q ] in
  Alcotest.(check bool) "sequential" true (Hist.History.is_sequential s);
  Alcotest.(check bool) "example1 is not sequential" false
    (Hist.History.is_sequential example1);
  match Hist.History.sequential_ops s with
  | Some [ o1; o2 ] ->
      Alcotest.(check int) "op order" 1 o1.Hist.Op.id;
      Alcotest.(check (option int)) "return kept" (Some 3) o2.Hist.Op.ret
  | _ -> Alcotest.fail "expected two sequential ops"

let test_projection () =
  let ux = upd ~proc:0 ~obj:0 ~id:1 1 in
  let uy = upd ~proc:1 ~obj:1 ~id:2 2 in
  let qx = qry ~proc:2 ~obj:0 ~ret:1 ~id:3 0 in
  let h = hist [ inv ux; inv uy; rsp ux; rsp uy; inv qx; rsp ~ret:1 qx ] in
  Alcotest.(check (list int)) "objects" [ 0; 1 ] (Hist.History.objects h);
  let hx = Hist.History.project h ~obj:0 in
  Alcotest.(check int) "H|x has 4 events" 4 (Hist.History.length hx);
  List.iter
    (fun (op : Test_helpers.iop) -> Alcotest.(check int) "all on obj 0" 0 op.Hist.Op.obj)
    (Hist.History.ops hx);
  let hy = Hist.History.project h ~obj:1 in
  Alcotest.(check int) "H|y has 2 events" 2 (Hist.History.length hy)

let test_complete_keeps_pending_updates () =
  let u = upd ~proc:0 ~id:1 5 in
  let q = qry ~proc:1 ~id:2 0 in
  let h = hist [ inv u; inv q ] in
  let c = Hist.History.complete h in
  Alcotest.(check int) "pending query dropped, update completed" 2
    (Hist.History.length c);
  Alcotest.(check int) "no pending left" 0 (List.length (Hist.History.pending c));
  match Hist.History.ops c with
  | [ op ] -> Alcotest.(check bool) "the update survives" true (Hist.Op.is_update op)
  | _ -> Alcotest.fail "expected exactly the update"

let test_complete_drop_pending_updates () =
  let u = upd ~proc:0 ~id:1 5 in
  let h = hist [ inv u ] in
  let c = Hist.History.complete ~keep_pending_updates:false h in
  Alcotest.(check int) "empty" 0 (Hist.History.length c)

let test_interval () =
  match Hist.History.interval example1 1 with
  | Some (i, Some r) ->
      Alcotest.(check int) "inv index" 0 i;
      Alcotest.(check int) "rsp index" 2 r
  | _ -> Alcotest.fail "expected completed interval";;

let test_interval_missing () =
  Alcotest.(check bool) "unknown id" true (Hist.History.interval example1 99 = None)

let test_find_op () =
  (match Hist.History.find_op example1 2 with
  | Some op -> Alcotest.(check bool) "id 2 is the query" true (Hist.Op.is_query op)
  | None -> Alcotest.fail "op 2 not found");
  Alcotest.(check bool) "missing op" true (Hist.History.find_op example1 42 = None)

let test_append () =
  let u = upd ~proc:0 ~id:1 5 in
  let h = hist [ inv u ] in
  let h = Hist.History.append h (rsp u) in
  Alcotest.(check int) "appended" 2 (Hist.History.length h);
  Alcotest.(check int) "now completed" 1 (List.length (Hist.History.completed h))

let test_op_helpers () =
  let u = upd ~id:1 3 in
  let q = qry ~id:2 0 in
  Alcotest.(check bool) "update kind" true (Hist.Op.is_update u);
  Alcotest.(check bool) "query kind" true (Hist.Op.is_query q);
  let q' = Hist.Op.with_return q 9 in
  Alcotest.(check (option int)) "with_return" (Some 9) q'.Hist.Op.ret;
  Alcotest.(check (option int)) "erase_return" None (Hist.Op.erase_return q').Hist.Op.ret;
  Alcotest.check_raises "update cannot return"
    (Invalid_argument "Op.with_return: updates do not return values") (fun () ->
      ignore (Hist.Op.with_return u 1))

(* Shared random history generator (Test_helpers.gen_history). *)
let gen_history seed ~procs ~ops_per_proc =
  Test_helpers.gen_history ~seed ~procs ~per_proc:ops_per_proc
    ~mk_op:(fun g ~proc ~id ->
      if Rng.Splitmix.next_bool g then upd ~proc ~id 1 else qry ~proc ~ret:0 ~id 0)

let test_generated_histories_well_formed () =
  for seed = 1 to 50 do
    let h = gen_history (Int64.of_int seed) ~procs:3 ~ops_per_proc:4 in
    match Hist.History.well_formed h with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed m)
  done

let test_projection_partition () =
  (* Projections over all objects partition the events. *)
  let g = Rng.Splitmix.create 123L in
  for _ = 1 to 20 do
    let next_id = ref 0 in
    let events = ref [] in
    for p = 0 to 2 do
      incr next_id;
      let op = upd ~proc:p ~obj:(Rng.Splitmix.next_int g 3) ~id:!next_id 1 in
      events := rsp op :: inv op :: !events
    done;
    let h = hist (List.rev !events) in
    let total =
      List.fold_left
        (fun acc obj -> acc + Hist.History.length (Hist.History.project h ~obj))
        0 (Hist.History.objects h)
    in
    Alcotest.(check int) "projections partition events" (Hist.History.length h) total
  done


let test_ascii_renders_intervals () =
  let u = upd ~proc:0 ~id:1 5 in
  let q = qry ~proc:1 ~ret:5 ~id:2 0 in
  let h = hist [ inv q; inv u; rsp u; rsp ~ret:5 q ] in
  let pic = Hist.Ascii.render_int h in
  (* Two rows, each mentioning its operation. *)
  let lines = String.split_on_char '\n' pic in
  Alcotest.(check int) "two rows" 2 (List.length lines);
  Alcotest.(check bool) "p0 row shows the update" true
    (List.exists (fun l -> String.length l > 3 && String.sub l 0 3 = "p0:") lines);
  (* The update's interval is strictly inside the query's. *)
  let row_of p = List.find (fun l -> String.sub l 0 3 = Printf.sprintf "p%d:" p) lines in
  let first_bar l = String.index l '|' in
  let last_bar l = String.rindex l '|' in
  Alcotest.(check bool) "update starts after query" true
    (first_bar (row_of 0) > first_bar (row_of 1));
  Alcotest.(check bool) "update ends before query" true
    (last_bar (row_of 0) < last_bar (row_of 1))

let test_ascii_pending_marker () =
  let u = upd ~proc:0 ~id:1 3 in
  let h = hist [ inv u ] in
  let pic = Hist.Ascii.render_int h in
  Alcotest.(check bool) "pending op ends with ~" true
    (String.contains pic '~')

let test_ascii_empty () =
  Alcotest.(check string) "empty history" "(empty history)"
    (Hist.Ascii.render_int (hist []))

let () =
  Alcotest.run "hist"
    [
      ( "structure",
        [
          Alcotest.test_case "length and ops" `Quick test_length_and_ops;
          Alcotest.test_case "interval" `Quick test_interval;
          Alcotest.test_case "interval missing" `Quick test_interval_missing;
          Alcotest.test_case "find_op" `Quick test_find_op;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "op helpers" `Quick test_op_helpers;
        ] );
      ( "well-formedness",
        [
          Alcotest.test_case "ok" `Quick test_well_formed_ok;
          Alcotest.test_case "duplicate inv" `Quick test_well_formed_duplicate_inv;
          Alcotest.test_case "rsp before inv" `Quick test_well_formed_rsp_before_inv;
          Alcotest.test_case "same-proc overlap" `Quick
            test_well_formed_overlapping_same_proc;
          Alcotest.test_case "generated histories" `Quick
            test_generated_histories_well_formed;
        ] );
      ( "order",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "pending" `Quick test_pending_ops;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "intervals" `Quick test_ascii_renders_intervals;
          Alcotest.test_case "pending marker" `Quick test_ascii_pending_marker;
          Alcotest.test_case "empty" `Quick test_ascii_empty;
        ] );
      ( "operators",
        [
          Alcotest.test_case "skeleton" `Quick test_skeleton_erases_returns;
          Alcotest.test_case "sequential" `Quick test_sequential_detection;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "projection partition" `Quick test_projection_partition;
          Alcotest.test_case "complete keeps updates" `Quick
            test_complete_keeps_pending_updates;
          Alcotest.test_case "complete drops updates" `Quick
            test_complete_drop_pending_updates;
        ] );
    ]
