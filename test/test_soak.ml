(* End-to-end soak harness tests: a miniature chaos soak (crash/recover
   rounds, worker kills, torn WAL tails) must come back PASS with zero
   violations, and the CLI must exit 2 with a diagnostic — not a stack
   trace — when pointed at an unusable durable directory. *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivl-test-soak-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let test_tiny_soak_passes () =
  with_dir @@ fun dir ->
  let spec = Workload.Trace.default_spec ~seed:0xBEEFL ~ops:24_000 ~universe:1024 () in
  let ops = Workload.Trace.materialize spec in
  let module S = Workload.Soak in
  let cfg =
    {
      (S.default_config ~dir) with
      S.shards = 2;
      feeders = 2;
      rounds = 2;
      kills_per_round = 1;
      key_sample = 512;
    }
  in
  let v = S.run cfg ~spec ~ops () in
  if not v.S.pass then
    Alcotest.failf "soak failed: %s" (String.concat "; " v.S.reasons);
  Alcotest.(check int) "one recovery" 1 v.S.recoveries;
  Alcotest.(check int) "two rounds" 2 (List.length v.S.rounds);
  List.iter
    (fun (r : S.round_report) ->
      Alcotest.(check int) "monotone clean" 0 r.S.monotone_violations;
      Alcotest.(check int) "conservation holds" 0 r.S.conservation_failures;
      Alcotest.(check int) "no epoch regressions" 0 r.S.epoch_regressions;
      Alcotest.(check int) "oracle lower bound holds" 0 r.S.oracle_lower_violations;
      Alcotest.(check bool) "oracle keys checked" true (r.S.checked_keys > 0))
    v.S.rounds;
  (* Weight only leaks, never appears: accepted covers published. *)
  Alcotest.(check bool) "lost weight non-negative" true (v.S.lost_weight >= 0);
  let s = S.verdict_to_string v in
  Alcotest.(check bool) "verdict prints PASS" true
    (String.length s >= 10
    && (let rec has i =
          i + 10 <= String.length s
          && (String.sub s i 10 = "soak: PASS" || has (i + 1))
        in
        has 0))

let test_soak_rejects_bad_config () =
  with_dir @@ fun dir ->
  let spec = Workload.Trace.default_spec ~seed:1L ~ops:100 ~universe:16 () in
  let ops = Workload.Trace.materialize spec in
  let module S = Workload.Soak in
  let cfg = { (S.default_config ~dir) with S.shards = 2; kills_per_round = 3 } in
  match S.run cfg ~spec ~ops () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kills_per_round > shards accepted"

(* --- the CLI's friendly failures (S1 regression) ----------------------- *)

let exe = Filename.concat (Filename.concat ".." "bin") "main.exe"

let quiet cmd = cmd ^ " >/dev/null 2>&1"

let test_cli_recover_missing_dir_exits_2 () =
  if not (Sys.file_exists exe) then ()
  else
    Alcotest.(check int) "recover exits 2" 2
      (Sys.command (quiet (exe ^ " recover --dir /tmp/ivl-definitely-not-there")))

let test_cli_recover_file_dir_exits_2 () =
  if not (Sys.file_exists exe) then ()
  else
    with_dir @@ fun dir ->
    let f = Filename.concat dir "plain" in
    let oc = open_out f in
    output_string oc "x";
    close_out oc;
    Alcotest.(check int) "recover on a plain file exits 2" 2
      (Sys.command (quiet (exe ^ " recover --dir " ^ Filename.quote f)))

let test_cli_pipeline_bad_wal_parent_exits_2 () =
  if not (Sys.file_exists exe) then ()
  else
    Alcotest.(check int) "pipeline --wal under a missing parent exits 2" 2
      (Sys.command
         (quiet
            (exe
           ^ " pipeline --ops 100 --wal /tmp/ivl-definitely-not-there/sub")))

let () =
  Alcotest.run "soak"
    [
      ( "harness",
        [
          Alcotest.test_case "tiny chaos soak passes" `Quick test_tiny_soak_passes;
          Alcotest.test_case "bad config rejected" `Quick test_soak_rejects_bad_config;
        ] );
      ( "cli",
        [
          Alcotest.test_case "recover: missing dir exits 2" `Quick
            test_cli_recover_missing_dir_exits_2;
          Alcotest.test_case "recover: plain file exits 2" `Quick
            test_cli_recover_file_dir_exits_2;
          Alcotest.test_case "pipeline: bad --wal parent exits 2" `Quick
            test_cli_pipeline_bad_wal_parent_exits_2;
        ] );
    ]
