(* Tests for sequential specifications and the τ operator (Section 3.1):
   Example 1's two linearizations, multi-object state separation, and the
   CountMin / Morris randomized specs. *)

open Test_helpers

module Counter_tau = Spec.Quantitative.Tau (Spec.Counter_spec)

let test_counter_spec_basics () =
  Alcotest.(check int) "init" 0 Spec.Counter_spec.init;
  Alcotest.(check int) "apply" 7 (Spec.Counter_spec.apply_update 3 4);
  Alcotest.(check int) "query" 5 (Spec.Counter_spec.eval_query 5 0);
  Alcotest.check_raises "negative batch"
    (Invalid_argument "Counter_spec.apply_update: batch must be non-negative") (fun () ->
      ignore (Spec.Counter_spec.apply_update 0 (-1)))

(* Example 1: linearizing the query after inc(3) yields 3; before yields 0. *)
let test_example1_tau () =
  let u = upd ~id:1 3 in
  let q = qry ~id:2 0 in
  let after = Counter_tau.tau [ u; q ] in
  (match after with
  | [ _; q' ] -> Alcotest.(check (option int)) "query after inc" (Some 3) q'.Hist.Op.ret
  | _ -> Alcotest.fail "shape");
  let before = Counter_tau.tau [ q; u ] in
  match before with
  | [ q'; _ ] -> Alcotest.(check (option int)) "query before inc" (Some 0) q'.Hist.Op.ret
  | _ -> Alcotest.fail "shape"

let test_tau_idempotent_on_spec_histories () =
  let ops = [ upd ~id:1 2; qry ~id:2 0; upd ~id:3 5; qry ~id:4 0 ] in
  let filled = Counter_tau.tau ops in
  let refilled = Counter_tau.tau filled in
  List.iter2
    (fun a b -> Alcotest.(check (option int)) "stable" a.Hist.Op.ret b.Hist.Op.ret)
    filled refilled

let test_satisfies () =
  let good = [ upd ~id:1 2; qry ~ret:2 ~id:2 0 ] in
  Alcotest.(check bool) "conforming history satisfies" true (Counter_tau.satisfies good);
  let bad = [ upd ~id:1 2; qry ~ret:3 ~id:2 0 ] in
  Alcotest.(check bool) "non-conforming fails" false (Counter_tau.satisfies bad)

let test_multi_object_states_disjoint () =
  let ops =
    [ upd ~obj:0 ~id:1 10; upd ~obj:1 ~id:2 1; qry ~obj:0 ~id:3 0; qry ~obj:1 ~id:4 0 ]
  in
  match Counter_tau.tau ops with
  | [ _; _; q0; q1 ] ->
      Alcotest.(check (option int)) "object 0 sees 10" (Some 10) q0.Hist.Op.ret;
      Alcotest.(check (option int)) "object 1 sees 1" (Some 1) q1.Hist.Op.ret
  | _ -> Alcotest.fail "shape"

let test_tau_history () =
  let u = upd ~id:1 4 in
  let q = qry ~id:2 0 in
  let sk = Hist.History.skeleton (seq [ u; q ]) in
  let filled = Counter_tau.tau_history sk in
  match Hist.History.sequential_ops filled with
  | Some [ _; q' ] -> Alcotest.(check (option int)) "filled" (Some 4) q'.Hist.Op.ret
  | _ -> Alcotest.fail "shape"

let test_tau_history_rejects_concurrent () =
  let u = upd ~proc:0 ~id:1 4 in
  let q = qry ~proc:1 ~id:2 0 in
  let h = hist [ inv u; inv q; rsp u; rsp ~ret:0 q ] in
  Alcotest.check_raises "not sequential"
    (Invalid_argument "Tau.tau_history: history is not sequential") (fun () ->
      ignore (Counter_tau.tau_history h))

let test_updown_spec () =
  let s = Spec.Updown_spec.apply_update (Spec.Updown_spec.apply_update 0 5) (-3) in
  Alcotest.(check int) "signed sum" 2 (Spec.Updown_spec.eval_query s 0)

let test_max_spec () =
  let s = List.fold_left Spec.Max_spec.apply_update Spec.Max_spec.init [ 3; 9; 4 ] in
  Alcotest.(check int) "max" 9 (Spec.Max_spec.eval_query s 0)

let test_exact_spec () =
  let s =
    List.fold_left Spec.Exact_spec.apply_update Spec.Exact_spec.init [ 1; 2; 1; 1; 3 ]
  in
  Alcotest.(check int) "f_1" 3 (Spec.Exact_spec.eval_query s 1);
  Alcotest.(check int) "f_2" 1 (Spec.Exact_spec.eval_query s 2);
  Alcotest.(check int) "f_unseen" 0 (Spec.Exact_spec.eval_query s 42)

(* CountMin spec: with explicit hash mappings, counters land where expected
   and the query takes the row minimum. *)

let test_rank_spec () =
  let s =
    List.fold_left Spec.Rank_spec.apply_update Spec.Rank_spec.init [ 5; 1; 5; 9 ]
  in
  Alcotest.(check int) "rank 0" 0 (Spec.Rank_spec.eval_query s 0);
  Alcotest.(check int) "rank 5 counts duplicates" 3 (Spec.Rank_spec.eval_query s 5);
  Alcotest.(check int) "rank 100" 4 (Spec.Rank_spec.eval_query s 100)

let test_countmin_spec_explicit () =
  let family =
    Hashing.Family.of_mapping ~width:4 [| (fun x -> x mod 4); (fun x -> (x + 1) mod 4) |]
  in
  let s0 = Spec.Countmin_spec.init family in
  let s1 = Spec.Countmin_spec.apply_update s0 0 in
  let s2 = Spec.Countmin_spec.apply_update s1 0 in
  Alcotest.(check int) "f̂_0 = 2" 2 (Spec.Countmin_spec.eval_query s2 0);
  (* Element 4 collides with 0 in both rows (4 mod 4 = 0), so CM
     over-estimates it at 2 as well. *)
  Alcotest.(check int) "collision over-estimates" 2 (Spec.Countmin_spec.eval_query s2 4);
  (* Element 1 hits untouched cells. *)
  Alcotest.(check int) "clean cell" 0 (Spec.Countmin_spec.eval_query s2 1)

let test_countmin_spec_overestimates () =
  (* The CM estimate never under-estimates the true count. *)
  let family = Hashing.Family.seeded ~seed:3L ~rows:3 ~width:16 in
  let g = Rng.Splitmix.create 4L in
  let s = ref (Spec.Countmin_spec.init family) in
  let exact = Hashtbl.create 16 in
  for _ = 1 to 300 do
    let a = Rng.Splitmix.next_int g 40 in
    s := Spec.Countmin_spec.apply_update !s a;
    Hashtbl.replace exact a (1 + Option.value ~default:0 (Hashtbl.find_opt exact a))
  done;
  for a = 0 to 39 do
    let f = Option.value ~default:0 (Hashtbl.find_opt exact a) in
    let est = Spec.Countmin_spec.eval_query !s a in
    Alcotest.(check bool) (Printf.sprintf "f̂_%d ≥ f_%d" a a) true (est >= f)
  done

let test_countmin_fixed_functor () =
  let family = Hashing.Family.seeded ~seed:5L ~rows:2 ~width:8 in
  let module CM = Spec.Countmin_spec.Fixed (struct
    let family = family
  end) in
  let s = CM.apply_update (CM.apply_update CM.init 7) 7 in
  Alcotest.(check int) "functor view agrees" 2 (CM.eval_query s 7);
  Alcotest.(check bool) "commutative flag" true CM.commutative_updates

let test_morris_spec_deterministic_given_coin () =
  let module M = Spec.Morris_spec in
  let s0 = M.init 42L in
  let s3a = List.fold_left (fun s () -> M.apply_update s ()) s0 [ (); (); () ] in
  let s3b = List.fold_left (fun s () -> M.apply_update s ()) s0 [ (); (); () ] in
  Alcotest.(check (float 0.0)) "same coin, same estimate" (M.eval_query s3a ())
    (M.eval_query s3b ())

let test_morris_spec_first_update_always_bumps () =
  (* With exponent 0 the bump probability is 1. *)
  let module M = Spec.Morris_spec in
  for seed = 1 to 20 do
    let s1 = M.apply_update (M.init (Int64.of_int seed)) () in
    Alcotest.(check (float 0.0)) "estimate after one event" 1.0 (M.eval_query s1 ())
  done

let test_morris_estimate_grows_with_coin_consumption () =
  let module M = Spec.Morris_spec in
  let s = ref (M.init 7L) in
  let prev = ref (M.eval_query !s ()) in
  for _ = 1 to 200 do
    s := M.apply_update !s ();
    let e = M.eval_query !s () in
    Alcotest.(check bool) "monotone estimate" true (e >= !prev);
    prev := e
  done

let test_lift_randomized () =
  let module L = Spec.Quantitative.Lift_randomized (Spec.Counter_spec) in
  let s = L.apply_update (L.init ()) 5 in
  Alcotest.(check int) "lifted behaves like base" 5 (L.eval_query s 0)

let test_fix_coin () =
  let family = Hashing.Family.seeded ~seed:11L ~rows:2 ~width:8 in
  let module F =
    Spec.Quantitative.Fix_coin
      (Spec.Countmin_spec)
      (struct
        let coin = family
      end)
  in
  let s = F.apply_update F.init 3 in
  Alcotest.(check int) "fixed coin query" 1 (F.eval_query s 3)

let () =
  Alcotest.run "spec"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_spec_basics;
          Alcotest.test_case "example 1" `Quick test_example1_tau;
          Alcotest.test_case "tau idempotent" `Quick test_tau_idempotent_on_spec_histories;
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          Alcotest.test_case "multi-object" `Quick test_multi_object_states_disjoint;
          Alcotest.test_case "tau_history" `Quick test_tau_history;
          Alcotest.test_case "tau_history rejects concurrent" `Quick
            test_tau_history_rejects_concurrent;
        ] );
      ( "other deterministic specs",
        [
          Alcotest.test_case "updown" `Quick test_updown_spec;
          Alcotest.test_case "max" `Quick test_max_spec;
          Alcotest.test_case "exact frequency" `Quick test_exact_spec;
          Alcotest.test_case "exact rank" `Quick test_rank_spec;
        ] );
      ( "countmin",
        [
          Alcotest.test_case "explicit hashes" `Quick test_countmin_spec_explicit;
          Alcotest.test_case "never under-estimates" `Quick
            test_countmin_spec_overestimates;
          Alcotest.test_case "Fixed functor" `Quick test_countmin_fixed_functor;
        ] );
      ( "morris",
        [
          Alcotest.test_case "deterministic given coin" `Quick
            test_morris_spec_deterministic_given_coin;
          Alcotest.test_case "first update bumps" `Quick
            test_morris_spec_first_update_always_bumps;
          Alcotest.test_case "monotone estimate" `Quick
            test_morris_estimate_grows_with_coin_consumption;
        ] );
      ( "randomized wrappers",
        [
          Alcotest.test_case "lift" `Quick test_lift_randomized;
          Alcotest.test_case "fix coin" `Quick test_fix_coin;
        ] );
    ]
