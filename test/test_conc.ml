(* Tests for the real multicore implementations (OCaml domains): the IVL
   counter, the linearizable counter baselines, PCM, the concurrent Morris
   counter, the history recorder, and end-to-end IVL checking of recorded
   hardware executions. *)

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)

let test_barrier_releases_all () =
  let b = Conc.Barrier.create 4 in
  let counter = Atomic.make 0 in
  let results =
    Conc.Runner.parallel ~domains:4 (fun _ ->
        ignore (Atomic.fetch_and_add counter 1);
        Conc.Barrier.await b;
        (* After the barrier, every arrival must be visible. *)
        Atomic.get counter)
  in
  Array.iter (fun seen -> Alcotest.(check int) "all arrivals visible" 4 seen) results

let test_barrier_reusable () =
  let b = Conc.Barrier.create 2 in
  let log = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun _ ->
        for _ = 1 to 3 do
          Conc.Barrier.await b;
          ignore (Atomic.fetch_and_add log 1)
        done)
  in
  Alcotest.(check int) "three rounds of two" 6 (Atomic.get log)

let test_runner_parallel_results () =
  let results = Conc.Runner.parallel ~domains:5 (fun i -> i * i) in
  Alcotest.(check (array int)) "per-domain results" [| 0; 1; 4; 9; 16 |] results

(* ------------------------- IVL counter ------------------------- *)

let test_ivl_counter_sequential () =
  let c = Conc.Ivl_counter.create ~procs:3 in
  Conc.Ivl_counter.update c ~proc:0 5;
  Conc.Ivl_counter.update c ~proc:1 7;
  Conc.Ivl_counter.update c ~proc:0 1;
  Alcotest.(check int) "sum" 13 (Conc.Ivl_counter.read c);
  Alcotest.(check int) "slot 0" 6 (Conc.Ivl_counter.read_slot c 0);
  Alcotest.(check int) "procs" 3 (Conc.Ivl_counter.procs c)

let test_ivl_counter_validation () =
  let c = Conc.Ivl_counter.create ~procs:2 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Ivl_counter.update: batch must be non-negative") (fun () ->
      Conc.Ivl_counter.update c ~proc:0 (-1));
  Alcotest.check_raises "bad slot"
    (Invalid_argument "Ivl_counter.update: no such process slot") (fun () ->
      Conc.Ivl_counter.update c ~proc:2 1)

let test_ivl_counter_concurrent_total () =
  let domains = 4 and per_domain = 10_000 in
  let c = Conc.Ivl_counter.create ~procs:domains in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per_domain do
          Conc.Ivl_counter.update c ~proc:i 1
        done)
  in
  Alcotest.(check int) "final total exact" (domains * per_domain) (Conc.Ivl_counter.read c)

let test_ivl_counter_reads_bounded_and_monotone () =
  (* While writers run, every read lies in [0, total] and a single reader's
     successive reads never decrease (each slot is monotone and the reader
     rescans in the same order). *)
  let writers = 3 and per_writer = 20_000 in
  let c = Conc.Ivl_counter.create ~procs:writers in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:(writers + 1) (fun i ->
        if i < writers then
          for _ = 1 to per_writer do
            Conc.Ivl_counter.update c ~proc:i 1
          done
        else begin
          let prev = ref 0 in
          for _ = 1 to 2_000 do
            let v = Conc.Ivl_counter.read c in
            if v < !prev || v < 0 || v > writers * per_writer then
              ignore (Atomic.fetch_and_add violations 1);
            prev := v
          done
        end)
  in
  Alcotest.(check int) "no envelope or monotonicity violations" 0
    (Atomic.get violations)

(* ------------------------- linearizable counters ------------------------- *)

let test_locked_counter_concurrent () =
  let c = Conc.Locked_counter.create () in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun _ ->
        for _ = 1 to 5_000 do
          Conc.Locked_counter.update c 2
        done)
  in
  Alcotest.(check int) "exact total" 40_000 (Conc.Locked_counter.read c)

let test_faa_counter_concurrent () =
  let c = Conc.Faa_counter.create () in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun _ ->
        for _ = 1 to 5_000 do
          Conc.Faa_counter.update c 3
        done)
  in
  Alcotest.(check int) "exact total" 60_000 (Conc.Faa_counter.read c)

(* ------------------------- PCM ------------------------- *)

let test_pcm_sequential_matches_reference () =
  let family = Hashing.Family.seeded ~seed:77L ~rows:3 ~width:32 in
  let pcm = Conc.Pcm.create ~family in
  let reference = Sketches.Countmin.create ~family in
  let stream = Workload.Stream.generate ~seed:78L (Workload.Stream.Zipf (60, 1.1)) ~length:3000 in
  Array.iter
    (fun a ->
      Conc.Pcm.update pcm a;
      Sketches.Countmin.update reference a)
    stream;
  for a = 0 to 59 do
    Alcotest.(check int)
      (Printf.sprintf "element %d" a)
      (Sketches.Countmin.query reference a)
      (Conc.Pcm.query pcm a)
  done;
  Alcotest.(check int) "update count" 3000 (Conc.Pcm.updates pcm)

let test_pcm_concurrent_ingest_exact_cells () =
  (* Atomic increments: after all writers join, the matrix equals the
     sequential matrix on the same multiset of updates. *)
  let family = Hashing.Family.seeded ~seed:80L ~rows:2 ~width:16 in
  let pcm = Conc.Pcm.create ~family in
  let reference = Sketches.Countmin.create ~family in
  let stream = Workload.Stream.generate ~seed:81L (Workload.Stream.Uniform 40) ~length:8000 in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i -> Array.iter (Conc.Pcm.update pcm) chunks.(i))
  in
  Array.iter (Sketches.Countmin.update reference) stream;
  let cells = Conc.Pcm.snapshot_cells pcm in
  for row = 0 to 1 do
    for col = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "cell (%d,%d)" row col)
        (Sketches.Countmin.cell reference ~row ~col)
        cells.(row).(col)
    done
  done

let test_pcm_concurrent_queries_bounded () =
  (* Readers racing writers: CM never under-estimates, and an exact atomic
     oracle read before the query starts lower-bounds f_start. *)
  let family = Hashing.Family.seeded ~seed:90L ~rows:4 ~width:64 in
  let pcm = Conc.Pcm.create ~family in
  let probe = 0 in
  let oracle = Atomic.make 0 in
  let stream = Workload.Stream.generate ~seed:91L (Workload.Stream.Zipf (50, 1.3)) ~length:40_000 in
  let chunks = Workload.Stream.chunks stream ~pieces:3 in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        if i < 3 then
          Array.iter
            (fun a ->
              Conc.Pcm.update pcm a;
              if a = probe then ignore (Atomic.fetch_and_add oracle 1))
            chunks.(i)
        else
          for _ = 1 to 3_000 do
            let before = Atomic.get oracle in
            let est = Conc.Pcm.query pcm probe in
            if est < before then ignore (Atomic.fetch_and_add violations 1)
          done)
  in
  Alcotest.(check int) "no under-estimates" 0 (Atomic.get violations)

let test_locked_countmin_concurrent () =
  let family = Hashing.Family.seeded ~seed:95L ~rows:2 ~width:16 in
  let cm = Conc.Locked_countmin.create ~family in
  let stream = Workload.Stream.generate ~seed:96L (Workload.Stream.Uniform 20) ~length:4000 in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        Array.iter (Conc.Locked_countmin.update cm) chunks.(i))
  in
  Alcotest.(check int) "updates" 4000 (Conc.Locked_countmin.updates cm);
  let reference = Sketches.Countmin.create ~family in
  Array.iter (Sketches.Countmin.update reference) stream;
  for a = 0 to 19 do
    Alcotest.(check int)
      (Printf.sprintf "element %d" a)
      (Sketches.Countmin.query reference a)
      (Conc.Locked_countmin.query cm a)
  done

(* ------------------------- Flat PCM ------------------------- *)

let test_flat_pcm_sequential_matches_reference () =
  let family = Hashing.Family.seeded ~seed:77L ~rows:3 ~width:32 in
  let fp = Conc.Flat_pcm.create ~publish_every:1 ~family ~domains:1 () in
  let reference = Sketches.Countmin.create ~family in
  let stream =
    Workload.Stream.generate ~seed:78L (Workload.Stream.Zipf (60, 1.1)) ~length:3000
  in
  Array.iter
    (fun a ->
      Conc.Flat_pcm.update fp ~domain:0 a;
      Sketches.Countmin.update reference a)
    stream;
  for a = 0 to 59 do
    Alcotest.(check int)
      (Printf.sprintf "element %d" a)
      (Sketches.Countmin.query reference a)
      (Conc.Flat_pcm.query fp a)
  done;
  Alcotest.(check int) "update count" 3000 (Conc.Flat_pcm.updates fp)

let test_flat_pcm_concurrent_cells_exact () =
  (* Plane-per-writer: after all writers join and flush, the cell-wise sum
     equals the sequential matrix on the same multiset of updates. *)
  let family = Hashing.Family.seeded ~seed:80L ~rows:2 ~width:16 in
  let fp = Conc.Flat_pcm.create ~publish_every:64 ~family ~domains:4 () in
  let reference = Sketches.Countmin.create ~family in
  let stream =
    Workload.Stream.generate ~seed:81L (Workload.Stream.Uniform 40) ~length:8000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        Array.iter (Conc.Flat_pcm.update fp ~domain:i) chunks.(i);
        Conc.Flat_pcm.flush fp ~domain:i)
  in
  Array.iter (Sketches.Countmin.update reference) stream;
  Alcotest.(check int) "all updates published" 8000 (Conc.Flat_pcm.updates fp);
  let cells = Conc.Flat_pcm.snapshot_cells fp in
  for row = 0 to 1 do
    for col = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "cell (%d,%d)" row col)
        (Sketches.Countmin.cell reference ~row ~col)
        cells.(row).(col)
    done
  done

let test_flat_pcm_publish_batching () =
  let family = Hashing.Family.seeded ~seed:82L ~rows:2 ~width:16 in
  let fp = Conc.Flat_pcm.create ~publish_every:10 ~family ~domains:2 () in
  for _ = 1 to 9 do
    Conc.Flat_pcm.update fp ~domain:0 7
  done;
  Alcotest.(check int) "nothing published below the batch" 0
    (Conc.Flat_pcm.updates fp);
  Alcotest.(check int) "all buffered" 9 (Conc.Flat_pcm.buffered fp ~domain:0);
  Conc.Flat_pcm.update fp ~domain:0 7;
  Alcotest.(check int) "batch published" 10 (Conc.Flat_pcm.updates fp);
  Alcotest.(check int) "buffer reset" 0 (Conc.Flat_pcm.buffered fp ~domain:0);
  Conc.Flat_pcm.update fp ~domain:0 7;
  Alcotest.(check int) "stays at batch boundary" 10 (Conc.Flat_pcm.updates fp);
  (* The cells themselves always carry unpublished updates (monotone plane),
     so a query may run ahead of [updates] — that is the IVL slack. *)
  Alcotest.(check int) "query sees buffered increments" 11
    (Conc.Flat_pcm.query fp 7);
  Conc.Flat_pcm.flush fp ~domain:0;
  Alcotest.(check int) "flush publishes the tail" 11 (Conc.Flat_pcm.updates fp);
  Conc.Flat_pcm.flush_all fp;
  Alcotest.(check int) "flush_all idempotent on empty planes" 11
    (Conc.Flat_pcm.updates fp)

let test_flat_pcm_concurrent_queries_bounded () =
  (* Readers racing writers, publish_every = 1 so every update is published
     before the oracle tick: the estimate never under-counts the oracle
     reading taken before the query started. *)
  let family = Hashing.Family.seeded ~seed:90L ~rows:4 ~width:64 in
  let fp = Conc.Flat_pcm.create ~publish_every:1 ~family ~domains:3 () in
  let probe = 0 in
  let oracle = Atomic.make 0 in
  let stream =
    Workload.Stream.generate ~seed:91L (Workload.Stream.Zipf (50, 1.3))
      ~length:40_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:3 in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        if i < 3 then
          Array.iter
            (fun a ->
              Conc.Flat_pcm.update fp ~domain:i a;
              if a = probe then ignore (Atomic.fetch_and_add oracle 1))
            chunks.(i)
        else
          for _ = 1 to 3_000 do
            let before = Atomic.get oracle in
            let est = Conc.Flat_pcm.query fp probe in
            if est < before then ignore (Atomic.fetch_and_add violations 1)
          done)
  in
  Alcotest.(check int) "no under-estimates" 0 (Atomic.get violations)

let test_flat_pcm_theorem6_bound () =
  (* After a full flush the flat layout is just a CountMin over the same
     multiset, so Theorem 6's additive bound applies: est ∈ [f, f + e/w·n]. *)
  let rows = 4 and width = 256 in
  let family = Hashing.Family.seeded ~seed:21L ~rows ~width in
  let n = 20_000 in
  let universe = 400 in
  let stream =
    Workload.Stream.generate ~seed:9L (Workload.Stream.Zipf (universe, 1.2))
      ~length:n
  in
  let fp = Conc.Flat_pcm.create ~family ~domains:2 () in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun i ->
        Array.iter (Conc.Flat_pcm.update fp ~domain:i) chunks.(i);
        Conc.Flat_pcm.flush fp ~domain:i)
  in
  Alcotest.(check int) "sketch saw every update" n (Conc.Flat_pcm.updates fp);
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let bound =
    int_of_float
      (ceil (Float.exp 1.0 /. float_of_int width *. float_of_int n))
  in
  for a = 0 to universe - 1 do
    let f = Sketches.Exact.frequency exact a and est = Conc.Flat_pcm.query fp a in
    if est < f || est > f + bound then
      Alcotest.failf "element %d: estimate %d outside [%d, %d + %d]" a est f f
        bound
  done

let test_flat_pcm_update_many () =
  let family = Hashing.Family.seeded ~seed:83L ~rows:3 ~width:32 in
  let fp = Conc.Flat_pcm.create ~publish_every:1 ~family ~domains:1 () in
  let reference = Conc.Flat_pcm.create ~publish_every:1 ~family ~domains:1 () in
  Conc.Flat_pcm.update_many fp ~domain:0 5 ~count:7;
  for _ = 1 to 7 do
    Conc.Flat_pcm.update reference ~domain:0 5
  done;
  Alcotest.(check int) "batched equals repeated" (Conc.Flat_pcm.query reference 5)
    (Conc.Flat_pcm.query fp 5);
  Alcotest.(check int) "updates counted with weight" 7 (Conc.Flat_pcm.updates fp);
  Conc.Flat_pcm.update_many fp ~domain:0 5 ~count:0;
  Alcotest.(check int) "count 0 is a no-op" 7 (Conc.Flat_pcm.updates fp);
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Flat_pcm.update_many: count must be non-negative")
    (fun () -> Conc.Flat_pcm.update_many fp ~domain:0 5 ~count:(-1))

let test_flat_pcm_validation () =
  let family = Hashing.Family.seeded ~seed:84L ~rows:2 ~width:8 in
  Alcotest.check_raises "domains must be positive"
    (Invalid_argument "Flat_pcm.create: domains must be positive") (fun () ->
      ignore (Conc.Flat_pcm.create ~family ~domains:0 ()));
  Alcotest.check_raises "publish_every must be positive"
    (Invalid_argument "Flat_pcm.create: publish_every must be positive")
    (fun () -> ignore (Conc.Flat_pcm.create ~publish_every:0 ~family ~domains:1 ()));
  let fp = Conc.Flat_pcm.create ~family ~domains:2 () in
  Alcotest.check_raises "bad domain index"
    (Invalid_argument "Flat_pcm: no such domain") (fun () ->
      Conc.Flat_pcm.update fp ~domain:2 0)

(* End-to-end Lemma 7 for the flat layout: with publish_every = 1 every
   update publishes before returning, so recorded executions must be IVL
   w.r.t. the CM spec sharing the same hash family. *)
let test_recorded_flat_pcm_histories_are_ivl () =
  let family = Hashing.Family.seeded ~seed:123L ~rows:2 ~width:4 in
  let module Cm = Spec.Countmin_spec.Fixed (struct
    let family = family
  end) in
  let module Cm_check = Ivl.Check.Make (Cm) in
  for round = 1 to 30 do
    let rec_ = Conc.Recorder.create ~domains:3 in
    let fp = Conc.Flat_pcm.create ~publish_every:1 ~family ~domains:2 () in
    let _ =
      Conc.Runner.parallel ~domains:3 (fun i ->
          if i < 2 then
            for k = 0 to 2 do
              let a = (i + k) mod 3 in
              Conc.Recorder.record_update rec_ ~domain:i ~obj:0 a (fun () ->
                  Conc.Flat_pcm.update fp ~domain:i a)
            done
          else
            for a = 0 to 2 do
              ignore
                (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 a (fun () ->
                     Conc.Flat_pcm.query fp a))
            done)
    in
    let h = Conc.Recorder.history rec_ in
    if not (Cm_check.is_ivl h) then
      Alcotest.failf "recorded flat PCM execution %d not IVL:\n%s" round
        (Test_helpers.show_history h)
  done

(* ------------------------- Morris ------------------------- *)

let test_morris_conc_sequential_path () =
  let m = Conc.Morris_conc.create ~seed:5L ~domains:1 () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Conc.Morris_conc.estimate m);
  Conc.Morris_conc.update m ~domain:0;
  Alcotest.(check (float 0.0)) "first event bumps" 1.0 (Conc.Morris_conc.estimate m)

let test_morris_conc_concurrent_ballpark () =
  let domains = 4 and per_domain = 50_000 in
  let n = domains * per_domain in
  let m = Conc.Morris_conc.create ~seed:6L ~domains () in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        for _ = 1 to per_domain do
          Conc.Morris_conc.update m ~domain:i
        done)
  in
  let est = Conc.Morris_conc.estimate m in
  (* Base-2 Morris has large variance and the CAS-drop policy biases low
     under contention; accept a factor-8 band either way. *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within [%d, %d]" est (n / 8) (n * 8))
    true
    (est >= float_of_int (n / 8) && est <= float_of_int (n * 8));
  Alcotest.(check bool) "exponent sane" true (Conc.Morris_conc.exponent m <= 63)

let test_morris_conc_validation () =
  let m = Conc.Morris_conc.create ~seed:1L ~domains:2 () in
  Alcotest.check_raises "domain range"
    (Invalid_argument "Morris_conc.update: no such domain") (fun () ->
      Conc.Morris_conc.update m ~domain:5)

(* ------------------------- recorder ------------------------- *)

let test_recorder_well_formed_and_ordered () =
  let rec_ = Conc.Recorder.create ~domains:3 in
  let c = Conc.Ivl_counter.create ~procs:3 in
  let _ =
    Conc.Runner.parallel ~domains:3 (fun i ->
        for k = 1 to 5 do
          if i = 2 then
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Ivl_counter.read c))
          else
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 k (fun () ->
                Conc.Ivl_counter.update c ~proc:i k)
        done)
  in
  let h = Conc.Recorder.history rec_ in
  (match Hist.History.well_formed h with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "15 completed ops" 15 (List.length (Hist.History.completed h))

let test_recorder_program_order_preserved () =
  let rec_ = Conc.Recorder.create ~domains:2 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun i ->
        for k = 0 to 4 do
          Conc.Recorder.record_update rec_ ~domain:i ~obj:0 ((10 * i) + k) (fun () -> ())
        done)
  in
  let h = Conc.Recorder.history rec_ in
  (* Within each domain, update arguments must appear in issue order. *)
  List.iter
    (fun d ->
      let args =
        List.filter_map
          (fun (op : Test_helpers.iop) ->
            if op.Hist.Op.proc = d then
              match op.Hist.Op.kind with Hist.Op.Update u -> Some u | _ -> None
            else None)
          (Hist.History.ops h)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "domain %d order" d)
        (List.init 5 (fun k -> (10 * d) + k))
        args)
    [ 0; 1 ]

(* The recorder's global ticket respects real time across domains: if op A
   completes before op B is invoked (established here by flag-passing, so
   the order is genuine happens-before, not luck), A draws strictly smaller
   tickets and the merged history shows A ≺ B. Exercised as a ping-pong so
   every round crosses domains in both directions. *)
let test_recorder_tickets_respect_real_time () =
  let rounds = 100 in
  let rec_ = Conc.Recorder.create ~domains:2 in
  let turn = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:2 (fun i ->
        for k = 0 to rounds - 1 do
          let my_turn = (2 * k) + i in
          while Atomic.get turn <> my_turn do
            Domain.cpu_relax ()
          done;
          Conc.Recorder.record_update rec_ ~domain:i ~obj:0 my_turn (fun () ->
              ());
          Atomic.set turn (my_turn + 1)
        done)
  in
  let h = Conc.Recorder.history rec_ in
  let id_of_arg =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (op : Test_helpers.iop) ->
        match op.Hist.Op.kind with
        | Hist.Op.Update u -> Hashtbl.replace tbl u op.Hist.Op.id
        | _ -> ())
      (Hist.History.ops h);
    Hashtbl.find tbl
  in
  for a = 0 to (2 * rounds) - 2 do
    if not (Hist.History.precedes h (id_of_arg a) (id_of_arg (a + 1))) then
      Alcotest.failf
        "op %d completed before op %d was invoked, but the ticket order \
         disagrees"
        a (a + 1)
  done

(* The quiesce guard: merging buffers while a domain is mid-record is the
   classic misuse, and must now raise instead of returning racy garbage. *)
let test_recorder_history_guard_trips_mid_record () =
  let rec_ = Conc.Recorder.create ~domains:1 in
  let entered = Atomic.make false and release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Conc.Recorder.record_update rec_ ~domain:0 ~obj:0 1 (fun () ->
            Atomic.set entered true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  (try
     ignore (Conc.Recorder.history rec_);
     Alcotest.fail "history during an in-flight record did not raise"
   with Invalid_argument _ -> ());
  Atomic.set release true;
  Domain.join d;
  let h = Conc.Recorder.history rec_ in
  Alcotest.(check int)
    "after quiesce, history works" 1
    (List.length (Hist.History.completed h))

(* A chaos kill inside the recorded body must NOT wedge the guard: the
   domain stops recording when the exception propagates, so the pending op
   it leaves behind is legitimate history, not an active recorder. *)
let test_recorder_history_guard_clears_on_raise () =
  let rec_ = Conc.Recorder.create ~domains:1 in
  let d =
    Domain.spawn (fun () ->
        try
          Conc.Recorder.record_update rec_ ~domain:0 ~obj:0 1 (fun () ->
              raise Exit)
        with Exit -> ())
  in
  Domain.join d;
  let h = Conc.Recorder.history rec_ in
  Alcotest.(check int) "pending op survives" 1 (List.length (Hist.History.pending h));
  Alcotest.(check int) "no completed ops" 0 (List.length (Hist.History.completed h))

(* End-to-end Lemma 10 on hardware: recorded concurrent executions of the
   IVL counter are always IVL. Small op counts keep the checker exact. *)
let test_recorded_ivl_counter_histories_are_ivl () =
  for round = 1 to 30 do
    let rec_ = Conc.Recorder.create ~domains:3 in
    let c = Conc.Ivl_counter.create ~procs:2 in
    let _ =
      Conc.Runner.parallel ~domains:3 (fun i ->
          if i < 2 then
            for k = 1 to 3 do
              Conc.Recorder.record_update rec_ ~domain:i ~obj:0 k (fun () ->
                  Conc.Ivl_counter.update c ~proc:i k)
            done
          else
            for _ = 1 to 3 do
              ignore
                (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                     Conc.Ivl_counter.read c))
            done)
    in
    let h = Conc.Recorder.history rec_ in
    if not (Counter_check.is_ivl h) then
      Alcotest.failf "recorded execution %d not IVL:\n%s" round
        (Test_helpers.show_history h)
  done

(* End-to-end Lemma 7 on hardware: recorded concurrent PCM executions are
   IVL w.r.t. the CM spec sharing the same hash family. *)
let test_recorded_pcm_histories_are_ivl () =
  let family = Hashing.Family.seeded ~seed:123L ~rows:2 ~width:4 in
  let module Cm = Spec.Countmin_spec.Fixed (struct
    let family = family
  end) in
  let module Cm_check = Ivl.Check.Make (Cm) in
  for round = 1 to 30 do
    let rec_ = Conc.Recorder.create ~domains:3 in
    let pcm = Conc.Pcm.create ~family in
    let _ =
      Conc.Runner.parallel ~domains:3 (fun i ->
          if i < 2 then
            for k = 0 to 2 do
              let a = (i + k) mod 3 in
              Conc.Recorder.record_update rec_ ~domain:i ~obj:0 a (fun () ->
                  Conc.Pcm.update pcm a)
            done
          else
            for a = 0 to 2 do
              ignore
                (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 a (fun () ->
                     Conc.Pcm.query pcm a))
            done)
    in
    let h = Conc.Recorder.history rec_ in
    if not (Cm_check.is_ivl h) then
      Alcotest.failf "recorded PCM execution %d not IVL:\n%s" round
        (Test_helpers.show_history h)
  done


(* ------------------------- striped quantiles ------------------------- *)

let test_striped_quantiles_sequential () =
  let q = Conc.Striped_quantiles.create ~k:64 ~publish_every:8 ~seed:1L ~domains:2 () in
  for x = 1 to 100 do
    Conc.Striped_quantiles.update q ~domain:(x mod 2) x
  done;
  Conc.Striped_quantiles.flush_all q;
  Alcotest.(check int) "all published" 100 (Conc.Striped_quantiles.published q);
  Alcotest.(check int) "rank exact below capacity" 50 (Conc.Striped_quantiles.rank q 50);
  Alcotest.(check int) "ingested per stripe" 50 (Conc.Striped_quantiles.ingested q ~domain:0)

let test_striped_quantiles_publish_batching () =
  let q = Conc.Striped_quantiles.create ~k:64 ~publish_every:10 ~seed:2L ~domains:1 () in
  for x = 1 to 9 do
    Conc.Striped_quantiles.update q ~domain:0 x
  done;
  Alcotest.(check int) "nothing published below the batch" 0
    (Conc.Striped_quantiles.published q);
  Conc.Striped_quantiles.update q ~domain:0 10;
  Alcotest.(check int) "batch published" 10 (Conc.Striped_quantiles.published q);
  Conc.Striped_quantiles.update q ~domain:0 11;
  Alcotest.(check int) "stays at batch boundary" 10 (Conc.Striped_quantiles.published q);
  Conc.Striped_quantiles.flush q ~domain:0;
  Alcotest.(check int) "flush publishes the tail" 11 (Conc.Striped_quantiles.published q)

let test_striped_quantiles_concurrent_rank_envelope () =
  (* Writers ingest an ascending stream; a reader checks that rank estimates
     stay within the published/ingested envelope (±εn sketch error). *)
  let domains = 3 in
  let per_domain = 10_000 in
  let q =
    Conc.Striped_quantiles.create ~k:256 ~publish_every:32 ~seed:3L ~domains ()
  in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:(domains + 1) (fun i ->
        if i < domains then
          for x = 1 to per_domain do
            Conc.Striped_quantiles.update q ~domain:i x
          done
        else
          for _ = 1 to 500 do
            (* rank over everything is at most total ingested and at least 0;
               probe the top value so true rank = published count. *)
            let r = Conc.Striped_quantiles.rank q per_domain in
            let total = domains * per_domain in
            let slack = (total / 20) + (domains * 32) in
            if r < 0 || r > total + slack then
              ignore (Atomic.fetch_and_add violations 1)
          done)
  in
  Alcotest.(check int) "no envelope violations" 0 (Atomic.get violations);
  Conc.Striped_quantiles.flush_all q;
  let final = Conc.Striped_quantiles.rank q per_domain in
  let total = domains * per_domain in
  Alcotest.(check bool)
    (Printf.sprintf "final rank %d within 5%% of %d" final total)
    true
    (abs (final - total) <= total / 20)

let test_striped_quantiles_accuracy_vs_exact () =
  let domains = 4 in
  let q = Conc.Striped_quantiles.create ~k:256 ~publish_every:64 ~seed:4L ~domains () in
  let stream =
    Workload.Stream.generate ~seed:5L (Workload.Stream.Uniform 10_000) ~length:40_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:domains in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        Array.iter (fun x -> Conc.Striped_quantiles.update q ~domain:i x) chunks.(i))
  in
  Conc.Striped_quantiles.flush_all q;
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  List.iter
    (fun x ->
      let est = Conc.Striped_quantiles.rank q x and tru = Sketches.Exact.rank exact x in
      Alcotest.(check bool)
        (Printf.sprintf "rank(%d): |%d-%d| <= 2%%n" x est tru)
        true
        (abs (est - tru) <= 800))
    [ 1000; 5000; 9000 ];
  let med = Conc.Striped_quantiles.quantile q 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median %d near 5000" med)
    true
    (med > 4200 && med < 5800)

let test_striped_quantiles_validation () =
  let q = Conc.Striped_quantiles.create ~seed:1L ~domains:2 () in
  Alcotest.check_raises "bad domain"
    (Invalid_argument "Stripes: no such domain") (fun () ->
      Conc.Striped_quantiles.update q ~domain:7 1);
  Alcotest.check_raises "empty quantile" Not_found (fun () ->
      ignore (Conc.Striped_quantiles.quantile q 0.5))

(* ------------------------- buffered (delegation) PCM ------------------------- *)

let test_buffered_pcm_flush_semantics () =
  let family = Hashing.Family.seeded ~seed:10L ~rows:2 ~width:16 in
  let b = Conc.Buffered_pcm.create ~flush_every:5 ~family ~domains:1 () in
  for _ = 1 to 4 do
    Conc.Buffered_pcm.update b ~domain:0 7
  done;
  Alcotest.(check int) "buffered, invisible" 0 (Conc.Buffered_pcm.query b 7);
  Alcotest.(check int) "pending" 4 (Conc.Buffered_pcm.buffered b ~domain:0);
  Conc.Buffered_pcm.update b ~domain:0 7;
  Alcotest.(check int) "auto-flushed at budget" 5 (Conc.Buffered_pcm.query b 7);
  Alcotest.(check int) "buffer drained" 0 (Conc.Buffered_pcm.buffered b ~domain:0)

let test_buffered_pcm_matches_pcm_after_flush () =
  let family = Hashing.Family.seeded ~seed:11L ~rows:3 ~width:32 in
  let b = Conc.Buffered_pcm.create ~flush_every:64 ~family ~domains:4 () in
  let reference = Sketches.Countmin.create ~family in
  let stream =
    Workload.Stream.generate ~seed:12L (Workload.Stream.Zipf (100, 1.2)) ~length:20_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        Array.iter (fun a -> Conc.Buffered_pcm.update b ~domain:i a) chunks.(i))
  in
  Conc.Buffered_pcm.flush_all b;
  Array.iter (Sketches.Countmin.update reference) stream;
  Alcotest.(check int) "updates all flushed" 20_000 (Conc.Buffered_pcm.flushed_updates b);
  for a = 0 to 99 do
    Alcotest.(check int)
      (Printf.sprintf "element %d" a)
      (Sketches.Countmin.query reference a)
      (Conc.Buffered_pcm.query b a)
  done

let test_buffered_pcm_never_overcounts_ingest () =
  (* Mid-flight queries see at most what has been ingested (flushes only move
     buffered counts, never invent them). *)
  let family = Hashing.Family.seeded ~seed:13L ~rows:2 ~width:8 in
  let b = Conc.Buffered_pcm.create ~flush_every:16 ~family ~domains:2 () in
  let probe = 3 in
  let violations = Atomic.make 0 in
  let per_domain = 20_000 in
  let _ =
    Conc.Runner.parallel ~domains:3 (fun i ->
        if i < 2 then
          for _ = 1 to per_domain do
            Conc.Buffered_pcm.update b ~domain:i probe
          done
        else
          for _ = 1 to 2_000 do
            if Conc.Buffered_pcm.query b probe > 2 * per_domain then
              ignore (Atomic.fetch_and_add violations 1)
          done)
  in
  Alcotest.(check int) "no overcount" 0 (Atomic.get violations)


(* ------------------------- concurrent HyperLogLog ------------------------- *)

let test_hll_conc_matches_sequential () =
  (* Same seed, same elements, ingested sequentially: register files must
     coincide exactly. *)
  let seed = 42L in
  let c = Conc.Hll_conc.create ~p:10 ~seed () in
  let s = Sketches.Hyperloglog.create ~p:10 ~seed () in
  for x = 1 to 5_000 do
    Conc.Hll_conc.update c x;
    Sketches.Hyperloglog.update s x
  done;
  Alcotest.(check (array int)) "identical registers"
    (Sketches.Hyperloglog.registers s)
    (Sketches.Hyperloglog.registers (Conc.Hll_conc.to_sequential c))

let test_hll_conc_concurrent_accuracy () =
  let seed = 43L in
  let c = Conc.Hll_conc.create ~p:12 ~seed () in
  let true_distinct = 80_000 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        let lo = (i * true_distinct / 4) + 1 in
        let hi = (i + 1) * true_distinct / 4 in
        for x = lo to hi do
          Conc.Hll_conc.update c x;
          (* Duplicates across domains must not inflate the count. *)
          if x mod 5 = 0 then Conc.Hll_conc.update c ((x mod 100) + 1)
        done)
  in
  let est = Conc.Hll_conc.estimate c in
  let rel = abs_float (est -. float_of_int true_distinct) /. float_of_int true_distinct in
  Alcotest.(check bool) (Printf.sprintf "relative error %.3f < 0.06" rel) true (rel < 0.06)

let test_hll_conc_estimates_monotone_under_ingest () =
  let c = Conc.Hll_conc.create ~p:10 ~seed:44L () in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:3 (fun i ->
        if i < 2 then
          for x = 1 to 50_000 do
            Conc.Hll_conc.update c ((i * 50_000) + x)
          done
        else begin
          let prev = ref 0.0 in
          for _ = 1 to 2_000 do
            let e = Conc.Hll_conc.estimate c in
            (* Small-range linear counting is monotone too; allow epsilon for
               float noise. *)
            if e < !prev -. 1e-6 then ignore (Atomic.fetch_and_add violations 1);
            prev := e
          done
        end)
  in
  Alcotest.(check int) "monotone estimates" 0 (Atomic.get violations)

let test_hll_conc_merge_from () =
  let seed = 45L in
  let c = Conc.Hll_conc.create ~p:10 ~seed () in
  let local = Sketches.Hyperloglog.create ~p:10 ~seed () in
  for x = 1 to 10_000 do
    Sketches.Hyperloglog.update local x
  done;
  Conc.Hll_conc.merge_from c local;
  let est = Conc.Hll_conc.estimate c in
  let rel = abs_float (est -. 10_000.0) /. 10_000.0 in
  Alcotest.(check bool) (Printf.sprintf "published batch visible (%.3f)" rel) true
    (rel < 0.1)

(* ------------------------- large-scale recorded validation ------------------------- *)

let test_recorded_large_execution_via_monotone_checker () =
  (* Thousands of recorded operations — far past the exact checker's cap —
     validated with the monotone fast path (Ivl.Monotone): every concurrent
     read of the IVL counter lies within its envelope. *)
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let writers = 3 in
  let rec_ = Conc.Recorder.create ~domains:(writers + 1) in
  let c = Conc.Ivl_counter.create ~procs:writers in
  let _ =
    Conc.Runner.parallel ~domains:(writers + 1) (fun i ->
        if i < writers then
          for k = 1 to 2_000 do
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 (k mod 7) (fun () ->
                Conc.Ivl_counter.update c ~proc:i (k mod 7))
          done
        else
          for _ = 1 to 500 do
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Ivl_counter.read c))
          done)
  in
  let h = Conc.Recorder.history rec_ in
  Alcotest.(check int) "6500 ops recorded" 6500 (List.length (Hist.History.completed h));
  match Mono.violations h with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "envelope violation: ret=%s not in [%d,%d]"
        (match e.Mono.op.Hist.Op.ret with Some v -> string_of_int v | None -> "?")
        e.Mono.low e.Mono.high


(* ------------------------- striped top-k ------------------------- *)

let test_striped_topk_sequential () =
  let t = Conc.Striped_topk.create ~capacity:16 ~publish_every:4 ~seed:1L ~domains:2 () in
  List.iter (fun a -> Conc.Striped_topk.update t ~domain:0 a) [ 1; 1; 1; 2 ];
  List.iter (fun a -> Conc.Striped_topk.update t ~domain:1 a) [ 1; 3; 3; 2 ];
  (* Both stripes hit their publish batch exactly. *)
  Alcotest.(check int) "published" 8 (Conc.Striped_topk.published t);
  Alcotest.(check int) "merged count of 1" 4 (Conc.Striped_topk.query t 1);
  Alcotest.(check int) "merged count of 3" 2 (Conc.Striped_topk.query t 3);
  match Conc.Striped_topk.top t ~k:1 () with
  | [ (elt, count) ] ->
      Alcotest.(check int) "top element" 1 elt;
      Alcotest.(check int) "top count" 4 count
  | _ -> Alcotest.fail "expected a single top entry"

let test_striped_topk_concurrent_recall () =
  let domains = 4 in
  let t =
    Conc.Striped_topk.create ~capacity:128 ~publish_every:64 ~seed:2L ~domains ()
  in
  let stream =
    Workload.Stream.generate ~seed:3L (Workload.Stream.Zipf (5_000, 1.4)) ~length:60_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:domains in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        Array.iter (fun a -> Conc.Striped_topk.update t ~domain:i a) chunks.(i))
  in
  Conc.Striped_topk.flush_all t;
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  (* Every 1% heavy hitter is found with a count that never under-estimates
     by more than the guaranteed merge error. *)
  let err = Conc.Striped_topk.guaranteed_error t in
  List.iter
    (fun (elt, f) ->
      let est = Conc.Striped_topk.query t elt in
      Alcotest.(check bool)
        (Printf.sprintf "heavy %d: est %d vs true %d (err bound %d)" elt est f err)
        true
        (est >= f - err && est <= f + err))
    (Sketches.Exact.heavy_hitters exact ~threshold:0.01);
  let top10 = Conc.Striped_topk.top t ~k:10 () in
  Alcotest.(check int) "top-10 size" 10 (List.length top10);
  (* The true #1 must appear first (zipf head is far above the error). *)
  match top10 with
  | (elt, _) :: _ -> Alcotest.(check int) "true head found" 0 elt
  | [] -> Alcotest.fail "empty top"

let test_striped_topk_validation () =
  let t = Conc.Striped_topk.create ~seed:1L ~domains:2 () in
  Alcotest.check_raises "bad domain"
    (Invalid_argument "Stripes: no such domain") (fun () ->
      Conc.Striped_topk.update t ~domain:9 1);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Striped_topk.create: capacity must be positive") (fun () ->
      ignore (Conc.Striped_topk.create ~capacity:0 ~seed:1L ~domains:1 ()))


(* ------------------------- striped KMV + cross-validation ------------------------- *)

let test_striped_kmv_accuracy () =
  let domains = 4 in
  let t = Conc.Striped_kmv.create ~k:512 ~publish_every:128 ~seed:77L ~domains () in
  let true_distinct = 60_000 in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        (* Overlapping slices: every domain sees half the universe. *)
        for x = 1 to true_distinct do
          if (x + i) mod 2 = 0 then Conc.Striped_kmv.update t ~domain:i x
        done;
        for x = 1 to true_distinct do
          if (x + i) mod 2 = 1 then Conc.Striped_kmv.update t ~domain:i x
        done)
  in
  Conc.Striped_kmv.flush_all t;
  let est = Conc.Striped_kmv.estimate t in
  let rel = abs_float (est -. float_of_int true_distinct) /. float_of_int true_distinct in
  Alcotest.(check bool) (Printf.sprintf "relative error %.3f < 0.2" rel) true (rel < 0.2);
  Alcotest.(check bool) "merged view bounded by k" true
    (Conc.Striped_kmv.retained t <= 512)

let test_striped_kmv_exact_below_k () =
  let t = Conc.Striped_kmv.create ~k:128 ~publish_every:4 ~seed:78L ~domains:2 () in
  for x = 1 to 40 do
    Conc.Striped_kmv.update t ~domain:(x mod 2) x
  done;
  Conc.Striped_kmv.flush_all t;
  Alcotest.(check (float 0.0)) "exact union below k" 40.0 (Conc.Striped_kmv.estimate t)

let test_distinct_counters_agree () =
  (* Two structurally different distinct counters (HLL and KMV) on the same
     concurrent stream must agree within their combined error budgets. *)
  let hll = Conc.Hll_conc.create ~p:12 ~seed:79L () in
  let kmv = Conc.Striped_kmv.create ~k:512 ~seed:80L ~domains:4 () in
  let stream =
    Workload.Stream.generate ~seed:81L (Workload.Stream.Uniform 1_000_000) ~length:50_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        Array.iter
          (fun x ->
            Conc.Hll_conc.update hll x;
            Conc.Striped_kmv.update kmv ~domain:i x)
          chunks.(i))
  in
  Conc.Striped_kmv.flush_all kmv;
  let a = Conc.Hll_conc.estimate hll and b = Conc.Striped_kmv.estimate kmv in
  let rel = abs_float (a -. b) /. Float.max a b in
  Alcotest.(check bool)
    (Printf.sprintf "HLL %.0f vs KMV %.0f agree within 15%%" a b)
    true (rel < 0.15)


(* ------------------------- stripes scaffold ------------------------- *)

(* Drive Stripes.Make directly with the simplest possible sketch (a counter
   cell) so the publish-boundary arithmetic is visible without any sketch
   noise on top. *)
module Int_stripes = Conc.Stripes.Make (struct
  type t = int ref

  let copy r = ref !r
end)

let int_stripes_published t =
  Array.fold_left (fun acc v -> acc + !v) 0 (Int_stripes.views t)

let test_stripes_publish_every_one () =
  (* publish_every = 1: every update is visible in the views immediately —
     the zero-staleness corner the recorded-IVL tests rely on. *)
  let t = Int_stripes.create ~publish_every:1 ~domains:2 (fun _ -> ref 0) in
  for k = 1 to 5 do
    Int_stripes.update t ~domain:0 incr;
    Alcotest.(check int) (Printf.sprintf "update %d published" k) k
      (int_stripes_published t)
  done

let test_stripes_exact_multiple_batches () =
  (* A stream that is an exact multiple of publish_every leaves nothing
     buffered: the boundary publish must fire on the last update, not one
     update later. *)
  let t = Int_stripes.create ~publish_every:4 ~domains:1 (fun _ -> ref 0) in
  for _ = 1 to 8 do
    Int_stripes.update t ~domain:0 incr
  done;
  Alcotest.(check int) "two full batches all published" 8
    (int_stripes_published t);
  Int_stripes.update t ~domain:0 incr;
  Alcotest.(check int) "ninth update buffered, views unchanged" 8
    (int_stripes_published t);
  Alcotest.(check int) "local sees it" 9 !(Int_stripes.local t ~domain:0)

let test_stripes_flush_resets_since_publish () =
  (* flush must reset the batch countdown: after a mid-batch flush the next
     publish happens publish_every updates later, not at the stale
     boundary. *)
  let t = Int_stripes.create ~publish_every:4 ~domains:1 (fun _ -> ref 0) in
  Int_stripes.update t ~domain:0 incr;
  Int_stripes.update t ~domain:0 incr;
  Alcotest.(check int) "mid-batch, nothing published" 0 (int_stripes_published t);
  Int_stripes.flush t ~domain:0;
  Alcotest.(check int) "flush publishes the partial batch" 2
    (int_stripes_published t);
  for _ = 1 to 3 do
    Int_stripes.update t ~domain:0 incr
  done;
  Alcotest.(check int) "countdown restarted: 3 more stay buffered" 2
    (int_stripes_published t);
  Int_stripes.update t ~domain:0 incr;
  Alcotest.(check int) "fourth post-flush update publishes" 6
    (int_stripes_published t)

let test_stripes_domains_independent () =
  (* One domain's publishes must not flush a sibling's buffered updates. *)
  let t = Int_stripes.create ~publish_every:2 ~domains:2 (fun _ -> ref 0) in
  Int_stripes.update t ~domain:0 incr;
  Int_stripes.update t ~domain:1 incr;
  Alcotest.(check int) "both buffered" 0 (int_stripes_published t);
  Int_stripes.update t ~domain:0 incr;
  Alcotest.(check int) "only domain 0 published" 2 (int_stripes_published t);
  Int_stripes.flush_all t;
  Alcotest.(check int) "flush_all publishes the rest" 3 (int_stripes_published t)

(* ------------------------- striped totals ------------------------- *)

let test_striped_total_basics () =
  let t = Conc.Striped_total.create ~slots:4 in
  Alcotest.(check int) "empty" 0 (Conc.Striped_total.read t);
  Conc.Striped_total.add t 5;
  Conc.Striped_total.add t 7;
  Alcotest.(check int) "sums across slots" 12 (Conc.Striped_total.read t);
  Alcotest.check_raises "slots must be positive"
    (Invalid_argument "Striped_total.create: slots must be positive") (fun () ->
      ignore (Conc.Striped_total.create ~slots:0))

let test_striped_updates_envelope () =
  (* Pcm.updates is an intermediate-value read of the striped total: while
     writers run it must stay within [0, total] and be monotone for a
     single reader; after the join it must be exact. *)
  let family = Hashing.Family.seeded ~seed:210L ~rows:2 ~width:64 in
  let pcm = Conc.Pcm.create ~family in
  let writers = 3 in
  let per_writer = 30_000 in
  let total = writers * per_writer in
  let violations = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:(writers + 1) (fun i ->
        if i < writers then
          for k = 1 to per_writer do
            Conc.Pcm.update pcm (k mod 50)
          done
        else begin
          let prev = ref 0 in
          for _ = 1 to 2_000 do
            let n = Conc.Pcm.updates pcm in
            if n < !prev || n > total then
              ignore (Atomic.fetch_and_add violations 1);
            prev := n
          done
        end)
  in
  Alcotest.(check int) "reads monotone and bounded" 0 (Atomic.get violations);
  Alcotest.(check int) "exact after join" total (Conc.Pcm.updates pcm)

let test_pcm_update_many_large_counts () =
  (* Counts near the int extreme: two half-max batches must accumulate
     without wrapping in the cells or the striped total. *)
  let family = Hashing.Family.seeded ~seed:211L ~rows:2 ~width:8 in
  let pcm = Conc.Pcm.create ~family in
  let half = max_int / 2 in
  Conc.Pcm.update_many pcm 3 ~count:half;
  Alcotest.(check int) "first half counted" half (Conc.Pcm.query pcm 3);
  Conc.Pcm.update_many pcm 3 ~count:half;
  Alcotest.(check int) "cells accumulate to max_int - 1" (half * 2)
    (Conc.Pcm.query pcm 3);
  Alcotest.(check int) "updates total matches" (half * 2) (Conc.Pcm.updates pcm);
  Alcotest.(check bool) "no wrap to negative" true (Conc.Pcm.query pcm 3 > 0)

let test_countmin_update_many_edges () =
  let family = Hashing.Family.seeded ~seed:212L ~rows:2 ~width:8 in
  let cm = Sketches.Countmin.create ~family in
  Sketches.Countmin.update_many cm 4 ~count:0;
  Alcotest.(check int) "count 0 is a no-op" 0 (Sketches.Countmin.updates cm);
  Sketches.Countmin.update_many cm 4 ~count:9;
  Alcotest.(check int) "weighted" 9 (Sketches.Countmin.query cm 4);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Countmin.update_many: count must be non-negative")
    (fun () -> Sketches.Countmin.update_many cm 4 ~count:(-2))

let test_pcm_update_many_equivalence () =
  let family = Hashing.Family.seeded ~seed:200L ~rows:3 ~width:16 in
  let a = Conc.Pcm.create ~family and b = Conc.Pcm.create ~family in
  for _ = 1 to 7 do
    Conc.Pcm.update a 5
  done;
  Conc.Pcm.update_many b 5 ~count:7;
  for x = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "query %d equal" x) (Conc.Pcm.query a x)
      (Conc.Pcm.query b x)
  done;
  Alcotest.(check int) "n equal" (Conc.Pcm.updates a) (Conc.Pcm.updates b);
  Conc.Pcm.update_many b 5 ~count:0;
  Alcotest.(check int) "count 0 is a no-op" 7 (Conc.Pcm.updates b);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Pcm.update_many: count must be non-negative") (fun () ->
      Conc.Pcm.update_many b 5 ~count:(-1))

let test_pcm_merge_into_folds_delta () =
  (* merge_into must equal replaying the delta's stream into the PCM —
     cell-wise, not just on queries — and must reject foreign coins. *)
  let family = Hashing.Family.seeded ~seed:201L ~rows:3 ~width:16 in
  let pcm = Conc.Pcm.create ~family and replay = Conc.Pcm.create ~family in
  let base = List.init 200 (fun i -> i * 3 mod 40)
  and delta_stream = List.init 150 (fun i -> i * 11 mod 40) in
  List.iter (Conc.Pcm.update pcm) base;
  List.iter (Conc.Pcm.update replay) base;
  let delta = Sketches.Countmin.create ~family in
  List.iter (Sketches.Countmin.update delta) delta_stream;
  Conc.Pcm.merge_into pcm delta;
  List.iter (Conc.Pcm.update replay) delta_stream;
  for x = 0 to 39 do
    Alcotest.(check int)
      (Printf.sprintf "query %d equal" x)
      (Conc.Pcm.query replay x) (Conc.Pcm.query pcm x)
  done;
  Alcotest.(check int) "n accumulates" 350 (Conc.Pcm.updates pcm);
  Alcotest.check_raises "foreign family rejected"
    (Invalid_argument "Pcm.merge_into: delta must share a compatible hash family")
    (fun () ->
      Conc.Pcm.merge_into pcm
        (Sketches.Countmin.create
           ~family:(Hashing.Family.seeded ~seed:202L ~rows:3 ~width:16)))

let test_pcm_merge_into_concurrent () =
  (* Concurrent mergers: one atomic add per cell means deltas merged from
     several domains still sum exactly. *)
  let family = Hashing.Family.seeded ~seed:203L ~rows:3 ~width:16 in
  let pcm = Conc.Pcm.create ~family in
  let mergers = 4 and per = 25 in
  ignore
    (Conc.Runner.parallel ~domains:mergers (fun d ->
         for k = 1 to per do
           let delta = Sketches.Countmin.create ~family in
           Sketches.Countmin.update delta ((d + k) mod 40);
           Conc.Pcm.merge_into pcm delta
         done));
  let replay = Sketches.Countmin.create ~family in
  for d = 0 to mergers - 1 do
    for k = 1 to per do
      Sketches.Countmin.update replay ((d + k) mod 40)
    done
  done;
  Alcotest.(check int) "n exact" (mergers * per) (Conc.Pcm.updates pcm);
  for x = 0 to 39 do
    Alcotest.(check int)
      (Printf.sprintf "query %d exact" x)
      (Sketches.Countmin.query replay x) (Conc.Pcm.query pcm x)
  done

let test_runner_propagates_exceptions () =
  match Conc.Runner.parallel ~domains:2 (fun i -> if i = 1 then failwith "boom" else 0) with
  | exception Failure m -> Alcotest.(check string) "exception surfaces" "boom" m
  | _ -> Alcotest.fail "expected the domain's exception"

(* ------------------------- hardened barrier ------------------------- *)

let test_barrier_poison_breaks_waiters () =
  let b = Conc.Barrier.create 2 in
  Alcotest.(check int) "parties" 2 (Conc.Barrier.parties b);
  Alcotest.(check bool) "starts intact" false (Conc.Barrier.is_broken b);
  Conc.Barrier.poison b "root cause";
  Conc.Barrier.poison b "secondary failure";
  Alcotest.(check bool) "broken" true (Conc.Barrier.is_broken b);
  match Conc.Barrier.await b with
  | exception Conc.Barrier.Broken msg ->
      (* The first poisoner's message wins — it names the root cause. *)
      Alcotest.(check string) "first poison message kept" "root cause" msg
  | () -> Alcotest.fail "expected Broken"

let test_barrier_timeout_raises_broken () =
  (* A 2-party barrier awaited by one party alone: the spin deadline turns
     the would-be livelock into a Broken diagnostic, poisoning the barrier
     for everyone else too. *)
  let b = Conc.Barrier.create ~timeout_s:0.05 2 in
  (match Conc.Barrier.await b with
  | exception Conc.Barrier.Broken msg ->
      Alcotest.(check bool) "diagnostic mentions the timeout" true
        (String.length msg > 0)
  | () -> Alcotest.fail "expected a timeout");
  Alcotest.(check bool) "left poisoned" true (Conc.Barrier.is_broken b)

let test_barrier_create_validation () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier.create: parties must be positive") (fun () ->
      ignore (Conc.Barrier.create 0));
  Alcotest.check_raises "zero timeout"
    (Invalid_argument "Barrier.create: timeout must be positive") (fun () ->
      ignore (Conc.Barrier.create ~timeout_s:0.0 2))

let test_parallel_timed_measures () =
  let results, dt =
    Conc.Runner.parallel_timed ~domains:3 (fun i b ->
        Conc.Barrier.await b;
        i * 2)
  in
  Alcotest.(check (array int)) "per-domain results" [| 0; 2; 4 |] results;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

let test_parallel_timed_prebarrier_raise_no_hang () =
  (* The regression this PR fixes: a worker dying before the start barrier
     used to leave the coordinator and every sibling spinning forever. Now
     the barrier is poisoned, all domains join, and the worker's original
     exception (not the siblings' consequent Broken) propagates. *)
  match
    Conc.Runner.parallel_timed ~domains:2 (fun i b ->
        if i = 1 then failwith "died before the barrier";
        Conc.Barrier.await b;
        i)
  with
  | exception Failure m ->
      Alcotest.(check string) "original exception" "died before the barrier" m
  | exception e ->
      Alcotest.failf "expected the worker's own exception, got %s"
        (Printexc.to_string e)
  | _ -> Alcotest.fail "expected an exception"

let test_parallel_result_isolates_failures () =
  let results =
    Conc.Runner.parallel_result ~domains:3 (fun i ->
        if i = 1 then failwith "partial" else i * 10)
  in
  (match results.(0) with
  | Ok v -> Alcotest.(check int) "domain 0 ok" 0 v
  | Error _ -> Alcotest.fail "domain 0 should succeed");
  (match results.(1) with
  | Error (Failure m) -> Alcotest.(check string) "domain 1 failed" "partial" m
  | _ -> Alcotest.fail "domain 1 should fail");
  match results.(2) with
  | Ok v -> Alcotest.(check int) "domain 2 ok" 20 v
  | Error _ -> Alcotest.fail "domain 2 should succeed"

(* ------------------------- chaos injection ------------------------- *)

let test_chaos_kill_point_deterministic () =
  let plan = Conc.Chaos.plan ~kills:[ (0, 7) ] ~seed:4L () in
  let run () =
    let t = Conc.Chaos.instantiate plan ~domains:1 in
    (try
       while true do
         Conc.Chaos.point t ~domain:0
       done
     with Conc.Chaos.Killed { domain = 0; point } ->
       Alcotest.(check int) "killed at the chosen point" 7 point);
    Alcotest.(check (list int)) "marked dead" [ 0 ] (Conc.Chaos.killed t);
    Conc.Chaos.points_passed t ~domain:0
  in
  Alcotest.(check int) "dies at its 7th injection point" 7 (run ());
  Alcotest.(check int) "reproducible" (run ()) (run ())

let test_chaos_no_kills_counts_points () =
  let plan = Conc.Chaos.plan ~yield_prob:0.0 ~stall_prob:0.0 ~seed:2L () in
  let t = Conc.Chaos.instantiate plan ~domains:2 in
  for _ = 1 to 25 do
    Conc.Chaos.point t ~domain:1
  done;
  Alcotest.(check int) "points counted" 25 (Conc.Chaos.points_passed t ~domain:1);
  Alcotest.(check int) "untouched domain" 0 (Conc.Chaos.points_passed t ~domain:0);
  Alcotest.(check (list int)) "nobody killed" [] (Conc.Chaos.killed t)

let test_chaos_random_kills_well_formed () =
  let kills = Conc.Chaos.random_kills ~seed:11L ~domains:4 ~victims:3 ~max_point:9 in
  Alcotest.(check int) "three victims" 3 (List.length kills);
  let ds = List.map fst kills in
  Alcotest.(check int) "victims distinct" 3
    (List.length (List.sort_uniq Int.compare ds));
  List.iter
    (fun (d, p) ->
      Alcotest.(check bool) "domain in range" true (d >= 0 && d < 4);
      Alcotest.(check bool) "kill point in range" true (p >= 1 && p <= 9))
    kills;
  Alcotest.check_raises "too many victims"
    (Invalid_argument "Chaos.random_kills: victims must be in [0, domains]")
    (fun () ->
      ignore (Conc.Chaos.random_kills ~seed:1L ~domains:2 ~victims:3 ~max_point:5))

let test_chaos_plan_validation () =
  Alcotest.check_raises "probability range"
    (Invalid_argument "Chaos.plan: yield_prob must be in [0,1]") (fun () ->
      ignore (Conc.Chaos.plan ~yield_prob:1.5 ~seed:1L ()));
  Alcotest.check_raises "kill points 1-based"
    (Invalid_argument "Chaos.plan: kill points are 1-based") (fun () ->
      ignore (Conc.Chaos.plan ~kills:[ (0, 0) ] ~seed:1L ()))

let test_chaos_kill_lands_mid_operation () =
  (* The whole point of the harness: a kill placed inside a recorded update
     body leaves exactly one pending operation, owned by the victim, and the
     recorded history still satisfies the counter's IVL envelope. *)
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let domains = 3 in
  let plan =
    Conc.Chaos.plan ~yield_prob:0.1 ~stall_prob:0.0 ~kills:[ (1, 5) ] ~seed:9L ()
  in
  let chaos = Conc.Chaos.instantiate plan ~domains in
  let rec_ = Conc.Recorder.create ~domains in
  let c = Conc.Ivl_counter.create ~procs:(domains - 1) in
  let results =
    Conc.Runner.parallel_result ~domains (fun i ->
        for k = 1 to 10 do
          if i = domains - 1 then
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Chaos.point chaos ~domain:i;
                   Conc.Ivl_counter.read c))
          else
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 k (fun () ->
                Conc.Chaos.point chaos ~domain:i;
                Conc.Ivl_counter.update c ~proc:i k)
        done)
  in
  Alcotest.(check (list int)) "victim recorded as killed" [ 1 ]
    (Conc.Chaos.killed chaos);
  (match results.(1) with
  | Error (Conc.Chaos.Killed { domain = 1; point = 5 }) -> ()
  | _ -> Alcotest.fail "expected domain 1 to die at its 5th injection point");
  (match (results.(0), results.(2)) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "survivors must complete");
  let h = Conc.Recorder.history rec_ in
  (match Hist.History.well_formed h with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let pending = Hist.History.pending h in
  Alcotest.(check int) "exactly one pending op" 1 (List.length pending);
  Alcotest.(check int) "pending op is the victim's" 1
    (List.hd pending).Hist.Op.proc;
  (* Survivors completed all 10 each; the victim completed 4 before dying. *)
  Alcotest.(check int) "completed ops" 24
    (List.length (Hist.History.completed h));
  match Mono.violations h with
  | [] -> ()
  | _ -> Alcotest.fail "chaos run violated the IVL envelope"

let () =
  Alcotest.run "conc"
    [
      ( "infrastructure",
        [
          Alcotest.test_case "barrier releases all" `Quick test_barrier_releases_all;
          Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "runner results" `Quick test_runner_parallel_results;
          Alcotest.test_case "runner propagates exceptions" `Quick
            test_runner_propagates_exceptions;
          Alcotest.test_case "barrier poison" `Quick test_barrier_poison_breaks_waiters;
          Alcotest.test_case "barrier timeout" `Quick test_barrier_timeout_raises_broken;
          Alcotest.test_case "barrier validation" `Quick test_barrier_create_validation;
          Alcotest.test_case "parallel_timed measures" `Quick test_parallel_timed_measures;
          Alcotest.test_case "parallel_timed pre-barrier raise" `Quick
            test_parallel_timed_prebarrier_raise_no_hang;
          Alcotest.test_case "parallel_result isolates failures" `Quick
            test_parallel_result_isolates_failures;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill point deterministic" `Quick
            test_chaos_kill_point_deterministic;
          Alcotest.test_case "no kills counts points" `Quick
            test_chaos_no_kills_counts_points;
          Alcotest.test_case "random kills well-formed" `Quick
            test_chaos_random_kills_well_formed;
          Alcotest.test_case "plan validation" `Quick test_chaos_plan_validation;
          Alcotest.test_case "kill lands mid-operation" `Quick
            test_chaos_kill_lands_mid_operation;
        ] );
      ( "ivl counter",
        [
          Alcotest.test_case "sequential" `Quick test_ivl_counter_sequential;
          Alcotest.test_case "validation" `Quick test_ivl_counter_validation;
          Alcotest.test_case "concurrent total" `Quick test_ivl_counter_concurrent_total;
          Alcotest.test_case "reads bounded and monotone" `Quick
            test_ivl_counter_reads_bounded_and_monotone;
        ] );
      ( "linearizable counters",
        [
          Alcotest.test_case "locked" `Quick test_locked_counter_concurrent;
          Alcotest.test_case "faa" `Quick test_faa_counter_concurrent;
        ] );
      ( "pcm",
        [
          Alcotest.test_case "sequential reference" `Quick
            test_pcm_sequential_matches_reference;
          Alcotest.test_case "concurrent cells exact" `Quick
            test_pcm_concurrent_ingest_exact_cells;
          Alcotest.test_case "concurrent queries bounded" `Quick
            test_pcm_concurrent_queries_bounded;
          Alcotest.test_case "locked baseline" `Quick test_locked_countmin_concurrent;
          Alcotest.test_case "merge_into folds a delta" `Quick
            test_pcm_merge_into_folds_delta;
          Alcotest.test_case "merge_into concurrent" `Quick
            test_pcm_merge_into_concurrent;
          Alcotest.test_case "update_many equivalence" `Quick
            test_pcm_update_many_equivalence;
          Alcotest.test_case "update_many large counts" `Quick
            test_pcm_update_many_large_counts;
          Alcotest.test_case "countmin update_many edges" `Quick
            test_countmin_update_many_edges;
          Alcotest.test_case "striped total basics" `Quick test_striped_total_basics;
          Alcotest.test_case "striped updates envelope" `Quick
            test_striped_updates_envelope;
        ] );
      ( "stripes",
        [
          Alcotest.test_case "publish_every 1 is immediate" `Quick
            test_stripes_publish_every_one;
          Alcotest.test_case "exact-multiple batches" `Quick
            test_stripes_exact_multiple_batches;
          Alcotest.test_case "flush resets since_publish" `Quick
            test_stripes_flush_resets_since_publish;
          Alcotest.test_case "domains independent" `Quick
            test_stripes_domains_independent;
        ] );
      ( "flat_pcm",
        [
          Alcotest.test_case "sequential reference" `Quick
            test_flat_pcm_sequential_matches_reference;
          Alcotest.test_case "concurrent cells exact" `Quick
            test_flat_pcm_concurrent_cells_exact;
          Alcotest.test_case "publish batching" `Quick test_flat_pcm_publish_batching;
          Alcotest.test_case "concurrent queries bounded" `Quick
            test_flat_pcm_concurrent_queries_bounded;
          Alcotest.test_case "theorem 6 bound" `Quick test_flat_pcm_theorem6_bound;
          Alcotest.test_case "update_many" `Quick test_flat_pcm_update_many;
          Alcotest.test_case "validation" `Quick test_flat_pcm_validation;
          Alcotest.test_case "recorded histories are IVL" `Quick
            test_recorded_flat_pcm_histories_are_ivl;
        ] );
      ( "morris",
        [
          Alcotest.test_case "sequential path" `Quick test_morris_conc_sequential_path;
          Alcotest.test_case "concurrent ballpark" `Quick
            test_morris_conc_concurrent_ballpark;
          Alcotest.test_case "validation" `Quick test_morris_conc_validation;
        ] );
      ( "striped quantiles",
        [
          Alcotest.test_case "sequential" `Quick test_striped_quantiles_sequential;
          Alcotest.test_case "publish batching" `Quick
            test_striped_quantiles_publish_batching;
          Alcotest.test_case "concurrent envelope" `Quick
            test_striped_quantiles_concurrent_rank_envelope;
          Alcotest.test_case "accuracy vs exact" `Quick
            test_striped_quantiles_accuracy_vs_exact;
          Alcotest.test_case "validation" `Quick test_striped_quantiles_validation;
        ] );
      ( "buffered pcm",
        [
          Alcotest.test_case "flush semantics" `Quick test_buffered_pcm_flush_semantics;
          Alcotest.test_case "matches pcm after flush" `Quick
            test_buffered_pcm_matches_pcm_after_flush;
          Alcotest.test_case "never overcounts" `Quick
            test_buffered_pcm_never_overcounts_ingest;
        ] );
      ( "striped top-k",
        [
          Alcotest.test_case "sequential" `Quick test_striped_topk_sequential;
          Alcotest.test_case "concurrent recall" `Quick test_striped_topk_concurrent_recall;
          Alcotest.test_case "validation" `Quick test_striped_topk_validation;
        ] );
      ( "striped kmv",
        [
          Alcotest.test_case "accuracy" `Quick test_striped_kmv_accuracy;
          Alcotest.test_case "exact below k" `Quick test_striped_kmv_exact_below_k;
          Alcotest.test_case "distinct counters agree" `Quick
            test_distinct_counters_agree;
        ] );
      ( "concurrent hyperloglog",
        [
          Alcotest.test_case "matches sequential" `Quick test_hll_conc_matches_sequential;
          Alcotest.test_case "concurrent accuracy" `Quick
            test_hll_conc_concurrent_accuracy;
          Alcotest.test_case "monotone estimates" `Quick
            test_hll_conc_estimates_monotone_under_ingest;
          Alcotest.test_case "merge_from" `Quick test_hll_conc_merge_from;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "well-formed" `Quick test_recorder_well_formed_and_ordered;
          Alcotest.test_case "program order" `Quick test_recorder_program_order_preserved;
          Alcotest.test_case "tickets respect real time" `Quick
            test_recorder_tickets_respect_real_time;
          Alcotest.test_case "history guard trips mid-record" `Quick
            test_recorder_history_guard_trips_mid_record;
          Alcotest.test_case "history guard clears on raise" `Quick
            test_recorder_history_guard_clears_on_raise;
          Alcotest.test_case "recorded IVL counter is IVL" `Quick
            test_recorded_ivl_counter_histories_are_ivl;
          Alcotest.test_case "recorded PCM is IVL" `Quick
            test_recorded_pcm_histories_are_ivl;
          Alcotest.test_case "large execution via monotone checker" `Quick
            test_recorded_large_execution_via_monotone_checker;
        ] );
    ]
