(* Tests for summary statistics and the (ε,δ) violation tally. *)

let test_moments_basic () =
  let m = Stats.Moments.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 (Stats.Moments.count m);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Moments.mean m);
  (* Sample variance with n−1: Σ(x−5)² = 32, /7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.Moments.variance m);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Moments.min m);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Moments.max m)

let test_moments_single_sample () =
  let m = Stats.Moments.create () in
  Stats.Moments.add m 3.5;
  Alcotest.(check (float 1e-9)) "mean" 3.5 (Stats.Moments.mean m);
  Alcotest.(check (float 1e-9)) "variance 0" 0.0 (Stats.Moments.variance m)

let test_moments_empty_raises () =
  let m = Stats.Moments.create () in
  Alcotest.check_raises "min of empty" (Invalid_argument "Moments.min: empty") (fun () ->
      ignore (Stats.Moments.min m))

let test_moments_streaming_matches_batch () =
  let g = Rng.Splitmix.create 17L in
  let data = Array.init 1000 (fun _ -> Rng.Splitmix.next_float g *. 100.0) in
  let stream = Stats.Moments.create () in
  Array.iter (Stats.Moments.add stream) data;
  let mean_direct = Array.fold_left ( +. ) 0.0 data /. 1000.0 in
  Alcotest.(check (float 1e-6)) "streaming mean" mean_direct (Stats.Moments.mean stream)

let test_percentile_basics () =
  let data = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0 is min" 15.0 (Stats.Percentile.percentile data 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 50.0 (Stats.Percentile.percentile data 100.0);
  Alcotest.(check (float 1e-9)) "median" 35.0 (Stats.Percentile.median data)

let test_percentile_interpolation () =
  let data = [| 1.0; 2.0; 3.0; 4.0 |] in
  (* p50 over 4 points: pos = 1.5 → 2.5. *)
  Alcotest.(check (float 1e-9)) "interpolated median" 2.5 (Stats.Percentile.median data)

let test_percentile_does_not_mutate () =
  let data = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.Percentile.median data);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] data

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Percentile.of_sorted: empty sample")
    (fun () -> ignore (Stats.Percentile.percentile [||] 50.0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Percentile.of_sorted: p must lie in [0,100]") (fun () ->
      ignore (Stats.Percentile.percentile [| 1.0 |] 101.0))

let test_tally () =
  let t = Ivl.Bounded.tally () in
  (* Inside the band. *)
  Ivl.Bounded.record t ~ret:5.0 ~v_min:4.0 ~v_max:6.0 ~epsilon:0.5;
  (* Below: 2.0 < 4.0 − 0.5. *)
  Ivl.Bounded.record t ~ret:2.0 ~v_min:4.0 ~v_max:6.0 ~epsilon:0.5;
  (* Above: 7.0 > 6.0 + 0.5. *)
  Ivl.Bounded.record t ~ret:7.0 ~v_min:4.0 ~v_max:6.0 ~epsilon:0.5;
  (* Boundary: exactly v_max + ε is allowed. *)
  Ivl.Bounded.record t ~ret:6.5 ~v_min:4.0 ~v_max:6.0 ~epsilon:0.5;
  Alcotest.(check int) "total" 4 t.Ivl.Bounded.total;
  Alcotest.(check int) "below" 1 t.Ivl.Bounded.below;
  Alcotest.(check int) "above" 1 t.Ivl.Bounded.above;
  Alcotest.(check (float 1e-9)) "below rate" 0.25 (Ivl.Bounded.below_rate t);
  Alcotest.(check (float 1e-9)) "above rate" 0.25 (Ivl.Bounded.above_rate t)

let test_tally_empty_rates () =
  let t = Ivl.Bounded.tally () in
  Alcotest.(check (float 0.0)) "below" 0.0 (Ivl.Bounded.below_rate t);
  Alcotest.(check (float 0.0)) "above" 0.0 (Ivl.Bounded.above_rate t)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mean within [min,max]" ~count:300
         QCheck.(array_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
         (fun data ->
           let m = Stats.Moments.of_array data in
           Stats.Moments.mean m >= Stats.Moments.min m -. 1e-9
           && Stats.Moments.mean m <= Stats.Moments.max m +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
         QCheck.(array_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
         (fun data ->
           let p25 = Stats.Percentile.percentile data 25.0 in
           let p50 = Stats.Percentile.percentile data 50.0 in
           let p75 = Stats.Percentile.percentile data 75.0 in
           p25 <= p50 +. 1e-9 && p50 <= p75 +. 1e-9));
  ]

let () =
  Alcotest.run "stats"
    [
      ( "moments",
        [
          Alcotest.test_case "basic" `Quick test_moments_basic;
          Alcotest.test_case "single sample" `Quick test_moments_single_sample;
          Alcotest.test_case "empty raises" `Quick test_moments_empty_raises;
          Alcotest.test_case "streaming matches batch" `Quick
            test_moments_streaming_matches_batch;
        ] );
      ( "percentile",
        [
          Alcotest.test_case "basics" `Quick test_percentile_basics;
          Alcotest.test_case "interpolation" `Quick test_percentile_interpolation;
          Alcotest.test_case "no mutation" `Quick test_percentile_does_not_mutate;
          Alcotest.test_case "errors" `Quick test_percentile_errors;
        ] );
      ( "tally",
        [
          Alcotest.test_case "tally" `Quick test_tally;
          Alcotest.test_case "empty rates" `Quick test_tally_empty_rates;
        ] );
      ("properties", qcheck_tests);
    ]
