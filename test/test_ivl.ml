(* Tests for the IVL core: the linearizability checker, the IVL checker
   (Definition 2), v_min/v_max (Definition 5), locality (Theorem 1) and
   randomized IVL (Definition 3) — each validated on the paper's own
   examples plus randomized cross-checks. *)

open Test_helpers

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)
module Counter_bounds = Ivl.Bounded.Make (Spec.Counter_spec)
module Counter_local = Ivl.Locality.Make (Spec.Counter_spec)
module Updown_check = Ivl.Check.Make (Spec.Updown_spec)

(* ---------------------------------------------------------------- *)
(* The introduction's example: a counter at 4 is bumped to 7 by a single
   batched inc(3); a concurrent read may return 4..7 under IVL but only
   4 or 7 under linearizability. *)

let intro_history ~read_returns =
  let u4 = upd ~proc:0 ~id:1 4 in
  let u3 = upd ~proc:0 ~id:2 3 in
  let q = qry ~proc:1 ~ret:read_returns ~id:3 0 in
  hist [ inv u4; rsp u4; inv u3; inv q; rsp ~ret:read_returns q; rsp u3 ]

let test_intro_linearizable_returns () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d linearizable" v)
        true
        (Counter_lin.is_linearizable (intro_history ~read_returns:v)))
    [ 4; 7 ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d not linearizable" v)
        false
        (Counter_lin.is_linearizable (intro_history ~read_returns:v)))
    [ 3; 5; 6; 8 ]

let test_intro_ivl_returns () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d IVL" v)
        true
        (Counter_check.is_ivl (intro_history ~read_returns:v)))
    [ 4; 5; 6; 7 ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d not IVL" v)
        false
        (Counter_check.is_ivl (intro_history ~read_returns:v)))
    [ 3; 8; 0; 100 ]

let test_intro_witnesses_are_reported () =
  let verdict = Counter_check.check (intro_history ~read_returns:6) in
  Alcotest.(check bool) "ivl" true verdict.Counter_check.ivl;
  (match verdict.Counter_check.lower with
  | Some ops -> Alcotest.(check bool) "lower witness non-empty" true (ops <> [])
  | None -> Alcotest.fail "expected lower witness");
  match verdict.Counter_check.upper with
  | Some ops -> Alcotest.(check bool) "upper witness non-empty" true (ops <> [])
  | None -> Alcotest.fail "expected upper witness"

(* ---------------------------------------------------------------- *)
(* Figure 2: p1 and p2 each add 5 concurrently with p3's read; the read may
   return any value in [0, 10]. *)

let figure2 ~read_returns =
  let u1 = upd ~proc:0 ~id:1 5 in
  let u2 = upd ~proc:1 ~id:2 5 in
  let q = qry ~proc:2 ~ret:read_returns ~id:3 0 in
  hist [ inv q; inv u1; inv u2; rsp u1; rsp u2; rsp ~ret:read_returns q ]

let test_figure2_ivl_band () =
  for v = 0 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "read=%d IVL" v)
      true
      (Counter_check.is_ivl (figure2 ~read_returns:v))
  done;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d not IVL" v)
        false
        (Counter_check.is_ivl (figure2 ~read_returns:v)))
    [ -1; 11; 42 ]

let test_figure2_linearizable_band () =
  (* Linearizability only allows sums of subsets consistent with real time:
     0, 5, 10. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d linearizable" v)
        true
        (Counter_lin.is_linearizable (figure2 ~read_returns:v)))
    [ 0; 5; 10 ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d not linearizable" v)
        false
        (Counter_lin.is_linearizable (figure2 ~read_returns:v)))
    [ 3; 6; 7; 9 ]

let test_figure2_vmin_vmax () =
  let bounds = Counter_bounds.query_bounds (figure2 ~read_returns:6) in
  match bounds with
  | [ b ] ->
      Alcotest.(check int) "v_min = 0" 0 b.Counter_bounds.v_min;
      Alcotest.(check int) "v_max = 10" 10 b.Counter_bounds.v_max
  | _ -> Alcotest.fail "expected exactly one query bound"

(* ---------------------------------------------------------------- *)
(* Sequential executions: IVL does not relax anything (Section 3.2). *)

let test_sequential_histories_must_conform () =
  let good = seq [ upd ~id:1 2; qry ~ret:2 ~id:2 0; upd ~id:3 3; qry ~ret:5 ~id:4 0 ] in
  Alcotest.(check bool) "conforming sequential history is IVL" true
    (Counter_check.is_ivl good);
  Alcotest.(check bool) "and linearizable" true (Counter_lin.is_linearizable good);
  let off_by_one = seq [ upd ~id:1 2; qry ~ret:3 ~id:2 0 ] in
  Alcotest.(check bool) "sequential deviation is not IVL" false
    (Counter_check.is_ivl off_by_one);
  Alcotest.(check bool) "sequential conformance helper agrees" true
    (Counter_check.sequential_conforms good)

let test_empty_history_is_ivl () =
  let h = hist [] in
  Alcotest.(check bool) "empty IVL" true (Counter_check.is_ivl h);
  Alcotest.(check bool) "empty linearizable" true (Counter_lin.is_linearizable h)

let test_updates_only_history () =
  let u1 = upd ~proc:0 ~id:1 1 and u2 = upd ~proc:1 ~id:2 2 in
  let h = hist [ inv u1; inv u2; rsp u2; rsp u1 ] in
  Alcotest.(check bool) "updates only IVL" true (Counter_check.is_ivl h)

(* ---------------------------------------------------------------- *)
(* Pending operations: completion freedom (Definition 2 / Lemma 10). *)

let test_pending_update_may_be_seen_or_not () =
  (* update(3) never responds; a concurrent read may return 0..3. *)
  let u = upd ~proc:0 ~id:1 3 in
  let mk v =
    let q = qry ~proc:1 ~ret:v ~id:2 0 in
    hist [ inv u; inv q; rsp ~ret:v q ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d IVL" v)
        true
        (Counter_check.is_ivl (mk v)))
    [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "read=4 not IVL" false (Counter_check.is_ivl (mk 4))

let test_pending_query_is_ignored () =
  let u = upd ~proc:0 ~id:1 3 in
  let q = qry ~proc:1 ~id:2 0 in
  (* The query never responds: it imposes no constraint. *)
  let h = hist [ inv u; rsp u; inv q ] in
  Alcotest.(check bool) "IVL" true (Counter_check.is_ivl h);
  Alcotest.(check bool) "linearizable" true (Counter_lin.is_linearizable h)

let test_read_preceding_update_pins_zero () =
  (* The read completes before the update is invoked: only 0 is IVL. *)
  let q0 = qry ~proc:1 ~ret:0 ~id:1 0 in
  let u = upd ~proc:0 ~id:2 3 in
  let h0 = hist [ inv q0; rsp ~ret:0 q0; inv u; rsp u ] in
  Alcotest.(check bool) "read=0 IVL" true (Counter_check.is_ivl h0);
  let q1 = qry ~proc:1 ~ret:1 ~id:1 0 in
  let h1 = hist [ inv q1; rsp ~ret:1 q1; inv u; rsp u ] in
  Alcotest.(check bool) "read=1 not IVL" false (Counter_check.is_ivl h1)

(* ---------------------------------------------------------------- *)
(* Section 3.4: the increment/decrement object separates IVL from
   regular-like "query sees a subset of concurrent updates" semantics. *)

let updown_history ~read_returns =
  (* inc(+1) then dec(−1) sequentially by p0, both concurrent with p1's
     query. Linearizations give the query 0 (before both or after both) or
     1 (between them): never −1. *)
  let inc = upd ~proc:0 ~id:1 1 in
  let dec = upd ~proc:0 ~id:2 (-1) in
  let q = qry ~proc:1 ~ret:read_returns ~id:3 0 in
  hist [ inv q; inv inc; rsp inc; inv dec; rsp dec; rsp ~ret:read_returns q ]

let test_updown_subset_semantics_violates_ivl () =
  (* Seeing only the decrement (−1) is allowed by subset semantics but is
     below every linearization value, hence not IVL. *)
  Alcotest.(check bool) "read=-1 not IVL" false
    (Updown_check.is_ivl (updown_history ~read_returns:(-1)));
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "read=%d IVL" v)
        true
        (Updown_check.is_ivl (updown_history ~read_returns:v)))
    [ 0; 1 ];
  Alcotest.(check bool) "read=2 not IVL" false
    (Updown_check.is_ivl (updown_history ~read_returns:2))

(* ---------------------------------------------------------------- *)
(* Example 9: PCM is not linearizable, but the same history is IVL.
   Replayed at the specification level with pinned hash functions:
   row 0: a↦0, b↦1; row 1: a↦0, b↦0 (0-indexed form of the paper's
   h1(a)=h2(a)=1, h1(b)=2, h2(b)=1). Elements 1 and 3 fill the remaining
   cells to reach the paper's initial matrix [[1,4],[2,3]]. *)

let example9_family =
  Hashing.Family.of_mapping ~width:2
    [|
      (fun x -> match x with 0 -> 0 | 1 -> 0 | 2 -> 1 | 3 -> 1 | _ -> 0);
      (fun x -> match x with 0 -> 0 | 1 -> 1 | 2 -> 0 | 3 -> 1 | _ -> 0);
    |]

module Cm9 = Spec.Countmin_spec.Fixed (struct
  let family = example9_family
end)

module Cm9_check = Ivl.Check.Make (Cm9)
module Cm9_lin = Ivl.Lincheck.Make (Cm9)

let example9_history =
  (* Prefix by p0 building the initial matrix: one a(=0), one b(=2), three
     3s. Then U = update(a) spanning both queries by p1:
     Q1 = query(a) → 2, Q2 = query(b) → 2. *)
  let prefix_elements = [ 0; 2; 3; 3; 3 ] in
  let prefix_ops = List.mapi (fun i e -> upd ~proc:0 ~id:(i + 1) e) prefix_elements in
  let prefix_events = List.concat_map (fun op -> [ inv op; rsp op ]) prefix_ops in
  let u = upd ~proc:0 ~id:6 0 in
  let q1 = qry ~proc:1 ~ret:2 ~id:7 0 in
  let q2 = qry ~proc:1 ~ret:2 ~id:8 2 in
  hist
    (prefix_events @ [ inv u; inv q1; rsp ~ret:2 q1; inv q2; rsp ~ret:2 q2; rsp u ])

let test_example9_matrix_setup () =
  (* Sanity: the prefix alone produces the paper's initial matrix. *)
  let s = List.fold_left Cm9.apply_update Cm9.init [ 0; 2; 3; 3; 3 ] in
  Alcotest.(check int) "query(a)=1" 1 (Cm9.eval_query s 0);
  Alcotest.(check int) "query(b)=2" 2 (Cm9.eval_query s 2);
  Alcotest.(check int) "query(3)=3" 3 (Cm9.eval_query s 3)

let test_example9_not_linearizable () =
  Alcotest.(check bool) "Example 9 is not linearizable" false
    (Cm9_lin.is_linearizable example9_history)

let test_example9_is_ivl () =
  Alcotest.(check bool) "Example 9 is IVL" true (Cm9_check.is_ivl example9_history)

(* ---------------------------------------------------------------- *)
(* Random cross-checks. *)

(* Random counter histories come from the shared generator; see
   Test_helpers.gen_counter_history. *)
let gen_counter_history = Test_helpers.gen_counter_history

let test_ivl_matches_interval_characterization () =
  let agreements = ref 0 in
  for seed = 1 to 200 do
    let h = gen_counter_history (Int64.of_int seed) in
    let engine = Counter_check.is_ivl h in
    let bounds = Counter_bounds.query_bounds h in
    let brute =
      List.for_all
        (fun (b : Counter_bounds.bound) ->
          match b.op.Hist.Op.ret with
          | Some v -> v >= b.Counter_bounds.v_min && v <= b.Counter_bounds.v_max
          | None -> true)
        bounds
    in
    if engine = brute then incr agreements
    else
      Alcotest.failf "seed %d: engine=%b brute=%b on:\n%s" seed engine brute
        (show_history h)
  done;
  Alcotest.(check int) "all agree" 200 !agreements

let test_linearizable_implies_ivl () =
  for seed = 300 to 500 do
    let h = gen_counter_history (Int64.of_int seed) in
    if Counter_lin.is_linearizable h then
      Alcotest.(check bool) "linearizable ⇒ IVL" true (Counter_check.is_ivl h)
  done

(* Memoization soundness: a non-commutative twin of the counter spec forces
   the engine down the unmemoized path; verdicts must agree. *)
module Counter_nomemo = struct
  include Spec.Counter_spec

  let commutative_updates = false
end

module Counter_check_nomemo = Ivl.Check.Make (Counter_nomemo)
module Counter_lin_nomemo = Ivl.Lincheck.Make (Counter_nomemo)

let test_memoization_consistent () =
  for seed = 600 to 700 do
    let h = gen_counter_history (Int64.of_int seed) in
    Alcotest.(check bool) "ivl verdicts agree"
      (Counter_check_nomemo.is_ivl h)
      (Counter_check.is_ivl h);
    Alcotest.(check bool) "lin verdicts agree"
      (Counter_lin_nomemo.is_linearizable h)
      (Counter_lin.is_linearizable h)
  done

let test_too_many_operations () =
  let ops = List.init 63 (fun i -> upd ~proc:0 ~id:(i + 1) 1) in
  let h = seq ops in
  match Counter_check.is_ivl h with
  | exception Ivl.Search.Too_many_operations n ->
      Alcotest.(check int) "reports count" 63 n
  | _ -> Alcotest.fail "expected Too_many_operations"


(* ---------------------------------------------------------------- *)
(* Engine soundness: compare the DFS search engine against a naive
   reference that enumerates raw permutations of completed operations (plus
   pending-update subsets), filters by precedence, and checks the spec
   directly. Only feasible for tiny histories, which is the point: the two
   must agree exactly where both are tractable. *)

let reference_linearizable h =
  let completed = Hist.History.completed h in
  let pending_updates =
    List.filter Hist.Op.is_update (Hist.History.pending h)
  in
  let respects_order ops =
    let rec check = function
      | [] -> true
      | op :: rest ->
          List.for_all
            (fun later -> not (Hist.History.precedes h later.Hist.Op.id op.Hist.Op.id))
            rest
          && check rest
    in
    check ops
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun ss -> x :: ss) s
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y.Hist.Op.id <> x.Hist.Op.id) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  let module Tau = Spec.Quantitative.Tau (Spec.Counter_spec) in
  List.exists
    (fun pending_subset ->
      List.exists
        (fun perm -> respects_order perm && Tau.satisfies perm)
        (permutations (completed @ pending_subset)))
    (subsets pending_updates)

let test_engine_vs_reference_linearizability () =
  let checked = ref 0 in
  for seed = 2000 to 2150 do
    let h = gen_counter_history (Int64.of_int seed) in
    if List.length (Hist.History.ops h) <= 6 then begin
      incr checked;
      let engine = Counter_lin.is_linearizable h in
      let reference = reference_linearizable h in
      if engine <> reference then
        Alcotest.failf "seed %d: engine=%b reference=%b on:\n%s" seed engine reference
          (show_history h)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "compared %d histories" !checked)
    true (!checked >= 30)

(* ---------------------------------------------------------------- *)
(* Locality (Theorem 1). *)

let test_locality_hand_case () =
  (* Object 0 carries an IVL-consistent read; object 1 an impossible one. *)
  let u0 = upd ~proc:0 ~obj:0 ~id:1 3 in
  let q0 = qry ~proc:1 ~obj:0 ~ret:2 ~id:2 0 in
  let u1 = upd ~proc:0 ~obj:1 ~id:3 3 in
  let q1 = qry ~proc:1 ~obj:1 ~ret:9 ~id:4 0 in
  let h =
    hist
      [ inv u0; inv q0; rsp ~ret:2 q0; rsp u0; inv u1; inv q1; rsp ~ret:9 q1; rsp u1 ]
  in
  let v = Counter_local.check_per_object h in
  Alcotest.(check bool) "composed not IVL" false v.Counter_local.ivl;
  Alcotest.(check (list (pair int bool)))
    "object verdicts"
    [ (0, true); (1, false) ]
    v.Counter_local.per_object;
  Alcotest.(check bool) "global check agrees" false (Counter_local.check_global h)

let gen_multi_object_history seed =
  gen_history ~seed ~procs:2 ~per_proc:3 ~mk_op:(fun g ~proc ~id ->
      let obj = Rng.Splitmix.next_int g 2 in
      if Rng.Splitmix.next_bool g then
        upd ~proc ~obj ~id (Rng.Splitmix.next_int g 3)
      else qry ~proc ~obj ~ret:(Rng.Splitmix.next_int g 6) ~id 0)

let test_locality_theorem_on_random_histories () =
  for seed = 1 to 300 do
    let h = gen_multi_object_history (Int64.of_int seed) in
    if not (Counter_local.theorem_holds h) then
      Alcotest.failf "locality violated at seed %d:\n%s" seed (show_history h)
  done

(* ---------------------------------------------------------------- *)
(* Randomized IVL (Definition 3). *)

(* A toy randomized object whose update direction depends on the coin:
   coin=true ⇒ +1, coin=false ⇒ −1. Shows Definition 3's common
   linearization is strictly stronger than per-coin IVL. *)
module Signed_spec = struct
  type coin = bool
  type state = { dir : int; total : int }
  type update = int (* magnitude *)
  type query = int
  type value = int

  let name = "coin-signed-counter"
  let init coin = { dir = (if coin then 1 else -1); total = 0 }
  let apply_update s v = { s with total = s.total + (s.dir * v) }
  let eval_query s _ = s.total
  let compare_value = Int.compare
  let commutative_updates = true
  let pp_update = Format.pp_print_int
  let pp_query ppf _ = Format.pp_print_string ppf ""
  let pp_value = Format.pp_print_int
end

module Signed_rand = Ivl.Randomized.Make (Signed_spec)

module Signed_fixed_true =
  Spec.Quantitative.Fix_coin
    (Signed_spec)
    (struct
      let coin = true
    end)

module Signed_fixed_false =
  Spec.Quantitative.Fix_coin
    (Signed_spec)
    (struct
      let coin = false
    end)

module Signed_check_true = Ivl.Check.Make (Signed_fixed_true)
module Signed_check_false = Ivl.Check.Make (Signed_fixed_false)

(* The recorded value on the skeleton is irrelevant; worlds supply returns. *)
let signed_skeleton =
  let u = upd ~proc:0 ~id:1 1 in
  let q = qry ~proc:1 ~id:2 0 in
  hist [ inv u; inv q; rsp ~ret:0 q; rsp u ]

let with_return v =
  let u = upd ~proc:0 ~id:1 1 in
  let q = qry ~proc:1 ~ret:v ~id:2 0 in
  hist [ inv u; inv q; rsp ~ret:v q; rsp u ]

let test_randomized_common_witness_exists () =
  (* Both worlds saw the update: returns (+1, −1). The common linearization
     [u; q] works for both sides. *)
  let worlds =
    [
      { Signed_rand.coin = true; returns = [ (2, 1) ] };
      { Signed_rand.coin = false; returns = [ (2, -1) ] };
    ]
  in
  let v = Signed_rand.check ~worlds signed_skeleton in
  Alcotest.(check bool) "randomized IVL" true v.Signed_rand.ivl

let test_randomized_stricter_than_per_coin () =
  (* Returns (+1 under true, 0 under false): per-coin IVL holds (world true
     linearizes u before q; world false after), but no common upper
     linearization exists: [q;u] gives 0 < 1 for world true, [u;q] gives
     −1 < 0 for world false. *)
  let worlds =
    [
      { Signed_rand.coin = true; returns = [ (2, 1) ] };
      { Signed_rand.coin = false; returns = [ (2, 0) ] };
    ]
  in
  let v = Signed_rand.check ~worlds signed_skeleton in
  Alcotest.(check bool) "no common witness" false v.Signed_rand.ivl;
  (* And indeed each world separately is IVL. *)
  Alcotest.(check bool) "world true alone IVL" true
    (Signed_check_true.is_ivl (with_return 1));
  Alcotest.(check bool) "world false alone IVL" true
    (Signed_check_false.is_ivl (with_return 0))

module Cm_rand = Ivl.Randomized.Make (Spec.Countmin_spec)

let test_randomized_countmin_monotone_worlds () =
  (* For the monotone CM sketch, per-coin witnesses coincide; the randomized
     check passes across two distinct hash families for the canonical
     "query saw the concurrent update in both worlds" outcome. *)
  let family2 =
    Hashing.Family.of_mapping ~width:2 [| (fun x -> (x + 1) mod 2); (fun _ -> 1) |]
  in
  let u = upd ~proc:0 ~id:1 0 in
  let q = qry ~proc:1 ~id:2 0 in
  let sk = hist [ inv u; inv q; rsp ~ret:1 q; rsp u ] in
  let worlds =
    [
      { Cm_rand.coin = example9_family; returns = [ (2, 1) ] };
      { Cm_rand.coin = family2; returns = [ (2, 1) ] };
    ]
  in
  let v = Cm_rand.check ~worlds sk in
  Alcotest.(check bool) "randomized IVL across families" true v.Cm_rand.ivl


(* ---------------------------------------------------------------- *)
(* The monotone fast path: Ivl.Monotone must agree with the exact checker
   on every random monotone history, and compute Figure 2's envelope. *)

module Counter_mono = Ivl.Monotone.Make (Spec.Counter_spec)
module Max_check = Ivl.Check.Make (Spec.Max_spec)
module Max_mono = Ivl.Monotone.Make (Spec.Max_spec)

let test_monotone_agrees_with_exact_counter () =
  for seed = 800 to 1000 do
    let h = gen_counter_history (Int64.of_int seed) in
    let exact = Counter_check.is_ivl h in
    let fast = Counter_mono.check h in
    if exact <> fast then
      Alcotest.failf "seed %d: exact=%b fast=%b on:\n%s" seed exact fast
        (show_history h)
  done

let gen_max_history seed =
  gen_history ~seed ~procs:3 ~per_proc:2 ~mk_op:(fun g ~proc ~id ->
      if Rng.Splitmix.next_bool g then upd ~proc ~id (Rng.Splitmix.next_int g 5)
      else qry ~proc ~ret:(Rng.Splitmix.next_int g 6) ~id 0)

let test_monotone_agrees_with_exact_max () =
  for seed = 1 to 200 do
    let h = gen_max_history (Int64.of_int seed) in
    let exact = Max_check.is_ivl h in
    let fast = Max_mono.check h in
    if exact <> fast then
      Alcotest.failf "max seed %d: exact=%b fast=%b on:\n%s" seed exact fast
        (show_history h)
  done


module Cm9_mono = Ivl.Monotone.Make (Cm9)

let test_monotone_agrees_with_exact_countmin () =
  (* CountMin is monotone too: the fast path must agree with the exact
     checker on random CM histories (elements 0..3, pinned Example 9
     hashes, plausible and implausible returns). *)
  for seed = 1 to 150 do
    let h =
      gen_history ~seed:(Int64.of_int (7000 + seed)) ~procs:3 ~per_proc:2
        ~mk_op:(fun g ~proc ~id ->
          let a = Rng.Splitmix.next_int g 4 in
          if Rng.Splitmix.next_bool g then upd ~proc ~id a
          else qry ~proc ~ret:(Rng.Splitmix.next_int g 4) ~id a)
    in
    let exact = Cm9_check.is_ivl h in
    let fast = Cm9_mono.check h in
    if exact <> fast then
      Alcotest.failf "CM seed %d: exact=%b fast=%b on:\n%s" seed exact fast
        (show_history h)
  done


let test_monotone_agrees_with_exact_under_pending () =
  (* Truncating a history leaves a suffix of operations pending (prefixes of
     well-formed histories are well-formed); the fast path must still agree
     with the exact checker, exercising the completion-freedom rules. *)
  for seed = 4000 to 4150 do
    let full = gen_counter_history (Int64.of_int seed) in
    let events = Hist.History.events full in
    let n = List.length events in
    if n > 2 then begin
      let g = Rng.Splitmix.create (Int64.of_int seed) in
      let keep = 1 + Rng.Splitmix.next_int g (n - 1) in
      let h = Hist.History.of_events (List.filteri (fun i _ -> i < keep) events) in
      let exact = Counter_check.is_ivl h in
      let fast = Counter_mono.check h in
      if exact <> fast then
        Alcotest.failf "pending seed %d (keep %d/%d): exact=%b fast=%b on:\n%s" seed
          keep n exact fast (show_history h)
    end
  done

let test_monotone_figure2_envelope () =
  match Counter_mono.envelopes (figure2 ~read_returns:6) with
  | [ e ] ->
      Alcotest.(check int) "low" 0 e.Counter_mono.low;
      Alcotest.(check int) "high" 10 e.Counter_mono.high;
      Alcotest.(check bool) "no violations" true
        (Counter_mono.violations (figure2 ~read_returns:6) = [])
  | _ -> Alcotest.fail "expected one envelope"

let test_monotone_reports_violations () =
  let es = Counter_mono.violations (figure2 ~read_returns:42) in
  match es with
  | [ e ] -> Alcotest.(check (option int)) "offending return" (Some 42) e.Counter_mono.op.Hist.Op.ret
  | _ -> Alcotest.fail "expected one violation"

let test_monotone_scales_past_checker_limit () =
  (* 200 operations: far beyond the exact checker's 62-op cap. *)
  let n_ops = 200 in
  let events = ref [] in
  let total = ref 0 in
  for i = 1 to n_ops do
    if i mod 10 = 0 then begin
      let q = qry ~proc:1 ~ret:!total ~id:i 0 in
      events := rsp ~ret:!total q :: inv q :: !events
    end
    else begin
      let u = upd ~proc:0 ~id:i 1 in
      total := !total + 1;
      events := rsp u :: inv u :: !events
    end
  done;
  let h = hist (List.rev !events) in
  Alcotest.(check bool) "large sequentialish history checks" true (Counter_mono.check h)


(* ---------------------------------------------------------------- *)
(* Explain, and structural properties of IVL itself. *)

module Counter_explain = Ivl.Explain.Make (Spec.Counter_spec)

let test_explain_reports_out_of_bounds () =
  let h = figure2 ~read_returns:42 in
  let reports = Counter_explain.diagnose h in
  (match reports with
  | [ r ] ->
      Alcotest.(check int) "v_min" 0 r.Counter_explain.v_min;
      Alcotest.(check int) "v_max" 10 r.Counter_explain.v_max;
      Alcotest.(check bool) "flagged" false r.Counter_explain.in_bounds
  | _ -> Alcotest.fail "expected one query report");
  let text = Counter_explain.to_string h in
  let contains_substring hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "mentions OUT OF BOUNDS" true
    (contains_substring text "OUT OF BOUNDS")

let test_skeletons_are_always_ivl () =
  (* Erasing every return leaves nothing to violate: any history's skeleton
     is IVL. *)
  for seed = 3000 to 3100 do
    let h = gen_counter_history (Int64.of_int seed) in
    Alcotest.(check bool) "skeleton IVL" true
      (Counter_check.is_ivl (Hist.History.skeleton h))
  done

let test_completion_preserves_ivl () =
  (* Completing pending updates preserves IVL: place the newly completed
     updates after every query in the witnesses (they cannot change any
     query's value there). *)
  for seed = 3200 to 3350 do
    let h = gen_counter_history (Int64.of_int seed) in
    if Counter_check.is_ivl h then
      Alcotest.(check bool) "complete h still IVL" true
        (Counter_check.is_ivl (Hist.History.complete h))
  done


(* ---------------------------------------------------------------- *)
(* Heterogeneous locality: Theorem 1 over a counter (object 0) composed
   with a max register (object 1), via the tagged-product spec. *)

module Hetero = Spec.Compose.Make (Spec.Counter_spec) (Spec.Max_spec)
module Hetero_local = Ivl.Locality.Make (Hetero)

type hop = (Hetero.update, Hetero.query, Hetero.value) Hist.Op.t

let hupd ?(proc = 0) ~obj ~id u : hop =
  { Hist.Op.id; proc; obj; kind = Hist.Op.Update u; ret = None }

let hqry ?(proc = 0) ~obj ~id ?ret q : hop =
  { Hist.Op.id; proc; obj; kind = Hist.Op.Query q; ret }

let test_heterogeneous_locality () =
  (* Counter (A, object 0): inc 3 concurrent with a read returning 2 — IVL
     (intermediate). Max register (B, object 1): update 9 concurrent with a
     read returning 12 — NOT IVL (above every linearization value; the IVL
     envelope is [0, 9]). *)
  let ua = hupd ~proc:0 ~obj:0 ~id:1 (`A 3) in
  let qa = hqry ~proc:1 ~obj:0 ~id:2 ~ret:(`A 2) (`A 0) in
  let ub = hupd ~proc:0 ~obj:1 ~id:3 (`B 9) in
  let qb = hqry ~proc:1 ~obj:1 ~id:4 ~ret:(`B 12) (`B 0) in
  let h =
    Hist.History.of_events
      [
        Hist.History.inv ua;
        Hist.History.inv qa;
        Hist.History.rsp qa;
        Hist.History.rsp ua;
        Hist.History.inv ub;
        Hist.History.inv qb;
        Hist.History.rsp qb;
        Hist.History.rsp ub;
      ]
  in
  let v = Hetero_local.check_per_object h in
  Alcotest.(check (list (pair int bool)))
    "per-object verdicts"
    [ (0, true); (1, false) ]
    v.Hetero_local.per_object;
  Alcotest.(check bool) "composed verdict" false v.Hetero_local.ivl;
  Alcotest.(check bool) "global check agrees (Theorem 1)" true
    (Hetero_local.theorem_holds h)

let test_heterogeneous_locality_random () =
  (* Random two-object histories mixing both types: the theorem must hold on
     every instance. *)
  for seed = 1 to 120 do
    let g = Rng.Splitmix.create (Int64.of_int (5000 + seed)) in
    let next_id = ref 0 in
    let mk_op p =
      incr next_id;
      let obj = Rng.Splitmix.next_int g 2 in
      if obj = 0 then
        if Rng.Splitmix.next_bool g then
          hupd ~proc:p ~obj ~id:!next_id (`A (Rng.Splitmix.next_int g 3))
        else hqry ~proc:p ~obj ~id:!next_id ~ret:(`A (Rng.Splitmix.next_int g 5)) (`A 0)
      else if Rng.Splitmix.next_bool g then
        hupd ~proc:p ~obj ~id:!next_id (`B (Rng.Splitmix.next_int g 5))
      else hqry ~proc:p ~obj ~id:!next_id ~ret:(`B (Rng.Splitmix.next_int g 5)) (`B 0)
    in
    let queues = Array.init 2 (fun p -> ref (List.init 3 (fun _ -> mk_op p))) in
    let in_flight = Array.make 2 None in
    let events = ref [] in
    let rec drain () =
      let busy = ref [] in
      for p = 0 to 1 do
        if in_flight.(p) <> None || !(queues.(p)) <> [] then busy := p :: !busy
      done;
      match !busy with
      | [] -> ()
      | ps ->
          let p = List.nth ps (Rng.Splitmix.next_int g (List.length ps)) in
          (match in_flight.(p) with
          | Some op ->
              events := Hist.History.rsp ?ret:op.Hist.Op.ret op :: !events;
              in_flight.(p) <- None
          | None -> (
              match !(queues.(p)) with
              | [] -> ()
              | op :: rest ->
                  queues.(p) := rest;
                  events := Hist.History.inv op :: !events;
                  in_flight.(p) <- Some op));
          drain ()
    in
    drain ();
    let h = Hist.History.of_events (List.rev !events) in
    if not (Hetero_local.theorem_holds h) then
      Alcotest.failf "heterogeneous locality violated at seed %d" seed
  done

let () =
  Alcotest.run "ivl"
    [
      ( "intro example",
        [
          Alcotest.test_case "linearizable returns" `Quick test_intro_linearizable_returns;
          Alcotest.test_case "IVL returns" `Quick test_intro_ivl_returns;
          Alcotest.test_case "witnesses reported" `Quick test_intro_witnesses_are_reported;
        ] );
      ( "figure 2",
        [
          Alcotest.test_case "IVL band" `Quick test_figure2_ivl_band;
          Alcotest.test_case "linearizable band" `Quick test_figure2_linearizable_band;
          Alcotest.test_case "v_min/v_max" `Quick test_figure2_vmin_vmax;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "must conform" `Quick test_sequential_histories_must_conform;
          Alcotest.test_case "empty history" `Quick test_empty_history_is_ivl;
          Alcotest.test_case "updates only" `Quick test_updates_only_history;
        ] );
      ( "pending",
        [
          Alcotest.test_case "pending update optional" `Quick
            test_pending_update_may_be_seen_or_not;
          Alcotest.test_case "pending query ignored" `Quick test_pending_query_is_ignored;
          Alcotest.test_case "read before update" `Quick
            test_read_preceding_update_pins_zero;
        ] );
      ( "updown",
        [
          Alcotest.test_case "subset semantics violates IVL" `Quick
            test_updown_subset_semantics_violates_ivl;
        ] );
      ( "example 9",
        [
          Alcotest.test_case "matrix setup" `Quick test_example9_matrix_setup;
          Alcotest.test_case "not linearizable" `Quick test_example9_not_linearizable;
          Alcotest.test_case "is IVL" `Quick test_example9_is_ivl;
        ] );
      ( "cross-checks",
        [
          Alcotest.test_case "interval characterization" `Quick
            test_ivl_matches_interval_characterization;
          Alcotest.test_case "linearizable implies IVL" `Quick
            test_linearizable_implies_ivl;
          Alcotest.test_case "memoization consistent" `Quick test_memoization_consistent;
          Alcotest.test_case "too many operations" `Quick test_too_many_operations;
          Alcotest.test_case "engine vs naive reference" `Quick
            test_engine_vs_reference_linearizability;
        ] );
      ( "explain and structure",
        [
          Alcotest.test_case "explain out-of-bounds" `Quick
            test_explain_reports_out_of_bounds;
          Alcotest.test_case "skeletons always IVL" `Quick test_skeletons_are_always_ivl;
          Alcotest.test_case "completion preserves IVL" `Quick
            test_completion_preserves_ivl;
        ] );
      ( "monotone fast path",
        [
          Alcotest.test_case "agrees with exact (counter)" `Quick
            test_monotone_agrees_with_exact_counter;
          Alcotest.test_case "agrees with exact (max)" `Quick
            test_monotone_agrees_with_exact_max;
          Alcotest.test_case "agrees with exact (countmin)" `Quick
            test_monotone_agrees_with_exact_countmin;
          Alcotest.test_case "agrees with exact under pending" `Quick
            test_monotone_agrees_with_exact_under_pending;
          Alcotest.test_case "figure 2 envelope" `Quick test_monotone_figure2_envelope;
          Alcotest.test_case "reports violations" `Quick test_monotone_reports_violations;
          Alcotest.test_case "scales past checker limit" `Quick
            test_monotone_scales_past_checker_limit;
        ] );
      ( "locality",
        [
          Alcotest.test_case "hand case" `Quick test_locality_hand_case;
          Alcotest.test_case "random histories" `Quick
            test_locality_theorem_on_random_histories;
          Alcotest.test_case "heterogeneous hand case" `Quick
            test_heterogeneous_locality;
          Alcotest.test_case "heterogeneous random" `Quick
            test_heterogeneous_locality_random;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "common witness" `Quick test_randomized_common_witness_exists;
          Alcotest.test_case "stricter than per-coin" `Quick
            test_randomized_stricter_than_per_coin;
          Alcotest.test_case "countmin worlds" `Quick
            test_randomized_countmin_monotone_worlds;
        ] );
    ]
