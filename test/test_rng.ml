(* Tests for the deterministic PRNGs: reproducibility, ranges, independence
   of split streams, and coarse uniformity. *)

let test_splitmix_deterministic () =
  let a = Rng.Splitmix.create 42L and b = Rng.Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.Splitmix.next_int64 a)
      (Rng.Splitmix.next_int64 b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Rng.Splitmix.create 1L and b = Rng.Splitmix.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.Splitmix.next_int64 a) (Rng.Splitmix.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_splitmix_copy () =
  let a = Rng.Splitmix.create 7L in
  ignore (Rng.Splitmix.next_int64 a);
  let b = Rng.Splitmix.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy mirrors original" (Rng.Splitmix.next_int64 a)
      (Rng.Splitmix.next_int64 b)
  done

let test_next_int_range () =
  let g = Rng.Splitmix.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.Splitmix.next_int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_next_int_rejects_bad_bound () =
  let g = Rng.Splitmix.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.next_int: bound must be positive")
    (fun () -> ignore (Rng.Splitmix.next_int g 0))

let test_next_float_range () =
  let g = Rng.Splitmix.create 11L in
  for _ = 1 to 1000 do
    let v = Rng.Splitmix.next_float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_uniformity_chi_square () =
  (* 10 buckets, 10k draws: χ² with 9 dof should stay below 30 (p ≈ 4e-4)
     for a healthy generator with this fixed seed. *)
  let g = Rng.Splitmix.create 1234L in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = Rng.Splitmix.next_int g 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2=%.1f < 30" chi2) true (chi2 < 30.0)

let test_split_streams_differ () =
  let g = Rng.Splitmix.create 99L in
  let s = Rng.Splitmix.split g in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.Splitmix.next_int64 g) (Rng.Splitmix.next_int64 s) then incr same
  done;
  Alcotest.(check bool) "split stream decorrelated" true (!same < 4)

let test_pcg_deterministic () =
  let a = Rng.Pcg.create 5L and b = Rng.Pcg.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check int32) "same stream" (Rng.Pcg.next_int32 a) (Rng.Pcg.next_int32 b)
  done

let test_pcg_streams () =
  let a = Rng.Pcg.create ~stream:1L 5L and b = Rng.Pcg.create ~stream:2L 5L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int32.equal (Rng.Pcg.next_int32 a) (Rng.Pcg.next_int32 b) then incr same
  done;
  Alcotest.(check bool) "distinct streams diverge" true (!same < 4)

let test_pcg_range () =
  let g = Rng.Pcg.create 8L in
  for _ = 1 to 1000 do
    let v = Rng.Pcg.next_int g 23 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 23);
    let f = Rng.Pcg.next_float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_shuffle_is_permutation () =
  let g = Rng.Splitmix.create 21L in
  let a = Array.init 50 Fun.id in
  Rng.Dist.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let g = Rng.Splitmix.create 31L in
  let s = Rng.Dist.sample_without_replacement g 10 100 in
  Alcotest.(check int) "length" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) > sorted.(i - 1))
  done;
  Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 100)) s

let test_sample_full_range () =
  let g = Rng.Splitmix.create 31L in
  let s = Rng.Dist.sample_without_replacement g 20 20 in
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "all elements" (Array.init 20 Fun.id) sorted

let test_geometric_mean () =
  (* Mean of Geometric(p), counting failures, is (1−p)/p = 3 for p = 0.25. *)
  let g = Rng.Splitmix.create 77L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.Dist.geometric g 0.25
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean=%.2f near 3" mean)
    true
    (mean > 2.8 && mean < 3.2)

let test_exponential_mean () =
  let g = Rng.Splitmix.create 78L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.Dist.exponential g 2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean=%.3f near 0.5" mean)
    true
    (mean > 0.47 && mean < 0.53)

let test_bernoulli_rate () =
  let g = Rng.Splitmix.create 79L in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.Dist.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate=%.3f near 0.3" rate)
    true
    (rate > 0.28 && rate < 0.32)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"next_int always within bound" ~count:500
         QCheck.(pair int64 (int_range 1 1000))
         (fun (seed, bound) ->
           let g = Rng.Splitmix.create seed in
           let v = Rng.Splitmix.next_int g bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"same seed, same stream prefix" ~count:200
         QCheck.int64 (fun seed ->
           let a = Rng.Splitmix.create seed and b = Rng.Splitmix.create seed in
           List.for_all
             (fun _ -> Int64.equal (Rng.Splitmix.next_int64 a) (Rng.Splitmix.next_int64 b))
             (List.init 20 Fun.id)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
         QCheck.(pair int64 (array small_int))
         (fun (seed, a) ->
           let g = Rng.Splitmix.create seed in
           let b = Array.copy a in
           Rng.Dist.shuffle g b;
           let sa = Array.copy a and sb = Array.copy b in
           Array.sort Int.compare sa;
           Array.sort Int.compare sb;
           sa = sb));
  ]

let () =
  Alcotest.run "rng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "next_int range" `Quick test_next_int_range;
          Alcotest.test_case "next_int bad bound" `Quick test_next_int_rejects_bad_bound;
          Alcotest.test_case "next_float range" `Quick test_next_float_range;
          Alcotest.test_case "uniformity" `Quick test_uniformity_chi_square;
          Alcotest.test_case "split streams" `Quick test_split_streams_differ;
        ] );
      ( "pcg",
        [
          Alcotest.test_case "deterministic" `Quick test_pcg_deterministic;
          Alcotest.test_case "streams" `Quick test_pcg_streams;
          Alcotest.test_case "ranges" `Quick test_pcg_range;
        ] );
      ( "dist",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick test_sample_full_range;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
      ("properties", qcheck_tests);
    ]
