(* Tests for the sequential sketches: CountMin guarantees, Count sketch,
   Morris, Space-Saving, Quantiles, HyperLogLog, batched counter, and the
   exact oracle they are all measured against. *)

let feed_stream sketch_update stream = Array.iter sketch_update stream

(* ------------------------- CountMin ------------------------- *)

let test_cm_agrees_with_spec () =
  (* The runnable sketch and the persistent spec must be extensionally
     equal: same coins, same stream, same answers. *)
  let family = Hashing.Family.seeded ~seed:42L ~rows:3 ~width:64 in
  let cm = Sketches.Countmin.create ~family in
  let spec = ref (Spec.Countmin_spec.init family) in
  let stream = Workload.Stream.generate ~seed:1L (Workload.Stream.Zipf (100, 1.2)) ~length:2000 in
  Array.iter
    (fun a ->
      Sketches.Countmin.update cm a;
      spec := Spec.Countmin_spec.apply_update !spec a)
    stream;
  for a = 0 to 99 do
    Alcotest.(check int)
      (Printf.sprintf "element %d" a)
      (Spec.Countmin_spec.eval_query !spec a)
      (Sketches.Countmin.query cm a)
  done

let test_cm_never_underestimates () =
  let cm = Sketches.Countmin.create ~family:(Hashing.Family.seeded ~seed:2L ~rows:4 ~width:32) in
  let exact = Sketches.Exact.create () in
  let stream = Workload.Stream.generate ~seed:3L (Workload.Stream.Zipf (200, 1.0)) ~length:5000 in
  Array.iter
    (fun a ->
      Sketches.Countmin.update cm a;
      Sketches.Exact.update exact a)
    stream;
  for a = 0 to 199 do
    Alcotest.(check bool)
      (Printf.sprintf "f̂_%d ≥ f_%d" a a)
      true
      (Sketches.Countmin.query cm a >= Sketches.Exact.frequency exact a)
  done

let test_cm_epsilon_delta_bound () =
  (* Corollary of Cormode–Muthukrishnan: with w = ⌈e/α⌉ and d = ⌈ln 1/δ⌉,
     P[f̂ > f + αn] ≤ δ. Run many independent sketches and count violations;
     with δ = 0.1 and 100 trials we allow up to 20 (generous slack over the
     binomial tail). *)
  let alpha = 0.05 and delta = 0.1 in
  let trials = 100 in
  let violations = ref 0 in
  for t = 1 to trials do
    let cm = Sketches.Countmin.create_for_error ~seed:(Int64.of_int (1000 + t)) ~alpha ~delta in
    let exact = Sketches.Exact.create () in
    let stream =
      Workload.Stream.generate ~seed:(Int64.of_int t) (Workload.Stream.Zipf (500, 1.1))
        ~length:2000
    in
    Array.iter
      (fun a ->
        Sketches.Countmin.update cm a;
        Sketches.Exact.update exact a)
      stream;
    let n = Sketches.Exact.total exact in
    let bound = alpha *. float_of_int n in
    (* Check a fixed probe element, as the analysis is per-query. *)
    let probe = 7 in
    let err =
      Sketches.Countmin.query cm probe - Sketches.Exact.frequency exact probe
    in
    if float_of_int err > bound then incr violations
  done;
  Alcotest.(check bool)
    (Printf.sprintf "violations=%d ≤ 20" !violations)
    true (!violations <= 20)

let test_cm_sizing () =
  let cm = Sketches.Countmin.create_for_error ~seed:1L ~alpha:0.01 ~delta:0.01 in
  Alcotest.(check int) "w = ⌈e/0.01⌉" 272 (Sketches.Countmin.width cm);
  Alcotest.(check int) "d = ⌈ln 100⌉" 5 (Sketches.Countmin.rows cm);
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Countmin.create_for_error: alpha must be positive") (fun () ->
      ignore (Sketches.Countmin.create_for_error ~seed:1L ~alpha:0.0 ~delta:0.1))

let test_cm_updates_and_error_bound () =
  let cm = Sketches.Countmin.create ~family:(Hashing.Family.seeded ~seed:9L ~rows:2 ~width:27) in
  for _ = 1 to 100 do
    Sketches.Countmin.update cm 5
  done;
  Alcotest.(check int) "n tracked" 100 (Sketches.Countmin.updates cm);
  let expected = Float.exp 1.0 /. 27.0 *. 100.0 in
  Alcotest.(check (float 1e-9)) "αn" expected (Sketches.Countmin.error_bound cm)

let test_cm_reset () =
  let cm = Sketches.Countmin.create ~family:(Hashing.Family.seeded ~seed:9L ~rows:2 ~width:8) in
  Sketches.Countmin.update cm 1;
  Sketches.Countmin.reset cm;
  Alcotest.(check int) "count cleared" 0 (Sketches.Countmin.updates cm);
  Alcotest.(check int) "cells cleared" 0 (Sketches.Countmin.query cm 1)

(* ------------------------- Count sketch ------------------------- *)

let test_count_sketch_unbiased_ballpark () =
  let cs = Sketches.Count_sketch.create ~seed:11L ~rows:5 ~width:128 in
  let exact = Sketches.Exact.create () in
  let stream = Workload.Stream.generate ~seed:12L (Workload.Stream.Zipf (100, 1.3)) ~length:10000 in
  Array.iter
    (fun a ->
      Sketches.Count_sketch.update cs a;
      Sketches.Exact.update exact a)
    stream;
  (* Head elements should be estimated within a loose band. *)
  for a = 0 to 4 do
    let f = Sketches.Exact.frequency exact a in
    let est = Sketches.Count_sketch.query cs a in
    let slack = max 50 (f / 4) in
    Alcotest.(check bool)
      (Printf.sprintf "element %d: |%d − %d| ≤ %d" a est f slack)
      true
      (abs (est - f) <= slack)
  done

let test_count_sketch_shape () =
  let cs = Sketches.Count_sketch.create ~seed:13L ~rows:3 ~width:16 in
  Alcotest.(check int) "rows" 3 (Sketches.Count_sketch.rows cs);
  Alcotest.(check int) "width" 16 (Sketches.Count_sketch.width cs);
  Sketches.Count_sketch.update cs 1;
  Alcotest.(check int) "n" 1 (Sketches.Count_sketch.updates cs);
  Alcotest.check_raises "rows must be positive"
    (Invalid_argument "Count_sketch.create: rows must be positive") (fun () ->
      ignore (Sketches.Count_sketch.create ~seed:1L ~rows:0 ~width:4))

(* ------------------------- Morris ------------------------- *)

let test_morris_exact_small () =
  (* With base 2 the first event always bumps the exponent to 1 → estimate 1. *)
  let m = Sketches.Morris.create ~seed:5L () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Sketches.Morris.estimate m);
  Sketches.Morris.update m;
  Alcotest.(check (float 0.0)) "one event" 1.0 (Sketches.Morris.estimate m)

let test_morris_unbiased () =
  (* Average over many independent counters ≈ true count. *)
  let n = 1000 and trials = 300 in
  let sum = ref 0.0 in
  for t = 1 to trials do
    let m = Sketches.Morris.create ~seed:(Int64.of_int t) () in
    for _ = 1 to n do
      Sketches.Morris.update m
    done;
    sum := !sum +. Sketches.Morris.estimate m
  done;
  let mean = !sum /. float_of_int trials in
  (* stddev of the mean ≈ n/√(2·trials) ≈ 41; allow ±4σ. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean=%.0f within [%d,%d]" mean (n - 170) (n + 170))
    true
    (mean > float_of_int (n - 170) && mean < float_of_int (n + 170))

let test_morris_small_base_tightens () =
  let n = 2000 and trials = 100 in
  let spread base =
    let acc = ref 0.0 in
    for t = 1 to trials do
      let m = Sketches.Morris.create ~base ~seed:(Int64.of_int (300 + t)) () in
      for _ = 1 to n do
        Sketches.Morris.update m
      done;
      let e = Sketches.Morris.estimate m in
      acc := !acc +. abs_float (e -. float_of_int n)
    done;
    !acc /. float_of_int trials
  in
  let tight = spread 1.1 and loose = spread 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean abs error: base1.1=%.0f < base2=%.0f" tight loose)
    true (tight < loose)

let test_morris_create_for_error () =
  let m = Sketches.Morris.create_for_error ~seed:1L ~epsilon:0.1 ~delta:0.25 in
  Alcotest.(check (float 1e-9)) "base formula" (1.0 +. (2.0 *. 0.1 *. 0.1 *. 0.25))
    (Sketches.Morris.base m)

(* ------------------------- Space-Saving ------------------------- *)

let test_space_saving_exact_when_under_capacity () =
  let ss = Sketches.Space_saving.create ~capacity:100 in
  let stream = Workload.Stream.generate ~seed:21L (Workload.Stream.Uniform 50) ~length:2000 in
  let exact = Sketches.Exact.create () in
  Array.iter
    (fun a ->
      Sketches.Space_saving.update ss a;
      Sketches.Exact.update exact a)
    stream;
  for a = 0 to 49 do
    Alcotest.(check int)
      (Printf.sprintf "element %d exact" a)
      (Sketches.Exact.frequency exact a)
      (Sketches.Space_saving.query ss a)
  done;
  Alcotest.(check int) "no eviction error" 0 (Sketches.Space_saving.guaranteed_error ss)

let test_space_saving_bounds () =
  let capacity = 20 in
  let ss = Sketches.Space_saving.create ~capacity in
  let exact = Sketches.Exact.create () in
  let stream = Workload.Stream.generate ~seed:22L (Workload.Stream.Zipf (500, 1.2)) ~length:5000 in
  Array.iter
    (fun a ->
      Sketches.Space_saving.update ss a;
      Sketches.Exact.update exact a)
    stream;
  let n = Sketches.Space_saving.total ss in
  Alcotest.(check int) "stream length" 5000 n;
  (* Tracked estimates over-estimate by at most n/capacity, never under. *)
  List.iter
    (fun (elt, est) ->
      let f = Sketches.Exact.frequency exact elt in
      Alcotest.(check bool) (Printf.sprintf "%d: est ≥ f" elt) true (est >= f);
      Alcotest.(check bool)
        (Printf.sprintf "%d: est − f ≤ n/k" elt)
        true
        (est - f <= n / capacity))
    (Sketches.Space_saving.top ss);
  (* Every true heavy hitter above n/capacity must be tracked. *)
  let tracked = List.map fst (Sketches.Space_saving.top ss) in
  List.iter
    (fun (elt, f) ->
      if f > n / capacity then
        Alcotest.(check bool) (Printf.sprintf "heavy %d tracked" elt) true
          (List.mem elt tracked))
    (Sketches.Exact.to_assoc exact)

let test_space_saving_capacity_respected () =
  let ss = Sketches.Space_saving.create ~capacity:5 in
  for a = 0 to 99 do
    Sketches.Space_saving.update ss a
  done;
  Alcotest.(check bool) "at most 5 tracked" true
    (List.length (Sketches.Space_saving.top ss) <= 5)


let test_space_saving_copy_independent () =
  let a = Sketches.Space_saving.create ~capacity:10 in
  List.iter (Sketches.Space_saving.update a) [ 1; 1; 2 ];
  let b = Sketches.Space_saving.copy a in
  Sketches.Space_saving.update a 1;
  Alcotest.(check int) "original advanced" 3 (Sketches.Space_saving.query a 1);
  Alcotest.(check int) "copy frozen" 2 (Sketches.Space_saving.query b 1);
  Alcotest.(check int) "copy total" 3 (Sketches.Space_saving.total b)

let test_space_saving_merge_exact_case () =
  (* Under capacity on both sides the merge is exact addition. *)
  let a = Sketches.Space_saving.create ~capacity:10 in
  let b = Sketches.Space_saving.create ~capacity:10 in
  List.iter (Sketches.Space_saving.update a) [ 1; 1; 2 ];
  List.iter (Sketches.Space_saving.update b) [ 1; 3; 3; 3 ];
  let m = Sketches.Space_saving.merge ~capacity:10 a b in
  Alcotest.(check int) "common element adds" 3 (Sketches.Space_saving.query m 1);
  Alcotest.(check int) "a-only kept" 1 (Sketches.Space_saving.query m 2);
  Alcotest.(check int) "b-only kept" 3 (Sketches.Space_saving.query m 3);
  Alcotest.(check int) "n adds" 7 (Sketches.Space_saving.total m)

let test_space_saving_merge_preserves_bounds () =
  (* Merged estimates never under-estimate the true combined counts. *)
  let capacity = 16 in
  let a = Sketches.Space_saving.create ~capacity in
  let b = Sketches.Space_saving.create ~capacity in
  let exact = Sketches.Exact.create () in
  let sa = Workload.Stream.generate ~seed:61L (Workload.Stream.Zipf (200, 1.2)) ~length:3000 in
  let sb = Workload.Stream.generate ~seed:62L (Workload.Stream.Zipf (200, 1.2)) ~length:3000 in
  Array.iter (fun x -> Sketches.Space_saving.update a x; Sketches.Exact.update exact x) sa;
  Array.iter (fun x -> Sketches.Space_saving.update b x; Sketches.Exact.update exact x) sb;
  let m = Sketches.Space_saving.merge ~capacity a b in
  List.iter
    (fun (elt, est) ->
      let f = Sketches.Exact.frequency exact elt in
      Alcotest.(check bool) (Printf.sprintf "merged %d: est >= f" elt) true (est >= f))
    (Sketches.Space_saving.top m);
  (* The head element must be tracked and roughly correct. *)
  let head_est = Sketches.Space_saving.query m 0 in
  let head_f = Sketches.Exact.frequency exact 0 in
  Alcotest.(check bool)
    (Printf.sprintf "head tracked: %d >= %d" head_est head_f)
    true (head_est >= head_f)

(* ------------------------- Quantiles ------------------------- *)

let test_quantiles_exact_small () =
  let q = Sketches.Quantiles.create ~k:64 ~seed:31L () in
  for x = 1 to 50 do
    Sketches.Quantiles.update q x
  done;
  (* Below capacity nothing is compacted: ranks are exact. *)
  Alcotest.(check int) "rank(25)" 25 (Sketches.Quantiles.rank q 25);
  Alcotest.(check int) "rank(0)" 0 (Sketches.Quantiles.rank q 0);
  Alcotest.(check int) "rank(50)" 50 (Sketches.Quantiles.rank q 50)

let test_quantiles_rank_error () =
  let n = 20000 in
  let q = Sketches.Quantiles.create ~k:256 ~seed:32L () in
  let stream = Workload.Stream.generate ~seed:33L (Workload.Stream.Uniform 10000) ~length:n in
  let exact = Sketches.Exact.create () in
  Array.iter
    (fun x ->
      Sketches.Quantiles.update q x;
      Sketches.Exact.update exact x)
    stream;
  Alcotest.(check int) "n" n (Sketches.Quantiles.total q);
  (* Rank estimates within 2% of n at several probe points. *)
  List.iter
    (fun x ->
      let est = Sketches.Quantiles.rank q x and tru = Sketches.Exact.rank exact x in
      Alcotest.(check bool)
        (Printf.sprintf "rank(%d): |%d−%d| ≤ %d" x est tru (n / 50))
        true
        (abs (est - tru) <= n / 50))
    [ 1000; 2500; 5000; 7500; 9000 ];
  (* The sketch actually compresses. *)
  Alcotest.(check bool) "sublinear space" true (Sketches.Quantiles.retained q < n / 4)

let test_quantiles_quantile_query () =
  let q = Sketches.Quantiles.create ~k:128 ~seed:34L () in
  for x = 1 to 10000 do
    Sketches.Quantiles.update q x
  done;
  let med = Sketches.Quantiles.quantile q 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median=%d near 5000" med)
    true
    (med > 4500 && med < 5500);
  Alcotest.check_raises "phi out of range"
    (Invalid_argument "Quantiles.quantile: phi must lie in [0,1]") (fun () ->
      ignore (Sketches.Quantiles.quantile q 1.5))


let test_quantiles_copy_independent () =
  let q = Sketches.Quantiles.create ~k:32 ~seed:90L () in
  for x = 1 to 100 do
    Sketches.Quantiles.update q x
  done;
  let c = Sketches.Quantiles.copy q in
  Alcotest.(check int) "copy preserves n" 100 (Sketches.Quantiles.total c);
  Alcotest.(check int) "copy preserves ranks" (Sketches.Quantiles.rank q 50)
    (Sketches.Quantiles.rank c 50);
  for x = 101 to 200 do
    Sketches.Quantiles.update q x
  done;
  Alcotest.(check int) "original advanced" 200 (Sketches.Quantiles.total q);
  Alcotest.(check int) "copy unchanged" 100 (Sketches.Quantiles.total c)

let test_quantiles_merge_accuracy () =
  let a = Sketches.Quantiles.create ~k:256 ~seed:91L () in
  let b = Sketches.Quantiles.create ~k:256 ~seed:92L () in
  let exact = Sketches.Exact.create () in
  let sa = Workload.Stream.generate ~seed:93L (Workload.Stream.Uniform 10_000) ~length:8_000 in
  let sb = Workload.Stream.generate ~seed:94L (Workload.Stream.Uniform 10_000) ~length:12_000 in
  Array.iter
    (fun x ->
      Sketches.Quantiles.update a x;
      Sketches.Exact.update exact x)
    sa;
  Array.iter
    (fun x ->
      Sketches.Quantiles.update b x;
      Sketches.Exact.update exact x)
    sb;
  let m = Sketches.Quantiles.merge a b in
  Alcotest.(check int) "merged n" 20_000 (Sketches.Quantiles.total m);
  (* Inputs untouched. *)
  Alcotest.(check int) "a untouched" 8_000 (Sketches.Quantiles.total a);
  List.iter
    (fun x ->
      let est = Sketches.Quantiles.rank m x and tru = Sketches.Exact.rank exact x in
      Alcotest.(check bool)
        (Printf.sprintf "merged rank(%d): |%d-%d| <= 600" x est tru)
        true
        (abs (est - tru) <= 600))
    [ 1000; 5000; 9000 ]

let test_quantiles_merge_empty () =
  let a = Sketches.Quantiles.create ~k:16 ~seed:95L () in
  let b = Sketches.Quantiles.create ~k:16 ~seed:96L () in
  Sketches.Quantiles.update a 5;
  let m = Sketches.Quantiles.merge a b in
  Alcotest.(check int) "n" 1 (Sketches.Quantiles.total m);
  Alcotest.(check int) "rank" 1 (Sketches.Quantiles.rank m 10)

(* ------------------------- HyperLogLog ------------------------- *)

let test_hll_distinct_estimate () =
  let h = Sketches.Hyperloglog.create ~p:12 ~seed:41L () in
  let true_distinct = 50_000 in
  for x = 1 to true_distinct do
    (* Repeat updates: cardinality must ignore duplicates. *)
    Sketches.Hyperloglog.update h x;
    if x mod 3 = 0 then Sketches.Hyperloglog.update h x
  done;
  let est = Sketches.Hyperloglog.estimate h in
  let rel = abs_float (est -. float_of_int true_distinct) /. float_of_int true_distinct in
  Alcotest.(check bool) (Printf.sprintf "relative error %.3f < 0.05" rel) true (rel < 0.05)

let test_hll_small_range () =
  let h = Sketches.Hyperloglog.create ~p:10 ~seed:42L () in
  for x = 1 to 100 do
    Sketches.Hyperloglog.update h x
  done;
  let est = Sketches.Hyperloglog.estimate h in
  Alcotest.(check bool)
    (Printf.sprintf "small-range est=%.1f near 100" est)
    true
    (est > 85.0 && est < 115.0)

let test_hll_merge () =
  let a = Sketches.Hyperloglog.create ~p:11 ~seed:43L () in
  let b = Sketches.Hyperloglog.create ~p:11 ~seed:43L () in
  for x = 1 to 10_000 do
    Sketches.Hyperloglog.update a x
  done;
  for x = 5_001 to 15_000 do
    Sketches.Hyperloglog.update b x
  done;
  let m = Sketches.Hyperloglog.merge a b in
  let est = Sketches.Hyperloglog.estimate m in
  let rel = abs_float (est -. 15_000.0) /. 15_000.0 in
  Alcotest.(check bool) (Printf.sprintf "merged rel err %.3f < 0.08" rel) true (rel < 0.08);
  (* Merge is register-wise max: estimate(m) ≥ max of parts (monotone). *)
  Alcotest.(check bool) "merge dominates parts" true
    (est >= Sketches.Hyperloglog.estimate a *. 0.99)

let test_hll_merge_requires_same_params () =
  let a = Sketches.Hyperloglog.create ~p:10 ~seed:1L () in
  let b = Sketches.Hyperloglog.create ~p:11 ~seed:1L () in
  Alcotest.check_raises "p mismatch"
    (Invalid_argument "Hyperloglog.merge: sketches must share parameters and seed")
    (fun () -> ignore (Sketches.Hyperloglog.merge a b))


(* ------------------------- Exponential Histogram ------------------------- *)

let test_eh_exact_small () =
  let eh = Sketches.Exp_histogram.create ~epsilon:0.1 ~window:100 () in
  for _ = 1 to 5 do
    Sketches.Exp_histogram.add eh true
  done;
  (* 5 ones, all in window, few enough that no merging happened. *)
  let lo, hi = Sketches.Exp_histogram.true_count_bounds eh in
  Alcotest.(check bool) "bounds contain 5" true (lo <= 5 && 5 <= hi);
  Alcotest.(check bool) "estimate within bounds" true
    (let e = Sketches.Exp_histogram.estimate eh in
     e >= lo && e <= hi)

let test_eh_window_expiry () =
  let eh = Sketches.Exp_histogram.create ~epsilon:0.1 ~window:10 () in
  for _ = 1 to 5 do
    Sketches.Exp_histogram.add eh true
  done;
  (* Push the ones out with 10 zeros. *)
  for _ = 1 to 10 do
    Sketches.Exp_histogram.add eh false
  done;
  Alcotest.(check int) "expired" 0 (Sketches.Exp_histogram.estimate eh)

let test_eh_relative_error () =
  let epsilon = 0.1 in
  let window = 1000 in
  let eh = Sketches.Exp_histogram.create ~epsilon ~window () in
  let g = Rng.Splitmix.create 5L in
  let recent = Queue.create () in
  let true_count = ref 0 in
  let worst = ref 0.0 in
  for step = 1 to 20_000 do
    let one = Rng.Splitmix.next_float g < 0.4 in
    Sketches.Exp_histogram.add eh one;
    Queue.push one recent;
    if one then incr true_count;
    if Queue.length recent > window then begin
      let old = Queue.pop recent in
      if old then decr true_count
    end;
    if step mod 500 = 0 && !true_count > 0 then begin
      let est = Sketches.Exp_histogram.estimate eh in
      let rel = abs_float (float_of_int (est - !true_count)) /. float_of_int !true_count in
      if rel > !worst then worst := rel
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst relative error %.3f <= epsilon %.2f" !worst epsilon)
    true (!worst <= epsilon);
  (* Space stays logarithmic-ish: far fewer buckets than ones in window. *)
  Alcotest.(check bool)
    (Printf.sprintf "buckets %d < 120" (Sketches.Exp_histogram.buckets eh))
    true
    (Sketches.Exp_histogram.buckets eh < 120)

let test_eh_bounds_always_contain_truth () =
  let eh = Sketches.Exp_histogram.create ~epsilon:0.2 ~window:64 () in
  let g = Rng.Splitmix.create 6L in
  let recent = Queue.create () in
  let true_count = ref 0 in
  for _ = 1 to 2_000 do
    let one = Rng.Splitmix.next_float g < 0.5 in
    Sketches.Exp_histogram.add eh one;
    Queue.push one recent;
    if one then incr true_count;
    if Queue.length recent > 64 then begin
      let old = Queue.pop recent in
      if old then decr true_count
    end;
    let lo, hi = Sketches.Exp_histogram.true_count_bounds eh in
    if not (lo <= !true_count && !true_count <= hi) then
      Alcotest.failf "bounds [%d,%d] exclude true %d" lo hi !true_count
  done

(* ------------------------- KMV ------------------------- *)

let test_kmv_exact_below_k () =
  let s = Sketches.Kmv.create ~k:64 ~seed:7L () in
  for x = 1 to 40 do
    Sketches.Kmv.update s x;
    Sketches.Kmv.update s x (* duplicates are free *)
  done;
  Alcotest.(check (float 0.0)) "exact below k" 40.0 (Sketches.Kmv.estimate s);
  Alcotest.(check int) "retained" 40 (Sketches.Kmv.retained s)

let test_kmv_estimate_accuracy () =
  let s = Sketches.Kmv.create ~k:512 ~seed:8L () in
  let true_distinct = 100_000 in
  for x = 1 to true_distinct do
    Sketches.Kmv.update s x
  done;
  let est = Sketches.Kmv.estimate s in
  let rel = abs_float (est -. float_of_int true_distinct) /. float_of_int true_distinct in
  (* RSE ~ 1/sqrt(510) ~ 4.4%; accept 4 sigma. *)
  Alcotest.(check bool) (Printf.sprintf "relative error %.3f < 0.18" rel) true (rel < 0.18)

let test_kmv_monotone_estimates () =
  let s = Sketches.Kmv.create ~k:32 ~seed:9L () in
  let prev = ref 0.0 in
  for x = 1 to 5_000 do
    Sketches.Kmv.update s x;
    let e = Sketches.Kmv.estimate s in
    Alcotest.(check bool) "estimate never decreases" true (e >= !prev -. 1e-9);
    prev := e
  done

let test_kmv_merge_union () =
  let a = Sketches.Kmv.create ~k:256 ~seed:10L () in
  let b = Sketches.Kmv.create ~k:256 ~seed:10L () in
  for x = 1 to 30_000 do
    Sketches.Kmv.update a x
  done;
  for x = 15_001 to 45_000 do
    Sketches.Kmv.update b x
  done;
  let m = Sketches.Kmv.merge a b in
  let est = Sketches.Kmv.estimate m in
  let rel = abs_float (est -. 45_000.0) /. 45_000.0 in
  Alcotest.(check bool) (Printf.sprintf "merged union error %.3f < 0.25" rel) true
    (rel < 0.25);
  Alcotest.check_raises "merge requires same params"
    (Invalid_argument "Kmv.merge: sketches must share k and seed") (fun () ->
      ignore (Sketches.Kmv.merge a (Sketches.Kmv.create ~k:128 ~seed:10L ())))

(* ------------------------- Batched counter / Exact ------------------------- *)

let test_batched_counter () =
  let c = Sketches.Batched_counter.create () in
  Alcotest.(check int) "init" 0 (Sketches.Batched_counter.read c);
  Sketches.Batched_counter.update c 5;
  Sketches.Batched_counter.update c 0;
  Sketches.Batched_counter.update c 7;
  Alcotest.(check int) "sum" 12 (Sketches.Batched_counter.read c);
  Sketches.Batched_counter.reset c;
  Alcotest.(check int) "reset" 0 (Sketches.Batched_counter.read c);
  Alcotest.check_raises "negative batch"
    (Invalid_argument "Batched_counter.update: batch must be non-negative") (fun () ->
      Sketches.Batched_counter.update c (-1))

let test_exact_oracle () =
  let e = Sketches.Exact.create () in
  List.iter (Sketches.Exact.update e) [ 5; 5; 3; 5; 9; 3 ];
  Alcotest.(check int) "total" 6 (Sketches.Exact.total e);
  Alcotest.(check int) "distinct" 3 (Sketches.Exact.distinct e);
  Alcotest.(check int) "f_5" 3 (Sketches.Exact.frequency e 5);
  Alcotest.(check int) "rank(4)" 2 (Sketches.Exact.rank e 4);
  Alcotest.(check (list (pair int int)))
    "heavy hitters ≥ 1/3"
    [ (5, 3); (3, 2) ]
    (Sketches.Exact.heavy_hitters e ~threshold:0.33)

(* ------------------------- merge algebra ------------------------- *)

(* Agarwal et al.'s mergeable-summaries algebra: merge is commutative and
   associative with the empty sketch as identity — the property that lets
   the sharded pipeline fold shard deltas in whatever order the merger
   receives them. CountMin, Count-sketch, KMV and HLL merges are exact
   (cell-wise sums / set union / register max), so the laws hold on the
   full state; quantiles compaction is randomized, so associativity is
   checked on the rank-error guarantee instead. *)

let merge_family = Hashing.Family.seeded ~seed:77L ~rows:3 ~width:16

let alg_cm_of xs =
  let t = Sketches.Countmin.create ~family:merge_family in
  List.iter (Sketches.Countmin.update t) xs;
  t

let cm_state t =
  ( Sketches.Countmin.updates t,
    List.init (Sketches.Countmin.rows t) (fun r ->
        List.init (Sketches.Countmin.width t) (fun c ->
            Sketches.Countmin.cell t ~row:r ~col:c)) )

let alg_hll_of xs =
  let t = Sketches.Hyperloglog.create ~p:5 ~seed:77L () in
  List.iter (Sketches.Hyperloglog.update t) xs;
  t

let alg_kmv_of xs =
  let t = Sketches.Kmv.create ~k:8 ~seed:77L () in
  List.iter (Sketches.Kmv.update t) xs;
  t

let two_streams = QCheck.(pair (small_list (int_bound 40)) (small_list (int_bound 40)))

let three_streams =
  QCheck.(
    triple (small_list (int_bound 40)) (small_list (int_bound 40))
      (small_list (int_bound 40)))

let merge_algebra_tests =
  let open QCheck in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"CM merge commutes" ~count:60 two_streams (fun (xs, ys) ->
          let a = alg_cm_of xs and b = alg_cm_of ys in
          cm_state (Sketches.Countmin.merge a b)
          = cm_state (Sketches.Countmin.merge b a));
      Test.make ~name:"CM merge associates" ~count:60 three_streams
        (fun (xs, ys, zs) ->
          let a = alg_cm_of xs and b = alg_cm_of ys and c = alg_cm_of zs in
          cm_state
            (Sketches.Countmin.merge (Sketches.Countmin.merge a b) c)
          = cm_state
              (Sketches.Countmin.merge a (Sketches.Countmin.merge b c)));
      Test.make ~name:"CM merge identity" ~count:60
        (small_list (int_bound 40))
        (fun xs ->
          let a = alg_cm_of xs in
          cm_state (Sketches.Countmin.merge a (alg_cm_of [])) = cm_state a
          && cm_state (Sketches.Countmin.merge (alg_cm_of []) a) = cm_state a);
      Test.make ~name:"CM merge = concatenated stream" ~count:60 two_streams
        (fun (xs, ys) ->
          cm_state (Sketches.Countmin.merge (alg_cm_of xs) (alg_cm_of ys))
          = cm_state (alg_cm_of (xs @ ys)));
      Test.make ~name:"KMV merge commutes/associates" ~count:60 three_streams
        (fun (xs, ys, zs) ->
          let st t = (Sketches.Kmv.hashes t, Sketches.Kmv.retained t) in
          let a = alg_kmv_of xs and b = alg_kmv_of ys and c = alg_kmv_of zs in
          st (Sketches.Kmv.merge a b) = st (Sketches.Kmv.merge b a)
          && st (Sketches.Kmv.merge (Sketches.Kmv.merge a b) c)
             = st (Sketches.Kmv.merge a (Sketches.Kmv.merge b c))
          && st (Sketches.Kmv.merge a (alg_kmv_of [])) = st a
          && st (Sketches.Kmv.merge a b) = st (alg_kmv_of (xs @ ys)));
      Test.make ~name:"HLL merge commutes/associates" ~count:60 three_streams
        (fun (xs, ys, zs) ->
          let st = Sketches.Hyperloglog.registers in
          let a = alg_hll_of xs and b = alg_hll_of ys and c = alg_hll_of zs in
          st (Sketches.Hyperloglog.merge a b)
          = st (Sketches.Hyperloglog.merge b a)
          && st
               (Sketches.Hyperloglog.merge (Sketches.Hyperloglog.merge a b) c)
             = st
                 (Sketches.Hyperloglog.merge a
                    (Sketches.Hyperloglog.merge b c))
          && st (Sketches.Hyperloglog.merge a (alg_hll_of [])) = st a
          && st (Sketches.Hyperloglog.merge a b) = st (alg_hll_of (xs @ ys)));
      Test.make ~name:"quantiles merge keeps rank guarantee in any order"
        ~count:40
        (triple
           (list_of_size (Gen.int_range 1 120) (int_bound 500))
           (list_of_size (Gen.int_range 1 120) (int_bound 500))
           (list_of_size (Gen.int_range 1 120) (int_bound 500)))
        (fun (xs, ys, zs) ->
          let q_of l =
            let t = Sketches.Quantiles.create ~k:64 ~seed:77L () in
            List.iter (Sketches.Quantiles.update t) l;
            t
          in
          let a = q_of xs and b = q_of ys and c = q_of zs in
          let m1 =
            Sketches.Quantiles.merge (Sketches.Quantiles.merge a b) c
          in
          let m2 =
            Sketches.Quantiles.merge a (Sketches.Quantiles.merge b c)
          in
          let all = xs @ ys @ zs in
          let n = List.length all in
          let true_rank x = List.length (List.filter (fun v -> v <= x) all) in
          (* Totals are exact under any association; ranks stay within a
             generous KLL error budget for both fold orders. *)
          Sketches.Quantiles.total m1 = n
          && Sketches.Quantiles.total m2 = n
          && List.for_all
               (fun x ->
                 let tol = max 6 (n / 8) in
                 abs (Sketches.Quantiles.rank m1 x - true_rank x) <= tol
                 && abs (Sketches.Quantiles.rank m2 x - true_rank x) <= tol)
               [ 0; 125; 250; 375; 500 ]);
    ]

(* ------------------------- Count sketch merge ------------------------- *)

let test_count_sketch_merge_exact () =
  (* Count-sketch cells are linear in the stream, so merge must equal the
     sketch of the concatenated stream — including every signed cell. *)
  let mk xs =
    let t = Sketches.Count_sketch.create ~seed:5L ~rows:5 ~width:32 in
    List.iter (Sketches.Count_sketch.update t) xs;
    t
  in
  let xs = List.init 300 (fun i -> i * 7 mod 50)
  and ys = List.init 200 (fun i -> i * 13 mod 50) in
  let m = Sketches.Count_sketch.merge (mk xs) (mk ys) in
  let seq = mk (xs @ ys) in
  Alcotest.(check int) "updates add" 500 (Sketches.Count_sketch.updates m);
  for a = 0 to 49 do
    Alcotest.(check int)
      (Printf.sprintf "query %d" a)
      (Sketches.Count_sketch.query seq a)
      (Sketches.Count_sketch.query m a)
  done

let test_count_sketch_merge_requires_same_params () =
  let a = Sketches.Count_sketch.create ~seed:5L ~rows:3 ~width:16 in
  Alcotest.check_raises "different seed"
    (Invalid_argument
       "Count_sketch.merge: sketches must share seed, rows and width \
        (compatible hash families)") (fun () ->
      ignore
        (Sketches.Count_sketch.merge a
           (Sketches.Count_sketch.create ~seed:6L ~rows:3 ~width:16)));
  Alcotest.check_raises "different width"
    (Invalid_argument
       "Count_sketch.merge: sketches must share seed, rows and width \
        (compatible hash families)") (fun () ->
      ignore
        (Sketches.Count_sketch.merge a
           (Sketches.Count_sketch.create ~seed:5L ~rows:3 ~width:32)))

let test_cm_merge_requires_compatible_family () =
  let a = alg_cm_of [ 1; 2; 3 ] in
  let other =
    Sketches.Countmin.create
      ~family:(Hashing.Family.seeded ~seed:78L ~rows:3 ~width:16)
  in
  Alcotest.check_raises "different coins"
    (Invalid_argument "Countmin.merge: sketches must share a compatible hash family")
    (fun () -> ignore (Sketches.Countmin.merge a other))

(* ------------------------- properties ------------------------- *)

let qcheck_tests =
  merge_algebra_tests
  @ [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"CM query ≥ true frequency" ~count:60
         QCheck.(pair int64 (list_of_size (Gen.int_range 0 200) (int_bound 30)))
         (fun (seed, stream) ->
           let family = Hashing.Family.seeded ~seed ~rows:3 ~width:16 in
           let cm = Sketches.Countmin.create ~family in
           let exact = Sketches.Exact.create () in
           List.iter
             (fun a ->
               Sketches.Countmin.update cm a;
               Sketches.Exact.update exact a)
             stream;
           List.for_all
             (fun a -> Sketches.Countmin.query cm a >= Sketches.Exact.frequency exact a)
             (List.init 31 Fun.id)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantiles rank is monotone" ~count:40
         QCheck.(pair int64 (list_of_size (Gen.int_range 1 300) (int_bound 1000)))
         (fun (seed, stream) ->
           let q = Sketches.Quantiles.create ~k:32 ~seed () in
           List.iter (Sketches.Quantiles.update q) stream;
           let ranks = List.map (Sketches.Quantiles.rank q) [ 0; 250; 500; 750; 1000 ] in
           let rec mono = function
             | a :: (b :: _ as rest) -> a <= b && mono rest
             | _ -> true
           in
           mono ranks));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"space-saving never under-estimates tracked" ~count:40
         QCheck.(pair int64 (list_of_size (Gen.int_range 1 300) (int_bound 50)))
         (fun (_seed, stream) ->
           let ss = Sketches.Space_saving.create ~capacity:10 in
           let exact = Sketches.Exact.create () in
           List.iter
             (fun a ->
               Sketches.Space_saving.update ss a;
               Sketches.Exact.update exact a)
             stream;
           List.for_all
             (fun (elt, est) -> est >= Sketches.Exact.frequency exact elt)
             (Sketches.Space_saving.top ss)));
  ]

let () =
  ignore feed_stream;
  Alcotest.run "sketches"
    [
      ( "countmin",
        [
          Alcotest.test_case "agrees with spec" `Quick test_cm_agrees_with_spec;
          Alcotest.test_case "never under-estimates" `Quick test_cm_never_underestimates;
          Alcotest.test_case "(ε,δ) bound" `Quick test_cm_epsilon_delta_bound;
          Alcotest.test_case "sizing" `Quick test_cm_sizing;
          Alcotest.test_case "updates and error bound" `Quick
            test_cm_updates_and_error_bound;
          Alcotest.test_case "reset" `Quick test_cm_reset;
          Alcotest.test_case "merge family check" `Quick
            test_cm_merge_requires_compatible_family;
        ] );
      ( "count sketch",
        [
          Alcotest.test_case "ballpark estimates" `Quick
            test_count_sketch_unbiased_ballpark;
          Alcotest.test_case "shape" `Quick test_count_sketch_shape;
          Alcotest.test_case "merge = concatenated stream" `Quick
            test_count_sketch_merge_exact;
          Alcotest.test_case "merge parameter check" `Quick
            test_count_sketch_merge_requires_same_params;
        ] );
      ( "morris",
        [
          Alcotest.test_case "exact small" `Quick test_morris_exact_small;
          Alcotest.test_case "unbiased" `Quick test_morris_unbiased;
          Alcotest.test_case "small base tightens" `Quick test_morris_small_base_tightens;
          Alcotest.test_case "create_for_error" `Quick test_morris_create_for_error;
        ] );
      ( "space-saving",
        [
          Alcotest.test_case "exact under capacity" `Quick
            test_space_saving_exact_when_under_capacity;
          Alcotest.test_case "error bounds" `Quick test_space_saving_bounds;
          Alcotest.test_case "capacity respected" `Quick
            test_space_saving_capacity_respected;
          Alcotest.test_case "copy independent" `Quick test_space_saving_copy_independent;
          Alcotest.test_case "merge exact case" `Quick test_space_saving_merge_exact_case;
          Alcotest.test_case "merge preserves bounds" `Quick
            test_space_saving_merge_preserves_bounds;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "exact small" `Quick test_quantiles_exact_small;
          Alcotest.test_case "rank error" `Quick test_quantiles_rank_error;
          Alcotest.test_case "quantile query" `Quick test_quantiles_quantile_query;
          Alcotest.test_case "copy independent" `Quick test_quantiles_copy_independent;
          Alcotest.test_case "merge accuracy" `Quick test_quantiles_merge_accuracy;
          Alcotest.test_case "merge empty" `Quick test_quantiles_merge_empty;
        ] );
      ( "hyperloglog",
        [
          Alcotest.test_case "distinct estimate" `Quick test_hll_distinct_estimate;
          Alcotest.test_case "small range" `Quick test_hll_small_range;
          Alcotest.test_case "merge" `Quick test_hll_merge;
          Alcotest.test_case "merge params" `Quick test_hll_merge_requires_same_params;
        ] );
      ( "exponential histogram",
        [
          Alcotest.test_case "exact small" `Quick test_eh_exact_small;
          Alcotest.test_case "window expiry" `Quick test_eh_window_expiry;
          Alcotest.test_case "relative error" `Quick test_eh_relative_error;
          Alcotest.test_case "bounds contain truth" `Quick
            test_eh_bounds_always_contain_truth;
        ] );
      ( "kmv",
        [
          Alcotest.test_case "exact below k" `Quick test_kmv_exact_below_k;
          Alcotest.test_case "estimate accuracy" `Quick test_kmv_estimate_accuracy;
          Alcotest.test_case "monotone estimates" `Quick test_kmv_monotone_estimates;
          Alcotest.test_case "merge union" `Quick test_kmv_merge_union;
        ] );
      ( "counter and oracle",
        [
          Alcotest.test_case "batched counter" `Quick test_batched_counter;
          Alcotest.test_case "exact oracle" `Quick test_exact_oracle;
        ] );
      ("properties", qcheck_tests);
    ]
