(* ivl-cli: ad-hoc access to the library's checkers, simulators and sketches.

   Subcommands:
     replay   print a canned scenario's history and checker verdicts
     fuzz     random-schedule fuzzing of an algorithm against its spec
     steps    step-complexity measurement in the SWMR simulator
     sketch   run the concurrent CountMin on a synthetic stream

   Examples:
     dune exec bin/main.exe -- replay example9
     dune exec bin/main.exe -- fuzz --algo pcm --trials 500
     dune exec bin/main.exe -- steps --algo snapshot --procs 16
     dune exec bin/main.exe -- sketch --shape zipf --skew 1.2 --length 100000 *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)
module Counter_explain = Ivl.Explain.Make (Spec.Counter_spec)


(* ------------------------------ replay ------------------------------ *)

let example9_hash row x =
  match (row, x) with 0, (0 | 1) -> 0 | 0, _ -> 1 | 1, (0 | 2) -> 0 | _ -> 1

let example9_family =
  Hashing.Family.of_mapping ~width:2
    [| (fun x -> example9_hash 0 x); (fun x -> example9_hash 1 x) |]

module Cm9 = Spec.Countmin_spec.Fixed (struct
  let family = example9_family
end)

module Cm9_check = Ivl.Check.Make (Cm9)
module Cm9_lin = Ivl.Lincheck.Make (Cm9)
module Cm9_explain = Ivl.Explain.Make (Cm9)
module Updown_check = Ivl.Check.Make (Spec.Updown_spec)
module Updown_lin = Ivl.Lincheck.Make (Spec.Updown_spec)

let replay_example9 () =
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  let sched = S.Explicit (List.init 11 (fun _ -> 0) @ [ 1; 1; 1; 1; 0 ]) in
  let r = M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched () in
  print_endline "Example 9 (Section 5): update(a) straddles two queries";
  print_endline (Hist.Ascii.render_int r.M.history);
  print_newline ();
  print_string (Cm9_explain.to_string r.M.history)

let replay_figure2 () =
  let n = 3 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 2; 0; 0; 1; 1; 2; 2 ]) ()
  in
  print_endline "Figure 2 (Section 6): read misses an earlier update, sees a later one";
  print_endline (Hist.Ascii.render_int r.M.history);
  print_newline ();
  print_string (Counter_explain.to_string r.M.history)

let replay scenario =
  (match scenario with
  | "example9" -> replay_example9 ()
  | "figure2" -> replay_figure2 ()
  | other ->
      Printf.eprintf "unknown scenario %s (available: example9 figure2)\n" other;
      exit 1);
  0

(* ------------------------------ fuzz ------------------------------ *)

let fuzz algo trials seed =
  let violations = ref 0 and non_lin = ref 0 in
  for t = 1 to trials do
    let s = Int64.add seed (Int64.of_int t) in
    let history =
      match algo with
      | "counter" ->
          let n = 3 in
          let scripts =
            [|
              [
                A.Ivl_counter.update_op ~proc:0 ~amount:3 ();
                A.Ivl_counter.update_op ~proc:0 ~amount:1 ();
              ];
              [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
              [ A.Ivl_counter.read_op ~n (); A.Ivl_counter.read_op ~n () ];
            |]
          in
          (M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:(S.Random s) ())
            .M.history
      | "snapshot" ->
          let n = 3 in
          let scripts =
            [|
              [ Simulation.Snapshot.update_op ~n ~proc:0 ~amount:3 () ];
              [ Simulation.Snapshot.update_op ~n ~proc:1 ~amount:2 () ];
              [ Simulation.Snapshot.read_op ~n () ];
            |]
          in
          (M.run ~registers:(Simulation.Snapshot.registers ~n) ~scripts
             ~sched:(S.Random s) ())
            .M.history
      | "pcm" ->
          let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
          let scripts =
            [|
              List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 0 ];
              [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
            |]
          in
          (M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched:(S.Random s) ())
            .M.history
      | "updown-buggy" | "updown-safe" ->
          let variant = if algo = "updown-buggy" then `Buggy else `Safe in
          let scripts =
            [|
              [
                A.Updown_two_cell.update_op ~delta:1 ();
                A.Updown_two_cell.update_op ~delta:(-1) ();
              ];
              [ A.Updown_two_cell.read_op ~variant () ];
            |]
          in
          (M.run ~registers:A.Updown_two_cell.registers ~scripts
             ~sched:(S.Stall { victim = 1; after = 1; for_steps = 4; seed = s })
             ())
            .M.history
      | other ->
          Printf.eprintf
            "unknown algo %s (available: counter snapshot pcm updown-buggy updown-safe)\n"
            other;
          exit 1
    in
    let is_ivl =
      match algo with
      | "pcm" -> Cm9_check.is_ivl history
      | "updown-buggy" | "updown-safe" -> Updown_check.is_ivl history
      | _ -> Counter_check.is_ivl history
    in
    let is_lin =
      match algo with
      | "pcm" -> Cm9_lin.is_linearizable history
      | "updown-buggy" | "updown-safe" -> Updown_lin.is_linearizable history
      | _ -> Counter_lin.is_linearizable history
    in
    if not is_ivl then begin
      incr violations;
      Printf.printf "IVL violation at trial %d:\n%s\n" t
        (Hist.Ascii.render_int history)
    end;
    if not is_lin then incr non_lin
  done;
  Printf.printf "%d trials: %d IVL violations, %d non-linearizable schedules\n" trials
    !violations !non_lin;
  (* The snapshot counter should also be linearizable everywhere. *)
  if !violations = 0 then 0 else 1

(* ------------------------------ steps ------------------------------ *)

let steps algo procs =
  let n = procs in
  let result =
    match algo with
    | "ivl" ->
        let scripts =
          Array.init (n + 1) (fun p ->
              if p < n then [ A.Ivl_counter.update_op ~proc:p ~amount:1 () ]
              else [ A.Ivl_counter.read_op ~n:(n + 1) () ])
        in
        M.run
          ~registers:(A.Ivl_counter.registers ~n:(n + 1))
          ~scripts ~sched:S.Round_robin ()
    | "snapshot" ->
        let scripts =
          Array.init (n + 1) (fun p ->
              if p < n then [ Simulation.Snapshot.update_op ~n:(n + 1) ~proc:p ~amount:1 () ]
              else [ Simulation.Snapshot.read_op ~n:(n + 1) () ])
        in
        M.run
          ~registers:(Simulation.Snapshot.registers ~n:(n + 1))
          ~scripts ~sched:S.Round_robin ()
    | other ->
        Printf.eprintf "unknown algo %s (available: ivl snapshot)\n" other;
        exit 1
  in
  Printf.printf "%s batched counter, %d updaters + 1 reader (round-robin):\n" algo n;
  List.iter
    (fun (label, steps) ->
      let avg =
        float_of_int (List.fold_left ( + ) 0 steps) /. float_of_int (List.length steps)
      in
      Printf.printf "  %-8s avg %.1f steps  max %d\n" label avg
        (List.fold_left max 0 steps))
    (M.steps_by_label result);
  0

(* ------------------------------ sketch ------------------------------ *)

let sketch shape skew universe length alpha delta top =
  let shape =
    match shape with
    | "zipf" -> Workload.Stream.Zipf (universe, skew)
    | "uniform" -> Workload.Stream.Uniform universe
    | "bursty" -> Workload.Stream.Bursty (universe, 64)
    | other ->
        Printf.eprintf "unknown shape %s (available: zipf uniform bursty)\n" other;
        exit 1
  in
  let pcm = Conc.Pcm.create_for_error ~seed:42L ~alpha ~delta in
  Printf.printf "PCM %d x %d, %s, %d updates on 4 domains\n" (Conc.Pcm.rows pcm)
    (Conc.Pcm.width pcm)
    (Workload.Stream.describe shape)
    length;
  let stream = Workload.Stream.generate ~seed:7L shape ~length in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:4 (fun i b ->
        Conc.Barrier.await b;
        Array.iter (Conc.Pcm.update pcm) chunks.(i))
  in
  Printf.printf "ingested in %.3fs (%.2f Mops/s)\n" dt
    (float_of_int length /. dt /. 1e6);
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  Printf.printf "%-8s %-10s %-10s %-8s\n" "element" "true" "estimate" "excess";
  List.iter
    (fun e ->
      let f = Sketches.Exact.frequency exact e and est = Conc.Pcm.query pcm e in
      Printf.printf "%-8d %-10d %-10d %-8d\n" e f est (est - f))
    (List.init top Fun.id);
  0

(* ------------------------------ envelope ------------------------------ *)

(* Record a real multicore execution of the IVL counter and validate every
   read against its monotone envelope (Ivl.Monotone) — scalable end-to-end
   checking on executions far beyond the exact checkers' reach. *)
let envelope writers updates reads =
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let rec_ = Conc.Recorder.create ~domains:(writers + 1) in
  let c = Conc.Ivl_counter.create ~procs:writers in
  let _ =
    Conc.Runner.parallel ~domains:(writers + 1) (fun i ->
        if i < writers then
          for k = 1 to updates do
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 (k mod 5) (fun () ->
                Conc.Ivl_counter.update c ~proc:i (k mod 5))
          done
        else
          for _ = 1 to reads do
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Ivl_counter.read c))
          done)
  in
  let h = Conc.Recorder.history rec_ in
  let total_ops = List.length (Hist.History.completed h) in
  let envelopes = Mono.envelopes h in
  let widths =
    List.map (fun (e : Mono.envelope) -> float_of_int (e.Mono.high - e.Mono.low)) envelopes
  in
  let violations = Mono.violations h in
  Printf.printf "recorded %d operations (%d writers x %d updates + %d reads)\n"
    total_ops writers updates reads;
  if widths <> [] then begin
    let arr = Array.of_list widths in
    Printf.printf "read envelopes: median width %.0f, p99 %.0f, max %.0f\n"
      (Stats.Percentile.median arr)
      (Stats.Percentile.percentile arr 99.0)
      (Stats.Percentile.percentile arr 100.0)
  end;
  Printf.printf "envelope violations: %d\n" (List.length violations);
  if violations = [] then 0 else 1

(* ------------------------------ explore ------------------------------ *)

(* Exhaustive schedule-space model checking of a small configuration. *)
let explore algo updaters =
  let histories, check, lin =
    match algo with
    | "counter" ->
        let n = updaters + 1 in
        let mk () =
          Array.init n (fun p ->
              if p < updaters then [ A.Ivl_counter.update_op ~proc:p ~amount:(p + 2) () ]
              else [ A.Ivl_counter.read_op ~n () ])
        in
        ( M.explore ~registers:(A.Ivl_counter.registers ~n) ~scripts:mk (),
          Counter_check.is_ivl,
          Counter_lin.is_linearizable )
    | "pcm" ->
        let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
        let mk () =
          [|
            List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
            [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
          |]
        in
        (M.explore ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts:mk (),
         Cm9_check.is_ivl, Cm9_lin.is_linearizable)
    | "updown-buggy" | "updown-safe" ->
        let variant = if algo = "updown-buggy" then `Buggy else `Safe in
        let mk () =
          [|
            [ A.Updown_two_cell.update_op ~delta:1 ();
              A.Updown_two_cell.update_op ~delta:(-1) () ];
            [ A.Updown_two_cell.read_op ~variant () ];
          |]
        in
        (M.explore ~registers:A.Updown_two_cell.registers ~scripts:mk (),
         Updown_check.is_ivl, Updown_lin.is_linearizable)
    | other ->
        Printf.eprintf
          "unknown algo %s (available: counter pcm updown-buggy updown-safe)\n" other;
        exit 1
  in
  let total = List.length histories in
  let ivl_fail = List.filter (fun h -> not (check h)) histories in
  let lin_ok = List.length (List.filter lin histories) in
  Printf.printf "%d distinct histories over the entire schedule space\n" total;
  Printf.printf "IVL: %d/%d    linearizable: %d/%d\n" (total - List.length ivl_fail)
    total lin_ok total;
  (match ivl_fail with
  | [] -> ()
  | h :: _ ->
      Printf.printf "\nfirst IVL violation:\n%s\n" (Hist.Ascii.render_int h));
  if ivl_fail = [] then 0 else 1

(* ------------------------------ cmdliner ------------------------------ *)

open Cmdliner

let replay_cmd =
  let scenario =
    Arg.(value & pos 0 string "example9" & info [] ~docv:"SCENARIO" ~doc:"example9 or figure2")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a paper scenario through the checkers")
    Term.(const replay $ scenario)

let fuzz_cmd =
  let algo =
    Arg.(
      value
      & opt string "counter"
      & info [ "algo" ] ~doc:"counter, snapshot, pcm, updown-buggy or updown-safe")
  in
  let trials = Arg.(value & opt int 200 & info [ "trials" ] ~doc:"number of random schedules") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"base seed") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz an algorithm with random schedules and check IVL")
    Term.(const fuzz $ algo $ trials $ seed)

let steps_cmd =
  let algo = Arg.(value & opt string "ivl" & info [ "algo" ] ~doc:"ivl or snapshot") in
  let procs = Arg.(value & opt int 8 & info [ "procs" ] ~doc:"number of updaters") in
  Cmd.v
    (Cmd.info "steps" ~doc:"Measure step complexity in the SWMR simulator")
    Term.(const steps $ algo $ procs)

let explore_cmd =
  let algo =
    Arg.(value & opt string "counter"
         & info [ "algo" ] ~doc:"counter, pcm, updown-buggy or updown-safe")
  in
  let updaters = Arg.(value & opt int 2 & info [ "updaters" ] ~doc:"updaters (counter only)") in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Model-check a small configuration over every schedule")
    Term.(const explore $ algo $ updaters)

let envelope_cmd =
  let writers = Arg.(value & opt int 3 & info [ "writers" ] ~doc:"updater domains") in
  let updates = Arg.(value & opt int 2000 & info [ "updates" ] ~doc:"updates per writer") in
  let reads = Arg.(value & opt int 500 & info [ "reads" ] ~doc:"concurrent reads") in
  Cmd.v
    (Cmd.info "envelope"
       ~doc:"Record a multicore run and validate reads against IVL envelopes")
    Term.(const envelope $ writers $ updates $ reads)

let sketch_cmd =
  let shape = Arg.(value & opt string "zipf" & info [ "shape" ] ~doc:"zipf, uniform or bursty") in
  let skew = Arg.(value & opt float 1.2 & info [ "skew" ] ~doc:"zipf exponent") in
  let universe = Arg.(value & opt int 10_000 & info [ "universe" ] ~doc:"element universe") in
  let length = Arg.(value & opt int 100_000 & info [ "length" ] ~doc:"stream length") in
  let alpha = Arg.(value & opt float 0.01 & info [ "alpha" ] ~doc:"relative error") in
  let delta = Arg.(value & opt float 0.01 & info [ "delta" ] ~doc:"failure probability") in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"elements to report") in
  Cmd.v
    (Cmd.info "sketch" ~doc:"Run the concurrent CountMin on a synthetic stream")
    Term.(const sketch $ shape $ skew $ universe $ length $ alpha $ delta $ top)

let () =
  let doc = "Intermediate Value Linearizability: checkers, simulators, sketches" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ivl-cli" ~doc) [ replay_cmd; fuzz_cmd; steps_cmd; sketch_cmd; envelope_cmd; explore_cmd ]))
