(* ivl-cli: ad-hoc access to the library's checkers, simulators and sketches.

   Subcommands:
     replay   print a canned scenario's history and checker verdicts
     fuzz     random-schedule fuzzing of an algorithm against its spec
     steps    step-complexity measurement in the SWMR simulator
     sketch   run the concurrent CountMin on a synthetic stream

   Examples:
     dune exec bin/main.exe -- replay example9
     dune exec bin/main.exe -- fuzz --algo pcm --trials 500
     dune exec bin/main.exe -- steps --algo snapshot --procs 16
     dune exec bin/main.exe -- sketch --shape zipf --skew 1.2 --length 100000 *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)
module Counter_explain = Ivl.Explain.Make (Spec.Counter_spec)


(* The exact checkers refuse histories beyond their 62-operation bitmask
   budget; turn the raised exception into a friendly diagnostic (exit 2)
   rather than an uncaught backtrace. *)
let with_search_guard f =
  try f ()
  with Ivl.Search.Too_many_operations n ->
    Printf.eprintf
      "error: this history has %d candidate operations, but the exact checker \
       budget is 62 ops.\n\
       Shorten the scripts, or use the scalable envelope checker (the \
       `envelope` subcommand) for large histories.\n"
      n;
    2

(* ------------------------------ replay ------------------------------ *)

let example9_hash row x =
  match (row, x) with 0, (0 | 1) -> 0 | 0, _ -> 1 | 1, (0 | 2) -> 0 | _ -> 1

let example9_family =
  Hashing.Family.of_mapping ~width:2
    [| (fun x -> example9_hash 0 x); (fun x -> example9_hash 1 x) |]

module Cm9 = Spec.Countmin_spec.Fixed (struct
  let family = example9_family
end)

module Cm9_check = Ivl.Check.Make (Cm9)
module Cm9_lin = Ivl.Lincheck.Make (Cm9)
module Cm9_explain = Ivl.Explain.Make (Cm9)
module Updown_check = Ivl.Check.Make (Spec.Updown_spec)
module Updown_lin = Ivl.Lincheck.Make (Spec.Updown_spec)

let replay_example9 () =
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  let sched = S.Explicit (List.init 11 (fun _ -> 0) @ [ 1; 1; 1; 1; 0 ]) in
  let r = M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched () in
  print_endline "Example 9 (Section 5): update(a) straddles two queries";
  print_endline (Hist.Ascii.render_int r.M.history);
  print_newline ();
  print_string (Cm9_explain.to_string r.M.history)

let replay_figure2 () =
  let n = 3 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 2; 0; 0; 1; 1; 2; 2 ]) ()
  in
  print_endline "Figure 2 (Section 6): read misses an earlier update, sees a later one";
  print_endline (Hist.Ascii.render_int r.M.history);
  print_newline ();
  print_string (Counter_explain.to_string r.M.history)

let replay scenario =
  with_search_guard @@ fun () ->
  (match scenario with
  | "example9" -> replay_example9 ()
  | "figure2" -> replay_figure2 ()
  | other ->
      Printf.eprintf "unknown scenario %s (available: example9 figure2)\n" other;
      exit 1);
  0

(* ------------------------------ fuzz ------------------------------ *)

(* A fuzzable configuration: fresh scripts per run (operations carry run-local
   closures), pluggable schedule and fault plan, and the matching checkers. *)
type fuzz_target = {
  procs : int;
  run : faults:Simulation.Fault.plan -> S.t -> M.result;
  traced : faults:Simulation.Fault.plan -> S.t -> M.result * int list;
  default_sched : int64 -> S.t;
  is_ivl : (int, int, int) Hist.History.t -> bool;
  is_lin : (int, int, int) Hist.History.t -> bool;
}

let fuzz_target ?(ops = 1) algo =
  let make ~procs ~registers ~scripts ~default_sched ~is_ivl ~is_lin =
    (* Repeat each process's script [ops] times (operations carry run-local
       closures, so every repetition re-invokes the constructors). *)
    let scripts () =
      Array.map
        (fun base -> List.concat (List.init ops (fun _ -> base ())))
        (scripts ())
    in
    {
      procs;
      run =
        (fun ~faults sched -> M.run ~faults ~registers ~scripts:(scripts ()) ~sched ());
      traced =
        (fun ~faults sched ->
          M.run_traced ~faults ~registers ~scripts:(scripts ()) ~sched ());
      default_sched;
      is_ivl;
      is_lin;
    }
  in
  match algo with
  | "counter" ->
      let n = 3 in
      make ~procs:n
        ~registers:(A.Ivl_counter.registers ~n)
        ~scripts:(fun () ->
          [|
            (fun () ->
              [
                A.Ivl_counter.update_op ~proc:0 ~amount:3 ();
                A.Ivl_counter.update_op ~proc:0 ~amount:1 ();
              ]);
            (fun () -> [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ]);
            (fun () -> [ A.Ivl_counter.read_op ~n (); A.Ivl_counter.read_op ~n () ]);
          |])
        ~default_sched:(fun s -> S.Random s)
        ~is_ivl:Counter_check.is_ivl ~is_lin:Counter_lin.is_linearizable
  | "snapshot" ->
      let n = 3 in
      make ~procs:n
        ~registers:(Simulation.Snapshot.registers ~n)
        ~scripts:(fun () ->
          [|
            (fun () -> [ Simulation.Snapshot.update_op ~n ~proc:0 ~amount:3 () ]);
            (fun () -> [ Simulation.Snapshot.update_op ~n ~proc:1 ~amount:2 () ]);
            (fun () -> [ Simulation.Snapshot.read_op ~n () ]);
          |])
        ~default_sched:(fun s -> S.Random s)
        ~is_ivl:Counter_check.is_ivl ~is_lin:Counter_lin.is_linearizable
  | "pcm" ->
      let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
      make ~procs:2
        ~registers:(A.Pcm_sim.zero_registers pcm)
        ~scripts:(fun () ->
          [|
            (fun () ->
              List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 0 ]);
            (fun () ->
              [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ]);
          |])
        ~default_sched:(fun s -> S.Random s)
        ~is_ivl:Cm9_check.is_ivl ~is_lin:Cm9_lin.is_linearizable
  | "updown-buggy" | "updown-safe" ->
      let variant = if algo = "updown-buggy" then `Buggy else `Safe in
      make ~procs:2 ~registers:A.Updown_two_cell.registers
        ~scripts:(fun () ->
          [|
            (fun () ->
              [
                A.Updown_two_cell.update_op ~delta:1 ();
                A.Updown_two_cell.update_op ~delta:(-1) ();
              ]);
            (fun () -> [ A.Updown_two_cell.read_op ~variant () ]);
          |])
        ~default_sched:(fun s ->
          S.Stall { victim = 1; after = 1; for_steps = 4; seed = s })
        ~is_ivl:Updown_check.is_ivl ~is_lin:Updown_lin.is_linearizable
  | other ->
      Printf.eprintf
        "unknown algo %s (available: counter snapshot pcm updown-buggy updown-safe)\n"
        other;
      exit 1

(* One random crash fault derived from the trial seed: half the time a
   crash-stop after a few total steps, half the time a mid-operation death. *)
let random_crash_plan ~procs s =
  let g = Rng.Splitmix.create (Int64.logxor s 0x9E3779B97F4A7C15L) in
  let victim = Rng.Splitmix.next_int g procs in
  if Rng.Splitmix.next_int g 2 = 0 then
    [ Simulation.Fault.Crash_stop { victim; after_steps = 1 + Rng.Splitmix.next_int g 6 } ]
  else
    [
      Simulation.Fault.Crash_in_op
        {
          victim;
          nth_op = 1 + Rng.Splitmix.next_int g 2;
          after_op_steps = 1 + Rng.Splitmix.next_int g 2;
        };
    ]

let shrink_and_print t ~faults sched =
  let _, trace = t.traced ~faults sched in
  let violates cand =
    not (t.is_ivl (t.run ~faults (S.Explicit cand)).M.history)
  in
  if not (violates trace) then
    print_endline "  (trace replay did not reproduce the violation; skipping shrink)"
  else begin
    let minimal = Simulation.Shrink.minimize ~check:violates trace in
    let r = t.run ~faults (S.Explicit minimal) in
    Printf.printf "shrunk schedule: %d -> %d steps (%d replays)\n"
      (List.length trace) (List.length minimal)
      (Simulation.Shrink.checks_used ());
    Printf.printf "replay with: Explicit [%s]\n"
      (String.concat "; " (List.map string_of_int minimal));
    Printf.printf "minimized history:\n%s\n" (Hist.Ascii.render_int r.M.history)
  end

let fuzz algo trials seed ops shrink crash =
  with_search_guard @@ fun () ->
  if ops < 1 then begin
    Printf.eprintf "error: --ops must be >= 1\n";
    exit 1
  end;
  let t = fuzz_target ~ops algo in
  let violations = ref 0
  and non_lin = ref 0
  and crashed_runs = ref 0
  and abandoned_ops = ref 0
  and audit_failures = ref 0
  and shrunk = ref false in
  for trial = 1 to trials do
    let s = Int64.add seed (Int64.of_int trial) in
    let faults = if crash then random_crash_plan ~procs:t.procs s else [] in
    let sched = t.default_sched s in
    let r = t.run ~faults sched in
    if r.M.crashed <> [] then begin
      incr crashed_runs;
      abandoned_ops :=
        !abandoned_ops + List.length (Hist.History.pending r.M.history)
    end;
    (match M.audit_progress r with
    | Ok _ -> ()
    | Error msg ->
        incr audit_failures;
        Printf.printf "progress audit failed at trial %d (%s): %s\n" trial
          (Simulation.Fault.describe faults)
          msg);
    let h = r.M.history in
    if not (t.is_ivl h) then begin
      incr violations;
      Printf.printf "IVL violation at trial %d (%s):\n%s\n" trial
        (Simulation.Fault.describe faults)
        (Hist.Ascii.render_int h);
      if shrink && not !shrunk then begin
        shrunk := true;
        shrink_and_print t ~faults sched
      end
    end;
    if not (t.is_lin h) then incr non_lin
  done;
  Printf.printf "%d trials: %d IVL violations, %d non-linearizable schedules\n"
    trials !violations !non_lin;
  if crash then
    Printf.printf
      "crash injection: %d/%d runs crashed a process (%d operations left \
       pending), %d progress-audit failures\n"
      !crashed_runs trials !abandoned_ops !audit_failures;
  if !violations = 0 && !audit_failures = 0 then 0 else 1

(* ------------------------------ steps ------------------------------ *)

let steps algo procs =
  let n = procs in
  let result =
    match algo with
    | "ivl" ->
        let scripts =
          Array.init (n + 1) (fun p ->
              if p < n then [ A.Ivl_counter.update_op ~proc:p ~amount:1 () ]
              else [ A.Ivl_counter.read_op ~n:(n + 1) () ])
        in
        M.run
          ~registers:(A.Ivl_counter.registers ~n:(n + 1))
          ~scripts ~sched:S.Round_robin ()
    | "snapshot" ->
        let scripts =
          Array.init (n + 1) (fun p ->
              if p < n then [ Simulation.Snapshot.update_op ~n:(n + 1) ~proc:p ~amount:1 () ]
              else [ Simulation.Snapshot.read_op ~n:(n + 1) () ])
        in
        M.run
          ~registers:(Simulation.Snapshot.registers ~n:(n + 1))
          ~scripts ~sched:S.Round_robin ()
    | other ->
        Printf.eprintf "unknown algo %s (available: ivl snapshot)\n" other;
        exit 1
  in
  Printf.printf "%s batched counter, %d updaters + 1 reader (round-robin):\n" algo n;
  List.iter
    (fun (label, steps) ->
      let avg =
        float_of_int (List.fold_left ( + ) 0 steps) /. float_of_int (List.length steps)
      in
      Printf.printf "  %-8s avg %.1f steps  max %d\n" label avg
        (List.fold_left max 0 steps))
    (M.steps_by_label result);
  0

(* ------------------------------ sketch ------------------------------ *)

let parse_shape shape skew universe =
  match shape with
  | "zipf" -> Workload.Stream.Zipf (universe, skew)
  | "uniform" -> Workload.Stream.Uniform universe
  | "bursty" -> Workload.Stream.Bursty (universe, 64)
  | other ->
      Printf.eprintf "unknown shape %s (available: zipf uniform bursty)\n" other;
      exit 1

let sketch shape skew universe length alpha delta top =
  let shape = parse_shape shape skew universe in
  let pcm = Conc.Pcm.create_for_error ~seed:42L ~alpha ~delta in
  Printf.printf "PCM %d x %d, %s, %d updates on 4 domains\n" (Conc.Pcm.rows pcm)
    (Conc.Pcm.width pcm)
    (Workload.Stream.describe shape)
    length;
  let stream = Workload.Stream.generate ~seed:7L shape ~length in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:4 (fun i b ->
        Conc.Barrier.await b;
        Array.iter (Conc.Pcm.update pcm) chunks.(i))
  in
  Printf.printf "ingested in %.3fs (%.2f Mops/s)\n" dt
    (float_of_int length /. dt /. 1e6);
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  Printf.printf "%-8s %-10s %-10s %-8s\n" "element" "true" "estimate" "excess";
  List.iter
    (fun e ->
      let f = Sketches.Exact.frequency exact e and est = Conc.Pcm.query pcm e in
      Printf.printf "%-8d %-10d %-10d %-8d\n" e f est (est - f))
    (List.init top Fun.id);
  0

(* ------------------------------ envelope ------------------------------ *)

(* Record a real multicore execution of the IVL counter and validate every
   read against its monotone envelope (Ivl.Monotone) — scalable end-to-end
   checking on executions far beyond the exact checkers' reach. *)
let envelope writers updates reads =
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let rec_ = Conc.Recorder.create ~domains:(writers + 1) in
  let c = Conc.Ivl_counter.create ~procs:writers in
  let _ =
    Conc.Runner.parallel ~domains:(writers + 1) (fun i ->
        if i < writers then
          for k = 1 to updates do
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 (k mod 5) (fun () ->
                Conc.Ivl_counter.update c ~proc:i (k mod 5))
          done
        else
          for _ = 1 to reads do
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Ivl_counter.read c))
          done)
  in
  let h = Conc.Recorder.history rec_ in
  let total_ops = List.length (Hist.History.completed h) in
  let envelopes = Mono.envelopes h in
  let widths =
    List.map (fun (e : Mono.envelope) -> float_of_int (e.Mono.high - e.Mono.low)) envelopes
  in
  let violations = Mono.violations h in
  Printf.printf "recorded %d operations (%d writers x %d updates + %d reads)\n"
    total_ops writers updates reads;
  if widths <> [] then begin
    let arr = Array.of_list widths in
    Printf.printf "read envelopes: median width %.0f, p99 %.0f, max %.0f\n"
      (Stats.Percentile.median arr)
      (Stats.Percentile.percentile arr 99.0)
      (Stats.Percentile.percentile arr 100.0)
  end;
  Printf.printf "envelope violations: %d\n" (List.length violations);
  if violations = [] then 0 else 1

(* ------------------------------ explore ------------------------------ *)

(* Exhaustive schedule-space model checking of a small configuration. *)
let explore algo updaters =
  let histories, check, lin =
    match algo with
    | "counter" ->
        let n = updaters + 1 in
        let mk () =
          Array.init n (fun p ->
              if p < updaters then [ A.Ivl_counter.update_op ~proc:p ~amount:(p + 2) () ]
              else [ A.Ivl_counter.read_op ~n () ])
        in
        ( M.explore ~registers:(A.Ivl_counter.registers ~n) ~scripts:mk (),
          Counter_check.is_ivl,
          Counter_lin.is_linearizable )
    | "pcm" ->
        let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
        let mk () =
          [|
            List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
            [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
          |]
        in
        (M.explore ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts:mk (),
         Cm9_check.is_ivl, Cm9_lin.is_linearizable)
    | "updown-buggy" | "updown-safe" ->
        let variant = if algo = "updown-buggy" then `Buggy else `Safe in
        let mk () =
          [|
            [ A.Updown_two_cell.update_op ~delta:1 ();
              A.Updown_two_cell.update_op ~delta:(-1) () ];
            [ A.Updown_two_cell.read_op ~variant () ];
          |]
        in
        (M.explore ~registers:A.Updown_two_cell.registers ~scripts:mk (),
         Updown_check.is_ivl, Updown_lin.is_linearizable)
    | other ->
        Printf.eprintf
          "unknown algo %s (available: counter pcm updown-buggy updown-safe)\n" other;
        exit 1
  in
  let total = List.length histories in
  let ivl_fail = List.filter (fun h -> not (check h)) histories in
  let lin_ok = List.length (List.filter lin histories) in
  Printf.printf "%d distinct histories over the entire schedule space\n" total;
  Printf.printf "IVL: %d/%d    linearizable: %d/%d\n" (total - List.length ivl_fail)
    total lin_ok total;
  (match ivl_fail with
  | [] -> ()
  | h :: _ ->
      Printf.printf "\nfirst IVL violation:\n%s\n" (Hist.Ascii.render_int h));
  if ivl_fail = [] then 0 else 1

(* ------------------------------ chaos ------------------------------ *)

(* Soak-test the real multicore objects under injected faults: randomized
   yields/stalls at operation boundaries plus emulated mid-operation domain
   death (Chaos.Killed raised between a recorded invocation and its
   response). Recorded histories go through the scalable envelope checker;
   pending operations must belong to killed domains only. *)

let pp_int_list l = "[" ^ String.concat "; " (List.map string_of_int l) ^ "]"

(* Collect problems from a parallel_result array: Killed is the injected
   fault and expected; anything else is a bug. *)
let unexpected_errors results =
  let problems = ref [] in
  Array.iteri
    (fun i -> function
      | Ok () | Error (Conc.Chaos.Killed _) -> ()
      | Error e ->
          problems :=
            Printf.sprintf "domain %d raised %s" i (Printexc.to_string e)
            :: !problems)
    results;
  List.rev !problems

let pending_on_survivors h ~killed =
  List.filter_map
    (fun (o : (int, int, int) Hist.Op.t) ->
      if List.mem o.Hist.Op.proc killed then None
      else
        Some
          (Printf.sprintf "operation #%d pending on surviving domain %d"
             o.Hist.Op.id o.Hist.Op.proc))
    (Hist.History.pending h)

let chaos_counter ~domains ~ops ~kills ~seed =
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let writers = domains in
  let total = writers + 1 in
  let plan =
    Conc.Chaos.plan
      ~kills:
        (Conc.Chaos.random_kills ~seed ~domains:total ~victims:kills
           ~max_point:ops)
      ~seed ()
  in
  let ch = Conc.Chaos.instantiate plan ~domains:total in
  let rec_ = Conc.Recorder.create ~domains:total in
  let c = Conc.Ivl_counter.create ~procs:writers in
  let reads = max 1 (ops / 2) in
  let results =
    Conc.Runner.parallel_result ~domains:total (fun i ->
        if i < writers then
          for k = 1 to ops do
            Conc.Chaos.point ch ~domain:i;
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0
              (1 + (k mod 3))
              (fun () ->
                Conc.Chaos.point ch ~domain:i;
                Conc.Ivl_counter.update c ~proc:i (1 + (k mod 3));
                Conc.Chaos.point ch ~domain:i)
          done
        else
          for _ = 1 to reads do
            Conc.Chaos.point ch ~domain:i;
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 0 (fun () ->
                   Conc.Chaos.point ch ~domain:i;
                   Conc.Ivl_counter.read c))
          done)
  in
  let killed = Conc.Chaos.killed ch in
  let h = Conc.Recorder.history rec_ in
  let viols = Mono.violations h in
  let problems =
    unexpected_errors results
    @ pending_on_survivors h ~killed
    @
    if viols = [] then []
    else [ Printf.sprintf "%d IVL envelope violations" (List.length viols) ]
  in
  Printf.printf
    "counter: %d writers + 1 reader, killed %s; %d ops recorded (%d left \
     pending), envelope violations: %d\n"
    writers (pp_int_list killed)
    (List.length (Hist.History.ops h))
    (List.length (Hist.History.pending h))
    (List.length viols);
  problems

let chaos_pcm ~domains ~ops ~kills ~seed =
  let family = Hashing.Family.seeded ~seed:(Int64.add seed 13L) ~rows:3 ~width:64 in
  let module CmSpec = Spec.Countmin_spec.Fixed (struct
    let family = family
  end) in
  let module Mono = Ivl.Monotone.Make (CmSpec) in
  let writers = domains in
  let total = writers + 1 in
  let universe = 128 in
  let elem d k = (((d * 1_000_003) + (k * 7919)) land max_int) mod universe in
  let plan =
    Conc.Chaos.plan
      ~kills:
        (Conc.Chaos.random_kills ~seed ~domains:total ~victims:kills
           ~max_point:ops)
      ~seed ()
  in
  let ch = Conc.Chaos.instantiate plan ~domains:total in
  let rec_ = Conc.Recorder.create ~domains:total in
  let pcm = Conc.Pcm.create ~family in
  let reads = max 1 (ops / 2) in
  let results =
    Conc.Runner.parallel_result ~domains:total (fun i ->
        if i < writers then
          for k = 1 to ops do
            Conc.Chaos.point ch ~domain:i;
            let e = elem i k in
            Conc.Recorder.record_update rec_ ~domain:i ~obj:0 e (fun () ->
                Conc.Chaos.point ch ~domain:i;
                Conc.Pcm.update pcm e;
                Conc.Chaos.point ch ~domain:i)
          done
        else
          for k = 1 to reads do
            Conc.Chaos.point ch ~domain:i;
            let e = k mod universe in
            ignore
              (Conc.Recorder.record_query rec_ ~domain:i ~obj:0 e (fun () ->
                   Conc.Chaos.point ch ~domain:i;
                   Conc.Pcm.query pcm e))
          done)
  in
  let killed = Conc.Chaos.killed ch in
  let h = Conc.Recorder.history rec_ in
  let viols = Mono.violations h in
  let problems =
    unexpected_errors results
    @ pending_on_survivors h ~killed
    @
    if viols = [] then []
    else [ Printf.sprintf "%d IVL envelope violations" (List.length viols) ]
  in
  Printf.printf
    "pcm: %d writers + 1 reader, killed %s; %d ops recorded (%d left \
     pending), envelope violations: %d\n"
    writers (pp_int_list killed)
    (List.length (Hist.History.ops h))
    (List.length (Hist.History.pending h))
    (List.length viols);
  problems

(* The striped sketches publish in batches, so mid-stream queries may lag
   the envelope; the chaos soak checks liveness (no hangs, survivors finish)
   plus each sketch's merged-view guarantees after a final flush. *)
let chaos_striped target ~domains ~ops ~kills ~seed =
  let universe = 512 in
  (* Pure per-(domain, index) element stream: replayable for ground truth
     even when a kill truncates a writer mid-loop. Every 4th item is the hot
     element 0 so Space-Saving has a guaranteed heavy hitter. *)
  let elem d k =
    if k mod 4 = 0 then 0
    else (((d * 1_000_003) + (k * 7919)) land max_int) mod universe
  in
  let counts = Array.make domains 0 in
  let writers = domains in
  let total = writers + 1 in
  let plan =
    Conc.Chaos.plan
      ~kills:
        (Conc.Chaos.random_kills ~seed ~domains:writers ~victims:kills
           ~max_point:ops)
      ~seed ()
  in
  let ch = Conc.Chaos.instantiate plan ~domains:total in
  let update, read_probe, finish =
    match target with
    | "topk" ->
        let t = Conc.Striped_topk.create ~seed ~domains:writers () in
        ( (fun ~domain e -> Conc.Striped_topk.update t ~domain e),
          (fun () -> ignore (Conc.Striped_topk.query t 0)),
          fun () ->
            Conc.Striped_topk.flush_all t;
            let total_items = Array.fold_left ( + ) 0 counts in
            let hot_true =
              Array.to_list counts
              |> List.mapi (fun d n ->
                     let h = ref 0 in
                     for k = 1 to n do
                       if elem d k = 0 then incr h
                     done;
                     !h)
              |> List.fold_left ( + ) 0
            in
            let est = Conc.Striped_topk.query t 0 in
            let err = Conc.Striped_topk.guaranteed_error t in
            let problems = ref [] in
            if Conc.Striped_topk.published t <> total_items then
              problems :=
                Printf.sprintf "published %d <> ingested %d"
                  (Conc.Striped_topk.published t) total_items
                :: !problems;
            if est < hot_true || est > hot_true + err then
              problems :=
                Printf.sprintf
                  "hot-element estimate %d outside [%d, %d + %d]" est hot_true
                  hot_true err
                :: !problems;
            !problems )
    | "kmv" ->
        let t = Conc.Striped_kmv.create ~seed ~domains:writers () in
        ( (fun ~domain e -> Conc.Striped_kmv.update t ~domain e),
          (fun () -> ignore (Conc.Striped_kmv.estimate t)),
          fun () ->
            Conc.Striped_kmv.flush_all t;
            let distinct = Hashtbl.create 97 in
            Array.iteri
              (fun d n ->
                for k = 1 to n do
                  Hashtbl.replace distinct (elem d k) ()
                done)
              counts;
            let truth = float_of_int (Hashtbl.length distinct) in
            let est = Conc.Striped_kmv.estimate t in
            if truth > 0.0 && (est < 0.3 *. truth || est > 3.0 *. truth) then
              [
                Printf.sprintf "distinct estimate %.0f far from true %.0f" est
                  truth;
              ]
            else [] )
    | "quantiles" ->
        let t = Conc.Striped_quantiles.create ~seed ~domains:writers () in
        ( (fun ~domain e -> Conc.Striped_quantiles.update t ~domain e),
          (fun () -> ignore (Conc.Striped_quantiles.rank t (universe / 2))),
          fun () ->
            Conc.Striped_quantiles.flush_all t;
            let total_items = Array.fold_left ( + ) 0 counts in
            let problems = ref [] in
            if Conc.Striped_quantiles.published t <> total_items then
              problems :=
                Printf.sprintf "published %d <> ingested %d"
                  (Conc.Striped_quantiles.published t) total_items
                :: !problems;
            let r_lo = Conc.Striped_quantiles.rank t 0
            and r_mid = Conc.Striped_quantiles.rank t (universe / 2)
            and r_hi = Conc.Striped_quantiles.rank t universe in
            if not (r_lo <= r_mid && r_mid <= r_hi) then
              problems :=
                Printf.sprintf "ranks not monotone: %d %d %d" r_lo r_mid r_hi
                :: !problems;
            !problems )
    | other ->
        Printf.eprintf
          "unknown chaos target %s (available: counter pcm topk kmv quantiles \
           all)\n"
          other;
        exit 1
  in
  let results =
    Conc.Runner.parallel_result ~domains:total (fun i ->
        if i < writers then
          for k = 1 to ops do
            Conc.Chaos.point ch ~domain:i;
            update ~domain:i (elem i k);
            counts.(i) <- counts.(i) + 1;
            Conc.Chaos.point ch ~domain:i
          done
        else
          for _ = 1 to max 1 (ops / 8) do
            Conc.Chaos.point ch ~domain:i;
            read_probe ()
          done)
  in
  let killed = Conc.Chaos.killed ch in
  let problems = unexpected_errors results @ finish () in
  let survivors_short =
    Array.to_list counts
    |> List.mapi (fun d n -> (d, n))
    |> List.filter (fun (d, n) -> (not (List.mem d killed)) && n <> ops)
  in
  let problems =
    problems
    @ List.map
        (fun (d, n) ->
          Printf.sprintf "surviving writer %d ingested %d/%d items" d n ops)
        survivors_short
  in
  Printf.printf "%s: %d writers + 1 reader, killed %s; %d items ingested\n"
    target writers (pp_int_list killed)
    (Array.fold_left ( + ) 0 counts);
  problems

let chaos target domains ops kills seed rounds =
  if kills > domains then begin
    Printf.eprintf "chaos: --kills must not exceed --domains\n";
    exit 1
  end;
  let targets =
    match target with
    | "all" -> [ "counter"; "pcm"; "topk"; "kmv"; "quantiles" ]
    | t -> [ t ]
  in
  let failures = ref 0 in
  for round = 1 to rounds do
    let seed = Int64.add seed (Int64.of_int (round * 7741)) in
    List.iter
      (fun t ->
        let problems =
          match t with
          | "counter" -> chaos_counter ~domains ~ops ~kills ~seed
          | "pcm" -> chaos_pcm ~domains ~ops ~kills ~seed
          | _ -> chaos_striped t ~domains ~ops ~kills ~seed
        in
        List.iter
          (fun p ->
            incr failures;
            Printf.printf "  PROBLEM (%s, round %d): %s\n" t round p)
          problems)
      targets
  done;
  Printf.printf "chaos: %d rounds x %d target(s), %d problems\n" rounds
    (List.length targets) !failures;
  if !failures = 0 then 0 else 1

(* ------------------------------ pipeline ------------------------------ *)

(* Sketch parameters shared between the `pipeline` and `recover`
   subcommands: recovery rebuilds deltas with M.decode and must construct
   the exact same mergeable (hash family seeds, dimensions) the writing
   pipeline used. *)
let cm_rows = 4
let cm_width = 2048
let hll_p = 12
let kmv_k = 256
let quantiles_k = 200
let ss_capacity = 64

(* --------------------------- observability ---------------------------- *)

(* Injected chaos faults land in the victim worker's own trace lane: the
   engine runs chaos points from [on_tick] in the worker's domain, so the
   lane stays single-writer. *)
let chaos_trace_hook tr ~domain ~point ev =
  let tag =
    match ev with
    | Conc.Chaos.Injected_yield -> "chaos-yield"
    | Conc.Chaos.Injected_stall -> "chaos-stall"
    | Conc.Chaos.Injected_kill -> "chaos-kill"
  in
  Obs.Trace.emit tr ~lane:domain ~tag ~a:point ~b:0

let print_trace_tail tr n =
  let entries = Obs.Trace.dump_tail tr n in
  Printf.printf "trace: %d event(s) dropped by ring wrap; last %d of %d kept:\n"
    (Obs.Trace.dropped tr) (List.length entries)
    (List.length (Obs.Trace.dump tr));
  List.iter
    (fun (e : Obs.Trace.entry) ->
      Printf.printf "  [%6d] lane %-2d %-12s a=%-8d b=%d\n" e.stamp e.lane e.tag
        e.a e.b)
    entries

(* [--metrics -] prints both expositions to stdout; [--metrics PATH] writes
   PATH.prom and PATH.json. *)
let write_metrics ~path snap =
  let prom = Obs.Expose.to_prometheus snap and json = Obs.Expose.to_json snap in
  if path = "-" then begin
    print_string prom;
    print_endline json
  end
  else begin
    let out p s =
      let oc = open_out p in
      output_string oc s;
      close_out oc
    in
    out (path ^ ".prom") prom;
    out (path ^ ".json") json;
    Printf.printf "metrics: wrote %s.prom and %s.json\n" path path
  end

(* Observability-plane seams shared by every serving command — one tracer
   constructor and one HTTP mount, so pipeline/serve/replica/soak cannot
   drift apart in how they expose the same plane. *)
let make_tracer ~reg sample_every =
  if sample_every > 0 then
    Some (Obs.Tracer.create ~sample_every ~metrics:reg ())
  else None

let mount_http ~what ~reg ?tracer ?slo ?health port =
  let h =
    Obs.Http.create ~port
      ~handler:
        (Obs.Http.telemetry_handler ~registry:reg ?tracer ?slo ?health ())
      ()
  in
  Printf.printf "%s: telemetry on http://127.0.0.1:%d/metrics\n%!" what
    (Obs.Http.port h);
  h

(* One formatter over one scrape: the shard table, merger line, lag line and
   supervisor line are all views of the same snapshot --metrics exports, so
   the human output cannot drift from the machine output. [last_errors] is
   the one non-numeric annotation (death reasons are strings, not metrics). *)
let print_pipeline_stats snap ~shards ~combine ~steal ~supervise ~last_errors =
  let c ?labels n = Obs.Snapshot.counter_value snap ?labels n in
  let g ?labels n = Obs.Snapshot.gauge_value snap ?labels n in
  for i = 0 to shards - 1 do
    let l = [ ("shard", string_of_int i) ] in
    let status =
      if g ~labels:l "pipeline_shard_shed" > 0.5 then "SHED"
      else if g ~labels:l "pipeline_shard_alive" > 0.5 then "alive"
      else "KILLED"
    in
    let restarts = c ~labels:l "pipeline_shard_restarts_total" in
    Printf.printf
      "  shard %d: enq %-8d drop %-7d consumed %-8d flushed %-8d blobs %-5d \
       depth<=%-5d %s%s\n"
      i
      (c ~labels:l "pipeline_shard_enqueued_total")
      (c ~labels:l "pipeline_shard_dropped_total")
      (c ~labels:l "pipeline_shard_consumed_total")
      (c ~labels:l "pipeline_shard_flushed_items_total")
      (c ~labels:l "pipeline_shard_flushes_total")
      (c ~labels:l "pipeline_queue_max_depth")
      status
      ((if combine then
          Printf.sprintf " coalesced %d"
            (c ~labels:l "pipeline_shard_coalesced_total")
        else "")
      ^ (if steal then
           Printf.sprintf " stole %d/%d parks %d"
             (c ~labels:l "pipeline_shard_steals_total")
             (c ~labels:l "pipeline_shard_stolen_batches_total")
             (c ~labels:l "pipeline_shard_parks_total")
         else "")
      ^
      if restarts > 0 then
        Printf.sprintf " (restarts %d%s)" restarts
          (match last_errors.(i) with Some e -> ", last: " ^ e | None -> "")
      else "")
  done;
  Printf.printf
    "merges %d  epoch %.0f  published %d  decode failures %d  envelope width \
     %.0f\n"
    (c "pipeline_merges_total") (g "pipeline_epoch")
    (c "pipeline_published_total")
    (c "pipeline_decode_failures_total")
    (g "pipeline_envelope_width");
  (match Obs.Snapshot.find snap "pipeline_merge_lag_seconds" with
  | Some (Obs.Snapshot.Summary s) when s.s_count > 0 ->
      let q phi =
        match List.assoc_opt phi s.q with
        | Some v -> v *. 1e3
        | None -> Float.nan
      in
      Printf.printf "merge lag: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n"
        (q 0.5) (q 0.9) (q 0.99) (q 1.0)
  | _ -> ());
  if supervise then
    Printf.printf "supervisor: %d restart(s), %.0f shed shard(s)\n"
      (c "pipeline_restarts_total")
      (g "pipeline_shed_shards")

(* Drive the sharded ingestion pipeline end-to-end: feeder domains push a
   synthetic stream through hash-routed bounded queues, shard workers batch
   items into local sketches and ship them as wire blobs, the merger folds
   the blobs into the global sketch, and a reader domain samples the
   published total throughout. After drain, the recorded merge/read history
   goes through the scalable monotone envelope checker — the pipeline's
   published state must be IVL — alongside conservation checks tying
   published weight to per-shard flush counters.

   With [--wal DIR] every merged delta is also appended to a write-ahead log
   (and, with [--checkpoint-every N], periodically checkpointed); with
   [--kill-and-recover] the run finishes by recovering a fresh sketch from
   DIR and validating the recovery envelope: recovered published total ∈
   [last checkpoint total, pre-crash published total]. With [--supervise]
   dead shard workers are restarted by a watchdog instead of shedding
   traffic for the rest of the run. *)

let run_pipeline (type s) (module M : Pipeline.Mergeable.S with type t = s)
    ~(report : s -> unit) ~shards ~stream ~batch ~queue_impl ~queue_cap
    ~feeders ~combine ~chaos_kill ~kills ~seed ~wal_dir ~checkpoint_every
    ~kill_and_recover ~supervise ~max_restarts ~metrics_out ~http_port
    ~trace_sample ~trace_dump =
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let module P = Pipeline.Engine.Make (M) in
  let module R = Durable.Recovery.Make (M) in
  let ops = Array.length stream in
  let reg = Obs.Registry.create () in
  let tracer = make_tracer ~reg trace_sample in
  let tr = Obs.Trace.create ~lanes:(shards + 2) ~capacity:4096 () in
  let ch =
    if not chaos_kill then None
    else
      Some
        (Conc.Chaos.instantiate ~on_event:(chaos_trace_hook tr)
           (Conc.Chaos.plan
              ~kills:
                (Conc.Chaos.random_kills ~seed ~domains:shards ~victims:kills
                   ~max_point:(max 2 (ops / (batch * shards))))
              ~seed ())
           ~domains:shards)
  in
  let on_tick =
    Option.map
      (fun ch ->
        if not supervise then fun ~shard -> Conc.Chaos.point ch ~domain:shard
        else
          (* Under supervision each chaos victim dies once: point_once lets
             the restarted incarnation run the same hook harmlessly instead
             of crash-looping into a shed. The crash-loop-to-shed path has
             its own test. *)
          fun ~shard -> Conc.Chaos.point_once ch ~domain:shard)
      ch
  in
  (match wal_dir with
  | Some dir -> (
      match Durable.Wal.validate_dir ~must_exist:false ~dir () with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf
            "pipeline: unusable WAL directory: %s\n\
             Pick a path whose parent exists and is writable.\n"
            msg;
          exit 2)
  | None -> ());
  let wal =
    Option.map
      (fun dir ->
        Durable.Wal.create ~dir ~fsync:(Durable.Wal.Every_n 32) ~metrics:reg ())
      wal_dir
  in
  let on_merge =
    Option.map
      (fun w ~ctx ~epoch ~weight ~blob ->
        (* last in-process stage of a sampled batch's waterfall *)
        let t0 =
          match tracer with
          | Some _ when not (Obs.Span.is_zero ctx) -> Obs.Tracer.now_ns ()
          | _ -> 0
        in
        Durable.Wal.append w ~epoch ~weight ~blob;
        match tracer with
        | Some tr when not (Obs.Span.is_zero ctx) ->
            ignore
              (Obs.Tracer.record tr ~ctx ~stage:"wal" ~start_ns:t0
                 ~end_ns:(Obs.Tracer.now_ns ()))
        | _ -> ())
      wal
  in
  let on_checkpoint =
    if checkpoint_every > 0 then
      Option.map
        (fun dir ~epoch ~published ~blob ->
          Durable.Checkpoint.write ~dir ~epoch ~published ~blob ())
        wal_dir
    else None
  in
  let supervisor =
    if supervise then
      Some { Pipeline.Engine.default_supervisor with max_restarts }
    else None
  in
  let steal = queue_impl = `Lockfree in
  let p =
    P.create ~queue:queue_impl ~queue_capacity:queue_cap ~batch ~combine
      ?on_tick ?on_merge
      ~checkpoint_every:(if wal_dir = None then 0 else checkpoint_every)
      ?on_checkpoint ?supervisor ~metrics:reg ~trace:tr ?tracer ~shards ()
  in
  let stop = Atomic.make false in
  let reads = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let tick () =
          ignore (P.read_total p);
          Atomic.incr reads
        in
        while not (Atomic.get stop) do
          tick ();
          Unix.sleepf 0.0005
        done;
        (* One read after drain: must see the final published total. *)
        tick ())
  in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let accepted = Atomic.make 0 in
  (* Continuous SLO over the live engine: Theorem-6 budget scaled to this
     run's shape; staleness is unknown (no replica in-process). Evaluated
     from /healthz scrapes and once at drain — pull-based by design. *)
  let slo =
    Obs.Slo.create ~metrics:reg
      ~budget:
        (Obs.Slo.theorem6_budget ~shards ~batch ~queue_capacity:queue_cap ())
      ~envelope:(fun () ->
        let st = P.stats p in
        let acc =
          Array.fold_left
            (fun a (s : P.shard_stats) -> a + s.enqueued - s.dropped)
            0 st.P.shards
        in
        float_of_int (max 0 (acc - st.P.published)))
      ~staleness:(fun () -> -1.0)
      ~merge_lag:(fun () ->
        let lag = (P.stats p).P.merge_lag in
        let n = Array.length lag in
        if n = 0 then -1.0 else lag.(n - 1))
      ()
  in
  let http =
    Option.map
      (fun port ->
        mount_http ~what:"pipeline" ~reg ?tracer ~slo
          ~health:(fun () ->
            let st = P.stats p in
            [
              ("published", string_of_int st.P.published);
              ("epoch", string_of_int st.P.epoch);
              ("accepted", string_of_int (Atomic.get accepted));
            ])
          port)
      http_port
  in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:feeders (fun i ->
               let ok = ref 0 in
               (* one die roll per engine batch, not per item: a sampled
                  roll roots the waterfall with a zero-width "ingest" span
                  and marks the key's shard so queue/merge/wal follow *)
               let since = ref 0 in
               Array.iter
                 (fun x ->
                   (match tracer with
                   | Some tr ->
                       incr since;
                       if !since >= batch then begin
                         since := 0;
                         match Obs.Tracer.sample tr with
                         | None -> ()
                         | Some ctx ->
                             let now = Obs.Tracer.now_ns () in
                             let sid =
                               Obs.Tracer.record tr ~ctx ~stage:"ingest"
                                 ~start_ns:now ~end_ns:now
                             in
                             P.trace_mark p ~key:x
                               ~ctx:(Obs.Span.with_parent ctx sid)
                       end
                   | None -> ());
                   if P.ingest p x then incr ok)
                 chunks.(i);
               ignore (Atomic.fetch_and_add accepted !ok)));
        P.drain p)
  in
  Atomic.set stop true;
  Domain.join reader;
  let { P.shards = sh; merges; decode_failures; published; epoch = _; merge_lag = _ }
      =
    P.stats p
  in
  Printf.printf "ingested %d/%d items in %.3fs (%.2f Mops/s, incl. drain)\n"
    (Atomic.get accepted) ops dt
    (float_of_int ops /. dt /. 1e6);
  let snap = Obs.Registry.snapshot reg in
  print_pipeline_stats snap ~shards ~combine ~steal
    ~supervise:(supervise && chaos_kill)
    ~last_errors:(Array.map (fun (s : P.shard_stats) -> s.last_error) sh);
  (match ch with
  | Some ch ->
      Printf.printf "chaos: killed domains %s; dead shards %s\n"
        (pp_int_list (Conc.Chaos.killed ch))
        (pp_int_list (P.dead p))
  | None -> ());
  let viols = Mono.violations (P.history p) in
  Printf.printf "envelope: %d merge updates + %d reads checked, %d violations\n"
    merges (Atomic.get reads) (List.length viols);
  let slo_v = Obs.Slo.eval slo in
  Printf.printf "slo: %s at drain (worst %s at %.2fx budget, %d breaches)\n"
    (Obs.Slo.state_to_string slo_v.Obs.Slo.state)
    slo_v.Obs.Slo.worst_dim slo_v.Obs.Slo.worst_ratio slo_v.Obs.Slo.breaches;
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if viols <> [] then add "%d IVL envelope violations" (List.length viols);
  if decode_failures > 0 then add "%d wire decode failures" decode_failures;
  List.iter
    (fun (who, e) -> add "%s died unexpectedly: %s" who (Printexc.to_string e))
    (P.failures p);
  let sum_flushed =
    Array.fold_left (fun a (s : P.shard_stats) -> a + s.flushed_items) 0 sh
  in
  if published <> sum_flushed then
    add "conservation: published %d <> flushed %d" published sum_flushed;
  if steal then begin
    (* Stolen items are flushed by the thief, not their home shard, so
       conservation only holds as a sum: every enqueued item was either
       flushed by SOME shard or lost to a death (no deaths here => exact). *)
    let sum_enqueued =
      Array.fold_left (fun a (s : P.shard_stats) -> a + s.enqueued) 0 sh
    in
    let clean =
      Array.for_all (fun (s : P.shard_stats) -> s.alive && s.restarts = 0) sh
    in
    if clean && sum_flushed <> sum_enqueued then
      add "conservation: flushed %d of %d enqueued across shards" sum_flushed
        sum_enqueued
  end;
  Array.iteri
    (fun i (s : P.shard_stats) ->
      (* A restarted shard legitimately loses the dead incarnation's
         unflushed local delta, so exact conservation only binds shards that
         never died — and under stealing flushes migrate between shards, so
         the per-shard form is replaced by the cross-shard sum above. *)
      if
        (not steal) && s.alive && s.restarts = 0
        && s.flushed_items <> s.enqueued
      then
        add "surviving shard %d flushed %d of %d enqueued" i s.flushed_items
          s.enqueued;
      if s.restarts > 0 && not s.shed && not s.alive then
        add "shard %d dead after %d restart(s) without being shed" i s.restarts)
    sh;
  Option.iter Durable.Wal.close wal;
  (match (kill_and_recover, wal_dir) with
  | false, _ | _, None -> ()
  | true, Some dir -> (
      match R.recover ~metrics:reg ~dir () with
      | Error msg -> add "recovery failed: %s" msg
      | Ok (_, r) ->
          Printf.printf "recovery: %s\n" (R.report_to_string r);
          if r.recovered_published < r.checkpoint_published then
            add "recovery envelope: recovered %d < checkpoint %d"
              r.recovered_published r.checkpoint_published;
          if r.recovered_published > published then
            add "recovery envelope: recovered %d > pre-crash published %d"
              r.recovered_published published;
          if
            r.bytes_truncated = 0 && r.skipped = 0 && r.decode_failures = 0
            && r.recovered_published <> published
          then
            add "recovery lost weight without truncation: recovered %d <> %d"
              r.recovered_published published));
  let g, query_epoch = P.query p (fun g -> g) in
  Printf.printf "final query at epoch %d:\n" query_epoch;
  report g;
  if trace_dump > 0 then print_trace_tail tr trace_dump;
  (* Re-scrape for the export so post-drain series (recovery, final WAL
     fsyncs) are included. *)
  Option.iter Obs.Http.stop http;
  Option.iter
    (fun path -> write_metrics ~path (Obs.Registry.snapshot reg))
    metrics_out;
  match List.rev !problems with
  | [] ->
      print_endline "pipeline: PASS";
      0
  | ps ->
      List.iter (Printf.printf "  PROBLEM: %s\n") ps;
      print_endline "pipeline: FAIL";
      1

let pipeline sk shards ops shape skew universe batch queue queue_cap feeders
    combine chaos kills seed wal_dir checkpoint_every kill_and_recover
    supervise max_restarts metrics_out http_port trace_sample trace_dump =
  if shards < 1 || feeders < 1 || ops < 1 || batch < 1 || queue_cap < 1
  then begin
    Printf.eprintf
      "pipeline: --shards, --feeders, --ops, --batch and --queue-cap must be \
       >= 1\n";
    exit 1
  end;
  let queue_impl =
    match Pipeline.Squeue.impl_of_string queue with
    | Some impl -> impl
    | None ->
        Printf.eprintf "pipeline: unknown --queue %s (available: mutex \
                        lockfree)\n" queue;
        exit 1
  in
  if checkpoint_every < 0 || max_restarts < 0 then begin
    Printf.eprintf
      "pipeline: --checkpoint-every and --max-restarts must be >= 0\n";
    exit 1
  end;
  if kill_and_recover && wal_dir = None then begin
    Printf.eprintf "pipeline: --kill-and-recover requires --wal DIR\n";
    exit 1
  end;
  let chaos_kill =
    match chaos with
    | "none" -> false
    | "kill" ->
        if kills < 1 || kills > shards then begin
          Printf.eprintf "pipeline: --kills must be in [1, shards]\n";
          exit 1
        end;
        true
    | other ->
        Printf.eprintf "unknown chaos mode %s (available: none kill)\n" other;
        exit 1
  in
  let shape = parse_shape shape skew universe in
  let stream =
    Workload.Stream.generate ~seed:(Int64.add seed 101L) shape ~length:ops
  in
  Printf.printf
    "pipeline: %s, %d shards (batch %d, queue %s cap %d), %d feeders, %s, %d \
     items%s\n"
    sk shards batch queue queue_cap feeders
    (Workload.Stream.describe shape)
    ops
    (if chaos_kill then Printf.sprintf ", chaos kills %d shard(s)" kills else "");
  let exact () =
    let e = Sketches.Exact.create () in
    Array.iter (Sketches.Exact.update e) stream;
    e
  in
  let run m report =
    run_pipeline m ~report ~shards ~stream ~batch ~queue_impl ~queue_cap
      ~feeders ~combine ~chaos_kill ~kills ~seed ~wal_dir ~checkpoint_every
      ~kill_and_recover ~supervise ~max_restarts ~metrics_out ~http_port
      ~trace_sample ~trace_dump
  in
  match sk with
  | "countmin" ->
      let module M = Pipeline.Targets.Countmin (struct
        let seed = Int64.add seed 7L
        let rows = cm_rows
        let width = cm_width
      end) in
      run
        (module M : Pipeline.Mergeable.S with type t = Sketches.Countmin.t)
        (fun g ->
          let e = exact () in
          Printf.printf "  %-8s %-10s %-10s %-8s\n" "element" "true" "estimate"
            "excess";
          List.iter
            (fun x ->
              let f = Sketches.Exact.frequency e x
              and est = Sketches.Countmin.query g x in
              Printf.printf "  %-8d %-10d %-10d %-8d\n" x f est (est - f))
            (List.init 8 Fun.id);
          Printf.printf "  (CountMin error bound %.0f over %d merged updates)\n"
            (Sketches.Countmin.error_bound g)
            (Sketches.Countmin.updates g))
  | "hll" ->
      let module M = Pipeline.Targets.Hll (struct
        let seed = Int64.add seed 7L
        let p = hll_p
      end) in
      run
        (module M : Pipeline.Mergeable.S with type t = Sketches.Hyperloglog.t)
        (fun g ->
          Printf.printf "  distinct: true %d, estimated %.0f\n"
            (Sketches.Exact.distinct (exact ()))
            (Sketches.Hyperloglog.estimate g))
  | "kmv" ->
      let module M = Pipeline.Targets.Kmv (struct
        let seed = Int64.add seed 7L
        let k = kmv_k
      end) in
      run
        (module M : Pipeline.Mergeable.S with type t = Sketches.Kmv.t)
        (fun g ->
          Printf.printf "  distinct: true %d, estimated %.0f\n"
            (Sketches.Exact.distinct (exact ()))
            (Sketches.Kmv.estimate g))
  | "quantiles" ->
      let module M = Pipeline.Targets.Quantiles (struct
        let seed = Int64.add seed 7L
        let k = quantiles_k
      end) in
      run
        (module M : Pipeline.Mergeable.S with type t = Sketches.Quantiles.t)
        (fun g ->
          if Sketches.Quantiles.total g = 0 then
            print_endline "  (empty sketch)"
          else begin
            let sorted = Array.copy stream in
            Array.sort compare sorted;
            let true_q phi =
              sorted.(min (ops - 1) (int_of_float (phi *. float_of_int ops)))
            in
            List.iter
              (fun phi ->
                Printf.printf "  p%-4.1f true %-8d estimated %-8d\n"
                  (100.0 *. phi) (true_q phi)
                  (Sketches.Quantiles.quantile g phi))
              [ 0.5; 0.9; 0.99 ]
          end)
  | "spacesaving" ->
      let module M = Pipeline.Targets.Space_saving (struct
        let capacity = ss_capacity
      end) in
      run
        (module M : Pipeline.Mergeable.S with type t = Sketches.Space_saving.t)
        (fun g ->
          Printf.printf "  top-5 (error bound %d):\n"
            (Sketches.Space_saving.guaranteed_error g);
          List.iteri
            (fun i (x, c) ->
              if i < 5 then Printf.printf "    %-8d count<=%d\n" x c)
            (Sketches.Space_saving.top g))
  | "counter" ->
      run
        (module Pipeline.Targets.Counter
          : Pipeline.Mergeable.S with type t = Sketches.Batched_counter.t)
        (fun g ->
          Printf.printf "  merged event count: %d\n"
            (Sketches.Batched_counter.read g))
  | other ->
      Printf.eprintf
        "unknown sketch %s (available: countmin hll kmv quantiles spacesaving \
         counter)\n"
        other;
      exit 1

(* ------------------------------ recover ------------------------------- *)

(* Standalone recovery: rebuild the global sketch from a durability
   directory written by `pipeline --wal`. The sketch name and seed must
   match the writing run — decode needs the same hash-family parameters —
   which is why the dimension constants above are shared between the two
   subcommands. *)

let mergeable_of ~seed = function
  | "countmin" ->
      Some
        (module Pipeline.Targets.Countmin (struct
          let seed = Int64.add seed 7L
          let rows = cm_rows
          let width = cm_width
        end) : Pipeline.Mergeable.S)
  | "hll" ->
      Some
        (module Pipeline.Targets.Hll (struct
          let seed = Int64.add seed 7L
          let p = hll_p
        end) : Pipeline.Mergeable.S)
  | "kmv" ->
      Some
        (module Pipeline.Targets.Kmv (struct
          let seed = Int64.add seed 7L
          let k = kmv_k
        end) : Pipeline.Mergeable.S)
  | "quantiles" ->
      Some
        (module Pipeline.Targets.Quantiles (struct
          let seed = Int64.add seed 7L
          let k = quantiles_k
        end) : Pipeline.Mergeable.S)
  | "spacesaving" ->
      Some
        (module Pipeline.Targets.Space_saving (struct
          let capacity = ss_capacity
        end) : Pipeline.Mergeable.S)
  | "counter" -> Some (module Pipeline.Targets.Counter : Pipeline.Mergeable.S)
  | _ -> None

let recover dir sk seed =
  (* A bad directory is a usage error, not a recovery result: diagnose it
     up front with exit code 2 instead of letting a Sys_error surface from
     the checkpoint/WAL scans. *)
  (match Durable.Wal.validate_dir ~dir () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf
        "recover: %s\n\
         Nothing to recover here: pass the directory a `pipeline --wal DIR` run \
         wrote.\n"
        msg;
      exit 2);
  match mergeable_of ~seed sk with
  | None ->
      Printf.eprintf
        "unknown sketch %s (available: countmin hll kmv quantiles spacesaving \
         counter)\n"
        sk;
      exit 1
  | Some (module M) -> (
      let module R = Durable.Recovery.Make (M) in
      match R.recover ~dir () with
      | Error msg ->
          Printf.eprintf "recover: %s\n" msg;
          1
      | Ok (_, r) ->
          Printf.printf "recover: %s\n" (R.report_to_string r);
          Printf.printf
            "recovered sketch at epoch %d carrying published weight %d\n"
            r.recovered_epoch r.recovered_published;
          if r.truncated_reason <> None then
            Printf.printf "  (WAL tail truncated: %s, %d bytes dropped)\n"
              (Option.value ~default:"?" r.truncated_reason)
              r.bytes_truncated;
          0)

(* ------------------------------ metrics ------------------------------- *)

(* A self-contained instrumented soak: drive the counter pipeline under
   chaos and supervision with every observability hook wired — engine
   metrics and trace lanes, WAL fsync latency, chaos fault events — then
   render the one snapshot whichever way was asked. Exists so `ivl-cli
   metrics` demonstrates (and CI smoke-tests) the full telemetry path
   without the pipeline subcommand's checker machinery. *)
let metrics_demo format events shards ops seed wal_dir =
  if shards < 1 || ops < 1 then begin
    Printf.eprintf "metrics: --shards and --ops must be >= 1\n";
    exit 1
  end;
  let module P = Pipeline.Engine.Make (Pipeline.Targets.Counter) in
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create ~lanes:(shards + 2) ~capacity:1024 () in
  let victims = if shards > 1 then 1 else 0 in
  let ch =
    Conc.Chaos.instantiate ~on_event:(chaos_trace_hook tr)
      (Conc.Chaos.plan
         ~kills:
           (Conc.Chaos.random_kills ~seed ~domains:shards ~victims
              ~max_point:(max 2 (ops / (128 * shards))))
         ~seed ())
      ~domains:shards
  in
  (* Each victim dies once (point_once) so the supervisor's restart shows up
     in the snapshot instead of a crash loop ending in shedding. *)
  let on_tick ~shard = Conc.Chaos.point_once ch ~domain:shard in
  let wal =
    Option.map
      (fun dir ->
        Durable.Wal.create ~dir ~fsync:(Durable.Wal.Every_n 8) ~metrics:reg ())
      wal_dir
  in
  let on_merge =
    Option.map
      (fun w ~ctx:_ ~epoch ~weight ~blob ->
        Durable.Wal.append w ~epoch ~weight ~blob)
      wal
  in
  let p =
    P.create ~batch:128 ~on_tick ?on_merge
      ~supervisor:Pipeline.Engine.default_supervisor ~metrics:reg ~trace:tr
      ~shards ()
  in
  let stream =
    Workload.Stream.generate
      ~seed:(Int64.add seed 101L)
      (Workload.Stream.Zipf (10_000, 1.1))
      ~length:ops
  in
  let chunks = Workload.Stream.chunks stream ~pieces:2 in
  ignore
    (Conc.Runner.parallel ~domains:2 (fun i ->
         Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
  P.drain p;
  Option.iter Durable.Wal.close wal;
  let snap = Obs.Registry.snapshot reg in
  (match format with
  | "table" ->
      Printf.printf "metrics snapshot (%d shards, %d items):\n" shards ops;
      print_string (Obs.Expose.to_table snap)
  | "prom" -> print_string (Obs.Expose.to_prometheus snap)
  | "json" -> print_endline (Obs.Expose.to_json snap)
  | other ->
      Printf.eprintf "unknown format %s (available: table prom json)\n" other;
      exit 1);
  if events > 0 then print_trace_tail tr events;
  0

(* ------------------------------ cmdliner ------------------------------ *)

open Cmdliner

(* Shared observability flags: built once so pipeline, serve, client,
   replica and soak parse --metrics/--http-port/--trace-sample
   identically (Arg values are pure and reusable across commands). *)
let metrics_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH|-"
        ~doc:
          "export the final metrics snapshot: `-' prints the Prometheus \
           text and JSON expositions to stdout, a path writes PATH.prom \
           and PATH.json")

let http_port_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "http-port" ] ~docv:"PORT"
        ~doc:
          "serve live telemetry over HTTP while running: /metrics \
           (Prometheus text), /metrics.json, /healthz (SLO verdict, HTTP \
           503 on breach) and /trace?n=K (recent spans as JSON); port 0 \
           picks an ephemeral port, printed at startup")

let trace_sample_flag =
  Arg.(
    value & opt int 0
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "distributed tracing: sample about one batch in N for a \
           cross-stage waterfall of spans (0 = tracing off)")

let replay_cmd =
  let scenario =
    Arg.(value & pos 0 string "example9" & info [] ~docv:"SCENARIO" ~doc:"example9 or figure2")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a paper scenario through the checkers")
    Term.(const replay $ scenario)

let fuzz_cmd =
  let algo =
    Arg.(
      value
      & opt string "counter"
      & info [ "algo" ] ~doc:"counter, snapshot, pcm, updown-buggy or updown-safe")
  in
  let trials = Arg.(value & opt int 200 & info [ "trials" ] ~doc:"number of random schedules") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"base seed") in
  let ops =
    Arg.(
      value & opt int 1
      & info [ "ops" ]
          ~doc:
            "script repetition factor: each process runs its script this many \
             times per trial (large values overflow the exact checker's 62-op \
             budget and demonstrate the friendly diagnostic)")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "delta-debug the first violation into a minimal Explicit schedule \
             and print the replay")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "inject a random crash-stop fault per trial (a process dies \
             mid-operation; checkers must still pass and survivors must \
             complete)")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz an algorithm with random schedules and check IVL")
    Term.(const fuzz $ algo $ trials $ seed $ ops $ shrink $ crash)

let steps_cmd =
  let algo = Arg.(value & opt string "ivl" & info [ "algo" ] ~doc:"ivl or snapshot") in
  let procs = Arg.(value & opt int 8 & info [ "procs" ] ~doc:"number of updaters") in
  Cmd.v
    (Cmd.info "steps" ~doc:"Measure step complexity in the SWMR simulator")
    Term.(const steps $ algo $ procs)

let explore_cmd =
  let algo =
    Arg.(value & opt string "counter"
         & info [ "algo" ] ~doc:"counter, pcm, updown-buggy or updown-safe")
  in
  let updaters = Arg.(value & opt int 2 & info [ "updaters" ] ~doc:"updaters (counter only)") in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Model-check a small configuration over every schedule")
    Term.(const explore $ algo $ updaters)

let envelope_cmd =
  let writers = Arg.(value & opt int 3 & info [ "writers" ] ~doc:"updater domains") in
  let updates = Arg.(value & opt int 2000 & info [ "updates" ] ~doc:"updates per writer") in
  let reads = Arg.(value & opt int 500 & info [ "reads" ] ~doc:"concurrent reads") in
  Cmd.v
    (Cmd.info "envelope"
       ~doc:"Record a multicore run and validate reads against IVL envelopes")
    Term.(const envelope $ writers $ updates $ reads)

let sketch_cmd =
  let shape = Arg.(value & opt string "zipf" & info [ "shape" ] ~doc:"zipf, uniform or bursty") in
  let skew = Arg.(value & opt float 1.2 & info [ "skew" ] ~doc:"zipf exponent") in
  let universe = Arg.(value & opt int 10_000 & info [ "universe" ] ~doc:"element universe") in
  let length = Arg.(value & opt int 100_000 & info [ "length" ] ~doc:"stream length") in
  let alpha = Arg.(value & opt float 0.01 & info [ "alpha" ] ~doc:"relative error") in
  let delta = Arg.(value & opt float 0.01 & info [ "delta" ] ~doc:"failure probability") in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"elements to report") in
  Cmd.v
    (Cmd.info "sketch" ~doc:"Run the concurrent CountMin on a synthetic stream")
    Term.(const sketch $ shape $ skew $ universe $ length $ alpha $ delta $ top)

let chaos_cmd =
  let target =
    Arg.(
      value & opt string "all"
      & info [ "target" ] ~doc:"counter, pcm, topk, kmv, quantiles or all")
  in
  let domains = Arg.(value & opt int 4 & info [ "domains" ] ~doc:"writer domains") in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"operations per writer") in
  let kills =
    Arg.(value & opt int 1 & info [ "kills" ] ~doc:"domains to kill mid-run")
  in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"base seed") in
  let rounds = Arg.(value & opt int 1 & info [ "rounds" ] ~doc:"soak rounds") in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak-test the multicore objects under injected yields, stalls and \
          domain deaths")
    Term.(const chaos $ target $ domains $ ops $ kills $ seed $ rounds)

let pipeline_cmd =
  let sketch =
    Arg.(
      value
      & opt string "countmin"
      & info [ "sketch" ]
          ~doc:"countmin, hll, kmv, quantiles, spacesaving or counter")
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"shard worker domains") in
  let ops = Arg.(value & opt int 200_000 & info [ "ops" ] ~doc:"stream length") in
  let shape = Arg.(value & opt string "zipf" & info [ "shape" ] ~doc:"zipf, uniform or bursty") in
  let skew = Arg.(value & opt float 1.1 & info [ "skew" ] ~doc:"zipf exponent") in
  let universe = Arg.(value & opt int 50_000 & info [ "universe" ] ~doc:"element universe") in
  let batch =
    Arg.(
      value & opt int 512
      & info [ "batch" ]
          ~doc:
            "items per shard delta — the merge cadence: smaller tightens the \
             freshness/IVL slack, larger buys throughput")
  in
  let queue =
    Arg.(
      value & opt string "mutex"
      & info [ "queue" ]
          ~doc:
            "shard queue implementation: mutex (blocking reference) or \
             lockfree (Vyukov ring, allocation-free hot paths, idle workers \
             steal batches from loaded shards)")
  in
  let queue_cap = Arg.(value & opt int 1024 & info [ "queue-cap" ] ~doc:"shard queue capacity (backpressure bound)") in
  let feeders = Arg.(value & opt int 2 & info [ "feeders" ] ~doc:"feeder domains") in
  let combine =
    Arg.(
      value & flag
      & info [ "combine" ]
          ~doc:
            "give each shard worker a combining buffer: duplicate keys in a \
             popped batch are aggregated locally and folded into the delta \
             with one weighted update each — pays off on skewed streams; \
             per-shard savings are reported as `coalesced'")
  in
  let chaos =
    Arg.(
      value & opt string "none"
      & info [ "chaos" ]
          ~doc:
            "none, or kill: crash-stop random shard workers mid-run (drain \
             must still complete and the envelope must still hold)")
  in
  let kills = Arg.(value & opt int 1 & info [ "kills" ] ~doc:"shard workers to kill (with --chaos kill)") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"base seed") in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "write-ahead-log every merged delta (and checkpoints) into DIR; \
             `recover' can later rebuild the sketch from it")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "with --wal: snapshot the global sketch every N merge epochs so \
             recovery replays only the log suffix (0 = no checkpoints)")
  in
  let kill_and_recover =
    Arg.(
      value & flag
      & info [ "kill-and-recover" ]
          ~doc:
            "after drain, recover a fresh sketch from the --wal directory \
             and fail unless its published weight lands inside the \
             [checkpoint, pre-crash published] IVL envelope")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "run the watchdog: restart dead shard workers with capped \
             exponential backoff instead of shedding their traffic")
  in
  let max_restarts =
    Arg.(
      value & opt int 5
      & info [ "max-restarts" ]
          ~doc:
            "with --supervise: per-shard restart budget before the shard is \
             permanently shed")
  in
  let trace_dump =
    Arg.(
      value & opt int 0
      & info [ "trace-dump" ] ~docv:"N"
          ~doc:
            "print the last N per-domain trace-ring events (flushes, merges, \
             deaths, restarts, injected chaos faults) after the run")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run the sharded ingestion pipeline (wire-encoded deltas, global \
          merges) and check its IVL envelope")
    Term.(
      const pipeline $ sketch $ shards $ ops $ shape $ skew $ universe $ batch
      $ queue $ queue_cap $ feeders $ combine $ chaos $ kills $ seed $ wal
      $ checkpoint_every $ kill_and_recover $ supervise $ max_restarts
      $ metrics_flag $ http_port_flag $ trace_sample_flag $ trace_dump)

let recover_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"durability directory written by pipeline --wal")
  in
  let sketch =
    Arg.(
      value
      & opt string "countmin"
      & info [ "sketch" ]
          ~doc:
            "sketch the WAL was written with: countmin, hll, kmv, quantiles, \
             spacesaving or counter")
  in
  let seed =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~doc:"base seed of the writing pipeline run")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild the global sketch from a WAL + checkpoint directory and \
          report the recovery envelope")
    Term.(const recover $ dir $ sketch $ seed)

let metrics_cmd =
  let format =
    Arg.(
      value & opt string "table"
      & info [ "format" ] ~doc:"table (human), prom (Prometheus text) or json")
  in
  let events =
    Arg.(
      value & opt int 20
      & info [ "events" ] ~docv:"N"
          ~doc:"trace-ring events to dump after the snapshot (0 = none)")
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"shard worker domains") in
  let ops = Arg.(value & opt int 50_000 & info [ "ops" ] ~doc:"stream length") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"base seed") in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:"also WAL the run into DIR so fsync latency appears in the snapshot")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run an instrumented chaos soak of the counter pipeline and \
          pretty-print its metrics snapshot and trace rings")
    Term.(const metrics_demo $ format $ events $ shards $ ops $ seed $ wal)

(* --- trace: generate / record / inspect workload trace files ----------- *)

let trace_gen out ops universe seed =
  let spec = Workload.Trace.default_spec ~seed ~ops ~universe () in
  let t = Workload.Trace.materialize spec in
  match Workload.Trace.write ~path:out spec t with
  | Ok () ->
      print_string (Workload.Trace.describe spec);
      Printf.printf "wrote %d ops to %s\n" (Workload.Trace.total_ops spec) out;
      0
  | Error msg ->
      Printf.eprintf "trace gen: %s\n" msg;
      1

let trace_record out ops universe shape skew query_ratio seed =
  let sh = parse_shape shape skew universe in
  let raw = Workload.Scenario.mixed ~seed ~shape:sh ~query_ratio ~length:ops in
  let spec =
    {
      Workload.Trace.seed;
      phases =
        [
          {
            Workload.Trace.name = "recorded";
            ops;
            query_ratio;
            rate = Workload.Trace.Unlimited;
            shape = Workload.Trace.Recorded { universe };
          };
        ];
    }
  in
  match Workload.Trace.write ~path:out spec [| raw |] with
  | Ok () ->
      print_string (Workload.Trace.describe spec);
      Printf.printf "recorded %d ops to %s\n" ops out;
      0
  | Error msg ->
      Printf.eprintf "trace record: %s\n" msg;
      1

let trace_cat path head =
  match Workload.Trace.read ~path with
  | Error msg ->
      Printf.eprintf "trace cat: %s\n" msg;
      1
  | Ok (spec, ops) ->
      print_string (Workload.Trace.describe spec);
      if head > 0 then
        List.iteri
          (fun i (p : Workload.Trace.phase) ->
            let arr = ops.(i) in
            let n = min head (Array.length arr) in
            Printf.printf "%s (first %d of %d):" p.name n (Array.length arr);
            for j = 0 to n - 1 do
              match arr.(j) with
              | Workload.Scenario.Update k -> Printf.printf " +%d" k
              | Workload.Scenario.Query k -> Printf.printf " ?%d" k
            done;
            print_newline ())
          spec.Workload.Trace.phases;
      0

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.bin"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"trace file to write")
  in
  let ops_arg =
    Arg.(value & opt int 200_000 & info [ "ops" ] ~doc:"total operations across phases")
  in
  let universe_arg =
    Arg.(value & opt int 8192 & info [ "universe" ] ~doc:"key universe size")
  in
  let seed_arg = Arg.(value & opt int64 0x1517L & info [ "seed" ] ~doc:"trace seed") in
  let gen =
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Generate the canonical phased trace (steady Zipf, skew drift, burst \
            trains, diurnal hot-flips, adversarial hammer) and freeze it to a \
            file")
      Term.(const trace_gen $ out_arg $ ops_arg $ universe_arg $ seed_arg)
  in
  let record =
    let shape =
      Arg.(value & opt string "zipf" & info [ "shape" ] ~doc:"zipf or uniform")
    in
    let skew = Arg.(value & opt float 1.1 & info [ "skew" ] ~doc:"zipf skew") in
    let qr =
      Arg.(value & opt float 0.05 & info [ "query-ratio" ] ~doc:"query fraction")
    in
    Cmd.v
      (Cmd.info "record"
         ~doc:
           "Capture a legacy scenario stream into a single-phase trace file so \
            ad-hoc workloads replay bit-for-bit")
      Term.(
        const trace_record $ out_arg $ ops_arg $ universe_arg $ shape $ skew $ qr
        $ seed_arg)
  in
  let cat =
    let file =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"trace file to inspect")
    in
    let head =
      Arg.(
        value & opt int 0
        & info [ "head" ] ~docv:"N" ~doc:"also print the first N ops of each phase")
    in
    Cmd.v
      (Cmd.info "cat"
         ~doc:
           "Validate a trace file (framing, checksums, per-phase counts) and \
            print its phase table")
      Term.(const trace_cat $ file $ head)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Generate, record and inspect workload trace files")
    [ gen; record; cat ]

(* --- soak: full-system chaos soak with end-to-end IVL verdicts ---------- *)

let write_bench_soak path (cfg : Workload.Soak.config) ~total_ops
    (v : Workload.Soak.verdict) =
  let module S = Workload.Soak in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 v.S.rounds in
  let maxf f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 v.S.rounds in
  let upper_excess =
    sum (fun r -> max 0 (r.S.oracle_upper_failures - r.S.oracle_upper_allowance))
  in
  let driver_wall = List.fold_left (fun a r -> a +. r.S.driver.Workload.Driver.wall) 0.0 v.S.rounds in
  let driver_issued = sum (fun r -> r.S.driver.Workload.Driver.issued) in
  let achieved =
    if driver_wall > 0.0 then float_of_int driver_issued /. driver_wall else 0.0
  in
  let phase_max f =
    maxf (fun r ->
        List.fold_left
          (fun a (p : Workload.Driver.phase_report) -> Float.max a (f p))
          0.0 r.S.driver.Workload.Driver.phases)
  in
  let lost_pct =
    if v.S.accepted_total > 0 then
      100.0 *. float_of_int v.S.lost_weight /. float_of_int v.S.accepted_total
    else 0.0
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{ \"exp\": \"soak\",\n  \"entries\": [\n";
  let first = ref true in
  let entry name unit_ value =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "    { \"name\": %S,\n      \"params\": {  },\n      \"unit\": %S,\n   \
          \   \"reps\": %d,\n      \"mean\": %.17g, \"p50\": %.17g, \"p99\": \
          %.17g }"
         name unit_ cfg.S.rounds value value value)
  in
  (* Correctness gates: the "violations" unit is zero-tolerance in
     `bench compare` — any nonzero here against a zero baseline is fatal. *)
  entry "soak-monotone-violations" "violations"
    (float_of_int (sum (fun r -> r.S.monotone_violations)));
  entry "soak-oracle-lower-violations" "violations"
    (float_of_int (sum (fun r -> r.S.oracle_lower_violations)));
  entry "soak-oracle-upper-excess" "violations" (float_of_int upper_excess);
  entry "soak-epoch-regressions" "violations"
    (float_of_int (sum (fun r -> r.S.epoch_regressions)));
  entry "soak-conservation-failures" "violations"
    (float_of_int (sum (fun r -> r.S.conservation_failures)));
  entry "soak-reader-regressions" "violations"
    (float_of_int (sum (fun r -> r.S.reader_regressions)));
  entry "soak-unexpected-failures" "violations"
    (float_of_int (sum (fun r -> r.S.unexpected_failures)));
  entry "soak-decode-failures" "violations"
    (float_of_int (sum (fun r -> r.S.decode_failures)));
  (* Budget: loss is a percentage of accepted weight; absolute-drift gated. *)
  entry "soak-lost-weight-pct" "pct" lost_pct;
  (* Timing: warn-gated by default (CI runners are noisy). *)
  entry "soak-achieved-rate" "ops/s" achieved;
  entry "soak-update-p99" "ns/op"
    (1e9 *. phase_max (fun p -> p.Workload.Driver.update_p99));
  entry "soak-query-p99" "ns/op"
    (1e9 *. phase_max (fun p -> p.Workload.Driver.query_p99));
  (* Informational. *)
  entry "soak-recoveries" "count" (float_of_int v.S.recoveries);
  entry "soak-restarts" "count" (float_of_int (sum (fun r -> r.S.restarts)));
  entry "soak-kills" "count" (float_of_int (sum (fun r -> r.S.kills)));
  entry "soak-total-ops" "count" (float_of_int total_ops);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* A soak is a self-contained crash/recover chain: start from a clean
   durable directory so round 0's oracle and the engine agree on zero. *)
let clear_soak_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then begin
      Printf.eprintf "soak: %s exists and is not a directory\n" dir;
      exit 2
    end;
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)
  end

let soak_run trace_file ops universe seed dir shards feeders rounds kills chaos
    tear queue bench_out metrics_out http_port =
  let module S = Workload.Soak in
  let queue =
    match Pipeline.Squeue.impl_of_string queue with
    | Some impl -> impl
    | None ->
        Printf.eprintf "soak: unknown --queue %s (available: mutex lockfree)\n"
          queue;
        exit 2
  in
  let spec, trace =
    match trace_file with
    | Some path -> (
        match Workload.Trace.read ~path with
        | Ok (spec, t) -> (spec, t)
        | Error msg ->
            Printf.eprintf "soak: cannot read trace %s: %s\n" path msg;
            exit 2)
    | None ->
        let spec = Workload.Trace.default_spec ~seed ~ops ~universe () in
        (spec, Workload.Trace.materialize spec)
  in
  let kills_per_round =
    match chaos with
    | "none" -> 0
    | "kill" -> kills
    | other ->
        Printf.eprintf "soak: unknown --chaos %s (expected none or kill)\n" other;
        exit 2
  in
  clear_soak_dir dir;
  let base = S.default_config ~dir in
  let cfg =
    {
      base with
      S.shards;
      feeders;
      rounds;
      kills_per_round;
      tear_tail = tear && rounds > 1;
      queue;
    }
  in
  let reg = Obs.Registry.create () in
  let http =
    Option.map
      (fun p -> mount_http ~what:"soak" ~reg p)
      http_port
  in
  let v = S.run ~progress:print_endline ~metrics:reg cfg ~spec ~ops:trace () in
  print_string (S.verdict_to_string v);
  Option.iter Obs.Http.stop http;
  (match metrics_out with
  | Some path -> write_metrics ~path (Obs.Registry.snapshot reg)
  | None -> ());
  (match bench_out with
  | Some path ->
      write_bench_soak path cfg ~total_ops:(Workload.Trace.total_ops spec) v
  | None -> ());
  if v.S.pass then 0 else 1

(* soak_cmd is built after the net tier below: `soak --served` needs the
   sketch dispatch (servable_of) and Net.Soak. *)

(* ------------------------------ net tier ------------------------------ *)

(* The served tier is sketch-generic, but each sketch answers a different
   query family; SERVABLE pairs the mergeable with its query evaluator so
   serve/replica dispatch stays one match on the sketch name. The seed
   offset and dimension constants must match [mergeable_of]: a follower
   decodes the leader's blobs, so both ends need identical hash families. *)
module type SERVABLE = sig
  module M : Pipeline.Mergeable.S

  val eval : M.t -> Net.Frame.query -> (int * int) list option
end

let take_n n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let servable_of ~seed sk : (module SERVABLE) option =
  match sk with
  | "counter" ->
      Some
        (module struct
          module M = Pipeline.Targets.Counter

          let eval _ (_ : Net.Frame.query) = None
        end)
  | "countmin" ->
      Some
        (module struct
          module M = Pipeline.Targets.Countmin (struct
            let seed = Int64.add seed 7L
            let rows = cm_rows
            let width = cm_width
          end)

          let eval g = function
            | Net.Frame.Point k -> Some [ (k, Sketches.Countmin.query g k) ]
            | _ -> None
        end)
  | "spacesaving" ->
      Some
        (module struct
          module M = Pipeline.Targets.Space_saving (struct
            let capacity = ss_capacity
          end)

          let eval g = function
            | Net.Frame.Point k -> Some [ (k, Sketches.Space_saving.query g k) ]
            | Net.Frame.Top n -> Some (take_n n (Sketches.Space_saving.top g))
            | _ -> None
        end)
  | "quantiles" ->
      Some
        (module struct
          module M = Pipeline.Targets.Quantiles (struct
            let seed = Int64.add seed 7L
            let k = quantiles_k
          end)

          let eval g = function
            | Net.Frame.Quantile phi ->
                Some [ (0, Sketches.Quantiles.quantile g phi) ]
            | _ -> None
        end)
  | _ -> None

let net_sketches = "counter countmin spacesaving quantiles"

let serve_run sketch host port shards batch max_conns read_timeout duration
    wal_dir metrics_out http_port trace_sample seed =
  match servable_of ~seed sketch with
  | None ->
      Printf.eprintf "serve: unknown sketch %s (available: %s)\n" sketch
        net_sketches;
      2
  | Some (module SV) ->
      let module Srv = Net.Server.Make (SV.M) in
      let reg = Obs.Registry.create () in
      let tracer = make_tracer ~reg trace_sample in
      let stop_flag = ref false in
      let on_signal = Sys.Signal_handle (fun _ -> stop_flag := true) in
      Sys.set_signal Sys.sigint on_signal;
      Sys.set_signal Sys.sigterm on_signal;
      let wal = ref None in
      let base = ref 0 in
      let srv =
        Srv.create ~host ~port ~max_conns ~read_timeout ~metrics:reg
          ?tracer ?dedup_dir:wal_dir ~eval:SV.eval
          ~make_engine:(fun ~on_merge ->
            let initial =
              match wal_dir with
              | Some dir
                when Result.is_ok (Durable.Wal.validate_dir ~dir ()) -> (
                  let module R = Durable.Recovery.Make (SV.M) in
                  match R.recover_compact ~metrics:reg ~dir () with
                  | Ok (sk0, r) when r.R.recovered_epoch > 0 ->
                      Printf.printf
                        "serve: recovered epoch %d carrying published weight \
                         %d from %s\n\
                         %!"
                        r.R.recovered_epoch r.R.recovered_published dir;
                      Some (sk0, r.R.recovered_epoch, r.R.recovered_published)
                  | Ok _ -> None
                  | Error msg ->
                      Printf.eprintf "serve: recovery failed: %s\n%!" msg;
                      None)
              | _ -> None
            in
            (match initial with
            | Some (_, _, p) -> base := p
            | None -> ());
            (match wal_dir with
            | Some dir -> wal := Some (Durable.Wal.create ~dir ~metrics:reg ())
            | None -> ());
            let on_merge ~ctx ~epoch ~weight ~blob =
              (match !wal with
              | Some w ->
                  let t0 =
                    match tracer with
                    | Some _ when not (Obs.Span.is_zero ctx) ->
                        Obs.Tracer.now_ns ()
                    | _ -> 0
                  in
                  Durable.Wal.append w ~epoch ~weight ~blob;
                  (match tracer with
                  | Some tr when not (Obs.Span.is_zero ctx) ->
                      ignore
                        (Obs.Tracer.record tr ~ctx ~stage:"wal" ~start_ns:t0
                           ~end_ns:(Obs.Tracer.now_ns ()))
                  | _ -> ())
              | None -> ());
              on_merge ~ctx ~epoch ~weight ~blob
            in
            Srv.P.create ~shards ~batch ~metrics:reg ?tracer ~on_merge
              ?initial ())
          ()
      in
      Printf.printf
        "serve: %s on %s:%d (%d shards, batch %d, max %d conns)%s\n%!" sketch
        host (Srv.port srv) shards batch max_conns
        (match wal_dir with Some d -> " wal=" ^ d | None -> "");
      let slo =
        let stats () = Srv.P.stats (Srv.engine srv) in
        Obs.Slo.create ~metrics:reg
          ~budget:
            (Obs.Slo.theorem6_budget ~shards ~batch ~queue_capacity:1024 ())
          ~envelope:(fun () ->
            let st = stats () in
            let enq =
              Array.fold_left
                (fun a (s : Srv.P.shard_stats) -> a + s.enqueued - s.dropped)
                0 st.Srv.P.shards
            in
            float_of_int (max 0 (!base + enq - st.Srv.P.published)))
          ~staleness:(fun () -> -1.0)
          ~merge_lag:(fun () ->
            let lag = (stats ()).Srv.P.merge_lag in
            let n = Array.length lag in
            if n = 0 then -1.0 else lag.(n - 1))
          ()
      in
      let http =
        Option.map
          (fun p ->
            mount_http ~what:"serve" ~reg ?tracer ~slo
              ~health:(fun () ->
                let st = Srv.stats srv in
                let est = Srv.P.stats (Srv.engine srv) in
                [
                  ("conns", string_of_int st.Srv.conns);
                  ("published", string_of_int est.Srv.P.published);
                  ("epoch", string_of_int est.Srv.P.epoch);
                ])
              p)
          http_port
      in
      let deadline =
        if duration > 0.0 then Unix.gettimeofday () +. duration else infinity
      in
      while (not !stop_flag) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.05;
        ignore (Obs.Slo.eval slo)
      done;
      let st = Srv.stop srv in
      Option.iter Obs.Http.stop http;
      (match !wal with Some w -> Durable.Wal.close w | None -> ());
      let est = Srv.P.stats (Srv.engine srv) in
      Printf.printf
        "serve: %d conns (%d subscribers), %d frames in, %d frames out, %d \
         decode errors\n"
        st.Srv.conns st.Srv.subscribers st.Srv.frames_in st.Srv.frames_out
        st.Srv.decode_errors;
      Printf.printf
        "serve: %d batches, %d ingested, %d shed, %d queries, %d sessions, %d \
         duplicate batches suppressed\n"
        st.Srv.batches st.Srv.ingested st.Srv.shed st.Srv.queries
        st.Srv.sessions st.Srv.duplicates;
      (* After a clean drain every accepted key is merged exactly once, so
         published weight must equal the recovered base plus this run's
         accepted ingests — the leader-side conservation verdict. *)
      let expect = !base + st.Srv.ingested in
      let pass = est.Srv.P.published = expect in
      Printf.printf
        "serve: conservation %s (published %d, expected %d = %d recovered + \
         %d ingested)\n"
        (if pass then "PASS" else "FAIL")
        est.Srv.P.published expect !base st.Srv.ingested;
      let slo_v = Obs.Slo.eval slo in
      Printf.printf
        "serve: slo %s at drain (worst %s at %.2fx budget, %d breaches)\n"
        (Obs.Slo.state_to_string slo_v.Obs.Slo.state)
        slo_v.Obs.Slo.worst_dim slo_v.Obs.Slo.worst_ratio
        slo_v.Obs.Slo.breaches;
      (match metrics_out with
      | Some path -> write_metrics ~path (Obs.Registry.snapshot reg)
      | None -> ());
      if pass then 0 else 1

let client_run host port trace_file ops universe seed feeders conns batch
    flush_age queue overflow slack metrics_out trace_sample =
  let overflow =
    match overflow with
    | "block" -> Net.Client.Block
    | "shed" -> Net.Client.Shed
    | other ->
        Printf.eprintf "client: unknown --overflow %s (block or shed)\n" other;
        exit 2
  in
  let spec, trace =
    match trace_file with
    | Some path -> (
        match Workload.Trace.read ~path with
        | Ok (spec, t) -> (spec, t)
        | Error msg ->
            Printf.eprintf "client: cannot read trace %s: %s\n" path msg;
            exit 2)
    | None ->
        let spec = Workload.Trace.default_spec ~seed ~ops ~universe () in
        (spec, Workload.Trace.materialize spec)
  in
  let reg = Obs.Registry.create () in
  let tracer = make_tracer ~reg trace_sample in
  let cl =
    Net.Client.create ~conns ~batch ~flush_age
      ?queue:(if queue > 0 then Some queue else None)
      ~overflow ~metrics:reg ?tracer ~host ~port ()
  in
  let sink = Net.Client.sink cl in
  let report =
    Workload.Driver.run ~feeders ~metrics:reg
      ~make_sink:(fun ~feeder:_ -> sink)
      ~spec ~ops:trace ()
  in
  print_string (Workload.Driver.report_to_string report);
  Net.Client.flush cl;
  let total () =
    match Net.Client.query cl Net.Frame.Total with
    | Ok (Net.Frame.Result { pairs = [ (_, v) ]; _ }) -> Some v
    | _ -> None
  in
  (* quiescence: the published total stops moving once the in-flight batches
     have merged (partial shard deltas stay unflushed and are the envelope's
     slack term) *)
  let rec settle last tries =
    if tries = 0 then last
    else begin
      Unix.sleepf 0.1;
      match total () with
      | Some v when last = Some v -> last
      | v -> settle v (tries - 1)
    end
  in
  let t = settle (total ()) 50 in
  let cs = Net.Client.stats cl in
  Net.Client.close cl;
  Printf.printf
    "client: pushed %d, acked %d, sent %d, shed %d, errors %d, reconnects %d, \
     %d duplicate acks suppressed server-side\n"
    cs.Net.Client.pushed cs.Net.Client.acked cs.Net.Client.sent
    cs.Net.Client.shed cs.Net.Client.errors cs.Net.Client.reconnects
    cs.Net.Client.duplicates_suppressed;
  (match metrics_out with
  | Some path -> write_metrics ~path (Obs.Registry.snapshot reg)
  | None -> ());
  match t with
  | None ->
      Printf.printf "client: envelope FAIL (leader answered no total)\n";
      1
  | Some t when cs.Net.Client.exhausted > 0 ->
      (* a batch that ran out of retries has unknown fate (it may have been
         applied before the connection died), so acked is no longer exact —
         the envelope claim is unverifiable rather than violated. Transport
         errors alone no longer cost exactness: the session/seq dedup window
         makes retried batches ack-but-not-reapply. *)
      Printf.printf
        "client: envelope SKIP (total %d; %d keys exhausted retries, fate \
         unknown)\n"
        t cs.Net.Client.exhausted;
      0
  | Some t ->
      let lag = cs.Net.Client.acked - t in
      let pass = lag >= 0 && lag <= slack in
      Printf.printf
        "client: envelope %s (total %d, acked %d, lag %d, slack %d, %d dup \
         acks)\n"
        (if pass then "PASS" else "FAIL")
        t cs.Net.Client.acked lag slack cs.Net.Client.duplicates_suppressed;
      if pass then 0 else 1

let replica_status_string = function
  | `Syncing -> "syncing"
  | `Live -> "live"
  | `Resyncing msg -> "resyncing: " ^ msg
  | `Broken msg -> "broken: " ^ msg
  | `Closed -> "closed"

let replica_run sketch host port seed duration settle metrics_out http_port
    trace_sample =
  match servable_of ~seed sketch with
  | None ->
      Printf.eprintf "replica: unknown sketch %s (available: %s)\n" sketch
        net_sketches;
      2
  | Some (module SV) -> (
      let module R = Net.Replica.Make (SV.M) in
      let reg = Obs.Registry.create () in
      let tracer = make_tracer ~reg trace_sample in
      match
        let r = R.connect ~metrics:reg ?tracer ~host ~port () in
        let qc = Net.Conn.connect ~host ~port in
        (r, qc)
      with
      | exception Unix.Unix_error (err, _, _) ->
          Printf.eprintf "replica: cannot reach %s:%d: %s\n" host port
            (Unix.error_message err);
          2
      | r, qc ->
      Net.Conn.set_read_timeout qc 5.0;
      let http =
        Option.map
          (fun p ->
            mount_http ~what:"replica" ~reg ?tracer
              ~health:(fun () ->
                let s = R.stats r in
                [
                  ("status", replica_status_string s.R.status);
                  ("published", string_of_int s.R.published);
                  ("epoch", string_of_int s.R.epoch);
                  ("resyncs", string_of_int s.R.resyncs);
                ])
              p)
          http_port
      in
      let leader_total () =
        if
          Net.Conn.send qc
            (Net.Frame.encode_request (Net.Frame.Query Net.Frame.Total))
        then
          match Net.Conn.recv qc with
          | Ok f -> (
              match Net.Frame.decode_response f with
              | Ok (Net.Frame.Result { pairs = [ (_, v) ]; _ }) -> Some v
              | _ -> None)
          | Error _ -> None
        else None
      in
      let deadline = Unix.gettimeofday () +. duration in
      let samples = ref 0
      and violations = ref 0
      and stable = ref 0
      and last = ref (-1)
      and final_leader = ref None
      and converged = ref false in
      while (not !converged) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.05;
        let f = R.published r in
        match leader_total () with
        | None -> ()
        | Some l ->
            incr samples;
            (* the follower lags, never leads: its published weight must not
               exceed the leader's, sampled after *)
            if f > l then incr violations;
            if l = !last then incr stable
            else begin
              stable := 0;
              last := l
            end;
            final_leader := Some l;
            if !stable >= settle && R.published r = l then converged := true
      done;
      let s = R.stats r in
      R.close r;
      Net.Conn.close qc;
      Option.iter Obs.Http.stop http;
      (match metrics_out with
      | Some path -> write_metrics ~path (Obs.Registry.snapshot reg)
      | None -> ());
      Printf.printf
        "replica: %d deltas applied, %d duplicates skipped, %d resyncs, \
         epoch %d, published %d, status %s\n"
        s.R.deltas s.R.skipped s.R.resyncs s.R.epoch s.R.published
        (replica_status_string s.R.status);
      let env_pass = !samples > 0 && !violations = 0 in
      Printf.printf "replica: envelope %s (%d samples, %d follower-ahead)\n"
        (if env_pass then "PASS" else "FAIL")
        !samples !violations;
      Printf.printf "replica: convergence %s (follower %d, leader %s)\n"
        (if !converged then "PASS" else "FAIL")
        s.R.published
        (match !final_leader with Some l -> string_of_int l | None -> "?");
      if env_pass && !converged then 0 else 1)

let serve_cmd =
  let sketch =
    Arg.(value & pos 0 string "counter" & info [] ~docv:"SKETCH" ~doc:net_sketches)
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"bind address") in
  let port =
    Arg.(value & opt int 7070 & info [ "port" ] ~doc:"TCP port (0 = ephemeral)")
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"shard worker domains") in
  let batch = Arg.(value & opt int 512 & info [ "batch" ] ~doc:"merge cadence in items") in
  let max_conns =
    Arg.(
      value & opt int 32
      & info [ "max-conns" ] ~doc:"max concurrent connection handler domains")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "read-timeout" ] ~doc:"seconds before a stalled peer is reset")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration" ] ~doc:"seconds to serve (0 = until SIGINT/SIGTERM)")
  in
  let wal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:"durable directory: recover on start, WAL every merge")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"sketch hash seed") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the pipeline over TCP: framed batch ingest, snapshot queries, \
          and follower replication, with a conservation verdict at shutdown")
    Term.(
      const serve_run $ sketch $ host $ port $ shards $ batch $ max_conns
      $ read_timeout $ duration $ wal_dir $ metrics_flag $ http_port_flag
      $ trace_sample_flag $ seed)

let client_cmd =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"server address") in
  let port = Arg.(value & opt int 7070 & info [ "port" ] ~doc:"server port") in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"replay this trace file instead of generating one")
  in
  let ops =
    Arg.(
      value & opt int 200_000
      & info [ "ops" ] ~doc:"total generated operations (ignored with --trace)")
  in
  let universe =
    Arg.(
      value & opt int 8192
      & info [ "universe" ] ~doc:"key universe of the generated trace")
  in
  let seed = Arg.(value & opt int64 0x1517L & info [ "seed" ] ~doc:"trace seed") in
  let feeders =
    Arg.(value & opt int 2 & info [ "feeders" ] ~doc:"driver feeder domains")
  in
  let conns =
    Arg.(value & opt int 4 & info [ "conns" ] ~doc:"sender connections (the pool)")
  in
  let batch = Arg.(value & opt int 256 & info [ "batch" ] ~doc:"keys per frame") in
  let flush_age =
    Arg.(
      value & opt float 0.05
      & info [ "flush-age" ] ~doc:"seconds a key may wait in a partial batch")
  in
  let queue =
    Arg.(
      value & opt int 0
      & info [ "queue" ] ~doc:"client buffer capacity in keys (0 = 8 * batch)")
  in
  let overflow =
    Arg.(
      value & opt string "block"
      & info [ "overflow" ] ~doc:"full-buffer policy: block or shed")
  in
  let slack =
    Arg.(
      value & opt int 2048
      & info [ "slack" ]
          ~doc:
            "max acked-minus-published lag at quiescence (server shards x \
             batch: unflushed partial deltas)")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive a workload trace through the batching client into a served \
          pipeline and check the leader's answers stay inside the IVL \
          envelope")
    Term.(
      const client_run $ host $ port $ trace_file $ ops $ universe $ seed
      $ feeders $ conns $ batch $ flush_age $ queue $ overflow $ slack
      $ metrics_flag $ trace_sample_flag)

let replica_cmd =
  let sketch =
    Arg.(value & pos 0 string "counter" & info [] ~docv:"SKETCH" ~doc:net_sketches)
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"leader address") in
  let port = Arg.(value & opt int 7070 & info [ "port" ] ~doc:"leader port") in
  let seed =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~doc:"sketch hash seed (must match the leader's)")
  in
  let duration =
    Arg.(
      value & opt float 30.0
      & info [ "duration" ] ~doc:"max seconds to follow before giving up")
  in
  let settle =
    Arg.(
      value & opt int 10
      & info [ "settle" ]
          ~doc:"consecutive unchanged leader samples that mean quiescence")
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Follow a served leader as a replication subscriber; verify the \
          follower never leads the leader and converges exactly at \
          quiescence")
    Term.(
      const replica_run $ sketch $ host $ port $ seed $ duration $ settle
      $ metrics_flag $ http_port_flag $ trace_sample_flag)

(* --- soak: round-based (in-process) or served (full tier via proxy) ---- *)

let write_bench_served path (v : Net.Soak.verdict) ~total_ops =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{ \"exp\": \"served-soak\",\n  \"entries\": [\n";
  let first = ref true in
  let entry name unit_ value =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "    { \"name\": %S,\n      \"params\": {  },\n      \"unit\": %S,\n   \
          \   \"reps\": 1,\n      \"mean\": %.17g, \"p50\": %.17g, \"p99\": \
          %.17g }"
         name unit_ value value value)
  in
  let flag b = if b then 0.0 else 1.0 in
  (* zero-tolerance gates ("violations" unit in `bench compare`) *)
  entry "served-soak-conservation-violations" "violations" (flag v.Net.Soak.conservation);
  entry "served-soak-ack-violations" "violations" (flag v.Net.Soak.ack_envelope);
  entry "served-soak-replica-violations" "violations" (flag v.Net.Soak.replica_envelope);
  entry "served-soak-convergence-violations" "violations" (flag v.Net.Soak.convergence);
  entry "served-soak-exhausted" "violations" (float_of_int v.Net.Soak.exhausted);
  entry "served-soak-follower-ahead" "violations" (float_of_int v.Net.Soak.follower_ahead);
  (* informational *)
  entry "served-soak-restarts" "count" (float_of_int v.Net.Soak.restarts_done);
  entry "served-soak-partitions" "count" (float_of_int v.Net.Soak.partitions_done);
  entry "served-soak-resyncs" "count" (float_of_int v.Net.Soak.resyncs);
  entry "served-soak-duplicates" "count" (float_of_int v.Net.Soak.duplicates_server);
  entry "served-soak-proxy-resets" "count"
    (float_of_int v.Net.Soak.proxy.Net.Chaos_proxy.resets);
  entry "served-soak-total-ops" "count" (float_of_int total_ops);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path

let served_soak_run sketch trace_file ops universe seed dir shards conns feeders
    restarts partitions down_time partition_time latency corrupt reset drop
    record_trace metrics_out http_port trace_sample bench_out =
  match servable_of ~seed sketch with
  | None ->
      Printf.eprintf "soak: unknown sketch %s (available: %s)\n" sketch
        net_sketches;
      2
  | Some (module SV) ->
      let module NS = Net.Soak.Make (SV.M) in
      let spec, trace =
        match trace_file with
        | Some path -> (
            match Workload.Trace.read ~path with
            | Ok (spec, t) -> (spec, t)
            | Error msg ->
                Printf.eprintf "soak: cannot read trace %s: %s\n" path msg;
                exit 2)
        | None ->
            (* closed loop: the served soak's clock is the fault schedule,
               not an offered-rate curve *)
            let spec = Workload.Trace.default_spec ~seed ~ops ~universe () in
            let spec =
              {
                spec with
                Workload.Trace.phases =
                  List.map
                    (fun (p : Workload.Trace.phase) ->
                      { p with Workload.Trace.rate = Workload.Trace.Unlimited })
                    spec.Workload.Trace.phases;
              }
            in
            (spec, Workload.Trace.materialize spec)
      in
      clear_soak_dir dir;
      let base = Net.Soak.default_config ~dir in
      let cfg =
        {
          base with
          Net.Soak.shards;
          conns;
          feeders;
          restarts;
          partitions;
          down_time;
          partition_time;
          seed;
          faults =
            {
              Net.Chaos_proxy.latency = (0.0, latency);
              corrupt_prob = corrupt;
              reset_prob = reset;
              drop_conn_prob = drop;
            };
        }
      in
      let reg = Obs.Registry.create () in
      let tracer = make_tracer ~reg trace_sample in
      let v =
        NS.run
          ~progress:(fun s -> Printf.printf "%s\n%!" s)
          ~metrics:reg ?tracer ?http_port ?record:record_trace cfg ~spec
          ~ops:trace ()
      in
      print_string (NS.verdict_to_string v);
      (match metrics_out with
      | Some path -> write_metrics ~path (Obs.Registry.snapshot reg)
      | None -> ());
      (match bench_out with
      | Some path ->
          write_bench_served path v ~total_ops:(Workload.Trace.total_ops spec)
      | None -> ());
      if v.Net.Soak.pass then 0 else 1

let soak_dispatch served sketch trace_file ops universe seed dir shards feeders
    rounds kills chaos tear queue bench_out conns restarts partitions down_time
    partition_time latency corrupt reset drop record_trace metrics_out http_port
    trace_sample =
  if served then
    served_soak_run sketch trace_file ops universe seed dir shards conns feeders
      restarts partitions down_time partition_time latency corrupt reset drop
      record_trace metrics_out http_port trace_sample bench_out
  else
    soak_run trace_file ops universe seed dir shards feeders rounds kills chaos
      tear queue bench_out metrics_out http_port

let soak_cmd =
  let served =
    Arg.(
      value & flag
      & info [ "served" ]
          ~doc:
            "run the soak through the served tier: TCP server behind a \
             fault-injecting proxy, batching clients, follower replica, \
             server kill/WAL-restart cycles")
  in
  let sketch =
    Arg.(
      value & opt string "counter"
      & info [ "sketch" ] ~doc:("served-soak sketch: " ^ net_sketches))
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"replay this trace file instead of generating one")
  in
  let ops =
    Arg.(
      value & opt int 200_000
      & info [ "ops" ] ~doc:"total generated operations (ignored with --trace)")
  in
  let universe =
    Arg.(
      value & opt int 8192
      & info [ "universe" ] ~doc:"key universe of the generated trace")
  in
  let seed = Arg.(value & opt int64 0x1517L & info [ "seed" ] ~doc:"trace seed") in
  let dir =
    Arg.(
      value & opt string "_soak"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"durable WAL + checkpoint directory (cleared before the run)")
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"shard worker domains") in
  let feeders = Arg.(value & opt int 2 & info [ "feeders" ] ~doc:"driver feeder domains") in
  let rounds =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~doc:"engine incarnations (rounds - 1 crash/recover cycles)")
  in
  let kills =
    Arg.(value & opt int 2 & info [ "kills" ] ~doc:"chaos kills per round (at most shards)")
  in
  let chaos =
    Arg.(
      value & opt string "kill"
      & info [ "chaos" ] ~doc:"none (no fault injection) or kill (shard worker kills)")
  in
  let tear =
    Arg.(
      value & opt bool true
      & info [ "tear-tail" ]
          ~doc:"tear the WAL tail mid-frame between rounds (crash during append)")
  in
  let queue =
    Arg.(
      value & opt string "mutex"
      & info [ "queue" ]
          ~doc:
            "shard queue implementation for the pipeline soak: mutex or \
             lockfree (ring + work stealing)")
  in
  let bench_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:"also write verdict counters and percentiles as a BENCH json")
  in
  let conns =
    Arg.(
      value & opt int 2
      & info [ "conns" ] ~doc:"served: client sender connections")
  in
  let restarts =
    Arg.(
      value & opt int 2
      & info [ "restarts" ] ~doc:"served: server kill + WAL-restart cycles")
  in
  let partitions =
    Arg.(
      value & opt int 1
      & info [ "partitions" ] ~doc:"served: full network partitions")
  in
  let down_time =
    Arg.(
      value & opt float 0.3
      & info [ "down-time" ] ~doc:"served: seconds the server stays dead")
  in
  let partition_time =
    Arg.(
      value & opt float 0.3
      & info [ "partition-time" ] ~doc:"served: seconds per partition")
  in
  let latency =
    Arg.(
      value & opt float 0.002
      & info [ "latency" ] ~doc:"served: max injected delay per chunk (s)")
  in
  let corrupt =
    Arg.(
      value & opt float 0.005
      & info [ "corrupt" ] ~doc:"served: per-chunk bit-flip probability")
  in
  let reset =
    Arg.(
      value & opt float 0.005
      & info [ "reset" ] ~doc:"served: per-chunk mid-frame reset probability")
  in
  let drop =
    Arg.(
      value & opt float 0.02
      & info [ "drop" ] ~doc:"served: per-dial refusal probability")
  in
  let record_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-trace" ] ~docv:"FILE"
          ~doc:"served: freeze the driven ops to a replayable trace file")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Full-system chaos soak: drive a phased trace through the WAL-backed \
          pipeline across crash/recover rounds (or, with --served, through \
          the whole TCP tier behind a fault-injecting proxy) and emit an \
          end-to-end IVL PASS/FAIL verdict")
    Term.(
      const soak_dispatch $ served $ sketch $ trace_file $ ops $ universe $ seed
      $ dir $ shards $ feeders $ rounds $ kills $ chaos $ tear $ queue
      $ bench_out $ conns $ restarts $ partitions $ down_time $ partition_time
      $ latency $ corrupt $ reset $ drop $ record_trace $ metrics_flag
      $ http_port_flag $ trace_sample_flag)

let () =
  let doc = "Intermediate Value Linearizability: checkers, simulators, sketches" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ivl-cli" ~doc)
          [
            replay_cmd;
            fuzz_cmd;
            steps_cmd;
            sketch_cmd;
            envelope_cmd;
            explore_cmd;
            chaos_cmd;
            pipeline_cmd;
            recover_cmd;
            metrics_cmd;
            trace_cmd;
            soak_cmd;
            serve_cmd;
            client_cmd;
            replica_cmd;
          ]))
