(** Cache-line padding for contended heap blocks.

    An [int Atomic.t] is a one-word block; [Array.init n (fun _ ->
    Atomic.make 0)] therefore packs eight hot counters per 64-byte line and
    every fetch-and-add bounces the line between writers ({e false
    sharing}). These helpers re-allocate a block at two cache lines' size so
    its mutable word owns its line. Block size is preserved by the moving
    GC, so the isolation is permanent, unlike allocation-order spacing.

    The cost is memory (128 bytes per padded block) and colder sequential
    scans, so padding is for {e known-contended} cells — per-domain slots,
    single hot counters — never for bulk storage like a sketch matrix
    (see {!Flat_pcm} for how bulk hot storage avoids sharing instead). *)

val cache_line_words : int
(** Words per assumed cache line (8 = 64 bytes). *)

val copy : 'a -> 'a
(** [copy v] returns a structurally identical copy of [v] whose block spans
    two cache lines. Returns [v] unchanged when padding is impossible or
    pointless (immediates, custom/no-scan blocks, already-large blocks).
    Use only on freshly created blocks that nothing else aliases — the
    original keeps existing but updates to the copy do not propagate. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [copy (Atomic.make v)]: an atomic on its own line. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [atomic_array n v] is [n] independently padded atomics — the standard
    layout for per-domain counter slots. *)
