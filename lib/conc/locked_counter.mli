(** Linearizable batched counter via a global mutex (baseline for E7).

    Linearizability is immediate (critical sections are linearization
    points); cost is serialization of all updates and reads. *)

type t

val create : unit -> t
val update : t -> int -> unit
val read : t -> int
