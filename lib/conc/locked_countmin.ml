type t = { lock : Mutex.t; sketch : Sketches.Countmin.t }

let create ~family = { lock = Mutex.create (); sketch = Sketches.Countmin.create ~family }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let update t a = with_lock t (fun () -> Sketches.Countmin.update t.sketch a)

let query t a = with_lock t (fun () -> Sketches.Countmin.query t.sketch a)

let updates t = with_lock t (fun () -> Sketches.Countmin.updates t.sketch)
