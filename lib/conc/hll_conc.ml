type t = {
  p : int;
  seed : int64;
  hash : Hashing.Tabulation.t;
  regs : int Atomic.t array;
}

let create ?(p = 12) ~seed () =
  if p < 4 || p > 16 then invalid_arg "Hll_conc.create: p must lie in [4,16]";
  let g = Rng.Splitmix.create seed in
  {
    p;
    seed;
    hash = Hashing.Tabulation.create g;
    regs = Array.init (1 lsl p) (fun _ -> Atomic.make 0);
  }

(* Monotone raise: lost CAS races re-check against the new value. *)
let rec raise_register reg rank =
  let cur = Atomic.get reg in
  if rank > cur && not (Atomic.compare_and_set reg cur rank) then
    raise_register reg rank

let update t x =
  let h = Hashing.Tabulation.hash t.hash x in
  let idx = h land ((1 lsl t.p) - 1) in
  let rest = h lsr t.p in
  let width = 63 - t.p in
  let rank =
    if rest = 0 then width + 1
    else
      let rec count i = if rest land (1 lsl i) <> 0 then i + 1 else count (i + 1) in
      count 0
  in
  raise_register t.regs.(idx) rank

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let estimate t =
  let m = float_of_int (Array.length t.regs) in
  let sum = ref 0.0 and zeros = ref 0 in
  Array.iter
    (fun reg ->
      let r = Atomic.get reg in
      sum := !sum +. (2.0 ** float_of_int (-r));
      if r = 0 then incr zeros)
    t.regs;
  let raw = alpha (Array.length t.regs) *. m *. m /. !sum in
  if raw <= 2.5 *. m && !zeros > 0 then m *. log (m /. float_of_int !zeros) else raw

let merge_from t seq =
  if Sketches.Hyperloglog.p seq <> t.p then
    invalid_arg "Hll_conc.merge_from: p mismatch";
  let regs = Sketches.Hyperloglog.registers seq in
  Array.iteri (fun i r -> raise_register t.regs.(i) r) regs

let to_sequential t =
  Sketches.Hyperloglog.of_registers ~p:t.p ~seed:t.seed
    (Array.map Atomic.get t.regs)

let p t = t.p

let seed t = t.seed
