(** A concurrent quantiles sketch from per-domain stripes and merge.

    The paper's conclusion asks for IVL beyond counters and frequency
    sketches; quantiles are the natural next target because rank values are
    monotone in stream growth. This implementation combines two of the
    paper's motifs:

    - {e single-writer state} (like Algorithm 2): each ingestion domain owns
      a private KLL sketch nobody else touches, so updates take no locks and
      no CAS;
    - {e batched publication} (like the batched counter's batches): every
      [publish_every] updates — and on {!flush} — a domain atomically
      publishes an immutable copy of its stripe.

    A query merges the published copies (mergeable summaries, Agarwal et
    al.) and answers from the merge. The value returned is therefore the
    rank under some subset of stripes' prefixes: at least the ideal rank
    over everything published before the query started, at most the ideal
    rank at its end — the intermediate-value envelope, with staleness
    bounded by [domains × (publish_every − 1)] unpublished items (±εn
    sketch error on top, per the sequential analysis). Tests check the
    envelope against {!Spec.Rank_spec}. *)

type t

val create :
  ?k:int -> ?publish_every:int -> seed:int64 -> domains:int -> unit -> t
(** [publish_every] defaults to 64; [k] to 200.
    @raise Invalid_argument if [domains <= 0] or [publish_every <= 0]. *)

val update : t -> domain:int -> int -> unit
(** Ingest one value on [domain]'s stripe (single writer per domain).
    @raise Invalid_argument on an unknown domain. *)

val flush : t -> domain:int -> unit
(** Publish [domain]'s stripe immediately (call when a writer quiesces). *)

val flush_all : t -> unit
(** Publish every stripe — only safe once writers have stopped. *)

val rank : t -> int -> int
(** Estimated rank of a value over all published data. *)

val quantile : t -> float -> int
(** [quantile t phi]: an element at estimated rank ~phi·n over the published
    data. @raise Invalid_argument outside [0,1]; @raise Not_found when
    nothing has been published. *)

val published : t -> int
(** Number of items currently visible to queries. *)

val ingested : t -> domain:int -> int
(** Items [domain] has ingested (published or not). *)
