let join_all handles =
  Array.map
    (fun h -> match Domain.join h with v -> v | exception e -> Error e)
    handles

(* Prefer a worker's own failure over a consequent [Barrier.Broken]: when one
   worker dies pre-barrier its siblings all break out with Broken, but the
   root cause is the original exception. *)
let first_error results =
  let is_broken = function Barrier.Broken _ -> true | _ -> false in
  let pick want_broken =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, Error e when is_broken e = want_broken -> Some e
        | _ -> acc)
      None results
  in
  match pick false with Some e -> Some e | None -> pick true

let parallel_result ~domains f =
  if domains <= 0 then invalid_arg "Runner.parallel_result: domains must be positive";
  let handles =
    Array.init domains (fun i ->
        Domain.spawn (fun () -> match f i with v -> Ok v | exception e -> Error e))
  in
  join_all handles

let parallel ~domains f =
  if domains <= 0 then invalid_arg "Runner.parallel: domains must be positive";
  let results = parallel_result ~domains f in
  match first_error results with
  | Some e -> raise e
  | None ->
      Array.map (function Ok v -> v | Error _ -> assert false) results

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let parallel_timed ~domains f =
  if domains <= 0 then invalid_arg "Runner.parallel_timed: domains must be positive";
  let barrier = Barrier.create (domains + 1) in
  let handles =
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            match f i barrier with
            | v -> Ok v
            | exception e ->
                (* A worker dying before its Barrier.await would strand every
                   other party mid-spin; poisoning turns the hang into a
                   Broken diagnostic for all of them. *)
                Barrier.poison barrier
                  (Printf.sprintf "worker %d raised %s" i (Printexc.to_string e));
                Error e))
  in
  (* The coordinator is the (domains+1)-th party: once it passes the barrier,
     every worker is at its start line. *)
  let start_failure =
    match Barrier.await barrier with () -> None | exception e -> Some e
  in
  let t0 = Unix.gettimeofday () in
  let results = join_all handles in
  let dt = Unix.gettimeofday () -. t0 in
  (* Every domain is joined before any exception propagates; prefer a
     worker's own exception over the coordinator's Broken. *)
  match first_error results with
  | Some e -> raise e
  | None -> (
      match start_failure with
      | Some e -> raise e
      | None ->
          (Array.map (function Ok v -> v | Error _ -> assert false) results, dt))
