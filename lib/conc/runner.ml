let parallel ~domains f =
  if domains <= 0 then invalid_arg "Runner.parallel: domains must be positive";
  let handles = Array.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  let results = Array.map Domain.join handles in
  results

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let parallel_timed ~domains f =
  if domains <= 0 then invalid_arg "Runner.parallel_timed: domains must be positive";
  let barrier = Barrier.create (domains + 1) in
  let handles = Array.init domains (fun i -> Domain.spawn (fun () -> f i barrier)) in
  let t0 = ref 0.0 in
  (* The coordinator is the (domains+1)-th party: once it passes the barrier,
     every worker is at its start line. *)
  Barrier.await barrier;
  t0 := Unix.gettimeofday ();
  let results = Array.map Domain.join handles in
  (results, Unix.gettimeofday () -. !t0)
