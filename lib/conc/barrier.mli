(** A reusable spin barrier for synchronizing domain start lines — hardened
    against dead and raising workers.

    Throughput experiments must start all writers and readers at the same
    instant; a sense-reversing spin barrier keeps the synchronization cost
    off the measured path. A barrier is also a fault amplifier: if one
    worker dies before arriving, everyone else spins forever. This
    implementation therefore supports {e poisoning} — a worker that fails
    marks the barrier broken and wakes every waiter with a diagnostic — and
    a spin {e timeout} as a last resort, so a crashed party produces an
    exception instead of a livelocked coordinator. *)

type t

exception Broken of string
(** Raised by {!await} when the barrier was poisoned or the timeout
    elapsed. The message names the cause. *)

val create : ?timeout_s:float -> int -> t
(** [create parties] — the barrier trips when [parties] domains arrive.
    [timeout_s] (default 10s) bounds each {!await}'s spin; on expiry the
    waiter poisons the barrier and raises {!Broken}.
    @raise Invalid_argument if [parties <= 0] or [timeout_s <= 0]. *)

val await : t -> unit
(** Block (spinning) until all parties have arrived; reusable afterwards.
    @raise Broken if the barrier is (or becomes) poisoned, or after
    [timeout_s] without the barrier tripping — in which case the barrier is
    poisoned so every other waiter breaks out too. *)

val poison : t -> string -> unit
(** Mark the barrier permanently broken (e.g. from a worker's exception
    handler); every current and future {!await} raises {!Broken} carrying
    the first poison message. Idempotent. *)

val is_broken : t -> bool

val parties : t -> int
