(** A reusable spin barrier for synchronizing domain start lines.

    Throughput experiments must start all writers and readers at the same
    instant; a sense-reversing spin barrier keeps the synchronization cost
    off the measured path. *)

type t

val create : int -> t
(** [create parties] — the barrier trips when [parties] domains arrive.
    @raise Invalid_argument if [parties <= 0]. *)

val await : t -> unit
(** Block (spinning) until all parties have arrived; reusable afterwards. *)
