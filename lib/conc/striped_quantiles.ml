module Stripe = Stripes.Make (struct
  type t = Sketches.Quantiles.t

  let copy = Sketches.Quantiles.copy
end)

type t = Stripe.t

let create ?(k = 200) ?publish_every ~seed ~domains () =
  let root = Rng.Splitmix.create seed in
  let seeds = Array.init domains (fun _ -> Rng.Splitmix.next_int64 root) in
  Stripe.create ?publish_every ~domains (fun d ->
      Sketches.Quantiles.create ~k ~seed:seeds.(d) ())

let update t ~domain x = Stripe.update t ~domain (fun s -> Sketches.Quantiles.update s x)

let flush = Stripe.flush

let flush_all = Stripe.flush_all

(* A merged view of all published stripes. O(total retained) per query —
   queries are expected to be far rarer than updates. *)
let merged t =
  Array.fold_left
    (fun acc v ->
      match acc with None -> Some v | Some m -> Some (Sketches.Quantiles.merge m v))
    None (Stripe.views t)

let rank t x = match merged t with None -> 0 | Some m -> Sketches.Quantiles.rank m x

let quantile t phi =
  match merged t with
  | None -> raise Not_found
  | Some m -> Sketches.Quantiles.quantile m phi

let published t =
  Array.fold_left
    (fun acc v -> acc + Sketches.Quantiles.total v)
    0 (Stripe.views t)

let ingested t ~domain = Sketches.Quantiles.total (Stripe.local t ~domain)
