(* One flat unboxed plane per writer domain, published Stripes-style.

   A plane is a plain [int array] (contiguous, no per-cell boxes, no
   atomics) that exactly one domain writes; the owner counts updates
   privately and every [publish_every] updates — or on [flush] — publishes
   by an [Atomic.set] on its padded [total] cell. In the OCaml memory model
   that release/acquire pair makes all plain plane writes before the
   publish visible to any reader that reads [total] after it. Readers sum
   cells across planes; racy reads of a monotone plane can also observe
   *newer* (unpublished) increments, which only moves a query further into
   its interval — the envelope argument below. *)

type plane = {
  cells : int array; (* row-major d×w, single writer *)
  mutable pending : int; (* updates since last publish, owner-private *)
  total : int Atomic.t; (* published update count; release point *)
}

type t = {
  family : Hashing.Family.t;
  width : int;
  rows : int;
  publish_every : int;
  planes : plane array;
}

let create ?(publish_every = 64) ~family ~domains () =
  if domains <= 0 then invalid_arg "Flat_pcm.create: domains must be positive";
  if publish_every <= 0 then
    invalid_arg "Flat_pcm.create: publish_every must be positive";
  let d = Hashing.Family.rows family and w = Hashing.Family.width family in
  {
    family;
    width = w;
    rows = d;
    publish_every;
    planes =
      Array.init domains (fun _ ->
          (* The plane record holds the owner's per-update mutable word
             ([pending]); pad it so neighbouring domains' records never
             share a line. The cells arrays are separate large blocks and
             isolate themselves. *)
          Padding.copy
            { cells = Array.make (d * w) 0; pending = 0; total = Padding.atomic 0 });
  }

let create_for_error ?publish_every ~seed ~alpha ~delta ~domains () =
  if alpha <= 0.0 then invalid_arg "Flat_pcm.create_for_error: alpha must be positive";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Flat_pcm.create_for_error: delta must lie in (0,1)";
  let w = int_of_float (ceil (Float.exp 1.0 /. alpha)) in
  let d = max 1 (int_of_float (ceil (log (1.0 /. delta)))) in
  create ?publish_every ~family:(Hashing.Family.seeded ~seed ~rows:d ~width:w)
    ~domains ()

let family t = t.family
let rows t = t.rows
let width t = t.width
let domains t = Array.length t.planes

let plane t domain =
  if domain < 0 || domain >= Array.length t.planes then
    invalid_arg "Flat_pcm: no such domain";
  t.planes.(domain)

let publish pl =
  if pl.pending > 0 then begin
    (* Single writer: plain read + atomic set (the release) suffices. *)
    Atomic.set pl.total (Atomic.get pl.total + pl.pending);
    pl.pending <- 0
  end

let update t ~domain a =
  let pl = plane t domain in
  let cells = pl.cells in
  let p = Hashing.Family.probe t.family a in
  for i = 0 to t.rows - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    let idx = (i * t.width) + col in
    Array.unsafe_set cells idx (Array.unsafe_get cells idx + 1)
  done;
  pl.pending <- pl.pending + 1;
  if pl.pending >= t.publish_every then publish pl

let update_many t ~domain a ~count =
  if count < 0 then invalid_arg "Flat_pcm.update_many: count must be non-negative";
  if count > 0 then begin
    let pl = plane t domain in
    let cells = pl.cells in
    let p = Hashing.Family.probe t.family a in
    for i = 0 to t.rows - 1 do
      let col = Hashing.Family.probe_col t.family p ~row:i in
      let idx = (i * t.width) + col in
      Array.unsafe_set cells idx (Array.unsafe_get cells idx + count)
    done;
    pl.pending <- pl.pending + count;
    if pl.pending >= t.publish_every then publish pl
  end

let flush t ~domain = publish (plane t domain)

let flush_all t = Array.iter publish t.planes

let query t a =
  let p = Hashing.Family.probe t.family a in
  let planes = t.planes in
  let np = Array.length planes in
  (* Index loops, not Array.iter: a closure capturing the accumulator
     would box it and allocate per row, and this path is audited to
     allocate nothing. *)
  let best = ref max_int in
  for i = 0 to t.rows - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    let idx = (i * t.width) + col in
    let sum = ref 0 in
    (* Acquire each plane's publish point before its cells so everything
       published is guaranteed visible; anything fresher we happen to see
       is a later intermediate value, equally inside the envelope. *)
    for j = 0 to np - 1 do
      let pl = Array.unsafe_get planes j in
      ignore (Atomic.get pl.total);
      sum := !sum + Array.unsafe_get pl.cells idx
    done;
    if !sum < !best then best := !sum
  done;
  !best

let updates t =
  Array.fold_left (fun acc pl -> acc + Atomic.get pl.total) 0 t.planes

let buffered t ~domain = (plane t domain).pending

let snapshot_cells t =
  Array.init t.rows (fun i ->
      Array.init t.width (fun j ->
          Array.fold_left
            (fun acc pl -> acc + pl.cells.((i * t.width) + j))
            0 t.planes))
