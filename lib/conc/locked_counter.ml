type t = { lock : Mutex.t; mutable total : int }

let create () = { lock = Mutex.create (); total = 0 }

let update t v =
  if v < 0 then invalid_arg "Locked_counter.update: batch must be non-negative";
  Mutex.lock t.lock;
  t.total <- t.total + v;
  Mutex.unlock t.lock

let read t =
  Mutex.lock t.lock;
  let v = t.total in
  Mutex.unlock t.lock;
  v
