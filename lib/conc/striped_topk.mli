(** A concurrent top-k / heavy-hitters sketch from per-domain Space-Saving
    stripes.

    The paper's conclusion singles out priority-queue-like,
    "semi-quantitative" objects — return values that carry a quantity (the
    count) plus an identity (the element) — as the next frontier for IVL.
    This object is the quantitative end of that frontier: per-element count
    estimates are monotone, so the same stripe-and-merge recipe as
    {!Striped_quantiles} applies, while the top-k {e set} itself is the
    non-quantitative part the paper leaves open (we expose it, but the IVL
    guarantee is stated per element count, not per set).

    Each ingestion domain owns a private Space-Saving instance and
    periodically publishes an immutable copy; queries merge the published
    copies. Guarantees carried over from the sequential sketch: a merged
    count never under-estimates the published true count, over-estimates by
    at most Σ_stripes n_s/capacity, and every element above that threshold
    is present. *)

type t

val create :
  ?capacity:int -> ?publish_every:int -> seed:int64 -> domains:int -> unit -> t
(** Per-stripe capacity (default 256) and publication batch (default 64).
    The [seed] is reserved for future randomized variants; Space-Saving
    itself is deterministic. @raise Invalid_argument on non-positive
    parameters. *)

val update : t -> domain:int -> int -> unit
(** Count one occurrence on [domain]'s stripe (single writer per domain). *)

val flush : t -> domain:int -> unit
val flush_all : t -> unit

val query : t -> int -> int
(** Estimated count of an element over published data (0 if untracked). *)

val top : t -> ?k:int -> unit -> (int * int) list
(** Merged heavy-hitter list, descending by estimated count; at most [k]
    entries (default: the merge capacity). *)

val guaranteed_error : t -> int
(** Upper bound on over-estimation in the merged view: sum of the stripes'
    individual bounds. *)

val published : t -> int
(** Stream length visible to queries. *)
