module Make (S : sig
  type t

  val copy : t -> t
end) =
struct
  type stripe = {
    local : S.t;
    shared : S.t Atomic.t;
    mutable since_publish : int;
  }

  type t = { stripes : stripe array; publish_every : int }

  let create ?(publish_every = 64) ~domains mk =
    if domains <= 0 then invalid_arg "Stripes.create: domains must be positive";
    if publish_every <= 0 then
      invalid_arg "Stripes.create: publish_every must be positive";
    let stripes =
      Array.init domains (fun d ->
          let local = mk d in
          { local; shared = Atomic.make (S.copy local); since_publish = 0 })
    in
    { stripes; publish_every }

  let stripe t domain =
    if domain < 0 || domain >= Array.length t.stripes then
      invalid_arg "Stripes: no such domain";
    t.stripes.(domain)

  let publish s = Atomic.set s.shared (S.copy s.local)

  let update t ~domain f =
    let s = stripe t domain in
    f s.local;
    s.since_publish <- s.since_publish + 1;
    if s.since_publish >= t.publish_every then begin
      publish s;
      s.since_publish <- 0
    end

  let flush t ~domain =
    let s = stripe t domain in
    publish s;
    s.since_publish <- 0

  let flush_all t = Array.iteri (fun d _ -> flush t ~domain:d) t.stripes

  let views t = Array.map (fun s -> Atomic.get s.shared) t.stripes

  let local t ~domain = (stripe t domain).local

  let domains t = Array.length t.stripes
end
