(** PCM: the paper's straightforward parallelization of CountMin (Section 5).

    Each counter is an atomic integer; [update a] atomically increments one
    counter per row (line 5 of Algorithm 1), [query a] reads one counter per
    row without any snapshot and returns the minimum (line 9). Lemma 7 proves
    this is IVL; Example 9 shows it is not linearizable; Corollary 8 (via
    Theorem 6) shows it inherits the sequential CountMin error bound relative
    to the ideal frequencies at the query's interval endpoints.

    Updates and queries may be called from any number of domains
    concurrently. Wait-free: every operation finishes in d unconditional
    atomic steps.

    This module is the {e reference} layout — one boxed atomic per cell,
    exactly Algorithm 1's per-counter registers. It is kept deliberately
    simple so the checkers validate against it; {!Flat_pcm} is the
    cache-aware layout the ingestion paths should prefer (see
    docs/PERFORMANCE.md for the measured gap). Two hot-path costs {e are}
    fixed even here: the update total is striped across padded per-domain
    slots ({!Striped_total} — reading it is an intermediate-value read, IVL
    by construction) instead of one global contended atomic, and each
    operation probes the hash family once ({!Hashing.Family.probe}), so a
    double-hashed family costs 2 base hashes per update instead of d. *)

type t

val create : family:Hashing.Family.t -> t

val create_for_error : seed:int64 -> alpha:float -> delta:float -> t
(** Same sizing rule as {!Sketches.Countmin.create_for_error}. *)

val family : t -> Hashing.Family.t
val rows : t -> int
val width : t -> int

val update : t -> int -> unit

val update_many : t -> int -> count:int -> unit
(** [update_many t a ~count] applies [count] updates of element [a] with one
    atomic add per row — the aggregated write that delegation-style
    batching ({!Buffered_pcm}) relies on. Equivalent to [count] calls of
    {!update} for every query. @raise Invalid_argument if [count < 0]. *)

val query : t -> int -> int

val updates : t -> int
(** Number of updates that have {e started}; used only for reporting, not by
    the algorithm. Striped across padded per-domain slots and summed here,
    so concurrent writers never serialize on one cache line; like Algorithm
    2's read, the sum is an intermediate value within the IVL envelope
    [[total at invocation, total at response]] and successive reads from one
    domain are monotone. *)

val merge_into : t -> Sketches.Countmin.t -> unit
(** [merge_into t delta] absorbs a sequential CountMin delta with one atomic
    add per non-zero cell — the shard-merge write of a batched ingestion
    pipeline. Equivalent to replaying the delta's stream through {!update}
    for every query, but with d·w unconditional atomic steps instead of
    d·|stream|; concurrent queries may observe any prefix of the adds (IVL,
    by the same per-row interval argument as Lemma 7).
    @raise Invalid_argument unless the families are compatible. *)

val snapshot_cells : t -> int array array
(** Racy copy of the matrix (reporting/tests). *)
