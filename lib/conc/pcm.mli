(** PCM: the paper's straightforward parallelization of CountMin (Section 5).

    Each counter is an atomic integer; [update a] atomically increments one
    counter per row (line 5 of Algorithm 1), [query a] reads one counter per
    row without any snapshot and returns the minimum (line 9). Lemma 7 proves
    this is IVL; Example 9 shows it is not linearizable; Corollary 8 (via
    Theorem 6) shows it inherits the sequential CountMin error bound relative
    to the ideal frequencies at the query's interval endpoints.

    Updates and queries may be called from any number of domains
    concurrently. Wait-free: every operation finishes in d unconditional
    atomic steps. *)

type t

val create : family:Hashing.Family.t -> t

val create_for_error : seed:int64 -> alpha:float -> delta:float -> t
(** Same sizing rule as {!Sketches.Countmin.create_for_error}. *)

val family : t -> Hashing.Family.t
val rows : t -> int
val width : t -> int

val update : t -> int -> unit

val update_many : t -> int -> count:int -> unit
(** [update_many t a ~count] applies [count] updates of element [a] with one
    atomic add per row — the aggregated write that delegation-style
    batching ({!Buffered_pcm}) relies on. Equivalent to [count] calls of
    {!update} for every query. @raise Invalid_argument if [count < 0]. *)

val query : t -> int -> int

val updates : t -> int
(** Number of updates that have {e started} (atomic counter); used only for
    reporting, not by the algorithm. *)

val merge_into : t -> Sketches.Countmin.t -> unit
(** [merge_into t delta] absorbs a sequential CountMin delta with one atomic
    add per non-zero cell — the shard-merge write of a batched ingestion
    pipeline. Equivalent to replaying the delta's stream through {!update}
    for every query, but with d·w unconditional atomic steps instead of
    d·|stream|; concurrent queries may observe any prefix of the adds (IVL,
    by the same per-row interval argument as Lemma 7).
    @raise Invalid_argument unless the families are compatible. *)

val snapshot_cells : t -> int array array
(** Racy copy of the matrix (reporting/tests). *)
