type t = { slots : int Atomic.t array }

let create ~slots =
  if slots <= 0 then invalid_arg "Striped_total.create: slots must be positive";
  { slots = Padding.atomic_array slots 0 }

let slots t = Array.length t.slots

let slot_of t =
  (* Domain ids are small consecutive ints; mod folds them onto the stripe
     set. Two domains can land on one slot — that slot's FAA is then
     contended, which is why the add stays a real atomic RMW rather than the
     single-writer read-add-write Ivl_counter uses. *)
  (Domain.self () :> int) mod Array.length t.slots

let add t v = ignore (Atomic.fetch_and_add t.slots.(slot_of t) v)

let read t = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 t.slots

let read_slot t i = Atomic.get t.slots.(i)
