type t = { cell : int Atomic.t }

(* The cell is padded to its own cache line: the point of this baseline is
   to measure the cost of *necessary* contention (every update RMWs the same
   location), not the accidental false sharing an unpadded one-word box
   invites from whatever the allocator places next to it. *)
let create () = { cell = Padding.atomic 0 }

let update t v =
  if v < 0 then invalid_arg "Faa_counter.update: batch must be non-negative";
  ignore (Atomic.fetch_and_add t.cell v)

let read t = Atomic.get t.cell
