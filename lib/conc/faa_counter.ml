type t = { cell : int Atomic.t }

let create () = { cell = Atomic.make 0 }

let update t v =
  if v < 0 then invalid_arg "Faa_counter.update: batch must be non-negative";
  ignore (Atomic.fetch_and_add t.cell v)

let read t = Atomic.get t.cell
