(** A striped monotone total: the contention fix for a single global
    fetch-and-add counter.

    Writers add into one of [slots] padded atomic cells, picked by the
    calling domain's id, so concurrent writers touch distinct cache lines;
    a read sums the slots. The sum is an {e intermediate-value} read — the
    scan can interleave with concurrent adds — but each slot is monotone,
    so exactly as in the paper's Algorithm 2 (Lemma 10) every read lies in
    [[v_inv, v_rsp]]: the total at the read's invocation and at its
    response. IVL by construction, at the price of an O(slots) read.

    Unlike {!Ivl_counter} there is no single-writer contract: any domain
    may add at any time (slot collisions just contend on that one slot's
    FAA), which is what lets {!Pcm.updates} keep its any-domain API after
    striping. *)

type t

val create : slots:int -> t
(** [slots] is the stripe count; match it to the expected writer
    parallelism (a few more than [Domain.recommended_domain_count ()] is
    typical). @raise Invalid_argument if [slots <= 0]. *)

val slots : t -> int

val add : t -> int -> unit
(** Add [v] to the calling domain's slot. Wait-free: one uncontended
    fetch-and-add on a padded cell in the common case. *)

val read : t -> int
(** Sum of all slots — any intermediate value per IVL; successive reads by
    one domain are monotone (each slot is scanned in the same order and
    never decreases). *)

val read_slot : t -> int -> int
(** One slot's value (tests, reporting). *)
