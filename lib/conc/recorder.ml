type ('u, 'q, 'v) logged = {
  ts : int;
  dir : Hist.History.dir;
  op : ('u, 'q, 'v) Hist.Op.t;
}

type ('u, 'q, 'v) t = {
  ticket : int Atomic.t;
  next_id : int Atomic.t;
  buffers : ('u, 'q, 'v) logged list ref array; (* one per domain, private *)
}

let create ~domains =
  if domains <= 0 then invalid_arg "Recorder.create: domains must be positive";
  {
    ticket = Atomic.make 0;
    next_id = Atomic.make 0;
    buffers = Array.init domains (fun _ -> ref []);
  }

let log t ~domain entry = t.buffers.(domain) := entry :: !(t.buffers.(domain))

let record_update t ~domain ~obj u run =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let op = { Hist.Op.id; proc = domain; obj; kind = Hist.Op.Update u; ret = None } in
  log t ~domain { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Inv; op };
  run ();
  log t ~domain { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Rsp; op }

let record_query t ~domain ~obj q run =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let op = { Hist.Op.id; proc = domain; obj; kind = Hist.Op.Query q; ret = None } in
  log t ~domain { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Inv; op };
  let v = run () in
  let op = Hist.Op.with_return op v in
  log t ~domain { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Rsp; op };
  v

let history t =
  let all =
    Array.to_list t.buffers |> List.concat_map (fun buf -> List.rev !buf)
  in
  let sorted = List.sort (fun a b -> Int.compare a.ts b.ts) all in
  Hist.History.of_events
    (List.map (fun { dir; op; _ } -> { Hist.History.dir; op }) sorted)
