type ('u, 'q, 'v) logged = {
  ts : int;
  dir : Hist.History.dir;
  op : ('u, 'q, 'v) Hist.Op.t;
}

type ('u, 'q, 'v) t = {
  ticket : int Atomic.t;
  next_id : int Atomic.t;
  buffers : ('u, 'q, 'v) logged list ref array; (* one per domain, private *)
  active : bool array; (* domain is inside a record_* call right now *)
}

let create ~domains =
  if domains <= 0 then invalid_arg "Recorder.create: domains must be positive";
  {
    ticket = Atomic.make 0;
    next_id = Atomic.make 0;
    buffers = Array.init domains (fun _ -> ref []);
    active = Array.make domains false;
  }

let log t ~domain entry = t.buffers.(domain) := entry :: !(t.buffers.(domain))

(* The [active] flag brackets the whole record call with plain stores (each
   slot is single-writer, like the buffer it guards). It is cleared even
   when [run] raises — a chaos kill mid-operation leaves a pending op in
   the buffer, which is legitimate history; the hazard {!history} guards
   against is a domain still *writing*, not an op left incomplete. The
   check is best-effort (plain reads race by nature), but it turns the
   common misuse — merging buffers before joining the workers — into a
   crash instead of a corrupted history. *)
let record_update t ~domain ~obj u run =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let op = { Hist.Op.id; proc = domain; obj; kind = Hist.Op.Update u; ret = None } in
  t.active.(domain) <- true;
  Fun.protect
    ~finally:(fun () -> t.active.(domain) <- false)
    (fun () ->
      log t ~domain
        { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Inv; op };
      run ();
      log t ~domain
        { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Rsp; op })

let record_query t ~domain ~obj q run =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let op = { Hist.Op.id; proc = domain; obj; kind = Hist.Op.Query q; ret = None } in
  t.active.(domain) <- true;
  Fun.protect
    ~finally:(fun () -> t.active.(domain) <- false)
    (fun () ->
      log t ~domain
        { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Inv; op };
      let v = run () in
      let op = Hist.Op.with_return op v in
      log t ~domain
        { ts = Atomic.fetch_and_add t.ticket 1; dir = Hist.History.Rsp; op };
      v)

let history t =
  Array.iteri
    (fun d active ->
      if active then
        invalid_arg
          (Printf.sprintf
             "Recorder.history: domain %d is still recording — join every \
              recording domain before merging buffers"
             d))
    t.active;
  let all =
    Array.to_list t.buffers |> List.concat_map (fun buf -> List.rev !buf)
  in
  let sorted = List.sort (fun a b -> Int.compare a.ts b.ts) all in
  Hist.History.of_events
    (List.map (fun { dir; op; _ } -> { Hist.History.dir; op }) sorted)
