type t = { slots : int Atomic.t array }

let create ~procs =
  if procs <= 0 then invalid_arg "Ivl_counter.create: procs must be positive";
  (* One padded slot per writer: the whole point of Algorithm 2 is that
     updates touch writer-private locations, which unpadded adjacent boxes
     would quietly undo through false sharing. *)
  { slots = Padding.atomic_array procs 0 }

let procs t = Array.length t.slots

let update t ~proc v =
  if v < 0 then invalid_arg "Ivl_counter.update: batch must be non-negative";
  if proc < 0 || proc >= Array.length t.slots then
    invalid_arg "Ivl_counter.update: no such process slot";
  (* Single writer per slot: a plain read-add-write pair suffices; no CAS. *)
  let slot = t.slots.(proc) in
  Atomic.set slot (Atomic.get slot + v)

let read t = Array.fold_left (fun acc slot -> acc + Atomic.get slot) 0 t.slots

let read_slot t i = Atomic.get t.slots.(i)
