module Stripe = Stripes.Make (struct
  type t = Sketches.Kmv.t

  let copy = Sketches.Kmv.copy
end)

type t = Stripe.t

let create ?(k = 256) ?publish_every ~seed ~domains () =
  (* All stripes share one hash seed so value sets merge meaningfully. *)
  Stripe.create ?publish_every ~domains (fun _ -> Sketches.Kmv.create ~k ~seed ())

let update t ~domain x = Stripe.update t ~domain (fun s -> Sketches.Kmv.update s x)

let flush = Stripe.flush

let flush_all = Stripe.flush_all

let merged t =
  Array.fold_left
    (fun acc v -> match acc with None -> Some v | Some m -> Some (Sketches.Kmv.merge m v))
    None (Stripe.views t)

let estimate t = match merged t with None -> 0.0 | Some m -> Sketches.Kmv.estimate m

let retained t = match merged t with None -> 0 | Some m -> Sketches.Kmv.retained m
