exception Killed of { domain : int; point : int }

type plan = {
  seed : int64;
  yield_prob : float;
  stall_prob : float;
  stall_spins : int;
  kills : (int * int) list;
}

let plan ?(yield_prob = 0.2) ?(stall_prob = 0.02) ?(stall_spins = 2000)
    ?(kills = []) ~seed () =
  let check_prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Chaos.plan: %s must be in [0,1]" name)
  in
  check_prob "yield_prob" yield_prob;
  check_prob "stall_prob" stall_prob;
  if stall_spins < 0 then invalid_arg "Chaos.plan: stall_spins must be non-negative";
  List.iter
    (fun (_, point) ->
      if point < 1 then invalid_arg "Chaos.plan: kill points are 1-based")
    kills;
  { seed; yield_prob; stall_prob; stall_spins; kills }

let random_kills ~seed ~domains ~victims ~max_point =
  if victims < 0 || victims > domains then
    invalid_arg "Chaos.random_kills: victims must be in [0, domains]";
  if max_point < 1 then invalid_arg "Chaos.random_kills: max_point must be >= 1";
  let g = Rng.Splitmix.create seed in
  let pool = ref (List.init domains Fun.id) in
  List.init victims (fun _ ->
      let n = List.length !pool in
      let i = Rng.Splitmix.next_int g n in
      let d = List.nth !pool i in
      pool := List.filter (fun x -> x <> d) !pool;
      (d, 1 + Rng.Splitmix.next_int g max_point))

type event = Injected_yield | Injected_stall | Injected_kill

type domain_state = {
  rng : Rng.Splitmix.t;
  mutable points : int;
  kill_at : int option;  (* first kill point for this domain, if a victim *)
  mutable dead : bool;
}

type t = {
  cfg : plan;
  per_domain : domain_state array;
  on_event : (domain:int -> point:int -> event -> unit) option;
}

let instantiate ?on_event cfg ~domains =
  if domains <= 0 then invalid_arg "Chaos.instantiate: domains must be positive";
  let kill_at d =
    List.filter_map (fun (v, p) -> if v = d then Some p else None) cfg.kills
    |> function [] -> None | ps -> Some (List.fold_left min max_int ps)
  in
  {
    cfg;
    per_domain =
      Array.init domains (fun d ->
          {
            rng = Rng.Splitmix.create (Int64.add cfg.seed (Int64.of_int (d * 7919)));
            points = 0;
            kill_at = kill_at d;
            dead = false;
          });
    on_event;
  }

let point t ~domain =
  let st = t.per_domain.(domain) in
  let notify ev =
    match t.on_event with
    | Some f -> f ~domain ~point:st.points ev
    | None -> ()
  in
  if st.dead then raise (Killed { domain; point = st.points });
  st.points <- st.points + 1;
  (match st.kill_at with
  | Some k when st.points >= k ->
      st.dead <- true;
      notify Injected_kill;
      raise (Killed { domain; point = st.points })
  | _ -> ());
  let u = Rng.Splitmix.next_float st.rng in
  if u < t.cfg.stall_prob then begin
    notify Injected_stall;
    for _ = 1 to t.cfg.stall_spins do
      Domain.cpu_relax ()
    done
  end
  else if u < t.cfg.stall_prob +. t.cfg.yield_prob then begin
    notify Injected_yield;
    for _ = 1 to 1 + Rng.Splitmix.next_int st.rng 8 do
      Domain.cpu_relax ()
    done
  end

(* The first call on a victim still raises (that's the injected crash); once
   the domain is marked dead, later incarnations pass through untouched. *)
let point_once t ~domain =
  let st = t.per_domain.(domain) in
  if not st.dead then point t ~domain

let points_passed t ~domain = t.per_domain.(domain).points

let killed t =
  let acc = ref [] in
  Array.iteri (fun d st -> if st.dead then acc := d :: !acc) t.per_domain;
  List.rev !acc
