(** Linearizable batched counter from hardware fetch-and-add.

    A single atomic cell updated with [fetch_and_add]. This is linearizable
    and O(1) — but it lives {e outside} the SWMR-register model of Theorem
    14: the Ω(n) lower bound applies to implementations from single-writer
    registers, and FAA is a stronger primitive.

    The cell sits alone on a cache line ({!Padding}), so what the E7 bench
    measures against {!Ivl_counter} is the {e intrinsic} contrast the paper
    draws, with false sharing taken off the table for both sides:

    - here, one padded line that every updater's RMW must own in turn —
      O(1) steps but serialized by cache-coherence arbitration, so
      throughput flattens as writers are added;
    - {!Ivl_counter}, one line {e per writer} — updates stay uncontended
      and scale, and the paid price is the O(n) intermediate-value read and
      the weaker (IVL, not linearizable) read semantics.

    Included so the experiments can show all three corners: IVL-from-SWMR
    (cheap, weaker criterion), linearizable-from-SWMR (provably expensive),
    linearizable-from-FAA (cheap but needs stronger hardware and serializes
    all updaters on one line). *)

type t

val create : unit -> t
val update : t -> int -> unit
val read : t -> int
