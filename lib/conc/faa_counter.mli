(** Linearizable batched counter from hardware fetch-and-add.

    A single atomic cell updated with [fetch_and_add]. This is linearizable
    and O(1) — but it lives {e outside} the SWMR-register model of Theorem
    14: the Ω(n) lower bound applies to implementations from single-writer
    registers, and FAA is a stronger primitive. Included so the experiments
    can show all three corners: IVL-from-SWMR (cheap, weaker criterion),
    linearizable-from-SWMR (provably expensive), linearizable-from-FAA
    (cheap but needs stronger hardware, and all updaters contend on one
    cache line). *)

type t

val create : unit -> t
val update : t -> int -> unit
val read : t -> int
