(* Cache-line padding for contended heap blocks.

   OCaml has no [@@align] and (before 5.2's make_contended) no runtime
   support for padded atomics, but block size is something we *can* control:
   copy the value into a fresh block whose size is rounded up to two cache
   lines' worth of words. The GC preserves block sizes when it moves
   objects, so the padding — unlike allocation-order tricks — survives
   compaction. Two lines, not one, so that no matter how the allocator
   phases blocks against line boundaries, the mutable word never shares a
   line with a neighbouring block's mutable word. This is the same trick
   multicore libraries (kcas, saturn via multicore-magic) rely on. *)

(* 64-byte lines, 8-byte words. Generous for the common 64B case and still
   a win on 128B-line hosts (Apple silicon): 2×8 words = one 128B line. *)
let cache_line_words = 8

let padded_words = (2 * cache_line_words) - 1 (* -1 for the header word *)

let copy (v : 'a) : 'a =
  let r = Obj.repr v in
  if Obj.is_int r || Obj.tag r >= Obj.no_scan_tag || Obj.size r >= padded_words
  then v
  else begin
    let n = Obj.new_block (Obj.tag r) padded_words in
    for i = 0 to Obj.size r - 1 do
      Obj.set_field n i (Obj.field r i)
    done;
    (* Fill the padding with immediates so the GC never scans garbage. *)
    for i = Obj.size r to padded_words - 1 do
      Obj.set_field n i (Obj.repr 0)
    done;
    Obj.obj n
  end

let atomic v = copy (Atomic.make v)

let atomic_array n v = Array.init n (fun _ -> atomic v)
