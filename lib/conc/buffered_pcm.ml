type buffer = {
  counts : (int, int) Hashtbl.t; (* element -> pending count, domain-private *)
  mutable pending : int;
}

type t = { pcm : Pcm.t; buffers : buffer array; flush_every : int }

let create ?(flush_every = 256) ~family ~domains () =
  if domains <= 0 then invalid_arg "Buffered_pcm.create: domains must be positive";
  if flush_every <= 0 then invalid_arg "Buffered_pcm.create: flush_every must be positive";
  {
    pcm = Pcm.create ~family;
    buffers = Array.init domains (fun _ -> { counts = Hashtbl.create 64; pending = 0 });
    flush_every;
  }

let buffer t domain =
  if domain < 0 || domain >= Array.length t.buffers then
    invalid_arg "Buffered_pcm.update: no such domain";
  t.buffers.(domain)

let flush_buffer t b =
  (* One aggregated atomic add per (distinct element, row) in the batch —
     this is where delegation wins on skewed streams. *)
  Hashtbl.iter (fun a count -> Pcm.update_many t.pcm a ~count) b.counts;
  Hashtbl.reset b.counts;
  b.pending <- 0

let update t ~domain a =
  let b = buffer t domain in
  (match Hashtbl.find_opt b.counts a with
  | Some c -> Hashtbl.replace b.counts a (c + 1)
  | None -> Hashtbl.replace b.counts a 1);
  b.pending <- b.pending + 1;
  if b.pending >= t.flush_every then flush_buffer t b

let flush t ~domain = flush_buffer t (buffer t domain)

let flush_all t = Array.iter (flush_buffer t) t.buffers

let query t a = Pcm.query t.pcm a

let flushed_updates t = Pcm.updates t.pcm

let buffered t ~domain = (buffer t domain).pending
