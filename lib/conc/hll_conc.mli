(** A concurrent HyperLogLog from atomic max registers.

    Cardinality estimation is the third sketch family the paper's
    introduction motivates. HLL's register file is a vector of monotone
    max-registers, so the straightforward parallelization — update with a
    compare-and-set raise loop, read registers plainly — has the same IVL
    structure as PCM: a concurrent estimate is bounded between the sketch's
    value at the query's invocation and at its response (registers only
    grow), and Theorem 6 transfers the sequential accuracy analysis.

    Updates are lock-free: a CAS fails only when another domain raised the
    same register, in which case the raise is re-examined against the new
    value (and usually becomes unnecessary). *)

type t

val create : ?p:int -> seed:int64 -> unit -> t
(** [p] ∈ [4, 16] selects 2^p registers (default 12), as in
    {!Sketches.Hyperloglog}. All domains share one instance. *)

val update : t -> int -> unit
(** Observe an element, from any domain. *)

val estimate : t -> float
(** Current cardinality estimate (may be read concurrently with updates). *)

val merge_from : t -> Sketches.Hyperloglog.t -> unit
(** Raise this sketch's registers by a sequential sketch's (same [p] and
    seed required) — lets domains pre-aggregate locally and publish.
    @raise Invalid_argument on parameter mismatch. *)

val to_sequential : t -> Sketches.Hyperloglog.t
(** A sequential snapshot of the current registers (racy but monotone-safe:
    every register value read did occur). *)

val p : t -> int
val seed : t -> int64
