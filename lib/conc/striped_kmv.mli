(** Concurrent distinct counting from per-domain KMV stripes.

    The third instance of the stripe-and-publish pattern ({!Stripes}): each
    domain owns a private {!Sketches.Kmv} sketch, publishes on a batch
    boundary, and queries merge the published copies (KMV union = merge the
    k-minimum sets). The k-th minimum only decreases as elements arrive, so
    estimates are monotone and the concurrent sketch keeps the sequential
    accuracy — the same argument as the concurrent HyperLogLog, with KMV's
    exact-below-k behaviour. *)

type t

val create : ?k:int -> ?publish_every:int -> seed:int64 -> domains:int -> unit -> t
(** All stripes share hash coins (same [seed]) so their value sets are
    mergeable. *)

val update : t -> domain:int -> int -> unit
(** Observe an element on [domain]'s stripe (single writer per domain). *)

val flush : t -> domain:int -> unit
val flush_all : t -> unit

val estimate : t -> float
(** Estimated distinct count over all published data. *)

val retained : t -> int
(** Hash values held in the merged view (≤ k). *)
