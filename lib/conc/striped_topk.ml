module Stripe = Stripes.Make (struct
  type t = Sketches.Space_saving.t

  let copy = Sketches.Space_saving.copy
end)

type t = { stripes : Stripe.t; capacity : int }

let create ?(capacity = 256) ?publish_every ~seed ~domains () =
  ignore seed;
  if capacity <= 0 then invalid_arg "Striped_topk.create: capacity must be positive";
  {
    stripes =
      Stripe.create ?publish_every ~domains (fun _ ->
          Sketches.Space_saving.create ~capacity);
    capacity;
  }

let update t ~domain a =
  Stripe.update t.stripes ~domain (fun s -> Sketches.Space_saving.update s a)

let flush t ~domain = Stripe.flush t.stripes ~domain

let flush_all t = Stripe.flush_all t.stripes

let merged t =
  Array.fold_left
    (fun acc v ->
      match acc with
      | None -> Some v
      | Some m -> Some (Sketches.Space_saving.merge ~capacity:t.capacity m v))
    None (Stripe.views t.stripes)

let query t a =
  match merged t with None -> 0 | Some m -> Sketches.Space_saving.query m a

let top t ?k () =
  match merged t with
  | None -> []
  | Some m -> (
      let all = Sketches.Space_saving.top m in
      match k with
      | None -> all
      | Some k -> List.filteri (fun i _ -> i < k) all)

let guaranteed_error t =
  Array.fold_left
    (fun acc v -> acc + Sketches.Space_saving.guaranteed_error v)
    0
    (Stripe.views t.stripes)

let published t =
  Array.fold_left
    (fun acc v -> acc + Sketches.Space_saving.total v)
    0
    (Stripe.views t.stripes)
