(** The stripe-and-publish scaffold shared by the merge-based concurrent
    sketches ({!Striped_quantiles}, {!Striped_topk}, {!Striped_kmv}).

    Pattern: each ingestion domain owns a private sketch nobody else
    touches (single-writer, like Algorithm 2's registers); every
    [publish_every] updates — and on flush — the domain atomically publishes
    an immutable copy. Queries read the published copies and merge them.
    For monotone sketches this yields the IVL-style envelope with staleness
    bounded by [domains × (publish_every − 1)] unpublished updates. *)

module Make (S : sig
  type t

  val copy : t -> t
  (** Deep copy; the published snapshot must be immune to later updates. *)
end) : sig
  type t

  val create : ?publish_every:int -> domains:int -> (int -> S.t) -> t
  (** [create ~domains mk] builds one private sketch per domain with
      [mk domain]; [publish_every] defaults to 64.
      @raise Invalid_argument on non-positive arguments. *)

  val update : t -> domain:int -> (S.t -> unit) -> unit
  (** Apply one update to [domain]'s private sketch (single writer per
      domain — the caller's contract) and publish at the batch boundary.
      @raise Invalid_argument on an unknown domain. *)

  val flush : t -> domain:int -> unit
  val flush_all : t -> unit

  val views : t -> S.t array
  (** The currently published snapshots, one per domain. Treat as
      read-only. *)

  val local : t -> domain:int -> S.t
  (** The private sketch (owner-side accounting only). *)

  val domains : t -> int
end
