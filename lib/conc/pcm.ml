type t = {
  family : Hashing.Family.t;
  width : int;
  rows : int; (* hoisted: never re-derived by division on the hot paths *)
  cells : int Atomic.t array; (* row-major d×w; boxed — the reference layout *)
  n : Striped_total.t;
}

(* Stripe count for the update total: enough slots that the domains of a
   saturated host rarely collide, cheap enough that reads stay trivial. *)
let n_slots () = max 4 (Domain.recommended_domain_count () * 2)

let create ~family =
  let d = Hashing.Family.rows family and w = Hashing.Family.width family in
  {
    family;
    width = w;
    rows = d;
    cells = Array.init (d * w) (fun _ -> Atomic.make 0);
    n = Striped_total.create ~slots:(n_slots ());
  }

let create_for_error ~seed ~alpha ~delta =
  if alpha <= 0.0 then invalid_arg "Pcm.create_for_error: alpha must be positive";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Pcm.create_for_error: delta must lie in (0,1)";
  let w = int_of_float (ceil (Float.exp 1.0 /. alpha)) in
  let d = max 1 (int_of_float (ceil (log (1.0 /. delta)))) in
  create ~family:(Hashing.Family.seeded ~seed ~rows:d ~width:w)

let family t = t.family

let rows t = t.rows

let width t = t.width

let update t a =
  let p = Hashing.Family.probe t.family a in
  for i = 0 to t.rows - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    ignore (Atomic.fetch_and_add t.cells.((i * t.width) + col) 1)
  done;
  Striped_total.add t.n 1

let update_many t a ~count =
  if count < 0 then invalid_arg "Pcm.update_many: count must be non-negative";
  if count > 0 then begin
    let p = Hashing.Family.probe t.family a in
    for i = 0 to t.rows - 1 do
      let col = Hashing.Family.probe_col t.family p ~row:i in
      ignore (Atomic.fetch_and_add t.cells.((i * t.width) + col) count)
    done;
    Striped_total.add t.n count
  end

let query t a =
  let p = Hashing.Family.probe t.family a in
  let best = ref max_int in
  for i = 0 to t.rows - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    let c = Atomic.get t.cells.((i * t.width) + col) in
    if c < !best then best := c
  done;
  !best

let updates t = Striped_total.read t.n

let merge_into t delta =
  if not (Hashing.Family.compatible t.family (Sketches.Countmin.family delta)) then
    invalid_arg "Pcm.merge_into: delta must share a compatible hash family";
  for i = 0 to t.rows - 1 do
    for j = 0 to t.width - 1 do
      let c = Sketches.Countmin.cell delta ~row:i ~col:j in
      if c <> 0 then ignore (Atomic.fetch_and_add t.cells.((i * t.width) + j) c)
    done
  done;
  Striped_total.add t.n (Sketches.Countmin.updates delta)

let snapshot_cells t =
  Array.init t.rows (fun i ->
      Array.init t.width (fun j -> Atomic.get t.cells.((i * t.width) + j)))
