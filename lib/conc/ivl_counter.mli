(** The IVL batched counter, Algorithm 2 of the paper.

    One single-writer register per process: [update ~proc v] adds [v] to
    process [proc]'s register (one write — O(1) steps); [read] sums all
    registers (n reads — O(n) steps). Not linearizable (a read can observe a
    later update and miss an earlier one, Figure 2) but IVL (Lemma 10), so a
    read always returns a value between the counter's value at its invocation
    and its value at its response.

    Registers are [Atomic.t] so cross-domain publication is well-defined in
    the OCaml memory model; each register still has a single writer, matching
    the SWMR model of Section 6. Bounded wait-free with uniform step counts
    (Theorem 11). Each register is padded to its own cache line
    ({!Padding}), so writers never share a line even accidentally — the
    intended contrast with {!Faa_counter}'s single contended line. *)

type t

val create : procs:int -> t
(** [procs] is the number of updater slots n.
    @raise Invalid_argument if [procs <= 0]. *)

val procs : t -> int

val update : t -> proc:int -> int -> unit
(** [update t ~proc v] adds batch [v ≥ 0] to slot [proc]. Only one domain
    may use a given [proc] (single-writer); this is the caller's contract.
    @raise Invalid_argument on a negative batch or out-of-range [proc]. *)

val read : t -> int
(** Sum of all registers; may be any intermediate value per IVL. *)

val read_slot : t -> int -> int
(** One register's value (tests). *)
