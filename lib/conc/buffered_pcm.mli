(** A delegation-style CountMin: per-domain buffering in front of PCM.

    Inspired by the delegation sketch of Stylianopoulos et al. (EuroSys
    2020), which the paper discusses in Section 3.4: writers accumulate
    counts in a private table and flush them into the shared atomic matrix
    in batches, trading freshness for fewer shared-memory operations —
    valuable on skewed streams where one element repeats many times per
    batch.

    Because the underlying matrix is PCM's (monotone, atomically
    incremented), queries retain the IVL envelope with a staleness of at
    most [domains × (flush_every − 1)] buffered updates: a query's return is
    bounded between the CM value over everything flushed before it started
    and the CM value over everything ingested by its end. The throughput
    ablation (bench section E6) quantifies what the batching buys. *)

type t

val create : ?flush_every:int -> family:Hashing.Family.t -> domains:int -> unit -> t
(** [flush_every] (default 256) is the per-domain buffered-update budget
    before an automatic flush.
    @raise Invalid_argument if [domains <= 0] or [flush_every <= 0]. *)

val update : t -> domain:int -> int -> unit
(** Buffer one element on [domain]; flushes automatically at the budget.
    @raise Invalid_argument on an unknown domain. *)

val flush : t -> domain:int -> unit
(** Push [domain]'s buffered counts into the shared matrix now. *)

val flush_all : t -> unit
(** Flush every domain — only safe once writers have stopped. *)

val query : t -> int -> int
(** CM estimate over all flushed updates. *)

val flushed_updates : t -> int
(** Updates visible to queries. *)

val buffered : t -> domain:int -> int
(** Updates currently sitting in [domain]'s buffer. *)
