(** Concurrent history recorder.

    Wraps real multicore operations so that the end-to-end checkers can
    validate actual executions: each invocation and response draws a ticket
    from one global atomic counter, fixing a total order on events that
    respects real time (an event that happens-before another in the program
    gets a smaller ticket). Domains log into private buffers — the only
    shared write on the hot path is the ticket [fetch_and_add] — and
    {!history} merges the buffers by ticket into a {!Hist.History.t}.

    Recording perturbs timing, so recorded runs are used for correctness
    checking (experiment E4-style validations on real hardware), never for
    the throughput numbers. *)

type ('u, 'q, 'v) t

val create : domains:int -> ('u, 'q, 'v) t
(** One private buffer per recording domain.
    @raise Invalid_argument if [domains <= 0]. *)

val record_update : ('u, 'q, 'v) t -> domain:int -> obj:int -> 'u -> (unit -> unit) -> unit
(** [record_update t ~domain ~obj u run] logs inv, calls [run ()], logs rsp.
    The [domain] doubles as the history's process id. *)

val record_query : ('u, 'q, 'v) t -> domain:int -> obj:int -> 'q -> (unit -> 'v) -> 'v
(** Same for a query; the value returned by [run] is logged on the response
    and passed through. *)

val history : ('u, 'q, 'v) t -> ('u, 'q, 'v) Hist.History.t
(** Merge all buffers into a single history ordered by ticket. Call only
    after every recording domain has quiesced (joined): the buffers are
    written with plain stores, so merging while a domain still records is a
    data race, and the resulting "history" would be garbage rather than
    merely stale.

    A best-effort guard enforces this: each [record_*] call flags its
    domain active for its duration (cleared even if the recorded body
    raises — a chaos kill leaves a legitimate pending op, not an active
    recorder), and [history] raises [Invalid_argument] if any domain is
    flagged. The flags are plain single-writer stores, so the guard costs
    the hot path nothing and can miss a race the OS hides — it converts
    the common misuse into a crash, it is not a memory fence. *)
