type t = { base : float; exponent : int Atomic.t; gens : Rng.Splitmix.t array }

let create ?(base = 2.0) ~seed ~domains () =
  if base <= 1.0 then invalid_arg "Morris_conc.create: base must exceed 1";
  if domains <= 0 then invalid_arg "Morris_conc.create: domains must be positive";
  let root = Rng.Splitmix.create seed in
  {
    base;
    exponent = Atomic.make 0;
    gens = Array.init domains (fun _ -> Rng.Splitmix.split root);
  }

let update t ~domain =
  if domain < 0 || domain >= Array.length t.gens then
    invalid_arg "Morris_conc.update: no such domain";
  let g = t.gens.(domain) in
  let x = Atomic.get t.exponent in
  let p = t.base ** float_of_int (-x) in
  if Rng.Splitmix.next_float g < p then
    (* A lost race means a concurrent updater advanced the exponent; drop
       rather than retry to avoid double-advancing on one generation. *)
    ignore (Atomic.compare_and_set t.exponent x (x + 1))

let estimate t =
  let x = Atomic.get t.exponent in
  ((t.base ** float_of_int x) -. 1.0) /. (t.base -. 1.0)

let exponent t = Atomic.get t.exponent
