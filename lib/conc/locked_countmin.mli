(** Linearizable CountMin via a global mutex: the strawman baseline.

    Every operation takes the lock, so histories are trivially linearizable
    (the lock's critical sections are the linearization points) — at the cost
    of serializing all ingestion. This is the baseline PCM is compared with
    in the throughput experiment (E6): the gap is the "price of
    linearizability" the paper's Section 6 quantifies analytically for the
    counter. *)

type t

val create : family:Hashing.Family.t -> t
val update : t -> int -> unit
val query : t -> int -> int
val updates : t -> int
