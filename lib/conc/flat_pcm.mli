(** Flat per-domain counter planes: the cache-aware PCM layout.

    {!Pcm} is the reference layout — one shared plane of boxed atomic
    cells, every write an RMW on a one-word heap block that shares its
    cache line with its neighbours. This module is the measured
    alternative: each writer domain owns a private, contiguous, unboxed
    [int array] plane (d×w, row-major) that it mutates with plain loads
    and stores, and {e publishes} Stripes-style by an [Atomic.set] on a
    padded per-plane counter every [publish_every] updates (or on
    {!flush}). A query sums the planes cell-wise and takes the row
    minimum.

    Why this is still IVL: each plane is monotone non-decreasing, so any
    cell value a query reads lies between that plane's published prefix
    (everything before the last publish the reader acquires) and its
    current value. Summing per-plane intermediate values yields an
    intermediate value of the true cell count, and the row-minimum of
    such sums is exactly the situation of Lemma 7 — the returned estimate
    sits inside the query's IVL envelope once buffered updates are
    treated as taking effect at publish time. With [publish_every = 1]
    every update publishes immediately and the recorded-history envelope
    test applies verbatim.

    Single-writer contract: calls with a given [~domain] index must come
    from one domain at a time (same contract as {!Ivl_counter} slots).
    Queries may run concurrently from any domain. *)

type t

val create : ?publish_every:int -> family:Hashing.Family.t -> domains:int -> unit -> t
(** [domains] fixes the number of writer planes. [publish_every]
    (default 64) is the per-plane batch size between publishes; [1]
    publishes on every update.
    @raise Invalid_argument if [domains <= 0] or [publish_every <= 0]. *)

val create_for_error :
  ?publish_every:int ->
  seed:int64 ->
  alpha:float ->
  delta:float ->
  domains:int ->
  unit ->
  t
(** Dimensions from target error, as [Pcm.create_for_error]:
    [w = ⌈e/alpha⌉], [d = ⌈ln (1/delta)⌉]. *)

val family : t -> Hashing.Family.t
val rows : t -> int
val width : t -> int
val domains : t -> int

val update : t -> domain:int -> int -> unit
(** Increment element [a]'s cells on [domain]'s plane: d plain
    increments, no atomics; publishes when the plane's pending count
    reaches [publish_every].
    @raise Invalid_argument on an out-of-range [domain]. *)

val update_many : t -> domain:int -> int -> count:int -> unit
(** [update_many t ~domain a ~count] adds [count] occurrences of [a] in
    one pass (same cells, one publish check). No-op when [count = 0].
    @raise Invalid_argument if [count < 0]. *)

val flush : t -> domain:int -> unit
(** Publish [domain]'s pending updates now. Call from the owning domain
    (it reads and clears the owner-private pending count). *)

val flush_all : t -> unit
(** Publish every plane. Only safe when no domain is mid-update — e.g.
    after joining writers, before a final exact read. *)

val query : t -> int -> int
(** Point estimate for element [a]: per row, sum the planes' cells (an
    intermediate value of the true cell count) and return the minimum.
    Wait-free, concurrent with updates. *)

val updates : t -> int
(** Sum of the planes' published update counts — an intermediate-value
    read of the total stream length, monotone per reader. Excludes
    pending (unpublished) updates. *)

val buffered : t -> domain:int -> int
(** [domain]'s pending (unpublished) update count. Owner-accurate;
    racy from other domains. *)

val snapshot_cells : t -> int array array
(** Cell-wise sum of all planes as [d×w]; quiescent use (tests). *)
