(** Small helpers for spawning and joining domain teams. *)

val parallel : domains:int -> (int -> 'a) -> 'a array
(** [parallel ~domains f] runs [f i] on [domains] fresh domains (i ∈
    [\[0, domains)]) and returns their results. The caller's domain only
    coordinates. @raise Invalid_argument if [domains <= 0]; re-raises the
    first domain exception after joining all. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), seconds)] on the monotonic wall clock. *)

val parallel_timed : domains:int -> (int -> Barrier.t -> 'a) -> 'a array * float
(** Like {!parallel} but hands each worker a start barrier (already sized
    for [domains] + the timing coordinator) and measures from the moment the
    barrier trips to the last join. *)
