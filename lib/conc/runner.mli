(** Small helpers for spawning and joining domain teams.

    All entry points join {e every} spawned domain before propagating any
    exception — a raising worker never leaves siblings unjoined or a
    coordinator spinning on a barrier (see {!Barrier.poison}). *)

val parallel : domains:int -> (int -> 'a) -> 'a array
(** [parallel ~domains f] runs [f i] on [domains] fresh domains (i ∈
    [\[0, domains)]) and returns their results. The caller's domain only
    coordinates. @raise Invalid_argument if [domains <= 0]; re-raises the
    first domain's exception after joining all. *)

val parallel_result : domains:int -> (int -> 'a) -> ('a, exn) result array
(** Like {!parallel} but never re-raises: each domain's outcome is [Ok] or
    [Error] per domain — the chaos harness runs workers that are
    {e expected} to die mid-workload and treats [Error] as a crashed
    domain. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), seconds)] on the monotonic wall clock. *)

val parallel_timed : domains:int -> (int -> Barrier.t -> 'a) -> 'a array * float
(** Like {!parallel} but hands each worker a start barrier (already sized
    for [domains] + the timing coordinator) and measures from the moment the
    barrier trips to the last join. A worker that raises before reaching the
    barrier poisons it, so the coordinator and the surviving workers all
    break out with a diagnostic instead of spinning; the worker's original
    exception is re-raised after every domain is joined. *)
