exception Broken of string

type t = {
  parties : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  poisoned : string option Atomic.t;
  timeout_s : float;
}

let create ?(timeout_s = 10.0) parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  if timeout_s <= 0.0 then invalid_arg "Barrier.create: timeout must be positive";
  {
    parties;
    count = Atomic.make 0;
    sense = Atomic.make false;
    poisoned = Atomic.make None;
    timeout_s;
  }

let parties t = t.parties

let is_broken t = Atomic.get t.poisoned <> None

(* Only the first poisoner's message is kept — it names the root cause;
   later poisons (cascading timeouts, secondary failures) are dropped. *)
let poison t msg = ignore (Atomic.compare_and_set t.poisoned None (Some msg))

let check_poison t =
  match Atomic.get t.poisoned with Some msg -> raise (Broken msg) | None -> ()

let await t =
  check_poison t;
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
    (* Last arrival resets the count and releases the others. *)
    Atomic.set t.count 0;
    Atomic.set t.sense my_sense
  end
  else begin
    let deadline = Unix.gettimeofday () +. t.timeout_s in
    let rec spin n =
      if Atomic.get t.sense <> my_sense then begin
        check_poison t;
        (* Re-read the clock only every few thousand spins; gettimeofday on
           the spin path would dominate the barrier cost. *)
        if n land 0xFFF = 0 && Unix.gettimeofday () > deadline then begin
          poison t
            (Printf.sprintf
               "Barrier.await: timed out after %.1fs waiting for %d parties \
                (a worker crashed before arriving?)"
               t.timeout_s t.parties);
          check_poison t
        end;
        Domain.cpu_relax ();
        spin (n + 1)
      end
    in
    spin 1
  end
