(** Chaos injection for real multicore (domain) workloads.

    The simulator's {!Simulation.Fault} controls the schedule exactly; on
    real hardware the OS schedules domains, so adversity must be injected
    from inside the workload. A {!t} gives each domain a deterministic
    stream of injected misfortunes at {e injection points} the workload
    places between and inside operations:

    - randomized {e yields} (a handful of [Domain.cpu_relax] calls) and
      longer {e stalls} (thousands of spins), which shake out interleavings
      real schedulers rarely produce on an idle machine; and
    - {e kills}: at a pre-chosen point a victim domain raises {!Killed},
      emulating crash-stop domain death. Placed inside a
      {!Recorder.record_update} body, the kill lands {e mid-operation}: the
      invocation is logged, the response never is, and the recorded history
      carries a pending operation exactly like the paper's adversarial
      completions (the update may or may not have taken effect, and the
      checkers must accept both).

    Everything is per-domain deterministic given [(seed, domain)]: re-running
    a failing chaos seed reproduces the same injection sequence (the OS
    schedule of course still varies). *)

exception Killed of { domain : int; point : int }
(** Raised at the victim's chosen injection point; [point] is the 1-based
    count of points the domain had passed. *)

type plan = {
  seed : int64;
  yield_prob : float;  (** per-point probability of a short yield burst *)
  stall_prob : float;  (** per-point probability of a long stall *)
  stall_spins : int;  (** spin count of a long stall *)
  kills : (int * int) list;
      (** [(domain, point)]: domain raises {!Killed} at its [point]-th
          injection point (1-based). At most one kill per domain is
          honoured (the earliest). *)
}

val plan :
  ?yield_prob:float ->
  ?stall_prob:float ->
  ?stall_spins:int ->
  ?kills:(int * int) list ->
  seed:int64 ->
  unit ->
  plan
(** Defaults: [yield_prob = 0.2], [stall_prob = 0.02],
    [stall_spins = 2000], no kills.
    @raise Invalid_argument on probabilities outside [0,1] or negative
    spin counts. *)

val random_kills :
  seed:int64 -> domains:int -> victims:int -> max_point:int -> (int * int) list
(** Pick [victims] distinct victim domains (each with a kill point uniform
    in [\[1, max_point\]]) — the usual way to seed a soak-test round.
    @raise Invalid_argument if [victims > domains] or [max_point < 1]. *)

type t

type event = Injected_yield | Injected_stall | Injected_kill
(** What {!point} injected, reported to the [on_event] hook. *)

val instantiate :
  ?on_event:(domain:int -> point:int -> event -> unit) -> plan -> domains:int -> t
(** Fresh per-domain RNGs and kill countdowns for one run.

    [on_event] is called from the injected domain, at the injection point,
    for every fault actually delivered (before the stall spins or the
    {!Killed} raise) — the hook observability layers use to record injected
    faults as trace events without this library depending on them. Keep it
    allocation-free and non-blocking; it runs inside hot loops. *)

val point : t -> domain:int -> unit
(** An injection point. May yield, stall, or raise {!Killed} (once per
    victim domain; after that the domain is marked dead and must stop
    calling). Each domain must only be driven from its own domain. *)

val point_once : t -> domain:int -> unit
(** Like {!point}, except a domain that has already been killed passes
    through as a no-op instead of re-raising. This is the hook for
    supervised pipelines: the first incarnation of a victim worker dies at
    its chosen point, and the incarnation the supervisor restarts runs the
    same hook harmlessly — one injected crash per victim, no crash loop
    into a shed. *)

val points_passed : t -> domain:int -> int
(** Injection points this domain has passed (including the killing one). *)

val killed : t -> int list
(** Domains that have raised {!Killed}, ascending. Read after the workers
    are joined. *)
