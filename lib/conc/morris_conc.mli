(** A concurrent Morris counter: the second transfer-theorem case study.

    The exponent is a single atomic cell. An update reads the exponent,
    flips a coin with success probability base^{-x}, and on success tries a
    [compare_and_set x (x+1)]; a failed CAS means another domain just bumped
    the exponent, in which case the increment is {e dropped} (the event is
    still counted as processed). Dropping is deliberate: retrying would make
    two concurrent successful coin flips bump the exponent twice, grossly
    over-shooting; dropping keeps every read of the exponent between the
    values at the read's start and end, so queries are IVL with respect to
    the sequential Morris spec sharing the same coin treatment.

    Like PCM, this object is monotone (the exponent only grows), which is
    what makes the straightforward parallelization IVL. Experiment E10
    measures how much accuracy concurrency costs relative to the sequential
    sketch. *)

type t

val create : ?base:float -> seed:int64 -> domains:int -> unit -> t
(** Per-domain RNG streams are split deterministically from [seed].
    @raise Invalid_argument if [domains <= 0] or [base <= 1]. *)

val update : t -> domain:int -> unit
(** Count one event from [domain] (chooses that domain's RNG stream).
    @raise Invalid_argument on an out-of-range domain. *)

val estimate : t -> float
(** Unbiased estimate of the number of counted events. *)

val exponent : t -> int
