(** IVL for randomized algorithms (Definition 3).

    For a randomized object, different coin-flip vectors leave the skeleton
    unchanged (uniform step complexity) but change the return values. The
    definition demands a {e common} pair of linearizations H1, H2 of the
    skeleton such that {e for every} coin vector c#:

    {v ret(Q, τ_{H(c#)}(H1)) ≤ ret(Q, H(A,c#,σ)) ≤ ret(Q, τ_{H(c#)}(H2)) v}

    This is strictly stronger than finding witnesses per coin: the common
    witness is what makes the linearization independent of future coin flips
    (the role strong linearizability plays for deterministic objects used by
    randomized programs — Section 3.3 discusses why no further strengthening
    is needed).

    Checking universally over Ω^∞ is impossible; the checker takes a finite
    set of {e worlds} — (coin, observed returns) pairs arising from running
    the algorithm under the same schedule with different coins — and finds a
    common witness across all of them. Tests use exhaustively enumerated or
    densely sampled coin spaces. *)

module Int_map = Map.Make (Int)

module Make (R : Spec.Quantitative.RANDOMIZED) = struct
  type world = {
    coin : R.coin;
    returns : (int * R.value) list; (* op id ↦ value returned under this coin *)
  }

  type op = (R.update, R.query, R.value) Hist.Op.t

  type mode = At_most | At_least

  let satisfies mode actual spec_value =
    let c = R.compare_value spec_value actual in
    match mode with At_most -> c <= 0 | At_least -> c >= 0

  (* One DFS, carrying a state per world; a query placement must satisfy the
     bound simultaneously in every world. *)
  let exists ~mode ~(worlds : world list) (h : (R.update, R.query, R.value) Hist.History.t)
      =
    (match Hist.History.well_formed h with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Randomized.exists: ill-formed history: " ^ msg));
    let all = Hist.History.ops h in
    let is_completed op =
      match Hist.History.interval h op.Hist.Op.id with
      | Some (_, Some _) -> true
      | _ -> false
    in
    let candidates =
      Array.of_list (List.filter (fun op -> is_completed op || Hist.Op.is_update op) all)
    in
    let n = Array.length candidates in
    if n > 62 then raise (Search.Too_many_operations n);
    let preds =
      Array.map
        (fun (opi : op) ->
          let ps = ref [] in
          Array.iteri
            (fun j (opj : op) ->
              if opj.Hist.Op.id <> opi.Hist.Op.id
                 && Hist.History.precedes h opj.Hist.Op.id opi.Hist.Op.id
              then ps := j :: !ps)
            candidates;
          Array.of_list !ps)
        candidates
    in
    let must_place = ref 0 in
    Array.iteri
      (fun i op -> if is_completed op then must_place := !must_place lor (1 lsl i))
      candidates;
    let must_place = !must_place in
    let worlds = Array.of_list worlds in
    let actual_of w id = List.assoc_opt id w.returns in
    (* Per-world object states. *)
    let init_states = Array.map (fun w -> (w, Int_map.empty)) worlds in
    let get_state coin states obj =
      match Int_map.find_opt obj states with Some s -> s | None -> R.init coin
    in
    let failed = Hashtbl.create 1024 in
    let memoize = R.commutative_updates in
    let rec go placed (world_states : (world * R.state Int_map.t) array) acc =
      if placed land must_place = must_place then Some (List.rev acc)
      else if memoize && Hashtbl.mem failed placed then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let ix = !i in
          incr i;
          if placed land (1 lsl ix) = 0
             && Array.for_all (fun j -> placed land (1 lsl j) <> 0) preds.(ix)
          then begin
            let op = candidates.(ix) in
            match op.Hist.Op.kind with
            | Hist.Op.Update u ->
                let next =
                  Array.map
                    (fun (w, states) ->
                      let st = R.apply_update (get_state w.coin states op.obj) u in
                      (w, Int_map.add op.Hist.Op.obj st states))
                    world_states
                in
                result := go (placed lor (1 lsl ix)) next (op :: acc)
            | Hist.Op.Query q ->
                let ok =
                  Array.for_all
                    (fun (w, states) ->
                      match actual_of w op.Hist.Op.id with
                      | None -> true
                      | Some actual ->
                          let v = R.eval_query (get_state w.coin states op.obj) q in
                          satisfies mode actual v)
                    world_states
                in
                if ok then result := go (placed lor (1 lsl ix)) world_states (op :: acc)
          end
        done;
        if !result = None && memoize then Hashtbl.replace failed placed ();
        !result
      end
    in
    go 0 init_states []

  type verdict = { ivl : bool; lower : op list option; upper : op list option }

  (** Definition 3: a common H1 (lower) and H2 (upper) across all worlds. *)
  let check ~worlds h =
    let lower = exists ~mode:At_most ~worlds h in
    let upper =
      match lower with None -> None | Some _ -> exists ~mode:At_least ~worlds h
    in
    { ivl = lower <> None && upper <> None; lower; upper }
end
