(** The linearization search engine shared by every checker.

    All of the paper's criteria are ∃-statements over linearizations of a
    history's skeleton; this module decides them by DFS over linearization
    prefixes with constraint-based pruning, and — for specifications whose
    updates commute — Wing–Gong-style memoization of failed prefixes by
    placed-operation bitmask.

    Completion freedom follows the definitions: completed operations must be
    placed, pending updates may be placed or dropped, pending queries are
    always dropped. *)

type mode =
  | Exact  (** spec value must equal the actual return (linearizability) *)
  | At_most  (** spec value ≤ actual (the IVL lower witness H1) *)
  | At_least  (** spec value ≥ actual (the IVL upper witness H2) *)

exception Too_many_operations of int
(** Raised when a history has more than 62 candidate operations — the exact
    search is bitmask-based and deliberately refuses beyond that. *)

module Make (S : Spec.Quantitative.S) : sig
  type op = (S.update, S.query, S.value) Hist.Op.t

  type prepared
  (** Preprocessed search input: candidate operations, real-time precedence,
      mandatory-placement mask, per-query constraints. *)

  val prepare : (S.update, S.query, S.value) Hist.History.t -> prepared
  (** @raise Invalid_argument on an ill-formed history.
      @raise Too_many_operations beyond the search budget. *)

  val exists : mode:mode -> prepared -> op list option
  (** [exists ~mode p] finds a linearization whose τ-values satisfy [mode]
      against every constrained query, returning the witness sequence with
      query returns filled by τ. *)

  val iter_linearizations : prepared -> (op list -> unit) -> unit
  (** Enumerate every linearization (exponential; v_min/v_max ground truth
      and tests only), invoking the callback with each τ-filled sequence. *)
end
