module Make (S : Spec.Quantitative.S) = struct
  module Bounds = Bounded.Make (S)
  module Checker = Check.Make (S)
  module Lin = Lincheck.Make (S)

  type query_report = {
    op : (S.update, S.query, S.value) Hist.Op.t;
    v_min : S.value;
    v_max : S.value;
    in_bounds : bool;
  }

  let diagnose h =
    List.map
      (fun (b : Bounds.bound) ->
        let in_bounds =
          match b.op.Hist.Op.ret with
          | None -> true
          | Some v ->
              S.compare_value b.Bounds.v_min v <= 0 && S.compare_value v b.Bounds.v_max <= 0
        in
        { op = b.Bounds.op; v_min = b.Bounds.v_min; v_max = b.Bounds.v_max; in_bounds })
      (Bounds.query_bounds h)

  let to_string h =
    let buf = Buffer.create 256 in
    let ivl = Checker.is_ivl h and lin = Lin.is_linearizable h in
    Buffer.add_string buf
      (Printf.sprintf "linearizable: %b    IVL: %b    (%s)\n" lin ivl S.name);
    List.iter
      (fun r ->
        let actual =
          match r.op.Hist.Op.ret with
          | Some v -> Format.asprintf "%a" S.pp_value v
          | None -> "?"
        in
        Buffer.add_string buf
          (Format.asprintf "  query #%d (%a): returned %s, interval [%a, %a]%s\n"
             r.op.Hist.Op.id S.pp_query
             (match r.op.Hist.Op.kind with
             | Hist.Op.Query q -> q
             | Hist.Op.Update _ -> assert false)
             actual S.pp_value r.v_min S.pp_value r.v_max
             (if r.in_bounds then "" else "  <-- OUT OF BOUNDS")))
      (diagnose h);
    Buffer.contents buf
end
