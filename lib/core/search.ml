(** The linearization search engine shared by every checker in this library.

    All of the paper's criteria are ∃-statements over linearizations of a
    history's skeleton:

    - linearizability: ∃ a linearization whose (unique, τ-derived) query
      values {e equal} the returned ones;
    - IVL (Definition 2): ∃ one linearization whose values are ≤ the returned
      ones and one whose values are ≥ them;
    - v_min / v_max (Definition 5): the min / max value a query attains over
      all linearizations.

    The engine runs a DFS over linearization prefixes. A prefix is extended
    by any operation whose real-time predecessors have all been placed.
    Completed operations must eventually be placed; pending updates may be
    placed (i.e. completed) or not (removed); pending queries are always
    removed — exactly the completion freedom the definitions allow. Placing a
    query immediately evaluates the sequential specification and applies the
    caller's constraint, pruning the subtree on failure.

    For specifications that declare [commutative_updates], the object state
    reached by a prefix depends only on the {e set} of placed updates, so
    failed prefixes can be memoized by their bitmask; this makes checking
    histories of dozens of operations practical (Wing–Gong-style pruning). *)

module Int_map = Map.Make (Int)

(* How a placed query's specification value must relate to the value actually
   returned in the history. *)
type mode = Exact | At_most | At_least

exception Too_many_operations of int

module Make (S : Spec.Quantitative.S) = struct
  module Tau = Spec.Quantitative.Tau (S)

  type op = (S.update, S.query, S.value) Hist.Op.t

  type prepared = {
    ops : op array; (* candidate operations, invocation order *)
    preds : int array array; (* preds.(i): indices that must precede i *)
    must_place : int; (* bitmask of completed (mandatory) operations *)
    constraints : S.value option array; (* actual return of completed queries *)
  }

  (* Build the search structure from a history. *)
  let prepare (h : (S.update, S.query, S.value) Hist.History.t) =
    (match Hist.History.well_formed h with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Search.prepare: ill-formed history: " ^ msg));
    let all = Hist.History.ops h in
    let is_completed op =
      match Hist.History.interval h op.Hist.Op.id with
      | Some (_, Some _) -> true
      | _ -> false
    in
    (* Pending queries can never appear in a linearization that must assign
       them a response value, so the definitions drop them. *)
    let candidates =
      List.filter (fun op -> is_completed op || Hist.Op.is_update op) all
    in
    let n = List.length candidates in
    if n > 62 then raise (Too_many_operations n);
    let ops = Array.of_list candidates in
    let preds =
      Array.map
        (fun opi ->
          let ps = ref [] in
          Array.iteri
            (fun j opj ->
              if opj.Hist.Op.id <> opi.Hist.Op.id
                 && Hist.History.precedes h opj.Hist.Op.id opi.Hist.Op.id
              then ps := j :: !ps)
            ops;
          Array.of_list !ps)
        ops
    in
    let must_place = ref 0 in
    Array.iteri (fun i op -> if is_completed op then must_place := !must_place lor (1 lsl i)) ops;
    let constraints =
      Array.map (fun op -> if is_completed op then op.Hist.Op.ret else None) ops
    in
    { ops; preds; must_place = !must_place; constraints }

  let satisfies mode actual spec_value =
    let c = S.compare_value spec_value actual in
    match mode with Exact -> c = 0 | At_most -> c <= 0 | At_least -> c >= 0

  let state_of states obj =
    match Int_map.find_opt obj states with Some s -> s | None -> S.init

  (* [exists ~mode p] searches for a linearization satisfying [mode] on every
     constrained query; returns the witness operation sequence. *)
  let exists ~mode p =
    let n = Array.length p.ops in
    let failed = Hashtbl.create 1024 in
    let memoize = S.commutative_updates in
    let rec go placed states acc =
      if placed land p.must_place = p.must_place then Some (List.rev acc)
      else if memoize && Hashtbl.mem failed placed then None
      else
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let ix = !i in
          incr i;
          if placed land (1 lsl ix) = 0
             && Array.for_all (fun j -> placed land (1 lsl j) <> 0) p.preds.(ix)
          then begin
            let op = p.ops.(ix) in
            match op.Hist.Op.kind with
            | Hist.Op.Update u ->
                let st = S.apply_update (state_of states op.obj) u in
                result :=
                  go (placed lor (1 lsl ix)) (Int_map.add op.obj st states) (op :: acc)
            | Hist.Op.Query q ->
                let v = S.eval_query (state_of states op.obj) q in
                let ok =
                  match p.constraints.(ix) with
                  | None -> true
                  | Some actual -> satisfies mode actual v
                in
                if ok then
                  result :=
                    go (placed lor (1 lsl ix)) states (Hist.Op.with_return op v :: acc)
          end
        done;
        if !result = None && memoize then Hashtbl.replace failed placed ();
        !result
    in
    go 0 Int_map.empty []

  (* Enumerate every linearization, invoking [f] on the τ-filled operation
     sequence once all mandatory operations are placed. Exponential; meant
     for small histories (v_min/v_max, ground-truth tests). *)
  let iter_linearizations p f =
    let n = Array.length p.ops in
    let rec go placed states acc =
      if placed land p.must_place = p.must_place then f (List.rev acc);
      for ix = 0 to n - 1 do
        if placed land (1 lsl ix) = 0
           && Array.for_all (fun j -> placed land (1 lsl j) <> 0) p.preds.(ix)
        then
          let op = p.ops.(ix) in
          match op.Hist.Op.kind with
          | Hist.Op.Update u ->
              let st = S.apply_update (state_of states op.obj) u in
              go (placed lor (1 lsl ix)) (Int_map.add op.obj st states) (op :: acc)
          | Hist.Op.Query q ->
              let v = S.eval_query (state_of states op.obj) q in
              go (placed lor (1 lsl ix)) states (Hist.Op.with_return op v :: acc)
      done
    in
    go 0 Int_map.empty []
end
