(** Human-readable diagnosis of checker verdicts.

    When a history fails a check, "not IVL" is rarely enough to debug an
    implementation; this module says {e which} query is out of bounds and
    what the legal interval was (Definition 5's v_min/v_max, computed
    exactly), in prose suitable for CLI output and failure messages.
    Exponential like the exact checkers — diagnosis is for the small
    histories the fuzzers minimize to. *)

module Make (S : Spec.Quantitative.S) : sig
  type query_report = {
    op : (S.update, S.query, S.value) Hist.Op.t;
    v_min : S.value;
    v_max : S.value;
    in_bounds : bool;
  }

  val diagnose : (S.update, S.query, S.value) Hist.History.t -> query_report list
  (** Interval and verdict for every completed query.
      @raise Invalid_argument / @raise Search.Too_many_operations as the
      exact checkers do. *)

  val to_string : (S.update, S.query, S.value) Hist.History.t -> string
  (** A multi-line report: overall IVL/linearizability verdicts followed by
      one line per query with its interval and actual return. *)
end
