(** Locality of IVL (Theorem 1).

    [A history H of a well-formed execution over a set of objects X is IVL
    iff H|x is IVL for every x ∈ X.] Locality is what lets a system be
    verified object by object. This module offers both sides: the modular
    check (project, then check each object separately) and the monolithic
    check (the multi-object search built into the engine, where each object
    id evolves its own state). Property tests assert the two verdicts agree
    on randomly generated multi-object histories — an executable witness of
    the theorem.

    The theorem's proof relies on per-object specifications; here all objects
    in one history share a spec module [S], which suffices because object ids
    keep their states disjoint. *)

module Make (S : Spec.Quantitative.S) = struct
  module Checker = Check.Make (S)

  (* Verdict of the modular, per-object check. *)
  type verdict = {
    ivl : bool;
    per_object : (int * bool) list; (* object id, is H|x IVL? *)
  }

  let check_per_object h =
    let per_object =
      List.map
        (fun obj -> (obj, Checker.is_ivl (Hist.History.project h ~obj)))
        (Hist.History.objects h)
    in
    { ivl = List.for_all snd per_object; per_object }

  (* The monolithic check over the composed history. *)
  let check_global h = Checker.is_ivl h

  (* Both directions of Theorem 1 at once: do the two checks agree? *)
  let theorem_holds h = (check_per_object h).ivl = check_global h
end
