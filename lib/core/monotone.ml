module Int_map = Map.Make (Int)

module Make (S : Spec.Quantitative.S) = struct
  type envelope = {
    op : (S.update, S.query, S.value) Hist.Op.t;
    low : S.value;
    high : S.value;
  }

  let state_of states obj =
    match Int_map.find_opt obj states with Some s -> s | None -> S.init

  (* One forward sweep. [completed_states] applies each update at its
     response event (the update provably precedes anything invoked later);
     [invoked_states] applies it at its invocation (the earliest point at
     which a linearization may order it before a later-responding query).
     A query captures its lower value from [completed_states] at its
     invocation and its upper value from [invoked_states] at its response. *)
  let envelopes h =
    (match Hist.History.well_formed h with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Monotone.envelopes: ill-formed history: " ^ msg));
    let completed_states = ref Int_map.empty in
    let invoked_states = ref Int_map.empty in
    let pending_lows = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun (ev : (S.update, S.query, S.value) Hist.History.event) ->
        let op = ev.Hist.History.op in
        match (ev.Hist.History.dir, op.Hist.Op.kind) with
        | Hist.History.Inv, Hist.Op.Update u ->
            invoked_states :=
              Int_map.add op.obj
                (S.apply_update (state_of !invoked_states op.obj) u)
                !invoked_states
        | Hist.History.Rsp, Hist.Op.Update u ->
            completed_states :=
              Int_map.add op.obj
                (S.apply_update (state_of !completed_states op.obj) u)
                !completed_states
        | Hist.History.Inv, Hist.Op.Query q ->
            Hashtbl.replace pending_lows op.id
              (S.eval_query (state_of !completed_states op.obj) q)
        | Hist.History.Rsp, Hist.Op.Query q -> (
            match Hashtbl.find_opt pending_lows op.id with
            | None -> () (* response without invocation: well_formed rejects *)
            | Some low ->
                Hashtbl.remove pending_lows op.id;
                let high = S.eval_query (state_of !invoked_states op.obj) q in
                out := { op; low; high } :: !out))
      (Hist.History.events h);
    List.rev !out

  let within e =
    match e.op.Hist.Op.ret with
    | None -> true
    | Some v -> S.compare_value e.low v <= 0 && S.compare_value v e.high <= 0

  let check h = List.for_all within (envelopes h)

  let violations h = List.filter (fun e -> not (within e)) (envelopes h)
end
