(** Locality of IVL (Theorem 1): [H] is IVL iff [H|x] is IVL for every
    object [x]. Both directions are executable here — the modular per-object
    check and the monolithic multi-object check — so the theorem itself can
    be property-tested. *)

module Make (S : Spec.Quantitative.S) : sig
  module Checker : module type of Check.Make (S)

  type verdict = {
    ivl : bool;  (** conjunction over objects *)
    per_object : (int * bool) list;  (** object id, is [H|x] IVL? *)
  }

  val check_per_object : (S.update, S.query, S.value) Hist.History.t -> verdict
  (** Project onto each object id and check the projections separately. *)

  val check_global : (S.update, S.query, S.value) Hist.History.t -> bool
  (** One search over the composed history (object states kept disjoint). *)

  val theorem_holds : (S.update, S.query, S.value) Hist.History.t -> bool
  (** Do the two checks agree? Theorem 1 says always; tests assert it. *)
end
