(** Intermediate Value Linearizability checking (Definition 2).

    A history [H] is IVL w.r.t. sequential specification [S] when there are
    two linearizations [H1], [H2] of the skeleton [H?] such that every query
    [Q] returning in [H] satisfies

    {v ret(Q, τ_S(H1)) ≤ ret(Q, H) ≤ ret(Q, τ_S(H2)) v}

    The checker is an exact decision procedure for histories of up to 62
    candidate operations (pending queries excluded); beyond that
    {!Search.Too_many_operations} is raised. *)

module Make (S : Spec.Quantitative.S) : sig
  type verdict = {
    ivl : bool;
    lower : (S.update, S.query, S.value) Hist.Op.t list option;
        (** H1: a linearization whose τ-values lower-bound every query's
            actual return, when one exists *)
    upper : (S.update, S.query, S.value) Hist.Op.t list option;
        (** H2: the symmetric upper witness *)
  }

  val check : (S.update, S.query, S.value) Hist.History.t -> verdict
  (** Decide Definition 2 for a well-formed history. The two witnesses are
      searched independently, mirroring the definition's two independent
      linearizations (including independent completions of pending updates).
      @raise Invalid_argument on an ill-formed history.
      @raise Search.Too_many_operations beyond the exact-search budget. *)

  val is_ivl : (S.update, S.query, S.value) Hist.History.t -> bool
  (** [is_ivl h] = [(check h).ivl]. *)

  val sequential_conforms : (S.update, S.query, S.value) Hist.History.t -> bool
  (** Direct conformance of a {e sequential} history to the specification —
      IVL does not relax sequential executions at all (Section 3.2).
      @raise Invalid_argument if the history is not sequential. *)
end
