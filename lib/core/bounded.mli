(** Machinery for (ε,δ)-bounded objects (Section 4, Definitions 4–5,
    Theorem 6).

    [Make (I)] computes, against the {e ideal} specification [I], the exact
    interval \[v_min, v_max\] each completed query may take over
    linearizations — the reference points Definition 5 measures concurrent
    (ε,δ)-bounded objects against. Exact enumeration; test-sized histories.

    The [tally] utilities accumulate empirical violation rates for the
    large-scale experiments, where the interval endpoints of monotone
    objects are tracked by bracketing oracles instead of enumeration. *)

module Make (I : Spec.Quantitative.S) : sig
  type bound = {
    op : (I.update, I.query, I.value) Hist.Op.t;  (** the query *)
    v_min : I.value;
    v_max : I.value;
  }

  val query_bounds : (I.update, I.query, I.value) Hist.History.t -> bound list
  (** Exact v_min/v_max for every completed query, by full enumeration.
      @raise Invalid_argument on an ill-formed history.
      @raise Search.Too_many_operations beyond the search budget. *)

  type side = Below | Above

  val violates :
    epsilon:float ->
    measure:('d -> float) ->
    sub:(I.value -> I.value -> 'd) ->
    bound ->
    I.value ->
    side option
  (** [violates ~epsilon ~measure ~sub b actual]: which side of
      \[v_min − ε, v_max + ε\] the measured value leaves, if any; [sub] and
      [measure] map value differences into the float metric ε lives in. *)
end

(** Violation accounting for empirical (ε,δ) experiments (Definition 5 makes
    each one-sided failure probability at most δ/2). *)
type tally = { mutable total : int; mutable below : int; mutable above : int }

val tally : unit -> tally

val record : tally -> ret:float -> v_min:float -> v_max:float -> epsilon:float -> unit
(** Count a query: below if [ret < v_min − ε], above if [ret > v_max + ε]. *)

val below_rate : tally -> float
val above_rate : tally -> float
