(** Intermediate Value Linearizability checking (Definition 2).

    A history [H] is IVL w.r.t. sequential specification [S] when there are
    two linearizations [H1], [H2] of the skeleton [H?] such that every query
    [Q] returning in [H] satisfies

    {v ret(Q, τ_S(H1)) ≤ ret(Q, H) ≤ ret(Q, τ_S(H2)) v}

    The lower witness [H1] is found with the [At_most] search mode (every
    query's specification value must not exceed the value actually returned)
    and the upper witness [H2] with [At_least]. The two searches are
    independent, mirroring the definition's two independent linearizations —
    including independent choices of which pending updates to complete.

    A linearizable history is trivially IVL (one witness plays both roles);
    tests assert this implication on randomly generated histories. *)

module Make (S : Spec.Quantitative.S) = struct
  module Engine = Search.Make (S)

  type verdict = {
    ivl : bool;
    lower : (S.update, S.query, S.value) Hist.Op.t list option;
        (** H1: linearization bounding all query returns from below *)
    upper : (S.update, S.query, S.value) Hist.Op.t list option;
        (** H2: linearization bounding all query returns from above *)
  }

  let check h =
    let p = Engine.prepare h in
    let lower = Engine.exists ~mode:Search.At_most p in
    (* No lower witness means the history is already not IVL; skip the second
       search in that case. *)
    let upper =
      match lower with None -> None | Some _ -> Engine.exists ~mode:Search.At_least p
    in
    { ivl = lower <> None && upper <> None; lower; upper }

  let is_ivl h = (check h).ivl

  (** Check a sequential history directly against the specification: an IVL
      object is not relaxed at all in sequential executions (Section 3.2), so
      this is the conformance test examples and tests use for sanity. *)
  let sequential_conforms h =
    match Hist.History.sequential_ops h with
    | None -> invalid_arg "Check.sequential_conforms: history is not sequential"
    | Some ops ->
        let module Tau = Spec.Quantitative.Tau (S) in
        Tau.satisfies ops
end
