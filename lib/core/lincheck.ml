(** Linearizability checking (Herlihy & Wing, recalled in Section 2.1).

    [A history is linearizable w.r.t. spec S if some linearization of it —
    same completed invocations and responses, pending updates optionally
    completed, pending queries removed, real-time order preserved — belongs
    to S.] For a deterministic quantitative object, membership in S means
    every query returns exactly the τ-derived value, so the check is the
    [Exact] mode of the search engine.

    The paper uses non-linearizability of PCM (Example 9) to show IVL is a
    strict relaxation; our tests replay that example through this checker. *)

module Make (S : Spec.Quantitative.S) = struct
  module Engine = Search.Make (S)

  type verdict = {
    linearizable : bool;
    witness : (S.update, S.query, S.value) Hist.Op.t list option;
        (** a linearization in the specification, when one exists *)
  }

  let check h =
    let p = Engine.prepare h in
    match Engine.exists ~mode:Search.Exact p with
    | Some w -> { linearizable = true; witness = Some w }
    | None -> { linearizable = false; witness = None }

  let is_linearizable h = (check h).linearizable
end
