(** IVL for randomized algorithms (Definition 3).

    A randomized quantitative object must admit a {e common} pair of
    linearizations H1, H2 of the skeleton that bound the actual returns
    under {e every} coin-flip vector simultaneously — strictly stronger than
    a per-coin witness, and the reason no strong-linearizability-style
    strengthening is needed (Section 3.3).

    The checker quantifies over a finite set of observed {e worlds}: runs of
    the same schedule under different coins. Histories passed in are
    skeleton-shaped; the per-world returns come from the worlds. *)

module Make (R : Spec.Quantitative.RANDOMIZED) : sig
  type world = {
    coin : R.coin;
    returns : (int * R.value) list;
        (** operation id ↦ value the query returned under this coin *)
  }

  type op = (R.update, R.query, R.value) Hist.Op.t

  type mode = At_most | At_least

  val exists :
    mode:mode ->
    worlds:world list ->
    (R.update, R.query, R.value) Hist.History.t ->
    op list option
  (** A single linearization satisfying [mode] in every world at once.
      @raise Invalid_argument on an ill-formed history.
      @raise Search.Too_many_operations beyond the search budget. *)

  type verdict = { ivl : bool; lower : op list option; upper : op list option }

  val check :
    worlds:world list -> (R.update, R.query, R.value) Hist.History.t -> verdict
  (** Definition 3: common H1 and H2 across all [worlds]. *)
end
