(** Scalable IVL checking for {e monotone} quantitative objects.

    The exact checker ({!Check}) decides Definition 2 for any object but is
    exponential and capped at 62 operations. For objects where more updates
    can only increase query values — batched counters, CountMin, max
    registers, HyperLogLog — IVL collapses to an interval test that a single
    sweep computes:

    - the {e lower} envelope of query [Q] is the τ-value over exactly the
      updates that {e completed before Q was invoked} (they precede [Q] in
      real time, so every linearization applies them; monotonicity makes any
      additional update only raise the value, so this is [v_min]);
    - the {e upper} envelope is the τ-value over every update {e invoked
      before Q responded} (each such update either precedes [Q] or is
      concurrent with it, so some linearization applies them all — including
      completing the pending ones — and none can apply more, so this is
      [v_max]).

    [H] is then IVL iff every completed query's return lies within its
    envelope. One pass, O(events × query cost) — recorded executions with
    thousands of operations check in milliseconds (the end-to-end multicore
    validations use this).

    {b Soundness requirement, unchecked:} [S] must be monotone (applying any
    update never decreases any query's value) and have commutative updates.
    All four objects above qualify; the up/down counter of Section 3.4 does
    {e not} — use {!Check} for such objects. Property tests assert this
    module agrees with {!Check} on every random monotone history. *)

module Make (S : Spec.Quantitative.S) : sig
  type envelope = {
    op : (S.update, S.query, S.value) Hist.Op.t;  (** the completed query *)
    low : S.value;  (** v_min: updates completed before the invocation *)
    high : S.value;  (** v_max: updates invoked before the response *)
  }

  val envelopes : (S.update, S.query, S.value) Hist.History.t -> envelope list
  (** Per-query envelopes, in response order.
      @raise Invalid_argument on an ill-formed history. *)

  val check : (S.update, S.query, S.value) Hist.History.t -> bool
  (** Every completed query's return lies in its envelope — equivalent to
      {!Check.Make.is_ivl} for monotone commutative specs. *)

  val violations : (S.update, S.query, S.value) Hist.History.t -> envelope list
  (** The envelopes whose query return falls outside, for diagnostics. *)
end
