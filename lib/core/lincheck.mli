(** Linearizability checking (Herlihy & Wing; Section 2.1 of the paper).

    For a deterministic quantitative object, a history is linearizable iff
    some linearization's τ-derived query values {e equal} the returned ones.
    Exact for the same history sizes as {!Check}. *)

module Make (S : Spec.Quantitative.S) : sig
  type verdict = {
    linearizable : bool;
    witness : (S.update, S.query, S.value) Hist.Op.t list option;
        (** a linearization in the specification, when one exists *)
  }

  val check : (S.update, S.query, S.value) Hist.History.t -> verdict
  (** @raise Invalid_argument on an ill-formed history.
      @raise Search.Too_many_operations beyond the exact-search budget. *)

  val is_linearizable : (S.update, S.query, S.value) Hist.History.t -> bool
end
