(** Machinery for (ε,δ)-bounded objects (Section 4).

    Definition 5 measures a concurrent query [Q] against the minimum and
    maximum values the {e ideal} object may take over linearizations of the
    query's interval:

    {v v_min(H,Q) = min { ret(Q, τ_I(L)) : L ∈ linearizations(H?) }
   v_max(H,Q) = max { ret(Q, τ_I(L)) : L ∈ linearizations(H?) } v}

    [query_bounds] computes both exactly by enumeration (test-sized
    histories). [violates] then scores a measured return value against the
    (ε,δ) requirement

    {v v_min − ε ≤ ret(Q,H) ≤ v_max + ε v}

    whose two one-sided failures each may happen with probability at most
    δ/2. The large-scale experiments (Corollary 8) do not enumerate
    linearizations: for {e monotone} objects the interval endpoints
    [v_min]/[v_max] coincide with the ideal value just before the query's
    invocation and just after its response, which the harness tracks
    directly; the exact enumeration here is the ground truth that validates
    that shortcut on small histories. *)

module Make (I : Spec.Quantitative.S) = struct
  module Engine = Search.Make (I)

  type bound = {
    op : (I.update, I.query, I.value) Hist.Op.t;
    v_min : I.value;
    v_max : I.value;
  }

  (* Exact v_min / v_max for every completed query, by full enumeration. *)
  let query_bounds h =
    let p = Engine.prepare h in
    let tbl = Hashtbl.create 8 in
    Engine.iter_linearizations p (fun lin ->
        List.iter
          (fun op ->
            match (op.Hist.Op.kind, op.Hist.Op.ret) with
            | Hist.Op.Query _, Some v -> (
                match Hashtbl.find_opt tbl op.Hist.Op.id with
                | None -> Hashtbl.replace tbl op.Hist.Op.id (v, v)
                | Some (lo, hi) ->
                    let lo = if I.compare_value v lo < 0 then v else lo in
                    let hi = if I.compare_value v hi > 0 then v else hi in
                    Hashtbl.replace tbl op.Hist.Op.id (lo, hi))
            | _ -> ())
          lin);
    Hist.History.completed h
    |> List.filter_map (fun op ->
           match Hashtbl.find_opt tbl op.Hist.Op.id with
           | Some (v_min, v_max) -> Some { op; v_min; v_max }
           | None -> None)

  type side = Below | Above

  (* Which side, if any, of the (ε,·) bound a measured value violates. *)
  let violates ~epsilon ~measure ~sub (b : bound) actual : side option =
    if measure (sub actual b.v_min) < -.epsilon then Some Below
    else if measure (sub actual b.v_max) > epsilon then Some Above
    else None
end

(** Violation accounting for the empirical (ε,δ) experiments: counts queries
    whose return leaves [v_min − ε, v_max + ε] on either side, to be compared
    against δ/2 per side (Definition 5). *)
type tally = {
  mutable total : int;
  mutable below : int; (* ret < v_min − ε *)
  mutable above : int; (* ret > v_max + ε *)
}

let tally () = { total = 0; below = 0; above = 0 }

let record t ~ret ~v_min ~v_max ~epsilon =
  t.total <- t.total + 1;
  if ret < v_min -. epsilon then t.below <- t.below + 1
  else if ret > v_max +. epsilon then t.above <- t.above + 1

let below_rate t = if t.total = 0 then 0.0 else float_of_int t.below /. float_of_int t.total
let above_rate t = if t.total = 0 then 0.0 else float_of_int t.above /. float_of_int t.total
