(** Exact percentiles of a sample (sorting copy of the data). *)

val of_sorted : float array -> float -> float
(** [of_sorted sorted p] for p ∈ [0,100], linear interpolation between
    order statistics. @raise Invalid_argument on an empty array or p outside
    the range. *)

val percentile : float array -> float -> float
(** [percentile data p] sorts a copy of [data] first. *)

val median : float array -> float
