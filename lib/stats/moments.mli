(** Streaming summary statistics (Welford's online algorithm). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Sample variance (n−1 denominator); 0 for fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val of_array : float array -> t
