let of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Percentile.of_sorted: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Percentile.of_sorted: p must lie in [0,100]";
  if n = 1 then sorted.(0)
  else
    let pos = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    if lo = hi then sorted.(lo)
    else
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let percentile data p =
  let copy = Array.copy data in
  Array.sort Float.compare copy;
  of_sorted copy p

let median data = percentile data 50.0
