(** The ideal rank oracle: [query x] returns |{y ≤ x}| over the exact stream
    multiset. The reference the quantiles sketches approximate within ±εn;
    monotone in stream growth. *)

module Int_map : Map.S with type key = int

type state = int Int_map.t
type update = int
type query = int
type value = int

val name : string
val init : state
val apply_update : state -> update -> state
val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit
