(** A max register: a simple monotone quantitative object.

    [update v] raises the register to at least [v]; the query returns the
    maximum update seen so far (0 initially). Monotone like the batched
    counter, so it exercises the same IVL structure with a non-additive
    merge; useful as a second deterministic object in locality tests. *)

type state = int
type update = int
type query = int (* argument ignored: reads take no parameter *)
type value = int

let name = "max-register"

let init = 0

let apply_update s v =
  if v < 0 then invalid_arg "Max_spec.apply_update: values must be non-negative";
  max s v

let eval_query s _ = s

let compare_value = Int.compare

let commutative_updates = true

let pp_update = Format.pp_print_int
let pp_query ppf _ = Format.pp_print_string ppf ""
let pp_value = Format.pp_print_int
