(** Sequential specifications of quantitative objects (Sections 2.1, 3.1).

    A deterministic quantitative object is given by a state machine whose
    queries return values from a totally ordered domain. Its sequential
    specification contains exactly one history per sequential skeleton; the
    [Tau] functor below implements the paper's τ_H operator, which fills in
    the unique return values. Randomized objects (Section 3.3) are state
    machines whose initial state is drawn from a coin-flip vector; see
    {!module-type-RANDOMIZED}. *)

(** A deterministic quantitative object. *)
module type S = sig
  type state
  type update
  type query
  type value

  val name : string

  val init : state
  (** Initial object state. *)

  val apply_update : state -> update -> state
  (** Sequential effect of an update. *)

  val eval_query : state -> query -> value
  (** Sequential return value of a query; must not mutate. *)

  val compare_value : value -> value -> int
  (** Total order on the return domain. *)

  val commutative_updates : bool
  (** [true] when any permutation of a set of updates yields the same state
      (counters, CountMin). Checkers use this to memoize on update
      {e sets} rather than sequences, which exponentially shrinks their
      search. Declaring [true] wrongly makes checkers unsound; when unsure,
      leave [false]. *)

  val pp_update : Format.formatter -> update -> unit
  val pp_query : Format.formatter -> query -> unit
  val pp_value : Format.formatter -> value -> unit
end

(** A randomized quantitative object: a distribution over deterministic ones,
    indexed by the coin-flip vector (Section 3.3). For a fixed coin the
    object is deterministic, so each coin induces an {!module-type-S}. *)
module type RANDOMIZED = sig
  type coin

  type state
  type update
  type query
  type value

  val name : string
  val init : coin -> state
  val apply_update : state -> update -> state
  val eval_query : state -> query -> value
  val compare_value : value -> value -> int
  val commutative_updates : bool
  val pp_update : Format.formatter -> update -> unit
  val pp_query : Format.formatter -> query -> unit
  val pp_value : Format.formatter -> value -> unit
end

(** Lift a deterministic spec to a (trivially) randomized one. *)
module Lift_randomized (S : S) :
  RANDOMIZED
    with type coin = unit
     and type state = S.state
     and type update = S.update
     and type query = S.query
     and type value = S.value = struct
  type coin = unit

  include S

  let init () = S.init
end

(** Fix the coin of a randomized spec, recovering a deterministic one. *)
module Fix_coin (R : RANDOMIZED) (C : sig
  val coin : R.coin
end) :
  S
    with type state = R.state
     and type update = R.update
     and type query = R.query
     and type value = R.value = struct
  include R

  let init = R.init C.coin
end

(** The τ operator and sequential execution, aware of multi-object histories:
    each object id evolves its own copy of the state, which is what makes the
    locality theorem (Theorem 1) expressible. *)
module Tau (S : S) = struct
  module Int_map = Map.Make (Int)

  type states = S.state Int_map.t

  let initial_states : states = Int_map.empty

  let state_of states obj =
    match Int_map.find_opt obj states with Some s -> s | None -> S.init

  let step states (op : (S.update, S.query, S.value) Hist.Op.t) =
    match op.Hist.Op.kind with
    | Hist.Op.Update u ->
        Int_map.add op.obj (S.apply_update (state_of states op.obj) u) states
    | Hist.Op.Query _ -> states

  let eval states (op : (S.update, S.query, S.value) Hist.Op.t) =
    match op.Hist.Op.kind with
    | Hist.Op.Query q -> Some (S.eval_query (state_of states op.obj) q)
    | Hist.Op.Update _ -> None

  (* τ: run the skeleton sequentially, filling each query's unique return. *)
  let tau ops =
    let _, filled =
      List.fold_left
        (fun (states, acc) op ->
          match eval states op with
          | Some v -> (step states op, Hist.Op.with_return op v :: acc)
          | None -> (step states op, Hist.Op.erase_return op :: acc))
        (initial_states, []) ops
    in
    List.rev filled

  (* Final states after executing a sequence of operations. *)
  let run ops = List.fold_left step initial_states ops

  (* The unique sequential history for a sequential skeleton. *)
  let tau_history h =
    match Hist.History.sequential_ops h with
    | None -> invalid_arg "Tau.tau_history: history is not sequential"
    | Some ops -> Hist.History.of_sequential_ops (tau ops)

  (* Does a given sequential history belong to the specification? *)
  let satisfies ops =
    let filled = tau ops in
    List.for_all2
      (fun op filled_op ->
        match (op.Hist.Op.ret, filled_op.Hist.Op.ret) with
        | None, _ -> true
        | Some v, Some v' -> S.compare_value v v' = 0
        | Some _, None -> false)
      ops filled
end
