(** Sequential specification of the CountMin sketch, CM(c#) (Section 5).

    The coin-flip vector is the hash-function family: once drawn, the sketch
    is a deterministic state machine — a d×w matrix of counters where
    [update a] increments [c\[i\]\[h_i(a)\]] for every row and [query a]
    returns [min_i c\[i\]\[h_i(a)\]]. This module is the {e specification}
    (persistent state, used by checkers and τ); the runnable sequential
    sketch lives in [Sketches.Countmin] and the concurrent one in
    [Conc.Pcm]. *)

module Cell_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type coin = Hashing.Family.t

type state = { family : Hashing.Family.t; cells : int Cell_map.t }

type update = int (* the element *)
type query = int (* the element *)
type value = int

let name = "countmin"

let init family = { family; cells = Cell_map.empty }

let cell s row col =
  match Cell_map.find_opt (row, col) s.cells with Some c -> c | None -> 0

let apply_update s a =
  let d = Hashing.Family.rows s.family in
  let rec bump cells i =
    if i >= d then cells
    else
      let col = Hashing.Family.hash s.family ~row:i a in
      let c = match Cell_map.find_opt (i, col) cells with Some c -> c | None -> 0 in
      bump (Cell_map.add (i, col) (c + 1) cells) (i + 1)
  in
  { s with cells = bump s.cells 0 }

let eval_query s a =
  let d = Hashing.Family.rows s.family in
  let rec min_row i acc =
    if i >= d then acc
    else
      let col = Hashing.Family.hash s.family ~row:i a in
      min_row (i + 1) (min acc (cell s i col))
  in
  min_row 0 max_int

let compare_value = Int.compare

(* Per-cell increments commute. *)
let commutative_updates = true

let pp_update = Format.pp_print_int
let pp_query = Format.pp_print_int
let pp_value = Format.pp_print_int

(** [Fixed] pins the coins, yielding the deterministic spec CM(c#) that
    checkers consume. *)
module Fixed (C : sig
  val family : Hashing.Family.t
end) : Quantitative.S with type update = int and type query = int and type value = int =
struct
  type nonrec state = state
  type nonrec update = update
  type nonrec query = query
  type nonrec value = value

  let name = name
  let init = init C.family
  let apply_update = apply_update
  let eval_query = eval_query
  let compare_value = compare_value
  let commutative_updates = commutative_updates
  let pp_update = pp_update
  let pp_query = pp_query
  let pp_value = pp_value
end
