(** Sequential specification of the Morris approximate counter.

    Morris ("Counting large numbers of events in small registers", CACM
    1978) keeps an exponent [x] and increments it on each event with
    probability 2^{-x}; the estimate is 2^x - 1, which is unbiased. It is the
    classic (ε,δ)-bounded counter referenced by the paper ([27]) and our
    second transfer-theorem case study (experiment E10).

    As a randomized spec, the coin vector is an infinite sequence of uniform
    floats, realised purely: coin [k] is a hash of [seed + k], so the state
    machine is deterministic given the seed and the state stays persistent
    (checkers need to branch on it). *)

type coin = int64 (* seed of the coin-flip vector *)

type state = {
  seed : int64;
  exponent : int;
  consumed : int; (* position in the coin vector *)
}

type update = unit
type query = unit
type value = float

let name = "morris-counter"

let init seed = { seed; exponent = 0; consumed = 0 }

(* The k-th coin of vector [seed]: uniform in [0,1), via SplitMix64's mix. *)
let coin_at seed k =
  let g = Rng.Splitmix.create (Int64.add seed (Int64.of_int k)) in
  Rng.Splitmix.next_float g

let apply_update s () =
  let u = coin_at s.seed s.consumed in
  let bump = u < 1.0 /. float_of_int (1 lsl s.exponent) in
  {
    s with
    exponent = (if bump then s.exponent + 1 else s.exponent);
    consumed = s.consumed + 1;
  }

let eval_query s () = float_of_int ((1 lsl s.exponent) - 1)

let compare_value = Float.compare

(* All updates are identical, so any permutation of them reaches the same
   state for a fixed coin vector. *)
let commutative_updates = true

let pp_update ppf () = Format.pp_print_string ppf ""
let pp_query ppf () = Format.pp_print_string ppf ""
let pp_value ppf v = Format.fprintf ppf "%g" v

module Fixed (C : sig
  val seed : int64
end) : Quantitative.S with type update = unit and type query = unit and type value = float =
struct
  type nonrec state = state
  type nonrec update = update
  type nonrec query = query
  type nonrec value = value

  let name = name
  let init = init C.seed
  let apply_update = apply_update
  let eval_query = eval_query
  let compare_value = compare_value
  let commutative_updates = commutative_updates
  let pp_update = pp_update
  let pp_query = pp_query
  let pp_value = pp_value
end
