(** A counter supporting increments {e and} decrements.

    Section 3.4 of the paper uses this object to show that "a query sees some
    subset of concurrent updates" (regular-like semantics) is weaker than IVL
    once values are not monotone: seeing only the decrement of a concurrent
    increment/decrement pair produces a value below every linearization. Our
    tests reproduce exactly that separation. *)

type state = int
type update = int (* signed delta *)
type query = int (* argument ignored: reads take no parameter *)
type value = int

let name = "updown-counter"

let init = 0

let apply_update s v = s + v

let eval_query s _ = s

let compare_value = Int.compare

let commutative_updates = true

let pp_update ppf v = Format.fprintf ppf "%+d" v
let pp_query ppf _ = Format.pp_print_string ppf ""
let pp_value = Format.pp_print_int
