(** Sequential specification of the CountMin sketch, CM(c#) (Section 5).

    A {!Spec.Quantitative.RANDOMIZED} object whose coin-flip vector is the
    hash-function family: once drawn, the sketch is a deterministic state
    machine (persistent d×w counter map). [Fixed] pins the coins, yielding
    the deterministic spec the checkers consume. The runnable mutable sketch
    is [Sketches.Countmin]; both take the same family, so a concurrent run
    can be validated against the specification instance it raced against. *)

type coin = Hashing.Family.t

type state

type update = int (* the element *)
type query = int (* the element *)
type value = int

val name : string
val init : coin -> state
val apply_update : state -> update -> state
val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit

(** Pin the coins: the deterministic CM(c#). *)
module Fixed (_ : sig
  val family : Hashing.Family.t
end) : Quantitative.S with type update = int and type query = int and type value = int
