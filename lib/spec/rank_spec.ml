(** The ideal rank oracle: exact rank queries over the stream's multiset.

    [update x] appends [x]; [query x] returns |{y in stream : y ≤ x}|. This
    is the deterministic ideal specification the Quantiles sketch
    approximates within ±εn (the paper's reference [1]); the concurrent
    striped quantiles sketch (experiment E11) is measured against it. Ranks
    are monotone in stream growth, which is what puts quantile sketches in
    IVL's sweet spot. *)

module Int_map = Map.Make (Int)

type state = int Int_map.t (* element -> multiplicity *)
type update = int
type query = int
type value = int

let name = "exact-rank"

let init = Int_map.empty

let apply_update s x =
  Int_map.update x (function None -> Some 1 | Some c -> Some (c + 1)) s

let eval_query s x =
  Int_map.fold (fun y c acc -> if y <= x then acc + c else acc) s 0

let compare_value = Int.compare

let commutative_updates = true

let pp_update = Format.pp_print_int
let pp_query = Format.pp_print_int
let pp_value = Format.pp_print_int
