(** Sequential specification of the batched counter (Section 6).

    [update v] with [v >= 0] adds [v] to the counter; [read] (query) returns
    the sum of all preceding updates, 0 initially. This is the object of
    Algorithm 2, Theorem 11 and the Ω(n) lower bound of Theorem 14. *)

type state = int
type update = int
type query = int (* argument ignored: reads take no parameter *)
type value = int

let name = "batched-counter"

let init = 0

let apply_update s v =
  if v < 0 then invalid_arg "Counter_spec.apply_update: batch must be non-negative";
  s + v

let eval_query s _ = s

let compare_value = Int.compare

(* Addition commutes, so checkers may memoize on update sets. *)
let commutative_updates = true

let pp_update = Format.pp_print_int
let pp_query ppf _ = Format.pp_print_string ppf ""
let pp_value = Format.pp_print_int
