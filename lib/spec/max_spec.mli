(** A max register: a second monotone quantitative object (update raises the
    value, the read returns the maximum seen; 0 initially). Exercises the
    IVL constructions with a non-additive merge. *)

type state = int
type update = int
type query = int (* ignored *)
type value = int

val name : string
val init : state

val apply_update : state -> update -> state
(** @raise Invalid_argument on a negative value. *)

val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit
