(** Composition of two {e different} quantitative specifications into one.

    Theorem 1 (locality) is about histories over a {e set} of objects, which
    in general have different types. The checkers handle multiple instances
    of one spec natively (object ids keep states disjoint); this functor
    covers the heterogeneous case by forming the tagged sum of two specs:
    every update, query and value carries an [`A]/[`B] tag naming its side,
    and each object id's state is a pair of which only the side its
    operations use ever moves. Locality tests use it to validate Theorem 1
    over, e.g., a batched counter composed with a max register.

    [compare_value] orders all [`A] values before all [`B] values so the
    domain remains totally ordered, as {!Quantitative.S} requires;
    cross-side comparisons never arise in meaningful histories because a
    query's value always has its own object's tag. *)

module Make (S1 : Quantitative.S) (S2 : Quantitative.S) :
  Quantitative.S
    with type update = [ `A of S1.update | `B of S2.update ]
     and type query = [ `A of S1.query | `B of S2.query ]
     and type value = [ `A of S1.value | `B of S2.value ] = struct
  type state = { s1 : S1.state; s2 : S2.state }
  type update = [ `A of S1.update | `B of S2.update ]
  type query = [ `A of S1.query | `B of S2.query ]
  type value = [ `A of S1.value | `B of S2.value ]

  let name = Printf.sprintf "%s*%s" S1.name S2.name

  let init = { s1 = S1.init; s2 = S2.init }

  let apply_update s = function
    | `A u -> { s with s1 = S1.apply_update s.s1 u }
    | `B u -> { s with s2 = S2.apply_update s.s2 u }

  let eval_query s = function
    | `A q -> `A (S1.eval_query s.s1 q)
    | `B q -> `B (S2.eval_query s.s2 q)

  let compare_value a b =
    match (a, b) with
    | `A x, `A y -> S1.compare_value x y
    | `B x, `B y -> S2.compare_value x y
    | `A _, `B _ -> -1
    | `B _, `A _ -> 1

  let commutative_updates = S1.commutative_updates && S2.commutative_updates

  let pp_update ppf = function
    | `A u -> Format.fprintf ppf "A:%a" S1.pp_update u
    | `B u -> Format.fprintf ppf "B:%a" S2.pp_update u

  let pp_query ppf = function
    | `A q -> Format.fprintf ppf "A:%a" S1.pp_query q
    | `B q -> Format.fprintf ppf "B:%a" S2.pp_query q

  let pp_value ppf = function
    | `A v -> Format.fprintf ppf "A:%a" S1.pp_value v
    | `B v -> Format.fprintf ppf "B:%a" S2.pp_value v
end
