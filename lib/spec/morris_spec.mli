(** Sequential specification of the Morris approximate counter as a
    randomized object: the coin vector is an infinite sequence of uniform
    floats realized purely from a seed (coin [k] hashes [seed + k]), so the
    state machine is deterministic given the seed and persistent for the
    checkers. The estimate after the k-th consumed coin is 2^x − 1. *)

type coin = int64 (* seed of the coin-flip vector *)

type state

type update = unit
type query = unit
type value = float

val name : string
val init : coin -> state

val coin_at : int64 -> int -> float
(** The k-th coin of a vector (uniform in [0,1)); exposed for tests. *)

val apply_update : state -> update -> state
val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit

module Fixed (_ : sig
  val seed : int64
end) : Quantitative.S with type update = unit and type query = unit and type value = float
