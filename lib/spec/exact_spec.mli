(** The ideal frequency oracle (exact per-element counts): the deterministic
    sequential specification [I] that CountMin is an (ε,δ)-bounded
    implementation of (Definition 4); Definition 5's v_min/v_max are
    computed against it. *)

module Int_map : Map.S with type key = int

type state = int Int_map.t
type update = int (* the element *)
type query = int (* the element *)
type value = int

val name : string
val init : state
val apply_update : state -> update -> state
val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit
