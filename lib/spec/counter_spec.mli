(** Sequential specification of the batched counter (Section 6): [update v]
    with [v ≥ 0] adds a batch; a read returns the sum of preceding batches.
    The object of Algorithm 2, Theorem 11 and the Ω(n) bound of Theorem 14.
    Satisfies {!Spec.Quantitative.S} with integer-argument reads (the
    argument is ignored), so machine-produced [(int,int,int)] histories
    check directly. *)

type state = int
type update = int
type query = int
type value = int

val name : string
val init : state

val apply_update : state -> update -> state
(** @raise Invalid_argument on a negative batch. *)

val eval_query : state -> query -> value
val compare_value : value -> value -> int

val commutative_updates : bool
(** [true]: addition commutes, enabling checker memoization. *)

val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit
