(** A counter with increments {e and} decrements (signed deltas): the
    Section 3.4 object separating IVL from regular-like "subset of
    concurrent updates" semantics. Non-monotone — use the exact checker,
    not [Ivl.Monotone]. *)

type state = int
type update = int (* signed delta *)
type query = int (* ignored *)
type value = int

val name : string
val init : state
val apply_update : state -> update -> state
val eval_query : state -> query -> value
val compare_value : value -> value -> int
val commutative_updates : bool
val pp_update : Format.formatter -> update -> unit
val pp_query : Format.formatter -> query -> unit
val pp_value : Format.formatter -> value -> unit
