(** The ideal frequency oracle: exact per-element counts.

    This is the deterministic sequential specification [I] that the CountMin
    sketch is an (ε,δ)-bounded implementation of (Definition 4): [update a]
    appends element [a] to the stream, [query a] returns the true frequency
    f_a. Definition 5's v_min/v_max are computed against this spec. *)

module Int_map = Map.Make (Int)

type state = int Int_map.t
type update = int (* the element *)
type query = int (* the element *)
type value = int

let name = "exact-frequency"

let init = Int_map.empty

let apply_update s a =
  Int_map.update a (function None -> Some 1 | Some c -> Some (c + 1)) s

let eval_query s a = match Int_map.find_opt a s with Some c -> c | None -> 0

let compare_value = Int.compare

let commutative_updates = true

let pp_update = Format.pp_print_int
let pp_query = Format.pp_print_int
let pp_value = Format.pp_print_int
