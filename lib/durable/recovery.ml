(* Rebuild the global sketch after a crash: newest decodable checkpoint plus
   a replay of the WAL suffix past its epoch. The result is an intermediate
   value of the pre-crash history by construction — the checkpoint is a
   published prefix, every replayed record was a published merge, and the
   torn tail only ever removes suffix records — which is exactly the IVL
   reading of recovery this module's property tests pin down:

     recovered total ∈ [last checkpoint total, pre-crash published total]

   (no weight is ever invented; at most the unsynced tail is lost). *)

module Make (M : Pipeline.Mergeable.S) = struct
  type report = {
    checkpoint_epoch : int; (* 0 when recovering from an empty state *)
    checkpoint_published : int;
    checkpoints_skipped : int; (* corrupt or undecodable snapshots passed over *)
    wal_segments : int;
    replayed : int; (* WAL records folded into the sketch *)
    skipped : int; (* WAL records at or below the checkpoint epoch *)
    decode_failures : int; (* enveloped delta blobs M.decode rejected *)
    bytes_truncated : int; (* torn/corrupt WAL tail dropped *)
    truncated_reason : string option;
    recovered_epoch : int;
    recovered_published : int;
  }

  let report_to_string r =
    Printf.sprintf
      "checkpoint epoch %d (published %d, %d skipped); wal: %d segment(s), %d \
       replayed, %d skipped, %d delta decode failure(s), %d byte(s) \
       truncated%s; recovered epoch %d, published %d"
      r.checkpoint_epoch r.checkpoint_published r.checkpoints_skipped
      r.wal_segments r.replayed r.skipped r.decode_failures r.bytes_truncated
      (match r.truncated_reason with
      | Some why -> Printf.sprintf " (%s)" why
      | None -> "")
      r.recovered_epoch r.recovered_published

  (* One-shot export: the report's numbers are scraped as-of this recovery.
     register_fn replaces on re-registration, so a pipeline that recovers
     again simply points the series at the newer report. *)
  let register_metrics reg (r : report) =
    let c name help v = Obs.Registry.counter_fn reg ~help name (fun () -> v) in
    let g name help v =
      Obs.Registry.gauge_fn reg ~help name (fun () -> float_of_int v)
    in
    c "recovery_replayed_total" "WAL records folded in during replay"
      r.replayed;
    c "recovery_skipped_total" "WAL records at or below the checkpoint epoch"
      r.skipped;
    c "recovery_decode_failures_total" "Delta blobs M.decode rejected"
      r.decode_failures;
    c "recovery_checkpoints_skipped_total"
      "Corrupt or undecodable checkpoints passed over" r.checkpoints_skipped;
    c "recovery_bytes_truncated_total" "Torn or corrupt WAL tail bytes dropped"
      r.bytes_truncated;
    g "recovery_checkpoint_epoch" "Epoch of the checkpoint recovered from"
      r.checkpoint_epoch;
    g "recovery_epoch" "Epoch of the recovered state" r.recovered_epoch;
    g "recovery_published" "Published weight of the recovered state"
      r.recovered_published

  let recover ?metrics ~dir () =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      Error (Printf.sprintf "Durable.recover: no such directory %s" dir)
    else begin
      (* Newest checkpoint whose sketch image still decodes; frame-valid but
         M-undecodable snapshots degrade to the previous one. *)
      let frame_valid, corrupt = Checkpoint.candidates ~dir in
      let rec pick skipped = function
        | [] -> (M.create (), 0, 0, skipped)
        | (c : Checkpoint.snapshot) :: older -> (
            match M.decode c.blob with
            | Ok sketch -> (sketch, c.epoch, c.published, skipped)
            | Error _ -> pick (skipped + 1) older)
      in
      let sketch, ckpt_epoch, ckpt_published, skipped_ckpts =
        pick corrupt frame_valid
      in
      let wal = Wal.read ~dir in
      let global = ref sketch in
      let published = ref ckpt_published in
      let epoch = ref ckpt_epoch in
      let replayed = ref 0 and skipped = ref 0 and decode_failures = ref 0 in
      List.iter
        (fun (r : Wal.record) ->
          if r.epoch <= ckpt_epoch then incr skipped
          else
            match M.decode r.blob with
            | Ok delta ->
                global := M.merge !global delta;
                published := !published + r.weight;
                epoch := r.epoch;
                incr replayed
            | Error _ -> incr decode_failures)
        wal.records;
      let report =
        {
          checkpoint_epoch = ckpt_epoch;
          checkpoint_published = ckpt_published;
          checkpoints_skipped = skipped_ckpts;
          wal_segments = wal.segments;
          replayed = !replayed;
          skipped = !skipped;
          decode_failures = !decode_failures;
          bytes_truncated = wal.bytes_truncated;
          truncated_reason = wal.truncated_reason;
          recovered_epoch = !epoch;
          recovered_published = !published;
        }
      in
      (match metrics with
      | Some reg -> register_metrics reg report
      | None -> ());
      Ok (!global, report)
    end

  (* Recovery for a pipeline that will write MORE log into the same dir.
     Plain [recover] leaves the old segments in place, and the
     longest-valid-prefix rule makes that a trap: a torn tail in an old
     segment would truncate every record a new incarnation appends after it.
     Compaction closes the hazard — checkpoint the recovered state
     atomically, then drop all replayed segments — so the next incarnation
     starts from a clean log whose every future record survives its own
     crashes independently of past ones. The checkpoint is installed before
     any segment is removed: a crash between the two steps leaves both the
     snapshot and the (now redundant) segments, which a re-run simply
     recovers and compacts again. *)
  let recover_compact ?metrics ?keep ~dir () =
    match recover ?metrics ~dir () with
    | Error _ as e -> e
    | Ok (global, report) ->
        Checkpoint.write ?keep ~dir ~epoch:report.recovered_epoch
          ~published:report.recovered_published ~blob:(M.encode global) ();
        ignore (Wal.remove_segments ~dir);
        Ok (global, report)
end
