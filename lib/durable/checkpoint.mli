(** Epoch-stamped full-sketch snapshots, atomically installed.

    A checkpoint bounds recovery's replay work: restart folds the newest
    decodable snapshot and replays only WAL records past its epoch. Each
    snapshot is one checksummed {!Wire.Codec} frame (kind [checkpoint])
    written via temp file + [fsync] + atomic rename, so a crash leaves
    either the old checkpoint set or the old set plus one complete new file
    — never a torn file under a real checkpoint name. *)

type snapshot = { epoch : int; published : int; blob : Bytes.t }

val write :
  ?keep:int -> dir:string -> epoch:int -> published:int -> blob:Bytes.t ->
  unit -> unit
(** Install a snapshot (directory created if missing) and prune all but the
    [keep] (default 2) newest — keeping more than one means a corrupt newest
    checkpoint degrades recovery to the previous epoch instead of to empty.
    @raise Invalid_argument if [keep < 1]. *)

val candidates : dir:string -> snapshot list * int
(** Frame-valid snapshots newest-first, plus the count of corrupt checkpoint
    files passed over. Sketch-level decodability is the caller's check
    ([Durable.Recovery] walks the list until [M.decode] succeeds). *)

val latest : dir:string -> snapshot option
(** Head of {!candidates}. *)
