(** Write-ahead delta log for the ingestion pipeline.

    Every delta the merger folds into the global sketch is first recorded
    here as one {!Wire.Codec} frame (kind [wal-record]) enveloping the
    delta's already-framed blob plus the merge epoch and stream weight.
    Segments are append-only files rotated at a size threshold; recovery
    ([Durable.Recovery]) replays the suffix past the newest checkpoint.

    The reader implements one crash rule: {e the log is the longest valid
    prefix}. A torn tail (crash mid-append), a checksum-corrupt record, a
    foreign frame kind, or an epoch going backwards all end the log at that
    byte — everything after it (later segments included) is reported as
    truncated, never replayed. *)

type fsync_policy =
  | Always  (** fsync every append: lose nothing, pay a disk flush per merge. *)
  | Every_n of int  (** fsync every n appends: loss window of n merges. *)
  | Never  (** leave flushing to the OS: crash may lose the page-cache tail. *)

val policy_to_string : fsync_policy -> string

val validate_dir :
  ?must_exist:bool -> dir:string -> unit -> (unit, string) result
(** Pre-flight a WAL directory path and return a printable diagnostic
    instead of letting [Sys_error]/[Unix_error] escape from deep inside
    {!create} or {!read}. With [must_exist] (the default, the reader's
    contract) the directory must exist, be a directory, and be readable;
    with [~must_exist:false] (a writer about to {!create} it) a missing
    directory is fine as long as its parent exists and is writable. *)

val remove_segments : dir:string -> int
(** Delete every [wal-*.seg] file in [dir] (other files, e.g. checkpoints,
    untouched) and return how many were removed. A missing directory removes
    nothing. Used by [Durable.Recovery.recover_compact] after the recovered
    state has been checkpointed: clearing replayed segments keeps a torn
    tail from a previous incarnation from truncating records a {e later}
    incarnation appends (the longest-valid-prefix rule cuts everything after
    the first bad frame, later segments included). *)

(** {2 Writer} — single-threaded; the pipeline's merger is its one caller. *)

type writer

val create :
  ?segment_bytes:int ->
  ?fsync:fsync_policy ->
  ?metrics:Obs.Registry.t ->
  dir:string ->
  unit ->
  writer
(** Open a fresh segment in [dir] (created if missing), numbered after any
    existing segments — a recovering writer never appends into a possibly
    torn file. Defaults: 4 MiB segments, [Every_n 64].

    [metrics] exports the writer: [wal_appends_total],
    [wal_rotations_total], [wal_segment_index], [wal_unsynced] (the live
    fsync-loss window), and a [wal_fsync_seconds] latency summary observed
    at every durability point (policy-driven appends, rotations, explicit
    {!sync}, {!close}).
    @raise Invalid_argument on non-positive [segment_bytes] or [Every_n]. *)

val append : writer -> epoch:int -> weight:int -> blob:Bytes.t -> unit
(** Append one record; rotates and applies the fsync policy as configured.
    Epochs must be strictly increasing — the reader treats a non-monotone
    epoch as corruption.
    @raise Invalid_argument on a stale epoch, negative weight, or a closed
    writer. *)

val sync : writer -> unit
(** Force an fsync now, regardless of policy. *)

val close : writer -> unit
(** Flush, fsync and close the current segment. Idempotent. *)

val appended : writer -> int
val rotations : writer -> int
val segment_index : writer -> int

(** {2 Reader} *)

type record = { epoch : int; weight : int; blob : Bytes.t }

type read_report = {
  records : record list;  (** the longest valid prefix, in epoch order *)
  segments : int;  (** segment files present *)
  bytes_truncated : int;  (** bytes past the first bad frame, all segments *)
  truncated_reason : string option;  (** why the log was cut, if it was *)
}

val read : dir:string -> read_report
(** Scan every segment in order and return the longest valid prefix. A
    missing directory reads as an empty log. Never raises on corrupt data —
    corruption is truncation, reported in the result. *)
