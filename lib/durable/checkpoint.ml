(* Epoch-stamped full-sketch snapshots. Each checkpoint is a single Codec
   frame (kind checkpoint) holding the epoch, the published total at that
   epoch, and the encoded global sketch; it is written to a temp file,
   flushed, fsynced, and renamed into place, so a crash at any instant
   leaves either the previous set of checkpoints or the previous set plus
   one complete new one — never a half-written file under the real name.
   Recovery scans newest-first and takes the first frame-valid snapshot,
   so a corrupt newest checkpoint degrades to the one before it. *)

type snapshot = { epoch : int; published : int; blob : Bytes.t }

let file_name epoch = Printf.sprintf "ckpt-%016d.ckpt" epoch

let epoch_of name =
  if
    String.length name = 26
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".ckpt"
  then int_of_string_opt (String.sub name 5 16)
  else None

let checkpoints_of dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         match epoch_of n with Some e -> Some (e, n) | None -> None)
  |> List.sort (fun a b -> compare b a) (* newest first *)

let encode { epoch; published; blob } =
  Wire.Codec.encode ~kind:Wire.Codec.checkpoint_kind (fun b ->
      Wire.Codec.int_ b epoch;
      Wire.Codec.int_ b published;
      Wire.Codec.bytes_ b blob)

let decode frame =
  Wire.Codec.decode ~kind:Wire.Codec.checkpoint_kind
    (fun r ->
      let epoch = Wire.Codec.read_int r in
      let published = Wire.Codec.read_int r in
      if published < 0 then Wire.Codec.corrupt "negative published %d" published;
      let blob = Wire.Codec.read_bytes r in
      { epoch; published; blob })
    frame

let write ?(keep = 2) ~dir ~epoch ~published ~blob () =
  if keep < 1 then invalid_arg "Checkpoint.write: keep must be >= 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let frame = encode { epoch; published; blob } in
  let final = Filename.concat dir (file_name epoch) in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_bytes oc frame;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp final;
  (* Prune old checkpoints past the retention count; best-effort. *)
  checkpoints_of dir
  |> List.filteri (fun i _ -> i >= keep)
  |> List.iter (fun (_, n) -> try Sys.remove (Filename.concat dir n) with _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Newest-first frame-valid snapshots plus the count of corrupt files passed
   over. Half-written [.tmp] files never match the name filter, so an
   interrupted write is invisible here. *)
let candidates ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then ([], 0)
  else
    List.fold_left
      (fun (good, bad) (_, name) ->
        match decode (Bytes.of_string (read_file (Filename.concat dir name))) with
        | Ok s -> (s :: good, bad)
        | Error _ -> (good, bad + 1)
        | exception Sys_error _ -> (good, bad + 1))
      ([], 0) (checkpoints_of dir)
    |> fun (good, bad) -> (List.rev good, bad)

let latest ~dir =
  match candidates ~dir with s :: _, _ -> Some s | [], _ -> None
