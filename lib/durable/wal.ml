(* Write-ahead delta log: every delta the merger publishes is appended to a
   segment file as one Codec frame (kind wal-record) enveloping the
   already-framed sketch blob, stamped with the epoch the merge received and
   the stream weight it carries. Segments rotate at a size threshold so a
   long-lived pipeline never owns one unbounded file, and so checkpoint-aware
   readers could drop whole prefixes wholesale.

   Durability is a dial, not a boolean: [Always] fsyncs every append (lose
   nothing, pay a disk round-trip per merge), [Every_n] bounds the loss
   window to n merges, [Never] leaves flushing to the OS (crash loses the
   page-cache tail — which recovery's torn-tail truncation absorbs; the
   envelope guarantee never depends on the policy, only the loss window
   does). *)

type fsync_policy = Always | Every_n of int | Never

let policy_to_string = function
  | Always -> "always"
  | Every_n n -> Printf.sprintf "every-%d" n
  | Never -> "never"

let segment_name i = Printf.sprintf "wal-%08d.seg" i

let segment_index name =
  if
    String.length name = 16
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 8)
  else None

let segments_of dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         match segment_index n with Some i -> Some (i, n) | None -> None)
  |> List.sort compare

(* Friendly pre-flight for CLI entry points: turn the Sys_error/Unix_error a
   bad path would raise deep inside create/read into a plain diagnostic the
   caller can print and exit with. [must_exist] is the reader's contract
   (recovering from nothing is a user error); a writer only needs a creatable
   path — an existing parent it can write into. *)
let validate_dir ?(must_exist = true) ~dir () =
  if Sys.file_exists dir then
    if not (Sys.is_directory dir) then
      Error (Printf.sprintf "%s exists but is not a directory" dir)
    else
      match Sys.readdir dir with
      | _ -> Ok ()
      | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" dir msg)
  else if must_exist then Error (Printf.sprintf "no such directory: %s" dir)
  else
    let parent = Filename.dirname dir in
    if not (Sys.file_exists parent) then
      Error
        (Printf.sprintf "cannot create %s: parent directory %s does not exist" dir
           parent)
    else if not (Sys.is_directory parent) then
      Error (Printf.sprintf "cannot create %s: %s is not a directory" dir parent)
    else
      match Unix.access parent [ Unix.W_OK; Unix.X_OK ] with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot create %s: %s is not writable (%s)" dir parent
               (Unix.error_message e))

let remove_segments ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    let segs = segments_of dir in
    List.iter (fun (_, name) -> Sys.remove (Filename.concat dir name)) segs;
    List.length segs

(* ------------------------------ writer ------------------------------ *)

type writer = {
  dir : string;
  segment_bytes : int;
  fsync : fsync_policy;
  mutable oc : out_channel;
  mutable seg_index : int;
  mutable seg_size : int;
  mutable unsynced : int; (* appends since the last fsync *)
  mutable last_epoch : int;
  mutable appended : int;
  mutable rotations : int;
  mutable closed : bool;
  fsync_timer : Obs.Timer.t option;
}

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Every durability point goes through here so the fsync latency summary
   sees all of them: policy-driven appends, rotations, explicit syncs. *)
let writer_fsync w =
  match w.fsync_timer with
  | None -> fsync_oc w.oc
  | Some tm -> Obs.Timer.time tm (fun () -> fsync_oc w.oc)

let open_segment w i =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_append; Open_binary ]
      0o644
      (Filename.concat w.dir (segment_name i))
  in
  w.oc <- oc;
  w.seg_index <- i;
  w.seg_size <- 0

let create ?(segment_bytes = 4 * 1024 * 1024) ?(fsync = Every_n 64) ?metrics
    ~dir () =
  if segment_bytes <= 0 then
    invalid_arg "Wal.create: segment_bytes must be positive";
  (match fsync with
  | Every_n n when n <= 0 -> invalid_arg "Wal.create: Every_n must be positive"
  | _ -> ());
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (* Never append into an existing segment: its tail may be torn from a
     previous crash, and a fresh segment keeps the longest-valid-prefix scan
     rule sound without a repair pass. *)
  let next =
    match List.rev (segments_of dir) with (i, _) :: _ -> i + 1 | [] -> 0
  in
  let w =
    {
      dir;
      segment_bytes;
      fsync;
      oc = stdout (* replaced below *);
      seg_index = next;
      seg_size = 0;
      unsynced = 0;
      last_epoch = min_int;
      appended = 0;
      rotations = 0;
      closed = false;
      fsync_timer =
        Option.map
          (fun reg ->
            Obs.Registry.timer reg
              ~help:"Seconds per WAL fsync (appends, rotations, syncs)"
              "wal_fsync_seconds")
          metrics;
    }
  in
  (match metrics with
  | Some reg ->
      Obs.Registry.counter_fn reg ~help:"Records appended to the WAL"
        "wal_appends_total" (fun () -> w.appended);
      Obs.Registry.counter_fn reg ~help:"WAL segment rotations"
        "wal_rotations_total" (fun () -> w.rotations);
      Obs.Registry.gauge_fn reg ~help:"Index of the segment being written"
        "wal_segment_index" (fun () -> float_of_int w.seg_index);
      Obs.Registry.gauge_fn reg
        ~help:"Appends not yet covered by an fsync (the live loss window)"
        "wal_unsynced" (fun () -> float_of_int w.unsynced)
  | None -> ());
  open_segment w next;
  w

let encode_record ~epoch ~weight ~blob =
  Wire.Codec.encode ~kind:Wire.Codec.wal_record_kind (fun b ->
      Wire.Codec.int_ b epoch;
      Wire.Codec.int_ b weight;
      Wire.Codec.bytes_ b blob)

let rotate w =
  writer_fsync w;
  close_out w.oc;
  w.rotations <- w.rotations + 1;
  open_segment w (w.seg_index + 1)

let append w ~epoch ~weight ~blob =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  if epoch <= w.last_epoch then
    invalid_arg
      (Printf.sprintf "Wal.append: epoch %d not greater than last %d" epoch
         w.last_epoch);
  if weight < 0 then invalid_arg "Wal.append: negative weight";
  w.last_epoch <- epoch;
  let frame = encode_record ~epoch ~weight ~blob in
  if w.seg_size > 0 && w.seg_size + Bytes.length frame > w.segment_bytes then
    rotate w;
  output_bytes w.oc frame;
  w.seg_size <- w.seg_size + Bytes.length frame;
  w.appended <- w.appended + 1;
  w.unsynced <- w.unsynced + 1;
  match w.fsync with
  | Always ->
      writer_fsync w;
      w.unsynced <- 0
  | Every_n n ->
      if w.unsynced >= n then begin
        writer_fsync w;
        w.unsynced <- 0
      end
  | Never -> ()

let sync w =
  if not w.closed then begin
    writer_fsync w;
    w.unsynced <- 0
  end

let close w =
  if not w.closed then begin
    w.closed <- true;
    writer_fsync w;
    close_out w.oc
  end

let appended w = w.appended
let rotations w = w.rotations
let segment_index w = w.seg_index

(* ------------------------------ reader ------------------------------ *)

type record = { epoch : int; weight : int; blob : Bytes.t }

type read_report = {
  records : record list;
  segments : int;
  bytes_truncated : int;
  truncated_reason : string option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let decode_record frame =
  Wire.Codec.decode ~kind:Wire.Codec.wal_record_kind
    (fun r ->
      let epoch = Wire.Codec.read_int r in
      let weight = Wire.Codec.read_int r in
      if weight < 0 then Wire.Codec.corrupt "negative weight %d" weight;
      let blob = Wire.Codec.read_bytes r in
      { epoch; weight; blob })
    frame

(* The log is the longest valid prefix — across segment boundaries too: the
   first bad frame (torn, checksum-corrupt, wrong kind, or epoch going
   backwards) truncates everything after it, later segments included, because
   replay order past a hole cannot be trusted. *)
let read ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    { records = []; segments = 0; bytes_truncated = 0; truncated_reason = None }
  else begin
    let segs = segments_of dir in
    let records = ref [] in
    let last_epoch = ref min_int in
    let truncated = ref None in
    let bytes_truncated = ref 0 in
    List.iter
      (fun (_, name) ->
        let raw = Bytes.unsafe_of_string (read_file (Filename.concat dir name)) in
        match !truncated with
        | Some _ ->
            (* Already cut: everything later is dropped wholesale. *)
            bytes_truncated := !bytes_truncated + Bytes.length raw
        | None ->
            let { Wire.Segment.frames; tail } = Wire.Segment.scan raw in
            let off = ref 0 in
            List.iter
              (fun frame ->
                (match !truncated with
                | Some _ -> ()
                | None -> (
                    match decode_record frame with
                    | Ok r when r.epoch > !last_epoch ->
                        last_epoch := r.epoch;
                        records := r :: !records
                    | Ok r ->
                        truncated :=
                          Some
                            (Printf.sprintf
                               "%s: epoch %d not increasing at offset %d" name
                               r.epoch !off)
                    | Error e ->
                        truncated :=
                          Some
                            (Printf.sprintf "%s: bad record at offset %d: %s"
                               name !off
                               (Wire.Codec.error_to_string e))));
                (match !truncated with
                | Some _ -> bytes_truncated := !bytes_truncated + Bytes.length frame
                | None -> ());
                off := !off + Bytes.length frame)
              frames;
            (match tail with
            | Wire.Segment.Clean -> ()
            | Wire.Segment.Torn { dropped_bytes; reason; _ } ->
                bytes_truncated := !bytes_truncated + dropped_bytes;
                if !truncated = None then
                  truncated := Some (Printf.sprintf "%s: %s" name reason)))
      segs;
    {
      records = List.rev !records;
      segments = List.length segs;
      bytes_truncated = !bytes_truncated;
      truncated_reason = !truncated;
    }
  end
