(** Crash recovery: newest checkpoint + WAL suffix replay.

    A recovered pipeline is an {e intermediate-value} object in exactly the
    paper's sense: the state that comes back after a crash is some published
    prefix of the pre-crash history — the checkpoint is such a prefix, every
    replayed WAL record was a published merge, and torn-tail truncation only
    removes suffix records. The envelope guarantee, validated by property
    tests over randomized crash points and byte-level torn writes:

    {v recovered published ∈ [checkpoint published, pre-crash published] v}

    No weight is ever invented; at most the unsynced WAL tail is lost (the
    fsync policy bounds that window, {!Wal.fsync_policy}). *)

module Make (M : Pipeline.Mergeable.S) : sig
  type report = {
    checkpoint_epoch : int;  (** 0 when recovering without a checkpoint *)
    checkpoint_published : int;
    checkpoints_skipped : int;  (** corrupt/undecodable snapshots passed over *)
    wal_segments : int;
    replayed : int;  (** WAL records folded into the sketch *)
    skipped : int;  (** WAL records at or below the checkpoint epoch *)
    decode_failures : int;  (** enveloped delta blobs [M.decode] rejected *)
    bytes_truncated : int;  (** torn/corrupt WAL tail dropped *)
    truncated_reason : string option;
    recovered_epoch : int;
    recovered_published : int;
  }

  val report_to_string : report -> string

  val recover :
    ?metrics:Obs.Registry.t -> dir:string -> unit -> (M.t * report, string) result
  (** Rebuild the global sketch from [dir] (shared by WAL segments and
      checkpoints). Corrupt data degrades — truncated tail, older checkpoint,
      empty sketch — rather than failing; [Error] only for a missing
      directory. The sketch parameters baked into [M] (hash family seeds,
      dimensions) must match the writing pipeline's, exactly as any two
      mergeable deltas must.

      [metrics] exports the report on success ([recovery_replayed_total],
      [recovery_skipped_total], [recovery_decode_failures_total],
      [recovery_checkpoints_skipped_total], [recovery_bytes_truncated_total],
      [recovery_checkpoint_epoch], [recovery_epoch],
      [recovery_published]); a later recovery into the same registry
      replaces the series with its newer report. *)

  val recover_compact :
    ?metrics:Obs.Registry.t ->
    ?keep:int ->
    dir:string ->
    unit ->
    (M.t * report, string) result
  (** {!recover}, then make the directory safe for a {e new} writer:
      checkpoint the recovered state (atomic install, [keep] as in
      {!Checkpoint.write}) and delete the replayed WAL segments. Without
      this, a torn tail left in an old segment would — by the
      longest-valid-prefix rule — truncate every record a later incarnation
      appends after it. Crash-safe: the checkpoint lands before any segment
      is removed, so an interrupted compaction re-recovers to the same
      state. This is the restart step of a soak round ([Workload.Soak]). *)
end
