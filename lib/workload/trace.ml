(* Phased, replayable workload traces.

   Determinism contract: every sampler below draws only from a generator
   seeded as [phase_seed spec.seed phase_index]. No wall clock, no global
   RNG, no dependence on domain identity — so materialization is a pure
   function of (seed, phase list) and replays identically on any thread of
   any run. The on-disk format freezes the materialized operations too,
   making replay independent even of future generator changes. *)

type shape =
  | Uniform of { universe : int }
  | Zipf of { universe : int; skew : float }
  | Drift of { universe : int; s0 : float; s1 : float; steps : int }
  | Burst of { universe : int; burst : int }
  | Hot_flip of { universe : int; hot_ratio : float; flip_every : int }
  | Adversarial of { universe : int }
  | Recorded of { universe : int }

type rate =
  | Unlimited
  | Fixed of float
  | Diurnal of { mean : float; amplitude : float; period : float }

type phase = {
  name : string;
  ops : int;
  query_ratio : float;
  rate : rate;
  shape : shape;
}

type spec = { seed : int64; phases : phase list }

let format_version = 1
let block_ops = 65_536

let total_ops spec = List.fold_left (fun acc p -> acc + p.ops) 0 spec.phases

let universe_of = function
  | Uniform { universe }
  | Zipf { universe; _ }
  | Drift { universe; _ }
  | Burst { universe; _ }
  | Hot_flip { universe; _ }
  | Adversarial { universe }
  | Recorded { universe } ->
      universe

let validate_phase i p =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let where = Printf.sprintf "phase %d (%s)" i p.name in
  if p.ops < 0 then fail "%s: negative op count %d" where p.ops
  else if p.query_ratio < 0.0 || p.query_ratio > 1.0 then
    fail "%s: query_ratio %g outside [0,1]" where p.query_ratio
  else if universe_of p.shape <= 0 then fail "%s: empty key universe" where
  else
    let shape_ok =
      match p.shape with
      | Uniform _ | Adversarial _ | Recorded _ -> Ok ()
      | Zipf { skew; _ } ->
          if skew < 0.0 then fail "%s: negative zipf skew %g" where skew else Ok ()
      | Drift { s0; s1; steps; _ } ->
          if s0 < 0.0 || s1 < 0.0 then fail "%s: negative drift skew" where
          else if steps <= 0 then fail "%s: drift needs steps > 0" where
          else Ok ()
      | Burst { burst; _ } ->
          if burst <= 0 then fail "%s: burst length must be positive" where else Ok ()
      | Hot_flip { hot_ratio; flip_every; _ } ->
          if hot_ratio < 0.0 || hot_ratio > 1.0 then
            fail "%s: hot_ratio %g outside [0,1]" where hot_ratio
          else if flip_every <= 0 then fail "%s: flip_every must be positive" where
          else Ok ()
    in
    match shape_ok with
    | Error _ as e -> e
    | Ok () -> (
        match p.rate with
        | Unlimited -> Ok ()
        | Fixed r ->
            if r <= 0.0 then fail "%s: fixed rate must be positive" where else Ok ()
        | Diurnal { mean; amplitude; period } ->
            if mean <= 0.0 then fail "%s: diurnal mean rate must be positive" where
            else if amplitude < 0.0 || amplitude > 1.0 then
              fail "%s: diurnal amplitude %g outside [0,1]" where amplitude
            else if period <= 0.0 then fail "%s: diurnal period must be positive" where
            else Ok ())

let validate spec =
  let rec go i = function
    | [] -> Ok ()
    | p :: rest -> ( match validate_phase i p with Ok () -> go (i + 1) rest | e -> e)
  in
  if spec.phases = [] then Error "trace has no phases" else go 0 spec.phases

(* Golden-ratio increment (as in SplitMix itself) keeps per-phase seeds
   decorrelated even for adjacent phase indices and small trace seeds. *)
let phase_seed seed i =
  Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

(* ---------------------------- materialization ---------------------------- *)

let keys_of_phase g p =
  match p.shape with
  | Recorded _ ->
      invalid_arg
        (Printf.sprintf
           "Trace.materialize: phase %s holds recorded operations; replay them from \
            the trace file"
           p.name)
  | Uniform { universe } -> Array.init p.ops (fun _ -> Rng.Splitmix.next_int g universe)
  | Adversarial _ -> Array.make p.ops 0
  | Zipf { universe; skew } ->
      let z = Zipf.create ~n:universe ~s:skew in
      Array.init p.ops (fun _ -> Zipf.sample z g)
  | Drift { universe; s0; s1; steps } ->
      (* Segment boundaries recompute the CDF; within a segment the skew is
         constant, so cost is O(steps * universe + ops log universe). *)
      let seg_len = (p.ops + steps - 1) / max 1 steps in
      let z = ref None in
      Array.init p.ops (fun i ->
          (if seg_len = 0 || i mod seg_len = 0 then
             let k = if seg_len = 0 then 0 else i / seg_len in
             let frac = if steps <= 1 then 0.0 else float_of_int k /. float_of_int (steps - 1) in
             let s = s0 +. ((s1 -. s0) *. frac) in
             z := Some (Zipf.create ~n:universe ~s));
          match !z with
          | Some zz -> Zipf.sample zz g
          | None -> 0)
  | Burst { universe; burst } ->
      let current = ref 0 in
      Array.init p.ops (fun i ->
          if i mod burst = 0 then current := Rng.Splitmix.next_int g universe;
          !current)
  | Hot_flip { universe; hot_ratio; flip_every } ->
      let hot = ref 0 in
      Array.init p.ops (fun i ->
          if i mod flip_every = 0 then hot := Rng.Splitmix.next_int g universe;
          if Rng.Splitmix.next_float g < hot_ratio then !hot
          else Rng.Splitmix.next_int g universe)

let materialize_phase ~seed i p =
  let g = Rng.Splitmix.create (phase_seed seed i) in
  let keys = keys_of_phase g p in
  (* Roles are drawn after all keys so the key sequence of a phase does not
     shift when only query_ratio changes. *)
  Array.map
    (fun k ->
      if Rng.Splitmix.next_float g < p.query_ratio then Scenario.Query k
      else Scenario.Update k)
    keys

let materialize spec =
  (match validate spec with Ok () -> () | Error m -> invalid_arg ("Trace.materialize: " ^ m));
  Array.of_list (List.mapi (fun i p -> materialize_phase ~seed:spec.seed i p) spec.phases)

(* ------------------------------ wire format ------------------------------ *)

let shape_tag = function
  | Uniform _ -> 0
  | Zipf _ -> 1
  | Drift _ -> 2
  | Burst _ -> 3
  | Hot_flip _ -> 4
  | Adversarial _ -> 5
  | Recorded _ -> 6

let write_shape b s =
  let open Wire.Codec in
  u8 b (shape_tag s);
  int_ b (universe_of s);
  match s with
  | Uniform _ | Adversarial _ | Recorded _ -> ()
  | Zipf { skew; _ } -> float_ b skew
  | Drift { s0; s1; steps; _ } ->
      float_ b s0;
      float_ b s1;
      int_ b steps
  | Burst { burst; _ } -> int_ b burst
  | Hot_flip { hot_ratio; flip_every; _ } ->
      float_ b hot_ratio;
      int_ b flip_every

let read_shape r =
  let open Wire.Codec in
  let tag = read_u8 r in
  let universe = read_int r in
  match tag with
  | 0 -> Uniform { universe }
  | 1 -> Zipf { universe; skew = read_float r }
  | 2 ->
      let s0 = read_float r in
      let s1 = read_float r in
      let steps = read_int r in
      Drift { universe; s0; s1; steps }
  | 3 -> Burst { universe; burst = read_int r }
  | 4 ->
      let hot_ratio = read_float r in
      let flip_every = read_int r in
      Hot_flip { universe; hot_ratio; flip_every }
  | 5 -> Adversarial { universe }
  | 6 -> Recorded { universe }
  | t -> corrupt "unknown trace shape tag %d" t

let write_rate b rt =
  let open Wire.Codec in
  match rt with
  | Unlimited -> u8 b 0
  | Fixed r ->
      u8 b 1;
      float_ b r
  | Diurnal { mean; amplitude; period } ->
      u8 b 2;
      float_ b mean;
      float_ b amplitude;
      float_ b period

let read_rate r =
  let open Wire.Codec in
  match read_u8 r with
  | 0 -> Unlimited
  | 1 -> Fixed (read_float r)
  | 2 ->
      let mean = read_float r in
      let amplitude = read_float r in
      let period = read_float r in
      Diurnal { mean; amplitude; period }
  | t -> corrupt "unknown trace rate tag %d" t

let encode_header spec =
  Wire.Codec.encode ~kind:Wire.Codec.trace_header_kind (fun b ->
      let open Wire.Codec in
      u8 b format_version;
      i64 b spec.seed;
      u32 b (List.length spec.phases);
      List.iter
        (fun p ->
          bytes_ b (Bytes.of_string p.name);
          int_ b p.ops;
          float_ b p.query_ratio;
          write_rate b p.rate;
          write_shape b p.shape)
        spec.phases)

let decode_header blob =
  Wire.Codec.decode ~kind:Wire.Codec.trace_header_kind
    (fun r ->
      let open Wire.Codec in
      let v = read_u8 r in
      if v <> format_version then corrupt "unsupported trace format version %d" v;
      let seed = read_i64 r in
      let n = read_u32 r in
      let phases =
        List.init n (fun _ ->
            let name = Bytes.to_string (read_bytes r) in
            let ops = read_int r in
            if ops < 0 then corrupt "negative phase op count %d" ops;
            let query_ratio = read_float r in
            let rate = read_rate r in
            let shape = read_shape r in
            { name; ops; query_ratio; rate; shape })
      in
      { seed; phases })
    blob

let encode_block ~phase ops ~off ~len =
  Wire.Codec.encode ~kind:Wire.Codec.trace_block_kind (fun b ->
      let open Wire.Codec in
      u32 b phase;
      u32 b len;
      for i = off to off + len - 1 do
        match ops.(i) with
        | Scenario.Update k ->
            u8 b 0;
            int_ b k
        | Scenario.Query k ->
            u8 b 1;
            int_ b k
      done)

let decode_block blob =
  Wire.Codec.decode ~kind:Wire.Codec.trace_block_kind
    (fun r ->
      let open Wire.Codec in
      let phase = read_u32 r in
      let count = read_u32 r in
      let ops =
        Array.init count (fun _ ->
            let tag = read_u8 r in
            let k = read_int r in
            if k < 0 then corrupt "negative trace key %d" k;
            match tag with
            | 0 -> Scenario.Update k
            | 1 -> Scenario.Query k
            | t -> corrupt "unknown trace op tag %d" t)
      in
      (phase, ops))
    blob

let write ~path spec ops =
  match validate spec with
  | Error _ as e -> e
  | Ok () ->
      let n_phases = List.length spec.phases in
      if Array.length ops <> n_phases then
        Error
          (Printf.sprintf "Trace.write: %d op arrays for %d phases" (Array.length ops)
             n_phases)
      else if
        List.exists2
          (fun p arr -> Array.length arr <> p.ops)
          spec.phases (Array.to_list ops)
      then Error "Trace.write: op array length does not match phase op count"
      else begin
        match
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_bytes oc (encode_header spec);
              Array.iteri
                (fun pi arr ->
                  let len = Array.length arr in
                  let off = ref 0 in
                  while !off < len do
                    let n = min block_ops (len - !off) in
                    output_bytes oc (encode_block ~phase:pi arr ~off:!off ~len:n);
                    off := !off + n
                  done)
                ops)
        with
        | () -> Ok ()
        | exception Sys_error m -> Error m
      end

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated while reading")
  | raw -> (
      let scan = Wire.Segment.scan (Bytes.of_string raw) in
      match scan.Wire.Segment.tail with
      | Torn { valid_prefix; reason; _ } ->
          Error
            (Printf.sprintf "%s: torn trace file after %d bytes (%s)" path valid_prefix
               reason)
      | Clean -> (
          match scan.Wire.Segment.frames with
          | [] -> Error (path ^ ": empty trace file")
          | header :: blocks -> (
              match decode_header header with
              | Error e -> Error (path ^ ": bad header: " ^ Wire.Codec.error_to_string e)
              | Ok spec -> (
                  let n_phases = List.length spec.phases in
                  let acc = Array.make n_phases [] in
                  let bad = ref None in
                  List.iter
                    (fun blob ->
                      if !bad = None then
                        match decode_block blob with
                        | Error e ->
                            bad := Some ("bad block: " ^ Wire.Codec.error_to_string e)
                        | Ok (pi, ops) ->
                            if pi < 0 || pi >= n_phases then
                              bad := Some (Printf.sprintf "block for unknown phase %d" pi)
                            else acc.(pi) <- ops :: acc.(pi))
                    blocks;
                  match !bad with
                  | Some m -> Error (path ^ ": " ^ m)
                  | None ->
                      let ops =
                        Array.map (fun bs -> Array.concat (List.rev bs)) acc
                      in
                      let mismatch = ref None in
                      List.iteri
                        (fun i p ->
                          if !mismatch = None && Array.length ops.(i) <> p.ops then
                            mismatch :=
                              Some
                                (Printf.sprintf
                                   "phase %d (%s): header declares %d ops, file holds %d"
                                   i p.name p.ops (Array.length ops.(i))))
                        spec.phases;
                      (match !mismatch with
                      | Some m -> Error (path ^ ": " ^ m)
                      | None -> Ok (spec, ops))))))

(* ------------------------------ defaults ------------------------------- *)

let default_spec ?(seed = 0x1517L) ~ops ~universe () =
  if ops <= 0 then invalid_arg "Trace.default_spec: ops must be positive";
  if universe <= 0 then invalid_arg "Trace.default_spec: universe must be positive";
  let share f = max 1 (int_of_float (float_of_int ops *. f)) in
  let steady = share 0.30 in
  let drift = share 0.20 in
  let burst = share 0.15 in
  let flip = share 0.20 in
  let adversarial = max 1 (ops - steady - drift - burst - flip) in
  {
    seed;
    phases =
      [
        {
          name = "steady-zipf";
          ops = steady;
          query_ratio = 0.02;
          rate = Unlimited;
          shape = Zipf { universe; skew = 1.1 };
        };
        {
          name = "skew-drift";
          ops = drift;
          query_ratio = 0.02;
          rate = Unlimited;
          shape = Drift { universe; s0 = 0.2; s1 = 1.6; steps = 8 };
        };
        {
          name = "burst-trains";
          ops = burst;
          query_ratio = 0.01;
          rate = Unlimited;
          shape = Burst { universe; burst = 64 };
        };
        {
          name = "diurnal-hot-flip";
          ops = flip;
          query_ratio = 0.05;
          rate = Diurnal { mean = 400_000.0; amplitude = 0.6; period = 2.0 };
          shape = Hot_flip { universe; hot_ratio = 0.5; flip_every = 4096 };
        };
        {
          name = "adversarial-hammer";
          ops = adversarial;
          query_ratio = 0.02;
          rate = Unlimited;
          shape = Adversarial { universe };
        };
      ];
  }

(* ------------------------------ describing ------------------------------ *)

let describe_shape = function
  | Uniform { universe } -> Printf.sprintf "uniform(%d)" universe
  | Zipf { universe; skew } -> Printf.sprintf "zipf(%d, s=%.2f)" universe skew
  | Drift { universe; s0; s1; steps } ->
      Printf.sprintf "drift(%d, s=%.2f→%.2f, steps=%d)" universe s0 s1 steps
  | Burst { universe; burst } -> Printf.sprintf "burst(%d, train=%d)" universe burst
  | Hot_flip { universe; hot_ratio; flip_every } ->
      Printf.sprintf "hot-flip(%d, hot=%.0f%%, every=%d)" universe (100.0 *. hot_ratio)
        flip_every
  | Adversarial { universe } -> Printf.sprintf "adversarial(%d)" universe
  | Recorded { universe } -> Printf.sprintf "recorded(%d)" universe

let describe_rate = function
  | Unlimited -> "closed-loop"
  | Fixed r -> Printf.sprintf "%.0f op/s" r
  | Diurnal { mean; amplitude; period } ->
      Printf.sprintf "diurnal(%.0f op/s ±%.0f%%, period=%.1fs)" mean (100.0 *. amplitude)
        period

let describe spec =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "trace v%d seed=%Ld ops=%d phases=%d\n" format_version spec.seed
       (total_ops spec) (List.length spec.phases));
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf "  %d %-18s ops=%-9d queries=%4.1f%%  %-14s %s\n" i p.name p.ops
           (100.0 *. p.query_ratio) (describe_rate p.rate) (describe_shape p.shape)))
    spec.phases;
  Buffer.contents b
