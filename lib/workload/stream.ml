type shape =
  | Uniform of int
  | Zipf of int * float
  | Bursty of int * int
  | Ascending of int

let generate ~seed shape ~length =
  let g = Rng.Splitmix.create seed in
  match shape with
  | Uniform n ->
      if n <= 0 then invalid_arg "Stream.generate: empty universe";
      Array.init length (fun _ -> Rng.Splitmix.next_int g n)
  | Zipf (n, s) ->
      let z = Zipf.create ~n ~s in
      Array.init length (fun _ -> Zipf.sample z g)
  | Bursty (n, burst) ->
      if n <= 0 || burst <= 0 then invalid_arg "Stream.generate: bad burst parameters";
      let current = ref (Rng.Splitmix.next_int g n) in
      Array.init length (fun i ->
          if i mod burst = 0 then current := Rng.Splitmix.next_int g n;
          !current)
  | Ascending n ->
      if n <= 0 then invalid_arg "Stream.generate: empty universe";
      Array.init length (fun i -> i mod n)

let chunks a ~pieces =
  if pieces <= 0 then invalid_arg "Stream.chunks: pieces must be positive";
  let len = Array.length a in
  let base = len / pieces and extra = len mod pieces in
  let start = ref 0 in
  Array.init pieces (fun i ->
      let size = base + if i < extra then 1 else 0 in
      let c = Array.sub a !start size in
      start := !start + size;
      c)

let describe = function
  | Uniform n -> Printf.sprintf "uniform(%d)" n
  | Zipf (n, s) -> Printf.sprintf "zipf(%d, s=%.2f)" n s
  | Bursty (n, b) -> Printf.sprintf "bursty(%d, burst=%d)" n b
  | Ascending n -> Printf.sprintf "ascending(%d)" n
