(* Full-system chaos soak harness.

   The structure is rounds of crash-and-recover over one durable directory:

     recover_compact -> Engine.create ~initial -> drive trace slice
       (chaos kills + supervised restarts + WAL + checkpoints)
     -> drain -> round checks -> tear WAL tail -> next round

   Every check is an IVL statement made end-to-end:
   - the recorded history of merges and read_total samples must satisfy
     Ivl.Monotone (each read inside [published-at-invoke, accepted-at-return]);
   - published weight must equal flushed weight (conservation: the pipeline
     invents nothing and loses only what crashes took);
   - recovery must land inside [newest durable checkpoint, pre-crash state]
     and never move backwards across recoveries;
   - the CountMin estimates must bracket a ground-truth oracle fed exactly
     the accepted operations: est(x) + lost >= true(x) with no slack, and
     est(x) <= true(x) + alpha*n outside a delta-sized allowance.

   Oracle soundness with loss: every accepted update either reaches the
   published sketch or is lost (killed worker's unflushed delta, torn WAL
   tail, unsynced page cache). Per-key loss cannot exceed total loss
   [accepted - published], hence the unconditional lower bound. *)

type config = {
  dir : string;
  shards : int;
  feeders : int;
  rounds : int;
  batch : int;
  queue : Pipeline.Squeue.impl;
  queue_capacity : int;
  checkpoint_every : int;
  fsync_every : int;
  kills_per_round : int;
  kill_max_point : int;
  tear_tail : bool;
  chaos_seed : int64;
  cm_rows : int;
  cm_width : int;
  sketch_seed : int64;
  reader_interval : float;
  key_sample : int;
}

let default_config ~dir =
  {
    dir;
    shards = 4;
    feeders = 2;
    rounds = 4;
    batch = 256;
    queue = `Mutex;
    queue_capacity = 1024;
    checkpoint_every = 8;
    fsync_every = 16;
    kills_per_round = 2;
    (* A worker ticks once per popped batch, not per item, so short rounds
       see only a few dozen ticks: keep the window tight or the kill never
       lands. *)
    kill_max_point = 16;
    tear_tail = true;
    chaos_seed = 0xC4405L;
    cm_rows = 4;
    cm_width = 2048;
    sketch_seed = 0x5EEDL;
    reader_interval = 0.0005;
    key_sample = 4096;
  }

type round_report = {
  round : int;
  recovered_epoch : int;
  recovered_published : int;
  wal_bytes_truncated : int;
  kills : int;
  restarts : int;
  end_epoch : int;
  end_published : int;
  accepted : int;
  shed : int;
  monotone_violations : int;
  reader_regressions : int;
  conservation_failures : int;
  epoch_regressions : int;
  decode_failures : int;
  unexpected_failures : int;
  oracle_lower_violations : int;
  oracle_upper_failures : int;
  oracle_upper_allowance : int;
  checked_keys : int;
  driver : Driver.report;
  merge_lag : float array;
  envelope_samples : float array;
}

type verdict = {
  pass : bool;
  reasons : string list;
  rounds : round_report list;
  recoveries : int;
  epsilon : float;
  delta : float;
  accepted_total : int;
  final_published : int;
  lost_weight : int;
  wall : float;
}

exception Abort of string

let validate_config c ~spec ~ops =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if c.shards <= 0 then bad "Soak.run: shards must be positive";
  if c.feeders <= 0 then bad "Soak.run: feeders must be positive";
  if c.rounds <= 0 then bad "Soak.run: rounds must be positive";
  if c.batch <= 0 then bad "Soak.run: batch must be positive";
  if c.checkpoint_every <= 0 then bad "Soak.run: checkpoint_every must be positive";
  if c.fsync_every <= 0 then bad "Soak.run: fsync_every must be positive";
  if c.kills_per_round < 0 || c.kills_per_round > c.shards then
    bad "Soak.run: kills_per_round must be in [0, shards]";
  if c.kill_max_point < 1 then bad "Soak.run: kill_max_point must be >= 1";
  if c.cm_rows <= 0 || c.cm_width <= 0 then bad "Soak.run: bad CountMin geometry";
  if c.reader_interval <= 0.0 then bad "Soak.run: reader_interval must be positive";
  if c.key_sample <= 0 then bad "Soak.run: key_sample must be positive";
  if Array.length ops <> List.length spec.Trace.phases then
    bad "Soak.run: ops do not match the spec's phases"

let universe_of_ops ops =
  1
  + Array.fold_left
      (fun acc arr ->
        Array.fold_left
          (fun a op ->
            match op with Scenario.Update k | Scenario.Query k -> max a k)
          acc arr)
      0 ops

let last_segment dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then None
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n ->
           String.length n = 16
           && String.sub n 0 4 = "wal-"
           && Filename.check_suffix n ".seg")
    |> List.sort compare
    |> List.rev
    |> function
    | [] -> None
    | name :: _ ->
        let path = Filename.concat dir name in
        Some (path, (Unix.stat path).Unix.st_size)

let run ?(progress = fun _ -> ()) ?metrics c ~spec ~ops () =
  validate_config c ~spec ~ops;
  let module M = Pipeline.Targets.Countmin (struct
    let seed = c.sketch_seed
    let rows = c.cm_rows
    let width = c.cm_width
  end) in
  let module P = Pipeline.Engine.Make (M) in
  let module R = Durable.Recovery.Make (M) in
  let module Mono = Ivl.Monotone.Make (Spec.Counter_spec) in
  let epsilon = exp 1.0 /. float_of_int c.cm_width in
  let delta = exp (-.float_of_int c.cm_rows) in
  let universe = universe_of_ops ops in
  let oracles = Array.init c.feeders (fun _ -> Array.make universe 0) in
  let slices = Array.map (fun arr -> Stream.chunks arr ~pieces:c.rounds) ops in
  let tear_rng = Rng.Splitmix.create (Int64.add c.chaos_seed 0x7EA7L) in
  let prev_end_epoch = ref 0 and prev_end_pub = ref 0 and prev_rec_epoch = ref 0 in
  let reports = ref [] in
  let t_start = Unix.gettimeofday () in
  let oracle_totals () =
    let t = Array.make universe 0 in
    Array.iter (fun o -> Array.iteri (fun k v -> t.(k) <- t.(k) + v) o) oracles;
    t
  in
  let run_round r =
    (* ---- recover the previous incarnation (rounds > 0) ---- *)
    let pre_ckpt = Durable.Checkpoint.latest ~dir:c.dir in
    let initial, rec_epoch, rec_pub, wal_trunc, epoch_regress =
      if r = 0 then (None, 0, 0, 0, 0)
      else
        match R.recover_compact ~dir:c.dir () with
        | Error m -> raise (Abort (Printf.sprintf "round %d: recovery failed: %s" r m))
        | Ok (sketch, rep) ->
            let regress = ref 0 in
            (match pre_ckpt with
            | Some (s : Durable.Checkpoint.snapshot) ->
                if
                  rep.recovered_epoch < s.epoch
                  || rep.recovered_published < s.published
                then incr regress
            | None -> ());
            if
              rep.recovered_epoch > !prev_end_epoch
              || rep.recovered_published > !prev_end_pub
            then incr regress;
            if rep.recovered_epoch < !prev_rec_epoch then incr regress;
            progress
              (Printf.sprintf "round %d: recovered epoch %d published %d (%d bytes torn)%s"
                 r rep.recovered_epoch rep.recovered_published rep.bytes_truncated
                 (if !regress > 0 then " REGRESSION" else ""));
            ( Some (sketch, rep.recovered_epoch, rep.recovered_published),
              rep.recovered_epoch,
              rep.recovered_published,
              rep.bytes_truncated,
              !regress )
    in
    prev_rec_epoch := rec_epoch;
    (* ---- fresh incarnation: WAL + checkpoints + supervisor + chaos ---- *)
    let registry =
      match metrics with Some r -> r | None -> Obs.Registry.create ()
    in
    let wal =
      Durable.Wal.create ~fsync:(Durable.Wal.Every_n c.fsync_every) ~metrics:registry
        ~dir:c.dir ()
    in
    let kills =
      Conc.Chaos.random_kills
        ~seed:(Int64.add c.chaos_seed (Int64.of_int ((r * 7919) + 1)))
        ~domains:c.shards
        ~victims:(min c.kills_per_round c.shards)
        ~max_point:c.kill_max_point
    in
    let chaos =
      Conc.Chaos.instantiate
        (Conc.Chaos.plan ~yield_prob:0.05 ~stall_prob:0.01 ~stall_spins:500 ~kills
           ~seed:(Int64.add c.chaos_seed (Int64.of_int r))
           ())
        ~domains:c.shards
    in
    let base = rec_pub in
    let eng =
      P.create ~queue:c.queue ~queue_capacity:c.queue_capacity ~batch:c.batch
        ~on_tick:(fun ~shard -> Conc.Chaos.point_once chaos ~domain:shard)
        ~on_merge:(fun ~ctx:_ ~epoch ~weight ~blob ->
          Durable.Wal.append wal ~epoch ~weight ~blob)
        ~checkpoint_every:c.checkpoint_every
        ~on_checkpoint:(fun ~epoch ~published ~blob ->
          Durable.Checkpoint.write ~dir:c.dir ~epoch ~published ~blob ())
        ~supervisor:Pipeline.Engine.default_supervisor ~metrics:registry ?initial
        ~shards:c.shards ()
    in
    (* ---- reader domain: the one read_total caller, envelope sampler ---- *)
    let stop = Atomic.make false in
    let reader_regressions = ref 0 in
    let env_samples = ref [] in
    let reader =
      Domain.spawn (fun () ->
          let last = ref (-1) in
          let n = ref 0 in
          while not (Atomic.get stop) do
            let v = P.read_total eng in
            if v < !last then incr reader_regressions;
            last := v;
            incr n;
            if !n land 7 = 0 then begin
              let st = P.stats eng in
              let enq =
                Array.fold_left
                  (fun a (s : P.shard_stats) -> a + s.enqueued)
                  0 st.shards
              in
              env_samples :=
                float_of_int (max 0 (enq - (st.published - base))) :: !env_samples
            end;
            Unix.sleepf c.reader_interval
          done)
    in
    (* ---- drive this round's trace slice ---- *)
    let round_ops = Array.init (Array.length slices) (fun p -> slices.(p).(r)) in
    let make_sink ~feeder =
      let o = oracles.(feeder) in
      Sink.make
        ~ingest:(fun k ->
          if P.ingest eng k then begin
            o.(k) <- o.(k) + 1;
            true
          end
          else false)
        ~try_ingest:(fun k ->
          if P.try_ingest eng k then begin
            o.(k) <- o.(k) + 1;
            true
          end
          else false)
        ~query:(fun k -> ignore (P.query eng (fun g -> Sketches.Countmin.query g k)))
        ()
    in
    let driver =
      Driver.run ~feeders:c.feeders ~metrics:registry ~make_sink ~spec ~ops:round_ops ()
    in
    Atomic.set stop true;
    Domain.join reader;
    P.drain eng;
    Durable.Wal.close wal;
    (* ---- round checks, all at quiescence ---- *)
    let st = P.stats eng in
    let flushed =
      Array.fold_left (fun a (s : P.shard_stats) -> a + s.flushed_items) 0 st.shards
    in
    let restarts =
      Array.fold_left (fun a (s : P.shard_stats) -> a + s.restarts) 0 st.shards
    in
    let conservation_failures =
      if st.decode_failures = 0 && st.published - base <> flushed then 1
      else if st.published > base + flushed then 1 (* weight invented *)
      else 0
    in
    let monotone_violations = List.length (Mono.violations (P.history eng)) in
    let unexpected_failures = List.length (P.failures eng) in
    let otot = oracle_totals () in
    let accepted_so_far = Array.fold_left ( + ) 0 otot in
    let lost = accepted_so_far - st.published in
    let conservation_failures =
      conservation_failures + if lost < 0 then 1 else 0
    in
    let stride = max 1 (universe / c.key_sample) in
    let checked = ref 0 and lower_v = ref 0 and upper_f = ref 0 in
    let eb = fst (P.query eng (fun g -> Sketches.Countmin.error_bound g)) in
    let k = ref 0 in
    while !k < universe do
      let truth = otot.(!k) in
      let est = fst (P.query eng (fun g -> Sketches.Countmin.query g !k)) in
      incr checked;
      if est + max 0 lost < truth then incr lower_v;
      if float_of_int est > float_of_int truth +. eb then incr upper_f;
      k := !k + stride
    done;
    let allowance =
      max 1 (int_of_float (ceil (3.0 *. delta *. float_of_int !checked)))
    in
    let report =
      {
        round = r;
        recovered_epoch = rec_epoch;
        recovered_published = rec_pub;
        wal_bytes_truncated = wal_trunc;
        kills = List.length (Conc.Chaos.killed chaos);
        restarts;
        end_epoch = st.epoch;
        end_published = st.published;
        accepted = driver.Driver.accepted;
        shed = driver.Driver.shed;
        monotone_violations;
        reader_regressions = !reader_regressions;
        conservation_failures;
        epoch_regressions = epoch_regress;
        decode_failures = st.decode_failures;
        unexpected_failures;
        oracle_lower_violations = !lower_v;
        oracle_upper_failures = !upper_f;
        oracle_upper_allowance = allowance;
        checked_keys = !checked;
        driver;
        merge_lag = st.merge_lag;
        envelope_samples = Array.of_list !env_samples;
      }
    in
    prev_end_epoch := st.epoch;
    prev_end_pub := st.published;
    reports := report :: !reports;
    progress
      (Printf.sprintf
         "round %d: %d accepted, %d shed, %d kills, %d restarts, epoch %d, published \
          %d, lost %d"
         r driver.Driver.accepted driver.Driver.shed report.kills restarts st.epoch
         st.published (max 0 lost));
    (* ---- simulate a crash mid-append before the next incarnation ---- *)
    if c.tear_tail && r < c.rounds - 1 then
      match last_segment c.dir with
      | Some (path, size) when size > 8 ->
          let cut = 1 + Rng.Splitmix.next_int tear_rng (min (size - 1) 512) in
          Unix.truncate path (size - cut);
          progress (Printf.sprintf "round %d: tore %d bytes off %s" r cut path)
      | _ -> ()
  in
  let abort_reason = ref None in
  (try
     for r = 0 to c.rounds - 1 do
       run_round r
     done
   with Abort m -> abort_reason := Some m);
  let rounds = List.rev !reports in
  let otot = oracle_totals () in
  let accepted_total = Array.fold_left ( + ) 0 otot in
  let final_published = !prev_end_pub in
  let reasons = ref (match !abort_reason with Some m -> [ m ] | None -> []) in
  let add fmt = Printf.ksprintf (fun m -> reasons := m :: !reasons) fmt in
  List.iter
    (fun (r : round_report) ->
      if r.monotone_violations > 0 then
        add "round %d: %d IVL monotone violations" r.round r.monotone_violations;
      if r.reader_regressions > 0 then
        add "round %d: published total went backwards %d times" r.round
          r.reader_regressions;
      if r.conservation_failures > 0 then
        add "round %d: weight conservation broken" r.round;
      if r.epoch_regressions > 0 then
        add "round %d: recovery regressed the published epoch" r.round;
      if r.decode_failures > 0 then
        add "round %d: %d blob decode failures" r.round r.decode_failures;
      if r.unexpected_failures > 0 then
        add "round %d: %d unexpected engine failures" r.round r.unexpected_failures;
      if r.oracle_lower_violations > 0 then
        add "round %d: %d estimates below the oracle lower bound" r.round
          r.oracle_lower_violations;
      if r.oracle_upper_failures > r.oracle_upper_allowance then
        add "round %d: %d upper-bound failures exceed the δ allowance %d" r.round
          r.oracle_upper_failures r.oracle_upper_allowance)
    rounds;
  if List.length rounds < c.rounds then
    add "only %d of %d rounds completed" (List.length rounds) c.rounds;
  {
    pass = !reasons = [];
    reasons = List.rev !reasons;
    rounds;
    recoveries = max 0 (List.length rounds - 1);
    epsilon;
    delta;
    accepted_total;
    final_published;
    lost_weight = max 0 (accepted_total - final_published);
    wall = Unix.gettimeofday () -. t_start;
  }

let pctl samples p =
  if Array.length samples = 0 then 0.0 else Stats.Percentile.percentile samples p

let verdict_to_string v =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "round  rec-epoch  rec-pub  kills  restarts  end-epoch    end-pub   accepted  \
     shed  mono  regress  low  high/allow\n";
  List.iter
    (fun (r : round_report) ->
      Buffer.add_string b
        (Printf.sprintf
           "%5d %10d %8d %6d %9d %10d %10d %10d %5d %5d %8d %4d %6d/%-5d\n" r.round
           r.recovered_epoch r.recovered_published r.kills r.restarts r.end_epoch
           r.end_published r.accepted r.shed r.monotone_violations r.epoch_regressions
           r.oracle_lower_violations r.oracle_upper_failures r.oracle_upper_allowance))
    v.rounds;
  let lag = Array.concat (List.map (fun r -> r.merge_lag) v.rounds) in
  let env = Array.concat (List.map (fun r -> r.envelope_samples) v.rounds) in
  Buffer.add_string b
    (Printf.sprintf
       "freshness: merge lag p50/p99 = %.2f/%.2f ms, envelope width p50/p99 = %.0f/%.0f \
        items\n"
       (1e3 *. pctl lag 50.0) (1e3 *. pctl lag 99.0) (pctl env 50.0) (pctl env 99.0));
  Buffer.add_string b
    (Printf.sprintf
       "(ε,δ) = (%.4f, %.4f); accepted %d, published %d, lost %d (%.3f%%); %d \
        recoveries; %.1fs\n"
       v.epsilon v.delta v.accepted_total v.final_published v.lost_weight
       (if v.accepted_total > 0 then
          100.0 *. float_of_int v.lost_weight /. float_of_int v.accepted_total
        else 0.0)
       v.recoveries v.wall);
  List.iter (fun m -> Buffer.add_string b (Printf.sprintf "FAIL: %s\n" m)) v.reasons;
  Buffer.add_string b (Printf.sprintf "soak: %s\n" (if v.pass then "PASS" else "FAIL"));
  Buffer.contents b
