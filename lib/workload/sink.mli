(** The ingest/query surface a {!Driver} pushes a trace through.

    Extracted from the driver so that anything that can accept keys — the
    in-process [Pipeline.Engine] (the default, {!Of_engine}), a batching
    network client ([Net.Client]), a mock in a test — slots under the trace
    machinery without touching driver logic. A sink is five closures:

    - [ingest]/[try_ingest]: the blocking (closed-loop, backpressure) and
      non-blocking (open-loop, shed-on-full) update paths;
    - [query]: a point query whose result checking is the caller's business
      (the soak harness closes the loop against its oracle);
    - [flush]: push any buffered work downstream and wait for it to be
      accepted — the driver calls this at the end of every feeder's chunk so
      phase barriers (and post-run oracles) never race a sink-side buffer.
      For unbuffered sinks this is a no-op;
    - [close]: release sink-owned resources. The driver never calls it —
      whoever built the sink owns its lifetime. *)

type t = {
  ingest : int -> bool;
      (** Blocking ingest; [false] means the element was dropped anyway
          (dead shard, drained pipeline, closed connection). *)
  try_ingest : int -> bool;  (** Non-blocking; [false] on a full queue too. *)
  query : int -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

val make :
  ?try_ingest:(int -> bool) ->
  ?query:(int -> unit) ->
  ?flush:(unit -> unit) ->
  ?close:(unit -> unit) ->
  ingest:(int -> bool) ->
  unit ->
  t
(** [try_ingest] defaults to [ingest] (a sink without a non-blocking path
    just blocks); [query], [flush] and [close] default to no-ops. *)

(** The default implementation: wrap a pipeline engine. Applicative functor
    equality makes this line up at the call site: if you built your engine
    as [Pipeline.Engine.Make (M)] for a named [M], [Of_engine (M).sink]
    accepts it directly. *)
module Of_engine (M : Pipeline.Mergeable.S) : sig
  val sink : Pipeline.Engine.Make(M).t -> query:(M.t -> int -> unit) -> t
  (** [query g k] runs under the engine's snapshot read ([Engine.query]);
      [flush]/[close] are no-ops — the engine's merge cadence and drain are
      its owner's business. *)
end
