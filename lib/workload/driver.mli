(** Closed- and open-loop trace driver.

    Pushes a materialized {!Trace} through any ingest {!sink} (in practice
    [Pipeline.Engine]) phase by phase. A phase whose rate is
    {!Trace.Unlimited} runs {e closed-loop}: feeders issue blocking ingests
    back-to-back, so the measured rate {e is} the system's capacity under
    backpressure. A phase with a {!Trace.Fixed} or {!Trace.Diurnal} rate
    runs {e open-loop}: each feeder computes per-operation deadlines on the
    offered-rate curve, sleeps until the deadline, and uses non-blocking
    ingest — a full queue is a shed, not a stall — so offered vs achieved
    rate and shed counts measure how the system degrades when the load does
    not politely wait.

    Feeders are separate domains; each gets a contiguous chunk of the
    phase's operations and [1/feeders] of the offered rate. Latencies are
    stride-sampled (every {!sample_stride}-th operation) to keep memory
    bounded; percentiles are exact over the retained samples. *)

type sink = Sink.t
(** The ingest/query surface a feeder drives — see {!Sink}. The driver
    calls [sink.flush] at the end of each feeder's chunk (inside the
    feeder's measured wall time, before the phase barrier) so buffered
    sinks like the net client are empty when a phase ends; it never calls
    [sink.close]. *)

type phase_report = {
  phase : string;
  wall : float;  (** slowest feeder's seconds in this phase *)
  issued : int;  (** operations attempted (updates + queries) *)
  accepted : int;  (** updates the sink took *)
  shed : int;  (** updates dropped or shed *)
  queries : int;
  offered_rate : float;  (** mean target op/s; 0 for closed-loop phases *)
  achieved_rate : float;  (** issued / wall *)
  update_p50 : float;  (** seconds, over sampled ingest latencies *)
  update_p99 : float;
  query_p50 : float;
  query_p99 : float;
}

type report = {
  phases : phase_report list;
  wall : float;
  issued : int;
  accepted : int;
  shed : int;
  queries : int;
}

val sample_stride : int
(** Every [sample_stride]-th operation of each feeder is latency-timed. *)

val run :
  ?feeders:int ->
  ?metrics:Obs.Registry.t ->
  make_sink:(feeder:int -> sink) ->
  spec:Trace.spec ->
  ops:Scenario.op array array ->
  unit ->
  report
(** Drive every phase of [ops] (as produced by {!Trace.materialize} or
    {!Trace.read}) through the sinks. [make_sink ~feeder] is called once per
    feeder index before the domains spawn, so each feeder can own private
    un-shared state (e.g. a per-feeder oracle slice the caller merges
    afterwards). Phases run in order with a barrier between them; feeders of
    one phase run concurrently.

    [metrics] registers [driver_issued_total], [driver_accepted_total],
    [driver_shed_total], [driver_queries_total] (scrape-time callbacks over
    the driver's counters, live mid-run) and per-phase
    [driver_update_seconds]/[driver_query_seconds] timers labelled
    [phase="name"] fed from the stride samples.
    @raise Invalid_argument if [feeders <= 0] or [ops] does not match the
    spec's phase count. *)

val report_to_string : report -> string
(** Human-readable per-phase table. *)
