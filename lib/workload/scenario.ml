type op = Update of int | Query of int

let mixed ~seed ~shape ~query_ratio ~length =
  if query_ratio < 0.0 || query_ratio > 1.0 then
    invalid_arg "Scenario.mixed: query_ratio must lie in [0,1]";
  let g = Rng.Splitmix.create seed in
  let elements = Stream.generate ~seed:(Rng.Splitmix.next_int64 g) shape ~length in
  Array.map
    (fun e -> if Rng.Splitmix.next_float g < query_ratio then Query e else Update e)
    elements

let count_queries ops =
  Array.fold_left (fun acc op -> match op with Query _ -> acc + 1 | Update _ -> acc) 0 ops

let split ops ~pieces = Stream.chunks ops ~pieces

let describe ~query_ratio shape =
  Printf.sprintf "%s, %.0f%% queries" (Stream.describe shape) (100.0 *. query_ratio)
