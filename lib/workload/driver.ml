(* Closed/open-loop trace driver.

   Pacing uses virtual-time deadlines: operation i's deadline is the phase
   start plus the integral of 1/rate along the offered curve, independent of
   how long the sink actually took. Falling behind schedule is therefore
   visible as achieved < offered instead of silently stretching the
   experiment — the standard coordinated-omission-avoiding shape for an
   open-loop generator. *)

type sink = Sink.t

type phase_report = {
  phase : string;
  wall : float;
  issued : int;
  accepted : int;
  shed : int;
  queries : int;
  offered_rate : float;
  achieved_rate : float;
  update_p50 : float;
  update_p99 : float;
  query_p50 : float;
  query_p99 : float;
}

type report = {
  phases : phase_report list;
  wall : float;
  issued : int;
  accepted : int;
  shed : int;
  queries : int;
}

let sample_stride = 32 (* power of two: the hot loop masks instead of mod *)

let rate_at rate ~elapsed =
  match rate with
  | Trace.Unlimited -> infinity
  | Trace.Fixed r -> r
  | Trace.Diurnal { mean; amplitude; period } ->
      (* Clamp away the amplitude=1 trough: a zero rate would freeze the
         deadline clock forever. *)
      Float.max 1.0
        (mean *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. elapsed /. period))))

let mean_rate = function
  | Trace.Unlimited -> 0.0
  | Trace.Fixed r -> r
  | Trace.Diurnal { mean; _ } -> mean

type feeder_result = {
  f_wall : float;
  f_issued : int;
  f_accepted : int;
  f_shed : int;
  f_queries : int;
  f_upd : float list;
  f_qry : float list;
}

type totals = {
  t_issued : int Atomic.t;
  t_accepted : int Atomic.t;
  t_shed : int Atomic.t;
  t_queries : int Atomic.t;
}

let feed (sink : Sink.t) (p : Trace.phase) chunk ~feeders ~totals ~upd_timer
    ~qry_timer =
  let paced = p.rate <> Trace.Unlimited in
  let issued = ref 0 and accepted = ref 0 and shed = ref 0 and queries = ref 0 in
  let upd = ref [] and qry = ref [] in
  let observe timer d = match timer with Some tm -> Obs.Timer.observe tm d | None -> () in
  let t0 = Unix.gettimeofday () in
  let vclock = ref 0.0 (* virtual seconds since phase start, on the curve *) in
  let n = Array.length chunk in
  for i = 0 to n - 1 do
    if paced then begin
      let r = rate_at p.rate ~elapsed:!vclock in
      (* each feeder offers 1/feeders of the phase rate *)
      vclock := !vclock +. (float_of_int feeders /. r);
      let lead = t0 +. !vclock -. Unix.gettimeofday () in
      if lead > 1e-6 then Unix.sleepf lead
    end;
    incr issued;
    let timed = i land (sample_stride - 1) = 0 in
    match chunk.(i) with
    | Scenario.Update k ->
        let send () = if paced then sink.try_ingest k else sink.ingest k in
        let ok =
          if timed then begin
            let s = Unix.gettimeofday () in
            let ok = send () in
            let d = Unix.gettimeofday () -. s in
            upd := d :: !upd;
            observe upd_timer d;
            ok
          end
          else send ()
        in
        if ok then incr accepted else incr shed
    | Scenario.Query k ->
        incr queries;
        if timed then begin
          let s = Unix.gettimeofday () in
          sink.query k;
          let d = Unix.gettimeofday () -. s in
          qry := d :: !qry;
          observe qry_timer d
        end
        else sink.query k
  done;
  (* A buffered sink (net client) may still hold updates: flush inside the
     measured wall so closed-loop throughput stays honest, and so the phase
     barrier (and any post-phase oracle) never races the buffer. *)
  sink.flush ();
  ignore (Atomic.fetch_and_add totals.t_issued !issued);
  ignore (Atomic.fetch_and_add totals.t_accepted !accepted);
  ignore (Atomic.fetch_and_add totals.t_shed !shed);
  ignore (Atomic.fetch_and_add totals.t_queries !queries);
  {
    f_wall = Unix.gettimeofday () -. t0;
    f_issued = !issued;
    f_accepted = !accepted;
    f_shed = !shed;
    f_queries = !queries;
    f_upd = !upd;
    f_qry = !qry;
  }

let pctl samples p =
  match samples with [] -> 0.0 | _ -> Stats.Percentile.percentile (Array.of_list samples) p

let run ?(feeders = 1) ?metrics ~make_sink ~spec ~ops () =
  if feeders <= 0 then invalid_arg "Driver.run: feeders must be positive";
  let phases = spec.Trace.phases in
  if Array.length ops <> List.length phases then
    invalid_arg "Driver.run: op arrays do not match the spec's phases";
  let totals =
    {
      t_issued = Atomic.make 0;
      t_accepted = Atomic.make 0;
      t_shed = Atomic.make 0;
      t_queries = Atomic.make 0;
    }
  in
  (match metrics with
  | Some reg ->
      let c name help v = Obs.Registry.counter_fn reg ~help name (fun () -> Atomic.get v) in
      c "driver_issued_total" "Operations the driver attempted" totals.t_issued;
      c "driver_accepted_total" "Updates the sink accepted" totals.t_accepted;
      c "driver_shed_total" "Updates dropped or shed at ingest" totals.t_shed;
      c "driver_queries_total" "Queries the driver issued" totals.t_queries
  | None -> ());
  let sinks = Array.init feeders (fun feeder -> make_sink ~feeder) in
  let t_start = Unix.gettimeofday () in
  let phase_reports =
    List.mapi
      (fun pi (p : Trace.phase) ->
        let chunks = Stream.chunks ops.(pi) ~pieces:feeders in
        let timer name =
          Option.map
            (fun reg ->
              Obs.Registry.timer reg
                ~labels:[ ("phase", p.name) ]
                ~help:"Driver-side operation latency, stride-sampled" name)
            metrics
        in
        let upd_timer = timer "driver_update_seconds" in
        let qry_timer = timer "driver_query_seconds" in
        let results =
          Array.init feeders (fun f ->
              Domain.spawn (fun () ->
                  feed sinks.(f) p chunks.(f) ~feeders ~totals ~upd_timer ~qry_timer))
          |> Array.map Domain.join
        in
        let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
        let wall = Array.fold_left (fun acc r -> Float.max acc r.f_wall) 0.0 results in
        let upd = Array.fold_left (fun acc r -> List.rev_append r.f_upd acc) [] results in
        let qry = Array.fold_left (fun acc r -> List.rev_append r.f_qry acc) [] results in
        let issued = sum (fun r -> r.f_issued) in
        {
          phase = p.name;
          wall;
          issued;
          accepted = sum (fun r -> r.f_accepted);
          shed = sum (fun r -> r.f_shed);
          queries = sum (fun r -> r.f_queries);
          offered_rate = mean_rate p.rate;
          achieved_rate = (if wall > 0.0 then float_of_int issued /. wall else 0.0);
          update_p50 = pctl upd 50.0;
          update_p99 = pctl upd 99.0;
          query_p50 = pctl qry 50.0;
          query_p99 = pctl qry 99.0;
        })
      phases
  in
  {
    phases = phase_reports;
    wall = Unix.gettimeofday () -. t_start;
    issued = Atomic.get totals.t_issued;
    accepted = Atomic.get totals.t_accepted;
    shed = Atomic.get totals.t_shed;
    queries = Atomic.get totals.t_queries;
  }

let report_to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "phase               wall(s)  offered/s  achieved/s    issued  accepted      shed \
     queries  upd p50/p99 (us)  qry p50/p99 (us)\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf
           "%-18s %7.2f %10.0f %11.0f %9d %9d %9d %7d %8.1f/%-8.1f %8.1f/%-8.1f\n"
           p.phase p.wall p.offered_rate p.achieved_rate p.issued p.accepted p.shed
           p.queries (1e6 *. p.update_p50) (1e6 *. p.update_p99) (1e6 *. p.query_p50)
           (1e6 *. p.query_p99)))
    r.phases;
  Buffer.add_string b
    (Printf.sprintf
       "total: %.2fs, %d issued, %d accepted, %d shed, %d queries (%.0f op/s)\n" r.wall
       r.issued r.accepted r.shed r.queries
       (if r.wall > 0.0 then float_of_int r.issued /. r.wall else 0.0));
  Buffer.contents b
