(** Mixed operation scenarios for throughput experiments.

    Real deployments interleave queries with ingestion ("queries must return
    fresh results in real-time without hampering data ingestion", §1.1);
    a scenario materializes such a mix deterministically so competing
    implementations replay the identical operation sequence. *)

type op =
  | Update of int  (** ingest this element / batch *)
  | Query of int  (** query this element (argument ignored by counters) *)

val mixed :
  seed:int64 -> shape:Stream.shape -> query_ratio:float -> length:int -> op array
(** [mixed ~seed ~shape ~query_ratio ~length]: each slot is independently a
    query with probability [query_ratio]; arguments are drawn from [shape]
    for updates and queries alike.
    @raise Invalid_argument unless [query_ratio] lies in [0, 1]. *)

val count_queries : op array -> int

val split : op array -> pieces:int -> op array array
(** Contiguous near-equal chunks, as {!Stream.chunks}. *)

val describe : query_ratio:float -> Stream.shape -> string
