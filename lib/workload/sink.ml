type t = {
  ingest : int -> bool;
  try_ingest : int -> bool;
  query : int -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let make ?try_ingest ?(query = fun _ -> ()) ?(flush = fun () -> ())
    ?(close = fun () -> ()) ~ingest () =
  {
    ingest;
    try_ingest = (match try_ingest with Some f -> f | None -> ingest);
    query;
    flush;
    close;
  }

module Of_engine (M : Pipeline.Mergeable.S) = struct
  module P = Pipeline.Engine.Make (M)

  let sink eng ~query =
    make ~ingest:(fun k -> P.ingest eng k)
      ~try_ingest:(fun k -> P.try_ingest eng k)
      ~query:(fun k -> fst (P.query eng (fun g -> query g k)))
      ()
end
