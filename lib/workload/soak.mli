(** Full-system chaos soak: trace → pipeline → WAL → crash → recover, with
    end-to-end IVL verdicts.

    One soak run chains [rounds] incarnations of a CountMin
    {!Pipeline.Engine} over a single durable directory. Every round:

    + recover the previous incarnation's state ({!Durable.Recovery}
      [recover_compact]: newest checkpoint + WAL replay, then checkpoint the
      result and clear the replayed segments) and seed the new engine with
      it ([Engine.create ~initial]);
    + drive the round's slice of the trace through the engine
      ({!Driver}: closed- or open-loop per phase) with the WAL, periodic
      checkpoints and the supervisor enabled, while {!Conc.Chaos} kills a
      chosen set of shard workers mid-round (the supervisor restarts them)
      and a dedicated reader domain continuously samples the published
      total against the live envelope width;
    + drain, then check the round: the recorded history must satisfy
      {!Ivl.Monotone} (every sampled read inside its envelope), published
      weight must equal the flushed weight (conservation), and the sketch
      must agree with a ground-truth oracle fed the same accepted
      operations — [est(x) + lost ≥ true(x)] unconditionally, and
      [est(x) ≤ true(x) + αn] outside a [δ]-sized allowance, the paper's
      (ε,δ)-bound read end-to-end;
    + between rounds, optionally tear the WAL tail mid-frame (a crash
      during an append) before the next recovery.

    Across recoveries the recovered (epoch, published) must never regress:
    at least the newest durable checkpoint, at most the pre-crash state,
    monotone from round to round. Any violation anywhere flips the verdict
    to FAIL. *)

type config = {
  dir : string;  (** WAL + checkpoint directory (created if missing) *)
  shards : int;
  feeders : int;  (** driver feeder domains per round *)
  rounds : int;  (** engine incarnations; [rounds - 1] crash/recover cycles *)
  batch : int;
  queue : Pipeline.Squeue.impl;
      (** shard-queue implementation; [`Lockfree] also enables stealing *)
  queue_capacity : int;
  checkpoint_every : int;  (** epochs between checkpoints *)
  fsync_every : int;  (** WAL {!Durable.Wal.fsync_policy} [Every_n] *)
  kills_per_round : int;  (** chaos victims per round (≤ shards) *)
  kill_max_point : int;
      (** kill lands within this many worker ticks (a tick is one popped
          batch, so keep this small relative to [ops / shards / batch]) *)
  tear_tail : bool;  (** tear the last WAL frame between rounds *)
  chaos_seed : int64;
  cm_rows : int;  (** CountMin depth: δ = e^(−rows) *)
  cm_width : int;  (** CountMin width: α = e/width *)
  sketch_seed : int64;
  reader_interval : float;  (** seconds between published-total samples *)
  key_sample : int;  (** max keys checked against the oracle per round *)
}

val default_config : dir:string -> config
(** 4 shards, 2 feeders, 4 rounds (3 recoveries), batch 256, checkpoint
    every 8 epochs, fsync every 16 appends, 2 kills/round within 16 ticks,
    torn tails on, CountMin 4×2048, reader every 0.5 ms, 4096 sampled keys. *)

type round_report = {
  round : int;
  recovered_epoch : int;  (** 0 in round 0 *)
  recovered_published : int;
  wal_bytes_truncated : int;  (** torn/corrupt tail dropped at recovery *)
  kills : int;  (** chaos kills actually delivered *)
  restarts : int;  (** supervisor restarts observed *)
  end_epoch : int;
  end_published : int;
  accepted : int;
  shed : int;
  monotone_violations : int;  (** {!Ivl.Monotone} violations in the history *)
  reader_regressions : int;  (** published total observed going backwards *)
  conservation_failures : int;  (** published ≠ flushed weight *)
  epoch_regressions : int;  (** recovery outside its envelope *)
  decode_failures : int;
  unexpected_failures : int;  (** engine exceptions that are never expected *)
  oracle_lower_violations : int;  (** est + lost < true — unconditional *)
  oracle_upper_failures : int;  (** est > true + αn — δ-budgeted *)
  oracle_upper_allowance : int;
  checked_keys : int;
  driver : Driver.report;
  merge_lag : float array;  (** seconds, one per merge — freshness *)
  envelope_samples : float array;  (** live envelope width, reader-sampled *)
}

type verdict = {
  pass : bool;
  reasons : string list;  (** why it failed; empty on PASS *)
  rounds : round_report list;
  recoveries : int;
  epsilon : float;  (** e / cm_width *)
  delta : float;  (** e^(−cm_rows) *)
  accepted_total : int;
  final_published : int;
  lost_weight : int;  (** accepted − published: crash + shed losses *)
  wall : float;
}

val run :
  ?progress:(string -> unit) ->
  ?metrics:Obs.Registry.t ->
  config ->
  spec:Trace.spec ->
  ops:Scenario.op array array ->
  unit ->
  verdict
(** Run the soak. Each phase of the trace is split into [rounds] contiguous
    slices, so every round sees every phase's traffic shape. [progress]
    receives one line per round milestone (recover, drive, check).
    [metrics] shares one registry across every round's engine and WAL
    instead of a fresh per-round one: counters accumulate over the whole
    soak and derived gauges rebind to the newest incarnation, so a live
    scrape plane (Obs.Http) mounted on the registry watches the soak
    end to end.
    @raise Invalid_argument on a malformed config (non-positive counts,
    [kills_per_round > shards], [ops] not matching [spec]). *)

val verdict_to_string : verdict -> string
(** The PASS/FAIL block the CLI prints: per-round table, oracle bounds,
    freshness percentiles, failure reasons. *)
