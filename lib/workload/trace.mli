(** Replayable, versioned binary workload traces.

    A trace is a phased description of traffic: each {!phase} names an
    operation count, a query mix, a target offered {!rate} and a key
    {!shape}. Materialization is a pure function of the trace seed — the
    same spec replays bit-for-bit across runs and across domains — and a
    materialized trace can be frozen to disk in the repository's standard
    wire framing ({!Wire.Codec}: magic, version, kind tag, FNV-1a checksum
    per frame), so a soak run can be reproduced from the file alone even if
    the generator code later changes.

    File layout: one [trace-header] frame (format version, seed, phase
    descriptors) followed by [trace-block] frames, each holding up to
    {!block_ops} operations of a single phase in order. Every frame is
    independently checksummed; {!read} rejects torn or bit-flipped files
    with a precise error instead of replaying garbage. *)

(** Key-distribution shape of one phase. All samplers draw exclusively from
    a phase-local {!Rng.Splitmix} generator, never from shared state. *)
type shape =
  | Uniform of { universe : int }
  | Zipf of { universe : int; skew : float }
  | Drift of { universe : int; s0 : float; s1 : float; steps : int }
      (** Zipf whose skew drifts linearly from [s0] to [s1] over [steps]
          equal segments of the phase; the CDF is recomputed at each
          boundary. Models a hot set that sharpens or flattens over time. *)
  | Burst of { universe : int; burst : int }
      (** One uniformly drawn key repeated [burst] times per train. *)
  | Hot_flip of { universe : int; hot_ratio : float; flip_every : int }
      (** A single hot key absorbs [hot_ratio] of the traffic and is
          re-drawn every [flip_every] operations — the worst case for any
          cache or counter plane keyed on recent frequency. *)
  | Adversarial of { universe : int }
      (** Single-key hammer: every operation hits key 0, maximizing
          counter contention and CountMin row collisions. *)
  | Recorded of { universe : int }
      (** Operations exist only in the trace file (captured by
          [trace record]); {!materialize} refuses this shape. *)

(** Offered-rate curve of one phase, in operations per second across all
    feeder domains. *)
type rate =
  | Unlimited  (** Closed loop: push as fast as the sink accepts. *)
  | Fixed of float
  | Diurnal of { mean : float; amplitude : float; period : float }
      (** [mean * (1 + amplitude * sin (2πt/period))] with [t] in seconds
          from phase start — a compressed day/night load curve. *)

type phase = {
  name : string;
  ops : int;
  query_ratio : float;  (** Fraction of operations that are queries. *)
  rate : rate;
  shape : shape;
}

type spec = { seed : int64; phases : phase list }

val format_version : int
(** Version byte stamped into the trace header; bumped on layout change. *)

val block_ops : int
(** Maximum operations per [trace-block] frame. *)

val total_ops : spec -> int

val validate : spec -> (unit, string) result
(** Check every phase for nonsensical parameters (empty universe, negative
    counts, ratios outside [\[0,1\]], …) before any work is done. *)

val phase_seed : int64 -> int -> int64
(** [phase_seed seed i] is the derived generator seed of phase [i]. Exposed
    so tests can assert phases are decorrelated. *)

val materialize : spec -> Scenario.op array array
(** [materialize spec] generates each phase's operations, one inner array
    per phase, deterministically from [spec.seed].
    @raise Invalid_argument on an invalid spec or a {!Recorded} phase. *)

val write : path:string -> spec -> Scenario.op array array -> (unit, string) result
(** Freeze a spec plus its (materialized or captured) operations to [path].
    The operation arrays must match the per-phase [ops] counts. *)

val read : path:string -> (spec * Scenario.op array array, string) result
(** Load and fully validate a trace file: framing, checksums, header
    schema, block ordering and per-phase operation counts. *)

val default_spec : ?seed:int64 -> ops:int -> universe:int -> unit -> spec
(** A canonical mixed trace exercising every generator: steady Zipf, skew
    drift, burst trains, hot-key flips under a diurnal rate curve, and an
    adversarial single-key hammer. [ops] is the total across phases. *)

val describe_shape : shape -> string
val describe_rate : rate -> string

val describe : spec -> string
(** Multi-line human summary, one phase per line — the [trace cat] view. *)
