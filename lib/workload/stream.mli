(** Stream generators for the experiments.

    All generators are deterministic given their seed (the "weak adversary"
    of Section 5: the input is drawn independently of the sketch's hash
    coins, which our experiments guarantee by using disjoint seed streams for
    workloads and coins). *)

type shape =
  | Uniform of int  (** universe size *)
  | Zipf of int * float  (** universe size, skew *)
  | Bursty of int * int
      (** [Bursty (universe, burst)] repeats each drawn element [burst]
          times in a row — stresses the concurrent sketches with temporal
          locality (contended counters) *)
  | Ascending of int  (** cycles 0,1,…,universe−1 — a worst case for top-k *)

val generate : seed:int64 -> shape -> length:int -> int array
(** [generate ~seed shape ~length] materializes a stream. *)

val chunks : 'a array -> pieces:int -> 'a array array
(** Split a stream into [pieces] nearly equal contiguous chunks, for feeding
    writer threads. The concatenation of the chunks is the original array.
    @raise Invalid_argument if [pieces <= 0]. *)

val describe : shape -> string
