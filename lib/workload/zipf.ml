type t = { cdf : float array; probs : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let probs = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    probs;
  cdf.(n - 1) <- 1.0;
  { cdf; probs }

let sample t g =
  let u = Rng.Splitmix.next_float g in
  (* First index whose CDF is >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let probability t i = t.probs.(i)

let n t = Array.length t.cdf
