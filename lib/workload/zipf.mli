(** Zipf-distributed element sampler.

    Frequency estimation sketches are motivated by skewed streams (network
    flows, word frequencies); Zipf(s) over a universe of N elements is the
    standard model. Element i (1-based) has probability proportional to
    1/i^s. Sampling uses a precomputed CDF and binary search, O(log N) per
    draw after O(N) setup. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over elements [\[0, n)] with skew
    [s ≥ 0] ([s = 0] degenerates to uniform).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Rng.Splitmix.t -> int
(** Draw one element; rank 0 is the most frequent. *)

val probability : t -> int -> float
(** The exact probability of element [i]. *)

val n : t -> int
