(** A mutable binary min-heap of (priority, payload) pairs.

    The exact sequential priority queue: the baseline the relaxed concurrent
    {!Multiqueue} is measured against, and the building block inside it.
    Standard array-backed sift-up/sift-down; O(log n) insert and pop. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val insert : 'a t -> priority:int -> 'a -> unit

val peek : 'a t -> (int * 'a) option
(** Minimum (priority, payload) without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum. *)

val of_list : (int * 'a) list -> 'a t

val to_sorted_list : 'a t -> (int * 'a) list
(** Drain a copy of the heap in priority order (does not mutate [t]). *)
