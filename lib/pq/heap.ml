type 'a t = { mutable items : (int * 'a) array; mutable size : int }

let create () = { items = [||]; size = 0 }

let size t = t.size

let is_empty t = t.size = 0

let swap t i j =
  let tmp = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.items.(i) < fst t.items.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && fst t.items.(l) < fst t.items.(!smallest) then smallest := l;
  if r < t.size && fst t.items.(r) < fst t.items.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t ~priority payload =
  if Array.length t.items = 0 then t.items <- Array.make 8 (priority, payload)
  else if t.size >= Array.length t.items then begin
    (* Double the capacity; the fill value is any existing element. *)
    let items = Array.make (2 * Array.length t.items) t.items.(0) in
    Array.blit t.items 0 items 0 t.size;
    t.items <- items
  end;
  t.items.(t.size) <- (priority, payload);
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.items.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.items.(0) <- t.items.(t.size);
      sift_down t 0
    end;
    Some top
  end

let of_list entries =
  let t = create () in
  List.iter (fun (priority, payload) -> insert t ~priority payload) entries;
  t

let to_sorted_list t =
  let copy = { items = Array.sub t.items 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
