(** A relaxed concurrent priority queue: MultiQueues (Rihani, Sanders &
    Dementiev, SPAA 2015).

    The paper's conclusion singles out priority queues as "semi-quantitative"
    objects — a deleteMin returns a {e quantity} (the priority) attached to a
    non-quantitative payload — and asks whether IVL can be extended to them.
    This implementation makes the quantitative half measurable: [c × domains]
    mutex-protected binary heaps; an insert pushes to a random heap;
    a [delete_min] peeks two random heaps and pops the smaller minimum.
    Returned priorities are not the global minimum but are close in rank —
    O(domains·c) expected rank error — so the {e priority} component admits
    exactly the kind of interval bound IVL formalizes, while the payload
    component is the open part. Experiment E13 measures the rank-error
    distribution against the exact heap.

    All operations are thread-safe from any domain. *)

type 'a t

val create : ?c:int -> seed:int64 -> domains:int -> unit -> 'a t
(** [c] heaps per domain (default 4); more heaps = less contention, more
    relaxation. @raise Invalid_argument if [c <= 0] or [domains <= 0]. *)

val insert : 'a t -> domain:int -> priority:int -> 'a -> unit
(** Push to a random heap, using [domain]'s RNG stream. *)

val delete_min : 'a t -> domain:int -> (int * 'a) option
(** Pop the smaller of two random heaps' minima; [None] when every probed
    heap is empty (retries all heaps once before giving up, so a non-empty
    queue never reports empty). *)

val size : 'a t -> int
(** Total elements across heaps (racy snapshot). *)

val queues : 'a t -> int
(** Number of internal heaps (c × domains). *)
