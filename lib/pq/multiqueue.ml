type 'a queue = { lock : Mutex.t; heap : 'a Heap.t }

type 'a t = { queues : 'a queue array; gens : Rng.Splitmix.t array }

let create ?(c = 4) ~seed ~domains () =
  if c <= 0 then invalid_arg "Multiqueue.create: c must be positive";
  if domains <= 0 then invalid_arg "Multiqueue.create: domains must be positive";
  let root = Rng.Splitmix.create seed in
  {
    queues =
      Array.init (c * domains) (fun _ -> { lock = Mutex.create (); heap = Heap.create () });
    gens = Array.init domains (fun _ -> Rng.Splitmix.split root);
  }

let gen t domain =
  if domain < 0 || domain >= Array.length t.gens then
    invalid_arg "Multiqueue: no such domain";
  t.gens.(domain)

let with_lock q f =
  Mutex.lock q.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.lock) f

let insert t ~domain ~priority payload =
  let g = gen t domain in
  let q = t.queues.(Rng.Splitmix.next_int g (Array.length t.queues)) in
  with_lock q (fun () -> Heap.insert q.heap ~priority payload)

(* Two random probes; on both-empty, fall back to a linear sweep so a
   non-empty queue never reports empty. *)
let delete_min t ~domain =
  let g = gen t domain in
  let nq = Array.length t.queues in
  let i = Rng.Splitmix.next_int g nq in
  let j = Rng.Splitmix.next_int g nq in
  let peek_ix ix = with_lock t.queues.(ix) (fun () -> Heap.peek t.queues.(ix).heap) in
  let best =
    match (peek_ix i, peek_ix j) with
    | Some (pi, _), Some (pj, _) -> Some (if pi <= pj then i else j)
    | Some _, None -> Some i
    | None, Some _ -> Some j
    | None, None -> None
  in
  let pop_ix ix = with_lock t.queues.(ix) (fun () -> Heap.pop t.queues.(ix).heap) in
  match best with
  | Some ix -> (
      match pop_ix ix with
      | Some e -> Some e
      | None ->
          (* Raced with another consumer: fall through to the sweep. *)
          let rec sweep k = if k >= nq then None else
            match pop_ix k with Some e -> Some e | None -> sweep (k + 1)
          in
          sweep 0)
  | None ->
      let rec sweep k = if k >= nq then None else
        match pop_ix k with Some e -> Some e | None -> sweep (k + 1)
      in
      sweep 0

let size t =
  Array.fold_left
    (fun acc q -> acc + with_lock q (fun () -> Heap.size q.heap))
    0 t.queues

let queues t = Array.length t.queues
