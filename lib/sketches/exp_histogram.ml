(* Buckets are kept newest-first; each records the timestamp of its most
   recent 1-event and its size (a power of two count of 1-events). *)

type bucket = { mutable newest : int; size : int }

type t = {
  window : int;
  cap : int; (* max buckets per size before merging *)
  mutable buckets : bucket list; (* newest first, sizes non-decreasing *)
  mutable now : int;
}

let create ?(epsilon = 0.1) ~window () =
  if window <= 0 then invalid_arg "Exp_histogram.create: window must be positive";
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Exp_histogram.create: epsilon must lie in (0,1]";
  let cap = (int_of_float (ceil (1.0 /. epsilon)) / 2) + 2 in
  { window; cap; buckets = []; now = 0 }

(* Merge pairs of same-size buckets (oldest first) whenever a size class
   exceeds the cap. The list stays sorted newest-first / size-ascending. *)
let canonicalize cap buckets =
  let rec count_size size = function
    | b :: rest when b.size = size -> 1 + count_size size rest
    | _ -> 0
  in
  let rec fix = function
    | [] -> []
    | b :: rest ->
        let n = 1 + count_size b.size rest in
        if n > cap then begin
          (* Merge the two OLDEST buckets of this size: walk to the end of
             the size class. *)
          let cls, tail =
            let rec split acc = function
              | x :: r when x.size = b.size -> split (x :: acc) r
              | r -> (List.rev acc, r)
            in
            split [] (b :: rest)
          in
          match List.rev cls with
          | oldest :: second :: others_rev ->
              (* The merged bucket keeps the newer timestamp of the pair. *)
              let merged = { newest = second.newest; size = b.size * 2 } in
              ignore oldest;
              let remaining = List.rev others_rev in
              fix (remaining @ (merged :: tail))
          | _ -> b :: fix rest
        end
        else b :: fix rest
  in
  fix buckets

let expire t =
  t.buckets <-
    List.filter (fun b -> b.newest > t.now - t.window) t.buckets

let add t one =
  t.now <- t.now + 1;
  if one then begin
    t.buckets <- { newest = t.now; size = 1 } :: t.buckets;
    t.buckets <- canonicalize t.cap t.buckets
  end;
  expire t

let estimate t =
  match List.rev t.buckets with
  | [] -> 0
  | oldest :: rest ->
      List.fold_left (fun acc b -> acc + b.size) 0 rest + (oldest.size / 2) + 1

let true_count_bounds t =
  match List.rev t.buckets with
  | [] -> (0, 0)
  | oldest :: rest ->
      let full = List.fold_left (fun acc b -> acc + b.size) 0 rest in
      (full + 1, full + oldest.size)

let window t = t.window

let buckets t = List.length t.buckets
