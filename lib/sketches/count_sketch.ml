type t = {
  seed : int64;
  bucket : Hashing.Family.t; (* row -> column *)
  sign : Hashing.Family.t; (* row -> {0,1}, mapped to ±1 *)
  cells : int array array;
  mutable n : int;
}

let create ~seed ~rows ~width =
  if rows <= 0 then invalid_arg "Count_sketch.create: rows must be positive";
  if width <= 0 then invalid_arg "Count_sketch.create: width must be positive";
  let g = Rng.Splitmix.create seed in
  let bucket = Hashing.Family.create g ~rows ~width in
  let sign = Hashing.Family.create g ~rows ~width:2 in
  { seed; bucket; sign; cells = Array.make_matrix rows width 0; n = 0 }

let sign_of t ~row a = if Hashing.Family.hash t.sign ~row a = 0 then -1 else 1

let update t a =
  for i = 0 to Array.length t.cells - 1 do
    let col = Hashing.Family.hash t.bucket ~row:i a in
    t.cells.(i).(col) <- t.cells.(i).(col) + sign_of t ~row:i a
  done;
  t.n <- t.n + 1

let query t a =
  let d = Array.length t.cells in
  let estimates =
    Array.init d (fun i ->
        let col = Hashing.Family.hash t.bucket ~row:i a in
        sign_of t ~row:i a * t.cells.(i).(col))
  in
  Array.sort Int.compare estimates;
  (* Median: lower median for even d keeps the estimate an integer. *)
  estimates.((d - 1) / 2)

let rows t = Array.length t.cells

let width t = Hashing.Family.width t.bucket

let updates t = t.n

let seed t = t.seed

let merge a b =
  if
    (not (Int64.equal a.seed b.seed))
    || rows a <> rows b
    || width a <> width b
  then
    invalid_arg
      "Count_sketch.merge: sketches must share seed, rows and width \
       (compatible hash families)";
  {
    a with
    cells =
      Array.init (rows a) (fun i ->
          Array.init (width a) (fun j -> a.cells.(i).(j) + b.cells.(i).(j)));
    n = a.n + b.n;
  }
