(** Sequential batched counter (Section 6.2's specification, runnable).

    [update v] with v ≥ 0 adds a batch of v events; [read] returns the total.
    The sequential object is trivial — it exists so the concurrent
    implementations ([Conc.Ivl_counter] and friends) and the simulator
    programs have a common reference, and so examples can run the same
    scenario sequentially and concurrently. *)

type t

val create : unit -> t

val update : t -> int -> unit
(** @raise Invalid_argument if the batch is negative. *)

val read : t -> int

val reset : t -> unit
