(* The k smallest distinct hashes, kept in a sorted set; hashes map to
   (0, 1] by scaling 63-bit tabulation output. *)

module Float_set = Set.Make (Float)

type t = {
  k : int;
  seed : int64;
  hash : Hashing.Tabulation.t;
  mutable values : Float_set.t;
}

let create ?(k = 256) ~seed () =
  if k < 3 then invalid_arg "Kmv.create: k must be at least 3";
  let g = Rng.Splitmix.create seed in
  { k; seed; hash = Hashing.Tabulation.create g; values = Float_set.empty }

let unit_hash t x =
  (* (0,1]: avoid exactly 0 so the estimator never divides by zero. *)
  (float_of_int (Hashing.Tabulation.hash t.hash x) +. 1.0)
  /. 4.611686018427388e18 (* 2^62: tabulation output is uniform on [0, 2^62) *)

let update t x =
  let h = unit_hash t x in
  if Float_set.cardinal t.values < t.k then t.values <- Float_set.add h t.values
  else
    let kth = Float_set.max_elt t.values in
    if h < kth then begin
      t.values <- Float_set.add h t.values;
      if Float_set.cardinal t.values > t.k then
        t.values <- Float_set.remove kth t.values
    end

let estimate t =
  let n = Float_set.cardinal t.values in
  if n < t.k then float_of_int n
  else
    let m = Float_set.max_elt t.values in
    float_of_int (t.k - 1) /. m

let copy t = { t with values = t.values }

let merge a b =
  if a.k <> b.k || not (Int64.equal a.seed b.seed) then
    invalid_arg "Kmv.merge: sketches must share k and seed";
  let union = Float_set.union a.values b.values in
  let rec truncate s =
    if Float_set.cardinal s <= a.k then s
    else truncate (Float_set.remove (Float_set.max_elt s) s)
  in
  { a with values = truncate union }

let retained t = Float_set.cardinal t.values

let k t = t.k

let seed t = t.seed

let hashes t = Array.of_list (Float_set.elements t.values)

let of_hashes ~k ~seed hs =
  let t = create ~k ~seed () in
  if Array.length hs > k then invalid_arg "Kmv.of_hashes: more than k values";
  Array.iter
    (fun h ->
      if not (h > 0.0 && h <= 1.0) then
        invalid_arg "Kmv.of_hashes: hash values must lie in (0,1]";
      t.values <- Float_set.add h t.values)
    hs;
  t
