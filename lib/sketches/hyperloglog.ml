type t = {
  p : int;
  seed : int64;
  hash : Hashing.Tabulation.t;
  regs : int array;
}

let create ?(p = 12) ~seed () =
  if p < 4 || p > 16 then invalid_arg "Hyperloglog.create: p must lie in [4,16]";
  let g = Rng.Splitmix.create seed in
  { p; seed; hash = Hashing.Tabulation.create g; regs = Array.make (1 lsl p) 0 }

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let update t x =
  let h = Hashing.Tabulation.hash t.hash x in
  let idx = h land ((1 lsl t.p) - 1) in
  let rest = h lsr t.p in
  (* Rank: position of the first 1-bit in the remaining 63-p bits. *)
  let width = 63 - t.p in
  let rank =
    if rest = 0 then width + 1
    else
      let rec count i = if rest land (1 lsl i) <> 0 then i + 1 else count (i + 1) in
      count 0
  in
  if rank > t.regs.(idx) then t.regs.(idx) <- rank

let estimate t =
  let m = float_of_int (Array.length t.regs) in
  let sum = Array.fold_left (fun acc r -> acc +. (2.0 ** float_of_int (-r))) 0.0 t.regs in
  let raw = alpha (Array.length t.regs) *. m *. m /. sum in
  let zeros = Array.fold_left (fun acc r -> if r = 0 then acc + 1 else acc) 0 t.regs in
  if raw <= 2.5 *. m && zeros > 0 then
    (* Small-range correction: linear counting on empty registers. *)
    m *. log (m /. float_of_int zeros)
  else raw

let merge a b =
  if a.p <> b.p || not (Int64.equal a.seed b.seed) then
    invalid_arg "Hyperloglog.merge: sketches must share parameters and seed";
  { a with regs = Array.init (Array.length a.regs) (fun i -> max a.regs.(i) b.regs.(i)) }

let registers t = Array.copy t.regs

let of_registers ~p ~seed regs =
  if Array.length regs <> 1 lsl p then
    invalid_arg "Hyperloglog.of_registers: register image has the wrong size";
  let t = create ~p ~seed () in
  Array.blit regs 0 t.regs 0 (Array.length regs);
  t

let p t = t.p

let seed t = t.seed
