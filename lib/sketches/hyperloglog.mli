(** HyperLogLog cardinality estimator (Flajolet et al. 2007; Heule et al.'s
    practical variant informs the bias handling).

    Estimates the number of distinct elements with relative standard error
    ≈ 1.04/√m using m = 2^p single-byte registers: each element is hashed;
    the first p bits select a register, which keeps the maximum number of
    leading zeros (+1) seen in the remaining bits. Monotone (registers only
    grow), so its straightforward parallelization with max-merge is IVL —
    the cardinality family is among the sketches the paper's introduction
    motivates ([9, 13, 14, 18]). *)

type t

val create : ?p:int -> seed:int64 -> unit -> t
(** [p] ∈ [4, 16] selects m = 2^p registers (default 12: ~1.6%% error). *)

val update : t -> int -> unit
(** Observe an element. Idempotent per element value. *)

val estimate : t -> float
(** Estimated distinct count, with small- and large-range corrections. *)

val merge : t -> t -> t
(** Register-wise maximum. Both sketches must share [p] and seed.
    @raise Invalid_argument otherwise. *)

val registers : t -> int array
(** Copy of the register file (tests). *)

val of_registers : p:int -> seed:int64 -> int array -> t
(** Rebuild a sketch from a register image (same [p]/seed as the source);
    used to snapshot concurrent register files into sequential sketches.
    @raise Invalid_argument if the array length is not 2^p. *)

val p : t -> int

val seed : t -> int64
(** The seed that drew the tabulation hash; two sketches merge iff they
    share [p] and seed, and the wire codec round-trips both. *)
