(** Morris approximate counter (Morris 1978; Flajolet 1985 analysis).

    Counts up to n events in O(log log n) bits by keeping only an exponent
    [x], incremented on each event with probability b^{-x} for base b > 1.
    The estimate (b^x − 1)/(b − 1) is unbiased; its variance is
    (b − 1)/2 · n(n+1), so choosing b close to 1 trades memory for accuracy
    — the standard (ε,δ) knob for this sketch. One of the paper's canonical
    (ε,δ)-bounded objects ([27] in its references), and our second transfer-
    theorem case study. *)

type t

val create : ?base:float -> seed:int64 -> unit -> t
(** [create ~seed ()] uses the classic base 2; [?base] must exceed 1. *)

val create_for_error : seed:int64 -> epsilon:float -> delta:float -> t
(** Chooses the base via Chebyshev so that the relative error exceeds
    [epsilon] with probability < [delta]:
    base = 1 + 2·epsilon²·delta. *)

val update : t -> unit
(** Count one event. *)

val estimate : t -> float
(** Unbiased estimate of the number of events counted. *)

val exponent : t -> int
(** The stored exponent (for tests). *)

val base : t -> float
