(** Space-Saving top-k sketch (Metwally, Agrawal & El Abbadi 2005).

    Tracks at most [capacity] (element, count, overestimation) triples; when
    a new element arrives with the table full it evicts the minimum-count
    entry and inherits its count. Guarantees: every element with true
    frequency > n/capacity is present, and each reported count
    over-estimates the true frequency by at most n/capacity — an
    (ε,δ)-bounded frequency object with ε = n/capacity and δ = 0. Referenced
    by the paper ([26]) among the sketches IVL is meant to parallelize. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val update : t -> int -> unit

val query : t -> int -> int
(** Estimated frequency: the tracked count, or 0 if untracked. Always ≥ the
    true frequency for tracked elements; ≤ true + n/capacity. *)

val guaranteed_error : t -> int
(** The current maximum over-estimation bound, min-count of the table (≤
    n/capacity). *)

val top : t -> (int * int) list
(** Tracked (element, estimated count) pairs, descending by count. *)

val total : t -> int
(** Stream length n. *)

val copy : t -> t
(** Deep copy in O(capacity); future updates to either side are independent.
    Used by the concurrent striped top-k to publish immutable snapshots. *)

val merge : capacity:int -> t -> t -> t
(** [merge ~capacity a b] summarizes the concatenation of both streams:
    counts of common elements add; elements tracked by only one side are
    over-approximated by adding the other side's minimum count (matching the
    Space-Saving error semantics); the result keeps the [capacity] largest.
    Mergeability (Agarwal et al.) underlies the striped concurrent top-k.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
(** The table capacity this sketch was created with. *)

val entries : t -> (int * int * int) list
(** Tracked [(element, count, error)] triples, ascending by element — the
    sketch's whole state beyond [(capacity, n)]. Serialized by the wire
    codec. *)

val of_entries : capacity:int -> n:int -> (int * int * int) list -> t
(** Rebuild a sketch from an entry image.
    @raise Invalid_argument if [capacity <= 0], [n < 0], more than
    [capacity] entries are given, an element repeats, or any entry violates
    [0 <= error <= count]. *)
