(** Sequential CountMin sketch (Cormode & Muthukrishnan 2005; Section 5 of
    the paper).

    A d×w matrix of counters and d pairwise-independent hash functions.
    [update a] increments one counter per row; [query a] returns the minimum
    of [a]'s counters, which over-estimates the true frequency f_a by at most
    αn with probability ≥ 1 − δ when w = ⌈e/α⌉ and d = ⌈ln 1/δ⌉ (n is the
    stream length). In the paper's terms the sketch is a sequential
    (ε,δ)-bounded implementation of the exact-frequency oracle with ε = αn.

    This is the runnable, mutable implementation; the persistent state
    machine used by the checkers is [Spec.Countmin_spec]. Both take the same
    {!Hashing.Family.t} coins, so a concurrent run can be validated against
    the very specification instance it raced against. *)

type t

val create : family:Hashing.Family.t -> t
(** A zeroed sketch using [family]'s d rows and width w. *)

val create_for_error : seed:int64 -> alpha:float -> delta:float -> t
(** [create_for_error ~seed ~alpha ~delta] sizes the matrix per the classic
    analysis: w = ⌈e/alpha⌉, d = ⌈ln (1/delta)⌉, and draws fresh coins from
    [seed]. @raise Invalid_argument unless [0 < alpha] and [0 < delta < 1]. *)

val family : t -> Hashing.Family.t
(** The coin-flip vector defining this instance. *)

val rows : t -> int
val width : t -> int

val update : t -> int -> unit
(** Process one element. *)

val update_many : t -> int -> count:int -> unit
(** [update_many t a ~count] processes [count] occurrences of [a] with one
    addition per row — what combining buffers (pipeline shards,
    {!Conc.Buffered_pcm}-style delegation) flush with. Equivalent to
    [count] calls of {!update} for every query.
    @raise Invalid_argument if [count < 0]. *)

val query : t -> int -> int
(** Estimated frequency of an element: min over rows. *)

val updates : t -> int
(** Number of updates processed so far (the stream length n). *)

val error_bound : t -> float
(** The additive bound αn = (e/w)·n at the current stream length. *)

val cell : t -> row:int -> col:int -> int
(** Direct counter access (tests and debugging). *)

val reset : t -> unit
(** Zero all counters and the update count. *)

val merge : t -> t -> t
(** [merge a b] summarizes the concatenation of both inputs' streams:
    cell-wise sums, stream lengths add. CountMin's linear structure makes
    this exact — the merged sketch equals the sketch of the combined stream
    — which is what lets shard-local deltas fold into a global sketch
    (Agarwal et al., "Mergeable summaries"). Inputs are left untouched.
    @raise Invalid_argument unless the families are
    {!Hashing.Family.compatible} (same coin-flip vector). *)

val of_cells : family:Hashing.Family.t -> n:int -> int array array -> t
(** Rebuild a sketch from a counter image (deep-copied): d×w cells and the
    stream length [n]. The wire codec's decode path.
    @raise Invalid_argument on dimension mismatches, negative counters or
    negative [n]. *)
