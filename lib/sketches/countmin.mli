(** Sequential CountMin sketch (Cormode & Muthukrishnan 2005; Section 5 of
    the paper).

    A d×w matrix of counters and d pairwise-independent hash functions.
    [update a] increments one counter per row; [query a] returns the minimum
    of [a]'s counters, which over-estimates the true frequency f_a by at most
    αn with probability ≥ 1 − δ when w = ⌈e/α⌉ and d = ⌈ln 1/δ⌉ (n is the
    stream length). In the paper's terms the sketch is a sequential
    (ε,δ)-bounded implementation of the exact-frequency oracle with ε = αn.

    This is the runnable, mutable implementation; the persistent state
    machine used by the checkers is [Spec.Countmin_spec]. Both take the same
    {!Hashing.Family.t} coins, so a concurrent run can be validated against
    the very specification instance it raced against. *)

type t

val create : family:Hashing.Family.t -> t
(** A zeroed sketch using [family]'s d rows and width w. *)

val create_for_error : seed:int64 -> alpha:float -> delta:float -> t
(** [create_for_error ~seed ~alpha ~delta] sizes the matrix per the classic
    analysis: w = ⌈e/alpha⌉, d = ⌈ln (1/delta)⌉, and draws fresh coins from
    [seed]. @raise Invalid_argument unless [0 < alpha] and [0 < delta < 1]. *)

val family : t -> Hashing.Family.t
(** The coin-flip vector defining this instance. *)

val rows : t -> int
val width : t -> int

val update : t -> int -> unit
(** Process one element. *)

val query : t -> int -> int
(** Estimated frequency of an element: min over rows. *)

val updates : t -> int
(** Number of updates processed so far (the stream length n). *)

val error_bound : t -> float
(** The additive bound αn = (e/w)·n at the current stream length. *)

val cell : t -> row:int -> col:int -> int
(** Direct counter access (tests and debugging). *)

val reset : t -> unit
(** Zero all counters and the update count. *)
