(** KMV (k minimum values) distinct-count sketch (Bar-Yossef et al. 2002;
    the θ-sketch family behind the DataSketches toolkit the paper cites).

    Keep the [k] smallest hash values seen; with hashes uniform on [0,1),
    the k-th smallest value m estimates the cardinality as (k − 1)/m, with
    relative standard error ≈ 1/√(k − 2). Monotone (the k-th minimum only
    decreases as elements arrive, so the estimate only grows), mergeable
    (union = merge the value sets, re-truncate to k) — the same
    IVL-friendly structure as HyperLogLog with different tradeoffs. *)

type t

val create : ?k:int -> seed:int64 -> unit -> t
(** [k] ≥ 3 (default 256; RSE ≈ 6%%). *)

val update : t -> int -> unit
(** Observe an element; duplicates are no-ops by construction. *)

val estimate : t -> float
(** Estimated number of distinct elements (exact while fewer than [k]
    distinct hashes have been seen). *)

val copy : t -> t
(** O(1) snapshot (the value set is persistent); future updates to either
    side are independent. *)

val merge : t -> t -> t
(** Union semantics. Both sketches must share [k] and seed.
    @raise Invalid_argument otherwise. *)

val retained : t -> int
(** Number of hash values currently stored (≤ k). *)

val k : t -> int

val seed : t -> int64
(** The seed that drew the tabulation hash. *)

val hashes : t -> float array
(** The retained hash values, ascending — the sketch's entire state beyond
    [(k, seed)]. Serialized by the wire codec. *)

val of_hashes : k:int -> seed:int64 -> float array -> t
(** Rebuild a sketch from a retained-value image (same [k]/seed as the
    source); duplicates collapse.
    @raise Invalid_argument if [k < 3], more than [k] values are given, or
    any value falls outside (0,1]. *)
