(** Exact stream statistics: the ideal objects that sketches approximate.

    Tracks exact per-element frequencies (the ideal spec I of Definition 4
    for CountMin), the stream length, and exact heavy hitters / quantiles for
    validating the other sketches. *)

type t

val create : unit -> t

val update : t -> int -> unit
(** Record one occurrence of an element. *)

val frequency : t -> int -> int
(** True frequency f_a of an element (0 if unseen). *)

val total : t -> int
(** Stream length n. *)

val distinct : t -> int
(** Number of distinct elements seen. *)

val heavy_hitters : t -> threshold:float -> (int * int) list
(** Elements with frequency ≥ threshold·n, with their counts, descending by
    count. [threshold] in (0, 1]. *)

val rank : t -> int -> int
(** [rank t x] is the number of stream elements ≤ x. *)

val to_assoc : t -> (int * int) list
(** All (element, count) pairs, ascending by element. *)
