type t = {
  family : Hashing.Family.t;
  cells : int array array; (* rows × width *)
  mutable n : int;
}

let create ~family =
  let d = Hashing.Family.rows family and w = Hashing.Family.width family in
  { family; cells = Array.make_matrix d w 0; n = 0 }

let create_for_error ~seed ~alpha ~delta =
  if alpha <= 0.0 then invalid_arg "Countmin.create_for_error: alpha must be positive";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Countmin.create_for_error: delta must lie in (0,1)";
  let w = int_of_float (ceil (Float.exp 1.0 /. alpha)) in
  let d = max 1 (int_of_float (ceil (log (1.0 /. delta)))) in
  create ~family:(Hashing.Family.seeded ~seed ~rows:d ~width:w)

let family t = t.family

let rows t = Array.length t.cells

let width t = Hashing.Family.width t.family

(* The loops hoist the row count and probe once per element
   (Family.probe/probe_col): on a double-hashed family an update costs 2
   field evaluations instead of d. *)

let update t a =
  let d = Array.length t.cells in
  let p = Hashing.Family.probe t.family a in
  for i = 0 to d - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    t.cells.(i).(col) <- t.cells.(i).(col) + 1
  done;
  t.n <- t.n + 1

let update_many t a ~count =
  if count < 0 then invalid_arg "Countmin.update_many: count must be non-negative";
  if count > 0 then begin
    let d = Array.length t.cells in
    let p = Hashing.Family.probe t.family a in
    for i = 0 to d - 1 do
      let col = Hashing.Family.probe_col t.family p ~row:i in
      t.cells.(i).(col) <- t.cells.(i).(col) + count
    done;
    t.n <- t.n + count
  end

let query t a =
  let d = Array.length t.cells in
  let p = Hashing.Family.probe t.family a in
  let best = ref max_int in
  for i = 0 to d - 1 do
    let col = Hashing.Family.probe_col t.family p ~row:i in
    if t.cells.(i).(col) < !best then best := t.cells.(i).(col)
  done;
  !best

let updates t = t.n

let error_bound t = Float.exp 1.0 /. float_of_int (width t) *. float_of_int t.n

let cell t ~row ~col = t.cells.(row).(col)

let reset t =
  Array.iter (fun r -> Array.fill r 0 (Array.length r) 0) t.cells;
  t.n <- 0

let merge a b =
  if not (Hashing.Family.compatible a.family b.family) then
    invalid_arg "Countmin.merge: sketches must share a compatible hash family";
  let t = create ~family:a.family in
  for i = 0 to rows a - 1 do
    for j = 0 to width a - 1 do
      t.cells.(i).(j) <- a.cells.(i).(j) + b.cells.(i).(j)
    done
  done;
  t.n <- a.n + b.n;
  t

let of_cells ~family ~n cells =
  let d = Hashing.Family.rows family and w = Hashing.Family.width family in
  if n < 0 then invalid_arg "Countmin.of_cells: n must be non-negative";
  if Array.length cells <> d then invalid_arg "Countmin.of_cells: wrong row count";
  Array.iter
    (fun row ->
      if Array.length row <> w then invalid_arg "Countmin.of_cells: wrong row width";
      Array.iter
        (fun c -> if c < 0 then invalid_arg "Countmin.of_cells: negative counter")
        row)
    cells;
  { family; cells = Array.map Array.copy cells; n }
