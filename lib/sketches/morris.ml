type t = { base : float; g : Rng.Splitmix.t; mutable exponent : int }

let create ?(base = 2.0) ~seed () =
  if base <= 1.0 then invalid_arg "Morris.create: base must exceed 1";
  { base; g = Rng.Splitmix.create seed; exponent = 0 }

let create_for_error ~seed ~epsilon ~delta =
  if epsilon <= 0.0 then invalid_arg "Morris.create_for_error: epsilon must be positive";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Morris.create_for_error: delta must lie in (0,1)";
  (* Var ≈ (b-1)/2·n²; Chebyshev: P[|est-n| > εn] ≤ (b-1)/(2ε²) ≤ δ. *)
  create ~base:(1.0 +. (2.0 *. epsilon *. epsilon *. delta)) ~seed ()

let update t =
  let p = t.base ** float_of_int (-t.exponent) in
  if Rng.Splitmix.next_float t.g < p then t.exponent <- t.exponent + 1

let estimate t = ((t.base ** float_of_int t.exponent) -. 1.0) /. (t.base -. 1.0)

let exponent t = t.exponent

let base t = t.base
