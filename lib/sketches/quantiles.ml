(* Compactor hierarchy. Level i holds items of weight 2^i. A level at
   capacity sorts its buffer and promotes every other item (random offset) to
   level i+1, discarding the rest — the classic randomized-compaction step
   whose rank error is unbiased. *)

type t = {
  k : int;
  seed : int64;
  g : Rng.Splitmix.t;
  mutable levels : int list array; (* levels.(i): buffered items of weight 2^i *)
  mutable sizes : int array;
  mutable n : int;
}

let create ?(k = 200) ~seed () =
  if k < 2 then invalid_arg "Quantiles.create: k must be at least 2";
  {
    k;
    seed;
    g = Rng.Splitmix.create seed;
    levels = Array.make 1 [];
    sizes = Array.make 1 0;
    n = 0;
  }

(* Capacity of level i shrinks geometrically below the top, never under 2. *)
let capacity t level =
  let height = Array.length t.levels in
  let c =
    float_of_int t.k *. (0.7 ** float_of_int (height - 1 - level))
  in
  max 2 (int_of_float (ceil c))

let grow t =
  let h = Array.length t.levels in
  let levels = Array.make (h + 1) [] and sizes = Array.make (h + 1) 0 in
  Array.blit t.levels 0 levels 0 h;
  Array.blit t.sizes 0 sizes 0 h;
  t.levels <- levels;
  t.sizes <- sizes

let rec compact t level =
  if level = Array.length t.levels - 1 then grow t;
  let items = List.sort Int.compare t.levels.(level) in
  let offset = if Rng.Splitmix.next_bool t.g then 0 else 1 in
  let promoted =
    List.filteri (fun i _ -> i mod 2 = offset) items
  in
  t.levels.(level) <- [];
  t.sizes.(level) <- 0;
  t.levels.(level + 1) <- List.rev_append promoted t.levels.(level + 1);
  t.sizes.(level + 1) <- t.sizes.(level + 1) + List.length promoted;
  if t.sizes.(level + 1) >= capacity t (level + 1) then compact t (level + 1)

let update t x =
  t.levels.(0) <- x :: t.levels.(0);
  t.sizes.(0) <- t.sizes.(0) + 1;
  t.n <- t.n + 1;
  if t.sizes.(0) >= capacity t 0 then compact t 0

let rank t x =
  let r = ref 0 in
  Array.iteri
    (fun i items ->
      let w = 1 lsl i in
      List.iter (fun y -> if y <= x then r := !r + w) items)
    t.levels;
  !r

let quantile t phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Quantiles.quantile: phi must lie in [0,1]";
  let weighted =
    Array.to_list t.levels
    |> List.mapi (fun i items -> List.map (fun x -> (x, 1 lsl i)) items)
    |> List.concat
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  if weighted = [] then raise Not_found;
  let total_w = List.fold_left (fun acc (_, w) -> acc + w) 0 weighted in
  let target = phi *. float_of_int total_w in
  let rec walk acc = function
    | [] -> fst (List.nth weighted (List.length weighted - 1))
    | (x, w) :: rest ->
        let acc = acc + w in
        if float_of_int acc >= target then x else walk acc rest
  in
  walk 0 weighted

let total t = t.n

let retained t = Array.fold_left ( + ) 0 t.sizes

let copy t =
  {
    k = t.k;
    seed = t.seed;
    g = Rng.Splitmix.copy t.g;
    levels = Array.map (fun l -> l) t.levels;
    sizes = Array.copy t.sizes;
    n = t.n;
  }

let merge a b =
  let height = max (Array.length a.levels) (Array.length b.levels) in
  let t =
    {
      k = a.k;
      seed = a.seed;
      g = Rng.Splitmix.copy a.g;
      levels = Array.make height [];
      sizes = Array.make height 0;
      n = a.n + b.n;
    }
  in
  let take (src : t) i =
    if i < Array.length src.levels then (src.levels.(i), src.sizes.(i)) else ([], 0)
  in
  for i = 0 to height - 1 do
    let la, sa = take a i and lb, sb = take b i in
    t.levels.(i) <- List.rev_append la lb;
    t.sizes.(i) <- sa + sb
  done;
  (* Re-establish the capacity invariant bottom-up. *)
  let i = ref 0 in
  while !i < Array.length t.levels do
    if t.sizes.(!i) >= capacity t !i then compact t !i;
    incr i
  done;
  t

let k t = t.k

let seed t = t.seed

let levels t = Array.map (fun l -> l) t.levels

let of_levels ~k ~seed ~n levels =
  if k < 2 then invalid_arg "Quantiles.of_levels: k must be at least 2";
  if n < 0 then invalid_arg "Quantiles.of_levels: n must be non-negative";
  if Array.length levels = 0 then invalid_arg "Quantiles.of_levels: no levels";
  let t = create ~k ~seed () in
  t.levels <- Array.map (fun l -> l) levels;
  t.sizes <- Array.map List.length levels;
  t.n <- n;
  (* Restore the capacity invariant in case the image was produced by a
     sketch with different compaction history. *)
  let i = ref 0 in
  while !i < Array.length t.levels do
    if t.sizes.(!i) >= capacity t !i then compact t !i;
    incr i
  done;
  t
