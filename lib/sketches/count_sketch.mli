(** Count sketch (Charikar, Chen & Farach-Colton 2002).

    Like CountMin, a d×w counter matrix, but each element also carries a
    ±1 sign per row and the estimate is the {e median} of signed row
    estimates instead of the minimum. Its error is two-sided (±ε‖f‖₂ with
    probability 1 − δ), which makes it the natural companion experiment to
    CountMin: its straightforward parallelization is also IVL by the same
    interval argument applied per row, but the non-monotone signed counters
    mean regular-like "subset of concurrent updates" semantics would {e not}
    bound its error — exactly the Section 3.4 separation. *)

type t

val create : seed:int64 -> rows:int -> width:int -> t
(** @raise Invalid_argument if [rows <= 0] (median needs ≥1 row) or
    [width <= 0]. *)

val update : t -> int -> unit
(** Process one element. *)

val query : t -> int -> int
(** Median-of-rows estimate of an element's frequency (can be negative). *)

val rows : t -> int
val width : t -> int

val updates : t -> int
(** Stream length n. *)

val seed : t -> int64
(** The seed that drew both hash families (bucket and sign). *)

val merge : t -> t -> t
(** [merge a b] summarizes the concatenation of both inputs' streams:
    signed counters add cell-wise — exact, by linearity, like CountMin's
    merge. Inputs are left untouched.
    @raise Invalid_argument unless both sketches were created with the same
    seed, rows and width (the hash families must agree for cells to be
    addable). *)
