type t = { counts : (int, int) Hashtbl.t; mutable n : int }

let create () = { counts = Hashtbl.create 1024; n = 0 }

let update t a =
  (match Hashtbl.find_opt t.counts a with
  | Some c -> Hashtbl.replace t.counts a (c + 1)
  | None -> Hashtbl.replace t.counts a 1);
  t.n <- t.n + 1

let frequency t a = match Hashtbl.find_opt t.counts a with Some c -> c | None -> 0

let total t = t.n

let distinct t = Hashtbl.length t.counts

let to_assoc t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let heavy_hitters t ~threshold =
  if threshold <= 0.0 || threshold > 1.0 then
    invalid_arg "Exact.heavy_hitters: threshold must lie in (0,1]";
  let cut = threshold *. float_of_int t.n in
  to_assoc t
  |> List.filter (fun (_, c) -> float_of_int c >= cut)
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let rank t x =
  Hashtbl.fold (fun k c acc -> if k <= x then acc + c else acc) t.counts 0
