type t = { mutable total : int }

let create () = { total = 0 }

let update t v =
  if v < 0 then invalid_arg "Batched_counter.update: batch must be non-negative";
  t.total <- t.total + v

let read t = t.total

let reset t = t.total <- 0
