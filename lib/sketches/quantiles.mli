(** A KLL-style quantiles sketch (Karnin, Lang & Liberty 2016; the paper's
    Quantiles reference [1] is the mergeable-summaries line of work).

    Estimates the rank of any element within ±εn with probability ≥ 1 − δ,
    using a hierarchy of compactors: level i stores items each representing
    2^i stream items; when a level overflows, a random half of its (sorted)
    items is promoted. The sketch answers rank and quantile queries. *)

type t

val create : ?k:int -> seed:int64 -> unit -> t
(** [k] is the top-level capacity (default 200 ≈ ε of about 1%%). *)

val update : t -> int -> unit

val rank : t -> int -> int
(** Estimated number of stream items ≤ x. *)

val quantile : t -> float -> int
(** [quantile t phi] for phi ∈ [0,1]: an element whose estimated rank is
    ~phi·n. @raise Invalid_argument outside [0,1]; @raise Not_found on an
    empty sketch. *)

val total : t -> int
(** Stream length n. *)

val retained : t -> int
(** Number of items currently stored (the space the sketch actually uses). *)

val copy : t -> t
(** Deep copy; the copy's future updates and compactions are independent.
    O(retained) — sketches hold O(k log n) items, so copies are cheap. *)

val merge : t -> t -> t
(** [merge a b] summarizes the concatenation of both inputs' streams: level
    buffers are concatenated level-wise and re-compacted. The result keeps
    [a]'s parameters; both inputs are left untouched. Mergeability is the
    property (Agarwal et al., "Mergeable summaries") that makes the striped
    concurrent quantiles sketch possible. *)

val k : t -> int
(** The top-level capacity parameter. *)

val seed : t -> int64
(** The seed that drew the compaction coin flips. *)

val levels : t -> int list array
(** A copy of the compactor hierarchy: [levels.(i)] holds items of weight
    2^i. Together with [(k, seed, n)] this is the sketch's whole state —
    what the wire codec serializes. *)

val of_levels : k:int -> seed:int64 -> n:int -> int list array -> t
(** Rebuild a sketch from a level image. The compaction RNG restarts from
    [seed] (future coin flips differ from the source's, which does not
    affect the rank-error analysis). Levels over capacity are re-compacted.
    @raise Invalid_argument if [k < 2], [n < 0] or the image is empty. *)
