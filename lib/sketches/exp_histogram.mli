(** Sliding-window counting with Exponential Histograms (Datar, Gionis,
    Indyk & Motwani, SIAM J. Comput. 2002).

    Counts how many of the last [window] events carried a 1, within a
    (1 + ε) multiplicative error, in O(ε⁻¹ log² W) bits: 1-events are
    grouped into buckets of exponentially growing sizes; at most
    ⌈1/ε⌉/2 + 2 buckets per size are kept, merging the two oldest of a size
    when the cap is exceeded; buckets falling off the window expire. Only
    the oldest surviving bucket is uncertain, which is what bounds the
    error. Sliding windows are the streaming setting the paper's motivation
    cites alongside plain counting. *)

type t

val create : ?epsilon:float -> window:int -> unit -> t
(** [epsilon] (default 0.1) is the relative-error target.
    @raise Invalid_argument if [window <= 0] or [epsilon] outside (0, 1]. *)

val add : t -> bool -> unit
(** Advance the window by one event; [true] counts. *)

val estimate : t -> int
(** Estimated number of 1-events among the last [window]: exact total of
    full buckets plus half the oldest (partially expired) bucket. *)

val true_count_bounds : t -> int * int
(** The (lower, upper) envelope the structure guarantees the true count lies
    in — the oldest bucket contributes 1..size. *)

val window : t -> int
val buckets : t -> int
(** Number of buckets currently held (space accounting). *)
