(* A straightforward implementation: a hash table from element to entry plus
   linear scan for the minimum on eviction. Asymptotically a heap would be
   better; capacities in this repository are small (hundreds), and the simple
   structure keeps the invariants legible. *)

type entry = { mutable count : int; mutable error : int }

type t = { capacity : int; table : (int, entry) Hashtbl.t; mutable n : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Space_saving.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); n = 0 }

let min_entry t =
  Hashtbl.fold
    (fun elt e acc ->
      match acc with
      | Some (_, best) when best.count <= e.count -> acc
      | _ -> Some (elt, e))
    t.table None

let update t a =
  t.n <- t.n + 1;
  match Hashtbl.find_opt t.table a with
  | Some e -> e.count <- e.count + 1
  | None ->
      if Hashtbl.length t.table < t.capacity then
        Hashtbl.replace t.table a { count = 1; error = 0 }
      else begin
        match min_entry t with
        | None -> Hashtbl.replace t.table a { count = 1; error = 0 }
        | Some (victim, e) ->
            Hashtbl.remove t.table victim;
            (* The newcomer inherits the evicted count: its true count is at
               most that, so [error] records the possible over-estimation. *)
            Hashtbl.replace t.table a { count = e.count + 1; error = e.count }
      end

let query t a = match Hashtbl.find_opt t.table a with Some e -> e.count | None -> 0

let guaranteed_error t =
  if Hashtbl.length t.table < t.capacity then 0
  else match min_entry t with None -> 0 | Some (_, e) -> e.count

let top t =
  Hashtbl.fold (fun elt e acc -> (elt, e.count) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let total t = t.n

let copy t =
  let c = { capacity = t.capacity; table = Hashtbl.create (2 * t.capacity); n = t.n } in
  Hashtbl.iter
    (fun elt (e : entry) -> Hashtbl.replace c.table elt { count = e.count; error = e.error })
    t.table;
  c

let merge ~capacity a b =
  if capacity <= 0 then invalid_arg "Space_saving.merge: capacity must be positive";
  let min_count t =
    if Hashtbl.length t.table < t.capacity then 0
    else match min_entry t with None -> 0 | Some (_, e) -> e.count
  in
  let min_a = min_count a and min_b = min_count b in
  let merged = Hashtbl.create (2 * capacity) in
  let add ~other_min elt (e : entry) =
    match Hashtbl.find_opt merged elt with
    | Some m ->
        m.count <- m.count + e.count;
        m.error <- m.error + e.error
    | None ->
        (* An element absent from the other sketch may still have occurred up
           to its minimum count there: fold that into count and error, the
           standard conservative merge. *)
        Hashtbl.replace merged elt
          { count = e.count + other_min; error = e.error + other_min }
  in
  Hashtbl.iter (fun elt e -> add ~other_min:min_b elt e) a.table;
  (* Elements already merged from [a] must not add min_a again. *)
  Hashtbl.iter
    (fun elt (e : entry) ->
      match Hashtbl.find_opt merged elt with
      | Some m ->
          (* Present in both: undo the conservative other-side minimum that
             [a]'s pass added, then add the real counts. *)
          m.count <- m.count - min_b + e.count;
          m.error <- m.error - min_b + e.error
      | None ->
          Hashtbl.replace merged elt
            { count = e.count + min_a; error = e.error + min_a })
    b.table;
  let t = { capacity; table = Hashtbl.create (2 * capacity); n = a.n + b.n } in
  (* Keep the [capacity] largest entries. *)
  Hashtbl.fold (fun elt e acc -> (elt, e) :: acc) merged []
  |> List.sort (fun (_, (x : entry)) (_, (y : entry)) -> Int.compare y.count x.count)
  |> List.filteri (fun i _ -> i < capacity)
  |> List.iter (fun (elt, e) -> Hashtbl.replace t.table elt e);
  t

let capacity t = t.capacity

let entries t =
  Hashtbl.fold (fun elt (e : entry) acc -> (elt, e.count, e.error) :: acc) t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let of_entries ~capacity ~n ents =
  if capacity <= 0 then invalid_arg "Space_saving.of_entries: capacity must be positive";
  if n < 0 then invalid_arg "Space_saving.of_entries: n must be non-negative";
  if List.length ents > capacity then
    invalid_arg "Space_saving.of_entries: more entries than capacity";
  let t = create ~capacity in
  t.n <- n;
  List.iter
    (fun (elt, count, error) ->
      if count < 0 || error < 0 || error > count then
        invalid_arg "Space_saving.of_entries: entry needs 0 <= error <= count";
      if Hashtbl.mem t.table elt then
        invalid_arg "Space_saving.of_entries: duplicate element";
      Hashtbl.replace t.table elt { count; error })
    ents;
  t
