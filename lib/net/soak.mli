(** Served chaos soak: the whole tier — {!Server}, {!Client}, {!Replica} —
    exercised through a {!Chaos_proxy} while the server is stopped and
    WAL-restarted mid-trace.

    One run drives a workload trace through batching clients into a served
    pipeline, with a follower replica subscribed alongside, and everything
    crossing a fault-injecting proxy (latency, bit flips, mid-frame
    resets, refused dials, full partitions). An orchestrator stops the
    server at chosen points in the stream, lets it sit dead, and restarts
    it from its WAL on a fresh port; the proxy's upstream callback routes
    reconnecting clients and the resyncing replica to the new incarnation.

    Five verdicts certify the run ({!verdict}): {e conservation} (each
    incarnation publishes exactly its recovered base plus accepted
    ingests, and each recovery resumes exactly at the previous final),
    {e ack envelope} (no retry exhaustion, and the client's acked total
    brackets published weight within the restart allowance — the
    effectively-once guarantee observed from outside), {e replica
    envelope} (the follower never leads the leader, across every fault
    and resync), {e convergence} (after quiescing, the follower holds
    the leader's exact epoch, published weight and bit-for-bit encoded
    sketch), and {e slo} (the continuous {!Obs.Slo} monitor, evaluated at
    ~20ms cadence against a Theorem-6 budget with chaos slack, recorded
    zero breaches over the whole run — transient Warnings are fine,
    sustained over-budget burn is not). *)

type config = {
  dir : string;  (** WAL + checkpoint + dedup-journal directory *)
  shards : int;
  batch : int;  (** engine micro-batch *)
  conns : int;  (** client sender connections *)
  feeders : int;
  client_batch : int;
  retries : int;
      (** per-batch delivery attempts — size against [down_time] and
          [partition_time]: a batch must outlive the longest outage *)
  restarts : int;  (** server kill + WAL-restart cycles *)
  down_time : float;  (** seconds the server stays dead per restart *)
  partitions : int;  (** full network partitions *)
  partition_time : float;
  faults : Chaos_proxy.faults;  (** steady-state wire faults *)
  seed : int64;
  settle : float;  (** timeout for the final convergence barrier *)
}

val default_config : dir:string -> config
(** 4 shards, 2 sender conns, 2 restarts, 1 partition, mild wire faults
    (sub-ms latency, 0.5% corruption/reset, 2% refused dials). *)

type verdict = {
  pass : bool;
  reasons : string list;  (** empty iff [pass] *)
  conservation : bool;
  ack_envelope : bool;
  replica_envelope : bool;
  convergence : bool;
  slo : bool;
  slo_breaches : int;
      (** times the burn-rate machine entered Breach (0 required) *)
  slo_state : Obs.Slo.state;  (** machine state at drain *)
  restarts_done : int;
  partitions_done : int;
  published : int;  (** leader's final published weight *)
  final_epoch : int;
  acked : int;
  ack_allowance : int;  (** [restarts * conns * client_batch] *)
  duplicates_client : int;  (** dup acks the client observed *)
  duplicates_server : int;  (** batches the dedup window suppressed *)
  exhausted : int;  (** keys lost to retry exhaustion (0 required) *)
  resyncs : int;  (** replica re-subscriptions *)
  follower_ahead : int;  (** samples where the follower led (0 required) *)
  samples : int;  (** staleness-envelope samples taken *)
  client : Client.stats;
  proxy : Chaos_proxy.stats;
  driver : Workload.Driver.report;
  wall : float;
}

val shape_universe : Workload.Trace.shape -> int
val total_updates : Workload.Scenario.op array array -> int

module Make (M : Pipeline.Mergeable.S) : sig
  val run :
    ?progress:(string -> unit) ->
    ?metrics:Obs.Registry.t ->
    ?tracer:Obs.Tracer.t ->
    ?http_port:int ->
    ?record:string ->
    config ->
    spec:Workload.Trace.spec ->
    ops:Workload.Scenario.op array array ->
    unit ->
    verdict
  (** Run the soak. [c.dir] should start empty (the first incarnation
      recovers nothing); it accumulates WAL segments, checkpoints and the
      dedup journal across incarnations. [metrics] collects every
      component's series in one registry — server metrics re-register
      across incarnations (callback registration replaces), and
      [replica_resyncs_total] is the scrape the acceptance gate reads.
      [record] freezes the driven operations to a replayable trace file
      ({!Workload.Trace} [Recorded] phases, closed-loop rate) — the
      incident-capture path.

      [tracer] is shared by every tier — client, server, engine, WAL
      wrapper, replica — so one sampled batch yields the full waterfall
      (enqueue → flush / decode → ingest → queue → merge → wal →
      replica_apply) in one span ring. [http_port] mounts the live
      telemetry plane ({!Obs.Http.telemetry_handler}) for the soak's
      duration: [/metrics], [/metrics.json], [/healthz] (SLO verdict plus
      leader/replica/client progress) and [/trace?n=K], all answerable
      mid-chaos.

      Restart and partition events fire at even fractions of the trace's
      update volume (watched via the client's acked counter), leftovers
      firing after the driver completes — the configured counts always
      happen. *)

  val verdict_to_string : verdict -> string
  (** The five [served-soak: <name> PASS|FAIL (...)] verdict lines, a
      traffic summary, any failure reasons, and the overall
      [served-soak: PASS|FAIL] line — what the CLI prints and CI greps. *)
end
