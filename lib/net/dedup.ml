(* Bounded per-session dedup window with an optional durable journal.

   The effectively-once contract hinges on one ordering rule: a fresh
   (session, seq) is journaled BEFORE its batch touches the engine.
   Journal-then-apply turns a crash between the two into bounded loss (a
   retried batch is suppressed though its keys never landed), never into
   invention (a batch applied twice) — exactly the direction the IVL
   conservation verdict tolerates: published <= Σ acked, with the slack
   bounded by one in-flight batch per connection per restart.

   Within one server incarnation the in-memory window is authoritative
   and exact: [record] overwrites the journal's provisional count with
   the engine's actual accepted count, so a duplicate ack reports the
   true original outcome. After a restart the journal's claimed count is
   the best available answer (the engine may have accepted fewer keys
   mid-drain), which is why the loss allowance above exists.

   Senders emit seqs in order on one connection, so the window can be a
   high-water mark plus a small ring of recent (seq -> accepted): any seq
   at or below the mark that has already left the ring is necessarily
   long-since applied, and is answered as a duplicate with its batch's
   claimed size. *)

module Codec = Wire.Codec

type outcome = Fresh | Duplicate of int

type session = {
  mutable last_used : int;
  mutable high : int;  (* highest seq ever begun; -1 before the first *)
  window : (int, int) Hashtbl.t;  (* seq -> accepted (or claimed) count *)
  order : int Queue.t;  (* seqs in arrival order, for ring eviction *)
}

type stats = {
  sessions : int;
  duplicates : int;
  journal_records : int;
  journal_bytes : int;
  recovered_records : int;
  compactions : int;
}

type t = {
  window : int;
  max_sessions : int;
  compact_every : int;
  m : Mutex.t;
  tbl : (int64, session) Hashtbl.t;
  mutable stamp : int;
  mutable duplicates : int;
  mutable journal : out_channel option;
  mutable journal_path : string option;
  mutable journal_records : int;
  mutable journal_bytes : int;
  mutable recovered_records : int;
  mutable appends_since_compact : int;
  mutable compactions : int;
}

let journal_file dir = Filename.concat dir "sessions.log"

let encode_record ~session ~seq ~count =
  Codec.encode ~kind:Codec.net_session_kind (fun b ->
      Codec.i64 b session;
      Codec.int_ b seq;
      Codec.u32 b count)

let decode_record bytes =
  Codec.decode ~kind:Codec.net_session_kind
    (fun r ->
      let session = Codec.read_i64 r in
      let seq = Codec.read_int r in
      if seq < 0 then Codec.corrupt "negative journal seq %d" seq;
      let count = Codec.read_u32 r in
      (session, seq, count))
    bytes

let fresh_session stamp =
  { last_used = stamp; high = -1; window = Hashtbl.create 64; order = Queue.create () }

(* LRU-evict whole sessions past the cap: a reconnecting fleet of clients
   churns session ids, and an evicted session's retries (if any are still
   alive) degrade to at-least-once — the bounded-memory trade the window
   is named for. *)
let get_session t id =
  t.stamp <- t.stamp + 1;
  match Hashtbl.find_opt t.tbl id with
  | Some s ->
      s.last_used <- t.stamp;
      s
  | None ->
      if Hashtbl.length t.tbl >= t.max_sessions then begin
        let victim = ref None in
        Hashtbl.iter
          (fun k s ->
            match !victim with
            | Some (_, lu) when lu <= s.last_used -> ()
            | _ -> victim := Some (k, s.last_used))
          t.tbl;
        match !victim with
        | Some (k, _) -> Hashtbl.remove t.tbl k
        | None -> ()
      end;
      let s = fresh_session t.stamp in
      Hashtbl.replace t.tbl id s;
      s

let note t ~session ~seq ~count =
  let s = get_session t session in
  if not (Hashtbl.mem s.window seq) then begin
    Hashtbl.replace s.window seq count;
    Queue.push seq s.order;
    if Queue.length s.order > t.window then
      Hashtbl.remove s.window (Queue.pop s.order)
  end;
  if seq > s.high then s.high <- seq

let load_journal t ~path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let img = Bytes.create len in
    really_input ic img 0 len;
    close_in ic;
    let scan = Wire.Segment.scan img in
    List.iter
      (fun frame ->
        match decode_record frame with
        | Ok (session, seq, count) ->
            if not (Int64.equal session 0L) then begin
              note t ~session ~seq ~count;
              t.recovered_records <- t.recovered_records + 1
            end
        | Error _ -> ())
      scan.Wire.Segment.frames;
    (* The log is the longest valid prefix: truncate whatever a crash left
       behind so the appender continues on a frame boundary. *)
    match scan.Wire.Segment.tail with
    | Wire.Segment.Clean -> ()
    | Wire.Segment.Torn { valid_prefix; _ } ->
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd valid_prefix;
        Unix.close fd
  end

(* Compaction: the append-only journal grows one frame per fresh batch
   forever, but the state it reconstructs is bounded — per session, the
   window ring plus a high-water mark, and (per sender in-order arrival)
   the mark is always the window's newest seq. So the whole log collapses
   to at most [window] frames per live session: rewrite those, in arrival
   order (replay feeds them back through [note], whose ring semantics
   restore the exact window and mark), to a tmp file and rename over the
   log. Session LRU stamps are not persisted; after a restart the eviction
   order is approximate, which only affects which session a full table
   drops first. *)
let write_snapshot t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Hashtbl.iter
    (fun id (s : session) ->
      Queue.iter
        (fun seq ->
          match Hashtbl.find_opt s.window seq with
          | Some count -> output_bytes oc (encode_record ~session:id ~seq ~count)
          | None -> ())
        s.order)
    t.tbl;
  close_out oc;
  Sys.rename tmp path

(* Call with [t.m] held (or before any concurrent use). Closes the append
   channel around the rename so no flushed frame can land between snapshot
   and switch-over. *)
let compact_locked t =
  match t.journal_path with
  | None -> ()
  | Some path ->
      (match t.journal with
      | Some oc ->
          (try close_out oc with Sys_error _ -> ());
          t.journal <- None
      | None -> ());
      write_snapshot t ~path;
      t.journal <-
        Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path);
      t.appends_since_compact <- 0;
      t.compactions <- t.compactions + 1

let create ?(window = 128) ?(max_sessions = 1024) ?(compact_every = 4096) ?dir
    () =
  if window <= 0 then invalid_arg "Net.Dedup: window must be positive";
  if max_sessions <= 0 then invalid_arg "Net.Dedup: max_sessions must be positive";
  if compact_every <= 0 then
    invalid_arg "Net.Dedup: compact_every must be positive";
  let t =
    {
      window;
      max_sessions;
      compact_every;
      m = Mutex.create ();
      tbl = Hashtbl.create 64;
      stamp = 0;
      duplicates = 0;
      journal = None;
      journal_path = None;
      journal_records = 0;
      journal_bytes = 0;
      recovered_records = 0;
      appends_since_compact = 0;
      compactions = 0;
    }
  in
  (match dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let path = journal_file dir in
      load_journal t ~path;
      t.journal_path <- Some path;
      if t.recovered_records > 0 then
        (* Recovery replays the whole log, so this is the natural moment to
           shed its dead prefix: every restart starts from a bounded file. *)
        compact_locked t
      else
        t.journal <-
          Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path));
  t

let append_journal t ~session ~seq ~count =
  match t.journal with
  | None -> ()
  | Some oc ->
      let frame = encode_record ~session ~seq ~count in
      output_bytes oc frame;
      (* flush per record: the journal must be on the kernel side of a
         process kill before the batch is applied (no fsync — the WAL's
         crash model here is process death, matching the soak's kills) *)
      flush oc;
      t.journal_records <- t.journal_records + 1;
      t.journal_bytes <- t.journal_bytes + Bytes.length frame;
      t.appends_since_compact <- t.appends_since_compact + 1

let register t ~session =
  if not (Int64.equal session 0L) then begin
    Mutex.lock t.m;
    ignore (get_session t session);
    Mutex.unlock t.m
  end

let begin_batch t ~session ~seq ~count =
  if Int64.equal session 0L then Fresh
  else begin
    Mutex.lock t.m;
    let s = get_session t session in
    let r =
      match Hashtbl.find_opt s.window seq with
      | Some k -> Duplicate k
      | None when seq <= s.high ->
          (* below the ring but at/under the high-water mark: seqs arrive
             in order per sender, so this was applied long ago *)
          Duplicate count
      | None ->
          append_journal t ~session ~seq ~count;
          note t ~session ~seq ~count;
          (* Compact only after [note]: the snapshot is written from the
             in-memory state, so the record just journaled must be in the
             window before the rewrite or compaction would drop it. *)
          if t.appends_since_compact >= t.compact_every then compact_locked t;
          Fresh
    in
    (match r with Duplicate _ -> t.duplicates <- t.duplicates + 1 | Fresh -> ());
    Mutex.unlock t.m;
    r
  end

let record t ~session ~seq ~accepted =
  if not (Int64.equal session 0L) then begin
    Mutex.lock t.m;
    (match Hashtbl.find_opt t.tbl session with
    | Some s when Hashtbl.mem s.window seq -> Hashtbl.replace s.window seq accepted
    | _ -> ());
    Mutex.unlock t.m
  end

let stats t =
  Mutex.lock t.m;
  let s =
    {
      sessions = Hashtbl.length t.tbl;
      duplicates = t.duplicates;
      journal_records = t.journal_records;
      journal_bytes = t.journal_bytes;
      recovered_records = t.recovered_records;
      compactions = t.compactions;
    }
  in
  Mutex.unlock t.m;
  s

let close t =
  Mutex.lock t.m;
  (match t.journal with
  | Some oc ->
      (try close_out oc with Sys_error _ -> ());
      t.journal <- None
  | None -> ());
  Mutex.unlock t.m
