(* A fault-injecting TCP forwarder: listens on its own port, dials the
   real endpoint per accepted connection, and pumps bytes both ways
   through a seeded fault model — added latency, bit corruption,
   mid-stream resets, refused connections, full partitions. Neither
   endpoint cooperates or even knows; every failure the soak exercises
   arrives exactly the way production failures do, on the wire.

   One pair of pump domains per connection, one direction each. A fault
   that kills the pair uses shutdown (both fds, both directions) so the
   peer pump unblocks from its read; the actual close waits until both
   pumps have exited (a 2-countdown), because closing an fd another
   domain is still reading risks the kernel reusing the number. *)

type faults = {
  latency : float * float;  (* (min, max) seconds added per chunk *)
  corrupt_prob : float;  (* per-chunk probability of one flipped bit *)
  reset_prob : float;  (* per-chunk probability of a mid-stream reset *)
  drop_conn_prob : float;  (* per-accept probability of refusing *)
}

let no_faults =
  { latency = (0., 0.); corrupt_prob = 0.; reset_prob = 0.; drop_conn_prob = 0. }

type stats = {
  conns : int;
  active : int;
  refused : int;
  resets : int;
  corruptions : int;
  bytes : int;
}

type pair = {
  cfd : Unix.file_descr;
  sfd : Unix.file_descr;
  dead : bool Atomic.t;
  pumps_left : int Atomic.t;
}

type t = {
  lsock : Unix.file_descr;
  port : int;
  upstream : unit -> string * int;
  seed : int64;
  m : Mutex.t;
  mutable faults : faults;
  mutable partitioned : bool;
  mutable pairs : pair list;
  mutable domains : unit Domain.t list;
  mutable closing : bool;
  mutable accept_d : unit Domain.t option;
  c_conns : int Atomic.t;
  c_refused : int Atomic.t;
  c_resets : int Atomic.t;
  c_corruptions : int Atomic.t;
  c_bytes : int Atomic.t;
}

let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill_pair pair =
  if Atomic.compare_and_set pair.dead false true then begin
    shutdown_quiet pair.cfd;
    shutdown_quiet pair.sfd
  end

(* last pump out closes the fds *)
let leave_pair pair =
  kill_pair pair;
  if Atomic.fetch_and_add pair.pumps_left (-1) = 1 then begin
    close_quiet pair.cfd;
    close_quiet pair.sfd
  end

let write_all fd buf n =
  let rec go off =
    if off < n then begin
      let w = Unix.write fd buf off (n - off) in
      if w <= 0 then raise Exit;
      go (off + w)
    end
  in
  go 0

let pump t pair src dst rng =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read src buf 0 4096 with
    | 0 | (exception _) -> ()
    | n -> (
        let f =
          Mutex.lock t.m;
          let f = t.faults in
          Mutex.unlock t.m;
          f
        in
        let lo, hi = f.latency in
        if hi > 0. then
          Unix.sleepf (lo +. (Rng.Splitmix.next_float rng *. (hi -. lo)));
        if f.corrupt_prob > 0. && Rng.Dist.bernoulli rng f.corrupt_prob
        then begin
          let i = Rng.Dist.uniform_int rng n in
          let bit = Rng.Dist.uniform_int rng 8 in
          Bytes.set buf i
            (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl bit)));
          Atomic.incr t.c_corruptions
        end;
        if f.reset_prob > 0. && Rng.Dist.bernoulli rng f.reset_prob then begin
          (* forward a partial chunk first so the cut lands mid-frame *)
          Atomic.incr t.c_resets;
          (try write_all dst buf (n / 2) with _ -> ());
          kill_pair pair
        end
        else
          match write_all dst buf n with
          | exception _ -> ()
          | () ->
              ignore (Atomic.fetch_and_add t.c_bytes n);
              go ())
  in
  go ();
  leave_pair pair

let dial_upstream t =
  let host, port = t.upstream () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     close_quiet fd;
     raise e);
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

let accept_loop t =
  let conn_id = ref 0 in
  while not t.closing do
    (* poll: a blocked accept would never notice [closing] *)
    match
      match Unix.select [ t.lsock ] [] [] 0.05 with
      | [], _, _ -> None
      | _ ->
          let fd, _ = Unix.accept t.lsock in
          Some fd
    with
    | exception _ -> if not t.closing then Unix.sleepf 0.005
    | None -> ()
    | Some cfd -> (
        incr conn_id;
        let refuse =
          Mutex.lock t.m;
          let f = t.faults in
          let p = t.partitioned in
          Mutex.unlock t.m;
          p
          || f.drop_conn_prob > 0.
             && Rng.Dist.bernoulli
                  (Rng.Splitmix.create
                     (Int64.add t.seed (Int64.of_int (1000000 + !conn_id))))
                  f.drop_conn_prob
        in
        if refuse then begin
          Atomic.incr t.c_refused;
          close_quiet cfd
        end
        else
          match dial_upstream t with
          | exception _ ->
              Atomic.incr t.c_refused;
              close_quiet cfd
          | sfd ->
              Atomic.incr t.c_conns;
              (try Unix.setsockopt cfd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let pair =
                { cfd; sfd; dead = Atomic.make false; pumps_left = Atomic.make 2 }
              in
              let mk dir src dst =
                let rng =
                  Rng.Splitmix.create
                    (Int64.add t.seed (Int64.of_int ((!conn_id * 2) + dir)))
                in
                Domain.spawn (fun () -> pump t pair src dst rng)
              in
              Mutex.lock t.m;
              if t.closing || t.partitioned then begin
                Mutex.unlock t.m;
                Atomic.incr t.c_refused;
                close_quiet cfd;
                close_quiet sfd
              end
              else begin
                t.pairs <- pair :: List.filter (fun p -> not (Atomic.get p.dead)) t.pairs;
                let d1 = mk 0 cfd sfd and d2 = mk 1 sfd cfd in
                t.domains <- d1 :: d2 :: t.domains;
                Mutex.unlock t.m
              end)
  done

let create ?(host = "127.0.0.1") ?(faults = no_faults) ~seed ~upstream () =
  Conn.ignore_sigpipe ();
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, 0));
  Unix.listen lsock 64;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    {
      lsock;
      port;
      upstream;
      seed;
      m = Mutex.create ();
      faults;
      partitioned = false;
      pairs = [];
      domains = [];
      closing = false;
      accept_d = None;
      c_conns = Atomic.make 0;
      c_refused = Atomic.make 0;
      c_resets = Atomic.make 0;
      c_corruptions = Atomic.make 0;
      c_bytes = Atomic.make 0;
    }
  in
  t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port

let set_faults t f =
  Mutex.lock t.m;
  t.faults <- f;
  Mutex.unlock t.m

let set_partition t on =
  Mutex.lock t.m;
  t.partitioned <- on;
  let pairs = if on then t.pairs else [] in
  Mutex.unlock t.m;
  (* a partition severs live flows too, not just new dials *)
  List.iter kill_pair pairs

let stats t =
  Mutex.lock t.m;
  let active = List.length (List.filter (fun p -> not (Atomic.get p.dead)) t.pairs) in
  Mutex.unlock t.m;
  {
    conns = Atomic.get t.c_conns;
    active;
    refused = Atomic.get t.c_refused;
    resets = Atomic.get t.c_resets;
    corruptions = Atomic.get t.c_corruptions;
    bytes = Atomic.get t.c_bytes;
  }

let stop t =
  if not t.closing then begin
    t.closing <- true;
    close_quiet t.lsock;
    Mutex.lock t.m;
    let pairs = t.pairs in
    let domains = t.domains in
    t.pairs <- [];
    t.domains <- [];
    Mutex.unlock t.m;
    List.iter kill_pair pairs;
    (match t.accept_d with Some d -> Domain.join d | None -> ());
    t.accept_d <- None;
    List.iter Domain.join domains
  end;
  stats t
