type t = {
  fd : Unix.file_descr;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable closed : bool;
}

type recv_error = [ `Eof | `Timeout | `Oversized of int | `Bad_header ]

let recv_error_to_string = function
  | `Eof -> "peer closed the connection"
  | `Timeout -> "receive timeout"
  | `Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds cap" n
  | `Bad_header -> "stream desync: bytes are not an IVLW frame"

let default_max_frame = 16 * 1024 * 1024

let sigpipe_ignored = Atomic.make false

let ignore_sigpipe () =
  if not (Atomic.exchange sigpipe_ignored true) then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let set_nodelay fd = try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ()

let make fd =
  set_nodelay fd;
  { fd; bytes_in = 0; bytes_out = 0; frames_in = 0; frames_out = 0; closed = false }

let connect ~host ~port =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  make fd

let of_fd fd =
  ignore_sigpipe ();
  make fd

let set_read_timeout t s =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO s with _ -> ()

(* Fill buf[off..off+len) from the socket. EINTR retries; a receive-timeout
   expiry (EAGAIN/EWOULDBLOCK with SO_RCVTIMEO armed) is `Timeout; EOF or a
   reset mid-fill is `Eof — which is exactly where a truncated frame or an
   abrupt disconnect surfaces. *)
let read_exact t buf off len =
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.read t.fd buf off len with
      | 0 -> Error `Eof
      | n ->
          t.bytes_in <- t.bytes_in + n;
          go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error `Timeout
      | exception Unix.Unix_error (_, _, _) -> Error `Eof
  in
  go off len

let header_size = Wire.Codec.header_size
let magic = "IVLW"

let recv ?(max_frame = default_max_frame) t =
  let header = Bytes.create header_size in
  match read_exact t header 0 header_size with
  | Error e -> Error e
  | Ok () ->
      if Bytes.sub_string header 0 4 <> magic then Error `Bad_header
      else
        (* payload length: u32 BE right after magic+version+kind *)
        let len = Int32.to_int (Bytes.get_int32_be header 6) land 0xFFFFFFFF in
        if len > max_frame then Error (`Oversized len)
        else
          let frame = Bytes.create (header_size + len) in
          Bytes.blit header 0 frame 0 header_size;
          match read_exact t frame header_size len with
          | Error e -> Error e
          | Ok () ->
              t.frames_in <- t.frames_in + 1;
              Ok frame

let send t frame =
  if t.closed then false
  else
    let len = Bytes.length frame in
    let rec go off =
      if off = len then true
      else
        match Unix.write t.fd frame off (len - off) with
        | n ->
            t.bytes_out <- t.bytes_out + n;
            go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) -> false
    in
    let ok = go 0 in
    if ok then t.frames_out <- t.frames_out + 1;
    ok

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close t.fd with _ -> ()
  end

let fd t = t.fd
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let frames_in t = t.frames_in
let frames_out t = t.frames_out
