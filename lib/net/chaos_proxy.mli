(** Fault-injecting TCP proxy: the adversary half of the served soak.

    The proxy listens on its own (ephemeral) port and, per accepted
    connection, dials the real endpoint returned by [upstream ()] and
    pumps bytes both ways — through a seeded fault model that can delay
    chunks, flip bits, cut connections mid-frame, refuse dials, or
    partition everything. Neither endpoint cooperates: clients, replicas
    and the server under test see exactly the failures a hostile network
    would deliver, which is what makes the end-to-end verdicts
    (conservation, ack envelope, follower never-ahead) meaningful.

    [upstream] is consulted at {e dial time}, so a soak that restarts its
    server on a new port just updates the value the callback reads —
    reconnecting clients flow to the new incarnation through the same
    proxy port.

    Faults compose per chunk, in order: latency, then corruption, then
    reset. A reset forwards half the chunk before cutting both directions
    — deliberately mid-frame, so endpoints exercise their torn-stream
    paths, not just clean EOF. Corruption flips exactly one bit; the
    framing checksum ({!Wire.Codec}) turns that into [Err Malformed] or a
    decode failure at the endpoint, never silent damage. *)

type faults = {
  latency : float * float;  (** (min, max) seconds added per chunk *)
  corrupt_prob : float;  (** per-chunk probability of one flipped bit *)
  reset_prob : float;  (** per-chunk probability of a mid-stream reset *)
  drop_conn_prob : float;  (** per-accept probability of refusing *)
}

val no_faults : faults
(** All zeros: a transparent forwarder. *)

type t

type stats = {
  conns : int;  (** forwarded connections over the proxy's life *)
  active : int;  (** pairs currently flowing *)
  refused : int;  (** dials refused (fault, partition, upstream down) *)
  resets : int;  (** mid-stream cuts injected *)
  corruptions : int;  (** bit flips injected *)
  bytes : int;  (** payload bytes forwarded (both directions) *)
}

val create :
  ?host:string ->
  ?faults:faults ->
  seed:int64 ->
  upstream:(unit -> string * int) ->
  unit ->
  t
(** Bind an ephemeral port on [host] (default 127.0.0.1) and spawn the
    accept domain. [faults] defaults to {!no_faults}; [seed] makes every
    fault decision reproducible. Two pump domains per forwarded
    connection. *)

val port : t -> int
(** The proxy's listening port — point clients and replicas here. *)

val set_faults : t -> faults -> unit
(** Swap the fault model mid-run (e.g. quiesce to {!no_faults} before the
    convergence check). Applies to the next chunk/dial. *)

val set_partition : t -> bool -> unit
(** [true] severs every live flow and refuses new dials until [false] —
    a full network partition between the endpoints. *)

val stats : t -> stats

val stop : t -> stats
(** Sever everything, join all domains, close the listener. Idempotent. *)
