(** Batching client for the served tier: a bounded shared buffer, a pool of
    sender connections, and size/age flush triggers.

    Producers ({!push}/{!try_push}) append keys to one bounded queue;
    [conns] sender domains each own a TCP connection and ship batches of up
    to [batch] keys, synchronously awaiting each {!Frame.Ack}. A batch goes
    out when the buffer holds a full batch ({e size} trigger), when its
    oldest key has waited [flush_age] seconds ({e age} trigger), or when
    {!flush} or {!close} forces the residue out.

    Backpressure is explicit: a full buffer either blocks the producer
    ([Block] — the default, closed-loop behaviour) or sheds the key
    ([Shed] / {!try_push} — open-loop behaviour, counted in {!stats}).

    Delivery is {e effectively-once}: each sender owns a session id
    (announced with {!Frame.Hello} on every (re)connection) and numbers
    its batches with a per-sender seq assigned once per composed batch. A
    sender whose connection dies mid-exchange reconnects (bounded
    attempts, backoff) and resends the {e same} [(session, seq)]; the
    server's dedup window ({!Dedup}) recognises the retry and acks the
    original accepted count with [dup = true] instead of re-applying — so
    [acked] stays exact under arbitrary connection drops, and retried
    batches can never double-count. The one residual hazard is retry
    {e exhaustion}: a batch dropped after its last failed attempt may or
    may not have been applied, so its keys are counted in both [shed] and
    [exhausted] — envelope verdicts require [exhausted = 0] to certify a
    run. Passing [~session:0L] opts out of dedup entirely (the legacy
    at-least-once behaviour, kept for the regression test that
    demonstrates the double-count).

    Queries use one dedicated, lazily-(re)connected connection, serialized
    by a mutex — the client is an ingest firehose with an occasional
    control-plane read, not a query multiplexer. *)

type t

type overflow = Block | Shed

type stats = {
  pushed : int;  (** keys accepted into the buffer *)
  acked : int;  (** keys the server acknowledged *)
  sent : int;  (** keys shipped in batches (acked + rejected remainder) *)
  shed : int;  (** keys dropped: buffer full (Shed) or delivery failed *)
  exhausted : int;
      (** keys dropped after retry exhaustion — fate unknown, the only
          shed class that can break the ack envelope *)
  errors : int;  (** transport/protocol failures observed *)
  reconnects : int;  (** successful re-establishments after a drop *)
  duplicates_suppressed : int;
      (** retried batches the server acked without re-applying *)
  queued : int;  (** keys currently buffered *)
}

val create :
  ?conns:int ->
  ?batch:int ->
  ?flush_age:float ->
  ?queue:int ->
  ?overflow:overflow ->
  ?retries:int ->
  ?read_timeout:float ->
  ?session:int64 ->
  ?metrics:Obs.Registry.t ->
  ?tracer:Obs.Tracer.t ->
  host:string ->
  port:int ->
  unit ->
  t
(** Spawn [conns] (default 1) sender domains. [batch] (default 256) keys
    per frame; [flush_age] (default 50 ms) bounds how long a key may sit in
    a partial batch; [queue] (default [8 * batch]) bounds the buffer;
    [retries] (default 3) delivery attempts per batch; [read_timeout]
    (default 10 s) bounds each ack/response wait.

    [session] overrides the session id base (sender [i] uses
    [session + i]); the default mixes wall clock and pid, distinct across
    processes. [0L] disables dedup (legacy at-least-once).

    Senders do not pre-connect: the first batch dials. [metrics] registers
    [client_pushed_total], [client_acked_total], [client_shed_total],
    [client_errors_total], [client_reconnects_total],
    [client_duplicates_suppressed_total], [client_exhausted_total] and a
    [client_queue_depth] gauge.

    [tracer] samples composed batches for distributed tracing: a sampled
    batch records an ["enqueue"] span (oldest buffered arrival → take)
    and a ["flush"] span (send → ack, retries included), and carries its
    context on the wire as a [net-batch2] frame so the server continues
    the waterfall. Unsampled batches are byte-identical to a tracerless
    client's.

    @raise Invalid_argument on non-positive [conns]/[batch]/[queue]. *)

val push : t -> int -> bool
(** Buffer a key. Blocks while the buffer is full in [Block] mode; sheds
    (returns [false]) in [Shed] mode. [false] also after {!close}. *)

val try_push : t -> int -> bool
(** Never blocks: a full buffer is a shed regardless of [overflow]. *)

val flush : t -> unit
(** Force partial batches out and block until the buffer is empty {e and}
    every in-flight batch is resolved (acked, rejected or retried out).
    Safe from multiple domains. *)

val query : t -> Frame.query -> (Frame.response, string) result
(** One synchronous query round-trip on the dedicated query connection.
    [Error] is a transport/decode failure (after which the connection is
    reset and the next call re-dials); a server-side [Err] response comes
    back as [Ok (Err _)]. *)

val stats : t -> stats

val sink : t -> Workload.Sink.t
(** Adapt to the driver: [ingest]/[try_ingest] are {!push}/{!try_push}
    (accepted-into-buffer, not acked — at-least-once), [query k] is a
    {!Frame.Point} round-trip, [flush] is {!flush}, [close] a no-op (the
    caller owns the client's lifecycle). *)

val close : t -> unit
(** {!flush}, stop the senders, join them, close every connection.
    Idempotent; further pushes return [false]. *)
