(* Payload schemas (everything else — magic, version, kind, length,
   checksum — is Wire.Codec's framing):

     net-batch      i64 session, i64 seq, u32 count, count * i64 keys
     net-batch2     i64 session, i64 seq, i64 trace_id, i64 parent,
                    u32 count, count * i64 keys
     net-query      u8 tag (0 total | 1 point | 2 quantile | 3 top), arg
     net-reply      u8 tag (0 ack | 1 result | 2 err), body
                    (ack body: i64 epoch, i64 accepted, u8 dup)
     net-subscribe  i64 from_epoch
     net-delta      u8 tag (0 snapshot | 1 delta), i64 epoch,
                    i64 published/weight, bytes blob
     net-hello      i64 session

   Dispatch on a mixed stream goes through Codec.frame_kind, so a frame
   carrying a kind tag this build has never heard of comes back as
   Unknown_kind — the server's "unsupported" answer — while a known but
   out-of-place kind (a checkpoint on a client connection) is Wrong_kind.

   Trace contexts ride net-batch2, but only when sampled: a batch whose
   context is Obs.Span.zero encodes as a plain net-batch, byte-identical
   to the PR 8 schema, so an untraced sender interoperates with any peer
   and a traced sender only speaks the new kind for the ~1/sample_every
   batches that carry a context. *)

module Codec = Wire.Codec

type query = Total | Point of int | Quantile of float | Top of int

type request =
  | Batch of {
      session : int64;
      seq : int;
      ctx : Obs.Span.context;  (* Span.zero = untraced, legacy wire kind *)
      keys : int array;
    }
  | Query of query
  | Subscribe of { from_epoch : int }
  | Hello of { session : int64 }

type err_code = Unsupported | Malformed | Overloaded | Internal

type response =
  | Ack of { epoch : int; accepted : int; dup : bool }
  | Result of { epoch : int; pairs : (int * int) list }
  | Err of { code : err_code; msg : string }

type push =
  | Snapshot of { epoch : int; published : int; blob : Bytes.t }
  | Delta of { epoch : int; weight : int; blob : Bytes.t }

let err_code_to_string = function
  | Unsupported -> "unsupported"
  | Malformed -> "malformed"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let query_to_string = function
  | Total -> "total"
  | Point k -> Printf.sprintf "point(%d)" k
  | Quantile phi -> Printf.sprintf "quantile(%g)" phi
  | Top n -> Printf.sprintf "top(%d)" n

(* ------------------------------ requests ------------------------------ *)

let encode_request = function
  | Batch { session; seq; ctx; keys } ->
      if seq < 0 then invalid_arg "Net.Frame: negative batch seq";
      if Obs.Span.is_zero ctx then
        Codec.encode ~kind:Codec.net_batch_kind (fun b ->
            Codec.i64 b session;
            Codec.int_ b seq;
            Codec.u32 b (Array.length keys);
            Array.iter (fun k -> Codec.int_ b k) keys)
      else
        Codec.encode ~kind:Codec.net_batch2_kind (fun b ->
            Codec.i64 b session;
            Codec.int_ b seq;
            Codec.i64 b ctx.Obs.Span.trace_id;
            Codec.i64 b ctx.Obs.Span.parent;
            Codec.u32 b (Array.length keys);
            Array.iter (fun k -> Codec.int_ b k) keys)
  | Query q ->
      Codec.encode ~kind:Codec.net_query_kind (fun b ->
          match q with
          | Total -> Codec.u8 b 0
          | Point k ->
              Codec.u8 b 1;
              Codec.int_ b k
          | Quantile phi ->
              if not (phi >= 0.0 && phi <= 1.0) then
                invalid_arg "Net.Frame: quantile phi outside [0,1]";
              Codec.u8 b 2;
              Codec.float_ b phi
          | Top n ->
              if n <= 0 then invalid_arg "Net.Frame: top n must be positive";
              Codec.u8 b 3;
              Codec.int_ b n)
  | Subscribe { from_epoch } ->
      Codec.encode ~kind:Codec.net_subscribe_kind (fun b ->
          Codec.int_ b from_epoch)
  | Hello { session } ->
      Codec.encode ~kind:Codec.net_hello_kind (fun b -> Codec.i64 b session)

let parse_batch ~traced r =
  let session = Codec.read_i64 r in
  let seq = Codec.read_int r in
  if seq < 0 then Codec.corrupt "negative batch seq %d" seq;
  let ctx =
    if not traced then Obs.Span.zero
    else begin
      let trace_id = Codec.read_i64 r in
      let parent = Codec.read_i64 r in
      if Int64.equal trace_id 0L then
        Codec.corrupt "net-batch2 with zero trace id";
      { Obs.Span.trace_id; parent }
    end
  in
  let n = Codec.read_u32 r in
  Batch { session; seq; ctx; keys = Array.init n (fun _ -> Codec.read_int r) }

let parse_query r =
  match Codec.read_u8 r with
  | 0 -> Query Total
  | 1 -> Query (Point (Codec.read_int r))
  | 2 ->
      let phi = Codec.read_float r in
      if not (phi >= 0.0 && phi <= 1.0) then
        Codec.corrupt "quantile phi %g outside [0,1]" phi;
      Query (Quantile phi)
  | 3 ->
      let n = Codec.read_int r in
      if n <= 0 then Codec.corrupt "top n %d must be positive" n;
      Query (Top n)
  | t -> Codec.corrupt "unknown query tag %d" t

let parse_subscribe r =
  let from_epoch = Codec.read_int r in
  if from_epoch < 0 then Codec.corrupt "negative from_epoch %d" from_epoch;
  Subscribe { from_epoch }

let parse_hello r = Hello { session = Codec.read_i64 r }

let decode_request bytes =
  match Codec.frame_kind bytes with
  | Error e -> Error e
  | Ok k when k = Codec.net_batch_kind ->
      Codec.decode ~kind:k (parse_batch ~traced:false) bytes
  | Ok k when k = Codec.net_batch2_kind ->
      Codec.decode ~kind:k (parse_batch ~traced:true) bytes
  | Ok k when k = Codec.net_query_kind -> Codec.decode ~kind:k parse_query bytes
  | Ok k when k = Codec.net_subscribe_kind ->
      Codec.decode ~kind:k parse_subscribe bytes
  | Ok k when k = Codec.net_hello_kind -> Codec.decode ~kind:k parse_hello bytes
  | Ok k ->
      Error
        (Codec.Wrong_kind
           { expected = "net request"; got = Codec.kind_name k })

(* ------------------------------ responses ----------------------------- *)

let err_code_to_int = function
  | Unsupported -> 0
  | Malformed -> 1
  | Overloaded -> 2
  | Internal -> 3

let err_code_of_int = function
  | 0 -> Unsupported
  | 1 -> Malformed
  | 2 -> Overloaded
  | 3 -> Internal
  | c -> Codec.corrupt "unknown error code %d" c

let encode_response = function
  | Ack { epoch; accepted; dup } ->
      Codec.encode ~kind:Codec.net_reply_kind (fun b ->
          Codec.u8 b 0;
          Codec.int_ b epoch;
          Codec.int_ b accepted;
          Codec.u8 b (if dup then 1 else 0))
  | Result { epoch; pairs } ->
      Codec.encode ~kind:Codec.net_reply_kind (fun b ->
          Codec.u8 b 1;
          Codec.int_ b epoch;
          Codec.u32 b (List.length pairs);
          List.iter
            (fun (k, v) ->
              Codec.int_ b k;
              Codec.int_ b v)
            pairs)
  | Err { code; msg } ->
      Codec.encode ~kind:Codec.net_reply_kind (fun b ->
          Codec.u8 b 2;
          Codec.u8 b (err_code_to_int code);
          Codec.bytes_ b (Bytes.of_string msg))

let decode_response bytes =
  Codec.decode ~kind:Codec.net_reply_kind
    (fun r ->
      match Codec.read_u8 r with
      | 0 ->
          let epoch = Codec.read_int r in
          let accepted = Codec.read_int r in
          if epoch < 0 || accepted < 0 then
            Codec.corrupt "negative ack fields (%d, %d)" epoch accepted;
          let dup =
            match Codec.read_u8 r with
            | 0 -> false
            | 1 -> true
            | d -> Codec.corrupt "ack dup flag %d not 0/1" d
          in
          Ack { epoch; accepted; dup }
      | 1 ->
          let epoch = Codec.read_int r in
          if epoch < 0 then Codec.corrupt "negative epoch %d" epoch;
          let n = Codec.read_u32 r in
          let pairs =
            List.init n (fun _ ->
                let k = Codec.read_int r in
                let v = Codec.read_int r in
                (k, v))
          in
          Result { epoch; pairs }
      | 2 ->
          let code = err_code_of_int (Codec.read_u8 r) in
          let msg = Bytes.to_string (Codec.read_bytes r) in
          Err { code; msg }
      | t -> Codec.corrupt "unknown reply tag %d" t)
    bytes

(* ------------------------------ pushes -------------------------------- *)

let encode_push = function
  | Snapshot { epoch; published; blob } ->
      Codec.encode ~kind:Codec.net_delta_kind (fun b ->
          Codec.u8 b 0;
          Codec.int_ b epoch;
          Codec.int_ b published;
          Codec.bytes_ b blob)
  | Delta { epoch; weight; blob } ->
      Codec.encode ~kind:Codec.net_delta_kind (fun b ->
          Codec.u8 b 1;
          Codec.int_ b epoch;
          Codec.int_ b weight;
          Codec.bytes_ b blob)

let decode_push bytes =
  Codec.decode ~kind:Codec.net_delta_kind
    (fun r ->
      let tag = Codec.read_u8 r in
      let epoch = Codec.read_int r in
      let w = Codec.read_int r in
      if epoch < 0 || w < 0 then
        Codec.corrupt "negative push fields (%d, %d)" epoch w;
      let blob = Codec.read_bytes r in
      match tag with
      | 0 -> Snapshot { epoch; published = w; blob }
      | 1 -> Delta { epoch; weight = w; blob }
      | t -> Codec.corrupt "unknown push tag %d" t)
    bytes
