module Codec = Wire.Codec

module Make (M : Pipeline.Mergeable.S) = struct
  module P = Pipeline.Engine.Make (M)

  type sub = { sq : Bytes.t Pipeline.Mpsc.t }
  type conn_entry = { conn : Conn.t; mutable is_sub : bool }

  type stats = {
    conns : int;
    active : int;
    subscribers : int;
    bytes_in : int;
    bytes_out : int;
    frames_in : int;
    frames_out : int;
    decode_errors : int;
    batches : int;
    ingested : int;
    shed : int;
    queries : int;
    sessions : int;
    duplicates : int;
  }

  type t = {
    eng : P.t;
    lsock : Unix.file_descr;
    port : int;
    max_conns : int;
    mutable accept_d : unit Domain.t option;
    (* one handler domain per live connection, spawned by the accept loop
       (bounded by max_conns) and reaped as connections close — a fixed
       pool starves: a pooled handler pinned to a long-lived idle
       connection (a client's pooled sender, a subscriber) would block
       every connection still waiting for a handler *)
    hm : Mutex.t;
    mutable handler_ds : (unit Domain.t * bool Atomic.t) list;
    stopping : bool Atomic.t;
    stopped : bool Atomic.t;
    (* active connections, so stop can reset them under handlers' feet *)
    conns_m : Mutex.t;
    conns : (int, conn_entry) Hashtbl.t;
    conn_ids : int Atomic.t;
    (* closed connections' byte/frame totals, folded in at teardown *)
    mutable gone_bytes_in : int;
    mutable gone_bytes_out : int;
    mutable gone_frames_in : int;
    mutable gone_frames_out : int;
    (* replication: epoch/published mirror + fanout list, one mutex. Refs,
       not mutable fields: the on_merge closure is created before [t] is
       and must share the exact cells. *)
    rep_m : Mutex.t;
    rep_epoch : int ref;
    rep_published : int ref;
    subs : sub list ref;
    dedup : Dedup.t;
    c_conns : int Atomic.t;
    c_decode_errors : int Atomic.t;
    c_batches : int Atomic.t;
    c_ingested : int Atomic.t;
    c_shed : int Atomic.t;
    c_queries : int Atomic.t;
    query_timer : Obs.Timer.t option;
    tracer : Obs.Tracer.t option; (* decode/ingest spans for traced batches *)
    metrics : Obs.Registry.t option;
    eval : M.t -> Frame.query -> (int * int) list option;
    max_frame : int;
    read_timeout : float;
    sub_cap : int;
  }

  let port t = t.port
  let engine t = t.eng

  let stats t =
    Mutex.lock t.conns_m;
    let bi = ref t.gone_bytes_in
    and bo = ref t.gone_bytes_out
    and fi = ref t.gone_frames_in
    and fo = ref t.gone_frames_out in
    let active = Hashtbl.length t.conns in
    Hashtbl.iter
      (fun _ e ->
        bi := !bi + Conn.bytes_in e.conn;
        bo := !bo + Conn.bytes_out e.conn;
        fi := !fi + Conn.frames_in e.conn;
        fo := !fo + Conn.frames_out e.conn)
      t.conns;
    Mutex.unlock t.conns_m;
    Mutex.lock t.rep_m;
    let subscribers = List.length !(t.subs) in
    Mutex.unlock t.rep_m;
    let ds = Dedup.stats t.dedup in
    {
      conns = Atomic.get t.c_conns;
      active;
      subscribers;
      bytes_in = !bi;
      bytes_out = !bo;
      frames_in = !fi;
      frames_out = !fo;
      decode_errors = Atomic.get t.c_decode_errors;
      batches = Atomic.get t.c_batches;
      ingested = Atomic.get t.c_ingested;
      shed = Atomic.get t.c_shed;
      queries = Atomic.get t.c_queries;
      sessions = ds.Dedup.sessions;
      duplicates = ds.Dedup.duplicates;
    }

  (* ------------------------- request handling ------------------------- *)

  let send_err conn code msg =
    ignore (Conn.send conn (Frame.encode_response (Frame.Err { code; msg })))

  (* Effectively-once: classify the batch against the dedup window BEFORE
     any key touches the engine. A duplicate is acked (with the original
     accepted count) but never re-applied; a fresh batch is journaled
     first, applied, then its actual accepted count recorded so an
     in-incarnation retry's ack stays exact. *)
  let handle_batch t conn ~session ~seq ~ctx keys =
    Atomic.incr t.c_batches;
    match Dedup.begin_batch t.dedup ~session ~seq ~count:(Array.length keys) with
    | Dedup.Duplicate k ->
        Conn.send conn
          (Frame.encode_response
             (Frame.Ack { epoch = P.epoch t.eng; accepted = k; dup = true }))
    | Dedup.Fresh ->
        (* Hand the sampled context to the engine before the keys land, so
           the shard's next flush claims the mark and opens the queue span. *)
        if (not (Obs.Span.is_zero ctx)) && Array.length keys > 0 then
          P.trace_mark t.eng ~key:keys.(0) ~ctx;
        let ingest_start =
          match t.tracer with Some _ -> Obs.Tracer.now_ns () | None -> 0
        in
        let accepted = ref 0 in
        Array.iter (fun k -> if P.ingest t.eng k then incr accepted) keys;
        (match t.tracer with
        | Some tr ->
            ignore
              (Obs.Tracer.record tr ~ctx ~stage:"ingest" ~start_ns:ingest_start
                 ~end_ns:(Obs.Tracer.now_ns ()))
        | None -> ());
        let shed = Array.length keys - !accepted in
        ignore (Atomic.fetch_and_add t.c_ingested !accepted);
        ignore (Atomic.fetch_and_add t.c_shed shed);
        Dedup.record t.dedup ~session ~seq ~accepted:!accepted;
        Conn.send conn
          (Frame.encode_response
             (Frame.Ack { epoch = P.epoch t.eng; accepted = !accepted; dup = false }))

  let handle_hello t conn ~session =
    Dedup.register t.dedup ~session;
    Conn.send conn
      (Frame.encode_response
         (Frame.Ack { epoch = P.epoch t.eng; accepted = 0; dup = false }))

  let handle_query t conn q =
    Atomic.incr t.c_queries;
    let t0 = Unix.gettimeofday () in
    let resp =
      match q with
      | Frame.Total ->
          Mutex.lock t.rep_m;
          let epoch = !(t.rep_epoch) and published = !(t.rep_published) in
          Mutex.unlock t.rep_m;
          Frame.Result { epoch; pairs = [ (0, published) ] }
      | q -> (
          let r, epoch = P.query t.eng (fun g -> t.eval g q) in
          match r with
          | Some pairs -> Frame.Result { epoch; pairs }
          | None ->
              Frame.Err
                {
                  code = Frame.Unsupported;
                  msg = "sketch cannot answer " ^ Frame.query_to_string q;
                })
    in
    (match t.query_timer with
    | Some tm -> Obs.Timer.observe tm (Unix.gettimeofday () -. t0)
    | None -> ());
    Conn.send conn (Frame.encode_response resp)

  (* Replication sender: this handler stops serving requests and streams
     pushes until the follower dies, overflows, or the server stops.
     Registration happens under rep_m BEFORE the snapshot is taken, so every
     merge after this point is queued; a merge that is also already inside
     the snapshot arrives as a duplicate the follower's epoch filter skips.
     No ordering lets a delta fall into the gap. *)
  let sender_loop t (entry : conn_entry) =
    entry.is_sub <- true;
    let sub = { sq = Pipeline.Mpsc.create ~capacity:t.sub_cap } in
    Mutex.lock t.rep_m;
    t.subs := sub :: !(t.subs);
    Mutex.unlock t.rep_m;
    let blob, epoch, published = P.snapshot t.eng in
    let seed = Frame.encode_push (Frame.Snapshot { epoch; published; blob }) in
    let rec pump ok =
      if ok then
        match Pipeline.Mpsc.pop sub.sq with
        | None -> () (* queue closed: overflow-drop or server stop *)
        | Some frame -> pump (Conn.send entry.conn frame)
    in
    pump (Conn.send entry.conn seed);
    Mutex.lock t.rep_m;
    t.subs := List.filter (fun s -> s != sub) !(t.subs);
    Mutex.unlock t.rep_m;
    Pipeline.Mpsc.close sub.sq

  let request_loop t entry =
    let conn = entry.conn in
    let continue = ref true in
    while !continue && not (Atomic.get t.stopping) do
      match Conn.recv ~max_frame:t.max_frame conn with
      | Error `Eof -> continue := false
      | Error `Timeout ->
          (* slow-loris or long-idle peer: reset without a response (there
             is no frame boundary to answer on) *)
          continue := false
      | Error (`Oversized n) ->
          Atomic.incr t.c_decode_errors;
          send_err conn Frame.Malformed
            (Printf.sprintf "declared payload of %d bytes exceeds cap" n);
          continue := false
      | Error `Bad_header ->
          Atomic.incr t.c_decode_errors;
          send_err conn Frame.Malformed "stream desync: not an IVLW frame";
          continue := false
      | Ok frame -> (
          let decode_start =
            match t.tracer with Some _ -> Obs.Tracer.now_ns () | None -> 0
          in
          match Frame.decode_request frame with
          | Error (Codec.Unknown_kind k) ->
              Atomic.incr t.c_decode_errors;
              send_err conn Frame.Unsupported
                (Printf.sprintf "unknown frame kind %d" k);
              continue := false
          | Error e ->
              Atomic.incr t.c_decode_errors;
              send_err conn Frame.Malformed (Codec.error_to_string e);
              continue := false
          | Ok (Frame.Batch { session; seq; ctx; keys }) ->
              let ctx =
                match t.tracer with
                | Some tr when not (Obs.Span.is_zero ctx) ->
                    let sid =
                      Obs.Tracer.record tr ~ctx ~stage:"decode"
                        ~start_ns:decode_start ~end_ns:(Obs.Tracer.now_ns ())
                    in
                    Obs.Span.with_parent ctx sid
                | _ -> ctx
              in
              if not (handle_batch t conn ~session ~seq ~ctx keys) then
                continue := false
          | Ok (Frame.Hello { session }) ->
              if not (handle_hello t conn ~session) then continue := false
          | Ok (Frame.Query q) ->
              if not (handle_query t conn q) then continue := false
          | Ok (Frame.Subscribe _) ->
              sender_loop t entry;
              continue := false)
    done

  let register_conn_metrics t id conn =
    match t.metrics with
    | None -> ()
    | Some reg ->
        let labels = [ ("conn", string_of_int id) ] in
        let c name help f = Obs.Registry.counter_fn reg ~help ~labels name f in
        c "net_bytes_in_total" "Bytes received on this connection" (fun () ->
            Conn.bytes_in conn);
        c "net_bytes_out_total" "Bytes sent on this connection" (fun () ->
            Conn.bytes_out conn);
        c "net_frames_in_total" "Frames received on this connection" (fun () ->
            Conn.frames_in conn);
        c "net_frames_out_total" "Frames sent on this connection" (fun () ->
            Conn.frames_out conn)

  let serve_conn t fd =
    let conn = Conn.of_fd fd in
    Conn.set_read_timeout conn t.read_timeout;
    let id = Atomic.fetch_and_add t.conn_ids 1 in
    Atomic.incr t.c_conns;
    let entry = { conn; is_sub = false } in
    Mutex.lock t.conns_m;
    Hashtbl.replace t.conns id entry;
    Mutex.unlock t.conns_m;
    register_conn_metrics t id conn;
    (try request_loop t entry
     with e ->
       (* a handler must survive any one connection; engine bugs surface in
          P.failures, not here *)
       ignore e);
    Mutex.lock t.conns_m;
    Hashtbl.remove t.conns id;
    t.gone_bytes_in <- t.gone_bytes_in + Conn.bytes_in conn;
    t.gone_bytes_out <- t.gone_bytes_out + Conn.bytes_out conn;
    t.gone_frames_in <- t.gone_frames_in + Conn.frames_in conn;
    t.gone_frames_out <- t.gone_frames_out + Conn.frames_out conn;
    Mutex.unlock t.conns_m;
    Conn.close conn

  (* Join handler domains whose connection has closed; returns the live
     count. Terminated-but-unjoined domains are not free, so the accept
     loop reaps on every iteration. *)
  let reap t =
    Mutex.lock t.hm;
    let fin, live =
      List.partition (fun (_, done_f) -> Atomic.get done_f) t.handler_ds
    in
    t.handler_ds <- live;
    let n = List.length live in
    Mutex.unlock t.hm;
    List.iter (fun (d, _) -> Domain.join d) fin;
    n

  let accept_loop t =
    while not (Atomic.get t.stopping) do
      let live = reap t in
      if live >= t.max_conns then
        (* at capacity: let the kernel backlog hold the peers *)
        Unix.sleepf 0.01
      else
        match Unix.select [ t.lsock ] [] [] 0.05 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept t.lsock with
            | fd, _ ->
                let done_f = Atomic.make false in
                let d =
                  Domain.spawn (fun () ->
                      (try serve_conn t fd with _ -> ());
                      Atomic.set done_f true)
                in
                Mutex.lock t.hm;
                t.handler_ds <- (d, done_f) :: t.handler_ds;
                Mutex.unlock t.hm
            | exception Unix.Unix_error (_, _, _) -> ())
        | exception Unix.Unix_error (_, _, _) -> ()
    done

  (* ------------------------------ lifecycle --------------------------- *)

  let create ?(host = "127.0.0.1") ?(port = 0) ?(max_conns = 32)
      ?(max_frame = Conn.default_max_frame) ?(read_timeout = 30.0)
      ?(sub_queue = 1024) ?(dedup_window = 128) ?(dedup_sessions = 1024)
      ?dedup_dir ?metrics ?tracer ~eval ~make_engine () =
    if max_conns <= 0 then invalid_arg "Net.Server: max_conns must be positive";
    Conn.ignore_sigpipe ();
    let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt lsock Unix.SO_REUSEADDR true;
    (try
       Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       Unix.listen lsock 128
     with e ->
       (try Unix.close lsock with _ -> ());
       raise e);
    let port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (* The fanout closure is wired into the engine at creation, so the
       replication state exists before the engine does. *)
    let rep_m = Mutex.create () in
    let rep_epoch = ref (-1) and rep_published = ref 0 in
    let subs = ref [] in
    let on_merge ~ctx ~epoch ~weight ~blob =
      ignore ctx;
      Mutex.lock rep_m;
      if epoch > !rep_epoch then begin
        rep_epoch := epoch;
        rep_published := !rep_published + weight
      end;
      (match !subs with
      | [] -> ()
      | live ->
          let frame = Frame.encode_push (Frame.Delta { epoch; weight; blob }) in
          List.iter
            (fun s ->
              match Pipeline.Mpsc.try_push s.sq frame with
              | `Ok -> ()
              | `Full | `Closed ->
                  (* slow follower: close its queue (its sender drains what
                     is left, then resets) — a gap means it must
                     re-subscribe, never stall the merger *)
                  Pipeline.Mpsc.close s.sq)
            live);
      Mutex.unlock rep_m
    in
    let eng = make_engine ~on_merge in
    (* Catch up with merges (or recovered [initial] state) that predate the
       mirror: epoch filter in on_merge keeps this race-free. *)
    let _, e0, p0 = P.snapshot eng in
    Mutex.lock rep_m;
    if e0 > !rep_epoch then begin
      rep_epoch := e0;
      rep_published := p0
    end
    else if !rep_epoch >= 0 && !rep_published < p0 then rep_published := p0;
    Mutex.unlock rep_m;
    let dedup =
      Dedup.create ~window:dedup_window ~max_sessions:dedup_sessions
        ?dir:dedup_dir ()
    in
    let t =
      {
        eng;
        lsock;
        port;
        max_conns;
        accept_d = None;
        hm = Mutex.create ();
        handler_ds = [];
        stopping = Atomic.make false;
        stopped = Atomic.make false;
        conns_m = Mutex.create ();
        conns = Hashtbl.create 32;
        conn_ids = Atomic.make 0;
        gone_bytes_in = 0;
        gone_bytes_out = 0;
        gone_frames_in = 0;
        gone_frames_out = 0;
        rep_m;
        rep_epoch;
        rep_published;
        subs;
        dedup;
        c_conns = Atomic.make 0;
        c_decode_errors = Atomic.make 0;
        c_batches = Atomic.make 0;
        c_ingested = Atomic.make 0;
        c_shed = Atomic.make 0;
        c_queries = Atomic.make 0;
        query_timer =
          Option.map
            (fun reg ->
              Obs.Registry.timer reg ~help:"Server-side query service time"
                "net_query_seconds")
            metrics;
        tracer;
        metrics;
        eval;
        max_frame;
        read_timeout;
        sub_cap = sub_queue;
      }
    in
    (match metrics with
    | None -> ()
    | Some reg ->
        let c name help f = Obs.Registry.counter_fn reg ~help name f in
        let g name help f = Obs.Registry.gauge_fn reg ~help name f in
        c "net_conns_total" "Connections accepted" (fun () ->
            Atomic.get t.c_conns);
        c "net_decode_errors_total" "Frames that failed to decode" (fun () ->
            Atomic.get t.c_decode_errors);
        c "net_batches_total" "Batch requests served" (fun () ->
            Atomic.get t.c_batches);
        c "net_ingested_total" "Keys accepted into the engine" (fun () ->
            Atomic.get t.c_ingested);
        c "net_shed_total" "Keys the engine refused" (fun () ->
            Atomic.get t.c_shed);
        c "net_queries_total" "Query requests served" (fun () ->
            Atomic.get t.c_queries);
        c "net_duplicates_suppressed_total"
          "Retried batches acked without re-application" (fun () ->
            (Dedup.stats t.dedup).Dedup.duplicates);
        g "net_sessions" "Sessions in the dedup window" (fun () ->
            float_of_int (Dedup.stats t.dedup).Dedup.sessions);
        g "net_conns_active" "Currently-open connections" (fun () ->
            Mutex.lock t.conns_m;
            let n = Hashtbl.length t.conns in
            Mutex.unlock t.conns_m;
            float_of_int n);
        g "net_subscribers" "Live replication subscribers" (fun () ->
            Mutex.lock t.rep_m;
            let n = List.length !(t.subs) in
            Mutex.unlock t.rep_m;
            float_of_int n));
    t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
    t

  let stop t =
    if not (Atomic.exchange t.stopped true) then begin
      Atomic.set t.stopping true;
      (* reset request connections so handlers unblock from recv; leave
         subscriber connections alive — the drain's final deltas still have
         to reach them *)
      Mutex.lock t.conns_m;
      Hashtbl.iter
        (fun _ e ->
          if not e.is_sub then
            try Unix.shutdown (Conn.fd e.conn) Unix.SHUTDOWN_ALL
            with _ -> ())
        t.conns;
      Mutex.unlock t.conns_m;
      (* drain flushes the partial shard deltas an idle engine retains; the
         fanout forwards the resulting merges to subscribers in order *)
      P.drain t.eng;
      Mutex.lock t.rep_m;
      List.iter (fun s -> Pipeline.Mpsc.close s.sq) !(t.subs);
      Mutex.unlock t.rep_m;
      (match t.accept_d with Some d -> Domain.join d | None -> ());
      t.accept_d <- None;
      Mutex.lock t.hm;
      let hs = t.handler_ds in
      t.handler_ds <- [];
      Mutex.unlock t.hm;
      List.iter (fun (d, _) -> Domain.join d) hs;
      (try Unix.close t.lsock with _ -> ());
      Dedup.close t.dedup
    end;
    stats t
end
