(** The served ingestion/query tier: one accept loop plus a bounded pool of
    per-connection handler domains, feeding a {!Pipeline.Engine} and
    answering queries from its published snapshots.

    The pool is per-connection by construction: the accept loop spawns one
    handler domain per accepted socket (reaping finished ones as it goes)
    and stops accepting at [max_conns] live handlers, letting the kernel
    backlog absorb the excess. A fixed pre-spawned pool would starve —
    pooled senders and replication subscribers hold their connections open
    for the client's whole life, pinning a fixed handler forever.

    {2 Protocol position}

    Each handler owns one connection at a time and speaks {!Frame}:
    - {!Frame.Hello} → registers the sender's session in the dedup window
      ({!Dedup}), answered with a zero {!Frame.Ack};
    - {!Frame.Batch} → classified against the dedup window first: a
      duplicate [(session, seq)] is acked with its original accepted count
      and [dup = true] but {e never} re-applied (effectively-once
      ingestion — retried batches cannot double-count); a fresh batch is
      journaled, then every key is a blocking [Engine.ingest] (TCP is the
      backpressure channel: a full shard queue stalls the handler, which
      stalls the client's sender), answered with an {!Frame.Ack} carrying
      the accepted count;
    - {!Frame.Query} → [Total] is answered from the server's replication
      state (published weight at the last merged epoch, no sketch access);
      everything else runs [eval] under the engine's snapshot mutex;
    - {!Frame.Subscribe} → the handler becomes a replication sender for the
      rest of the connection's life: it seeds the follower with
      [Engine.snapshot] and then forwards every merged epoch delta, in
      order ({!Replica}).

    Decode failures are answered, never raised: a malformed frame gets
    [Err Malformed], a frame whose kind tag this build does not know gets
    [Err Unsupported] (satellite: {!Wire.Codec.Unknown_kind} is a distinct
    error), and in both cases the connection is reset — after a framing
    error the stream cannot be trusted. Slow-loris peers (header never
    completes) hit the receive timeout and are reset without a response.

    {2 Replication guarantees}

    The server's [on_merge] hook (wired into the engine by the caller via
    [make_engine]) updates the replication state and fans each delta out to
    every subscriber under one mutex; a subscriber registers under the same
    mutex {e before} taking its seed snapshot, so no delta can fall between
    snapshot and stream — at worst a delta is both inside the snapshot and
    queued, which the follower's epoch filter skips. A subscriber whose
    bounded queue overflows is dropped (its queue closed, its connection
    reset): a slow follower must re-subscribe rather than stall the merger.

    {!stop} orders shutdown so followers converge exactly: reset plain
    connections, drain the engine (flushing the partial shard deltas an
    idle engine retains), let the final merges fan out, then close
    subscriber queues and join every domain. *)

module Make (M : Pipeline.Mergeable.S) : sig
  module P : module type of Pipeline.Engine.Make (M)

  type t

  type stats = {
    conns : int;  (** connections accepted over the server's life *)
    active : int;
    subscribers : int;
    bytes_in : int;  (** across all connections, framing included *)
    bytes_out : int;
    frames_in : int;
    frames_out : int;
    decode_errors : int;
        (** malformed / unknown-kind / oversized / desynced frames *)
    batches : int;
    ingested : int;  (** keys accepted into the engine *)
    shed : int;  (** keys the engine refused (dead shard, drained) *)
    queries : int;
    sessions : int;  (** live sessions in the dedup window *)
    duplicates : int;  (** retried batches acked without re-application *)
  }

  val create :
    ?host:string ->
    ?port:int ->
    ?max_conns:int ->
    ?max_frame:int ->
    ?read_timeout:float ->
    ?sub_queue:int ->
    ?dedup_window:int ->
    ?dedup_sessions:int ->
    ?dedup_dir:string ->
    ?metrics:Obs.Registry.t ->
    ?tracer:Obs.Tracer.t ->
    eval:(M.t -> Frame.query -> (int * int) list option) ->
    make_engine:
      (on_merge:
         (ctx:Obs.Span.context -> epoch:int -> weight:int -> blob:Bytes.t ->
          unit) ->
       P.t) ->
    unit ->
    t
  (** Bind, listen, and spawn the accept domain; handler domains follow,
      one per accepted connection, at most [max_conns] (default 32) alive
      at once. [port] defaults to 0 (ephemeral — read it back with
      {!port}); [host] to ["127.0.0.1"].

      [make_engine ~on_merge] must create the engine with exactly this
      [on_merge] hook (composing it with its own WAL hook if it wants
      durability: call both). The server owns the engine's lifecycle from
      then on — {!stop} drains it.

      [eval sketch q] answers a query from the global sketch under the
      snapshot mutex — keep it cheap. [None] means this sketch cannot
      answer [q] (answered as [Err Unsupported]). [Frame.Total] never
      reaches [eval].

      [read_timeout] (default 30 s) is each connection's [SO_RCVTIMEO]: a
      peer that stalls mid-frame longer than this is reset. [max_frame]
      caps declared payload lengths. [sub_queue] (default 1024) bounds each
      subscriber's delta queue.

      [dedup_window] (default 128) and [dedup_sessions] (default 1024)
      bound the per-session dedup window ({!Dedup}); [dedup_dir] persists
      the session journal so retries that span a restart stay suppressed —
      point it at the WAL directory.

      [tracer] continues the waterfall of batches that arrive with a
      sampled trace context ([net-batch2] frames): a ["decode"] span
      around the frame parse and an ["ingest"] span around the key loop,
      with {!P.trace_mark} handing the context to the engine so the shard
      flush and merge legs follow. Pass the same tracer to the engine
      (via [make_engine]) for the in-engine spans. Untraced batches cost
      one branch.

      [metrics] registers [net_conns_total], [net_conns_active],
      [net_subscribers], [net_decode_errors_total], [net_batches_total],
      [net_ingested_total], [net_shed_total], [net_queries_total],
      [net_duplicates_suppressed_total], [net_sessions], a
      [net_query_seconds] timer, and per-connection
      [net_{bytes,frames}_{in,out}_total] labelled [conn="id"]. *)

  val port : t -> int
  (** The actually-bound port (useful with [port:0]). *)

  val engine : t -> P.t

  val stats : t -> stats
  (** Callable mid-run (counters are racy-consistent). *)

  val stop : t -> stats
  (** Stop accepting, reset request connections, drain the engine (final
      partial deltas reach subscribers), close subscriber streams, join all
      domains, close the listener. Idempotent; returns the final stats. *)
end
