(** Follower replica: subscribes to a leader's merge stream and rebuilds
    its published sketch, epoch by epoch — and {e re}-subscribes, from
    scratch, whenever the stream breaks.

    Replication is a direct cash-out of the merge algebra the pipeline is
    built on: the leader's published state at epoch [e] {e is}
    [fold merge (decode snapshot) deltas(e0+1..e)], so a follower that
    applies exactly that sequence holds a bit-identical summary — the exact
    convergence the tests check with [M.encode] equality after the leader
    drains.

    Between merges the follower is a relaxed replica of a relaxed object:
    its published total always equals the leader's published total {e at
    some recent epoch}, so every follower answer sits inside the leader's
    IVL envelope (the follower can only lag, never invent weight — the
    Theorem-6-style bound the end-to-end tests assert). Self-healing
    preserves exactly this: during [`Resyncing] the replica keeps serving
    its last applied state, which still lags the leader, and the fresh
    snapshot then jumps it forward to the leader's current prefix.

    {2 Stream discipline}

    The epoch filter makes the handshake race-free: a delta is applied iff
    its epoch is exactly [local + 1]; epochs [<= local] are duplicates of
    state already inside the seed snapshot (skipped, counted); a gap means
    the leader dropped this subscriber (bounded queue overflow) or
    restarted underneath it. Any break — transport error, decode failure,
    epoch gap — transitions to [`Resyncing]: the connection is torn down
    and the replica redials with backoff until a new {!Frame.Subscribe}
    handshake lands, taking a fresh seed snapshot (whose epoch resets the
    filter). Only exhausting [max_resyncs] makes the stream [`Broken];
    silently resuming after a gap would undercount forever, so that is the
    one thing the replica never does. *)

module Make (M : Pipeline.Mergeable.S) : sig
  type t

  type status =
    [ `Syncing  (** connected, snapshot not yet applied *)
    | `Live  (** snapshot applied; deltas streaming *)
    | `Resyncing of string
      (** stream broke (the reason); redialing, last state still served *)
    | `Broken of string  (** resync budget exhausted: stream unsound *)
    | `Closed ]

  type stats = {
    epoch : int;  (** last applied epoch; -1 before the snapshot *)
    published : int;  (** follower's replica of the leader's published weight *)
    deltas : int;  (** deltas applied *)
    skipped : int;  (** duplicate epochs skipped (handshake overlap) *)
    resyncs : int;  (** successful re-subscriptions after a break *)
    last_break : string option;  (** reason for the most recent break *)
    status : status;
  }

  val connect :
    ?read_timeout:float ->
    ?max_frame:int ->
    ?resync_backoff:float ->
    ?max_resyncs:int ->
    ?metrics:Obs.Registry.t ->
    ?tracer:Obs.Tracer.t ->
    host:string ->
    port:int ->
    unit ->
    t
  (** Dial the leader, send {!Frame.Subscribe}, and spawn the apply domain.
      [read_timeout] (default 1 s) paces the apply loop's receive wait — an
      idle leader just means quiet patience, not failure. [resync_backoff]
      (default 50 ms) spaces redial attempts while [`Resyncing];
      [max_resyncs] (default unbounded) caps how many breaks are healed
      before the stream is declared [`Broken].

      [metrics] registers [replica_resyncs_total], [replica_deltas_total],
      [replica_skipped_total] and [replica_epoch], [replica_published],
      [replica_status] gauges (status encoded 0 syncing / 1 live /
      2 resyncing / 3 broken / 4 closed).

      [tracer] samples delta applies for ["replica_apply"] spans (decode +
      merge under the replica mutex). Deltas cross the wire without a
      trace context — the server's fan-out strips it — so these spans are
      locally-sampled roots at the tracer's own rate, not continuations of
      an ingest waterfall; they quantify the apply leg's cost on the same
      [trace_stage_seconds] series.

      @raise Unix.Unix_error if the first dial itself fails (later breaks
      self-heal instead). *)

  val query : t -> (M.t -> 'a) -> ('a * int) option
  (** Run [f] on the replica sketch under the replica mutex; the epoch
      identifies the leader prefix it reflects. [None] until the first
      snapshot has been applied. During [`Resyncing] this serves the last
      applied state — stale but still inside the leader's envelope. *)

  val published : t -> int
  val epoch : t -> int
  val stats : t -> stats
  val status : t -> status

  val wait_epoch : ?timeout:float -> t -> int -> bool
  (** Block (polling) until the replica is [`Live] at epoch [>= e] — the
      convergence barrier: after the leader drains at epoch [e], a [true]
      return means the follower holds the leader's exact final state.
      Keeps waiting through [`Syncing]/[`Resyncing]; [false] on timeout
      (default 10 s), [`Broken] or [`Closed]. *)

  val close : t -> unit
  (** Reset the connection and join the apply domain. Idempotent. The
      sketch remains queryable at its last applied epoch. *)
end
